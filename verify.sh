#!/bin/sh
# verify.sh — the repo's tier-1 gate: static checks, the full test
# suite under the race detector, an end-to-end smoke test of the
# dvsd daemon (start, run one lpSHE simulation over HTTP, assert zero
# deadline misses, scrape /metrics.prom and check the exposition is
# well-formed, drain cleanly), a chaos smoke (daemon under
# deterministic fault injection, hammered through the self-healing
# client with zero surfaced errors, clean drain), a checkpoint smoke
# (a long job SIGTERMed mid-simulation with -checkpoint-dir set must
# drain cleanly to a durable document, and a restarted daemon must
# resume it to energies byte-identical to an uninterrupted run), a
# fleet smoke
# (3-worker embedded dvsfleet: hammer through the router, dvsexp grid
# byte-identical to the single-process run before AND after killing a
# worker, failover observed in the metrics, clean drain), a fleet
# drain-migration smoke (a job live-migrated off a worker via POST
# /v1/cluster/drain finishes on a ring successor), a trace
# smoke (tracing-enabled fleet: one client trace ID observed in
# coordinator and worker logs and in the federated /debug/trace dump,
# verdict bytes identical to a tracing-disabled run, dvssim -trace
# flight export well-formed, dvsscen run -explain reporting decision
# paths), a scenario
# pass (dvsscen validates and replays the whole scenarios/ corpus
# with assertions enforced, and one document must produce
# byte-identical verdicts via dvsscen run, dvsd /v1/scenario, and the
# dvsfleet coordinator), and a dvscheck audit pass (corpus replay,
# oracle self-test, and a 25-configuration fuzz smoke).
set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (compile + one iteration of every benchmark)"
# -benchtime=1x runs each benchmark body once: no timing value, but
# every allocation guard, b.ReportAllocs path, and the parallel
# harness the benchmarks drive get exercised on every verify.
go test -run '^$' -bench . -benchtime=1x ./... >/dev/null

echo "==> perf pass (alloc guards + hot-path smoke)"
# The AllocsPerRun guards pin the zero-steady-state-allocation
# property of the analyzer hot path (Analyze, the staircase cycle,
# SelectSpeed, Counters); then a fixed-count run of the two hot-path
# benchmarks checks the pinned alloc budgets and an order-of-magnitude
# latency ceiling. The ceiling is deliberately loose (a full revert of
# the incremental analyzer trips it; scheduler noise cannot), and the
# fine-grained 20% gate lives in `./bench.sh -gate` where benchtime is
# long enough to trust. See BENCH_*.json for the recorded trajectory.
go test -run 'ZeroSteadyStateAllocs|ZeroAllocs|CountersMapReused' -count=1 ./internal/core/
# BenchmarkEngineDecisionFlight shares EngineDecision's budgets via
# the awk prefix match: the flight recorder must fit inside them.
PERF_OUT=$(go test -run '^$' -bench '^(BenchmarkAnalyzerSlack|BenchmarkEngineDecision|BenchmarkEngineDecisionFlight)$' -benchtime=100x -benchmem .)
echo "$PERF_OUT" | awk '
/^BenchmarkAnalyzerSlack/ {
    for (i = 2; i <= NF; i++) if ($(i+1) == "allocs/op" && $i + 0 > 0) {
        printf "FAIL: AnalyzerSlack allocates %s/op, want 0\n", $i; bad = 1
    }
}
/^BenchmarkEngineDecision/ {
    for (i = 2; i <= NF; i++) {
        if ($(i+1) == "allocs/op" && $i + 0 > 160) {
            printf "FAIL: EngineDecision at %s allocs/op, budget 160\n", $i; bad = 1
        }
        if ($(i+1) == "ns/decision" && $i + 0 > 2000) {
            printf "FAIL: EngineDecision at %s ns/decision, ceiling 2000\n", $i; bad = 1
        }
    }
}
END { exit bad }
' || { echo "$PERF_OUT" >&2; exit 1; }

echo "==> dvsd smoke test"
DVSD_BIN=$(mktemp -t dvsd.XXXXXX)
SCEN_BIN=$(mktemp -t dvsscen.XXXXXX)
SCEN_TMP=$(mktemp -d -t dvsscen.XXXXXX)
DVSD_LOG=$(mktemp -t dvsd.log.XXXXXX)
DVSD_PID=""
FLEET_PID=""
FLEET_TMP=""
cleanup() {
    [ -n "$DVSD_PID" ] && kill "$DVSD_PID" 2>/dev/null || true
    [ -n "$FLEET_PID" ] && kill "$FLEET_PID" 2>/dev/null || true
    rm -f "$DVSD_BIN" "$SCEN_BIN" "$DVSD_LOG"
    rm -rf "$SCEN_TMP"
    [ -n "$FLEET_TMP" ] && rm -rf "$FLEET_TMP"
}
trap cleanup EXIT

go build -o "$DVSD_BIN" ./cmd/dvsd
go build -o "$SCEN_BIN" ./cmd/dvsscen
"$DVSD_BIN" -addr 127.0.0.1:0 >"$DVSD_LOG" 2>&1 &
DVSD_PID=$!

# The daemon logs "listening on 127.0.0.1:<port>" at startup.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$DVSD_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL: dvsd did not start:" >&2
    cat "$DVSD_LOG" >&2
    exit 1
fi

BODY='{
  "task_set": {"tasks": [{"wcet": 1, "period": 4}, {"wcet": 2, "period": 12}, {"wcet": 2, "period": 15}]},
  "policy": "lpshe",
  "workload": {"kind": "uniform", "lo": 0.5, "hi": 1, "seed": 7},
  "strict": true
}'
RESP=$(mktemp -t dvsd.resp.XXXXXX)
STATUS=$(curl -s -o "$RESP" -w '%{http_code}' --max-time 2 -d "$BODY" "http://$ADDR/v1/simulate")
if [ "$STATUS" != "200" ]; then
    echo "FAIL: /v1/simulate returned HTTP $STATUS:" >&2
    cat "$RESP" >&2
    rm -f "$RESP"
    exit 1
fi
if ! grep -q '"deadline_misses": 0' "$RESP"; then
    echo "FAIL: expected zero deadline misses, got:" >&2
    cat "$RESP" >&2
    rm -f "$RESP"
    exit 1
fi
rm -f "$RESP"

# Scenario transport byte-identity, leg 1: the daemon's /v1/scenario
# response must equal the local `dvsscen run -json` of the same file
# byte for byte.
SCEN_DOC=scenarios/baseline-quickstart.yaml
"$SCEN_BIN" run -json "$SCEN_DOC" >"$SCEN_TMP/local.json"
STATUS=$(curl -s -o "$SCEN_TMP/dvsd.json" -w '%{http_code}' --max-time 10 \
    --data-binary @"$SCEN_DOC" "http://$ADDR/v1/scenario")
if [ "$STATUS" != "200" ]; then
    echo "FAIL: /v1/scenario returned HTTP $STATUS:" >&2
    cat "$SCEN_TMP/dvsd.json" >&2
    exit 1
fi
cmp -s "$SCEN_TMP/local.json" "$SCEN_TMP/dvsd.json" || {
    echo "FAIL: dvsd scenario verdict differs from local dvsscen run" >&2
    diff "$SCEN_TMP/local.json" "$SCEN_TMP/dvsd.json" >&2 || true
    exit 1
}

# Observability smoke: scrape the Prometheus endpoint and fail on any
# line that is neither a comment nor a `name{labels} value` sample,
# then check the metric families the run above must have populated.
PROM=$(mktemp -t dvsd.prom.XXXXXX)
STATUS=$(curl -s -o "$PROM" -w '%{http_code}' --max-time 2 "http://$ADDR/metrics.prom")
if [ "$STATUS" != "200" ]; then
    echo "FAIL: /metrics.prom returned HTTP $STATUS" >&2
    rm -f "$PROM"
    exit 1
fi
BAD=$(awk '!/^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / &&
           !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? ([0-9.eE+-]+|[+-]?Inf|NaN)$/' "$PROM")
if [ -n "$BAD" ]; then
    echo "FAIL: malformed /metrics.prom lines:" >&2
    echo "$BAD" >&2
    rm -f "$PROM"
    exit 1
fi
for METRIC in dvsd_http_requests_total dvsd_sims_total dvsd_policy_run_seconds_bucket dvsd_cache_misses_total dvsd_uptime_seconds; do
    grep -q "^$METRIC" "$PROM" || {
        echo "FAIL: /metrics.prom missing $METRIC:" >&2
        cat "$PROM" >&2
        rm -f "$PROM"
        exit 1
    }
done
grep -q '^dvsd_sims_total 1$' "$PROM" || {
    echo "FAIL: expected dvsd_sims_total 1 after one run:" >&2
    grep '^dvsd_sims_total' "$PROM" >&2 || true
    rm -f "$PROM"
    exit 1
}
rm -f "$PROM"

kill -TERM "$DVSD_PID"
wait "$DVSD_PID" || { echo "FAIL: dvsd exited non-zero on SIGTERM" >&2; exit 1; }
DVSD_PID=""
grep -q "drained, bye" "$DVSD_LOG" || { echo "FAIL: no clean drain message" >&2; cat "$DVSD_LOG" >&2; exit 1; }
echo "    dvsd smoke test OK ($ADDR, lpSHE run, 0 misses, scenario verdict byte-identical, metrics.prom well-formed, clean drain)"

echo "==> chaos smoke test (dvsd -chaos + self-healing client)"
: >"$DVSD_LOG"
"$DVSD_BIN" -addr 127.0.0.1:0 -chaos 42 >"$DVSD_LOG" 2>&1 &
DVSD_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$DVSD_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL: chaos dvsd did not start:" >&2
    cat "$DVSD_LOG" >&2
    exit 1
fi
# Every request must come back clean despite ~30% of them being
# delayed, errored, dropped, or truncated by the injector: the retry
# layer owns the recovery, dvshammer exits non-zero otherwise.
go run ./cmd/dvshammer -addr "$ADDR" -n 50 -c 4 -seed 7 || {
    echo "FAIL: chaos hammer surfaced unrecovered errors" >&2
    cat "$DVSD_LOG" >&2
    exit 1
}
# The injector must actually have fired, and the chaos daemon must
# still drain cleanly.
PROM=$(mktemp -t dvsd.prom.XXXXXX)
curl -s --max-time 2 -o "$PROM" "http://$ADDR/metrics.prom"
grep -q '^dvsd_chaos_injected_total{fault="' "$PROM" || {
    echo "FAIL: chaos mode injected no faults:" >&2
    grep '^dvsd_chaos' "$PROM" >&2 || true
    rm -f "$PROM"
    exit 1
}
rm -f "$PROM"
kill -TERM "$DVSD_PID"
wait "$DVSD_PID" || { echo "FAIL: chaos dvsd exited non-zero on SIGTERM" >&2; exit 1; }
DVSD_PID=""
grep -q "drained, bye" "$DVSD_LOG" || { echo "FAIL: no clean drain after chaos" >&2; cat "$DVSD_LOG" >&2; exit 1; }
echo "    chaos smoke test OK ($ADDR, 50 requests self-healed, clean drain)"

echo "==> checkpoint smoke test (drain to disk, restart, resume)"
# A long job is interrupted mid-simulation by SIGTERM with a drain
# deadline it cannot meet; with -checkpoint-dir set the daemon must
# still exit cleanly, leaving the job checkpointed on disk. A second
# daemon over the same directory must recover and finish it, and the
# final energies must equal an uninterrupted run on a fresh daemon.
CKPT_DIR="$SCEN_TMP/ckpt"
CKPT_JOB='{
  "name": "verify-ckpt",
  "runs": [
    {"task_set": {"tasks": [{"wcet": 1, "period": 4}, {"wcet": 2, "period": 12}, {"wcet": 2, "period": 15}]},
     "policy": "lpshe", "horizon": 8000000,
     "workload": {"kind": "uniform", "lo": 0.5, "hi": 1, "seed": 1}},
    {"task_set": {"tasks": [{"wcet": 1, "period": 4}, {"wcet": 2, "period": 12}, {"wcet": 2, "period": 15}]},
     "policy": "cc", "horizon": 8000000,
     "workload": {"kind": "uniform", "lo": 0.5, "hi": 1, "seed": 2}}
  ]
}'
: >"$DVSD_LOG"
"$DVSD_BIN" -addr 127.0.0.1:0 -checkpoint-dir "$CKPT_DIR" -drain-timeout 500ms >"$DVSD_LOG" 2>&1 &
DVSD_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$DVSD_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: checkpoint dvsd did not start:" >&2; cat "$DVSD_LOG" >&2; exit 1; }
STATUS=$(curl -s -o /dev/null -w '%{http_code}' --max-time 2 -d "$CKPT_JOB" "http://$ADDR/v1/jobs")
[ "$STATUS" = "202" ] || { echo "FAIL: checkpoint job not accepted (HTTP $STATUS)" >&2; exit 1; }
sleep 0.3
kill -TERM "$DVSD_PID"
wait "$DVSD_PID" || { echo "FAIL: checkpoint dvsd exited non-zero on SIGTERM" >&2; cat "$DVSD_LOG" >&2; exit 1; }
DVSD_PID=""
grep -q "drained, bye" "$DVSD_LOG" || { echo "FAIL: no clean drain with checkpoint dir" >&2; cat "$DVSD_LOG" >&2; exit 1; }
grep -q "unfinished jobs checkpointed" "$DVSD_LOG" || {
    echo "FAIL: drain did not report checkpointing (job finished too fast?)" >&2
    cat "$DVSD_LOG" >&2
    exit 1
}
ls "$CKPT_DIR"/*.ckpt.json >/dev/null 2>&1 || {
    echo "FAIL: no checkpoint document on disk after drain" >&2
    ls -la "$CKPT_DIR" >&2 || true
    exit 1
}

: >"$DVSD_LOG"
"$DVSD_BIN" -addr 127.0.0.1:0 -checkpoint-dir "$CKPT_DIR" >"$DVSD_LOG" 2>&1 &
DVSD_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$DVSD_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: recovery dvsd did not start:" >&2; cat "$DVSD_LOG" >&2; exit 1; }
grep -q "recovered checkpointed jobs" "$DVSD_LOG" || {
    echo "FAIL: restart did not recover the checkpoint" >&2
    cat "$DVSD_LOG" >&2
    exit 1
}
JOB_ID=""
for _ in $(seq 1 150); do
    JOBS=$(curl -s --max-time 2 "http://$ADDR/v1/jobs")
    if echo "$JOBS" | grep -q '"state": "done"'; then
        JOB_ID=$(echo "$JOBS" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' | head -n1)
        break
    fi
    sleep 0.2
done
[ -n "$JOB_ID" ] || {
    echo "FAIL: recovered job did not finish:" >&2
    curl -s --max-time 2 "http://$ADDR/v1/jobs" >&2 || true
    cat "$DVSD_LOG" >&2
    exit 1
}
curl -s --max-time 5 "http://$ADDR/v1/jobs/$JOB_ID?results=1" |
    grep -o '"energy": [0-9.e+-]*' >"$SCEN_TMP/resumed.energies"
kill -TERM "$DVSD_PID"
wait "$DVSD_PID" || { echo "FAIL: recovery dvsd exited non-zero on SIGTERM" >&2; exit 1; }
DVSD_PID=""

# Reference run on a fresh daemon (no checkpoint dir, cold cache).
: >"$DVSD_LOG"
"$DVSD_BIN" -addr 127.0.0.1:0 >"$DVSD_LOG" 2>&1 &
DVSD_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$DVSD_LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: reference dvsd did not start:" >&2; cat "$DVSD_LOG" >&2; exit 1; }
REF_ID=$(curl -s --max-time 2 -d "$CKPT_JOB" "http://$ADDR/v1/jobs" | sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p')
[ -n "$REF_ID" ] || { echo "FAIL: reference job not accepted" >&2; exit 1; }
DONE=""
for _ in $(seq 1 150); do
    if curl -s --max-time 2 "http://$ADDR/v1/jobs/$REF_ID" | grep -q '"state": "done"'; then
        DONE=yes
        break
    fi
    sleep 0.2
done
[ -n "$DONE" ] || { echo "FAIL: reference job did not finish" >&2; exit 1; }
curl -s --max-time 5 "http://$ADDR/v1/jobs/$REF_ID?results=1" |
    grep -o '"energy": [0-9.e+-]*' >"$SCEN_TMP/reference.energies"
kill -TERM "$DVSD_PID"
wait "$DVSD_PID" || { echo "FAIL: reference dvsd exited non-zero on SIGTERM" >&2; exit 1; }
DVSD_PID=""
cmp -s "$SCEN_TMP/resumed.energies" "$SCEN_TMP/reference.energies" || {
    echo "FAIL: resumed job energies differ from uninterrupted run" >&2
    diff "$SCEN_TMP/resumed.energies" "$SCEN_TMP/reference.energies" >&2 || true
    exit 1
}
[ -s "$SCEN_TMP/resumed.energies" ] || { echo "FAIL: no energies extracted from resumed job" >&2; exit 1; }
echo "    checkpoint smoke test OK (drain checkpointed to disk, restart resumed, energies byte-identical)"

echo "==> fleet smoke test (dvsfleet -embedded, 3 workers)"
FLEET_TMP=$(mktemp -d -t dvsfleet.XXXXXX)
FLEET_LOG="$FLEET_TMP/fleet.log"
go build -o "$FLEET_TMP/dvsfleet" ./cmd/dvsfleet
go build -o "$FLEET_TMP/dvshammer" ./cmd/dvshammer
go build -o "$FLEET_TMP/dvsexp" ./cmd/dvsexp

"$FLEET_TMP/dvsfleet" -addr 127.0.0.1:0 -embedded -workers 3 >"$FLEET_LOG" 2>&1 &
FLEET_PID=$!
FADDR=""
for _ in $(seq 1 50); do
    FADDR=$(sed -n 's/.*dvsfleet: listening on \([0-9.:]*\).*/\1/p' "$FLEET_LOG" | head -n1)
    [ -n "$FADDR" ] && break
    sleep 0.1
done
if [ -z "$FADDR" ]; then
    echo "FAIL: dvsfleet did not start:" >&2
    cat "$FLEET_LOG" >&2
    exit 1
fi

# Load through the router: every request must succeed, and the JSON
# summary must say so explicitly.
"$FLEET_TMP/dvshammer" -addr "$FADDR" -n 50 -c 4 -seed 9 -json >"$FLEET_TMP/hammer.json" || {
    echo "FAIL: fleet hammer surfaced errors" >&2
    cat "$FLEET_TMP/hammer.json" "$FLEET_LOG" >&2
    exit 1
}
grep -q '"failed":0' "$FLEET_TMP/hammer.json" || {
    echo "FAIL: fleet hammer summary reports failures:" >&2
    cat "$FLEET_TMP/hammer.json" >&2
    exit 1
}

# The determinism guarantee, end to end over real processes: the t2
# grid through the fleet must be byte-identical to the in-process run.
"$FLEET_TMP/dvsexp" -exp t2 -quick -seeds 2 >"$FLEET_TMP/local.out"
"$FLEET_TMP/dvsexp" -exp t2 -quick -seeds 2 -addr "$FADDR" >"$FLEET_TMP/fleet.out"
cmp -s "$FLEET_TMP/local.out" "$FLEET_TMP/fleet.out" || {
    echo "FAIL: fleet t2 report differs from single-process report" >&2
    diff "$FLEET_TMP/local.out" "$FLEET_TMP/fleet.out" >&2 || true
    exit 1
}

# Scenario transport byte-identity, leg 2: the same document through
# the fleet coordinator (validated locally, routed by document key,
# verdict bytes streamed through) must match the local run too.
STATUS=$(curl -s -o "$FLEET_TMP/scen.json" -w '%{http_code}' --max-time 10 \
    --data-binary @"$SCEN_DOC" "http://$FADDR/v1/scenario")
if [ "$STATUS" != "200" ]; then
    echo "FAIL: fleet /v1/scenario returned HTTP $STATUS:" >&2
    cat "$FLEET_TMP/scen.json" >&2
    exit 1
fi
cmp -s "$SCEN_TMP/local.json" "$FLEET_TMP/scen.json" || {
    echo "FAIL: fleet scenario verdict differs from local dvsscen run" >&2
    diff "$SCEN_TMP/local.json" "$FLEET_TMP/scen.json" >&2 || true
    exit 1
}

# Kill one worker (the cluster endpoint hard-stops it, crash-style)
# and rerun the grid: failover must keep the report byte-identical.
VICTIM=$(curl -s --max-time 2 "http://$FADDR/v1/cluster" |
    sed -n 's/.*"addr": "\([0-9.:]*\)".*/\1/p' | head -n1)
if [ -z "$VICTIM" ]; then
    echo "FAIL: /v1/cluster listed no workers" >&2
    curl -s --max-time 2 "http://$FADDR/v1/cluster" >&2 || true
    exit 1
fi
STATUS=$(curl -s -o /dev/null -w '%{http_code}' --max-time 2 -X POST "http://$FADDR/v1/cluster/kill?worker=$VICTIM")
if [ "$STATUS" != "200" ]; then
    echo "FAIL: /v1/cluster/kill returned HTTP $STATUS" >&2
    exit 1
fi
"$FLEET_TMP/dvsexp" -exp t2 -quick -seeds 2 -addr "$FADDR" >"$FLEET_TMP/fleet2.out"
cmp -s "$FLEET_TMP/local.out" "$FLEET_TMP/fleet2.out" || {
    echo "FAIL: fleet t2 report differs after killing worker $VICTIM" >&2
    diff "$FLEET_TMP/local.out" "$FLEET_TMP/fleet2.out" >&2 || true
    exit 1
}

# Failover must be observable: drive fresh-seed requests at the fleet
# until the dead worker's failover counter moves (bounded — the ring
# spreads keys, so a handful of seeds always hits the victim's share).
FAILED_OVER=""
i=0
while [ $i -lt 50 ]; do
    if curl -s --max-time 2 "http://$FADDR/metrics.prom" |
        grep '^dvsfleet_failovers_total{' | grep -qv ' 0$'; then
        FAILED_OVER=yes
        break
    fi
    curl -s --max-time 5 -o /dev/null -d "{
      \"task_set\": {\"tasks\": [{\"wcet\": 1, \"period\": 4}, {\"wcet\": 2, \"period\": 12}]},
      \"policy\": \"lpshe\",
      \"workload\": {\"kind\": \"uniform\", \"lo\": 0.5, \"hi\": 1, \"seed\": $i}
    }" "http://$FADDR/v1/simulate" || true
    i=$((i + 1))
done
if [ -z "$FAILED_OVER" ]; then
    echo "FAIL: no failover recorded after killing $VICTIM:" >&2
    curl -s --max-time 2 "http://$FADDR/metrics.prom" | grep '^dvsfleet_' >&2 || true
    exit 1
fi
# The survivors must carry the fleet: with one worker dead, readyz
# still says ready.
STATUS=$(curl -s -o /dev/null -w '%{http_code}' --max-time 2 "http://$FADDR/readyz")
if [ "$STATUS" != "200" ]; then
    echo "FAIL: fleet not ready after single-worker kill (HTTP $STATUS)" >&2
    exit 1
fi

kill -TERM "$FLEET_PID"
wait "$FLEET_PID" || { echo "FAIL: dvsfleet exited non-zero on SIGTERM" >&2; cat "$FLEET_LOG" >&2; exit 1; }
FLEET_PID=""
grep -q "drained, bye" "$FLEET_LOG" || { echo "FAIL: no clean fleet drain message" >&2; cat "$FLEET_LOG" >&2; exit 1; }
echo "    fleet smoke test OK ($FADDR, hammer clean, t2 byte-identical incl. after worker kill, scenario verdict byte-identical, failover observed, clean drain)"

echo "==> trace smoke test (dvsfleet -trace-buffer, one trace across the fleet)"
TRACE_LOG="$FLEET_TMP/trace.log"
"$FLEET_TMP/dvsfleet" -addr 127.0.0.1:0 -embedded -workers 3 -trace-buffer 512 -log-format json >"$TRACE_LOG" 2>&1 &
FLEET_PID=$!
TADDR=""
for _ in $(seq 1 50); do
    TADDR=$(sed -n 's/.*dvsfleet: listening on \([0-9.:]*\).*/\1/p' "$TRACE_LOG" | head -n1)
    [ -n "$TADDR" ] && break
    sleep 0.1
done
if [ -z "$TADDR" ]; then
    echo "FAIL: traced dvsfleet did not start:" >&2
    cat "$TRACE_LOG" >&2
    exit 1
fi

# A client-originated traceparent with a known trace ID; the fleet
# must continue it rather than start its own.
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
TP="00-$TRACE_ID-00f067aa0ba902b7-01"
STATUS=$(curl -s -o "$FLEET_TMP/traced-scen.json" -w '%{http_code}' --max-time 10 \
    -H "traceparent: $TP" --data-binary @"$SCEN_DOC" "http://$TADDR/v1/scenario")
if [ "$STATUS" != "200" ]; then
    echo "FAIL: traced /v1/scenario returned HTTP $STATUS:" >&2
    cat "$FLEET_TMP/traced-scen.json" >&2
    exit 1
fi
# Tracing must be inert: the verdict bytes of the traced run equal the
# tracing-disabled local run byte for byte.
cmp -s "$SCEN_TMP/local.json" "$FLEET_TMP/traced-scen.json" || {
    echo "FAIL: tracing changed scenario verdict bytes" >&2
    diff "$SCEN_TMP/local.json" "$FLEET_TMP/traced-scen.json" >&2 || true
    exit 1
}
# One trace ID across both processes' logs: the coordinator's access
# line and the worker's (tagged component=worker) both carry it.
grep -q "\"endpoint\":\"scenario\".*\"trace\":\"$TRACE_ID\"" "$TRACE_LOG" || {
    echo "FAIL: coordinator log line missing trace id $TRACE_ID" >&2
    grep '"trace"' "$TRACE_LOG" >&2 || cat "$TRACE_LOG" >&2
    exit 1
}
grep -q "\"component\":\"worker\".*\"trace\":\"$TRACE_ID\"" "$TRACE_LOG" || {
    echo "FAIL: no worker log line carries trace id $TRACE_ID" >&2
    grep '"trace"' "$TRACE_LOG" >&2 || cat "$TRACE_LOG" >&2
    exit 1
}
# The fleet trace dump must hold spans from both services under that
# trace: the coordinator's handler/routing spans and the worker's.
curl -s --max-time 2 -o "$FLEET_TMP/trace-dump.json" "http://$TADDR/debug/trace"
for NEEDLE in "$TRACE_ID" '"dvsfleet.scenario"' '"fleet.route"' '"dvsd.scenario"'; do
    grep -q "$NEEDLE" "$FLEET_TMP/trace-dump.json" || {
        echo "FAIL: fleet /debug/trace missing $NEEDLE" >&2
        cat "$FLEET_TMP/trace-dump.json" >&2
        exit 1
    }
done
kill -TERM "$FLEET_PID"
wait "$FLEET_PID" || { echo "FAIL: traced dvsfleet exited non-zero on SIGTERM" >&2; cat "$TRACE_LOG" >&2; exit 1; }
FLEET_PID=""

# Decision provenance export: dvssim -trace must emit a well-formed
# Chrome trace with decision instants and s/f flow chains, and
# dvsscen run -explain must report per-path decision counts.
go build -o "$FLEET_TMP/dvssim" ./cmd/dvssim
"$FLEET_TMP/dvssim" -policy lpshe -taskset cnc -trace "$FLEET_TMP/flight.json" >/dev/null
for NEEDLE in '"traceEvents"' '"cat": "decision"' '"ph": "s"' '"ph": "f"' '"bp": "e"'; do
    grep -q "$NEEDLE" "$FLEET_TMP/flight.json" || {
        echo "FAIL: dvssim -trace output missing $NEEDLE" >&2
        exit 1
    }
done
"$SCEN_BIN" run -explain "$SCEN_DOC" >"$FLEET_TMP/explain.out"
grep -q "explain lpshe.*staircase=" "$FLEET_TMP/explain.out" || {
    echo "FAIL: dvsscen run -explain reported no lpshe decision paths:" >&2
    cat "$FLEET_TMP/explain.out" >&2
    exit 1
}
echo "    trace smoke test OK ($TADDR, one trace across coordinator+worker, verdict bytes inert, flight export well-formed, -explain green)"

echo "==> fleet drain-migration smoke test (live checkpoint/restore across workers)"
# A job running on one worker is live-migrated off it by POST
# /v1/cluster/drain: checkpointed mid-simulation, restored on a ring
# successor, finished there — observable in the response, the
# migrations counter, and the successor's job listing.
DRAIN_LOG="$FLEET_TMP/drain.log"
"$FLEET_TMP/dvsfleet" -addr 127.0.0.1:0 -embedded -workers 3 >"$DRAIN_LOG" 2>&1 &
FLEET_PID=$!
DADDR=""
for _ in $(seq 1 50); do
    DADDR=$(sed -n 's/.*dvsfleet: listening on \([0-9.:]*\).*/\1/p' "$DRAIN_LOG" | head -n1)
    [ -n "$DADDR" ] && break
    sleep 0.1
done
[ -n "$DADDR" ] || { echo "FAIL: drain-smoke dvsfleet did not start:" >&2; cat "$DRAIN_LOG" >&2; exit 1; }
WORKERS=$(curl -s --max-time 2 "http://$DADDR/v1/cluster" | sed -n 's/.*"addr": "\([0-9.:]*\)".*/\1/p')
W1=$(echo "$WORKERS" | head -n1)
[ -n "$W1" ] || { echo "FAIL: drain smoke listed no workers" >&2; exit 1; }
STATUS=$(curl -s -o /dev/null -w '%{http_code}' --max-time 2 -d "$CKPT_JOB" "http://$W1/v1/jobs")
[ "$STATUS" = "202" ] || { echo "FAIL: worker $W1 rejected the job (HTTP $STATUS)" >&2; exit 1; }
sleep 0.3
DRAIN_RESP=$(curl -s --max-time 30 -X POST "http://$DADDR/v1/cluster/drain?worker=$W1")
echo "$DRAIN_RESP" | grep -q '"migrated": *[1-9]' || {
    echo "FAIL: drain migrated no jobs: $DRAIN_RESP" >&2
    cat "$DRAIN_LOG" >&2
    exit 1
}
curl -s --max-time 2 "http://$DADDR/metrics.prom" |
    grep -q '^dvsfleet_migrations_total{reason="drain"} [1-9]' || {
    echo "FAIL: migrations counter did not move:" >&2
    curl -s --max-time 2 "http://$DADDR/metrics.prom" | grep '^dvsfleet_' >&2 || true
    exit 1
}
MIGRATED=""
for _ in $(seq 1 150); do
    for W in $WORKERS; do
        [ "$W" = "$W1" ] && continue
        if curl -s --max-time 2 "http://$W/v1/jobs" | grep -q '"state": "done"'; then
            MIGRATED=$W
            break
        fi
    done
    [ -n "$MIGRATED" ] && break
    sleep 0.2
done
[ -n "$MIGRATED" ] || {
    echo "FAIL: migrated job never finished on a successor worker" >&2
    for W in $WORKERS; do curl -s --max-time 2 "http://$W/v1/jobs" >&2 || true; done
    exit 1
}
# The source keeps the paused husk, checkpointed, not re-running.
curl -s --max-time 2 "http://$W1/v1/jobs" | grep -q '"state": "checkpointed"' || {
    echo "FAIL: source worker job not in checkpointed state:" >&2
    curl -s --max-time 2 "http://$W1/v1/jobs" >&2 || true
    exit 1
}
kill -TERM "$FLEET_PID"
wait "$FLEET_PID" || { echo "FAIL: drain-smoke dvsfleet exited non-zero on SIGTERM" >&2; cat "$DRAIN_LOG" >&2; exit 1; }
FLEET_PID=""
echo "    fleet drain-migration smoke OK ($DADDR, job moved $W1 -> $MIGRATED, counter moved, source checkpointed)"

echo "==> scenario pass (dvsscen validate + full corpus replay)"
# Every committed document must validate (all errors would be listed)
# and replay green with its assertions enforced — dvsscen exits
# non-zero on any validation error or failing verdict.
"$SCEN_BIN" validate -q scenarios/*.yaml
"$SCEN_BIN" run scenarios/*.yaml >"$SCEN_TMP/corpus.out" || {
    echo "FAIL: scenario corpus replay failed:" >&2
    cat "$SCEN_TMP/corpus.out" >&2
    exit 1
}
N_DOCS=$(ls scenarios/*.yaml | wc -l)
if [ "$N_DOCS" -lt 10 ]; then
    echo "FAIL: scenario corpus has $N_DOCS documents, want >= 10" >&2
    exit 1
fi
# convert round-trip: a fuzz corpus entry lifted to a scenario must
# itself validate and replay green (its fingerprint assertion pins
# the entry's recorded failure set).
"$SCEN_BIN" convert -out "$SCEN_TMP" internal/fuzz/testdata/corpus/repro-overload-min.json >/dev/null
"$SCEN_BIN" run "$SCEN_TMP/repro-overload-min.yaml" >/dev/null || {
    echo "FAIL: converted fuzz entry does not replay to its fingerprint" >&2
    exit 1
}
echo "    scenario pass OK ($N_DOCS documents validated and replayed, convert round-trip green)"

echo "==> dvscheck audit pass"
# Corpus replay + mutation self-test (the default modes), then a
# small deterministic fuzz campaign under the audit oracle.
go run ./cmd/dvscheck
go run ./cmd/dvscheck -fuzz 25 -seed 1

echo "PASS"
