package dvsslack

// Snapshot hot-path benchmarks: the cost of freezing a mid-run engine
// into a checkpoint envelope and of rebuilding a live engine from one.
// Both sit on the daemon's pause/drain path (every POST
// /v1/jobs/{id}/checkpoint and every fleet migration pays them once
// per in-flight run), so bench.sh records their trajectory alongside
// the scheduling hot paths.

import (
	"testing"

	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/snapshot"
	"dvsslack/internal/workload"

	"dvsslack/internal/cpu"
)

// snapshotBenchConfig builds a mid-size configuration with a fresh
// policy instance (engines own their policy state, so every restore
// needs its own).
func snapshotBenchConfig(b *testing.B) sim.Config {
	b.Helper()
	mk, err := policies.Lookup("lpshe")
	if err != nil {
		b.Fatal(err)
	}
	return sim.Config{
		TaskSet:   rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 1)),
		Processor: cpu.Continuous(0.1),
		Policy:    mk(),
		Workload:  workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1},
		Horizon:   1e5,
	}
}

// snapshotBenchEngine steps a fresh engine deep into its run, so the
// captured state carries a realistic job backlog and history.
func snapshotBenchEngine(b *testing.B) *sim.Engine {
	b.Helper()
	e, err := sim.NewEngine(snapshotBenchConfig(b))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if !e.Step() {
			b.Fatal("engine finished before the bench checkpoint position")
		}
	}
	return e
}

// BenchmarkSnapshotCapture measures freezing one mid-run engine into
// a framed, checksummed envelope.
func BenchmarkSnapshotCapture(b *testing.B) {
	e := snapshotBenchEngine(b)
	b.ReportAllocs()
	var size int
	for i := 0; i < b.N; i++ {
		data, err := snapshot.Capture("bench", e, nil)
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.ReportMetric(float64(size), "snapshot-bytes")
}

// BenchmarkSnapshotRestore measures rebuilding a live engine from an
// envelope (decode, checksum, state rehydration, policy rebind).
func BenchmarkSnapshotRestore(b *testing.B) {
	data, err := snapshot.Capture("bench", snapshotBenchEngine(b), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Restore(data, "bench", snapshotBenchConfig(b), nil); err != nil {
			b.Fatal(err)
		}
	}
}
