package dvsslack

import (
	"testing"
)

// TestSmoke runs every shipped policy on the quickstart task set and
// checks the fundamental contract: no deadline misses and no more
// energy than the non-DVS reference.
func TestSmoke(t *testing.T) {
	ts := NewTaskSet("smoke",
		NewTask("sensor", 1, 4),
		NewTask("control", 2, 12),
		NewTask("telemetry", 2, 15),
		NewTask("logging", 3, 30),
		NewTask("housekeeping", 4, 40),
	)
	policies := []Policy{
		NewNonDVS(), NewStaticEDF(), NewLppsEDF(),
		NewCCEDF(), NewLAEDF(), NewDRA(), NewLpSHE(),
	}
	var ref Result
	for i, p := range policies {
		res, err := Simulate(Config{
			TaskSet:   ts,
			Processor: ContinuousProcessor(0.1),
			Policy:    p,
			Workload:  UniformWorkload(0.4, 1, 7),
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.DeadlineMisses != 0 {
			t.Errorf("%s: %d deadline misses", p.Name(), res.DeadlineMisses)
		}
		if res.JobsCompleted == 0 {
			t.Errorf("%s: no jobs completed", p.Name())
		}
		if i == 0 {
			ref = res
		} else if res.Energy > ref.Energy*1.0001 {
			t.Errorf("%s: energy %.4f exceeds non-DVS %.4f", p.Name(), res.Energy, ref.Energy)
		}
		t.Logf("%v (normalized %.3f)", res, res.NormalizedTo(ref))
	}
}
