package dvsslack

// Benchmark harness: one testing.B benchmark per table and figure of
// the evaluation (DESIGN.md §3). Each benchmark regenerates its
// experiment at reduced replication (the benchmarks measure the cost
// of the reproduction pipeline; `cmd/dvsexp -exp <id>` produces the
// full-scale numbers recorded in EXPERIMENTS.md). Additional
// micro-benchmarks cover the hot paths: the simulation engine and the
// slack-time analysis.
//
// Run with:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkFig3 -benchtime=1x   # one full regeneration

import (
	"io"
	"testing"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/experiment"
	"dvsslack/internal/obs"
	"dvsslack/internal/opt"
	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// benchOpts keeps the per-iteration cost of the experiment
// benchmarks bounded; the shape of each figure is preserved.
var benchOpts = experiment.Options{Quick: true, Seeds: 2}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Run(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		// Render to io.Discard so formatting cost is included and
		// the compiler cannot elide the work.
		r.Print(io.Discard)
	}
}

// BenchmarkTable1ProcessorModels regenerates T1 (processor models).
func BenchmarkTable1ProcessorModels(b *testing.B) { benchExperiment(b, "t1") }

// BenchmarkFig3EnergyVsUtilization regenerates F3 (normalized energy
// vs worst-case utilization, all policies).
func BenchmarkFig3EnergyVsUtilization(b *testing.B) { benchExperiment(b, "f3") }

// BenchmarkFig4EnergyVsBCETRatio regenerates F4 (normalized energy
// vs BCET/WCET ratio).
func BenchmarkFig4EnergyVsBCETRatio(b *testing.B) { benchExperiment(b, "f4") }

// BenchmarkFig5EnergyVsTaskCount regenerates F5 (normalized energy
// vs task-set size).
func BenchmarkFig5EnergyVsTaskCount(b *testing.B) { benchExperiment(b, "f5") }

// BenchmarkTable2Benchmarks regenerates T2 (embedded benchmark task
// sets: CNC, avionics, videophone).
func BenchmarkTable2Benchmarks(b *testing.B) { benchExperiment(b, "t2") }

// BenchmarkFig6DiscreteLevels regenerates F6 (discrete speed levels
// vs continuous).
func BenchmarkFig6DiscreteLevels(b *testing.B) { benchExperiment(b, "f6") }

// BenchmarkFig7TransitionOverhead regenerates F7 (speed-transition
// overhead sensitivity).
func BenchmarkFig7TransitionOverhead(b *testing.B) { benchExperiment(b, "f7") }

// BenchmarkTable3Overheads regenerates T3 (scheduling overheads per
// policy).
func BenchmarkTable3Overheads(b *testing.B) { benchExperiment(b, "t3") }

// BenchmarkTable4DeadlineFuzz regenerates T4 (deadline-miss fuzz).
func BenchmarkTable4DeadlineFuzz(b *testing.B) { benchExperiment(b, "t4") }

// BenchmarkFig8Ablation regenerates F8 (slack-analysis ablation).
func BenchmarkFig8Ablation(b *testing.B) { benchExperiment(b, "f8") }

// BenchmarkTable5OptimalityGap regenerates T5 (gap to the YDS
// clairvoyant optimum).
func BenchmarkTable5OptimalityGap(b *testing.B) { benchExperiment(b, "t5") }

// BenchmarkFig9JitterRobustness regenerates F9 (release-jitter
// robustness extension).
func BenchmarkFig9JitterRobustness(b *testing.B) { benchExperiment(b, "f9") }

// BenchmarkFig10WorkloadShapes regenerates F10 (workload-shape
// sensitivity extension).
func BenchmarkFig10WorkloadShapes(b *testing.B) { benchExperiment(b, "f10") }

// BenchmarkFig11Leakage regenerates F11 (leakage power and the
// critical-speed floor extension).
func BenchmarkFig11Leakage(b *testing.B) { benchExperiment(b, "f11") }

// BenchmarkYDSOptimal measures the offline-optimal computation on a
// one-hyperperiod trace (the T5 oracle cost).
func BenchmarkYDSOptimal(b *testing.B) {
	cfg := rtm.DefaultGenConfig(6, 0.7, 3)
	cfg.Periods = []float64{50, 100, 125, 200, 250, 500, 1000}
	ts := rtm.MustGenerate(cfg)
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 3}
	proc := cpu.Continuous(0.1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := opt.ForTrace(ts, proc, gen, 1000, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkEngineNonDVS measures raw simulator throughput: one
// hyperperiod of an 8-task set at full speed (~minimal policy cost).
func BenchmarkEngineNonDVS(b *testing.B) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 1))
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: cpu.Continuous(0.1),
			Policy: &dvs.NonDVS{}, Workload: gen,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.DeadlineMisses != 0 {
			b.Fatal("miss")
		}
	}
}

// BenchmarkEngineLpSHE measures the same run under the full
// slack-analysis policy; the delta to BenchmarkEngineNonDVS is the
// cost of the paper's algorithm.
func BenchmarkEngineLpSHE(b *testing.B) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 1))
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: cpu.Continuous(0.1),
			Policy: core.NewLpSHE(), Workload: gen,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.DeadlineMisses != 0 {
			b.Fatal("miss")
		}
	}
}

// BenchmarkPolicies measures one-hyperperiod engine throughput for
// every registered policy on an identical configuration, one
// sub-benchmark per policy. bench.sh runs exactly this benchmark and
// records the per-policy ns/op in BENCH_<date>.json, so the relative
// cost of each policy's scheduling decisions is tracked release over
// release.
func BenchmarkPolicies(b *testing.B) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 1))
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1}
	for _, name := range policies.Names() {
		b.Run(name, func(b *testing.B) {
			mk, err := policies.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					TaskSet: ts, Processor: cpu.Continuous(0.1),
					Policy: mk(), Workload: gen,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.DeadlineMisses != 0 {
					b.Fatal("miss")
				}
			}
		})
	}
}

// BenchmarkAnalyzerSlack measures a single slack-analysis invocation
// on a mid-size state (the per-scheduling-point cost reported in T3).
// bench.sh records its ns/op and allocs/op in BENCH_<date>.json; the
// allocs/op figure is pinned to zero by the regression tests in
// internal/core.
func BenchmarkAnalyzerSlack(b *testing.B) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(16, 0.8, 2))
	an := core.NewAnalyzer(ts)
	var active []*sim.JobState
	for i := 0; i < 8; i++ {
		j := ts.JobOf(i, 0)
		active = append(active, &sim.JobState{Job: j})
	}
	nextRel := func(i int) float64 { return ts.Tasks[i].Period }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		an.Analyze(1.0, active, nextRel)
	}
}

// BenchmarkEngineDecision measures the engine's per-scheduling-point
// cost under the full slack-analysis policy: one hyperperiod run per
// iteration, with the per-decision cost reported as the ns/decision
// metric. The allocs/op column tracks whole-run allocations (job
// states plus setup); the steady-state per-decision path itself is
// pinned allocation-free by the internal/sim and internal/core
// regression tests.
func BenchmarkEngineDecision(b *testing.B) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 1))
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1}
	run := func() sim.Result {
		res, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: cpu.Continuous(0.1),
			Policy: core.NewLpSHE(), Workload: gen,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	decisions := run().Decisions
	if decisions == 0 {
		b.Fatal("no scheduling decisions")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*decisions), "ns/decision")
}

// BenchmarkEngineDecisionFlight is BenchmarkEngineDecision with the
// decision flight recorder attached, pinning the observability tax on
// the hot path: the delta between the two ns/decision figures is the
// full cost of always-on provenance capture. The steady-state write
// path itself is pinned allocation-free by
// obs.TestFlightRecorderSteadyStateAllocs.
func BenchmarkEngineDecisionFlight(b *testing.B) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 1))
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1}
	fr := obs.NewFlightRecorder(4096)
	run := func() sim.Result {
		p := core.NewLpSHE()
		res, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: cpu.Continuous(0.1),
			Policy: p, Workload: gen,
			Observer: fr.Observer(p),
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	decisions := run().Decisions
	if decisions == 0 {
		b.Fatal("no scheduling decisions")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*decisions), "ns/decision")
}

// BenchmarkTaskSetGeneration measures UUniFast task-set generation.
func BenchmarkTaskSetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rtm.Generate(rtm.DefaultGenConfig(16, 0.8, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
