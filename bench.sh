#!/bin/sh
# bench.sh — run the hot-path benchmarks and record the results as
# BENCH_<date>.json, the repo's perf trajectory artifact.
#
# Covered benchmarks:
#   BenchmarkPolicies        one-hyperperiod engine throughput per policy
#   BenchmarkAnalyzerSlack   one slack-analysis invocation (ns/op, allocs/op)
#   BenchmarkEngineDecision  per-scheduling-point engine cost (ns/decision)
#
# Usage:
#   ./bench.sh                # default benchtime
#   ./bench.sh -benchtime 2s  # extra args pass through to 'go test'
#   BENCH_OUT=custom.json ./bench.sh
#   BENCH_RAW=raw.txt ./bench.sh   # also keep the raw 'go test' output
#                                  # (benchstat-compatible)
#
# The JSON records ns/op, B/op, allocs/op, and any custom metrics per
# benchmark, plus the toolchain and commit, so two files from
# different dates diff meaningfully. See docs/performance.md for how
# to compare two BENCH_*.json files (or two raw outputs with
# benchstat).
set -eu
cd "$(dirname "$0")"

date_tag=$(date +%Y-%m-%d)
out=${BENCH_OUT:-BENCH_${date_tag}.json}
raw=${BENCH_RAW:-}
if [ -z "$raw" ]; then
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
fi

pattern='^(BenchmarkPolicies|BenchmarkAnalyzerSlack|BenchmarkEngineDecision)$'
echo "bench.sh: running $pattern (this takes a minute)..." >&2
go test -run '^$' -bench "$pattern" -benchmem "$@" . | tee "$raw" >&2

go_version=$(go env GOVERSION)
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

awk -v date="$date_tag" -v gover="$go_version" -v commit="$commit" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", date, gover, commit
    printf "  \"results\": [\n"
    n = 0
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    # Line shape: Benchmark<Name>[/<sub>]-<procs> <iters> <v> <unit> ...
    # Units after ns/op may include custom metrics (e.g. ns/decision)
    # and the -benchmem pair B/op, allocs/op.
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    for (i = 5; i <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "B/op")            printf ", \"bytes_per_op\": %s", $i
        else if (unit == "allocs/op")  printf ", \"allocs_per_op\": %s", $i
        else if (unit == "ns/decision") printf ", \"ns_per_decision\": %s", $i
    }
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: no benchmark results parsed; raw output above" >&2
    exit 1
fi
echo "bench.sh: wrote $out ($count benchmarks)" >&2
