#!/bin/sh
# bench.sh — run the per-policy engine benchmarks and record the
# results as BENCH_<date>.json, the repo's perf trajectory artifact.
#
# Usage:
#   ./bench.sh                # BenchmarkPolicies, default benchtime
#   ./bench.sh -benchtime 2s  # extra args pass through to 'go test'
#   BENCH_OUT=custom.json ./bench.sh
#
# The JSON records ns/op, B/op, and allocs/op per policy, plus the
# toolchain and commit, so two files from different dates diff
# meaningfully. See the "Benchmarking" section of README.md.
set -eu
cd "$(dirname "$0")"

date_tag=$(date +%Y-%m-%d)
out=${BENCH_OUT:-BENCH_${date_tag}.json}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "bench.sh: running BenchmarkPolicies (this takes a minute)..." >&2
go test -run '^$' -bench '^BenchmarkPolicies$' -benchmem "$@" . | tee "$raw" >&2

go_version=$(go env GOVERSION)
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

awk -v date="$date_tag" -v gover="$go_version" -v commit="$commit" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", date, gover, commit
    printf "  \"benchmark\": \"BenchmarkPolicies\",\n  \"results\": [\n"
    n = 0
}
$1 ~ /^BenchmarkPolicies\// && $4 == "ns/op" {
    # Line shape: BenchmarkPolicies/<policy>-<procs> <iters> <ns> ns/op [<B> B/op <allocs> allocs/op]
    name = $1
    sub(/^BenchmarkPolicies\//, "", name)
    sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "    {\"policy\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    if ($6 == "B/op")      printf ", \"bytes_per_op\": %s", $5
    if ($8 == "allocs/op") printf ", \"allocs_per_op\": %s", $7
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

count=$(grep -c '"policy"' "$out" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: no benchmark results parsed; raw output above" >&2
    exit 1
fi
echo "bench.sh: wrote $out ($count policies)" >&2
