#!/bin/sh
# bench.sh — run the hot-path benchmarks and record the results as
# BENCH_<date>.json, the repo's perf trajectory artifact.
#
# Covered benchmarks:
#   BenchmarkPolicies        one-hyperperiod engine throughput per policy
#   BenchmarkAnalyzerSlack   one slack-analysis invocation (ns/op, allocs/op)
#   BenchmarkEngineDecision  per-scheduling-point engine cost (ns/decision)
#   BenchmarkEngineDecisionFlight  same, with the decision flight
#                            recorder attached (the observability tax)
#   BenchmarkSnapshotCapture freeze one mid-run engine into a
#                            checkpoint envelope (the per-run cost of
#                            every pause, drain, and fleet migration)
#   BenchmarkSnapshotRestore rebuild a live engine from an envelope
#
# Usage:
#   ./bench.sh                # default benchtime
#   ./bench.sh -benchtime 2s  # extra args pass through to 'go test'
#   ./bench.sh -gate          # additionally FAIL on >20% ns/op
#                             # regression of AnalyzerSlack or
#                             # EngineDecision vs the most recent
#                             # committed BENCH_*.json (CI guard)
#   BENCH_OUT=custom.json ./bench.sh
#   BENCH_RAW=raw.txt ./bench.sh   # also keep the raw 'go test' output
#                                  # (benchstat-compatible)
#
# After recording, the fresh results are diffed against the most
# recent committed BENCH_*.json and per-benchmark ns/op deltas are
# printed, so every run shows the perf trajectory at a glance.
#
# The JSON records ns/op, B/op, allocs/op, and any custom metrics per
# benchmark, plus the toolchain and commit, so two files from
# different dates diff meaningfully. See docs/performance.md for how
# to compare two BENCH_*.json files (or two raw outputs with
# benchstat).
set -eu
cd "$(dirname "$0")"

gate=0
if [ "${1:-}" = "-gate" ]; then
    gate=1
    shift
fi

date_tag=$(date +%Y-%m-%d)
out=${BENCH_OUT:-BENCH_${date_tag}.json}
raw=${BENCH_RAW:-}
if [ -z "$raw" ]; then
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
fi

pattern='^(BenchmarkPolicies|BenchmarkAnalyzerSlack|BenchmarkEngineDecision|BenchmarkEngineDecisionFlight|BenchmarkSnapshotCapture|BenchmarkSnapshotRestore)$'
echo "bench.sh: running $pattern (this takes a minute)..." >&2
go test -run '^$' -bench "$pattern" -benchmem "$@" . | tee "$raw" >&2

go_version=$(go env GOVERSION)
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

awk -v date="$date_tag" -v gover="$go_version" -v commit="$commit" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"commit\": \"%s\",\n", date, gover, commit
    printf "  \"results\": [\n"
    n = 0
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    # Line shape: Benchmark<Name>[/<sub>]-<procs> <iters> <v> <unit> ...
    # Units after ns/op may include custom metrics (e.g. ns/decision)
    # and the -benchmem pair B/op, allocs/op.
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
    for (i = 5; i <= NF; i += 2) {
        unit = $(i + 1)
        if (unit == "B/op")            printf ", \"bytes_per_op\": %s", $i
        else if (unit == "allocs/op")  printf ", \"allocs_per_op\": %s", $i
        else if (unit == "ns/decision") printf ", \"ns_per_decision\": %s", $i
        else if (unit == "snapshot-bytes") printf ", \"snapshot_bytes\": %s", $i
    }
    printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
if [ "$count" -eq 0 ]; then
    echo "bench.sh: no benchmark results parsed; raw output above" >&2
    exit 1
fi
echo "bench.sh: wrote $out ($count benchmarks)" >&2

# Delta report vs the most recent committed BENCH file (ignoring the
# file just written and any uncommitted ones): per-benchmark ns/op
# change, and with -gate a hard failure on >20% regression of the two
# hot-path guards.
prev=$(git ls-files 'BENCH_*.json' 2>/dev/null | grep -vx "$out" | sort | tail -n 1 || true)
if [ -z "$prev" ] || [ ! -f "$prev" ]; then
    echo "bench.sh: no committed BENCH_*.json to compare against" >&2
    exit 0
fi
echo "bench.sh: ns/op deltas vs $prev:" >&2
regressions=$(awk -v gate="$gate" '
function val(line, key,   s) {
    # Extract the number following "key": on a result line.
    s = line
    if (!sub(".*\"" key "\": *", "", s)) return ""
    sub("[,}].*", "", s)
    return s
}
/"name"/ {
    name = val($0, "name")
    sub("^\"", "", name); sub("\".*", "", name)
    ns = val($0, "ns_per_op") + 0
    if (FILENAME == ARGV[1]) { old[name] = ns; next }
    if (!(name in old) || old[name] <= 0) {
        printf "  %-28s %12.0f  (new)\n", name, ns > "/dev/stderr"
        next
    }
    pct = (ns - old[name]) / old[name] * 100
    printf "  %-28s %12.0f -> %-12.0f %+7.1f%%\n", name, old[name], ns, pct > "/dev/stderr"
    if (pct > 20 && name ~ /^(AnalyzerSlack|EngineDecision|EngineDecisionFlight|SnapshotCapture|SnapshotRestore)$/)
        printf "%s %.1f%%\n", name, pct
}
' "$prev" "$out")
if [ -n "$regressions" ]; then
    echo "bench.sh: hot-path regression(s) over 20%:" >&2
    echo "$regressions" | sed 's/^/  /' >&2
    if [ "$gate" -eq 1 ]; then
        echo "bench.sh: -gate: FAIL" >&2
        exit 1
    fi
    echo "bench.sh: (advisory; re-run with -gate to enforce)" >&2
fi
