module dvsslack

go 1.22
