package resilience

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker. It closes (allows
// calls) until Threshold consecutive failures are recorded, then
// opens for Cooldown: Allow fails fast with ErrBreakerOpen. Once the
// cooldown elapses the breaker goes half-open and admits a single
// probe call; a successful probe closes the breaker, a failed probe
// re-opens it for another cooldown.
//
// Breaker is safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	fails     int       // consecutive failures
	openUntil time.Time // zero while closed
	probing   bool      // a half-open probe is in flight
	now       func() time.Time
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures for cooldown per trip. threshold < 1 selects
// 5; cooldown <= 0 selects 1s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed: nil while closed or for
// the single half-open probe, ErrBreakerOpen otherwise. Every
// allowed call must be followed by exactly one Record.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return nil
	}
	if b.now().Before(b.openUntil) {
		return ErrBreakerOpen
	}
	// Cooldown elapsed: half-open. Admit one probe at a time.
	if b.probing {
		return ErrBreakerOpen
	}
	b.probing = true
	return nil
}

// Record reports one call outcome. A success resets the failure run
// and closes the breaker; a failure extends the run and (re)opens the
// breaker at the threshold.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.fails = 0
		b.openUntil = time.Time{}
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
	}
}

// State returns "closed", "open", or "half-open" (diagnostics only;
// the answer may be stale by the time the caller acts on it).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openUntil.IsZero():
		return "closed"
	case b.now().Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}
