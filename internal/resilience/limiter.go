package resilience

import "sync/atomic"

// Limiter is the admission-control primitive: a fixed budget of
// concurrently admitted requests. TryAcquire never blocks — when the
// budget is spent the request is shed immediately (the HTTP layer
// turns that into 429 + Retry-After), which is what keeps an
// overloaded server from accumulating goroutines behind a queue it
// can never drain.
//
// Limiter is safe for concurrent use.
type Limiter struct {
	capacity int64
	inUse    atomic.Int64
}

// NewLimiter returns a limiter admitting up to capacity concurrent
// holders. capacity < 1 selects 1.
func NewLimiter(capacity int) *Limiter {
	if capacity < 1 {
		capacity = 1
	}
	return &Limiter{capacity: int64(capacity)}
}

// TryAcquire takes one admission slot, reporting ErrShed (without
// blocking) when none is free. Each successful acquire must be paired
// with exactly one Release.
func (l *Limiter) TryAcquire() error {
	if l.inUse.Add(1) > l.capacity {
		l.inUse.Add(-1)
		return ErrShed
	}
	return nil
}

// Release returns one slot.
func (l *Limiter) Release() { l.inUse.Add(-1) }

// InUse returns the number of currently admitted holders.
func (l *Limiter) InUse() int { return int(l.inUse.Load()) }

// Capacity returns the admission budget.
func (l *Limiter) Capacity() int { return int(l.capacity) }
