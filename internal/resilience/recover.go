package resilience

import "net/http"

// Recover wraps next so a handler panic is contained to the request
// that caused it: onPanic receives the recovered value (callers count
// it and log the stack) and the client gets a 500 if no response was
// started yet. http.ErrAbortHandler is re-panicked untouched — it is
// the stdlib's (and the chaos injector's) sanctioned way to abort a
// connection and must keep its semantics.
func Recover(next http.Handler, onPanic func(v any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if onPanic != nil {
				onPanic(v)
			}
			if !tw.wrote {
				http.Error(tw, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackingWriter records whether the response was started, so the
// recovery path knows if a 500 can still be written.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *trackingWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *trackingWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// Unwrap exposes the underlying writer to http.ResponseController, so
// streaming handlers behind this middleware keep Flush and
// SetWriteDeadline support.
func (w *trackingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
