package resilience

import (
	"math"
	"time"
)

// Backoff computes exponential retry delays with full jitter: the
// delay before retry attempt n (0-based) is uniform in
// [0, min(Max, Base·Factor^n)). Full jitter (rather than
// equal-jitter or none) desynchronizes retry storms: a burst of
// clients that failed together does not come back together.
//
// The zero value is usable and selects Base 50ms, Factor 2, Max 5s.
type Backoff struct {
	// Base is the cap of the first delay.
	Base time.Duration
	// Max caps every delay.
	Max time.Duration
	// Factor is the per-attempt growth of the cap.
	Factor float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	return b
}

// Cap returns the un-jittered delay ceiling for attempt n:
// min(Max, Base·Factor^n).
func (b Backoff) Cap(attempt int) time.Duration {
	b = b.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := float64(b.Base) * math.Pow(b.Factor, float64(attempt))
	if d > float64(b.Max) || math.IsInf(d, 1) || math.IsNaN(d) {
		return b.Max
	}
	return time.Duration(d)
}

// Delay returns the jittered delay for attempt n. u must be a uniform
// variate in [0, 1) — the caller supplies it (typically from a forked
// prng.Source) so delay sequences are deterministic under test and
// independent across clients in production.
func (b Backoff) Delay(attempt int, u float64) time.Duration {
	if u < 0 || u >= 1 || math.IsNaN(u) {
		u = 0.5
	}
	return time.Duration(u * float64(b.Cap(attempt)))
}
