package resilience

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestChaosDeterministicSequence is the acceptance property: the
// injected fault sequence is a pure function of the seed.
func TestChaosDeterministicSequence(t *testing.T) {
	a, err := NewChaos(DefaultChaos(42))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewChaos(DefaultChaos(42))
	c, _ := NewChaos(DefaultChaos(43))
	same := true
	counts := map[Fault]int{}
	for k := uint64(0); k < 500; k++ {
		fa, ma := a.Plan(k)
		fb, mb := b.Plan(k)
		fc, _ := c.Plan(k)
		if fa != fb || ma != mb {
			t.Fatalf("decision %d differs for identical seeds: (%s,%v) vs (%s,%v)", k, fa, ma, fb, mb)
		}
		if fa != fc {
			same = false
		}
		counts[fa]++
	}
	if same {
		t.Error("different seeds produced identical 500-decision fault sequences")
	}
	// The default mix must exercise every fault class within 500
	// decisions — otherwise the chaos smoke proves nothing.
	for _, f := range []Fault{FaultDelay, FaultError, FaultDrop, FaultTruncate, ""} {
		if counts[f] == 0 {
			t.Errorf("fault %q never drawn in 500 decisions: %v", f, counts)
		}
	}
}

func TestChaosConfigValidation(t *testing.T) {
	if _, err := NewChaos(ChaosConfig{DelayP: -0.1}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewChaos(ChaosConfig{DelayP: 0.5, ErrorP: 0.6}); err == nil {
		t.Error("probabilities summing over 1 accepted")
	}
}

func okHandler() (http.Handler, *int) {
	var hits int
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok": true}`)
	}), &hits
}

// chaosFor builds an injector whose first decision is the wanted
// fault, by scanning seeds. Failing to find one within 10k seeds
// would mean the Plan distribution is broken.
func chaosFor(t *testing.T, want Fault, cfg func(*ChaosConfig)) *Chaos {
	t.Helper()
	for seed := uint64(0); seed < 10000; seed++ {
		c := DefaultChaos(seed)
		if cfg != nil {
			cfg(&c)
		}
		ch, err := NewChaos(c)
		if err != nil {
			t.Fatal(err)
		}
		if f, _ := ch.Plan(0); f == want {
			return ch
		}
	}
	t.Fatalf("no seed found whose first decision is %q", want)
	return nil
}

func TestChaosErrorFault(t *testing.T) {
	h, hits := okHandler()
	var injected []Fault
	ch := chaosFor(t, FaultError, func(c *ChaosConfig) {
		c.OnInject = func(f Fault) { injected = append(injected, f) }
	})
	srv := httptest.NewServer(ch.Middleware(h))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Fatalf("status = %d, want injected 5xx", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos") {
		t.Fatalf("body %q does not identify the injected error", body)
	}
	if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 missing Retry-After")
	}
	if *hits != 0 {
		t.Error("handler ran despite injected error")
	}
	if len(injected) != 1 || injected[0] != FaultError {
		t.Errorf("OnInject saw %v, want [error]", injected)
	}
}

func TestChaosDropFault(t *testing.T) {
	h, _ := okHandler()
	ch := chaosFor(t, FaultDrop, nil)
	srv := httptest.NewServer(ch.Middleware(h))
	defer srv.Close()

	_, err := http.Get(srv.URL + "/x")
	if err == nil {
		t.Fatal("dropped connection produced a response")
	}
}

func TestChaosTruncateFault(t *testing.T) {
	big := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 64<<10)))
	})
	ch := chaosFor(t, FaultTruncate, nil)
	srv := httptest.NewServer(ch.Middleware(big))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(body) == 64<<10 {
			t.Fatal("truncate fault delivered the full body cleanly")
		}
	}
}

func TestChaosDelayFault(t *testing.T) {
	h, hits := okHandler()
	var slept time.Duration
	ch := chaosFor(t, FaultDelay, nil)
	ch.sleep = func(d time.Duration) { slept = d }
	srv := httptest.NewServer(ch.Middleware(h))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || *hits != 1 {
		t.Fatalf("delayed request: status %d hits %d", resp.StatusCode, *hits)
	}
	if slept <= 0 || slept > 25*time.Millisecond {
		t.Errorf("injected delay %v outside (0, MaxDelay]", slept)
	}
}

func TestChaosExemptPaths(t *testing.T) {
	h, hits := okHandler()
	cfg := ChaosConfig{Seed: 1, ErrorP: 1} // inject on every request
	cfg.Exempt = []string{"/healthz", "/metrics"}
	ch, err := NewChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ch.Middleware(h))
	defer srv.Close()

	for _, path := range []string{"/healthz", "/metrics", "/metrics.prom"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("exempt path %s got injected status %d", path, resp.StatusCode)
		}
	}
	if *hits != 3 {
		t.Errorf("handler hits = %d, want 3", *hits)
	}
	resp, err := http.Get(srv.URL + "/v1/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode < 500 {
		t.Errorf("non-exempt path escaped ErrorP=1 injection: %d", resp.StatusCode)
	}
}
