// Package resilience is the failure-handling toolkit shared by the
// dvsd serving stack and its client: exponential backoff with full
// jitter, a consecutive-failure circuit breaker, an admission limiter
// for load shedding, panic-recovery HTTP middleware, and a
// deterministic seeded fault injector for chaos testing.
//
// Everything is stdlib-only and deterministic where it matters: the
// jitter and the injected fault sequence are both driven by
// internal/prng, so resilience behaviour can be pinned in tests the
// same way simulation results are (same seed, same schedule — the
// discipline the rest of the repo applies to workloads).
//
// The split of responsibilities mirrors the paper's offline/online
// separation: admission control and per-request deadlines are the
// "offline guarantee" (bounded queues, bounded waiting), while retry,
// backoff, and the breaker are the "online adaptation" that spends
// the remaining budget when reality misbehaves.
package resilience

import "errors"

// ErrShed is returned by admission control when the accept queue is
// at capacity: the caller should surface 429/503 with a Retry-After
// hint rather than wait.
var ErrShed = errors.New("resilience: overloaded, request shed")

// ErrBreakerOpen is returned while the circuit breaker is open:
// recent consecutive failures exceeded the threshold and the cooldown
// has not elapsed, so calls fail fast instead of queueing up behind a
// dead dependency.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")
