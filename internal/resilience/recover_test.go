package resilience

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestRecoverConvertsPanicTo500(t *testing.T) {
	var caught any
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}), func(v any) { caught = v })
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("panicking handler killed the connection: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
	if caught != "handler bug" {
		t.Errorf("onPanic got %v, want the panic value", caught)
	}

	// The server survives: the next request is served normally.
	resp2, err := http.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
}

func TestRecoverMidResponsePanic(t *testing.T) {
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		panic("late bug")
	}), nil)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// The 200 already went out; recovery must not try to write a 500
	// on top (which would be a superfluous-WriteHeader bug). The
	// request itself may or may not error at the transport level —
	// either way the server must keep serving.
	resp, err := http.Get(srv.URL + "/x")
	if err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("status = %d, want the already-sent 200", resp.StatusCode)
		}
	}
	resp2, err := http.Get(srv.URL + "/x")
	if err == nil {
		resp2.Body.Close()
	}
}

func TestRecoverPassesAbortHandlerThrough(t *testing.T) {
	called := false
	h := Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), func(v any) { called = true })
	srv := httptest.NewServer(h)
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/x"); err == nil {
		t.Fatal("ErrAbortHandler did not abort the connection")
	}
	if called {
		t.Error("onPanic fired for ErrAbortHandler (it is not a bug, it is flow control)")
	}
}
