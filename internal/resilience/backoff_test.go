package resilience

import (
	"testing"
	"time"

	"dvsslack/internal/prng"
)

func TestBackoffCapGrowth(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := b.Cap(i); got != w {
			t.Errorf("Cap(%d) = %v, want %v", i, got, w)
		}
	}
	// Huge attempt counts must saturate at Max, not overflow.
	if got := b.Cap(500); got != 2*time.Second {
		t.Errorf("Cap(500) = %v, want cap at Max", got)
	}
	if got := b.Cap(-3); got != b.Cap(0) {
		t.Errorf("negative attempt Cap = %v, want Cap(0) %v", got, b.Cap(0))
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if got := b.Cap(0); got != 50*time.Millisecond {
		t.Errorf("zero-value Cap(0) = %v, want 50ms", got)
	}
	if got := b.Cap(100); got != 5*time.Second {
		t.Errorf("zero-value Cap(100) = %v, want 5s", got)
	}
}

// TestBackoffFullJitter checks Delay stays in [0, Cap) and uses the
// whole range: full jitter means a retrying fleet spreads out.
func TestBackoffFullJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	rng := prng.New(42)
	var lo, hi time.Duration = time.Hour, 0
	for i := 0; i < 1000; i++ {
		d := b.Delay(2, rng.Float64())
		if d < 0 || d >= b.Cap(2) {
			t.Fatalf("Delay out of [0, %v): %v", b.Cap(2), d)
		}
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if lo > 40*time.Millisecond || hi < 360*time.Millisecond {
		t.Errorf("jitter not spread across the range: [%v, %v] over cap %v", lo, hi, b.Cap(2))
	}
	// Degenerate variates fall back rather than panic or go negative.
	if d := b.Delay(0, -1); d < 0 || d >= b.Cap(0) {
		t.Errorf("Delay with u=-1 = %v", d)
	}
}

// TestBackoffDeterministic: the same variate stream gives the same
// delay sequence — the property the chaos tests and the client's
// seeded retry jitter rely on.
func TestBackoffDeterministic(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2}
	a, c := prng.New(7), prng.New(7)
	for i := 0; i < 50; i++ {
		if da, dc := b.Delay(i%6, a.Float64()), b.Delay(i%6, c.Float64()); da != dc {
			t.Fatalf("attempt %d: %v != %v with identical seeds", i, da, dc)
		}
	}
}
