package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock lets the tests move the breaker through its states
// without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedBreaker(th int, cd time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(th, cd)
	c := &fakeClock{t: time.Unix(1000, 0)}
	b.now = c.now
	return b, c
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := newClockedBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.Record(false)
	}
	if b.State() != "closed" {
		t.Fatalf("state after 2/3 failures = %s, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(false) // third consecutive failure trips it
	if b.State() != "open" {
		t.Fatalf("state after 3/3 failures = %s, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a call (err=%v)", err)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b, _ := newClockedBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("call %d refused: %v", i, err)
		}
		b.Record(i%2 == 0) // alternating outcomes never reach 3 consecutive
	}
	if b.State() != "closed" {
		t.Fatalf("state = %s, want closed under alternating outcomes", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newClockedBreaker(2, time.Second)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker not open after threshold")
	}

	clk.advance(1100 * time.Millisecond)
	if b.State() != "half-open" {
		t.Fatalf("state after cooldown = %s, want half-open", b.State())
	}
	// Exactly one probe is admitted.
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Failed probe re-opens for a fresh cooldown.
	b.Record(false)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker closed after a failed probe")
	}
	clk.advance(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Record(true) // successful probe closes it
	if b.State() != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed breaker refused a call: %v", err)
	}
}
