package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLimiterCapacity(t *testing.T) {
	l := NewLimiter(2)
	if l.Capacity() != 2 {
		t.Fatalf("capacity = %d", l.Capacity())
	}
	if err := l.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	if err := l.TryAcquire(); err != nil {
		t.Fatal(err)
	}
	if err := l.TryAcquire(); !errors.Is(err, ErrShed) {
		t.Fatalf("third acquire on capacity 2: err = %v, want ErrShed", err)
	}
	if l.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2 (failed acquire must not leak a slot)", l.InUse())
	}
	l.Release()
	if err := l.TryAcquire(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLimiterDegenerateCapacity(t *testing.T) {
	l := NewLimiter(0)
	if l.Capacity() != 1 {
		t.Fatalf("capacity = %d, want 1", l.Capacity())
	}
}

// TestLimiterConcurrent hammers the limiter from many goroutines and
// checks the admission invariant (never more than capacity holders)
// plus full accounting (everything released, nothing leaked). Run
// under -race by the tier-1 gate.
func TestLimiterConcurrent(t *testing.T) {
	const capacity, goroutines, rounds = 8, 32, 200
	l := NewLimiter(capacity)
	var maxSeen atomic.Int64
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if l.TryAcquire() != nil {
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				if n := int64(l.InUse()); n > maxSeen.Load() {
					maxSeen.Store(n)
				}
				l.Release()
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > capacity {
		t.Errorf("observed %d concurrent holders, capacity %d", maxSeen.Load(), capacity)
	}
	if l.InUse() != 0 {
		t.Errorf("InUse = %d after all releases, want 0", l.InUse())
	}
	if admitted.Load()+shed.Load() != goroutines*rounds {
		t.Errorf("admitted %d + shed %d != %d attempts", admitted.Load(), shed.Load(), goroutines*rounds)
	}
}
