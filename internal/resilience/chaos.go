package resilience

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"dvsslack/internal/prng"
)

// Fault is one injectable failure class.
type Fault string

// The fault vocabulary. Delay stalls the request before handling;
// Error short-circuits it with a 5xx; Drop aborts the connection
// before the handler runs (the client sees EOF / connection reset);
// Truncate runs the handler against a byte-limited writer and aborts
// the connection mid-body — which, on the SSE endpoint, is exactly a
// truncated event stream.
const (
	// FaultNone is the no-injection outcome of a Plan draw.
	FaultNone     Fault = ""
	FaultDelay    Fault = "delay"
	FaultError    Fault = "error"
	FaultDrop     Fault = "drop"
	FaultTruncate Fault = "truncate"
)

// ChaosConfig tunes the deterministic fault injector.
type ChaosConfig struct {
	// Seed selects the fault sequence. The k-th injection decision is
	// a pure function of (Seed, k), so a given seed always produces
	// the same sequence of faults regardless of goroutine scheduling.
	Seed uint64
	// DelayP, ErrorP, DropP, TruncateP are the per-request injection
	// probabilities of each fault class; their sum must be <= 1 and
	// the remainder is served untouched.
	DelayP, ErrorP, DropP, TruncateP float64
	// MaxDelay bounds injected delays; <= 0 selects 25ms.
	MaxDelay time.Duration
	// TruncateBytes bounds how much of a truncated response is let
	// through; <= 0 selects 256.
	TruncateBytes int
	// Exempt lists path prefixes never injected (health and metrics
	// endpoints stay reliable so probes and scrapes tell the truth).
	Exempt []string
	// OnInject, when non-nil, observes every injected fault (the
	// daemon counts them into dvsd_chaos_injected_total).
	OnInject func(Fault)
}

// DefaultChaos returns the standard test mix for a seed: 10% delays
// up to 25ms, 10% 5xx errors, 5% connection drops, 5% truncations —
// aggressive enough that a 50-request workload sees every class, mild
// enough that a retrying client always gets through.
func DefaultChaos(seed uint64) ChaosConfig {
	return ChaosConfig{
		Seed:   seed,
		DelayP: 0.10, ErrorP: 0.10, DropP: 0.05, TruncateP: 0.05,
		MaxDelay: 25 * time.Millisecond,
	}
}

// Chaos injects deterministic faults into an HTTP handler chain. Use
// New to construct; the zero value injects nothing.
type Chaos struct {
	cfg ChaosConfig
	n   atomic.Uint64 // injection points consumed
	// sleep is swapped by tests to avoid real waiting.
	sleep func(time.Duration)
}

// NewChaos validates cfg and returns an injector.
func NewChaos(cfg ChaosConfig) (*Chaos, error) {
	for _, p := range []float64{cfg.DelayP, cfg.ErrorP, cfg.DropP, cfg.TruncateP} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("resilience: chaos probability %v out of [0, 1]", p)
		}
	}
	if sum := cfg.DelayP + cfg.ErrorP + cfg.DropP + cfg.TruncateP; sum > 1 {
		return nil, fmt.Errorf("resilience: chaos probabilities sum to %v > 1", sum)
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 25 * time.Millisecond
	}
	if cfg.TruncateBytes <= 0 {
		cfg.TruncateBytes = 256
	}
	return &Chaos{cfg: cfg, sleep: time.Sleep}, nil
}

// Plan returns the decision for the k-th injection point: the fault
// ("" for none) and a magnitude in [0, 1) that scales the fault
// (delay length, truncation point, error code choice). Plan is pure —
// the whole sequence is reproducible from the seed alone.
func (c *Chaos) Plan(k uint64) (Fault, float64) {
	u := prng.Float64(prng.Hash3(c.cfg.Seed, int(k), 0))
	v := prng.Float64(prng.Hash3(c.cfg.Seed, int(k), 1))
	switch {
	case u < c.cfg.DelayP:
		return FaultDelay, v
	case u < c.cfg.DelayP+c.cfg.ErrorP:
		return FaultError, v
	case u < c.cfg.DelayP+c.cfg.ErrorP+c.cfg.DropP:
		return FaultDrop, v
	case u < c.cfg.DelayP+c.cfg.ErrorP+c.cfg.DropP+c.cfg.TruncateP:
		return FaultTruncate, v
	}
	return "", v
}

// next consumes one injection point. The atomic counter makes the
// sequence of decisions deterministic even when requests race: the
// k-th admitted request (in counter order) always draws decision k.
func (c *Chaos) next() (Fault, float64) {
	return c.Plan(c.n.Add(1) - 1)
}

func (c *Chaos) exempt(path string) bool {
	for _, p := range c.cfg.Exempt {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

func (c *Chaos) inject(f Fault) {
	if c.cfg.OnInject != nil {
		c.cfg.OnInject(f)
	}
}

// Middleware wraps next with fault injection.
func (c *Chaos) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c.exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		fault, mag := c.next()
		switch fault {
		case FaultDelay:
			c.inject(fault)
			c.sleep(time.Duration(mag * float64(c.cfg.MaxDelay)))
		case FaultError:
			c.inject(fault)
			codes := []int{http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable}
			code := codes[int(mag*float64(len(codes)))%len(codes)]
			if code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			fmt.Fprintf(w, "{\"error\": \"chaos: injected %d\"}\n", code)
			return
		case FaultDrop:
			c.inject(fault)
			panic(http.ErrAbortHandler)
		case FaultTruncate:
			c.inject(fault)
			w = &truncatingWriter{ResponseWriter: w, remaining: 1 + int(mag*float64(c.cfg.TruncateBytes))}
		}
		next.ServeHTTP(w, r)
	})
}

// truncatingWriter lets a bounded prefix of the response through,
// then aborts the connection, leaving the client with a torn body.
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
}

func (w *truncatingWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		panic(http.ErrAbortHandler)
	}
	if len(p) > w.remaining {
		// Flush the allowed prefix so it actually reaches the wire
		// before the abort tears the connection down.
		w.ResponseWriter.Write(p[:w.remaining])
		w.remaining = 0
		if f, ok := w.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.remaining -= len(p)
	return w.ResponseWriter.Write(p)
}

// Unwrap keeps http.ResponseController working through the wrapper.
func (w *truncatingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
