package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"

	"dvsslack/internal/obs"
	"dvsslack/internal/server"
)

// EmbeddedWorker is one in-process dvsd: a real server.Server behind
// a real loopback TCP listener, so the coordinator exercises the
// genuine wire path (HTTP dial, JSON, /readyz) while tests and
// cmd/dvsfleet -embedded stand a whole fleet up deterministically in
// one process.
type EmbeddedWorker struct {
	addr   string
	srv    *server.Server
	hs     *http.Server
	killed atomic.Bool
}

// Addr returns the worker's listen address (host:port).
func (w *EmbeddedWorker) Addr() string { return w.addr }

// Kill hard-stops the worker: the listener and every open connection
// close immediately, exactly what a crashed process looks like to the
// coordinator. In-flight simulations are abandoned mid-connection so
// failover (not graceful drain) handles their keys.
func (w *EmbeddedWorker) Kill() {
	if !w.killed.CompareAndSwap(false, true) {
		return
	}
	w.hs.Close()
}

// Killed reports whether Kill ran.
func (w *EmbeddedWorker) Killed() bool { return w.killed.Load() }

// Drain shuts the worker down gracefully: stop accepting, finish
// in-flight work up to ctx's deadline. A no-op after Kill.
func (w *EmbeddedWorker) Drain(ctx context.Context) error {
	if w.killed.Load() {
		return nil
	}
	if err := w.hs.Shutdown(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	return w.srv.Shutdown(ctx)
}

// StartEmbedded launches n in-process dvsd workers on loopback
// listeners, each built from cfg (Workers/CacheSize/etc. apply to
// every node). A configured Tracer acts as a template: every worker
// gets its own ring of the same service name and capacity, so the
// fleet trace dump attributes spans to the node that recorded them.
// The caller owns their lifecycle: Drain or Kill each.
func StartEmbedded(n int, cfg server.Config) ([]*EmbeddedWorker, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: embedded fleet needs at least 1 worker, got %d", n)
	}
	workers := make([]*EmbeddedWorker, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, w := range workers {
				w.Kill()
			}
			return nil, fmt.Errorf("cluster: embedded worker %d: %w", i, err)
		}
		wcfg := cfg
		if cfg.Tracer != nil {
			wcfg.Tracer = obs.NewTracer(cfg.Tracer.Service(), cfg.Tracer.Capacity())
		}
		w := &EmbeddedWorker{
			addr: ln.Addr().String(),
			srv:  server.New(wcfg),
		}
		w.hs = &http.Server{Handler: w.srv.Handler()}
		go w.hs.Serve(ln)
		workers = append(workers, w)
	}
	return workers, nil
}

// Addrs returns the address list of an embedded fleet.
func Addrs(workers []*EmbeddedWorker) []string {
	out := make([]string, len(workers))
	for i, w := range workers {
		out[i] = w.Addr()
	}
	return out
}

// KillFunc adapts an embedded fleet to Config.Kill: the coordinator's
// POST /v1/cluster/kill endpoint hard-stops the named worker.
func KillFunc(workers []*EmbeddedWorker) func(addr string) error {
	return func(addr string) error {
		for _, w := range workers {
			if w.Addr() == addr {
				w.Kill()
				return nil
			}
		}
		return fmt.Errorf("cluster: no embedded worker at %s", addr)
	}
}
