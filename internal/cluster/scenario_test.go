package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"dvsslack/client"
	"dvsslack/internal/scenario"
	"dvsslack/internal/server"
)

const fleetScenario = `version: 1
name: fleet-smoke
policies: [lpshe, nondvs]
tasks:
  - name: A
    wcet: 1
    period: 5
  - name: B
    wcet: 2
    period: 10
workload:
  kind: uniform
  lo: 0.4
  hi: 0.95
  seed: 23
assertions:
  - kind: no_deadline_misses
  - kind: audit_clean
  - kind: energy_ratio_max
    policy: lpshe
    reference: nondvs
    max: 0.99
`

func fleetLocalVerdict(t *testing.T, doc []byte) []byte {
	t.Helper()
	d, errs := scenario.Parse("test", doc)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	v, err := scenario.Execute(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	return v.JSON()
}

// TestFleetScenarioByteIdentical pins the central transport contract
// of the scenario subsystem: a document run through a 3-worker fleet
// answers with exactly the bytes a local execution produces.
func TestFleetScenarioByteIdentical(t *testing.T) {
	f := newTestFleet(t, 3, Config{})
	want := fleetLocalVerdict(t, []byte(fleetScenario))

	got, err := f.c.RunScenario(context.Background(), []byte(fleetScenario))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet verdict differs from local execution:\n%s\n---\n%s", got, want)
	}

	// Repeat: same document, same key, same worker, same bytes.
	again, err := f.c.RunScenario(context.Background(), []byte(fleetScenario))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("repeat run through the fleet produced different bytes")
	}
}

// TestFleetScenarioFailover kills the document's owning worker and
// asserts the re-run fails over to a successor with identical bytes.
func TestFleetScenarioFailover(t *testing.T) {
	f := newTestFleet(t, 3, Config{})
	want := fleetLocalVerdict(t, []byte(fleetScenario))
	ctx := context.Background()

	if _, err := f.c.RunScenario(ctx, []byte(fleetScenario)); err != nil {
		t.Fatal(err)
	}
	// The owner is the first in-ring candidate for the document key.
	d, _ := scenario.Parse("test", []byte(fleetScenario))
	cands := f.coord.candidates(scenario.DocKey(d))
	if len(cands) < 2 {
		t.Fatalf("need >= 2 candidates, got %v", cands)
	}
	for _, w := range f.workers {
		if w.Addr() == cands[0] {
			w.Kill()
		}
	}
	got, err := f.c.RunScenario(ctx, []byte(fleetScenario))
	if err != nil {
		t.Fatalf("run after killing owner %s: %v", cands[0], err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failover verdict differs from local execution:\n%s\n---\n%s", got, want)
	}
}

// TestFleetScenarioValidation pins that the coordinator validates
// locally and lists every error, wire-compatible with dvsd's 400.
func TestFleetScenarioValidation(t *testing.T) {
	f := newTestFleet(t, 1, Config{})
	bad := `version: 9
name: bad doc
policies: [nope]
tasks:
  - name: A
    wcet: 0
    period: 5
assertions:
  - kind: bogus
`
	_, err := f.c.RunScenario(context.Background(), []byte(bad))
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error = %v, want *APIError", err)
	}
	if ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", ae.StatusCode)
	}
	if len(ae.Errors) < 4 {
		t.Fatalf("Errors lists %d problems, want all (>= 4): %v", len(ae.Errors), ae.Errors)
	}

	// The same document must draw the same error list straight from a
	// dvsd worker, so clients cannot tell coordinator from daemon.
	resp, err := http.Post("http://"+f.workers[0].Addr()+"/v1/scenario", "application/yaml", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb server.ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if strings.Join(eb.Errors, "\n") != strings.Join(ae.Errors, "\n") {
		t.Fatalf("worker errors %v != coordinator errors %v", eb.Errors, ae.Errors)
	}
}

// TestFleetScenarioNoWorkers pins the 503 when the whole fleet is
// down.
func TestFleetScenarioNoWorkers(t *testing.T) {
	f := newTestFleet(t, 1, Config{})
	f.workers[0].Kill()
	// Two failed probes cross the default FailThreshold and empty the
	// ring, so the coordinator answers ErrNoWorkers rather than
	// exhausting the failover ladder.
	f.coord.probeAll()
	f.coord.probeAll()
	resp, err := http.Post(f.hs.URL+"/v1/scenario", "application/yaml", strings.NewReader(fleetScenario))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}
