package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"testing"
	"time"

	"dvsslack/client"
	"dvsslack/internal/obs"
	"dvsslack/internal/server"
)

// longFleetRequest mirrors the server package's long-horizon request:
// ~200ms of simulation, so a drain lands mid-run and has real state
// to move.
func longFleetRequest(policy string, seed uint64) server.SimRequest {
	req := testRequest(policy, seed)
	req.Horizon = 1e6
	return req
}

// canonFleetResults is the migration test's equality lens: outcomes
// sorted by index with wall time and cache provenance zeroed —
// everything else must survive the move bit-for-bit.
func canonFleetResults(t *testing.T, ros []server.RunOutcome) string {
	t.Helper()
	cp := make([]server.RunOutcome, len(ros))
	copy(cp, ros)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Index < cp[j].Index })
	for i := range cp {
		if cp[i].Result != nil {
			r := *cp[i].Result
			r.WallNanos = 0
			r.Cached = false
			cp[i].Result = &r
		}
	}
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDrainMigration drives the fleet's live-migration path: a job
// running on one worker is checkpointed mid-simulation by POST
// /v1/cluster/drain, restored on a ring successor, and finishes there
// with outcomes byte-identical to an uninterrupted local run.
func TestDrainMigration(t *testing.T) {
	f := newTestFleet(t, 3, Config{
		HealthInterval: time.Hour, // keep the checker quiet
		Tracer:         obs.NewTracer("dvsfleet", 256),
	})
	ctx := context.Background()

	src := f.workers[0].Addr()
	wc := client.New("http://" + src)
	batch := server.BatchRequest{Name: "migrate-me"}
	batch.Runs = append(batch.Runs,
		longFleetRequest("lpshe", 51), longFleetRequest("cc", 52), longFleetRequest("dra", 53))
	info, err := wc.CreateJob(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)

	resp, err := http.Post(f.hs.URL+"/v1/cluster/drain?worker="+src, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Drained  string `json:"drained"`
		Migrated int    `json:"migrated"`
		Failed   int    `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Drained != src || body.Migrated < 1 || body.Failed != 0 {
		t.Fatalf("drain response %+v, want drained=%s migrated>=1 failed=0", body, src)
	}

	// The source keeps the paused husk; the successor runs the job.
	srcJob, err := wc.Job(ctx, info.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if srcJob.State != server.JobCheckpointed {
		t.Fatalf("source job state = %s, want %s", srcJob.State, server.JobCheckpointed)
	}

	var final server.JobInfo
	var found bool
	for _, w := range f.workers[1:] {
		dc := client.New("http://" + w.Addr())
		jobs, err := dc.Jobs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			if j.Name != batch.Name {
				continue
			}
			if found {
				t.Fatalf("job restored on more than one worker")
			}
			found = true
			wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
			final, err = dc.WaitJob(wctx, j.ID, 20*time.Millisecond)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if !found {
		t.Fatal("migrated job not found on any other worker")
	}
	if final.State != server.JobDone {
		t.Fatalf("migrated job state = %s (error %q), want done", final.State, final.Error)
	}
	if len(final.Results) != len(batch.Runs) {
		t.Fatalf("migrated job has %d results, want %d", len(final.Results), len(batch.Runs))
	}

	// Reference: the same batch run uninterrupted on the last worker.
	rc := client.New("http://" + f.workers[2].Addr())
	refBatch := batch
	refBatch.Name = "migrate-ref"
	refInfo, err := rc.CreateJob(ctx, refBatch)
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	ref, err := rc.WaitJob(wctx, refInfo.ID, 20*time.Millisecond)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if ref.State != server.JobDone {
		t.Fatalf("reference job state = %s, want done", ref.State)
	}
	if got, want := canonFleetResults(t, final.Results), canonFleetResults(t, ref.Results); got != want {
		t.Errorf("migrated outcomes differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// The counter and the span both record the move.
	mresp, err := http.Get(f.hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap FleetSnapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Migrations < 1 {
		t.Errorf("fleet snapshot migrations = %d, want >= 1", snap.Migrations)
	}

	dump := fleetTraceDump(t, f.hs.URL)
	var migrateSpan *obs.SpanRecord
	for i := range dump.Spans {
		if dump.Spans[i].Name == "fleet.migrate" {
			migrateSpan = &dump.Spans[i]
			break
		}
	}
	if migrateSpan == nil {
		t.Fatal("no fleet.migrate span recorded")
	}
	if migrateSpan.Attrs["from"] != src || migrateSpan.Attrs["outcome"] != "ok" {
		t.Errorf("fleet.migrate span attrs = %v, want from=%s outcome=ok", migrateSpan.Attrs, src)
	}
}
