package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"dvsslack/client"
	"dvsslack/internal/experiment"
	"dvsslack/internal/server"
	"dvsslack/internal/sim"
)

// coordExec mirrors cmd/dvsexp's remote executor: ship each
// measurement to the coordinator, fall back to in-process execution
// for configurations without a wire form.
func coordExec(c *client.Client) experiment.Exec {
	return func(cfg sim.Config) (sim.Result, error) {
		req, err := server.RequestFromConfig(cfg)
		if err != nil {
			return sim.Run(cfg)
		}
		res, err := c.Simulate(context.Background(), req)
		if err != nil {
			return sim.Result{}, fmt.Errorf("fleet run: %w", err)
		}
		return res.Sim(), nil
	}
}

// renderReport flattens a report to the exact bytes dvsexp would
// print (text + CSV), the unit of the byte-identity guarantee.
func renderReport(r *experiment.Report) []byte {
	var buf bytes.Buffer
	r.Print(&buf)
	r.PrintCSV(&buf)
	return buf.Bytes()
}

// TestFleetGridByteIdentical pins the acceptance criterion: the t2
// experiment grid executed through a 3-worker fleet produces a report
// byte-identical to the single-process run — including when a worker
// is killed mid-grid, because routing and failover choose only WHERE
// a deterministic simulation runs, and the harness merges cells in
// submission order regardless of completion order.
func TestFleetGridByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick t2 grid three times")
	}
	opts := experiment.Options{Quick: true, Seeds: 2}

	local, err := experiment.Run("t2", opts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderReport(local)

	t.Run("healthy fleet", func(t *testing.T) {
		f := newTestFleet(t, 3, Config{})
		opts := opts
		opts.Exec = coordExec(f.c)
		got, err := experiment.Run("t2", opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(renderReport(got), want) {
			t.Fatalf("fleet report differs from single-process report:\n--- local ---\n%s\n--- fleet ---\n%s",
				want, renderReport(got))
		}
	})

	t.Run("worker killed mid-grid", func(t *testing.T) {
		f := newTestFleet(t, 3, Config{HealthInterval: time.Hour})
		var once sync.Once
		opts := opts
		opts.Exec = coordExec(f.c)
		opts.Progress = func(done, total int) {
			// Kill a worker while the grid is in flight: the remaining
			// cells must fail over with no effect on the report.
			once.Do(func() { f.workers[1].Kill() })
		}
		got, err := experiment.Run("t2", opts)
		if err != nil {
			t.Fatal(err)
		}
		if !f.workers[1].Killed() {
			t.Fatal("kill hook never fired: grid ran no cells")
		}
		if !bytes.Equal(renderReport(got), want) {
			t.Fatalf("fleet report with mid-grid worker kill differs from single-process report:\n--- local ---\n%s\n--- fleet ---\n%s",
				want, renderReport(got))
		}
	})
}

// TestFleetFailoverMetric deterministically drives a request at a
// killed worker's key and asserts the failover counter and /v1/cluster
// reflect it (the probabilistic half of verify.sh's smoke, pinned
// precisely here).
func TestFleetFailoverMetric(t *testing.T) {
	f := newTestFleet(t, 3, Config{HealthInterval: time.Hour})
	ctx := context.Background()

	victim := f.workers[2]
	// Find a request whose key the victim owns; with 3 workers a
	// handful of seeds always suffices.
	var req server.SimRequest
	found := false
	for seed := uint64(0); seed < 64 && !found; seed++ {
		r := testRequest("dra", seed)
		key, err := server.ScenarioKey(&r)
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := f.coord.ring.Lookup(key); owner == victim.Addr() {
			req, found = r, true
		}
	}
	if !found {
		t.Fatalf("no key in 64 seeds owned by %s: ring distribution is broken", victim.Addr())
	}

	victim.Kill()
	if _, err := f.c.Simulate(ctx, req); err != nil {
		t.Fatalf("simulate at dead worker's key: %v", err)
	}

	if n := f.coord.met.failovers.With(victim.Addr()).Value(); n < 1 {
		t.Fatalf("failovers{%s} = %v, want >= 1", victim.Addr(), n)
	}
	found = false
	for _, wi := range f.coord.WorkerInfos() {
		if wi.Addr != victim.Addr() {
			continue
		}
		found = true
		if wi.State != WorkerDown || wi.InRing || wi.FailedOver < 1 {
			t.Fatalf("WorkerInfo for killed worker = %+v", wi)
		}
	}
	if !found {
		t.Fatalf("killed worker %s missing from WorkerInfos", victim.Addr())
	}
}
