// Package cluster implements dvsfleet, the multi-node control plane
// over dvsd workers: a consistent-hash ring that pins canonicalized
// scenario keys to workers (cache affinity — repeat simulations hit
// the same worker's LRU result cache), an active/passive health
// checker over /readyz with cordon/uncordon and drain-aware
// rebalancing, transparent failover of keys off unhealthy nodes, and
// a coordinator HTTP front end that proxies the dvsd wire protocol
// unchanged — existing clients (cmd/dvsexp -addr, cmd/dvshammer, the
// Go client) point at the coordinator instead of a single daemon and
// work as before, with experiment grids fanned out across the fleet.
//
// See docs/cluster.md for topology, routing, and failover semantics.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultReplicas is the virtual-node count per worker on the ring.
// More replicas smooth the key distribution (and tighten the bounded
// key-movement property when the worker set changes) at the price of
// a longer sorted point list; 160 keeps the movement on add/remove of
// one worker well under 2/N of the key space in practice.
const DefaultReplicas = 160

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a worker.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring mapping string keys onto node names.
// The mapping is a pure function of the member set: two rings holding
// the same nodes assign every key identically, regardless of the
// order in which nodes were added or of any earlier membership — the
// property the routing-determinism tests pin. Ring is safe for
// concurrent use.
type Ring struct {
	replicas int

	mu     sync.RWMutex
	points []ringPoint // sorted by (hash, node)
	nodes  map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// node (<= 0 selects DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, nodes: map[string]struct{}{}}
}

// hash64 is the ring's hash function: FNV-1a, stable across processes
// and Go releases (unlike maphash), so key→worker assignment survives
// coordinator restarts.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	// (hash, node) ordering makes the point list — and therefore every
	// lookup — independent of insertion order even under hash ties.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Remove deletes a node (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[node]
	return ok
}

// Nodes returns the member set in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Lookup returns the node owning key (the first virtual node at or
// clockwise of the key's hash). ok is false on an empty ring.
func (r *Ring) Lookup(key string) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].node, true
}

// Successors returns up to n distinct nodes in ring order starting at
// key's owner: the failover sequence for that key. n <= 0 returns
// every member. The first element equals Lookup(key).
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// search returns the index of the first point at or clockwise of
// key's hash (callers hold at least a read lock and have checked the
// ring is non-empty).
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return i
}
