package cluster

import (
	"io"
	"time"

	"dvsslack/internal/obs"
)

// latencyBuckets mirror dvsd's HTTP latency histogram bounds so
// coordinator and worker latency distributions are comparable
// bucket-for-bucket.
var latencyBuckets = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100,
}

// fleetMetrics aggregates the coordinator's counters on an
// obs.Registry (served as Prometheus text on /metrics.prom and folded
// into the /metrics JSON snapshot).
type fleetMetrics struct {
	reg   *obs.Registry
	start time.Time

	requests    *obs.CounterVec // endpoint -> count
	errors      *obs.CounterVec // endpoint -> non-2xx count
	httpLatency *obs.HistogramVec

	routed      *obs.CounterVec // worker -> requests routed to it
	failovers   *obs.CounterVec // worker -> requests failed over away from it
	retries     *obs.Counter    // re-routes past a shed/saturated worker (not marked down)
	proxyErrors *obs.Counter    // requests that exhausted every candidate worker

	jobsCreated  *obs.Counter
	jobsFinished *obs.Counter
	fanoutRuns   *obs.Counter // fleet-job runs fanned out to workers

	migrations *obs.CounterVec // jobs live-migrated off a worker, by reason
}

func newFleetMetrics(c *Coordinator) *fleetMetrics {
	m := &fleetMetrics{reg: obs.NewRegistry(), start: time.Now()}
	r := m.reg
	r.GaugeFunc("dvsfleet_uptime_seconds", "seconds since the coordinator started",
		func() float64 { return time.Since(m.start).Seconds() })
	r.GaugeFunc("dvsfleet_workers", "registered workers",
		func() float64 { return float64(c.workerCount()) })
	r.GaugeFunc("dvsfleet_workers_healthy", "workers currently in the healthy state",
		func() float64 { return float64(c.healthyCount()) })
	r.GaugeFunc("dvsfleet_ring_nodes", "workers currently owning ring keys",
		func() float64 { return float64(c.ring.Len()) })

	m.requests = r.CounterVec("dvsfleet_http_requests_total", "HTTP requests by endpoint", "endpoint")
	m.errors = r.CounterVec("dvsfleet_http_request_errors_total", "non-2xx HTTP responses by endpoint", "endpoint")
	m.httpLatency = r.HistogramVec("dvsfleet_http_request_seconds", "HTTP request wall time by endpoint",
		"endpoint", latencyBuckets)

	m.routed = r.CounterVec("dvsfleet_routed_total", "simulate requests routed, by worker", "worker")
	m.failovers = r.CounterVec("dvsfleet_failovers_total",
		"simulate requests failed over away from a worker after an error", "worker")
	m.retries = r.Counter("dvsfleet_retries_total",
		"simulate requests re-routed past a shed or saturated worker")
	m.proxyErrors = r.Counter("dvsfleet_proxy_errors_total",
		"simulate requests that exhausted every candidate worker")

	m.jobsCreated = r.Counter("dvsfleet_jobs_created_total", "fleet jobs accepted")
	m.jobsFinished = r.Counter("dvsfleet_jobs_finished_total", "fleet jobs reaching a terminal state")
	m.fanoutRuns = r.Counter("dvsfleet_fanout_runs_total", "fleet-job runs fanned out across workers")

	m.migrations = r.CounterVec("dvsfleet_migrations_total",
		"jobs live-migrated off a worker via checkpoint/restore, by reason", "reason")
	return m
}

func (m *fleetMetrics) request(endpoint string, ok bool) {
	m.requests.With(endpoint).Inc()
	if !ok {
		m.errors.With(endpoint).Inc()
	}
}

func (m *fleetMetrics) httpDone(endpoint string, d time.Duration) {
	m.httpLatency.With(endpoint).Observe(d.Seconds())
}

func (m *fleetMetrics) writeProm(w io.Writer) error { return m.reg.WriteProm(w) }

// FleetSnapshot is the JSON document the coordinator's /metrics
// serves.
type FleetSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Workers        []WorkerInfo `json:"workers"`
	HealthyWorkers int          `json:"healthy_workers"`
	RingNodes      int          `json:"ring_nodes"`

	Requests map[string]uint64 `json:"requests"`
	Errors   map[string]uint64 `json:"errors,omitempty"`

	Routed      uint64 `json:"routed"`
	Failovers   uint64 `json:"failovers,omitempty"`
	Retries     uint64 `json:"retries,omitempty"`
	ProxyErrors uint64 `json:"proxy_errors,omitempty"`

	JobsCreated  uint64 `json:"jobs_created"`
	JobsFinished uint64 `json:"jobs_finished"`
	FanoutRuns   uint64 `json:"fanout_runs"`

	// Migrations counts jobs live-migrated off workers (summed across
	// reasons; omitted while zero to keep the quiet snapshot shape).
	Migrations uint64 `json:"migrations,omitempty"`
}

// snapshot captures a consistent view of the counters.
func (m *fleetMetrics) snapshot(c *Coordinator) FleetSnapshot {
	s := FleetSnapshot{
		UptimeSec:      time.Since(m.start).Seconds(),
		Workers:        c.WorkerInfos(),
		HealthyWorkers: c.healthyCount(),
		RingNodes:      c.ring.Len(),
		Requests:       map[string]uint64{},
		Errors:         map[string]uint64{},
		Retries:        uint64(m.retries.Value()),
		ProxyErrors:    uint64(m.proxyErrors.Value()),
		JobsCreated:    uint64(m.jobsCreated.Value()),
		JobsFinished:   uint64(m.jobsFinished.Value()),
		FanoutRuns:     uint64(m.fanoutRuns.Value()),
	}
	m.requests.Each(func(label string, c *obs.Counter) { s.Requests[label] = uint64(c.Value()) })
	m.errors.Each(func(label string, c *obs.Counter) { s.Errors[label] = uint64(c.Value()) })
	m.routed.Each(func(_ string, c *obs.Counter) { s.Routed += uint64(c.Value()) })
	m.failovers.Each(func(_ string, c *obs.Counter) { s.Failovers += uint64(c.Value()) })
	m.migrations.Each(func(_ string, c *obs.Counter) { s.Migrations += uint64(c.Value()) })
	return s
}
