package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"dvsslack/client"
	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
)

// testFleet is a full in-process cluster: n embedded dvsd workers, a
// started coordinator, an httptest front end, and a client pointed at
// it — the same wiring cmd/dvsfleet -embedded builds.
type testFleet struct {
	workers []*EmbeddedWorker
	coord   *Coordinator
	hs      *httptest.Server
	c       *client.Client
}

func newTestFleet(t *testing.T, n int, cfg Config) *testFleet {
	t.Helper()
	workers, err := StartEmbedded(n, server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = Addrs(workers)
	if cfg.Kill == nil {
		cfg.Kill = KillFunc(workers)
	}
	coord := New(cfg)
	coord.Start()
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		coord.Shutdown(ctx)
		for _, w := range workers {
			w.Drain(ctx)
		}
	})
	return &testFleet{workers: workers, coord: coord, hs: hs, c: client.New(hs.URL)}
}

func testRequest(policy string, seed uint64) server.SimRequest {
	return server.SimRequest{
		TaskSet:  rtm.Quickstart(),
		Policy:   policy,
		Workload: server.WorkloadSpec{Kind: "uniform", Lo: 0.5, Hi: 1, Seed: seed},
	}
}

// TestFleetRouteAffinity pins the cache-affinity property: the same
// scenario routes to the same worker, so the second identical request
// is served from that worker's result cache.
func TestFleetRouteAffinity(t *testing.T) {
	f := newTestFleet(t, 3, Config{})
	ctx := context.Background()

	req := testRequest("lpshe", 7)
	first, err := f.c.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request reported cached=true")
	}
	second, err := f.c.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat of an identical scenario missed the worker cache: routing is not key-affine")
	}
	if first.Energy != second.Energy {
		t.Fatalf("cached energy %v != first %v", second.Energy, first.Energy)
	}
}

// TestFleetFailover kills the worker that owns a key and asserts the
// request transparently lands on a ring successor, the dead worker is
// evicted, and the failover counter moved.
func TestFleetFailover(t *testing.T) {
	f := newTestFleet(t, 3, Config{HealthInterval: time.Hour}) // active checker quiet: passive detection only
	ctx := context.Background()

	req := testRequest("cc", 11)
	key, err := server.ScenarioKey(&req)
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := f.coord.ring.Lookup(key)
	if !ok {
		t.Fatal("ring empty after Start")
	}
	for _, w := range f.workers {
		if w.Addr() == owner {
			w.Kill()
		}
	}

	res, err := f.c.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("simulate after owner kill: %v", err)
	}
	if res.Cached {
		t.Fatal("failover request reported cached")
	}
	if f.coord.ring.Has(owner) {
		t.Fatalf("dead worker %s still in ring after transport error", owner)
	}
	w, _ := f.coord.worker(owner)
	if got := w.State(); got != WorkerDown {
		t.Fatalf("dead worker state = %s, want %s", got, WorkerDown)
	}
	if n := f.coord.met.failovers.With(owner).Value(); n < 1 {
		t.Fatalf("failovers{%s} = %v, want >= 1", owner, n)
	}

	// The new owner must be stable too: a repeat now hits its cache.
	res2, err := f.c.Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("repeat after failover missed the successor's cache")
	}
	if res2.Energy != res.Energy {
		t.Fatalf("successor energy %v != first %v (sim not deterministic across workers?)", res2.Energy, res.Energy)
	}
}

// TestFleetCordonUncordon drives the admin plane end to end over HTTP.
func TestFleetCordonUncordon(t *testing.T) {
	f := newTestFleet(t, 3, Config{HealthInterval: time.Hour})
	ctx := context.Background()
	target := f.workers[0].Addr()

	resp, err := f.hs.Client().Post(f.hs.URL+"/v1/cluster/cordon?worker="+target, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cordon status = %d", resp.StatusCode)
	}
	if f.coord.ring.Has(target) {
		t.Fatal("cordoned worker still in ring")
	}
	if w, _ := f.coord.worker(target); w.State() != WorkerCordoned {
		t.Fatalf("state = %s, want %s", w.State(), WorkerCordoned)
	}

	// The fleet still serves everything with a worker out.
	if _, err := f.c.Simulate(ctx, testRequest("lpshe", 21)); err != nil {
		t.Fatalf("simulate with cordoned worker: %v", err)
	}

	resp, err = f.hs.Client().Post(f.hs.URL+"/v1/cluster/uncordon?worker="+target, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Uncordon re-probes synchronously, so the healthy worker is back
	// in the ring before the response arrives.
	if !f.coord.ring.Has(target) {
		t.Fatal("uncordoned healthy worker not back in ring")
	}

	// Unknown worker is a 404, not a silent no-op.
	resp, err = f.hs.Client().Post(f.hs.URL+"/v1/cluster/cordon?worker=1.2.3.4:1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("cordon unknown worker status = %d, want 404", resp.StatusCode)
	}
}

// TestFleetJobFanout runs a batch job through the coordinator and
// checks the ordered merge: every outcome present, indexed, sorted,
// and spread across more than one worker.
func TestFleetJobFanout(t *testing.T) {
	f := newTestFleet(t, 3, Config{})
	ctx := context.Background()

	var batch server.BatchRequest
	batch.Name = "fanout"
	const runs = 12
	for i := 0; i < runs; i++ {
		batch.Runs = append(batch.Runs, testRequest("lpshe", uint64(100+i)))
	}
	info, err := f.c.CreateJob(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}

	var sawEnd bool
	if err := f.c.StreamEvents(ctx, info.ID, func(ev server.JobEvent) error {
		if ev.Type == "end" {
			sawEnd = true
		}
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !sawEnd {
		t.Fatal("SSE stream ended without an end event")
	}

	final, err := f.c.Job(ctx, info.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.JobDone || final.Done != runs || final.Failed != 0 {
		t.Fatalf("job = %+v, want done with %d runs", final, runs)
	}
	if len(final.Results) != runs {
		t.Fatalf("results = %d, want %d", len(final.Results), runs)
	}
	for i, ro := range final.Results {
		if ro.Index != i {
			t.Fatalf("results[%d].Index = %d: outcomes not merged into submission order", i, ro.Index)
		}
		if ro.Result == nil {
			t.Fatalf("results[%d] missing result: %s", i, ro.Error)
		}
	}

	spread := 0
	for _, wi := range f.coord.WorkerInfos() {
		if wi.Routed > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("fan-out used %d workers, want >= 2", spread)
	}
}

// TestFleetReadyz covers the readiness ladder: ready with a healthy
// fleet, 503 when no worker is in the ring, 503 while draining.
func TestFleetReadyz(t *testing.T) {
	f := newTestFleet(t, 1, Config{HealthInterval: time.Hour})

	if err := f.c.Ready(context.Background()); err != nil {
		t.Fatalf("ready fleet not ready: %v", err)
	}

	f.coord.Cordon(f.workers[0].Addr())
	err := f.c.Ready(context.Background())
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 503 {
		t.Fatalf("readyz with empty ring = %v, want 503 APIError", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f.coord.Shutdown(ctx)
	err = f.c.Ready(context.Background())
	apiErr, ok = err.(*client.APIError)
	if !ok || apiErr.StatusCode != 503 {
		t.Fatalf("readyz while draining = %v, want 503 APIError", err)
	}
	if _, err := f.c.Simulate(context.Background(), testRequest("lpshe", 1)); err == nil {
		t.Fatal("simulate accepted while draining")
	}
}

// TestFleetBadRequests pins local validation: malformed and invalid
// scenarios are rejected at the coordinator without a worker hop.
func TestFleetBadRequests(t *testing.T) {
	f := newTestFleet(t, 1, Config{})
	ctx := context.Background()

	_, err := f.c.Simulate(ctx, server.SimRequest{Policy: "lpshe"})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 400 {
		t.Fatalf("empty task set = %v, want 400 APIError", err)
	}
	before := f.coord.met.routed.With(f.workers[0].Addr()).Value()

	_, err = f.c.CreateJob(ctx, server.BatchRequest{Name: "empty"})
	apiErr, ok = err.(*client.APIError)
	if !ok || apiErr.StatusCode != 400 {
		t.Fatalf("empty job = %v, want 400 APIError", err)
	}
	if after := f.coord.met.routed.With(f.workers[0].Addr()).Value(); after != before {
		t.Fatalf("invalid requests reached a worker (routed %v -> %v)", before, after)
	}
}
