package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"dvsslack/internal/obs"
	"dvsslack/internal/server"
)

// DrainWorker live-migrates a worker's jobs off the node: the worker
// is cordoned (no new routed traffic), every queued or running job on
// it is checkpointed mid-simulation, and each checkpoint document is
// restored on the job's ring successor. The byte-determinism of the
// snapshot layer makes the move invisible in the results — the
// restored job finishes exactly as it would have on the drained
// worker. Returns how many jobs were migrated and how many could not
// be moved (they keep running, or sit checkpointed, on the source).
func (c *Coordinator) DrainWorker(ctx context.Context, addr, reason string) (migrated, failed int, err error) {
	src, ok := c.worker(addr)
	if !ok {
		return 0, 0, fmt.Errorf("cluster: unknown worker %q", addr)
	}
	c.Cordon(addr)
	jobs, err := src.c.Jobs(ctx)
	if err != nil {
		return 0, 0, fmt.Errorf("cluster: listing jobs on %s: %w", addr, err)
	}
	for _, info := range jobs {
		if info.State != server.JobQueued && info.State != server.JobRunning {
			continue
		}
		if merr := c.migrateJob(ctx, src, info, reason); merr != nil {
			failed++
			c.log.Warn("cluster: job migration failed",
				"worker", addr, "job", info.ID, "err", merr)
			continue
		}
		migrated++
	}
	return migrated, failed, nil
}

// migrateJob moves one job: checkpoint on src, restore on the first
// ring successor that accepts the document. A job that completed in
// the pause window needs no move (its outcomes stay on src).
func (c *Coordinator) migrateJob(ctx context.Context, src *worker, info server.JobInfo, reason string) error {
	parent, _ := obs.SpanContextFromContext(ctx)
	span := c.tracer.StartSpan(parent, "fleet.migrate") // nil-safe
	span.SetAttr("job", info.ID)
	span.SetAttr("from", src.addr)
	span.SetAttr("reason", reason)

	doc, err := src.c.CheckpointJob(ctx, info.ID)
	if err != nil {
		span.SetAttr("outcome", "checkpoint-error")
		span.SetAttr("error", err.Error())
		span.End()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if len(doc.Snapshots) == 0 && len(doc.Outcomes) == len(doc.Runs) {
		// The job won the race: every run finished before the pause
		// landed, so there is nothing left to move.
		span.SetAttr("outcome", "completed")
		span.End()
		return nil
	}

	var lastErr error
	for _, cand := range c.candidates(info.ID) {
		if cand == src.addr {
			continue
		}
		dst, ok := c.worker(cand)
		if !ok {
			continue
		}
		restored, rerr := dst.c.RestoreJob(ctx, doc)
		if rerr != nil {
			lastErr = fmt.Errorf("restore on %s: %w", cand, rerr)
			continue
		}
		c.met.migrations.With(reason).Inc()
		span.SetAttr("to", cand)
		span.SetAttr("restored_as", restored.ID)
		span.SetAttr("snapshots", strconv.Itoa(len(doc.Snapshots)))
		span.SetAttr("outcome", "ok")
		span.End()
		c.log.Info("cluster: job migrated",
			"job", info.ID, "from", src.addr, "to", cand,
			"restored_as", restored.ID, "snapshots", len(doc.Snapshots),
			"done", len(doc.Outcomes), "total", len(doc.Runs), "reason", reason)
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no candidate worker accepted the checkpoint")
	}
	span.SetAttr("outcome", "error")
	span.SetAttr("error", lastErr.Error())
	span.End()
	return lastErr
}

// handleDrain answers POST /v1/cluster/drain?worker=addr: cordon the
// worker and live-migrate its jobs to their ring successors.
func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	addr, ok := c.workerParam(w, r)
	if !ok {
		return
	}
	migrated, failed, err := c.DrainWorker(r.Context(), addr, "drain")
	if err != nil {
		writeError(w, http.StatusBadGateway, "cluster: drain %s: %v", addr, err)
		return
	}
	body := map[string]any{"drained": addr, "migrated": migrated}
	if failed > 0 {
		body["failed"] = failed
	}
	writeJSON(w, http.StatusOK, body)
}
