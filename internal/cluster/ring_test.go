package cluster

import (
	"fmt"
	"testing"
)

// keys returns a deterministic key corpus large enough for the
// distribution properties below to be sharp.
func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("scenario-%06d", i)
	}
	return out
}

// TestRingInsertionOrderIndependence pins the routing-determinism
// contract: the key→node mapping is a pure function of the member
// set, so two rings built from the same workers in different orders
// (and with different membership history) agree on every key.
func TestRingInsertionOrderIndependence(t *testing.T) {
	nodes := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080"}

	a := NewRing(0)
	for _, n := range nodes {
		a.Add(n)
	}

	b := NewRing(0)
	// Reverse order, plus a transient member added and removed.
	b.Add("10.9.9.9:1")
	for i := len(nodes) - 1; i >= 0; i-- {
		b.Add(nodes[i])
	}
	b.Remove("10.9.9.9:1")

	for _, k := range testKeys(10000) {
		na, ok := a.Lookup(k)
		if !ok {
			t.Fatalf("Lookup(%q) on non-empty ring returned ok=false", k)
		}
		nb, _ := b.Lookup(k)
		if na != nb {
			t.Fatalf("rings with identical members disagree on %q: %q vs %q", k, na, nb)
		}
	}
}

// TestRingBoundedMovementOnAdd pins the consistent-hashing property
// the fleet's cache affinity relies on: adding one worker to N moves
// fewer than 2/(N+1) of the keys, and every moved key moves TO the
// new worker (no shuffling between survivors).
func TestRingBoundedMovementOnAdd(t *testing.T) {
	nodes := []string{"w1:1", "w2:1", "w3:1", "w4:1"}
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}

	keys := testKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	r.Add("w5:1")
	moved := 0
	for _, k := range keys {
		after, _ := r.Lookup(k)
		if after == before[k] {
			continue
		}
		moved++
		if after != "w5:1" {
			t.Fatalf("key %q moved %q -> %q, not to the added worker", k, before[k], after)
		}
	}
	if limit := len(keys) * 2 / 5; moved >= limit {
		t.Fatalf("adding 5th worker moved %d/%d keys, want < %d (2/N)", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Fatal("adding a worker moved no keys; ring is ignoring new members")
	}
}

// TestRingBoundedMovementOnRemove is the inverse: removing a worker
// reassigns only that worker's keys; everything else stays put.
func TestRingBoundedMovementOnRemove(t *testing.T) {
	nodes := []string{"w1:1", "w2:1", "w3:1", "w4:1", "w5:1"}
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}

	keys := testKeys(10000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}

	r.Remove("w3:1")
	for _, k := range keys {
		after, _ := r.Lookup(k)
		if before[k] != "w3:1" && after != before[k] {
			t.Fatalf("key %q on surviving worker moved %q -> %q after removing w3", k, before[k], after)
		}
		if before[k] == "w3:1" && after == "w3:1" {
			t.Fatalf("key %q still assigned to removed worker", k)
		}
	}
}

// TestRingSuccessors pins the failover-sequence contract: distinct
// nodes, first equals Lookup, n<=0 yields the full member set, and
// the sequence is stable for a fixed member set.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(0)
	for _, n := range []string{"a:1", "b:1", "c:1"} {
		r.Add(n)
	}

	for _, k := range testKeys(200) {
		owner, _ := r.Lookup(k)
		succ := r.Successors(k, 0)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 0) = %v, want all 3 members", k, succ)
		}
		if succ[0] != owner {
			t.Fatalf("Successors(%q)[0] = %q, want Lookup's %q", k, succ[0], owner)
		}
		seen := map[string]bool{}
		for _, n := range succ {
			if seen[n] {
				t.Fatalf("Successors(%q) repeats %q: %v", k, n, succ)
			}
			seen[n] = true
		}
		if two := r.Successors(k, 2); len(two) != 2 || two[0] != succ[0] || two[1] != succ[1] {
			t.Fatalf("Successors(%q, 2) = %v, want prefix of %v", k, two, succ)
		}
	}
}

// TestRingEmptyAndIdempotent covers the edges: lookups on an empty
// ring fail cleanly, double-add and double-remove are no-ops.
func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Lookup("k"); ok {
		t.Fatal("Lookup on empty ring returned ok=true")
	}
	if s := r.Successors("k", 0); s != nil {
		t.Fatalf("Successors on empty ring = %v, want nil", s)
	}

	r.Add("a:1")
	r.Add("a:1")
	if r.Len() != 1 {
		t.Fatalf("Len after double-Add = %d, want 1", r.Len())
	}
	if !r.Has("a:1") {
		t.Fatal("Has(a:1) = false after Add")
	}
	r.Remove("a:1")
	r.Remove("a:1")
	if r.Len() != 0 || r.Has("a:1") {
		t.Fatal("ring not empty after Remove")
	}
}
