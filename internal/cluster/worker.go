package cluster

import (
	"context"
	"sync"
	"time"

	"dvsslack/client"
)

// Worker health states.
const (
	// WorkerHealthy: in the ring, receiving routed traffic.
	WorkerHealthy = "healthy"
	// WorkerDown: out of the ring after failed health checks or a
	// routing-time transport error; its keys have failed over to their
	// ring successors. Rejoins automatically when /readyz recovers.
	WorkerDown = "down"
	// WorkerDraining: the worker answered /readyz with a draining (or
	// saturated) 503; it is out of the ring until readiness returns —
	// the drain-aware half of rebalancing.
	WorkerDraining = "draining"
	// WorkerCordoned: manually removed from the ring (POST
	// /v1/cluster/cordon). Health is still tracked but the worker gets
	// no routed traffic until uncordoned.
	WorkerCordoned = "cordoned"
)

// worker is the coordinator's view of one dvsd instance.
type worker struct {
	addr string
	c    *client.Client

	mu          sync.Mutex
	state       string
	consecFails int
	lastErr     string
	lastChecked time.Time
}

func newWorker(addr string) *worker {
	// Workers start down and join the ring on their first successful
	// probe, so a mistyped address never receives routed keys. Calls
	// are bounded by per-request contexts (health-probe timeouts, the
	// proxied request's own deadline), not a transport-wide timeout —
	// a long simulation must be allowed to take long.
	return &worker{addr: addr, c: client.New(addr), state: WorkerDown}
}

// Ready probes the worker's /readyz.
func (w *worker) Ready(ctx context.Context) error { return w.c.Ready(ctx) }

// State returns the current health state.
func (w *worker) State() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// setState transitions the worker and returns the previous state.
func (w *worker) setState(s string) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	prev := w.state
	w.state = s
	return prev
}

// WorkerInfo is the wire form of one worker's status (GET
// /v1/cluster).
type WorkerInfo struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	// InRing reports whether the worker currently owns ring keys.
	InRing bool `json:"in_ring"`
	// ConsecFails is the consecutive failed health probes.
	ConsecFails int    `json:"consec_fails,omitempty"`
	LastError   string `json:"last_error,omitempty"`
	LastChecked string `json:"last_checked,omitempty"`
	// Routed / FailedOver are lifetime routing counters for this
	// worker (requests routed to it; requests that had to fail over
	// away from it).
	Routed     uint64 `json:"routed"`
	FailedOver uint64 `json:"failed_over,omitempty"`
}
