package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dvsslack/client"
	"dvsslack/internal/obs"
	"dvsslack/internal/policies"
	"dvsslack/internal/scenario"
	"dvsslack/internal/server"
)

// Config tunes the coordinator.
type Config struct {
	// Workers is the initial worker address list (host:port). Workers
	// join the routing ring on their first successful /readyz probe.
	Workers []string
	// HealthInterval is the period of the active health checker
	// (default 500ms).
	HealthInterval time.Duration
	// HealthTimeout bounds one /readyz probe (default 2s).
	HealthTimeout time.Duration
	// FailThreshold is the consecutive probe failures that mark a
	// worker down (default 2). Routing-time transport errors mark a
	// worker down immediately regardless (passive detection).
	FailThreshold int
	// Replicas is the ring's virtual-node count per worker (default
	// DefaultReplicas).
	Replicas int
	// MaxBodyBytes bounds request bodies; <= 0 selects 32 MiB.
	MaxBodyBytes int64
	// FanoutWidth bounds how many fleet-job runs are in flight across
	// the fleet at once; <= 0 selects 4×workers (each dvsd's own pool
	// and admission control provide the per-worker backpressure).
	FanoutWidth int
	// Logger receives structured request and lifecycle logs; nil
	// discards them.
	Logger *slog.Logger
	// Kill, when non-nil, enables POST /v1/cluster/kill?worker=addr —
	// hard-stopping a worker to exercise failover. Embedded clusters
	// (cmd/dvsfleet -embedded) and tests wire it; production
	// coordinators leave it nil and the endpoint answers 404.
	Kill func(addr string) error
	// Tracer, when non-nil, records coordinator spans (handler +
	// per-attempt routing) into its ring; GET /debug/trace then also
	// collects every worker's span dump so one trace renders as a
	// single tree. Propagation of inbound traceparent headers happens
	// regardless, so tracing stays inert to request bytes.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	return c
}

// ErrNoWorkers is returned when no worker is available to serve a
// routed request.
var ErrNoWorkers = errors.New("cluster: no ready workers")

// Coordinator is the dvsfleet control plane: an http.Handler speaking
// the dvsd wire protocol, routing scenarios onto workers by
// consistent hash of the canonical scenario key
// (server.ScenarioKey), with health-checked membership, failover,
// cordon/drain semantics, and fleet-wide job fan-out.
type Coordinator struct {
	cfg    Config
	log    *slog.Logger
	ring   *Ring
	met    *fleetMetrics
	jobs   *fleetJobs
	tracer *obs.Tracer

	mu      sync.RWMutex
	workers map[string]*worker

	mux     *http.ServeMux
	handler http.Handler

	draining   atomic.Bool
	healthCtx  context.Context
	healthStop context.CancelFunc
	healthDone chan struct{}
	started    atomic.Bool
}

// New builds a coordinator over the configured workers. Call Start to
// probe them and begin health checking.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		ring:    NewRing(cfg.Replicas),
		workers: map[string]*worker{},
		tracer:  cfg.Tracer,
	}
	c.log = cfg.Logger
	if c.log == nil {
		c.log = obs.Discard()
	}
	for _, addr := range cfg.Workers {
		c.workers[addr] = newWorker(addr)
	}
	c.met = newFleetMetrics(c)
	c.jobs = newFleetJobs(c)
	c.healthCtx, c.healthStop = context.WithCancel(context.Background())
	c.healthDone = make(chan struct{})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", c.instrument("simulate", c.handleSimulate))
	mux.HandleFunc("POST /v1/scenario", c.instrument("scenario", c.handleScenario))
	mux.HandleFunc("POST /v1/jobs", c.instrument("jobs.create", c.handleCreateJob))
	mux.HandleFunc("GET /v1/jobs", c.instrument("jobs.list", c.handleListJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", c.instrument("jobs.get", c.handleGetJob))
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.instrument("jobs.cancel", c.handleCancelJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleJobEvents) // SSE, self-instrumented
	mux.HandleFunc("GET /v1/policies", c.instrument("policies", c.handlePolicies))
	mux.HandleFunc("GET /v1/cluster", c.instrument("cluster", c.handleCluster))
	mux.HandleFunc("POST /v1/cluster/cordon", c.instrument("cluster.cordon", c.handleCordon))
	mux.HandleFunc("POST /v1/cluster/uncordon", c.instrument("cluster.uncordon", c.handleUncordon))
	mux.HandleFunc("POST /v1/cluster/drain", c.instrument("cluster.drain", c.handleDrain))
	if cfg.Kill != nil {
		mux.HandleFunc("POST /v1/cluster/kill", c.instrument("cluster.kill", c.handleKill))
	}
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /metrics.prom", c.handleMetricsProm)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /debug/trace", c.handleTraceDump)
	c.mux = mux
	c.handler = mux
	return c
}

// Start probes every worker once (synchronously, so callers observe a
// routable fleet when healthy workers exist) and launches the
// periodic health checker. Safe to call once.
func (c *Coordinator) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	c.probeAll()
	go c.healthLoop()
}

// Handler returns the coordinator's HTTP entry point.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.handler.ServeHTTP(w, r) }

// Shutdown drains the coordinator: new work is rejected, running
// fleet jobs get until ctx's deadline to finish (then are cancelled),
// and the health checker stops. The caller closes the HTTP listener
// first, and drains the workers themselves afterwards (the
// coordinator does not own worker processes — except in embedded
// mode, where cmd/dvsfleet drains them).
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	err := c.jobs.WaitIdle(ctx)
	if err != nil {
		c.jobs.CancelAll()
	}
	if c.started.Load() {
		c.healthStop()
		<-c.healthDone
	} else {
		c.healthStop()
	}
	return err
}

// --- membership and health ---

// AddWorker registers a new worker address at runtime; it joins the
// ring on its first successful probe.
func (c *Coordinator) AddWorker(addr string) {
	c.mu.Lock()
	if _, dup := c.workers[addr]; dup {
		c.mu.Unlock()
		return
	}
	c.workers[addr] = newWorker(addr)
	c.mu.Unlock()
	c.log.Info("cluster: worker added", "worker", addr)
}

// worker returns the registered worker for addr.
func (c *Coordinator) worker(addr string) (*worker, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.workers[addr]
	return w, ok
}

// workerList returns every registered worker, address-sorted.
func (c *Coordinator) workerList() []*worker {
	c.mu.RLock()
	out := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, w)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].addr < out[b].addr })
	return out
}

func (c *Coordinator) workerCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.workers)
}

func (c *Coordinator) healthyCount() int {
	n := 0
	for _, w := range c.workerList() {
		if w.State() == WorkerHealthy {
			n++
		}
	}
	return n
}

// WorkerInfos returns every worker's status, address-sorted.
func (c *Coordinator) WorkerInfos() []WorkerInfo {
	ws := c.workerList()
	out := make([]WorkerInfo, 0, len(ws))
	for _, w := range ws {
		w.mu.Lock()
		info := WorkerInfo{
			Addr:        w.addr,
			State:       w.state,
			InRing:      c.ring.Has(w.addr),
			ConsecFails: w.consecFails,
			LastError:   w.lastErr,
			Routed:      uint64(c.met.routed.With(w.addr).Value()),
			FailedOver:  uint64(c.met.failovers.With(w.addr).Value()),
		}
		if !w.lastChecked.IsZero() {
			info.LastChecked = w.lastChecked.UTC().Format(time.RFC3339Nano)
		}
		w.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// healthLoop runs the active checker until Shutdown.
func (c *Coordinator) healthLoop() {
	defer close(c.healthDone)
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.healthCtx.Done():
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll health-checks every worker concurrently.
func (c *Coordinator) probeAll() {
	var wg sync.WaitGroup
	for _, w := range c.workerList() {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			c.probe(w)
		}(w)
	}
	wg.Wait()
}

// probe runs one /readyz check and applies the state transition:
// success heals a down/draining worker back into the ring; a draining
// 503 evicts it immediately (the worker said so itself); other
// failures evict after FailThreshold consecutive misses. Cordoned
// workers are probed for status but never rejoin the ring.
func (c *Coordinator) probe(w *worker) {
	ctx, cancel := context.WithTimeout(c.healthCtx, c.cfg.HealthTimeout)
	err := w.Ready(ctx)
	cancel()

	w.mu.Lock()
	w.lastChecked = time.Now()
	if err == nil {
		w.consecFails = 0
		w.lastErr = ""
		prev := w.state
		if prev != WorkerCordoned {
			w.state = WorkerHealthy
		}
		w.mu.Unlock()
		if prev != WorkerCordoned && !c.ring.Has(w.addr) {
			c.ring.Add(w.addr)
			if prev != WorkerHealthy {
				c.log.Info("cluster: worker joined ring", "worker", w.addr, "was", prev)
			}
		}
		return
	}
	w.consecFails++
	w.lastErr = err.Error()
	fails, prev := w.consecFails, w.state
	next := prev
	var apiErr *client.APIError
	switch {
	case prev == WorkerCordoned:
		// keep the manual state
	case errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable:
		next = WorkerDraining
	case fails >= c.cfg.FailThreshold:
		next = WorkerDown
	}
	w.state = next
	w.mu.Unlock()
	if next != prev && next != WorkerCordoned {
		c.ring.Remove(w.addr)
		c.log.Warn("cluster: worker left ring", "worker", w.addr, "state", next, "err", err.Error())
	}
}

// markDownPassive evicts a worker on a routing-time transport error
// without waiting for the health checker — the in-flight request has
// already proven the worker unreachable. The checker heals it back in
// once /readyz answers again.
func (c *Coordinator) markDownPassive(w *worker, err error) {
	w.mu.Lock()
	if w.consecFails < c.cfg.FailThreshold {
		w.consecFails = c.cfg.FailThreshold
	}
	w.lastErr = err.Error()
	prev := w.state
	if prev != WorkerCordoned {
		w.state = WorkerDown
	}
	w.mu.Unlock()
	c.ring.Remove(w.addr)
	if prev != WorkerDown {
		c.log.Warn("cluster: worker marked down (transport error)", "worker", w.addr, "err", err.Error())
	}
}

// Cordon removes a worker from the ring until Uncordon, keeping its
// health tracked. Returns false for unknown addresses.
func (c *Coordinator) Cordon(addr string) bool {
	w, ok := c.worker(addr)
	if !ok {
		return false
	}
	w.setState(WorkerCordoned)
	c.ring.Remove(addr)
	c.log.Info("cluster: worker cordoned", "worker", addr)
	return true
}

// Uncordon lifts a cordon and synchronously re-probes the worker so a
// healthy one rejoins the ring before the call returns. Returns false
// for unknown addresses.
func (c *Coordinator) Uncordon(addr string) bool {
	w, ok := c.worker(addr)
	if !ok {
		return false
	}
	if w.setState(WorkerDown) == WorkerCordoned {
		c.log.Info("cluster: worker uncordoned", "worker", addr)
	}
	c.probe(w)
	return true
}

// --- routing ---

// candidates returns the failover sequence for key: the in-ring
// workers in consistent-hash order (the first owns the key; the rest
// are its successors).
func (c *Coordinator) candidates(key string) []string {
	return c.ring.Successors(key, 0)
}

// routeSpan opens one per-attempt routing span under the request's
// span and threads the attempt's span context into the returned
// context, so the worker call's Traceparent header parents the worker
// handler span under exactly the attempt that reached it. When
// nothing is being recorded the context passes through unchanged —
// the request's own span context (if any) still propagates.
func (c *Coordinator) routeSpan(ctx context.Context, addr string, attempt int) (context.Context, *obs.Span) {
	parent, _ := obs.SpanContextFromContext(ctx)
	span := c.tracer.StartSpan(parent, "fleet.route") // nil-safe
	span.SetAttr("worker", addr)
	span.SetAttr("attempt", strconv.Itoa(attempt))
	if sc := span.Context(); sc.Valid() {
		ctx = obs.ContextWithSpanContext(ctx, sc)
	}
	return ctx, span
}

// finishRouteSpan closes an attempt span with its outcome.
func finishRouteSpan(span *obs.Span, err error) {
	if span == nil {
		return
	}
	if err == nil {
		span.SetAttr("outcome", "ok")
	} else {
		span.SetAttr("outcome", "error")
		span.SetAttr("error", err.Error())
	}
	span.End()
}

// routeSimulate runs one request against the fleet: the key's owner
// first, then its ring successors on worker-side failures. Scenario
// faults (4xx) propagate immediately — re-running a request the
// worker rejected as invalid on another node cannot succeed.
func (c *Coordinator) routeSimulate(ctx context.Context, req *server.SimRequest, key string) (server.SimResult, error) {
	cands := c.candidates(key)
	if len(cands) == 0 {
		c.met.proxyErrors.Inc()
		return server.SimResult{}, ErrNoWorkers
	}
	var lastErr error
	for i, addr := range cands {
		w, ok := c.worker(addr)
		if !ok {
			continue
		}
		callCtx, span := c.routeSpan(ctx, addr, i)
		res, err := w.c.Simulate(callCtx, *req)
		finishRouteSpan(span, err)
		if err == nil {
			c.met.routed.With(addr).Inc()
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return server.SimResult{}, err
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			switch {
			case apiErr.StatusCode == http.StatusTooManyRequests:
				// Shed by admission control: the worker is alive but
				// saturated. Spill to the next worker (losing cache
				// affinity for one request beats queueing behind an
				// overload), leaving ring membership to the checker.
				c.met.retries.Inc()
				continue
			case apiErr.StatusCode == http.StatusServiceUnavailable:
				// Draining or deadline-exhausted: fail over, and let
				// the next probe decide whether to evict.
				c.met.failovers.With(addr).Inc()
				continue
			case apiErr.StatusCode >= 500:
				// Worker-side fault (panic recovery, proxy error):
				// fail over without eviction — it may be specific to
				// this request.
				c.met.failovers.With(addr).Inc()
				continue
			default:
				// 4xx: the scenario itself is at fault.
				return server.SimResult{}, err
			}
		}
		// Transport error: the worker is unreachable. Evict now so the
		// rest of this grid's keys re-route without paying a dial
		// timeout each, and fail this request over.
		c.markDownPassive(w, err)
		c.met.failovers.With(addr).Inc()
	}
	c.met.proxyErrors.Inc()
	return server.SimResult{}, fmt.Errorf("cluster: all %d candidate workers failed: %w", len(cands), lastErr)
}

// routeScenario runs one scenario document against the fleet with the
// same failover ladder as routeSimulate: owner first, ring successors
// on worker-side failures, 4xx propagated immediately. The document's
// canonical key (scenario.DocKey) routes it, so re-submitting the same
// document lands on the same worker. The worker's verdict bytes pass
// through untouched — byte-identical to a local run by construction.
func (c *Coordinator) routeScenario(ctx context.Context, body []byte, key string) ([]byte, error) {
	cands := c.candidates(key)
	if len(cands) == 0 {
		c.met.proxyErrors.Inc()
		return nil, ErrNoWorkers
	}
	var lastErr error
	for i, addr := range cands {
		w, ok := c.worker(addr)
		if !ok {
			continue
		}
		callCtx, span := c.routeSpan(ctx, addr, i)
		verdict, err := w.c.RunScenario(callCtx, body)
		finishRouteSpan(span, err)
		if err == nil {
			c.met.routed.With(addr).Inc()
			return verdict, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		var apiErr *client.APIError
		if errors.As(err, &apiErr) {
			switch {
			case apiErr.StatusCode == http.StatusTooManyRequests:
				c.met.retries.Inc()
				continue
			case apiErr.StatusCode == http.StatusServiceUnavailable,
				apiErr.StatusCode >= 500:
				c.met.failovers.With(addr).Inc()
				continue
			default:
				return nil, err
			}
		}
		c.markDownPassive(w, err)
		c.met.failovers.With(addr).Inc()
	}
	c.met.proxyErrors.Inc()
	return nil, fmt.Errorf("cluster: all %d candidate workers failed: %w", len(cands), lastErr)
}

// --- HTTP plumbing (mirrors dvsd's instrument/writeJSON discipline) ---

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument mirrors dvsd's handler wrapper. A valid client-supplied
// X-Request-ID is adopted (and forwarded to workers through the
// request context), so one ID correlates client report, coordinator
// log, and worker log; otherwise a fresh ID is minted. An inbound
// traceparent is continued into a coordinator span, and the request
// context carries both so routed worker calls propagate them.
func (c *Coordinator) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		span := c.tracer.StartSpan(parent, "dvsfleet."+label) // nil-safe
		sc := span.Context()
		if !sc.Valid() {
			sc = parent
		}
		ctx := obs.ContextWithRequestID(r.Context(), id)
		if sc.Valid() {
			ctx = obs.ContextWithSpanContext(ctx, sc)
		}
		r = r.WithContext(ctx)
		start := time.Now()
		h(sw, r)
		dur := time.Since(start)
		c.met.request(label, sw.code < 400)
		c.met.httpDone(label, dur)
		span.SetAttr("endpoint", label)
		span.SetAttr("status", strconv.Itoa(sw.code))
		span.SetAttr("request_id", id)
		span.End()
		attrs := []slog.Attr{
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", label),
			slog.Int("status", sw.code),
			slog.Duration("dur", dur),
		}
		if sc.Valid() {
			attrs = append(attrs, slog.String("trace", sc.TraceID.String()))
		}
		c.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, server.ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// writeRouteError maps a routing failure onto the dvsd wire protocol,
// preserving worker status codes and Retry-After hints so clients
// behave identically against coordinator and single daemon.
func writeRouteError(w http.ResponseWriter, err error) {
	var apiErr *client.APIError
	switch {
	case errors.As(err, &apiErr):
		if apiErr.RetryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprint(int(apiErr.RetryAfter.Seconds())))
		}
		writeError(w, apiErr.StatusCode, "%s", apiErr.Message)
	case errors.Is(err, ErrNoWorkers):
		w.Header().Set("Retry-After", drainRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "cluster: request deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusRequestTimeout, "%v", err)
	default:
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusBadGateway, "%v", err)
	}
}

const (
	drainRetryAfter = "5"
	shedRetryAfter  = "1"
)

func (c *Coordinator) rejectIfDraining(w http.ResponseWriter) bool {
	if c.draining.Load() {
		w.Header().Set("Retry-After", drainRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "cluster: draining, not accepting new work")
		return true
	}
	return false
}

func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "invalid request body: trailing data")
		return false
	}
	io.Copy(io.Discard, body)
	return true
}

// --- handlers ---

// handleSimulate proxies POST /v1/simulate: validate locally (a bad
// scenario never costs a worker round-trip), route by scenario key,
// fail over on worker faults.
func (c *Coordinator) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if c.rejectIfDraining(w) {
		return
	}
	var req server.SimRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := server.ScenarioKey(&req)
	if err != nil {
		// Unkeyable but runnable: route as the empty key (one fixed
		// owner) rather than failing the request.
		key = ""
	}
	res, err := c.routeSimulate(r.Context(), &req, key)
	if err != nil {
		writeRouteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleScenario proxies POST /v1/scenario: parse and validate the
// document locally (an invalid document never costs a worker
// round-trip, and the 400 lists every error just as dvsd's would),
// route the raw body by the document's canonical key, and stream the
// worker's verdict bytes through verbatim.
func (c *Coordinator) handleScenario(w http.ResponseWriter, r *http.Request) {
	if c.rejectIfDraining(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading scenario body: %v", err)
		return
	}
	doc, errs := scenario.Parse("scenario", body)
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		writeJSON(w, http.StatusBadRequest, server.ErrorBody{
			Error:  fmt.Sprintf("scenario failed validation with %d error(s): %s", len(errs), msgs[0]),
			Errors: msgs,
		})
		return
	}
	verdict, err := c.routeScenario(r.Context(), body, scenario.DocKey(doc))
	if err != nil {
		writeRouteError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(verdict)
}

// handleCreateJob answers POST /v1/jobs by expanding the batch
// locally and fanning its runs out across the fleet (each routed by
// its own scenario key), rather than parking the whole batch on one
// worker.
func (c *Coordinator) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	if c.rejectIfDraining(w) {
		return
	}
	var req server.BatchRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	runs := req.Runs
	if req.Sweep != nil {
		expanded, err := req.Sweep.Expand()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		runs = append(runs, expanded...)
	}
	if len(runs) == 0 {
		writeError(w, http.StatusBadRequest, "cluster: job has no runs")
		return
	}
	if len(runs) > server.MaxBatchRuns {
		writeError(w, http.StatusBadRequest, "cluster: job has %d runs, limit %d", len(runs), server.MaxBatchRuns)
		return
	}
	for i := range runs {
		if err := runs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "run %d: %v", i, err)
			return
		}
	}
	j := c.jobs.Create(req.Name, runs)
	writeJSON(w, http.StatusAccepted, j.info(false))
}

func (c *Coordinator) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.jobs.List())
}

func (c *Coordinator) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := c.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "cluster: no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.info(r.URL.Query().Get("results") != ""))
}

func (c *Coordinator) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	if !c.jobs.Cancel(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "cluster: no such job %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJobEvents streams a fleet job's SSE progress, wire-compatible
// with dvsd's stream (client.StreamEvents works unchanged).
func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := c.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "cluster: no such job %q", r.PathValue("id"))
		c.met.request("jobs.events", false)
		return
	}
	c.met.request("jobs.events", true)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	j.stream(r.Context(), w)
}

// handlePolicies serves the policy registry locally: coordinator and
// workers are built from the same binary's registry, so the answer is
// authoritative without a proxy hop.
func (c *Coordinator) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"policies": policies.Names(),
		"wrappers": []string{"crit", "dual", "guard"},
	})
}

// ClusterInfo is the wire form of GET /v1/cluster.
type ClusterInfo struct {
	Workers        []WorkerInfo `json:"workers"`
	HealthyWorkers int          `json:"healthy_workers"`
	RingNodes      int          `json:"ring_nodes"`
	RingReplicas   int          `json:"ring_replicas"`
	Draining       bool         `json:"draining,omitempty"`
}

func (c *Coordinator) clusterInfo() ClusterInfo {
	return ClusterInfo{
		Workers:        c.WorkerInfos(),
		HealthyWorkers: c.healthyCount(),
		RingNodes:      c.ring.Len(),
		RingReplicas:   c.ring.replicas,
		Draining:       c.draining.Load(),
	}
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.clusterInfo())
}

// workerParam resolves the ?worker=addr query of the admin endpoints.
func (c *Coordinator) workerParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	addr := r.URL.Query().Get("worker")
	if addr == "" {
		writeError(w, http.StatusBadRequest, "cluster: missing worker query parameter")
		return "", false
	}
	if _, ok := c.worker(addr); !ok {
		writeError(w, http.StatusNotFound, "cluster: unknown worker %q", addr)
		return "", false
	}
	return addr, true
}

func (c *Coordinator) handleCordon(w http.ResponseWriter, r *http.Request) {
	addr, ok := c.workerParam(w, r)
	if !ok {
		return
	}
	c.Cordon(addr)
	writeJSON(w, http.StatusOK, c.clusterInfo())
}

func (c *Coordinator) handleUncordon(w http.ResponseWriter, r *http.Request) {
	addr, ok := c.workerParam(w, r)
	if !ok {
		return
	}
	c.Uncordon(addr)
	writeJSON(w, http.StatusOK, c.clusterInfo())
}

func (c *Coordinator) handleKill(w http.ResponseWriter, r *http.Request) {
	addr, ok := c.workerParam(w, r)
	if !ok {
		return
	}
	if err := c.cfg.Kill(addr); err != nil {
		writeError(w, http.StatusInternalServerError, "cluster: kill %s: %v", addr, err)
		return
	}
	c.log.Warn("cluster: worker killed by request", "worker", addr)
	writeJSON(w, http.StatusOK, map[string]string{"killed": addr})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.met.snapshot(c))
}

// handleMetricsProm federates the fleet's Prometheus text metrics:
// the coordinator's own families (unlabeled) merged with a live
// scrape of every worker's /metrics.prom, each worker's samples
// tagged worker="addr". Families come out name-sorted with per-source
// sample order preserved, so the merged page still satisfies
// obs.ValidateExposition. Unreachable workers are skipped — a dead
// worker must not take the fleet's scrape down with it.
func (c *Coordinator) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	var own bytes.Buffer
	c.met.writeProm(&own)
	sources := []obs.ExpositionSource{{Label: "", Text: own.String()}}
	for _, wk := range c.workerList() {
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.HealthTimeout)
		raw, err := wk.c.MetricsProm(ctx)
		cancel()
		if err != nil {
			continue
		}
		sources = append(sources, obs.ExpositionSource{Label: wk.addr, Text: string(raw)})
	}
	var buf bytes.Buffer
	if err := obs.MergeExpositions(&buf, "worker", sources); err != nil {
		writeError(w, http.StatusInternalServerError, "cluster: merging fleet metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.Write(buf.Bytes())
}

// FleetTraceDump is the JSON document served by the coordinator's
// GET /debug/trace: its own span ring plus every reachable worker's,
// so one trace ID can be followed across the whole fleet from a
// single endpoint.
type FleetTraceDump struct {
	Coordinator obs.TraceDump            `json:"coordinator"`
	Workers     map[string]obs.TraceDump `json:"workers"`
	Errors      map[string]string        `json:"errors,omitempty"`
	// Spans is every span above merged and re-sorted (start time, then
	// span ID) — the flat list a trace viewer or test walks.
	Spans []obs.SpanRecord `json:"spans"`
}

// handleTraceDump collects coordinator + worker span dumps. Workers
// whose dump cannot be fetched (down, or running without
// -trace-buffer) are reported in Errors rather than failing the
// collection.
func (c *Coordinator) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	if c.tracer == nil {
		writeError(w, http.StatusNotFound, "cluster: tracing disabled (start dvsfleet with -trace-buffer)")
		return
	}
	dump := FleetTraceDump{
		Coordinator: c.tracer.Dump(),
		Workers:     map[string]obs.TraceDump{},
		Spans:       []obs.SpanRecord{},
	}
	for _, wk := range c.workerList() {
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.HealthTimeout)
		raw, err := wk.c.TraceDump(ctx)
		cancel()
		if err != nil {
			if dump.Errors == nil {
				dump.Errors = map[string]string{}
			}
			dump.Errors[wk.addr] = err.Error()
			continue
		}
		var td obs.TraceDump
		if err := json.Unmarshal(raw, &td); err != nil {
			if dump.Errors == nil {
				dump.Errors = map[string]string{}
			}
			dump.Errors[wk.addr] = err.Error()
			continue
		}
		dump.Workers[wk.addr] = td
	}
	dump.Spans = append(dump.Spans, dump.Coordinator.Spans...)
	for _, td := range dump.Workers {
		dump.Spans = append(dump.Spans, td.Spans...)
	}
	sort.Slice(dump.Spans, func(i, j int) bool {
		if dump.Spans[i].StartUnixNs != dump.Spans[j].StartUnixNs {
			return dump.Spans[i].StartUnixNs < dump.Spans[j].StartUnixNs
		}
		return dump.Spans[i].SpanID < dump.Spans[j].SpanID
	})
	writeJSON(w, http.StatusOK, dump)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		w.Header().Set("Retry-After", drainRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness: at least one worker in the ring and
// not draining. A load balancer in front of several coordinators
// steers traffic away from one whose fleet has collapsed.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		w.Header().Set("Retry-After", drainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if c.ring.Len() == 0 {
		w.Header().Set("Retry-After", shedRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "no ready workers", "workers": c.workerCount(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
