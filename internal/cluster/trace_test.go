package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvsslack/client"
	"dvsslack/internal/obs"
	"dvsslack/internal/server"
)

// newTracedFleet builds a 3-worker fleet with tracing on at every
// layer — client, coordinator, and (via the embedded template-clone)
// each worker — the full wiring a traced dvsfleet deployment runs.
func newTracedFleet(t *testing.T) (*testFleet, *obs.Tracer) {
	t.Helper()
	workers, err := StartEmbedded(3, server.Config{
		Workers: 2,
		Tracer:  obs.NewTracer("dvsd", 256), // template: cloned per worker
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers: Addrs(workers),
		Kill:    KillFunc(workers),
		Tracer:  obs.NewTracer("dvsfleet", 256),
	}
	coord := New(cfg)
	coord.Start()
	hs := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		coord.Shutdown(ctx)
		for _, w := range workers {
			w.Drain(ctx)
		}
	})
	ct := obs.NewTracer("client", 64)
	f := &testFleet{workers: workers, coord: coord, hs: hs, c: client.New(hs.URL).WithTracer(ct)}
	return f, ct
}

// fleetTraceDump fetches and decodes the coordinator's GET /debug/trace.
func fleetTraceDump(t *testing.T, url string) FleetTraceDump {
	t.Helper()
	resp, err := http.Get(url + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace status %d", resp.StatusCode)
	}
	var d FleetTraceDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("decode fleet trace dump: %v", err)
	}
	return d
}

// TestFleetTraceTree is the end-to-end acceptance pin for distributed
// tracing: one grid request through client → coordinator → worker →
// engine renders as a single trace tree. Every hop's span must join
// the client's trace and parent onto the previous hop, and the
// injected request ID must surface on the worker's handler span.
func TestFleetTraceTree(t *testing.T) {
	f, clientTracer := newTracedFleet(t)

	const reqID = "fleet-e2e.req-1"
	ctx := obs.ContextWithRequestID(context.Background(), reqID)
	if _, err := f.c.Simulate(ctx, testRequest("lpshe", 21)); err != nil {
		t.Fatal(err)
	}

	// One span set to walk: the client's ring plus the fleet dump
	// (coordinator + every worker, already merged into .Spans).
	dump := fleetTraceDump(t, f.hs.URL)
	if len(dump.Errors) > 0 {
		t.Fatalf("worker dump errors: %v", dump.Errors)
	}
	if len(dump.Workers) != 3 {
		t.Fatalf("fleet dump covers %d workers, want 3", len(dump.Workers))
	}
	spans := append(clientTracer.Dump().Spans, dump.Spans...)

	byName := map[string]obs.SpanRecord{}
	byID := map[string]obs.SpanRecord{}
	for _, s := range spans {
		byID[s.SpanID] = s
		if _, dup := byName[s.Name]; !dup {
			byName[s.Name] = s
		}
	}

	root, ok := byName["client./v1/simulate"]
	if !ok {
		t.Fatalf("no client root span; have %d spans", len(spans))
	}
	if root.ParentID != "" {
		t.Errorf("client span has parent %s, want none (it originates the trace)", root.ParentID)
	}
	trace := root.TraceID

	coordSpan, ok := byName["dvsfleet.simulate"]
	if !ok {
		t.Fatal("no dvsfleet.simulate span")
	}
	if coordSpan.ParentID != root.SpanID {
		t.Errorf("coordinator span parent = %s, want the client span %s", coordSpan.ParentID, root.SpanID)
	}
	if coordSpan.Attrs["request_id"] != reqID {
		t.Errorf("coordinator adopted request_id %q, want %q", coordSpan.Attrs["request_id"], reqID)
	}

	route, ok := byName["fleet.route"]
	if !ok {
		t.Fatal("no fleet.route span")
	}
	if route.ParentID != coordSpan.SpanID {
		t.Errorf("route span parent = %s, want the coordinator span %s", route.ParentID, coordSpan.SpanID)
	}
	if route.Attrs["outcome"] != "ok" {
		t.Errorf("route span outcome = %q, want ok", route.Attrs["outcome"])
	}

	worker, ok := byName["dvsd.simulate"]
	if !ok {
		t.Fatal("no worker dvsd.simulate span")
	}
	if worker.ParentID != route.SpanID {
		t.Errorf("worker span parent = %s, want the route span %s", worker.ParentID, route.SpanID)
	}
	if worker.Attrs["request_id"] != reqID {
		t.Errorf("request ID did not survive the fleet hop: worker saw %q, want %q",
			worker.Attrs["request_id"], reqID)
	}

	run, ok := byName["sim.run"]
	if !ok {
		t.Fatal("no sim.run span")
	}
	if run.ParentID != worker.SpanID {
		t.Errorf("sim.run parent = %s, want the worker handler span %s", run.ParentID, worker.SpanID)
	}
	var engines int
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "engine.") {
			engines++
			if s.ParentID != run.SpanID {
				t.Errorf("%s parent = %s, want the sim.run span %s", s.Name, s.ParentID, run.SpanID)
			}
		}
	}
	if engines == 0 {
		t.Error("no engine phase spans in the fleet dump")
	}

	// Single-trace, no-orphans invariants over the whole set.
	for _, s := range spans {
		if s.TraceID != trace {
			t.Errorf("span %s (%s) on trace %s, want %s — request fractured into multiple traces",
				s.Name, s.Service, s.TraceID, trace)
		}
		if s.ParentID == "" {
			continue
		}
		if _, ok := byID[s.ParentID]; !ok {
			t.Errorf("span %s has unresolvable parent %s", s.Name, s.ParentID)
		}
	}
}

// TestFleetTraceDumpDisabled: a coordinator without a tracer refuses
// the fleet dump rather than serving an empty document.
func TestFleetTraceDumpDisabled(t *testing.T) {
	f := newTestFleet(t, 1, Config{})
	resp, err := http.Get(f.hs.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/trace without tracing = %d, want 404", resp.StatusCode)
	}
}

// TestFleetMetricsFederation checks the coordinator's /metrics.prom is
// a valid merged exposition: its own families unlabeled, every
// worker's families tagged worker="addr".
func TestFleetMetricsFederation(t *testing.T) {
	f := newTestFleet(t, 3, Config{})
	if _, err := f.c.Simulate(context.Background(), testRequest("lpshe", 33)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(f.hs.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics.prom status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	var body strings.Builder
	if _, err := io.Copy(&body, resp.Body); err != nil {
		t.Fatal(err)
	}
	merged := body.String()

	if err := obs.ValidateExposition(strings.NewReader(merged)); err != nil {
		t.Fatalf("federated exposition invalid: %v", err)
	}
	if !strings.Contains(merged, "# TYPE dvsfleet_http_requests_total counter") {
		t.Error("coordinator families missing from federation")
	}
	if !strings.Contains(merged, `dvsfleet_http_requests_total{endpoint="simulate"}`) {
		t.Error("coordinator samples lost their labels in the merge")
	}
	for _, w := range f.workers {
		needle := `worker="` + w.Addr() + `"`
		if !strings.Contains(merged, needle) {
			t.Errorf("no samples labeled %s in the federated page", needle)
		}
	}
	if !strings.Contains(merged, "# TYPE dvsd_") {
		t.Error("no worker families in the federated page")
	}
}
