package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvsslack/internal/par"
	"dvsslack/internal/server"
)

// This file is the fleet-wide experiment fan-out: the coordinator
// owns batch jobs and spreads their runs across every worker —
// each run routed by its own scenario key, so a 10k-run sweep lands
// on the whole fleet (with per-run cache affinity) instead of
// parking on whichever worker happened to receive the POST.
//
// The determinism discipline mirrors internal/experiment's cell
// grid: run outcomes are recorded under their submission index and
// sorted into submission order at finish, so the results of a fleet
// job are byte-identical to the same batch run on a single daemon,
// regardless of fan-out width, worker count, or mid-job failover
// (simulations are deterministic — which worker executes a run never
// changes its result).

// fleetJob is one coordinator-owned batch.
type fleetJob struct {
	id      string
	name    string
	created time.Time
	cancel  context.CancelFunc

	mu       sync.Mutex
	state    string
	started  time.Time
	ended    time.Time
	runs     []server.SimRequest
	outcomes []server.RunOutcome
	done     int
	failed   int
	firstErr string
	subs     map[chan server.JobEvent]struct{}
	finished chan struct{}
}

func (j *fleetJob) info(withResults bool) server.JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := server.JobInfo{
		ID:      j.id,
		Name:    j.name,
		State:   j.state,
		Total:   len(j.runs),
		Done:    j.done,
		Failed:  j.failed,
		Created: j.created.UTC().Format(time.RFC3339Nano),
		Error:   j.firstErr,
	}
	if !j.started.IsZero() {
		info.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.ended.IsZero() {
		info.Ended = j.ended.UTC().Format(time.RFC3339Nano)
	}
	if withResults {
		info.Results = append([]server.RunOutcome(nil), j.outcomes...)
	}
	return info
}

// publish fans an event to subscribers; sends never block (a slow
// subscriber's full buffer drops the event — the terminal state is
// signalled by finished, which nobody can miss).
func (j *fleetJob) publish(ev server.JobEvent) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// recordRun stores one fanned-out run's outcome.
func (j *fleetJob) recordRun(index int, res server.SimResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ro := server.RunOutcome{Index: index}
	if err != nil {
		ro.Error = err.Error()
		j.failed++
		if j.firstErr == "" {
			j.firstErr = err.Error()
		}
	} else {
		r := res
		ro.Result = &r
	}
	j.outcomes = append(j.outcomes, ro)
	j.done++
	ev := server.JobEvent{
		Type: "progress", State: j.state,
		Total: len(j.runs), Done: j.done, Failed: j.failed,
		Index: index,
	}
	if ro.Result != nil {
		ev.Policy, ev.Energy = ro.Result.Policy, ro.Result.Energy
	} else {
		ev.Error = ro.Error
	}
	j.publish(ev)
}

// finish moves the job to a terminal state and sorts outcomes into
// submission order — the ordered half of the fan-out's ordered merge.
func (j *fleetJob) finish(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case server.JobDone, server.JobFailed, server.JobCancelled:
		return
	}
	j.state = state
	j.ended = time.Now()
	sort.Slice(j.outcomes, func(a, b int) bool { return j.outcomes[a].Index < j.outcomes[b].Index })
	j.publish(server.JobEvent{Type: "end", State: state,
		Total: len(j.runs), Done: j.done, Failed: j.failed, Error: j.firstErr})
	close(j.finished)
}

// stream pumps the job's SSE events to w until the terminal event or
// ctx cancellation (wire-compatible with dvsd's job stream).
func (j *fleetJob) stream(ctx context.Context, w http.ResponseWriter) {
	rc := http.NewResponseController(w)
	send := func(ev server.JobEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		rc.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		rc.Flush()
		return true
	}

	ch := make(chan server.JobEvent, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	snapshot := server.JobEvent{Type: "progress", State: j.state,
		Total: len(j.runs), Done: j.done, Failed: j.failed}
	j.mu.Unlock()
	defer func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}()

	if !send(snapshot) {
		return
	}
	for {
		select {
		case ev := <-ch:
			if !send(ev) || ev.Type == "end" {
				return
			}
		case <-j.finished:
			// Drain buffered progress, then emit the terminal event
			// (publish is lossy; this path is not).
			for {
				select {
				case ev := <-ch:
					if ev.Type == "end" {
						send(ev)
						return
					}
					if !send(ev) {
						return
					}
				default:
					info := j.info(false)
					send(server.JobEvent{Type: "end", State: info.State,
						Total: info.Total, Done: info.Done, Failed: info.Failed, Error: info.Error})
					return
				}
			}
		case <-ctx.Done():
			return
		}
	}
}

// fleetJobs owns every coordinator job and its fan-out goroutines.
type fleetJobs struct {
	coord  *Coordinator
	nextID atomic.Uint64

	mu    sync.Mutex
	jobs  map[string]*fleetJob
	order []string
}

func newFleetJobs(c *Coordinator) *fleetJobs {
	return &fleetJobs{coord: c, jobs: map[string]*fleetJob{}}
}

// width returns the fan-out concurrency: enough in-flight runs to
// keep every worker's pool busy without overrunning its admission
// budget from a single job.
func (s *fleetJobs) width() int {
	if w := s.coord.cfg.FanoutWidth; w > 0 {
		return w
	}
	if n := 4 * s.coord.workerCount(); n > 0 {
		return n
	}
	return 4
}

// Create registers a job and starts fanning its runs across the
// fleet.
func (s *fleetJobs) Create(name string, runs []server.SimRequest) *fleetJob {
	ctx, cancel := context.WithCancel(context.Background())
	j := &fleetJob{
		id:       fmt.Sprintf("fj%d", s.nextID.Add(1)),
		name:     name,
		created:  time.Now(),
		cancel:   cancel,
		state:    server.JobQueued,
		runs:     runs,
		subs:     map[chan server.JobEvent]struct{}{},
		finished: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.coord.met.jobsCreated.Inc()
	go s.run(ctx, j)
	return j
}

// run fans the job's runs out across the fleet. Failures are recorded
// per outcome; cancellation is the only early stop.
func (s *fleetJobs) run(ctx context.Context, j *fleetJob) {
	j.mu.Lock()
	j.state = server.JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	_ = par.ForEach(s.width(), len(j.runs), func(i int) error {
		if ctx.Err() != nil {
			return nil // cancelled: stop submitting further runs
		}
		req := &j.runs[i]
		key, err := server.ScenarioKey(req)
		if err != nil {
			key = ""
		}
		s.coord.met.fanoutRuns.Inc()
		res, err := s.coord.routeSimulate(ctx, req, key)
		if ctx.Err() != nil && err != nil {
			return nil // cancelled, not a run failure
		}
		j.recordRun(i, res, err)
		return nil
	})

	state := server.JobDone
	switch {
	case ctx.Err() != nil:
		state = server.JobCancelled
	case func() bool { j.mu.Lock(); defer j.mu.Unlock(); return j.failed > 0 }():
		state = server.JobFailed
	}
	j.finish(state)
	s.coord.met.jobsFinished.Inc()
}

// Get returns a job by ID.
func (s *fleetJobs) Get(id string) (*fleetJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns job summaries in creation order.
func (s *fleetJobs) List() []server.JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]server.JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Get(id); ok {
			out = append(out, j.info(false))
		}
	}
	return out
}

// Cancel aborts a job's remaining runs.
func (s *fleetJobs) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// WaitIdle blocks until every job is terminal or ctx expires.
func (s *fleetJobs) WaitIdle(ctx context.Context) error {
	s.mu.Lock()
	pending := make([]*fleetJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		select {
		case <-j.finished:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// CancelAll aborts every job (shutdown path).
func (s *fleetJobs) CancelAll() {
	s.mu.Lock()
	pending := make([]*fleetJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		j.cancel()
	}
}
