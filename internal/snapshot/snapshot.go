// Package snapshot frames simulation checkpoints as versioned,
// self-describing, integrity-checked byte envelopes.
//
// The engine's sim.(*Engine).Snapshot produces raw state bytes with
// no framing; this package wraps them for storage and the wire:
//
//	offset  size  field
//	0       8     magic "DVSSNAP\x00"
//	8       8     format version (little-endian uint64)
//	16      8     body length N (little-endian uint64)
//	24      N     body (snapbuf: scenario key, sim time, engine
//	              state, optional auditor state)
//	24+N    32    SHA-256 over bytes [0, 24+N)
//
// Decoding is strict and fails closed: bad magic, an unknown (or
// future) version, a truncated payload, a checksum mismatch, or
// trailing bytes after the checksum each yield a typed error and no
// partial state. The scenario key binds a snapshot to the exact
// simulation request it was taken from; Restore refuses a snapshot
// whose key differs from the caller's, so a checkpoint can never be
// resumed against a different scenario's configuration.
//
// Version policy: the version is bumped on any change to the body
// layout (including policy/analyzer codec changes in the packages
// below). Readers accept exactly the versions they know; there is no
// best-effort decoding of newer snapshots.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"dvsslack/internal/audit"
	"dvsslack/internal/sim"
	"dvsslack/internal/snapbuf"
)

// Version is the current snapshot format version.
const Version = 1

// magic identifies a dvsslack snapshot envelope.
var magic = [8]byte{'D', 'V', 'S', 'S', 'N', 'A', 'P', 0}

const (
	headerLen   = 8 + 8 + 8 // magic + version + body length
	checksumLen = sha256.Size
)

// Typed decode failures. All of them fail closed: Decode returns no
// envelope, Restore returns no engine, and a caller-supplied auditor
// is left untouched.
var (
	// ErrBadMagic reports bytes that are not a snapshot envelope.
	ErrBadMagic = errors.New("snapshot: bad magic (not a dvsslack snapshot)")
	// ErrVersion reports an unknown or future format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated reports an envelope shorter than its header and
	// length field claim.
	ErrTruncated = errors.New("snapshot: truncated envelope")
	// ErrChecksum reports an integrity failure: the payload does not
	// hash to the stored checksum.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrTrailingData reports extra bytes after the checksum.
	ErrTrailingData = errors.New("snapshot: trailing data after envelope")
	// ErrKeyMismatch reports a restore against a different scenario
	// than the snapshot was captured from.
	ErrKeyMismatch = errors.New("snapshot: scenario key mismatch")
)

// MaxSnapshotBytes caps the envelope size accepted by Decode and by
// the dvsd restore endpoint. Real snapshots are a few KB; the cap
// only exists to bound what a hostile payload can make a server hold.
const MaxSnapshotBytes = 16 << 20

// Envelope is the decoded content of a snapshot.
type Envelope struct {
	// ScenarioKey is the canonical key of the simulation request this
	// snapshot was captured from (server.ScenarioKey).
	ScenarioKey string
	// SimTime is the simulation clock at the checkpoint, for
	// observability; the authoritative clock travels inside Engine.
	SimTime float64
	// Engine is the raw engine state from sim.(*Engine).Snapshot.
	Engine []byte
	// Audit is the auditor's shadow state, or nil if the run was not
	// audited.
	Audit []byte
}

// Encode frames env as a versioned, checksummed envelope.
func Encode(env *Envelope) []byte {
	body := snapbuf.NewEncoder()
	body.String(env.ScenarioKey)
	body.Float64(env.SimTime)
	body.Uint64(uint64(len(env.Engine)))
	bodyBytes := append(body.Bytes(), env.Engine...)
	tail := snapbuf.NewEncoder()
	tail.Bool(env.Audit != nil)
	bodyBytes = append(bodyBytes, tail.Bytes()...)
	bodyBytes = append(bodyBytes, env.Audit...)

	out := make([]byte, 0, headerLen+len(bodyBytes)+checksumLen)
	out = append(out, magic[:]...)
	out = binary.LittleEndian.AppendUint64(out, Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(bodyBytes)))
	out = append(out, bodyBytes...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// Decode parses and verifies an envelope. It checks, in order: size
// bounds, magic, version, declared body length, checksum, and strict
// body decoding with no trailing bytes at either layer.
func Decode(data []byte) (*Envelope, error) {
	if len(data) > MaxSnapshotBytes {
		return nil, fmt.Errorf("snapshot: envelope of %d bytes exceeds limit %d", len(data), MaxSnapshotBytes)
	}
	if len(data) < headerLen+checksumLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed framing", ErrTruncated, len(data))
	}
	if [8]byte(data[:8]) != magic {
		return nil, ErrBadMagic
	}
	version := binary.LittleEndian.Uint64(data[8:16])
	if version != Version {
		return nil, fmt.Errorf("%w: %d (this build reads version %d)", ErrVersion, version, Version)
	}
	bodyLen := binary.LittleEndian.Uint64(data[16:24])
	if bodyLen != uint64(len(data)-headerLen-checksumLen) {
		if bodyLen > uint64(len(data)) {
			return nil, fmt.Errorf("%w: body length %d exceeds envelope", ErrTruncated, bodyLen)
		}
		return nil, fmt.Errorf("%w: %d bytes after the declared body", ErrTrailingData,
			uint64(len(data)-headerLen-checksumLen)-bodyLen)
	}
	payloadEnd := headerLen + int(bodyLen)
	sum := sha256.Sum256(data[:payloadEnd])
	var stored [checksumLen]byte
	copy(stored[:], data[payloadEnd:])
	if sum != stored {
		return nil, ErrChecksum
	}

	dec := snapbuf.NewDecoder(data[headerLen:payloadEnd])
	env := &Envelope{}
	env.ScenarioKey = dec.String()
	env.SimTime = dec.Float64()
	engLen := dec.Uint64()
	if dec.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, dec.Err())
	}
	if engLen > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("%w: engine state of %d bytes exceeds body", ErrTruncated, engLen)
	}
	env.Engine = dec.Bytes(int(engLen))
	hasAudit := dec.Bool()
	if dec.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, dec.Err())
	}
	if hasAudit {
		env.Audit = dec.Bytes(dec.Remaining())
	}
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTrailingData, err)
	}
	return env, nil
}

// Capture snapshots a running engine (and its auditor, if any) into a
// framed envelope bound to scenarioKey. The engine must be between
// Step calls; Capture does not advance it.
func Capture(scenarioKey string, e *sim.Engine, aud *audit.Auditor) ([]byte, error) {
	engState, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	env := &Envelope{ScenarioKey: scenarioKey, SimTime: e.Now(), Engine: engState}
	if aud != nil {
		enc := snapbuf.NewEncoder()
		aud.SnapshotState(enc)
		env.Audit = enc.Bytes()
	}
	return Encode(env), nil
}

// Restore decodes data, verifies it was captured from scenarioKey,
// and rebuilds the engine (and auditor, when aud is non-nil) to the
// checkpointed state. cfg must be rebuilt from the same simulation
// request that produced scenarioKey — including cfg.Observer pointing
// at aud if the original run was audited.
//
// On any error the returned engine is nil and aud is unmodified
// (auditor state commits only after its full payload validates). A
// nil-error return means the engine will replay the remainder of the
// run bit-identically to the run the snapshot was taken from.
func Restore(data []byte, scenarioKey string, cfg sim.Config, aud *audit.Auditor) (*sim.Engine, error) {
	env, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if env.ScenarioKey != scenarioKey {
		return nil, fmt.Errorf("%w: snapshot is for %.12s…, request is %.12s…",
			ErrKeyMismatch, env.ScenarioKey, scenarioKey)
	}
	if aud != nil && env.Audit == nil {
		return nil, errors.New("snapshot: request is audited but the snapshot carries no auditor state")
	}
	e, err := sim.RestoreEngine(cfg, env.Engine)
	if err != nil {
		return nil, err
	}
	if aud != nil {
		dec := snapbuf.NewDecoder(env.Audit)
		if err := aud.RestoreState(dec); err != nil {
			return nil, fmt.Errorf("snapshot: auditor restore: %w", err)
		}
		if err := dec.Finish(); err != nil {
			return nil, fmt.Errorf("snapshot: auditor restore: %w", err)
		}
	}
	return e, nil
}
