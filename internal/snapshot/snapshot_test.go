package snapshot_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"dvsslack/internal/audit"
	"dvsslack/internal/cpu"
	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/snapshot"
	"dvsslack/internal/workload"
)

// mkCfg builds a fresh audited config for one run. Every call returns
// new policy/auditor instances so straight-through and restored runs
// never share mutable state.
func mkCfg(t *testing.T, ts *rtm.TaskSet, spec string, proc *cpu.Processor, jitterSeed uint64) (sim.Config, *audit.Auditor) {
	t.Helper()
	pol, err := policies.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	aud := audit.New(audit.Options{TaskSet: ts, Processor: proc})
	return sim.Config{
		TaskSet:    ts,
		Processor:  proc,
		Policy:     pol,
		Workload:   workload.Uniform{Lo: 0.25, Hi: 1, Seed: 7},
		Observer:   aud,
		JitterSeed: jitterSeed,
	}, aud
}

// runSteps steps the engine exactly n times (or until it ends) and
// reports how many steps actually ran.
func runSteps(e *sim.Engine, n int) int {
	for i := 0; i < n; i++ {
		if !e.Step() {
			return i
		}
	}
	return n
}

func finishRun(t *testing.T, e *sim.Engine, aud *audit.Auditor) (sim.Result, *audit.Report) {
	t.Helper()
	for e.Step() {
	}
	res, err := e.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return res, aud.Finish(res)
}

// checkRoundTrip runs a scenario straight through, then re-runs it
// with a checkpoint/restore at step stopAt, and requires bit-identical
// results and audit reports. The restore crosses engine instances,
// policy instances, and auditor instances — everything a process
// restart would rebuild.
func checkRoundTrip(t *testing.T, ts *rtm.TaskSet, spec string, proc *cpu.Processor, jitterSeed uint64, stopAt int) {
	t.Helper()
	key := "scenario-key-" + spec

	cfg0, aud0 := mkCfg(t, ts, spec, proc, jitterSeed)
	e0, err := sim.NewEngine(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	want, wantRep := finishRun(t, e0, aud0)

	cfg1, aud1 := mkCfg(t, ts, spec, proc, jitterSeed)
	e1, err := sim.NewEngine(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	runSteps(e1, stopAt)
	data, err := snapshot.Capture(key, e1, aud1)
	if err != nil {
		t.Fatalf("capture at step %d: %v", stopAt, err)
	}

	cfg2, aud2 := mkCfg(t, ts, spec, proc, jitterSeed)
	e2, err := snapshot.Restore(data, key, cfg2, aud2)
	if err != nil {
		t.Fatalf("restore at step %d: %v", stopAt, err)
	}
	got, gotRep := finishRun(t, e2, aud2)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("step %d: restored result differs:\n got  %+v\n want %+v", stopAt, got, want)
	}
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Errorf("step %d: restored audit report differs:\n got  %+v\n want %+v", stopAt, gotRep, wantRep)
	}
	if !gotRep.OK() {
		t.Errorf("step %d: restored run has audit violations, first: %v", stopAt, gotRep.Violations[0])
	}
}

// TestRoundTripAllPolicies pins the determinism contract for every
// registered base policy and the wrapper combinations at a mid-run
// checkpoint.
func TestRoundTripAllPolicies(t *testing.T) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(5, 0.7, 11))
	if err != nil {
		t.Fatal(err)
	}
	specs := policies.Names()
	specs = append(specs, "lpshe+dual", "lpshe+guard", "lpshe+crit", "cc+dual", "lpshe+dual+guard")
	proc := cpu.Continuous(0.1)
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			// Find the run length, then checkpoint mid-run.
			cfg, _ := mkCfg(t, ts, spec, proc, 0)
			e, err := sim.NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for e.Step() {
				total++
			}
			if total < 4 {
				t.Fatalf("degenerate run: only %d steps", total)
			}
			checkRoundTrip(t, ts, spec, proc, 0, total/2)
		})
	}
}

// TestRoundTripCheckpointSweep checkpoints the two most stateful
// policies at every phase of a run: before the first step, after one
// step, mid-run, one step before the end, and after the natural end.
func TestRoundTripCheckpointSweep(t *testing.T) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(4, 0.75, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		spec string
		proc *cpu.Processor
	}{
		{"lpshe", cpu.Continuous(0.1)},
		{"lpshe", cpu.UniformLevels(6)},
		{"dra", cpu.Continuous(0.1)},
		{"feedback", cpu.XScale()},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s-%s", tc.spec, tc.proc.Name()), func(t *testing.T) {
			t.Parallel()
			cfg, _ := mkCfg(t, ts, tc.spec, tc.proc, 0)
			e, err := sim.NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for e.Step() {
				total++
			}
			for _, stopAt := range []int{0, 1, total / 3, total / 2, total - 1, total + 1} {
				checkRoundTrip(t, ts, tc.spec, tc.proc, 0, stopAt)
			}
		})
	}
}

// TestRoundTripWithJitterAndStalls covers the hazard paths: release
// jitter (the stateless jitter hash must re-derive identical release
// times post-restore) and transition stalls with sleep energy.
func TestRoundTripWithJitterAndStalls(t *testing.T) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(4, 0.5, 23))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts.Tasks {
		ts.Tasks[i].Jitter = 0.05 * ts.Tasks[i].Period
	}
	proc := cpu.Continuous(0.1)
	proc.SwitchTime = 0.1
	proc.SwitchEnergyCoeff = 0.1
	proc.LeakagePower = 0.05
	proc.SleepEnabled = true
	proc.SleepPower = 0.005
	proc.WakeEnergy = 0.3

	cfg, _ := mkCfg(t, ts, "lpshe+guard", proc, 41)
	e, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for e.Step() {
		total++
	}
	for _, stopAt := range []int{1, total / 2, total - 1} {
		checkRoundTrip(t, ts, "lpshe+guard", proc, 41, stopAt)
	}
}

// captureMidRun returns a valid envelope for corruption tests.
func captureMidRun(t *testing.T) (data []byte, ts *rtm.TaskSet, key string) {
	t.Helper()
	ts, err := rtm.Generate(rtm.DefaultGenConfig(4, 0.7, 5))
	if err != nil {
		t.Fatal(err)
	}
	key = "corruption-test-key"
	cfg, aud := mkCfg(t, ts, "lpshe", cpu.Continuous(0.1), 0)
	e, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runSteps(e, 25)
	data, err = snapshot.Capture(key, e, aud)
	if err != nil {
		t.Fatal(err)
	}
	return data, ts, key
}

// TestCorruptionFailsClosed is the fail-closed contract: every class
// of damage — truncation, bit flips in the payload or checksum, a
// future format version, bad magic, trailing garbage, a different
// scenario key — must yield a typed error and no engine.
func TestCorruptionFailsClosed(t *testing.T) {
	data, ts, key := captureMidRun(t)
	restore := func(b []byte, k string) (*sim.Engine, error) {
		cfg, aud := mkCfg(t, ts, "lpshe", cpu.Continuous(0.1), 0)
		return snapshot.Restore(b, k, cfg, aud)
	}

	if _, err := restore(data, key); err != nil {
		t.Fatalf("pristine snapshot must restore: %v", err)
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 7, 8, 23, 24, len(data) / 2, len(data) - 33, len(data) - 1} {
			e, err := restore(data[:cut], key)
			if err == nil || e != nil {
				t.Fatalf("cut=%d: restore = (%v, %v), want typed error", cut, e, err)
			}
		}
	})
	t.Run("flipped-checksum-byte", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)-5] ^= 0x01
		e, err := restore(bad, key)
		if !errors.Is(err, snapshot.ErrChecksum) || e != nil {
			t.Fatalf("restore = (%v, %v), want ErrChecksum", e, err)
		}
	})
	t.Run("flipped-payload-byte", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0x80
		e, err := restore(bad, key)
		if !errors.Is(err, snapshot.ErrChecksum) || e != nil {
			t.Fatalf("restore = (%v, %v), want ErrChecksum", e, err)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[8] = 0xFF // version field, little-endian
		e, err := restore(bad, key)
		if !errors.Is(err, snapshot.ErrVersion) || e != nil {
			t.Fatalf("restore = (%v, %v), want ErrVersion", e, err)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[0] = 'X'
		e, err := restore(bad, key)
		if !errors.Is(err, snapshot.ErrBadMagic) || e != nil {
			t.Fatalf("restore = (%v, %v), want ErrBadMagic", e, err)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		bad := append(append([]byte(nil), data...), 0xEE)
		e, err := restore(bad, key)
		if err == nil || e != nil {
			t.Fatalf("restore = (%v, %v), want error", e, err)
		}
	})
	t.Run("wrong-scenario-key", func(t *testing.T) {
		e, err := restore(data, "a-different-scenario")
		if !errors.Is(err, snapshot.ErrKeyMismatch) || e != nil {
			t.Fatalf("restore = (%v, %v), want ErrKeyMismatch", e, err)
		}
	})
	t.Run("wrong-policy-config", func(t *testing.T) {
		// Same key string, different policy: the engine-level decode
		// must reject the payload (field walk mismatch), never adopt it.
		cfg, aud := mkCfg(t, ts, "cc", cpu.Continuous(0.1), 0)
		e, err := snapshot.Restore(data, key, cfg, aud)
		if err == nil || e != nil {
			t.Fatalf("restore = (%v, %v), want error", e, err)
		}
	})
}

// TestRestoreErrorLeavesAuditorUntouched pins the no-partial-state
// contract on the auditor side.
func TestRestoreErrorLeavesAuditorUntouched(t *testing.T) {
	data, ts, key := captureMidRun(t)
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x40

	cfg, aud := mkCfg(t, ts, "lpshe", cpu.Continuous(0.1), 0)
	if _, err := snapshot.Restore(bad, key, cfg, aud); err == nil {
		t.Fatal("corrupt restore must fail")
	}
	rep := aud.Finish(sim.Result{})
	if rep.JobsReleased != 0 || rep.Dispatches != 0 {
		t.Fatalf("auditor mutated by failed restore: %+v", rep)
	}
}

// TestSnapshotRejectsNonSnapshotPolicy covers sim.ErrNoSnapshot.
func TestSnapshotRejectsNonSnapshotPolicy(t *testing.T) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(3, 0.5, 9))
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := mkCfg(t, ts, "lpshe", cpu.Continuous(0.1), 0)
	cfg.Policy = bareNonDVS{}
	e, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Snapshot(); !errors.Is(err, sim.ErrNoSnapshot) {
		t.Fatalf("Snapshot = %v, want ErrNoSnapshot", err)
	}
}

// bareNonDVS is a policy that does not implement StateSnapshotter.
type bareNonDVS struct{}

func (bareNonDVS) Name() string                      { return "bare" }
func (bareNonDVS) Reset(sim.System)                  {}
func (bareNonDVS) SelectSpeed(*sim.JobState) float64 { return 1 }
func (bareNonDVS) OnRelease(*sim.JobState)           {}
func (bareNonDVS) OnComplete(*sim.JobState)          {}
func (bareNonDVS) OnAdvance(float64)                 {}

// FuzzDecode hardens the envelope decoder against arbitrary bytes: it
// must never panic and never return both an envelope and an error.
func FuzzDecode(f *testing.F) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(3, 0.6, 13))
	if err != nil {
		f.Fatal(err)
	}
	pol, err := policies.New("lpshe")
	if err != nil {
		f.Fatal(err)
	}
	cfg := sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    pol,
		Workload:  workload.Uniform{Lo: 0.25, Hi: 1, Seed: 7},
	}
	e, err := sim.NewEngine(cfg)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 10 && e.Step(); i++ {
	}
	seed, err := snapshot.Capture("fuzz-seed", e, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:24])
	f.Add([]byte("DVSSNAP\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := snapshot.Decode(data)
		if env != nil && err != nil {
			t.Fatalf("Decode returned both an envelope and error %v", err)
		}
		if env != nil {
			// A decodable envelope must re-encode decodable.
			if _, err := snapshot.Decode(snapshot.Encode(env)); err != nil {
				t.Fatalf("re-encode of decoded envelope fails: %v", err)
			}
		}
	})
}
