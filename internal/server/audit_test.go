package server

import (
	"net/http"
	"testing"

	"dvsslack/internal/rtm"
)

// TestSimulateAuditClean checks an audited feasible run reports
// Audited with no violations and bumps the audit metrics.
func TestSimulateAuditClean(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2})

	req := quickstartRequest("lpshe")
	req.Audit = true
	res := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", req), http.StatusOK)
	if !res.Audited {
		t.Fatal("response not marked audited")
	}
	if len(res.Violations) != 0 || res.AuditTruncated {
		t.Fatalf("clean run reported violations: %+v", res.Violations)
	}
	if res.DeadlineMisses != 0 {
		t.Fatalf("%d misses on a feasible set", res.DeadlineMisses)
	}

	m := s.met.snapshot(s.workers, s.cache)
	if m.SimsAudited != 1 {
		t.Errorf("sims_audited = %d, want 1", m.SimsAudited)
	}
	if m.AuditViolations != 0 {
		t.Errorf("audit_violations = %d, want 0", m.AuditViolations)
	}
}

// TestSimulateAuditViolations checks an infeasible non-strict run
// returns its deadline-miss violations in the response body and
// counts them in /metrics.
func TestSimulateAuditViolations(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 2})

	req := SimRequest{
		TaskSet: &rtm.TaskSet{Tasks: []rtm.Task{
			{Name: "T1", WCET: 6, Period: 10},
			{Name: "T2", WCET: 6, Period: 10},
		}},
		Policy:  "nondvs",
		Horizon: 20,
		Audit:   true,
	}
	res := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", req), http.StatusOK)
	if !res.Audited {
		t.Fatal("response not marked audited")
	}
	if len(res.Violations) == 0 {
		t.Fatal("overloaded run returned no violations")
	}
	missViolations := 0
	for _, v := range res.Violations {
		if v.Invariant == "deadline-miss" {
			missViolations++
		}
	}
	if missViolations != res.DeadlineMisses {
		t.Errorf("%d deadline-miss violations for %d misses", missViolations, res.DeadlineMisses)
	}

	m := s.met.snapshot(s.workers, s.cache)
	if m.AuditViolations == 0 {
		t.Error("audit_violations metric not incremented")
	}
}

// TestAuditCacheKeySeparation checks audited and unaudited requests
// do not collide in the result cache: flipping Audit must not serve a
// violation-less cached result for an audited request.
func TestAuditCacheKeySeparation(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	plain := quickstartRequest("lpshe")
	first := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", plain), http.StatusOK)
	if first.Audited {
		t.Fatal("unaudited request came back audited")
	}

	audited := plain
	audited.Audit = true
	second := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", audited), http.StatusOK)
	if second.Cached {
		t.Fatal("audited request was served the unaudited cache entry")
	}
	if !second.Audited {
		t.Fatal("audited request came back unaudited")
	}
	if first.Energy != second.Energy {
		t.Errorf("audit changed the result: energy %v vs %v", first.Energy, second.Energy)
	}

	// The audited entry itself is cacheable, violations included.
	third := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", audited), http.StatusOK)
	if !third.Cached || !third.Audited {
		t.Errorf("repeat audited request: cached=%v audited=%v, want both", third.Cached, third.Audited)
	}
}
