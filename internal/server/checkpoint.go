package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"dvsslack/internal/obs"
	"dvsslack/internal/snapshot"
)

// JobCheckpointVersion is the current job-checkpoint document version.
// Like the snapshot envelope version it is bumped on any layout
// change; readers accept exactly the versions they know.
const JobCheckpointVersion = 1

// JobCheckpoint is the portable record of a paused job: the full run
// list, every outcome already recorded, and a mid-flight engine
// snapshot for each run that was executing when the pause landed. It
// is self-contained — restoring it on a different daemon (the fleet's
// live-migration path) or a later process (crash recovery) resumes the
// job bit-identically, because each snapshot envelope is bound to its
// run's canonical scenario key.
type JobCheckpoint struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	// JobID is the ID the job had when checkpointed, for logs and the
	// on-disk file name; restore always mints a fresh ID.
	JobID string       `json:"job_id,omitempty"`
	Runs  []SimRequest `json:"runs"`
	// Outcomes holds the runs that finished before the pause; restore
	// seeds the new job with them and never re-executes those indices.
	Outcomes []RunOutcome `json:"outcomes,omitempty"`
	// Snapshots maps a decimal run index to the base64 of its snapshot
	// envelope (internal/snapshot framing: versioned, checksummed, and
	// scenario-key-bound).
	Snapshots map[string]string `json:"snapshots,omitempty"`
}

// errNoSuchJob distinguishes "unknown job ID" from transport errors
// on the checkpoint path.
var errNoSuchJob = errors.New("server: no such job")

// ckptKey is the scenario key a run's snapshots are bound to. A
// request that cannot be keyed degrades to "" — consistently on both
// the capture and restore sides, so the binding check still holds.
func ckptKey(req *SimRequest) string {
	key, err := ScenarioKey(req)
	if err != nil {
		return ""
	}
	return key
}

// materialize validates the document and decodes its snapshots into
// run-indexed envelopes. Everything fails closed: a version mismatch,
// an invalid run, an out-of-range or duplicate outcome, a snapshot for
// an already-finished run, a corrupt envelope, or an envelope bound to
// a different run's scenario key each reject the whole document.
func (d *JobCheckpoint) materialize() (map[int][]byte, error) {
	if d.Version != JobCheckpointVersion {
		return nil, fmt.Errorf("server: job checkpoint version %d (this build reads version %d)",
			d.Version, JobCheckpointVersion)
	}
	if len(d.Runs) == 0 {
		return nil, errors.New("server: job checkpoint has no runs")
	}
	if len(d.Runs) > MaxBatchRuns {
		return nil, fmt.Errorf("server: job checkpoint has %d runs, limit %d", len(d.Runs), MaxBatchRuns)
	}
	for i := range d.Runs {
		if err := d.Runs[i].Validate(); err != nil {
			return nil, fmt.Errorf("server: checkpoint run %d: %w", i, err)
		}
	}
	finished := make(map[int]bool, len(d.Outcomes))
	for _, ro := range d.Outcomes {
		if ro.Index < 0 || ro.Index >= len(d.Runs) {
			return nil, fmt.Errorf("server: checkpoint outcome index %d out of range [0,%d)", ro.Index, len(d.Runs))
		}
		if finished[ro.Index] {
			return nil, fmt.Errorf("server: duplicate checkpoint outcome for run %d", ro.Index)
		}
		finished[ro.Index] = true
	}
	snaps := make(map[int][]byte, len(d.Snapshots))
	for k, v := range d.Snapshots {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 || i >= len(d.Runs) {
			return nil, fmt.Errorf("server: checkpoint snapshot key %q is not a run index", k)
		}
		if finished[i] {
			return nil, fmt.Errorf("server: checkpoint run %d has both an outcome and a snapshot", i)
		}
		env, err := base64.StdEncoding.DecodeString(v)
		if err != nil {
			return nil, fmt.Errorf("server: checkpoint snapshot %d: %w", i, err)
		}
		dec, err := snapshot.Decode(env)
		if err != nil {
			return nil, fmt.Errorf("server: checkpoint snapshot %d: %w", i, err)
		}
		if want := ckptKey(&d.Runs[i]); dec.ScenarioKey != want {
			return nil, fmt.Errorf("server: checkpoint snapshot %d: %w", i, snapshot.ErrKeyMismatch)
		}
		snaps[i] = env
	}
	return snaps, nil
}

// --- durable checkpoint files ---

// checkpointFileName is where a job's document lives inside the
// checkpoint directory.
func checkpointFileName(dir, id string) string {
	return filepath.Join(dir, id+".ckpt.json")
}

// writeCheckpointFile persists doc atomically (write-then-rename), so
// a crash mid-write can never leave a torn document where a valid one
// stood.
func writeCheckpointFile(dir string, doc *JobCheckpoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	final := checkpointFileName(dir, doc.JobID)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// RecoverCheckpoints restores every job document found in the
// configured checkpoint directory (a previous process's drain or
// auto-checkpoint output) and resumes them. Successfully consumed
// files are removed; files that fail validation are left in place for
// inspection and reported through the first returned error. Call it
// once, after New and before serving traffic.
func (s *Server) RecoverCheckpoints() (int, error) {
	dir := s.cfg.CheckpointDir
	if dir == "" {
		return 0, nil
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt.json"))
	if err != nil {
		return 0, err
	}
	sort.Strings(paths)
	recovered := 0
	var firstErr error
	for _, path := range paths {
		data, err := os.ReadFile(path)
		var doc JobCheckpoint
		if err == nil {
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			err = dec.Decode(&doc)
		}
		var j *job
		if err == nil {
			j, err = s.jobs.Restore(s.baseCtx, &doc)
		}
		if err != nil {
			s.met.restores.With("error").Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", filepath.Base(path), err)
			}
			s.log.Warn("checkpoint recovery failed", "file", filepath.Base(path), "err", err)
			continue
		}
		s.met.restores.With("ok").Inc()
		os.Remove(path)
		recovered++
		s.log.Info("checkpoint recovered",
			"file", filepath.Base(path), "job", j.id, "total", len(doc.Runs), "done", len(doc.Outcomes))
	}
	return recovered, firstErr
}

// pruneCheckpointFiles removes on-disk documents of jobs that reached
// a genuinely terminal state — a stale file would re-run finished (or
// deliberately cancelled) work on the next recovery.
func (s *Server) pruneCheckpointFiles() {
	if s.cfg.CheckpointDir == "" {
		return
	}
	for _, j := range s.jobs.all() {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		switch st {
		case JobDone, JobFailed, JobCancelled:
			os.Remove(checkpointFileName(s.cfg.CheckpointDir, j.id))
		}
	}
}

// autoCheckpointLoop periodically snapshots running jobs to the
// checkpoint directory, bounding what a crash (as opposed to a
// graceful drain) can lose to one interval. Ticks are skipped while
// draining — Shutdown's own checkpoint pass owns that window.
func (s *Server) autoCheckpointLoop() {
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
		}
		if s.draining.Load() {
			continue
		}
		s.autoCheckpointOnce()
	}
}

// autoCheckpointOnce writes one live document per active job and
// prunes documents of terminal ones. Live captures are bounded by
// half the interval (at most 1s): a run that cannot reach a step
// boundary in time simply keeps its previous snapshot.
func (s *Server) autoCheckpointOnce() {
	wait := s.cfg.CheckpointInterval / 2
	if wait > time.Second {
		wait = time.Second
	}
	for _, j := range s.jobs.all() {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		switch st {
		case JobDone, JobFailed, JobCancelled, JobCheckpointed:
			os.Remove(checkpointFileName(s.cfg.CheckpointDir, j.id))
			continue
		}
		if err := writeCheckpointFile(s.cfg.CheckpointDir, j.liveCheckpoint(wait)); err != nil {
			s.log.Warn("auto-checkpoint failed", "job", j.id, "err", err)
			continue
		}
		s.met.checkpoints.Inc()
	}
}

// --- handlers ---

// handleCheckpointJob answers POST /v1/jobs/{id}/checkpoint: pause the
// job at the next step boundary of each in-flight run and return the
// full checkpoint document. Deliberately not gated on draining —
// checkpointing is how work leaves a draining daemon.
func (s *Server) handleCheckpointJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	start := time.Now()
	doc, err := s.jobs.Checkpoint(r.Context(), id)
	switch {
	case errors.Is(err, errNoSuchJob):
		writeError(w, http.StatusNotFound, "server: no such job %q", id)
		return
	case err != nil:
		// The pause did not settle within the request deadline; the
		// job keeps running, the client can retry.
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "server: checkpoint did not settle: %v", err)
		return
	}
	s.met.checkpoints.Inc()
	if s.tracer != nil {
		if sc, ok := obs.SpanContextFromContext(r.Context()); ok {
			s.tracer.Emit(sc, "dvsd.checkpoint", start, time.Since(start), map[string]string{
				"job":       id,
				"snapshots": strconv.Itoa(len(doc.Snapshots)),
				"outcomes":  strconv.Itoa(len(doc.Outcomes)),
			})
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleRestoreJob answers POST /v1/jobs/restore: validate a
// checkpoint document and resume it as a fresh job. Restores reject
// while draining (they are new work).
func (s *Server) handleRestoreJob(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	var doc JobCheckpoint
	if !s.decodeBody(w, r, &doc) {
		return
	}
	j, err := s.jobs.Restore(s.baseCtx, &doc)
	if err != nil {
		s.met.restores.With("error").Inc()
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.restores.With("ok").Inc()
	writeJSON(w, http.StatusAccepted, j.info(false))
}
