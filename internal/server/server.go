package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"dvsslack/internal/obs"
	"dvsslack/internal/policies"
	"dvsslack/internal/resilience"
	"dvsslack/internal/trace"
)

// Config tunes the daemon.
type Config struct {
	// Workers is the simulation worker-pool size; <= 0 selects
	// runtime.NumCPU().
	Workers int
	// QueueDepth bounds the pending-run queue; <= 0 selects
	// Workers×64.
	QueueDepth int
	// CacheSize is the result-cache capacity in entries; <= 0
	// selects 4096. Set to -1 to disable caching.
	CacheSize int
	// MaxBodyBytes bounds request bodies; <= 0 selects 32 MiB.
	MaxBodyBytes int64
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ (cmd/dvsd -pprof). Off by default: profiling
	// endpoints expose internals and cost CPU when hit.
	EnablePprof bool
	// Logger receives structured request and lifecycle logs; nil
	// discards them.
	Logger *slog.Logger

	// RequestTimeout bounds the handling of every non-streaming
	// request (cmd/dvsd -request-timeout). Clients may tighten — but
	// never loosen — it per request via an X-Request-Deadline header
	// holding a Go duration ("750ms"). 0 disables the server-side
	// bound (client deadlines still apply).
	RequestTimeout time.Duration
	// AdmitLimit caps concurrently admitted synchronous /v1/simulate
	// requests; excess requests are shed immediately with 429 +
	// Retry-After instead of piling up goroutines. <= 0 selects
	// workers + queue depth (everything admitted can be running or
	// queued; nothing admitted ever waits behind a full queue for
	// long). Cache hits bypass admission: an overloaded daemon keeps
	// serving memoized results while shedding fresh simulation work.
	AdmitLimit int
	// SSEWriteTimeout is the per-event write deadline of the SSE job
	// stream; consumers that cannot absorb an event within it are
	// dropped rather than allowed to park the stream goroutine on a
	// dead connection. <= 0 selects 5s.
	SSEWriteTimeout time.Duration
	// Chaos, when non-nil, wraps the handler chain in the
	// deterministic fault injector (cmd/dvsd -chaos). Testing only.
	Chaos *resilience.ChaosConfig

	// CheckpointDir, when non-empty, enables durable job checkpoints:
	// Shutdown checkpoints unfinished jobs into this directory instead
	// of cancelling them, and RecoverCheckpoints resumes them on the
	// next start (cmd/dvsd -checkpoint-dir).
	CheckpointDir string
	// CheckpointInterval, when positive (and CheckpointDir is set),
	// additionally snapshots running jobs to the directory on this
	// period, so a crash — not just a graceful drain — loses at most
	// one interval of simulation work (cmd/dvsd -checkpoint-interval).
	CheckpointInterval time.Duration

	// Tracer, when non-nil, records handler / simulation / engine
	// phase spans into its ring (served on GET /debug/trace).
	// Propagation is independent of recording: inbound traceparent
	// headers are honored and forwarded whether or not a Tracer is
	// set, so enabling one cannot change any request's bytes.
	Tracer *obs.Tracer
	// FlightRecorder sizes the decision flight recorder ring
	// (GET /debug/flightrecorder): 0 selects 4096, -1 disables it.
	FlightRecorder int
}

// Server is the dvsd control plane: an http.Handler plus the worker
// pool, job store, result cache, and metrics behind it.
type Server struct {
	cfg     Config
	workers int
	pool    *pool
	jobs    *jobStore
	cache   *resultCache
	met     *metrics
	log     *slog.Logger
	mux     *http.ServeMux
	handler http.Handler // mux behind recovery (and chaos) middleware

	admit      *resilience.Limiter // sync-request admission budget
	sseTimeout time.Duration

	tracer *obs.Tracer
	flight *obs.FlightRecorder

	draining atomic.Bool
	baseCtx  context.Context
	baseStop context.CancelFunc
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cacheSize := cfg.CacheSize
	switch {
	case cacheSize == 0:
		cacheSize = 4096
	case cacheSize < 0:
		cacheSize = 0
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	s := &Server{cfg: cfg, workers: workers}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = obs.Discard()
	}
	s.tracer = cfg.Tracer
	if cfg.FlightRecorder >= 0 {
		s.flight = obs.NewFlightRecorder(cfg.FlightRecorder)
	}
	s.cache = newResultCache(cacheSize)
	s.met = newMetrics(workers, s.cache)
	s.pool = newPool(workers, cfg.QueueDepth, s.cache, s.met, s.tracer, s.flight)
	s.jobs = newJobStore(s.pool, s.met)
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/scenario", s.instrument("scenario", s.handleScenario))
	mux.HandleFunc("POST /v1/jobs", s.instrument("jobs.create", s.handleCreateJob))
	mux.HandleFunc("GET /v1/jobs", s.instrument("jobs.list", s.handleListJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs.get", s.handleGetJob))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("jobs.cancel", s.handleCancelJob))
	mux.HandleFunc("POST /v1/jobs/{id}/checkpoint", s.instrument("jobs.checkpoint", s.handleCheckpointJob))
	mux.HandleFunc("POST /v1/jobs/restore", s.instrument("jobs.restore", s.handleRestoreJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents) // SSE, self-instrumented
	mux.HandleFunc("GET /v1/policies", s.instrument("policies", s.handlePolicies))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.prom", s.handleMetricsProm)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/trace", s.handleTraceDump)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightRecorder)
	mux.HandleFunc("GET /debug/flightrecorder.trace", s.handleFlightTrace)
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux

	// Admission budget: everything admitted fits in the pool (running
	// or queued), so admitted synchronous requests never stack up
	// behind a queue that cannot drain.
	admitCap := cfg.AdmitLimit
	if admitCap <= 0 {
		admitCap = workers + s.pool.Depth()
	}
	s.admit = resilience.NewLimiter(admitCap)
	s.met.reg.GaugeFunc("dvsd_admitted", "currently admitted synchronous requests",
		func() float64 { return float64(s.admit.InUse()) })
	s.met.reg.GaugeFunc("dvsd_admit_capacity", "admission budget for synchronous requests",
		func() float64 { return float64(s.admit.Capacity()) })

	s.sseTimeout = cfg.SSEWriteTimeout
	if s.sseTimeout <= 0 {
		s.sseTimeout = 5 * time.Second
	}

	// Middleware chain, outermost first: panic recovery (a handler
	// bug costs one 500, not the process), then fault injection when
	// configured. Ops endpoints are exempt from chaos so probes and
	// scrapes stay truthful while everything else misbehaves.
	s.handler = http.Handler(s.mux)
	if cfg.Chaos != nil {
		cc := *cfg.Chaos
		if cc.Exempt == nil {
			cc.Exempt = []string{"/healthz", "/readyz", "/metrics", "/debug/pprof/"}
		}
		if cc.OnInject == nil {
			cc.OnInject = func(f resilience.Fault) { s.met.chaosInjected.With(string(f)).Inc() }
		}
		chaos, err := resilience.NewChaos(cc)
		if err != nil {
			panic(fmt.Sprintf("server: invalid chaos config: %v", err))
		}
		s.handler = chaos.Middleware(s.handler)
	}
	s.handler = resilience.Recover(s.handler, func(v any) {
		s.met.panics.Inc()
		s.log.Error("handler panic recovered", "panic", fmt.Sprint(v))
	})
	if cfg.CheckpointDir != "" && cfg.CheckpointInterval > 0 {
		go s.autoCheckpointLoop()
	}
	return s
}

// Handler returns the HTTP entry point (the mux behind the recovery
// and chaos middleware).
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.workers }

// Shutdown drains the daemon: new work is rejected immediately, and
// running jobs and queued runs get until ctx's deadline to finish.
// What remains afterwards depends on CheckpointDir: with one set, the
// stragglers are checkpointed mid-simulation and their documents land
// in the directory for the next process to recover; without, they are
// cancelled. The caller is responsible for closing the HTTP listener
// first (http.Server's own Shutdown), so no new requests arrive
// mid-drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.jobs.WaitIdle(ctx)
	if err != nil {
		// Deadline hit: settle the stragglers quickly but cleanly.
		hard, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if s.cfg.CheckpointDir != "" {
			// Checkpoint before baseStop: cancelling the job contexts
			// first would abandon the very runs being snapshotted.
			for _, doc := range s.jobs.CheckpointAll(hard) {
				if werr := writeCheckpointFile(s.cfg.CheckpointDir, doc); werr != nil {
					s.log.Warn("drain checkpoint failed", "job", doc.JobID, "err", werr)
					continue
				}
				s.met.checkpoints.Inc()
				s.log.Info("drain checkpoint written",
					"job", doc.JobID, "snapshots", len(doc.Snapshots), "outcomes", len(doc.Outcomes))
			}
		}
		s.jobs.CancelAll(hard)
		s.baseStop()
		s.pool.Drain(hard)
		s.pruneCheckpointFiles()
		return err
	}
	s.baseStop()
	err = s.pool.Drain(ctx)
	s.pruneCheckpointFiles()
	return err
}

// --- plumbing ---

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap keeps http.ResponseController upgrades (flush, write
// deadlines) working through the wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// requestDeadline resolves the effective deadline of one request:
// the tighter of the server-wide RequestTimeout and the client's
// X-Request-Deadline header (a Go duration, e.g. "750ms"). 0 means
// unbounded.
func (s *Server) requestDeadline(r *http.Request) (time.Duration, error) {
	d := s.cfg.RequestTimeout
	if h := r.Header.Get("X-Request-Deadline"); h != "" {
		cd, err := time.ParseDuration(h)
		if err != nil || cd <= 0 {
			return 0, fmt.Errorf("server: invalid X-Request-Deadline %q (want a positive Go duration)", h)
		}
		if d == 0 || cd < d {
			d = cd
		}
	}
	return d, nil
}

// instrument wraps a handler with request counting, latency
// recording, per-request deadline enforcement, and request-ID access
// logging. A valid inbound X-Request-ID (a coordinator hop or a
// client-supplied ID) is adopted so fleet logs correlate; otherwise a
// fresh ID is minted. Either way the ID is returned in X-Request-ID.
// An inbound traceparent header is continued: the handler runs inside
// a server span (when tracing is on) and the request context carries
// the span context for the simulation pool and outbound calls.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if !obs.ValidRequestID(id) {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		deadline, err := s.requestDeadline(r)
		if err != nil {
			s.met.request(label, false)
			writeError(sw, http.StatusBadRequest, "%v", err)
			return
		}
		parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		span := s.tracer.StartSpan(parent, "dvsd."+label) // nil-safe: nil span when tracing is off
		sc := span.Context()
		if !sc.Valid() {
			sc = parent // propagate the inbound context even with recording off
		}
		ctx := obs.ContextWithRequestID(r.Context(), id)
		if sc.Valid() {
			ctx = obs.ContextWithSpanContext(ctx, sc)
		}
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		r = r.WithContext(ctx)
		start := time.Now()
		h(sw, r)
		dur := time.Since(start)
		if deadline > 0 && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.met.reqTimeouts.Inc()
		}
		s.met.request(label, sw.code < 400)
		s.met.httpDone(label, dur)
		span.SetAttr("endpoint", label)
		span.SetAttr("status", strconv.Itoa(sw.code))
		span.SetAttr("request_id", id)
		span.End()
		attrs := []slog.Attr{
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", label),
			slog.Int("status", sw.code),
			slog.Duration("dur", dur),
		}
		if sc.Valid() {
			attrs = append(attrs, slog.String("trace", sc.TraceID.String()))
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON request body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "invalid request body: trailing data")
		return false
	}
	io.Copy(io.Discard, body)
	return true
}

// drainRetryAfter is the Retry-After hint (seconds) on draining 503s:
// long enough for a load balancer to fail over, short enough that a
// client retrying the same address after a rolling restart succeeds.
const drainRetryAfter = "5"

// shedRetryAfter is the Retry-After hint (seconds) on shed (429) and
// deadline-exceeded (503) responses: overload is expected to clear on
// the scale of in-flight run latency, not process lifetime.
const shedRetryAfter = "1"

func (s *Server) rejectIfDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", drainRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return true
	}
	return false
}

// --- handlers ---

// handleSimulate answers POST /v1/simulate: one run, synchronously.
// Fresh simulations pass admission control first; an overloaded
// daemon sheds them with 429 + Retry-After while continuing to serve
// cache hits, so degradation is graceful rather than a goroutine
// pile-up.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	var req SimRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if res, ok := s.pool.Lookup(&req); ok {
		writeJSON(w, http.StatusOK, res)
		return
	}
	admitStart := time.Now()
	err := s.admit.TryAcquire()
	if s.tracer != nil {
		if sc, ok := obs.SpanContextFromContext(r.Context()); ok {
			s.tracer.Emit(sc, "dvsd.admit", admitStart, time.Since(admitStart),
				map[string]string{"ok": strconv.FormatBool(err == nil)})
		}
	}
	if err != nil {
		s.met.shed.Inc()
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	defer s.admit.Release()
	res, err := s.pool.Do(r.Context(), &req)
	switch {
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", drainRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		// The per-request deadline (server -request-timeout or client
		// X-Request-Deadline) expired before a worker finished the
		// run: the work is abandoned to the cache and the client is
		// told to come back.
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "server: request deadline exceeded")
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusRequestTimeout, "%v", err)
	case err != nil:
		// The request validated but the run failed (e.g. a strict
		// deadline miss): the fault is in the requested scenario.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// handleCreateJob answers POST /v1/jobs: submit a batch, get an ID.
func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	runs := req.Runs
	if req.Sweep != nil {
		expanded, err := req.Sweep.Expand()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		runs = append(runs, expanded...)
	}
	if len(runs) == 0 {
		writeError(w, http.StatusBadRequest, "server: job has no runs")
		return
	}
	if len(runs) > MaxBatchRuns {
		writeError(w, http.StatusBadRequest, "server: job has %d runs, limit %d", len(runs), MaxBatchRuns)
		return
	}
	for i := range runs {
		if err := runs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "run %d: %v", i, err)
			return
		}
	}
	j := s.jobs.Create(s.baseCtx, req.Name, runs)
	writeJSON(w, http.StatusAccepted, j.info(false))
}

// handleListJobs answers GET /v1/jobs.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

// handleGetJob answers GET /v1/jobs/{id}; ?results=1 includes per-run
// outcomes.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "server: no such job %q", r.PathValue("id"))
		return
	}
	withResults := r.URL.Query().Get("results") != ""
	writeJSON(w, http.StatusOK, j.info(withResults))
}

// handleCancelJob answers DELETE /v1/jobs/{id}.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	if !s.jobs.Cancel(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "server: no such job %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJobEvents answers GET /v1/jobs/{id}/events with an SSE stream
// of progress events, ending with an "end" event when the job reaches
// a terminal state. Every write is armed with the configured write
// deadline: a consumer that stops reading is dropped (and counted in
// dvsd_sse_dropped_total) instead of pinning this goroutine to a dead
// connection.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "server: no such job %q", r.PathValue("id"))
		s.met.request("jobs.events", false)
		return
	}
	s.met.request("jobs.events", true)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, snapshot, unsub := j.subscribe()
	defer unsub()
	sink := &httpSSESink{w: w, rc: http.NewResponseController(w)}
	if err := streamJob(r.Context(), sink, j, snapshot, ch, s.sseTimeout); err != nil {
		s.met.sseDropped.Inc()
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "sse consumer dropped",
			slog.String("job", j.id), slog.String("err", err.Error()))
	}
}

// httpSSESink adapts an http.ResponseWriter (through its
// ResponseController, so write deadlines survive middleware
// wrapping) to the sseSink interface streamJob consumes.
type httpSSESink struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

func (s *httpSSESink) Write(p []byte) (int, error) { return s.w.Write(p) }

func (s *httpSSESink) SetWriteDeadline(t time.Time) error { return s.rc.SetWriteDeadline(t) }

func (s *httpSSESink) Flush() error {
	err := s.rc.Flush()
	if errors.Is(err, http.ErrNotSupported) {
		// A buffering transport cannot stream, but the events still
		// arrive when the response completes; not a dropped consumer.
		return nil
	}
	return err
}

// handlePolicies answers GET /v1/policies with the registry names.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"policies": policies.Names(),
		"wrappers": []string{"crit", "dual", "guard"},
	})
}

// handleMetrics answers GET /metrics with a JSON snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.met.snapshot(s.workers, s.cache))
}

// handleMetricsProm answers GET /metrics.prom with the Prometheus
// text exposition of the registry.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	s.met.writeProm(w)
}

// handleTraceDump answers GET /debug/trace with this daemon's span
// ring as JSON; 404 when tracing is disabled (no -trace-buffer).
func (s *Server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "server: tracing disabled (start dvsd with -trace-buffer)")
		return
	}
	writeJSON(w, http.StatusOK, s.tracer.Dump())
}

// handleFlightRecorder answers GET /debug/flightrecorder with the
// decision flight recorder snapshot; 404 when disabled (-flight -1).
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "server: flight recorder disabled (-flight -1)")
		return
	}
	writeJSON(w, http.StatusOK, s.flight.Snapshot())
}

// handleFlightTrace answers GET /debug/flightrecorder.trace with the
// retained decisions rendered in Chrome Trace Event Format (the
// decision instants + flow chain, loadable in Perfetto).
func (s *Server) handleFlightTrace(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		writeError(w, http.StatusNotFound, "server: flight recorder disabled (-flight -1)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	trace.NewRecorder().ChromeTraceFlight(w, nil, s.flight.Records())
}

// handleHealthz answers GET /healthz (liveness: the process serves).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", drainRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz answers GET /readyz (readiness: this instance should
// receive new traffic). Not ready while draining or while the
// admission budget is at its high-water mark (90% spent) — a load
// balancer watching /readyz steers new requests away before they
// would be shed.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", drainRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	inUse, capacity := s.admit.InUse(), s.admit.Capacity()
	if highWater := (capacity*9 + 9) / 10; inUse >= highWater {
		w.Header().Set("Retry-After", shedRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "saturated", "admitted": inUse, "capacity": capacity,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
