package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"dvsslack/internal/obs"
	"dvsslack/internal/policies"
)

// Config tunes the daemon.
type Config struct {
	// Workers is the simulation worker-pool size; <= 0 selects
	// runtime.NumCPU().
	Workers int
	// QueueDepth bounds the pending-run queue; <= 0 selects
	// Workers×64.
	QueueDepth int
	// CacheSize is the result-cache capacity in entries; <= 0
	// selects 4096. Set to -1 to disable caching.
	CacheSize int
	// MaxBodyBytes bounds request bodies; <= 0 selects 32 MiB.
	MaxBodyBytes int64
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/ (cmd/dvsd -pprof). Off by default: profiling
	// endpoints expose internals and cost CPU when hit.
	EnablePprof bool
	// Logger receives structured request and lifecycle logs; nil
	// discards them.
	Logger *slog.Logger
}

// Server is the dvsd control plane: an http.Handler plus the worker
// pool, job store, result cache, and metrics behind it.
type Server struct {
	cfg     Config
	workers int
	pool    *pool
	jobs    *jobStore
	cache   *resultCache
	met     *metrics
	log     *slog.Logger
	mux     *http.ServeMux

	draining atomic.Bool
	baseCtx  context.Context
	baseStop context.CancelFunc
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	cacheSize := cfg.CacheSize
	switch {
	case cacheSize == 0:
		cacheSize = 4096
	case cacheSize < 0:
		cacheSize = 0
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	s := &Server{cfg: cfg, workers: workers}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = obs.Discard()
	}
	s.cache = newResultCache(cacheSize)
	s.met = newMetrics(workers, s.cache)
	s.pool = newPool(workers, cfg.QueueDepth, s.cache, s.met)
	s.jobs = newJobStore(s.pool, s.met)
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	mux.HandleFunc("POST /v1/jobs", s.instrument("jobs.create", s.handleCreateJob))
	mux.HandleFunc("GET /v1/jobs", s.instrument("jobs.list", s.handleListJobs))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("jobs.get", s.handleGetJob))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("jobs.cancel", s.handleCancelJob))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents) // SSE, self-instrumented
	mux.HandleFunc("GET /v1/policies", s.instrument("policies", s.handlePolicies))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics.prom", s.handleMetricsProm)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// Handler returns the HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.workers }

// Shutdown drains the daemon: new work is rejected immediately,
// running jobs and queued runs get until ctx's deadline to finish,
// and whatever remains afterwards is cancelled. The caller is
// responsible for closing the HTTP listener first (http.Server's own
// Shutdown), so no new requests arrive mid-drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.jobs.WaitIdle(ctx)
	if err != nil {
		// Deadline hit: abort the stragglers quickly but cleanly.
		hard, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.jobs.CancelAll(hard)
		s.baseStop()
		s.pool.Drain(hard)
		return err
	}
	s.baseStop()
	return s.pool.Drain(ctx)
}

// --- plumbing ---

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request counting, latency
// recording, and request-ID access logging. The ID is returned in
// X-Request-ID so client reports and daemon logs correlate.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := obs.NewRequestID()
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		dur := time.Since(start)
		s.met.request(label, sw.code < 400)
		s.met.httpDone(label, dur)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("endpoint", label),
			slog.Int("status", sw.code),
			slog.Duration("dur", dur))
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON request body into v.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "invalid request body: trailing data")
		return false
	}
	io.Copy(io.Discard, body)
	return true
}

func (s *Server) rejectIfDraining(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "%v", ErrDraining)
		return true
	}
	return false
}

// --- handlers ---

// handleSimulate answers POST /v1/simulate: one run, synchronously.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	var req SimRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.pool.Do(r.Context(), &req)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, "%v", err)
	case err != nil:
		// The request validated but the run failed (e.g. a strict
		// deadline miss): the fault is in the requested scenario.
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

// handleCreateJob answers POST /v1/jobs: submit a batch, get an ID.
func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	runs := req.Runs
	if req.Sweep != nil {
		expanded, err := req.Sweep.Expand()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		runs = append(runs, expanded...)
	}
	if len(runs) == 0 {
		writeError(w, http.StatusBadRequest, "server: job has no runs")
		return
	}
	if len(runs) > MaxBatchRuns {
		writeError(w, http.StatusBadRequest, "server: job has %d runs, limit %d", len(runs), MaxBatchRuns)
		return
	}
	for i := range runs {
		if err := runs[i].Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "run %d: %v", i, err)
			return
		}
	}
	j := s.jobs.Create(s.baseCtx, req.Name, runs)
	writeJSON(w, http.StatusAccepted, j.info(false))
}

// handleListJobs answers GET /v1/jobs.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

// handleGetJob answers GET /v1/jobs/{id}; ?results=1 includes per-run
// outcomes.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "server: no such job %q", r.PathValue("id"))
		return
	}
	withResults := r.URL.Query().Get("results") != ""
	writeJSON(w, http.StatusOK, j.info(withResults))
}

// handleCancelJob answers DELETE /v1/jobs/{id}.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	if !s.jobs.Cancel(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "server: no such job %q", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJobEvents answers GET /v1/jobs/{id}/events with an SSE stream
// of progress events, ending with an "end" event when the job
// reaches a terminal state.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "server: no such job %q", r.PathValue("id"))
		s.met.request("jobs.events", false)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "server: streaming unsupported")
		s.met.request("jobs.events", false)
		return
	}
	s.met.request("jobs.events", true)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, snapshot, unsub := j.subscribe()
	defer unsub()
	writeSSE(w, snapshot)
	flusher.Flush()

	for {
		select {
		case ev := <-ch:
			writeSSE(w, ev)
			flusher.Flush()
			if ev.Type == "end" {
				return
			}
		case <-j.finished:
			// Drain anything buffered, then emit the terminal event
			// (publish is lossy for slow readers; this path is not).
			for {
				select {
				case ev := <-ch:
					if ev.Type == "end" {
						writeSSE(w, ev)
						flusher.Flush()
						return
					}
					writeSSE(w, ev)
				default:
					info := j.info(false)
					writeSSE(w, JobEvent{Type: "end", State: info.State,
						Total: info.Total, Done: info.Done, Failed: info.Failed, Error: info.Error})
					flusher.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, ev JobEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}

// handlePolicies answers GET /v1/policies with the registry names.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"policies": policies.Names(),
		"wrappers": []string{"crit", "dual", "guard"},
	})
}

// handleMetrics answers GET /metrics with a JSON snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.met.snapshot(s.workers, s.cache))
}

// handleMetricsProm answers GET /metrics.prom with the Prometheus
// text exposition of the registry.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.PromContentType)
	s.met.writeProm(w)
}

// handleHealthz answers GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
