// Package server implements dvsd, the simulation daemon: an HTTP/JSON
// control plane over the discrete-event DVS simulator.
//
// The daemon accepts single simulation requests (answered
// synchronously) and batch experiment requests (answered through an
// async job API with SSE progress), executes them on a bounded worker
// pool, memoizes results in an LRU cache keyed by a canonical request
// hash, and exposes operational metrics. Everything is stdlib-only.
//
// See docs/api.md for the wire protocol.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"dvsslack/internal/audit"
	"dvsslack/internal/cpu"
	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/wire"
	"dvsslack/internal/workload"
)

// SimRequest describes one simulation run in wire form. It is the
// unit of work of both the synchronous /v1/simulate endpoint and the
// async batch job API.
type SimRequest struct {
	// TaskSet is the periodic task set (required). The rtm wire
	// format validates on decode, so a decoded request never carries
	// a degenerate task set.
	TaskSet *rtm.TaskSet `json:"task_set"`
	// Policy is a policy spec accepted by internal/policies
	// (required), e.g. "lpshe", "nondvs", "lpshe+dual".
	Policy string `json:"policy"`
	// Processor selects and tunes the CPU model. The zero value is a
	// continuous processor with SMin 0.1.
	Processor ProcessorSpec `json:"processor"`
	// Workload selects the AET generator. The zero value is the
	// worst-case workload.
	Workload WorkloadSpec `json:"workload"`
	// Horizon is the simulation length; zero picks the task set's
	// default horizon (one hyperperiod when computable).
	Horizon float64 `json:"horizon,omitempty"`
	// JitterSeed selects the release-jitter stream for task sets
	// with positive jitter.
	JitterSeed uint64 `json:"jitter_seed,omitempty"`
	// Strict makes the run fail on the first deadline miss.
	Strict bool `json:"strict,omitempty"`
	// Audit attaches the internal/audit oracle to the run: the
	// response's Audited/Violations fields report every invariant
	// breach the auditor detected. Audited runs cost one extra
	// observer callback per scheduling event. Note that Strict aborts
	// on the first miss, which leaves the audit event stream
	// truncated — combine Audit with Strict only when you expect no
	// misses at all.
	Audit bool `json:"audit,omitempty"`
}

// Validate checks the request without running it. It resolves the
// policy spec and builds (then discards) the processor and workload,
// so a nil error means Config will succeed.
func (r *SimRequest) Validate() error {
	if _, err := r.Config(); err != nil {
		return err
	}
	return nil
}

// Config translates the request into a runnable sim.Config. The
// returned config holds freshly constructed policy, processor, and
// workload values, so concurrent runs of the same request never share
// mutable state.
func (r *SimRequest) Config() (sim.Config, error) {
	if r.TaskSet == nil {
		return sim.Config{}, fmt.Errorf("server: task_set is required")
	}
	if err := r.TaskSet.Validate(); err != nil {
		return sim.Config{}, err
	}
	if r.Policy == "" {
		return sim.Config{}, fmt.Errorf("server: policy is required")
	}
	pol, err := policies.New(r.Policy)
	if err != nil {
		return sim.Config{}, err
	}
	proc, err := r.Processor.Build()
	if err != nil {
		return sim.Config{}, err
	}
	gen, err := r.Workload.Build()
	if err != nil {
		return sim.Config{}, err
	}
	if r.Horizon < 0 || math.IsNaN(r.Horizon) || math.IsInf(r.Horizon, 0) {
		return sim.Config{}, fmt.Errorf("server: invalid horizon %v", r.Horizon)
	}
	return sim.Config{
		TaskSet:         r.TaskSet,
		Processor:       proc,
		Policy:          pol,
		Workload:        gen,
		Horizon:         r.Horizon,
		StrictDeadlines: r.Strict,
		JitterSeed:      r.JitterSeed,
	}, nil
}

// ScenarioKey returns the canonical content hash of a request:
// identical simulation inputs — task set, processor, policy,
// workload, horizon, jitter seed, strictness — hash identically
// regardless of JSON field order or whitespace in the original
// request body. encoding/json marshals struct fields in declaration
// order, so the serialization is canonical by construction.
//
// The key is shared infrastructure: the daemon's result cache indexes
// by it (CacheKey) and the dvsfleet coordinator consistent-hashes it
// onto workers, so routing and caching can never disagree — the
// worker a scenario routes to is exactly the worker whose cache holds
// its result. The hash is pinned by a golden test
// (scenariokey_test.go): changing the canonical form invalidates
// every deployed cache AND reshuffles fleet routing, so it must be a
// deliberate, versioned decision, never an accident.
func ScenarioKey(r *SimRequest) (string, error) {
	canon := struct {
		TaskSet    *rtm.TaskSet
		Policy     string
		Processor  ProcessorSpec
		Workload   WorkloadSpec
		Horizon    float64
		JitterSeed uint64
		Strict     bool
		Audit      bool
	}{r.TaskSet, policies.SpecOf(policyDisplayName(r.Policy)), r.Processor,
		r.Workload, r.Horizon, r.JitterSeed, r.Strict, r.Audit}
	if canon.Policy == "" {
		canon.Policy = r.Policy
	}
	b, err := json.Marshal(canon)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CacheKey is the result cache's index: an alias of ScenarioKey kept
// as a method for the cache and pool call sites.
func (r *SimRequest) CacheKey() (string, error) { return ScenarioKey(r) }

// RequestFromConfig inverts Config for configurations assembled from
// the shipped building blocks (registered policies, cubic/alpha/table
// processors, shipped workload generators). It is how cmd/dvsexp
// -addr converts the experiment harness's in-memory configurations
// into daemon requests; configurations with no wire form — custom
// policies, observers, fixed-priority overrides — return an error and
// the caller falls back to in-process execution.
func RequestFromConfig(cfg sim.Config) (SimRequest, error) {
	if cfg.Observer != nil {
		return SimRequest{}, fmt.Errorf("server: config with an Observer has no wire form")
	}
	if len(cfg.FixedPriorities) != 0 {
		return SimRequest{}, fmt.Errorf("server: fixed-priority config has no wire form")
	}
	if cfg.Policy == nil {
		return SimRequest{}, fmt.Errorf("server: config has no policy")
	}
	spec := policies.SpecOf(cfg.Policy.Name())
	if spec == "" {
		return SimRequest{}, fmt.Errorf("server: policy %q has no wire form", cfg.Policy.Name())
	}
	if cfg.Processor == nil {
		return SimRequest{}, fmt.Errorf("server: config has no processor")
	}
	proc, err := SpecFromProcessor(cfg.Processor)
	if err != nil {
		return SimRequest{}, err
	}
	gen, err := SpecFromGenerator(cfg.Workload)
	if err != nil {
		return SimRequest{}, err
	}
	return SimRequest{
		TaskSet:    cfg.TaskSet,
		Policy:     spec,
		Processor:  proc,
		Workload:   gen,
		Horizon:    cfg.Horizon,
		JitterSeed: cfg.JitterSeed,
		Strict:     cfg.StrictDeadlines,
	}, nil
}

// policyDisplayName resolves a spec to the display name of the policy
// it constructs (empty when the spec is unknown), collapsing aliases
// like "greedy" and "lpshe-greedy" onto one cache key.
func policyDisplayName(spec string) string {
	p, err := policies.New(spec)
	if err != nil {
		return ""
	}
	return p.Name()
}

// ProcessorSpec is the wire form of a cpu.Processor. It is an alias
// of wire.ProcessorSpec — the type moved to internal/wire so that
// packages the server builds on (notably internal/scenario, executed
// behind /v1/scenario) can share it without an import cycle. The
// JSON shape, and therefore the canonical ScenarioKey hash, is
// unchanged.
type ProcessorSpec = wire.ProcessorSpec

// SpecFromProcessor inverts ProcessorSpec.Build for the processor
// values the library constructs (cubic, alpha, and table power
// models). It is what lets the experiment harness ship its in-memory
// processor configurations to a remote daemon.
func SpecFromProcessor(p *cpu.Processor) (ProcessorSpec, error) {
	return wire.SpecFromProcessor(p)
}

// WorkloadSpec is the wire form of a workload.Generator (an alias of
// wire.WorkloadSpec; see ProcessorSpec).
type WorkloadSpec = wire.WorkloadSpec

// SpecFromGenerator inverts WorkloadSpec.Build for the shipped
// generator types.
func SpecFromGenerator(g workload.Generator) (WorkloadSpec, error) {
	return wire.SpecFromGenerator(g)
}

// SimResult is the wire form of a sim.Result, plus serving metadata.
// It is also the schema cmd/dvssim -json emits, so CLI output and API
// responses are interchangeable.
type SimResult struct {
	Policy string `json:"policy"`

	Time         float64 `json:"time"`
	Energy       float64 `json:"energy"`
	BusyEnergy   float64 `json:"busy_energy"`
	IdleEnergy   float64 `json:"idle_energy"`
	SwitchEnergy float64 `json:"switch_energy"`

	JobsReleased   int `json:"jobs_released"`
	JobsCompleted  int `json:"jobs_completed"`
	DeadlineMisses int `json:"deadline_misses"`
	SpeedSwitches  int `json:"speed_switches"`
	Preemptions    int `json:"preemptions"`
	Decisions      int `json:"decisions"`

	IdleTime  float64 `json:"idle_time"`
	Sleeps    int     `json:"sleeps,omitempty"`
	SleepTime float64 `json:"sleep_time,omitempty"`
	WorkDone  float64 `json:"work_done"`

	PolicyCounters map[string]float64 `json:"policy_counters,omitempty"`

	// Audited reports the run executed under the internal/audit
	// oracle (SimRequest.Audit); Violations then lists every
	// invariant breach in detection order, and AuditTruncated
	// signals the violation cap was hit. An audited result with no
	// violations is independently verified, not merely self-reported.
	Audited        bool              `json:"audited,omitempty"`
	Violations     []audit.Violation `json:"violations,omitempty"`
	AuditTruncated bool              `json:"audit_truncated,omitempty"`

	// Cached reports whether the result was served from the result
	// cache instead of a fresh simulation.
	Cached bool `json:"cached,omitempty"`
	// WallNanos is the wall-clock duration of the simulation that
	// produced this result (zero for cache hits).
	WallNanos int64 `json:"wall_ns,omitempty"`
}

// ResultFromSim converts an engine result to wire form.
func ResultFromSim(r sim.Result) SimResult {
	return SimResult{
		Policy:         r.Policy,
		Time:           r.Time,
		Energy:         r.Energy,
		BusyEnergy:     r.BusyEnergy,
		IdleEnergy:     r.IdleEnergy,
		SwitchEnergy:   r.SwitchEnergy,
		JobsReleased:   r.JobsReleased,
		JobsCompleted:  r.JobsCompleted,
		DeadlineMisses: r.DeadlineMisses,
		SpeedSwitches:  r.SpeedSwitches,
		Preemptions:    r.Preemptions,
		Decisions:      r.Decisions,
		IdleTime:       r.IdleTime,
		Sleeps:         r.Sleeps,
		SleepTime:      r.SleepTime,
		WorkDone:       r.WorkDone,
		PolicyCounters: r.PolicyCounters,
	}
}

// Sim converts back to the engine result type (for callers like the
// remote experiment harness that feed daemon results into local
// aggregation). SpeedTimeIntegral, an internal consistency shadow of
// WorkDone, is restored from WorkDone.
func (r SimResult) Sim() sim.Result {
	return sim.Result{
		Policy:            r.Policy,
		Time:              r.Time,
		Energy:            r.Energy,
		BusyEnergy:        r.BusyEnergy,
		IdleEnergy:        r.IdleEnergy,
		SwitchEnergy:      r.SwitchEnergy,
		JobsReleased:      r.JobsReleased,
		JobsCompleted:     r.JobsCompleted,
		DeadlineMisses:    r.DeadlineMisses,
		SpeedSwitches:     r.SpeedSwitches,
		Preemptions:       r.Preemptions,
		Decisions:         r.Decisions,
		IdleTime:          r.IdleTime,
		Sleeps:            r.Sleeps,
		SleepTime:         r.SleepTime,
		WorkDone:          r.WorkDone,
		SpeedTimeIntegral: r.WorkDone,
		PolicyCounters:    r.PolicyCounters,
	}
}

// BatchRequest submits a set of runs as one async job. Runs are
// executed in submission order across the worker pool; per-run
// results preserve submission order. A Sweep, when present, is
// expanded server-side and appended after Runs.
type BatchRequest struct {
	// Name labels the job in listings and logs.
	Name string `json:"name,omitempty"`
	// Runs is the explicit run list.
	Runs []SimRequest `json:"runs,omitempty"`
	// Sweep, when non-nil, generates a (utilization × policy × seed)
	// grid of runs over synthetic task sets.
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// SweepSpec is a compact server-side experiment description: for each
// utilization in U, each policy, and each of Seeds replications, a
// synthetic task set of N tasks is generated (rtm.Generate with the
// replication seed) and simulated.
type SweepSpec struct {
	N        int       `json:"n"`
	U        []float64 `json:"u"`
	Policies []string  `json:"policies"`
	Seeds    int       `json:"seeds"`
	Seed0    uint64    `json:"seed0,omitempty"`
	// Periods optionally restricts the generator's period pool
	// (rtm.DefaultPeriods when empty), e.g. to bound hyperperiods.
	Periods   []float64     `json:"periods,omitempty"`
	Processor ProcessorSpec `json:"processor,omitempty"`
	Workload  WorkloadSpec  `json:"workload,omitempty"`
	// Horizon truncates each run (zero = one hyperperiod). Beware
	// that truncating a look-ahead policy's job stream mid-
	// hyperperiod can cost deadlines that the full stream would keep
	// (the policy defers work expecting releases that never come).
	Horizon float64 `json:"horizon,omitempty"`
}

// Expand materializes the sweep grid into concrete runs. The
// workload spec's seed is replaced per replication so every policy
// sees the identical trace within a replication and different traces
// across replications — the measurement discipline of the experiment
// harness.
func (s *SweepSpec) Expand() ([]SimRequest, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("server: sweep n must be positive, got %d", s.N)
	}
	if len(s.U) == 0 || len(s.Policies) == 0 {
		return nil, fmt.Errorf("server: sweep needs at least one utilization and one policy")
	}
	seeds := s.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	if total := len(s.U) * len(s.Policies) * seeds; total > MaxBatchRuns {
		return nil, fmt.Errorf("server: sweep expands to %d runs, limit %d", total, MaxBatchRuns)
	}
	var runs []SimRequest
	for _, u := range s.U {
		for rep := 0; rep < seeds; rep++ {
			seed := s.Seed0 + uint64(rep)*0x9e37 + 17
			gcfg := rtm.DefaultGenConfig(s.N, u, seed)
			gcfg.Periods = s.Periods
			ts, err := rtm.Generate(gcfg)
			if err != nil {
				return nil, err
			}
			wl := s.Workload
			if wl.Kind != "" && wl.Kind != "worst-case" && wl.Kind != "constant" {
				wl.Seed = seed
			}
			for _, pol := range s.Policies {
				runs = append(runs, SimRequest{
					TaskSet:   ts,
					Policy:    pol,
					Processor: s.Processor,
					Workload:  wl,
					Horizon:   s.Horizon,
				})
			}
		}
	}
	return runs, nil
}

// MaxBatchRuns bounds the number of runs a single job may hold.
const MaxBatchRuns = 100000

// JobInfo is the wire form of an async job's status.
type JobInfo struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"` // queued | running | done | failed | cancelled | checkpointed
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	// Checkpointed counts runs paused with a mid-flight snapshot
	// (non-zero only for jobs in or headed to the checkpointed state).
	Checkpointed int    `json:"checkpointed,omitempty"`
	Created      string `json:"created"`
	Started      string `json:"started,omitempty"`
	Ended        string `json:"ended,omitempty"`
	// Error carries the first run error for failed jobs.
	Error string `json:"error,omitempty"`
	// Results holds per-run outcomes (submission order) once the job
	// is done; GET /v1/jobs/{id}?results=1 includes them.
	Results []RunOutcome `json:"results,omitempty"`
}

// RunOutcome is one run's terminal state within a job.
type RunOutcome struct {
	Index  int        `json:"index"`
	Result *SimResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// ErrorBody is the JSON error envelope every non-2xx response uses.
type ErrorBody struct {
	Error string `json:"error"`
	// Errors carries the full list when a request fails validation
	// with more than one problem (scenario documents report every
	// error, not just the first). Error still holds a one-line
	// summary so single-error consumers keep working.
	Errors []string `json:"errors,omitempty"`
}
