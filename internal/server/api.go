// Package server implements dvsd, the simulation daemon: an HTTP/JSON
// control plane over the discrete-event DVS simulator.
//
// The daemon accepts single simulation requests (answered
// synchronously) and batch experiment requests (answered through an
// async job API with SSE progress), executes them on a bounded worker
// pool, memoizes results in an LRU cache keyed by a canonical request
// hash, and exposes operational metrics. Everything is stdlib-only.
//
// See docs/api.md for the wire protocol.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"dvsslack/internal/audit"
	"dvsslack/internal/cpu"
	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// SimRequest describes one simulation run in wire form. It is the
// unit of work of both the synchronous /v1/simulate endpoint and the
// async batch job API.
type SimRequest struct {
	// TaskSet is the periodic task set (required). The rtm wire
	// format validates on decode, so a decoded request never carries
	// a degenerate task set.
	TaskSet *rtm.TaskSet `json:"task_set"`
	// Policy is a policy spec accepted by internal/policies
	// (required), e.g. "lpshe", "nondvs", "lpshe+dual".
	Policy string `json:"policy"`
	// Processor selects and tunes the CPU model. The zero value is a
	// continuous processor with SMin 0.1.
	Processor ProcessorSpec `json:"processor"`
	// Workload selects the AET generator. The zero value is the
	// worst-case workload.
	Workload WorkloadSpec `json:"workload"`
	// Horizon is the simulation length; zero picks the task set's
	// default horizon (one hyperperiod when computable).
	Horizon float64 `json:"horizon,omitempty"`
	// JitterSeed selects the release-jitter stream for task sets
	// with positive jitter.
	JitterSeed uint64 `json:"jitter_seed,omitempty"`
	// Strict makes the run fail on the first deadline miss.
	Strict bool `json:"strict,omitempty"`
	// Audit attaches the internal/audit oracle to the run: the
	// response's Audited/Violations fields report every invariant
	// breach the auditor detected. Audited runs cost one extra
	// observer callback per scheduling event. Note that Strict aborts
	// on the first miss, which leaves the audit event stream
	// truncated — combine Audit with Strict only when you expect no
	// misses at all.
	Audit bool `json:"audit,omitempty"`
}

// Validate checks the request without running it. It resolves the
// policy spec and builds (then discards) the processor and workload,
// so a nil error means Config will succeed.
func (r *SimRequest) Validate() error {
	if _, err := r.Config(); err != nil {
		return err
	}
	return nil
}

// Config translates the request into a runnable sim.Config. The
// returned config holds freshly constructed policy, processor, and
// workload values, so concurrent runs of the same request never share
// mutable state.
func (r *SimRequest) Config() (sim.Config, error) {
	if r.TaskSet == nil {
		return sim.Config{}, fmt.Errorf("server: task_set is required")
	}
	if err := r.TaskSet.Validate(); err != nil {
		return sim.Config{}, err
	}
	if r.Policy == "" {
		return sim.Config{}, fmt.Errorf("server: policy is required")
	}
	pol, err := policies.New(r.Policy)
	if err != nil {
		return sim.Config{}, err
	}
	proc, err := r.Processor.Build()
	if err != nil {
		return sim.Config{}, err
	}
	gen, err := r.Workload.Build()
	if err != nil {
		return sim.Config{}, err
	}
	if r.Horizon < 0 || math.IsNaN(r.Horizon) || math.IsInf(r.Horizon, 0) {
		return sim.Config{}, fmt.Errorf("server: invalid horizon %v", r.Horizon)
	}
	return sim.Config{
		TaskSet:         r.TaskSet,
		Processor:       proc,
		Policy:          pol,
		Workload:        gen,
		Horizon:         r.Horizon,
		StrictDeadlines: r.Strict,
		JitterSeed:      r.JitterSeed,
	}, nil
}

// ScenarioKey returns the canonical content hash of a request:
// identical simulation inputs — task set, processor, policy,
// workload, horizon, jitter seed, strictness — hash identically
// regardless of JSON field order or whitespace in the original
// request body. encoding/json marshals struct fields in declaration
// order, so the serialization is canonical by construction.
//
// The key is shared infrastructure: the daemon's result cache indexes
// by it (CacheKey) and the dvsfleet coordinator consistent-hashes it
// onto workers, so routing and caching can never disagree — the
// worker a scenario routes to is exactly the worker whose cache holds
// its result. The hash is pinned by a golden test
// (scenariokey_test.go): changing the canonical form invalidates
// every deployed cache AND reshuffles fleet routing, so it must be a
// deliberate, versioned decision, never an accident.
func ScenarioKey(r *SimRequest) (string, error) {
	canon := struct {
		TaskSet    *rtm.TaskSet
		Policy     string
		Processor  ProcessorSpec
		Workload   WorkloadSpec
		Horizon    float64
		JitterSeed uint64
		Strict     bool
		Audit      bool
	}{r.TaskSet, policies.SpecOf(policyDisplayName(r.Policy)), r.Processor,
		r.Workload, r.Horizon, r.JitterSeed, r.Strict, r.Audit}
	if canon.Policy == "" {
		canon.Policy = r.Policy
	}
	b, err := json.Marshal(canon)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CacheKey is the result cache's index: an alias of ScenarioKey kept
// as a method for the cache and pool call sites.
func (r *SimRequest) CacheKey() (string, error) { return ScenarioKey(r) }

// RequestFromConfig inverts Config for configurations assembled from
// the shipped building blocks (registered policies, cubic/alpha/table
// processors, shipped workload generators). It is how cmd/dvsexp
// -addr converts the experiment harness's in-memory configurations
// into daemon requests; configurations with no wire form — custom
// policies, observers, fixed-priority overrides — return an error and
// the caller falls back to in-process execution.
func RequestFromConfig(cfg sim.Config) (SimRequest, error) {
	if cfg.Observer != nil {
		return SimRequest{}, fmt.Errorf("server: config with an Observer has no wire form")
	}
	if len(cfg.FixedPriorities) != 0 {
		return SimRequest{}, fmt.Errorf("server: fixed-priority config has no wire form")
	}
	if cfg.Policy == nil {
		return SimRequest{}, fmt.Errorf("server: config has no policy")
	}
	spec := policies.SpecOf(cfg.Policy.Name())
	if spec == "" {
		return SimRequest{}, fmt.Errorf("server: policy %q has no wire form", cfg.Policy.Name())
	}
	if cfg.Processor == nil {
		return SimRequest{}, fmt.Errorf("server: config has no processor")
	}
	proc, err := SpecFromProcessor(cfg.Processor)
	if err != nil {
		return SimRequest{}, err
	}
	gen, err := SpecFromGenerator(cfg.Workload)
	if err != nil {
		return SimRequest{}, err
	}
	return SimRequest{
		TaskSet:    cfg.TaskSet,
		Policy:     spec,
		Processor:  proc,
		Workload:   gen,
		Horizon:    cfg.Horizon,
		JitterSeed: cfg.JitterSeed,
		Strict:     cfg.StrictDeadlines,
	}, nil
}

// policyDisplayName resolves a spec to the display name of the policy
// it constructs (empty when the spec is unknown), collapsing aliases
// like "greedy" and "lpshe-greedy" onto one cache key.
func policyDisplayName(spec string) string {
	p, err := policies.New(spec)
	if err != nil {
		return ""
	}
	return p.Name()
}

// ProcessorSpec is the wire form of a cpu.Processor.
//
// Either Preset names one of the cpu.Presets models ("continuous",
// "xscale", "crusoe", "sa1100", "uniform4", "uniform8"), or the spec
// is assembled from Levels/SMin and Model. Overhead and power knobs
// apply on top of either base.
type ProcessorSpec struct {
	Preset string    `json:"preset,omitempty"`
	SMin   float64   `json:"smin,omitempty"`
	Levels []float64 `json:"levels,omitempty"`

	// Model selects the power model: "" or "cubic", "alpha"
	// (AlphaVt/AlphaIdx, defaulting to the standard 0.3/1.5), or
	// "table" (Table required).
	Model    string      `json:"model,omitempty"`
	AlphaVt  float64     `json:"alpha_vt,omitempty"`
	AlphaIdx float64     `json:"alpha_idx,omitempty"`
	Table    []cpu.Level `json:"table,omitempty"`
	// TableName labels a table model in reports ("table" if empty).
	TableName string `json:"table_name,omitempty"`

	// IdlePower overrides the default awake-idle power when non-nil.
	IdlePower         *float64 `json:"idle_power,omitempty"`
	SwitchTime        float64  `json:"switch_time,omitempty"`
	SwitchEnergyCoeff float64  `json:"switch_energy_coeff,omitempty"`
	LeakagePower      float64  `json:"leakage_power,omitempty"`
	SleepEnabled      bool     `json:"sleep_enabled,omitempty"`
	SleepPower        float64  `json:"sleep_power,omitempty"`
	WakeEnergy        float64  `json:"wake_energy,omitempty"`
}

// Build constructs and validates the processor the spec describes.
func (s *ProcessorSpec) Build() (*cpu.Processor, error) {
	var p *cpu.Processor
	switch {
	case s.Preset != "":
		if len(s.Levels) > 0 || s.Model != "" {
			return nil, fmt.Errorf("server: processor preset %q cannot be combined with levels/model", s.Preset)
		}
		p = cpu.Presets()[s.Preset]
		if p == nil {
			return nil, fmt.Errorf("server: unknown processor preset %q", s.Preset)
		}
		if s.SMin != 0 {
			p.SMin = s.SMin
		}
	case len(s.Levels) > 0:
		var err error
		p, err = cpu.WithLevels(s.Levels...)
		if err != nil {
			return nil, err
		}
	default:
		smin := s.SMin
		if smin == 0 {
			smin = 0.1
		}
		p = cpu.Continuous(smin)
	}
	switch s.Model {
	case "", "cubic":
		// keep the base model
	case "alpha":
		m := cpu.DefaultAlphaModel()
		if s.AlphaVt != 0 {
			m.Vt = s.AlphaVt
		}
		if s.AlphaIdx != 0 {
			m.Alpha = s.AlphaIdx
		}
		p.Model = m
	case "table":
		name := s.TableName
		if name == "" {
			name = "table"
		}
		m, err := cpu.NewTableModel(name, s.Table)
		if err != nil {
			return nil, err
		}
		p.Model = m
	default:
		return nil, fmt.Errorf("server: unknown power model %q", s.Model)
	}
	if s.IdlePower != nil {
		p.IdlePower = *s.IdlePower
	}
	p.SwitchTime = s.SwitchTime
	p.SwitchEnergyCoeff = s.SwitchEnergyCoeff
	p.LeakagePower = s.LeakagePower
	p.SleepEnabled = s.SleepEnabled
	p.SleepPower = s.SleepPower
	p.WakeEnergy = s.WakeEnergy
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SpecFromProcessor inverts Build for the processor values the
// library constructs (cubic, alpha, and table power models). It is
// what lets the experiment harness ship its in-memory processor
// configurations to a remote daemon.
func SpecFromProcessor(p *cpu.Processor) (ProcessorSpec, error) {
	s := ProcessorSpec{
		SMin:              p.SMin,
		Levels:            p.Levels(),
		SwitchTime:        p.SwitchTime,
		SwitchEnergyCoeff: p.SwitchEnergyCoeff,
		LeakagePower:      p.LeakagePower,
		SleepEnabled:      p.SleepEnabled,
		SleepPower:        p.SleepPower,
		WakeEnergy:        p.WakeEnergy,
	}
	idle := p.IdlePower
	s.IdlePower = &idle
	switch m := p.Model.(type) {
	case nil, cpu.CubicModel:
		s.Model = "cubic"
	case cpu.AlphaModel:
		s.Model, s.AlphaVt, s.AlphaIdx = "alpha", m.Vt, m.Alpha
	case *cpu.TableModel:
		s.Model, s.Table, s.TableName = "table", m.Levels(), m.Name()
	default:
		return ProcessorSpec{}, fmt.Errorf("server: power model %s has no wire form", p.Model.Name())
	}
	return s, nil
}

// WorkloadSpec is the wire form of a workload.Generator. Kind selects
// the generator; only the fields that generator uses are read.
type WorkloadSpec struct {
	// Kind: "" or "worst-case", "uniform", "constant", "normal",
	// "bimodal", "sinusoidal".
	Kind       string  `json:"kind,omitempty"`
	Lo         float64 `json:"lo,omitempty"`
	Hi         float64 `json:"hi,omitempty"`
	Frac       float64 `json:"frac,omitempty"`
	Mean       float64 `json:"mean,omitempty"`
	StdDev     float64 `json:"std_dev,omitempty"`
	LightFrac  float64 `json:"light_frac,omitempty"`
	HeavyFrac  float64 `json:"heavy_frac,omitempty"`
	PHeavy     float64 `json:"p_heavy,omitempty"`
	Amp        float64 `json:"amp,omitempty"`
	PeriodJobs float64 `json:"period_jobs,omitempty"`
	Jitter     float64 `json:"jitter,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
}

// Build constructs the generator the spec describes.
func (s *WorkloadSpec) Build() (workload.Generator, error) {
	switch s.Kind {
	case "", "worst-case":
		return workload.WorstCase{}, nil
	case "uniform":
		if s.Lo < 0 || s.Hi > 1 || s.Lo > s.Hi {
			return nil, fmt.Errorf("server: uniform workload bounds [%v,%v] out of order or outside [0,1]", s.Lo, s.Hi)
		}
		return workload.Uniform{Lo: s.Lo, Hi: s.Hi, Seed: s.Seed}, nil
	case "constant":
		return workload.Constant{Frac: s.Frac}, nil
	case "normal":
		return workload.Normal{Mean: s.Mean, StdDev: s.StdDev, Seed: s.Seed}, nil
	case "bimodal":
		return workload.Bimodal{LightFrac: s.LightFrac, HeavyFrac: s.HeavyFrac, PHeavy: s.PHeavy, Seed: s.Seed}, nil
	case "sinusoidal":
		return workload.Sinusoidal{Mean: s.Mean, Amp: s.Amp, PeriodJobs: s.PeriodJobs, Jitter: s.Jitter, Seed: s.Seed}, nil
	default:
		return nil, fmt.Errorf("server: unknown workload kind %q", s.Kind)
	}
}

// SpecFromGenerator inverts Build for the shipped generator types.
func SpecFromGenerator(g workload.Generator) (WorkloadSpec, error) {
	switch g := g.(type) {
	case nil, workload.WorstCase:
		return WorkloadSpec{Kind: "worst-case"}, nil
	case workload.Uniform:
		return WorkloadSpec{Kind: "uniform", Lo: g.Lo, Hi: g.Hi, Seed: g.Seed}, nil
	case workload.Constant:
		return WorkloadSpec{Kind: "constant", Frac: g.Frac}, nil
	case workload.Normal:
		return WorkloadSpec{Kind: "normal", Mean: g.Mean, StdDev: g.StdDev, Seed: g.Seed}, nil
	case workload.Bimodal:
		return WorkloadSpec{Kind: "bimodal", LightFrac: g.LightFrac, HeavyFrac: g.HeavyFrac, PHeavy: g.PHeavy, Seed: g.Seed}, nil
	case workload.Sinusoidal:
		return WorkloadSpec{Kind: "sinusoidal", Mean: g.Mean, Amp: g.Amp, PeriodJobs: g.PeriodJobs, Jitter: g.Jitter, Seed: g.Seed}, nil
	default:
		return WorkloadSpec{}, fmt.Errorf("server: workload %s has no wire form", g.Name())
	}
}

// SimResult is the wire form of a sim.Result, plus serving metadata.
// It is also the schema cmd/dvssim -json emits, so CLI output and API
// responses are interchangeable.
type SimResult struct {
	Policy string `json:"policy"`

	Time         float64 `json:"time"`
	Energy       float64 `json:"energy"`
	BusyEnergy   float64 `json:"busy_energy"`
	IdleEnergy   float64 `json:"idle_energy"`
	SwitchEnergy float64 `json:"switch_energy"`

	JobsReleased   int `json:"jobs_released"`
	JobsCompleted  int `json:"jobs_completed"`
	DeadlineMisses int `json:"deadline_misses"`
	SpeedSwitches  int `json:"speed_switches"`
	Preemptions    int `json:"preemptions"`
	Decisions      int `json:"decisions"`

	IdleTime  float64 `json:"idle_time"`
	Sleeps    int     `json:"sleeps,omitempty"`
	SleepTime float64 `json:"sleep_time,omitempty"`
	WorkDone  float64 `json:"work_done"`

	PolicyCounters map[string]float64 `json:"policy_counters,omitempty"`

	// Audited reports the run executed under the internal/audit
	// oracle (SimRequest.Audit); Violations then lists every
	// invariant breach in detection order, and AuditTruncated
	// signals the violation cap was hit. An audited result with no
	// violations is independently verified, not merely self-reported.
	Audited        bool              `json:"audited,omitempty"`
	Violations     []audit.Violation `json:"violations,omitempty"`
	AuditTruncated bool              `json:"audit_truncated,omitempty"`

	// Cached reports whether the result was served from the result
	// cache instead of a fresh simulation.
	Cached bool `json:"cached,omitempty"`
	// WallNanos is the wall-clock duration of the simulation that
	// produced this result (zero for cache hits).
	WallNanos int64 `json:"wall_ns,omitempty"`
}

// ResultFromSim converts an engine result to wire form.
func ResultFromSim(r sim.Result) SimResult {
	return SimResult{
		Policy:         r.Policy,
		Time:           r.Time,
		Energy:         r.Energy,
		BusyEnergy:     r.BusyEnergy,
		IdleEnergy:     r.IdleEnergy,
		SwitchEnergy:   r.SwitchEnergy,
		JobsReleased:   r.JobsReleased,
		JobsCompleted:  r.JobsCompleted,
		DeadlineMisses: r.DeadlineMisses,
		SpeedSwitches:  r.SpeedSwitches,
		Preemptions:    r.Preemptions,
		Decisions:      r.Decisions,
		IdleTime:       r.IdleTime,
		Sleeps:         r.Sleeps,
		SleepTime:      r.SleepTime,
		WorkDone:       r.WorkDone,
		PolicyCounters: r.PolicyCounters,
	}
}

// Sim converts back to the engine result type (for callers like the
// remote experiment harness that feed daemon results into local
// aggregation). SpeedTimeIntegral, an internal consistency shadow of
// WorkDone, is restored from WorkDone.
func (r SimResult) Sim() sim.Result {
	return sim.Result{
		Policy:            r.Policy,
		Time:              r.Time,
		Energy:            r.Energy,
		BusyEnergy:        r.BusyEnergy,
		IdleEnergy:        r.IdleEnergy,
		SwitchEnergy:      r.SwitchEnergy,
		JobsReleased:      r.JobsReleased,
		JobsCompleted:     r.JobsCompleted,
		DeadlineMisses:    r.DeadlineMisses,
		SpeedSwitches:     r.SpeedSwitches,
		Preemptions:       r.Preemptions,
		Decisions:         r.Decisions,
		IdleTime:          r.IdleTime,
		Sleeps:            r.Sleeps,
		SleepTime:         r.SleepTime,
		WorkDone:          r.WorkDone,
		SpeedTimeIntegral: r.WorkDone,
		PolicyCounters:    r.PolicyCounters,
	}
}

// BatchRequest submits a set of runs as one async job. Runs are
// executed in submission order across the worker pool; per-run
// results preserve submission order. A Sweep, when present, is
// expanded server-side and appended after Runs.
type BatchRequest struct {
	// Name labels the job in listings and logs.
	Name string `json:"name,omitempty"`
	// Runs is the explicit run list.
	Runs []SimRequest `json:"runs,omitempty"`
	// Sweep, when non-nil, generates a (utilization × policy × seed)
	// grid of runs over synthetic task sets.
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// SweepSpec is a compact server-side experiment description: for each
// utilization in U, each policy, and each of Seeds replications, a
// synthetic task set of N tasks is generated (rtm.Generate with the
// replication seed) and simulated.
type SweepSpec struct {
	N        int       `json:"n"`
	U        []float64 `json:"u"`
	Policies []string  `json:"policies"`
	Seeds    int       `json:"seeds"`
	Seed0    uint64    `json:"seed0,omitempty"`
	// Periods optionally restricts the generator's period pool
	// (rtm.DefaultPeriods when empty), e.g. to bound hyperperiods.
	Periods   []float64     `json:"periods,omitempty"`
	Processor ProcessorSpec `json:"processor,omitempty"`
	Workload  WorkloadSpec  `json:"workload,omitempty"`
	// Horizon truncates each run (zero = one hyperperiod). Beware
	// that truncating a look-ahead policy's job stream mid-
	// hyperperiod can cost deadlines that the full stream would keep
	// (the policy defers work expecting releases that never come).
	Horizon float64 `json:"horizon,omitempty"`
}

// Expand materializes the sweep grid into concrete runs. The
// workload spec's seed is replaced per replication so every policy
// sees the identical trace within a replication and different traces
// across replications — the measurement discipline of the experiment
// harness.
func (s *SweepSpec) Expand() ([]SimRequest, error) {
	if s.N <= 0 {
		return nil, fmt.Errorf("server: sweep n must be positive, got %d", s.N)
	}
	if len(s.U) == 0 || len(s.Policies) == 0 {
		return nil, fmt.Errorf("server: sweep needs at least one utilization and one policy")
	}
	seeds := s.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	if total := len(s.U) * len(s.Policies) * seeds; total > MaxBatchRuns {
		return nil, fmt.Errorf("server: sweep expands to %d runs, limit %d", total, MaxBatchRuns)
	}
	var runs []SimRequest
	for _, u := range s.U {
		for rep := 0; rep < seeds; rep++ {
			seed := s.Seed0 + uint64(rep)*0x9e37 + 17
			gcfg := rtm.DefaultGenConfig(s.N, u, seed)
			gcfg.Periods = s.Periods
			ts, err := rtm.Generate(gcfg)
			if err != nil {
				return nil, err
			}
			wl := s.Workload
			if wl.Kind != "" && wl.Kind != "worst-case" && wl.Kind != "constant" {
				wl.Seed = seed
			}
			for _, pol := range s.Policies {
				runs = append(runs, SimRequest{
					TaskSet:   ts,
					Policy:    pol,
					Processor: s.Processor,
					Workload:  wl,
					Horizon:   s.Horizon,
				})
			}
		}
	}
	return runs, nil
}

// MaxBatchRuns bounds the number of runs a single job may hold.
const MaxBatchRuns = 100000

// JobInfo is the wire form of an async job's status.
type JobInfo struct {
	ID      string `json:"id"`
	Name    string `json:"name,omitempty"`
	State   string `json:"state"` // queued | running | done | failed | cancelled
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	Failed  int    `json:"failed"`
	Created string `json:"created"`
	Started string `json:"started,omitempty"`
	Ended   string `json:"ended,omitempty"`
	// Error carries the first run error for failed jobs.
	Error string `json:"error,omitempty"`
	// Results holds per-run outcomes (submission order) once the job
	// is done; GET /v1/jobs/{id}?results=1 includes them.
	Results []RunOutcome `json:"results,omitempty"`
}

// RunOutcome is one run's terminal state within a job.
type RunOutcome struct {
	Index  int        `json:"index"`
	Result *SimResult `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// ErrorBody is the JSON error envelope every non-2xx response uses.
type ErrorBody struct {
	Error string `json:"error"`
}
