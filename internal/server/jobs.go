package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvsslack/internal/par"
)

// Job states.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobEvent is one SSE progress record.
type JobEvent struct {
	Type   string `json:"type"` // "progress" or "end"
	State  string `json:"state"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	// Index/Policy/Energy describe the run that just finished
	// (progress events only).
	Index  int     `json:"index,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Energy float64 `json:"energy,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// job is one async batch.
type job struct {
	id      string
	name    string
	created time.Time

	cancel context.CancelFunc
	// onLost observes every event dropped on a full subscriber
	// buffer (the store wires it to the sse_lagged counter).
	onLost func()

	mu       sync.Mutex
	state    string
	started  time.Time
	ended    time.Time
	runs     []SimRequest
	outcomes []RunOutcome
	done     int
	failed   int
	firstErr string
	subs     map[chan JobEvent]struct{}
	finished chan struct{}
}

func (j *job) info(withResults bool) JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:      j.id,
		Name:    j.name,
		State:   j.state,
		Total:   len(j.runs),
		Done:    j.done,
		Failed:  j.failed,
		Created: j.created.UTC().Format(time.RFC3339Nano),
		Error:   j.firstErr,
	}
	if !j.started.IsZero() {
		info.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.ended.IsZero() {
		info.Ended = j.ended.UTC().Format(time.RFC3339Nano)
	}
	if withResults {
		info.Results = append([]RunOutcome(nil), j.outcomes...)
	}
	return info
}

// subscribe registers an SSE listener and returns its channel plus an
// unsubscribe function. The returned snapshot event reflects the
// job's state at subscription time, so listeners can render progress
// immediately.
func (j *job) subscribe() (ch chan JobEvent, snapshot JobEvent, unsub func()) {
	ch = make(chan JobEvent, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	snapshot = JobEvent{Type: "progress", State: j.state, Total: len(j.runs), Done: j.done, Failed: j.failed}
	j.mu.Unlock()
	return ch, snapshot, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// publish fans an event out to subscribers. The send is never
// blocking: a slow subscriber's full buffer drops the event (counted
// through onLost) instead of stalling the broadcaster — the terminal
// event is signalled by finished, which nobody can miss.
func (j *job) publish(ev JobEvent) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			if j.onLost != nil {
				j.onLost()
			}
		}
	}
}

// recordRun stores one run outcome and notifies subscribers.
func (j *job) recordRun(index int, out outcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ro := RunOutcome{Index: index}
	if out.err != nil {
		ro.Error = out.err.Error()
		j.failed++
		if j.firstErr == "" {
			j.firstErr = out.err.Error()
		}
	} else {
		res := out.res
		ro.Result = &res
	}
	j.outcomes = append(j.outcomes, ro)
	j.done++
	ev := JobEvent{
		Type: "progress", State: j.state,
		Total: len(j.runs), Done: j.done, Failed: j.failed,
		Index: index,
	}
	if ro.Result != nil {
		ev.Policy, ev.Energy = ro.Result.Policy, ro.Result.Energy
	} else {
		ev.Error = ro.Error
	}
	j.publish(ev)
}

// finish moves the job to a terminal state.
func (j *job) finish(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCancelled {
		return
	}
	j.state = state
	j.ended = time.Now()
	sort.Slice(j.outcomes, func(a, b int) bool { return j.outcomes[a].Index < j.outcomes[b].Index })
	j.publish(JobEvent{Type: "end", State: state, Total: len(j.runs), Done: j.done, Failed: j.failed, Error: j.firstErr})
	close(j.finished)
}

// jobStore owns every job and their runner goroutines.
type jobStore struct {
	pool *pool
	met  *metrics

	nextID atomic.Uint64

	mu   sync.Mutex
	jobs map[string]*job
	// order remembers creation order for listings.
	order []string
}

func newJobStore(pool *pool, met *metrics) *jobStore {
	return &jobStore{pool: pool, met: met, jobs: map[string]*job{}}
}

// Create registers a job for the given runs and starts executing it.
func (s *jobStore) Create(parent context.Context, name string, runs []SimRequest) *job {
	ctx, cancel := context.WithCancel(parent)
	j := &job{
		id:       fmt.Sprintf("j%d", s.nextID.Add(1)),
		name:     name,
		created:  time.Now(),
		cancel:   cancel,
		onLost:   s.met.sseLagged.Inc,
		state:    JobQueued,
		runs:     runs,
		subs:     map[chan JobEvent]struct{}{},
		finished: make(chan struct{}),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.met.jobCreated()
	go s.run(ctx, j)
	return j
}

// run executes a job's runs across the shared pool, keeping at most
// 2× the worker count outstanding so one huge job cannot monopolize
// the queue against concurrent jobs and single-run requests.
func (s *jobStore) run(ctx context.Context, j *job) {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	// Run failures are recorded per outcome and never surfaced as a
	// ForEach error, so cancellation is the only thing that stops the
	// sweep early.
	_ = par.ForEach(2*s.pool.workers, len(j.runs), func(i int) error {
		if ctx.Err() != nil {
			return nil // cancelled: stop submitting further runs
		}
		res, err := s.pool.Do(ctx, &j.runs[i])
		if ctx.Err() != nil && err != nil {
			return nil // cancelled, not a run failure
		}
		j.recordRun(i, outcome{res: res, err: err})
		return nil
	})

	state := JobDone
	switch {
	case ctx.Err() != nil:
		state = JobCancelled
	case func() bool { j.mu.Lock(); defer j.mu.Unlock(); return j.failed > 0 }():
		state = JobFailed
	}
	j.finish(state)
	s.met.jobFinished()
}

// Get returns a job by ID.
func (s *jobStore) Get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns job summaries in creation order.
func (s *jobStore) List() []JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Get(id); ok {
			out = append(out, j.info(false))
		}
	}
	return out
}

// Cancel aborts a job's remaining runs.
func (s *jobStore) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// WaitIdle blocks until every current job has reached a terminal
// state or ctx expires (the graceful half of shutdown; handlers must
// already be rejecting new jobs).
func (s *jobStore) WaitIdle(ctx context.Context) error {
	s.mu.Lock()
	var pending []*job
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		select {
		case <-j.finished:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// --- SSE streaming ---

// sseSink is the response side of one SSE subscriber: a writer with
// per-write deadlines and flushing. The HTTP handler backs it with
// http.ResponseController; tests back it with fakes to exercise the
// slow-consumer path deterministically.
type sseSink interface {
	io.Writer
	// SetWriteDeadline arms a deadline for the next write; sinks that
	// cannot enforce deadlines return http.ErrNotSupported (treated
	// as best-effort, not fatal).
	SetWriteDeadline(t time.Time) error
	// Flush pushes buffered bytes to the consumer.
	Flush() error
}

// streamJob pumps j's progress events into sink until the terminal
// "end" event, ctx cancellation, or a failed/overdue write. Every
// write is armed with writeTimeout (when positive), so a consumer
// that stops reading is dropped — the returned error — instead of
// parking this goroutine on a dead TCP connection; the broadcaster
// itself is never in danger because publish is non-blocking.
func streamJob(ctx context.Context, sink sseSink, j *job, snapshot JobEvent, ch chan JobEvent, writeTimeout time.Duration) error {
	send := func(ev JobEvent) error {
		if writeTimeout > 0 {
			if err := sink.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
				return err
			}
		}
		if err := writeSSE(sink, ev); err != nil {
			return err
		}
		return sink.Flush()
	}
	if err := send(snapshot); err != nil {
		return err
	}
	for {
		select {
		case ev := <-ch:
			if err := send(ev); err != nil {
				return err
			}
			if ev.Type == "end" {
				return nil
			}
		case <-j.finished:
			// Drain anything buffered, then emit the terminal event
			// (publish is lossy for slow readers; this path is not).
			for {
				select {
				case ev := <-ch:
					if ev.Type == "end" {
						return send(ev)
					}
					if err := send(ev); err != nil {
						return err
					}
				default:
					info := j.info(false)
					return send(JobEvent{Type: "end", State: info.State,
						Total: info.Total, Done: info.Done, Failed: info.Failed, Error: info.Error})
				}
			}
		case <-ctx.Done():
			return nil
		}
	}
}

func writeSSE(w io.Writer, ev JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

// CancelAll aborts every job (shutdown path) and waits for their
// runner goroutines to settle or ctx to expire.
func (s *jobStore) CancelAll(ctx context.Context) {
	s.mu.Lock()
	var pending []*job
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		j.cancel()
	}
	for _, j := range pending {
		select {
		case <-j.finished:
		case <-ctx.Done():
			return
		}
	}
}
