package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dvsslack/internal/par"
)

// Job states.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
	// JobCheckpointed is the terminal state of a paused job: its
	// in-flight runs were snapshotted mid-simulation and the resulting
	// checkpoint document can be restored here or on another daemon.
	JobCheckpointed = "checkpointed"
)

// JobEvent is one SSE progress record.
type JobEvent struct {
	Type   string `json:"type"` // "progress" or "end"
	State  string `json:"state"`
	Total  int    `json:"total"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	// Checkpointed counts runs paused with a mid-flight snapshot.
	Checkpointed int `json:"checkpointed,omitempty"`
	// Index/Policy/Energy describe the run that just finished
	// (progress events only).
	Index  int     `json:"index,omitempty"`
	Policy string  `json:"policy,omitempty"`
	Energy float64 `json:"energy,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// job is one async batch.
type job struct {
	id      string
	name    string
	created time.Time

	cancel context.CancelFunc
	// onLost observes every event dropped on a full subscriber
	// buffer (the store wires it to the sse_lagged counter).
	onLost func()

	// pausing flips once when a checkpoint is requested: runs not yet
	// started stay unstarted, in-flight runs stop at their next step
	// boundary with a snapshot.
	pausing atomic.Bool

	mu       sync.Mutex
	state    string
	started  time.Time
	ended    time.Time
	runs     []SimRequest
	outcomes []RunOutcome
	done     int
	failed   int
	firstErr string
	subs     map[chan JobEvent]struct{}
	finished chan struct{}
	// completed marks run indices with a recorded outcome (restored
	// jobs are seeded with their checkpoint's outcomes and never
	// re-execute those indices).
	completed map[int]bool
	// resume holds the snapshot envelopes a restored job resumes its
	// interrupted runs from.
	resume map[int][]byte
	// snapshots collects the envelopes captured by this incarnation's
	// pause (keyed by run index).
	snapshots map[int][]byte
	// ctls tracks the control handle of every in-flight run.
	ctls map[int]*runControl
}

func (j *job) info(withResults bool) JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:           j.id,
		Name:         j.name,
		State:        j.state,
		Total:        len(j.runs),
		Done:         j.done,
		Failed:       j.failed,
		Checkpointed: len(j.snapshots),
		Created:      j.created.UTC().Format(time.RFC3339Nano),
		Error:        j.firstErr,
	}
	if !j.started.IsZero() {
		info.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.ended.IsZero() {
		info.Ended = j.ended.UTC().Format(time.RFC3339Nano)
	}
	if withResults {
		info.Results = append([]RunOutcome(nil), j.outcomes...)
	}
	return info
}

// subscribe registers an SSE listener and returns its channel plus an
// unsubscribe function. The returned snapshot event reflects the
// job's state at subscription time, so listeners can render progress
// immediately.
func (j *job) subscribe() (ch chan JobEvent, snapshot JobEvent, unsub func()) {
	ch = make(chan JobEvent, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	snapshot = JobEvent{Type: "progress", State: j.state, Total: len(j.runs), Done: j.done, Failed: j.failed}
	j.mu.Unlock()
	return ch, snapshot, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// publish fans an event out to subscribers. The send is never
// blocking: a slow subscriber's full buffer drops the event (counted
// through onLost) instead of stalling the broadcaster — the terminal
// event is signalled by finished, which nobody can miss.
func (j *job) publish(ev JobEvent) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
			if j.onLost != nil {
				j.onLost()
			}
		}
	}
}

// recordRun stores one run outcome and notifies subscribers.
func (j *job) recordRun(index int, out outcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completed[index] = true
	delete(j.resume, index)
	ro := RunOutcome{Index: index}
	if out.err != nil {
		ro.Error = out.err.Error()
		j.failed++
		if j.firstErr == "" {
			j.firstErr = out.err.Error()
		}
	} else {
		res := out.res
		ro.Result = &res
	}
	j.outcomes = append(j.outcomes, ro)
	j.done++
	ev := JobEvent{
		Type: "progress", State: j.state,
		Total: len(j.runs), Done: j.done, Failed: j.failed,
		Index: index,
	}
	if ro.Result != nil {
		ev.Policy, ev.Energy = ro.Result.Policy, ro.Result.Energy
	} else {
		ev.Error = ro.Error
	}
	j.publish(ev)
}

// recordCheckpoint stores one run's pause envelope and notifies
// subscribers.
func (j *job) recordCheckpoint(index int, env []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.snapshots[index] = env
	j.publish(JobEvent{
		Type: "progress", State: j.state,
		Total: len(j.runs), Done: j.done, Failed: j.failed,
		Index: index, Checkpointed: len(j.snapshots),
	})
}

// finish moves the job to a terminal state.
func (j *job) finish(state string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobCancelled || j.state == JobCheckpointed {
		return
	}
	j.state = state
	j.ended = time.Now()
	sort.Slice(j.outcomes, func(a, b int) bool { return j.outcomes[a].Index < j.outcomes[b].Index })
	j.publish(JobEvent{Type: "end", State: state, Total: len(j.runs), Done: j.done, Failed: j.failed,
		Checkpointed: len(j.snapshots), Error: j.firstErr})
	close(j.finished)
}

// requestPause flips the job into pausing mode and asks every
// in-flight run to checkpoint at its next step boundary. The store
// order (pausing first, then the ctls walk) pairs with the runner's
// register-then-check order, so a run can never slip between the two
// and execute unpaused.
func (j *job) requestPause() {
	j.pausing.Store(true)
	j.mu.Lock()
	ctls := make([]*runControl, 0, len(j.ctls))
	for _, c := range j.ctls {
		ctls = append(ctls, c)
	}
	j.mu.Unlock()
	for _, c := range ctls {
		c.Pause()
	}
}

// checkpointDoc assembles the job's portable checkpoint document.
// Snapshot precedence per unfinished run: an envelope captured by this
// incarnation's pause wins; otherwise an unconsumed restore envelope
// travels onward (a run that never got scheduled between restore and
// the next pause keeps its original snapshot rather than losing it).
func (j *job) checkpointDoc() *JobCheckpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := &JobCheckpoint{
		Version:  JobCheckpointVersion,
		Name:     j.name,
		JobID:    j.id,
		Runs:     append([]SimRequest(nil), j.runs...),
		Outcomes: append([]RunOutcome(nil), j.outcomes...),
	}
	snaps := map[string]string{}
	for i, env := range j.snapshots {
		if !j.completed[i] {
			snaps[strconv.Itoa(i)] = base64.StdEncoding.EncodeToString(env)
		}
	}
	for i, env := range j.resume {
		if _, have := snaps[strconv.Itoa(i)]; !have && !j.completed[i] {
			snaps[strconv.Itoa(i)] = base64.StdEncoding.EncodeToString(env)
		}
	}
	if len(snaps) > 0 {
		doc.Snapshots = snaps
	}
	return doc
}

// liveCheckpoint assembles a checkpoint document without pausing the
// job: every in-flight run is asked for a snapshot at its next step
// boundary, with wait bounding how long a straggler is given. A run
// that cannot answer in time keeps its best previous envelope (pause
// or restore), and runs that finish mid-capture are recorded by their
// outcome instead — the document is always internally consistent.
func (j *job) liveCheckpoint(wait time.Duration) *JobCheckpoint {
	j.mu.Lock()
	reqs := make(map[int]<-chan captureResult, len(j.ctls))
	for i, c := range j.ctls {
		reqs[i] = c.Capture()
	}
	j.mu.Unlock()

	fresh := map[int][]byte{}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	expired := false
	take := func(i int, res captureResult) {
		if res.err == nil && res.data != nil {
			fresh[i] = res.data
		}
	}
	for i, ch := range reqs {
		if !expired {
			select {
			case res := <-ch:
				take(i, res)
				continue
			case <-timer.C:
				expired = true
			}
		}
		select { // deadline passed: collect only what is already there
		case res := <-ch:
			take(i, res)
		default:
		}
	}

	doc := j.checkpointDoc()
	j.mu.Lock()
	for i, env := range fresh {
		if j.completed[i] {
			continue
		}
		if doc.Snapshots == nil {
			doc.Snapshots = map[string]string{}
		}
		doc.Snapshots[strconv.Itoa(i)] = base64.StdEncoding.EncodeToString(env)
	}
	// A run can complete between checkpointDoc and the fresh merge;
	// drop any snapshot that now collides with an outcome.
	for _, ro := range doc.Outcomes {
		delete(doc.Snapshots, strconv.Itoa(ro.Index))
	}
	j.mu.Unlock()
	return doc
}

// jobStore owns every job and their runner goroutines.
type jobStore struct {
	pool *pool
	met  *metrics

	nextID atomic.Uint64

	mu   sync.Mutex
	jobs map[string]*job
	// order remembers creation order for listings.
	order []string
}

func newJobStore(pool *pool, met *metrics) *jobStore {
	return &jobStore{pool: pool, met: met, jobs: map[string]*job{}}
}

// Create registers a job for the given runs and starts executing it.
func (s *jobStore) Create(parent context.Context, name string, runs []SimRequest) *job {
	ctx, cancel := context.WithCancel(parent)
	j := &job{
		id:        fmt.Sprintf("j%d", s.nextID.Add(1)),
		name:      name,
		created:   time.Now(),
		cancel:    cancel,
		onLost:    s.met.sseLagged.Inc,
		state:     JobQueued,
		runs:      runs,
		subs:      map[chan JobEvent]struct{}{},
		finished:  make(chan struct{}),
		completed: map[int]bool{},
		resume:    map[int][]byte{},
		snapshots: map[int][]byte{},
		ctls:      map[int]*runControl{},
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.met.jobCreated()
	go s.run(ctx, j)
	return j
}

// Restore registers and resumes a job from a checkpoint document.
// The new job gets a fresh ID, is seeded with the document's recorded
// outcomes, and re-enters the run loop: finished runs are skipped,
// snapshotted runs resume mid-simulation, untouched runs start fresh.
func (s *jobStore) Restore(parent context.Context, doc *JobCheckpoint) (*job, error) {
	snaps, err := doc.materialize()
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(parent)
	j := &job{
		id:        fmt.Sprintf("j%d", s.nextID.Add(1)),
		name:      doc.Name,
		created:   time.Now(),
		cancel:    cancel,
		onLost:    s.met.sseLagged.Inc,
		state:     JobQueued,
		runs:      append([]SimRequest(nil), doc.Runs...),
		subs:      map[chan JobEvent]struct{}{},
		finished:  make(chan struct{}),
		completed: map[int]bool{},
		resume:    snaps,
		snapshots: map[int][]byte{},
		ctls:      map[int]*runControl{},
	}
	for _, ro := range doc.Outcomes {
		j.outcomes = append(j.outcomes, ro)
		j.completed[ro.Index] = true
		j.done++
		if ro.Error != "" {
			j.failed++
			if j.firstErr == "" {
				j.firstErr = ro.Error
			}
		}
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.met.jobCreated()
	go s.run(ctx, j)
	return j, nil
}

// run executes a job's runs across the shared pool, keeping at most
// 2× the worker count outstanding so one huge job cannot monopolize
// the queue against concurrent jobs and single-run requests.
func (s *jobStore) run(ctx context.Context, j *job) {
	j.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()

	// Run failures are recorded per outcome and never surfaced as a
	// ForEach error, so cancellation (or a pause) is the only thing
	// that stops the sweep early.
	_ = par.ForEach(2*s.pool.workers, len(j.runs), func(i int) error {
		if ctx.Err() != nil {
			return nil // cancelled: stop submitting further runs
		}
		if j.pausing.Load() {
			return nil // pausing: unstarted runs stay unstarted
		}
		j.mu.Lock()
		if j.completed[i] {
			j.mu.Unlock()
			return nil // restored job: this run's outcome is recorded
		}
		snap := j.resume[i]
		ctl := &runControl{}
		j.ctls[i] = ctl
		j.mu.Unlock()
		if j.pausing.Load() {
			// requestPause copied ctls before this run registered;
			// honor the pause here instead of running unpausable.
			j.mu.Lock()
			delete(j.ctls, i)
			j.mu.Unlock()
			return nil
		}
		res, ckpt, err := s.pool.DoRun(ctx, &j.runs[i], snap, ctl)
		j.mu.Lock()
		delete(j.ctls, i)
		j.mu.Unlock()
		if ckpt != nil {
			j.recordCheckpoint(i, ckpt)
			return nil
		}
		if ctx.Err() != nil && err != nil {
			return nil // cancelled, not a run failure
		}
		j.recordRun(i, outcome{res: res, err: err})
		return nil
	})

	done := func() int { j.mu.Lock(); defer j.mu.Unlock(); return j.done }()
	state := JobDone
	switch {
	case ctx.Err() != nil:
		state = JobCancelled
	case j.pausing.Load() && done < len(j.runs):
		state = JobCheckpointed
	case func() bool { j.mu.Lock(); defer j.mu.Unlock(); return j.failed > 0 }():
		state = JobFailed
	}
	j.finish(state)
	s.met.jobFinished()
}

// Get returns a job by ID.
func (s *jobStore) Get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns job summaries in creation order.
func (s *jobStore) List() []JobInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]JobInfo, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.Get(id); ok {
			out = append(out, j.info(false))
		}
	}
	return out
}

// all returns every job in creation order.
func (s *jobStore) all() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Checkpoint pauses a job and returns its checkpoint document once
// every in-flight run has settled (or ctx expires — the job keeps
// draining toward checkpointed in the background then, and a retry
// will find it settled). Checkpointing an already-terminal job just
// returns its document: for a finished job that is a pure outcome
// record, still restorable.
func (s *jobStore) Checkpoint(ctx context.Context, id string) (*JobCheckpoint, error) {
	j, ok := s.Get(id)
	if !ok {
		return nil, errNoSuchJob
	}
	j.requestPause()
	select {
	case <-j.finished:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return j.checkpointDoc(), nil
}

// CheckpointAll pauses every non-terminal job (the drain path of
// Shutdown) and returns the documents of those that settled into the
// checkpointed state within ctx. Jobs that complete normally while
// pausing need no document; jobs that fail to settle are left to the
// caller's cancellation pass.
func (s *jobStore) CheckpointAll(ctx context.Context) []*JobCheckpoint {
	var pending []*job
	for _, j := range s.all() {
		j.mu.Lock()
		terminal := j.state == JobDone || j.state == JobFailed ||
			j.state == JobCancelled || j.state == JobCheckpointed
		j.mu.Unlock()
		if terminal {
			continue
		}
		j.requestPause()
		pending = append(pending, j)
	}
	var docs []*JobCheckpoint
	for _, j := range pending {
		select {
		case <-j.finished:
		case <-ctx.Done():
			continue
		}
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		if st == JobCheckpointed {
			docs = append(docs, j.checkpointDoc())
		}
	}
	return docs
}

// Cancel aborts a job's remaining runs.
func (s *jobStore) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// WaitIdle blocks until every current job has reached a terminal
// state or ctx expires (the graceful half of shutdown; handlers must
// already be rejecting new jobs).
func (s *jobStore) WaitIdle(ctx context.Context) error {
	s.mu.Lock()
	var pending []*job
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		select {
		case <-j.finished:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// --- SSE streaming ---

// sseSink is the response side of one SSE subscriber: a writer with
// per-write deadlines and flushing. The HTTP handler backs it with
// http.ResponseController; tests back it with fakes to exercise the
// slow-consumer path deterministically.
type sseSink interface {
	io.Writer
	// SetWriteDeadline arms a deadline for the next write; sinks that
	// cannot enforce deadlines return http.ErrNotSupported (treated
	// as best-effort, not fatal).
	SetWriteDeadline(t time.Time) error
	// Flush pushes buffered bytes to the consumer.
	Flush() error
}

// streamJob pumps j's progress events into sink until the terminal
// "end" event, ctx cancellation, or a failed/overdue write. Every
// write is armed with writeTimeout (when positive), so a consumer
// that stops reading is dropped — the returned error — instead of
// parking this goroutine on a dead TCP connection; the broadcaster
// itself is never in danger because publish is non-blocking.
func streamJob(ctx context.Context, sink sseSink, j *job, snapshot JobEvent, ch chan JobEvent, writeTimeout time.Duration) error {
	send := func(ev JobEvent) error {
		if writeTimeout > 0 {
			if err := sink.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
				return err
			}
		}
		if err := writeSSE(sink, ev); err != nil {
			return err
		}
		return sink.Flush()
	}
	if err := send(snapshot); err != nil {
		return err
	}
	for {
		select {
		case ev := <-ch:
			if err := send(ev); err != nil {
				return err
			}
			if ev.Type == "end" {
				return nil
			}
		case <-j.finished:
			// Drain anything buffered, then emit the terminal event
			// (publish is lossy for slow readers; this path is not).
			for {
				select {
				case ev := <-ch:
					if ev.Type == "end" {
						return send(ev)
					}
					if err := send(ev); err != nil {
						return err
					}
				default:
					info := j.info(false)
					return send(JobEvent{Type: "end", State: info.State,
						Total: info.Total, Done: info.Done, Failed: info.Failed, Error: info.Error})
				}
			}
		case <-ctx.Done():
			return nil
		}
	}
}

func writeSSE(w io.Writer, ev JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

// CancelAll aborts every job (shutdown path) and waits for their
// runner goroutines to settle or ctx to expire.
func (s *jobStore) CancelAll(ctx context.Context) {
	s.mu.Lock()
	var pending []*job
	for _, j := range s.jobs {
		pending = append(pending, j)
	}
	s.mu.Unlock()
	for _, j := range pending {
		j.cancel()
	}
	for _, j := range pending {
		select {
		case <-j.finished:
		case <-ctx.Done():
			return
		}
	}
}
