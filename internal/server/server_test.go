package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, hs
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeResp[T any](t *testing.T, resp *http.Response, wantCode int) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if resp.StatusCode != wantCode {
		var eb ErrorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		t.Fatalf("status = %d, want %d (error: %s)", resp.StatusCode, wantCode, eb.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return v
}

func quickstartRequest(policy string) SimRequest {
	return SimRequest{
		TaskSet:  rtm.Quickstart(),
		Policy:   policy,
		Workload: WorkloadSpec{Kind: "uniform", Lo: 0.5, Hi: 1, Seed: 7},
	}
}

// TestSimulateMatchesLibrary is the core correctness contract: the
// daemon's answer for a run must equal the sequential library run of
// the identical configuration.
func TestSimulateMatchesLibrary(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4})

	for _, policy := range []string{"nondvs", "static", "cc", "la", "dra", "lpshe"} {
		req := quickstartRequest(policy)
		got := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", req), http.StatusOK)

		cfg, err := req.Config()
		if err != nil {
			t.Fatalf("%s: local config: %v", policy, err)
		}
		want, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%s: local run: %v", policy, err)
		}
		if got.Energy != want.Energy || got.DeadlineMisses != want.DeadlineMisses ||
			got.JobsCompleted != want.JobsCompleted || got.SpeedSwitches != want.SpeedSwitches {
			t.Errorf("%s: daemon result %+v != library result %+v", policy, got, want)
		}
		if got.DeadlineMisses != 0 {
			t.Errorf("%s: %d deadline misses on a feasible set", policy, got.DeadlineMisses)
		}
	}
}

// TestCacheHit verifies the repeated identical request is served from
// cache and that /metrics shows it.
func TestCacheHit(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	req := quickstartRequest("lpshe")
	first := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", req), http.StatusOK)
	if first.Cached {
		t.Fatal("first request reported cached")
	}
	second := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", req), http.StatusOK)
	if !second.Cached {
		t.Fatal("second identical request not served from cache")
	}
	if first.Energy != second.Energy {
		t.Fatalf("cached energy %v != fresh energy %v", second.Energy, first.Energy)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeResp[MetricsSnapshot](t, resp, http.StatusOK)
	if m.CacheHits < 1 {
		t.Errorf("metrics cache_hits = %d, want >= 1", m.CacheHits)
	}
	if m.CacheEntries < 1 || m.CacheHitRate <= 0 {
		t.Errorf("metrics cache entries/rate = %d/%v, want positive", m.CacheEntries, m.CacheHitRate)
	}
	if m.SimsRun != 1 {
		t.Errorf("metrics sims_run = %d, want 1 (second request must not re-simulate)", m.SimsRun)
	}
	if _, ok := m.PolicyLatency["lpSHE"]; !ok {
		t.Errorf("metrics missing lpSHE latency histogram: %+v", m.PolicyLatency)
	}
}

// TestCacheKeyCanonical: equivalent requests spelled differently
// (policy alias) share a key; different seeds do not.
func TestCacheKeyCanonical(t *testing.T) {
	a := quickstartRequest("lpshe-greedy")
	b := quickstartRequest("greedy")
	c := quickstartRequest("lpshe")
	ka, err := a.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := b.CacheKey()
	kc, _ := c.CacheKey()
	if ka != kb {
		t.Errorf("aliased policy specs produced different keys")
	}
	if ka == kc {
		t.Errorf("different policies produced the same key")
	}
	d := a
	d.Workload.Seed = 8
	kd, _ := d.CacheKey()
	if kd == ka {
		t.Errorf("different workload seeds produced the same key")
	}
}

// TestValidationErrors: the daemon must refuse garbage with 400s, not
// simulate it.
func TestValidationErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})

	cases := []struct {
		name string
		body string
	}{
		{"empty body", `{}`},
		{"no tasks", `{"task_set":{"tasks":[]},"policy":"lpshe"}`},
		{"negative wcet", `{"task_set":{"tasks":[{"wcet":-1,"period":10}]},"policy":"lpshe"}`},
		{"wcet over deadline", `{"task_set":{"tasks":[{"wcet":5,"period":10,"deadline":3}]},"policy":"lpshe"}`},
		{"unknown policy", `{"task_set":{"tasks":[{"wcet":1,"period":10}]},"policy":"nope"}`},
		{"unknown field", `{"task_set":{"tasks":[{"wcet":1,"period":10}]},"policy":"lpshe","bogus":1}`},
		{"bad workload", `{"task_set":{"tasks":[{"wcet":1,"period":10}]},"policy":"lpshe","workload":{"kind":"zipf"}}`},
		{"bad preset", `{"task_set":{"tasks":[{"wcet":1,"period":10}]},"policy":"lpshe","processor":{"preset":"pentium"}}`},
		{"negative horizon", `{"task_set":{"tasks":[{"wcet":1,"period":10}]},"policy":"lpshe","horizon":-5}`},
		{"nan wcet", `{"task_set":{"tasks":[{"wcet":NaN,"period":10}]},"policy":"lpshe"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(hs.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestStrictMissIs422: a valid request whose scenario fails (strict
// deadline miss on an infeasible set) is the requester's fault, not a
// validation error.
func TestStrictMissIs422(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	req := SimRequest{
		// U = 1.5 > 1: infeasible under EDF at full speed.
		TaskSet: rtm.NewTaskSet("overload",
			rtm.NewTask("a", 8, 10), rtm.NewTask("b", 7, 10)),
		Policy: "nondvs",
		Strict: true,
	}
	resp := postJSON(t, hs.URL+"/v1/simulate", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
}

// TestBatchJobLifecycle drives a mixed-policy batch through the async
// API: create, poll to completion, fetch per-run results, and check
// them against sequential library runs.
func TestBatchJobLifecycle(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4, CacheSize: -1})

	var batch BatchRequest
	batch.Name = "lifecycle"
	policies := []string{"nondvs", "static", "cc", "la", "dra", "lpshe", "lpps", "feedback"}
	for _, p := range policies {
		batch.Runs = append(batch.Runs, quickstartRequest(p))
	}
	info := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs", batch), http.StatusAccepted)
	if info.ID == "" || info.Total != len(policies) {
		t.Fatalf("bad job info: %+v", info)
	}

	final := waitJob(t, hs.URL, info.ID)
	if final.State != JobDone {
		t.Fatalf("job state = %s (error %q), want done", final.State, final.Error)
	}
	if len(final.Results) != len(policies) {
		t.Fatalf("got %d results, want %d", len(final.Results), len(policies))
	}
	for i, ro := range final.Results {
		if ro.Index != i {
			t.Fatalf("results out of submission order: %v at %d", ro.Index, i)
		}
		if ro.Error != "" || ro.Result == nil {
			t.Fatalf("run %d failed: %s", i, ro.Error)
		}
		cfg, _ := batch.Runs[i].Config()
		want, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ro.Result.Energy != want.Energy {
			t.Errorf("run %d (%s): energy %v != sequential %v", i, ro.Result.Policy, ro.Result.Energy, want.Energy)
		}
	}
}

func waitJob(t *testing.T, base, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?results=1")
		if err != nil {
			t.Fatal(err)
		}
		info := decodeResp[JobInfo](t, resp, http.StatusOK)
		switch info.State {
		case JobDone, JobFailed, JobCancelled:
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobInfo{}
}

// TestSweepBatch1000 is the scale acceptance test: >= 1000
// mixed-policy runs through the HTTP API on >= 4 workers, each
// result equal to the sequential library run for the same seed.
func TestSweepBatch1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-run batch in -short mode")
	}
	_, hs := newTestServer(t, Config{Workers: 4, CacheSize: 2048})

	batch := BatchRequest{
		Name: "sweep",
		Sweep: &SweepSpec{
			N:        5,
			U:        []float64{0.4, 0.6, 0.8, 0.9},
			Policies: []string{"nondvs", "static", "cc", "la", "lpshe"},
			Seeds:    50,
			// A small period pool keeps the hyperperiod (= default
			// horizon) at 400, so runs are fast without truncating
			// the job stream mid-hyperperiod (which would cost
			// look-ahead policies like laEDF real deadlines).
			Periods:  []float64{10, 20, 25, 50, 100, 200, 400},
			Workload: WorkloadSpec{Kind: "uniform", Lo: 0.3, Hi: 1},
		},
	}
	total := 4 * 5 * 50 // 1000 runs
	info := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs", batch), http.StatusAccepted)
	if info.Total != total {
		t.Fatalf("sweep expanded to %d runs, want %d", info.Total, total)
	}
	final := waitJob(t, hs.URL, info.ID)
	if final.State != JobDone || final.Failed != 0 {
		t.Fatalf("job state=%s failed=%d error=%q", final.State, final.Failed, final.Error)
	}

	// Spot-check a deterministic sample of runs against sequential
	// execution, and require zero deadline misses everywhere.
	sweepRuns, err := batch.Sweep.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, ro := range final.Results {
		if ro.Result == nil {
			t.Fatalf("run %d missing result", i)
		}
		if ro.Result.DeadlineMisses != 0 {
			t.Errorf("run %d (%s): %d deadline misses", i, ro.Result.Policy, ro.Result.DeadlineMisses)
		}
		if i%97 == 0 {
			cfg, err := sweepRuns[i].Config()
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ro.Result.Energy != want.Energy {
				t.Errorf("run %d (%s): energy %v != sequential %v", i, ro.Result.Policy, ro.Result.Energy, want.Energy)
			}
		}
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeResp[MetricsSnapshot](t, resp, http.StatusOK)
	if m.SimsRun < uint64(total)/2 {
		t.Errorf("metrics sims_run = %d, suspiciously low for %d runs", m.SimsRun, total)
	}
	if m.SimSpeedup <= 0 {
		t.Errorf("metrics sim_speedup = %v, want positive", m.SimSpeedup)
	}
}

// TestJobEventsSSE exercises the progress stream end to end.
func TestJobEventsSSE(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	var batch BatchRequest
	for i := 0; i < 6; i++ {
		r := quickstartRequest("lpshe")
		r.Workload.Seed = uint64(100 + i) // distinct runs, no cache aliasing
		batch.Runs = append(batch.Runs, r)
	}
	info := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs", batch), http.StatusAccepted)

	resp, err := http.Get(hs.URL + "/v1/jobs/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	var sawProgress, sawEnd bool
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		switch ev.Type {
		case "progress":
			sawProgress = true
		case "end":
			sawEnd = true
			if ev.State != JobDone || ev.Done != len(batch.Runs) {
				t.Errorf("end event %+v, want done with %d runs", ev, len(batch.Runs))
			}
		}
		if sawEnd {
			break
		}
	}
	if !sawProgress || !sawEnd {
		t.Fatalf("SSE stream: progress=%v end=%v, want both", sawProgress, sawEnd)
	}
}

// TestJobCancel aborts a long job and expects a cancelled terminal
// state.
func TestJobCancel(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, CacheSize: -1})

	batch := BatchRequest{Sweep: &SweepSpec{
		N: 8, U: []float64{0.9}, Policies: []string{"lpshe"},
		Seeds:    200,
		Workload: WorkloadSpec{Kind: "uniform", Lo: 0.2, Hi: 1},
	}}
	info := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs", batch), http.StatusAccepted)

	delReq, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	final := waitJob(t, hs.URL, info.ID)
	if final.State != JobCancelled && final.State != JobDone {
		t.Fatalf("state after cancel = %s", final.State)
	}
}

// TestGracefulShutdown verifies Shutdown drains in-flight work and
// subsequently rejects new requests.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{Workers: 2})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	var batch BatchRequest
	for i := 0; i < 10; i++ {
		r := quickstartRequest("lpshe")
		r.Workload.Seed = uint64(i)
		batch.Runs = append(batch.Runs, r)
	}
	info := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs", batch), http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The job must have been drained to completion, not cancelled.
	j, ok := s.jobs.Get(info.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got := j.info(false); got.State != JobDone || got.Done != 10 {
		t.Fatalf("after drain: %+v, want done with 10 runs", got)
	}

	// And new work is rejected, with a Retry-After hint so well-behaved
	// clients back off instead of hammering a draining daemon.
	resp := postJSON(t, hs.URL+"/v1/simulate", quickstartRequest("lpshe"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("draining 503 is missing the Retry-After header")
	}
}

// TestMetricsEndpointShape sanity-checks the document fields.
func TestMetricsEndpointShape(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 3})
	decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", quickstartRequest("cc")), http.StatusOK)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeResp[MetricsSnapshot](t, resp, http.StatusOK)
	if m.Workers != 3 {
		t.Errorf("workers = %d, want 3", m.Workers)
	}
	if m.Requests["simulate"] != 1 {
		t.Errorf("requests[simulate] = %d, want 1", m.Requests["simulate"])
	}
	if m.SimSeconds <= 0 || math.IsNaN(m.SimSeconds) {
		t.Errorf("sim_seconds = %v, want positive", m.SimSeconds)
	}
	if m.UptimeSec <= 0 {
		t.Errorf("uptime = %v", m.UptimeSec)
	}
}

// TestSweepSpecLimits rejects oversized and degenerate sweeps.
func TestSweepSpecLimits(t *testing.T) {
	if _, err := (&SweepSpec{N: 0, U: []float64{0.5}, Policies: []string{"lpshe"}}).Expand(); err == nil {
		t.Error("n=0 sweep accepted")
	}
	if _, err := (&SweepSpec{N: 5, U: nil, Policies: []string{"lpshe"}}).Expand(); err == nil {
		t.Error("empty-U sweep accepted")
	}
	huge := &SweepSpec{N: 5, U: make([]float64, 101), Policies: make([]string, 100), Seeds: 100}
	for i := range huge.U {
		huge.U[i] = 0.5
	}
	for i := range huge.Policies {
		huge.Policies[i] = "lpshe"
	}
	if _, err := huge.Expand(); err == nil {
		t.Error("oversized sweep accepted")
	}
}

// TestPoliciesEndpoint lists the registry.
func TestPoliciesEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(hs.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Policies []string `json:"policies"`
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"lpshe": false, "nondvs": false, "dra": false}
	for _, p := range body.Policies {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("policy %s missing from listing %v", p, body.Policies)
		}
	}
}
