package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dvsslack/internal/scenario"
)

// handleScenario answers POST /v1/scenario: execute a declarative
// scenario document (YAML or JSON, sniffed from the body) and return
// its verdict. The response body is the verdict's canonical byte
// form — identical to a local `dvsscen run -json` of the same
// document — so callers can compare verdicts across transports with
// cmp. A scenario whose assertions fail still answers 200 (the
// verdict reports ok=false); 4xx is reserved for documents that do
// not validate, with every validation error listed.
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDraining(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading scenario body: %v", err)
		return
	}
	doc, errs := scenario.Parse("scenario", body)
	if len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		writeJSON(w, http.StatusBadRequest, ErrorBody{
			Error:  fmt.Sprintf("scenario failed validation with %d error(s): %s", len(errs), msgs[0]),
			Errors: msgs,
		})
		return
	}
	// Scenario runs execute on the request goroutine (one audited
	// simulation per listed policy); admission control bounds how
	// many run at once, exactly like synchronous /v1/simulate.
	if err := s.admit.TryAcquire(); err != nil {
		s.met.shed.Inc()
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	defer s.admit.Release()
	v, err := scenario.Execute(r.Context(), doc)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", shedRetryAfter)
		writeError(w, http.StatusServiceUnavailable, "server: request deadline exceeded")
		return
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusRequestTimeout, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.met.scenariosRun.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(v.JSON())
}
