package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(3)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), SimResult{Energy: float64(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 should have been evicted (oldest)")
	}
	// Touch k1 so k2 becomes the LRU victim.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	c.Put("k4", SimResult{Energy: 4})
	if _, ok := c.Get("k2"); ok {
		t.Error("k2 should have been evicted after k1 was touched")
	}
	if _, ok := c.Get("k1"); !ok {
		t.Error("recently used k1 evicted")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.Put("k", SimResult{})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 0/1", hits, misses)
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := newResultCache(2)
	c.Put("k", SimResult{Energy: 1})
	c.Put("k", SimResult{Energy: 2})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if res, _ := c.Get("k"); res.Energy != 2 {
		t.Fatalf("energy = %v, want 2", res.Energy)
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run
// under -race this is the data-race check for the cache layer.
func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%100)
				if _, ok := c.Get(key); !ok {
					c.Put(key, SimResult{Energy: float64(i)})
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}
