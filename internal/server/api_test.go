package server

import (
	"encoding/json"
	"reflect"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// TestProcessorSpecRoundTrip: SpecFromProcessor(Build(spec)) must
// reproduce the processor for every preset and for hand-built specs.
func TestProcessorSpecRoundTrip(t *testing.T) {
	for name, p := range cpu.Presets() {
		p.SwitchTime = 0.01
		p.LeakagePower = 0.1
		spec, err := SpecFromProcessor(p)
		if err != nil {
			t.Fatalf("%s: SpecFromProcessor: %v", name, err)
		}
		rebuilt, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		if rebuilt.Name() != p.Name() {
			t.Errorf("%s: rebuilt name %q != %q", name, rebuilt.Name(), p.Name())
		}
		if got, want := rebuilt.Levels(), p.Levels(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: levels %v != %v", name, got, want)
		}
		for _, s := range []float64{0.2, 0.5, 0.8, 1} {
			if got, want := rebuilt.BusyPower(s), p.BusyPower(s); got != want {
				t.Errorf("%s: BusyPower(%v) = %v, want %v", name, s, got, want)
			}
			if got, want := rebuilt.Clamp(s), p.Clamp(s); got != want {
				t.Errorf("%s: Clamp(%v) = %v, want %v", name, s, got, want)
			}
		}
		if rebuilt.SwitchTime != p.SwitchTime || rebuilt.LeakagePower != p.LeakagePower {
			t.Errorf("%s: overhead knobs did not round-trip", name)
		}
	}
}

// TestProcessorSpecJSONRoundTrip: the wire encoding itself must
// round-trip, since cache keys are computed from it.
func TestProcessorSpecJSONRoundTrip(t *testing.T) {
	spec, err := SpecFromProcessor(cpu.XScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back ProcessorSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Fatalf("spec %+v != decoded %+v", spec, back)
	}
}

// TestWorkloadSpecRoundTrip covers every shipped generator.
func TestWorkloadSpecRoundTrip(t *testing.T) {
	gens := []workload.Generator{
		workload.WorstCase{},
		workload.Uniform{Lo: 0.3, Hi: 0.9, Seed: 11},
		workload.Constant{Frac: 0.4},
		workload.Normal{Mean: 0.5, StdDev: 0.2, Seed: 3},
		workload.Bimodal{LightFrac: 0.2, HeavyFrac: 0.9, PHeavy: 0.25, Seed: 5},
		workload.Sinusoidal{Mean: 0.6, Amp: 0.3, PeriodJobs: 16, Jitter: 0.05, Seed: 9},
	}
	for _, g := range gens {
		spec, err := SpecFromGenerator(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", g.Name(), err)
		}
		if !reflect.DeepEqual(back, g) {
			t.Errorf("round trip %s: got %#v, want %#v", g.Name(), back, g)
		}
		// Behavioral check: same AET stream.
		for task := 0; task < 3; task++ {
			for idx := 0; idx < 10; idx++ {
				if a, b := g.AET(task, idx, 5), back.AET(task, idx, 5); a != b {
					t.Fatalf("%s: AET(%d,%d) diverged: %v vs %v", g.Name(), task, idx, a, b)
				}
			}
		}
	}
}

// TestWorkloadSpecRejectsBadBounds guards the network-input path.
func TestWorkloadSpecRejectsBadBounds(t *testing.T) {
	bad := []WorkloadSpec{
		{Kind: "uniform", Lo: 0.8, Hi: 0.2},
		{Kind: "uniform", Lo: -0.1, Hi: 0.5},
		{Kind: "uniform", Lo: 0.1, Hi: 1.5},
		{Kind: "zipf"},
	}
	for _, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("spec %+v accepted, want error", s)
		}
	}
}

// TestResultRoundTrip: wire result <-> engine result.
func TestResultRoundTrip(t *testing.T) {
	req := quickstartRequest("lpshe")
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wire := ResultFromSim(simRes)
	back := wire.Sim()
	if !reflect.DeepEqual(back, simRes) {
		t.Fatalf("round trip lost fields:\n got %+v\nwant %+v", back, simRes)
	}
}
