package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"testing"
	"time"

	"dvsslack/internal/obs"
)

// longRequest is quickstartRequest stretched to ~200ms of wall time
// (horizon 1e6 ≈ 750k scheduling events at ~0.3µs each), so a pause
// requested a few tens of milliseconds in reliably lands mid-run.
func longRequest(policy string, seed uint64) SimRequest {
	req := quickstartRequest(policy)
	req.Horizon = 1e6
	req.Workload.Seed = seed
	return req
}

// waitJobAny is waitJob with JobCheckpointed accepted as terminal.
func waitJobAny(t *testing.T, base, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?results=1")
		if err != nil {
			t.Fatal(err)
		}
		info := decodeResp[JobInfo](t, resp, http.StatusOK)
		switch info.State {
		case JobDone, JobFailed, JobCancelled, JobCheckpointed:
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not settle in time")
	return JobInfo{}
}

// canonResults renders run outcomes in a transport-independent form:
// sorted by index, with the fields that legitimately differ between a
// fresh and a resumed execution (wall time, cache provenance) zeroed.
// Everything else must be byte-identical.
func canonResults(t *testing.T, ros []RunOutcome) string {
	t.Helper()
	cp := make([]RunOutcome, len(ros))
	copy(cp, ros)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Index < cp[j].Index })
	for i := range cp {
		if cp[i].Result != nil {
			r := *cp[i].Result
			r.WallNanos = 0
			r.Cached = false
			cp[i].Result = &r
		}
	}
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func cloneDoc(t *testing.T, doc JobCheckpoint) JobCheckpoint {
	t.Helper()
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var out JobCheckpoint
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPoolPauseResumeDeterminism pins the core checkpoint contract at
// the pool level: pausing a run mid-simulation and resuming it from
// the returned envelope yields exactly the result of an uninterrupted
// run — including the audit verdict.
func TestPoolPauseResumeDeterminism(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	ref, _ := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	req := longRequest("lpshe", 11)
	req.Audit = true
	want, err := ref.pool.Do(ctx, &req)
	if err != nil {
		t.Fatal(err)
	}

	type runOut struct {
		res  SimResult
		ckpt []byte
		err  error
	}
	ctl := &runControl{}
	done := make(chan runOut, 1)
	go func() {
		res, ckpt, err := s.pool.DoRun(ctx, &req, nil, ctl)
		done <- runOut{res, ckpt, err}
	}()
	time.Sleep(40 * time.Millisecond)

	// A live capture must not disturb the run.
	live := <-ctl.Capture()
	if live.err != nil {
		t.Fatalf("live capture: %v", live.err)
	}
	if len(live.data) == 0 {
		t.Fatal("live capture returned an empty envelope")
	}

	ctl.Pause()
	o := <-done
	if o.err != nil {
		t.Fatalf("paused run: %v", o.err)
	}
	if o.ckpt == nil {
		t.Fatal("run finished before the pause landed; raise longRequest's horizon")
	}

	for name, snap := range map[string][]byte{"pause": o.ckpt, "live": live.data} {
		res, ckpt2, err := s.pool.DoRun(ctx, &req, snap, nil)
		if err != nil {
			t.Fatalf("resume from %s snapshot: %v", name, err)
		}
		if ckpt2 != nil {
			t.Fatalf("resume from %s snapshot returned a checkpoint without a pause", name)
		}
		res.WallNanos, res.Cached = 0, false
		w := want
		w.WallNanos, w.Cached = 0, false
		if !reflect.DeepEqual(res, w) {
			t.Errorf("resume from %s snapshot diverged:\n got %+v\nwant %+v", name, res, w)
		}
	}
}

// TestJobCheckpointRestoreHTTP drives the full HTTP lifecycle: a
// mixed-policy batch is checkpointed mid-flight on one daemon and
// restored on a second; the merged outcomes must be byte-identical to
// an uninterrupted run of the same batch on a third.
func TestJobCheckpointRestoreHTTP(t *testing.T) {
	_, hsA := newTestServer(t, Config{Workers: 2, CacheSize: -1})
	_, hsB := newTestServer(t, Config{Workers: 2, CacheSize: -1})
	_, hsC := newTestServer(t, Config{Workers: 2, CacheSize: -1})

	batch := BatchRequest{Name: "ckpt-lifecycle"}
	batch.Runs = append(batch.Runs, longRequest("lpshe", 1), longRequest("cc", 2), longRequest("dra", 3))
	audited := longRequest("static", 4)
	audited.Audit = true
	batch.Runs = append(batch.Runs, audited)

	info := decodeResp[JobInfo](t, postJSON(t, hsA.URL+"/v1/jobs", batch), http.StatusAccepted)
	time.Sleep(40 * time.Millisecond)

	doc := decodeResp[JobCheckpoint](t,
		postJSON(t, hsA.URL+"/v1/jobs/"+info.ID+"/checkpoint", nil), http.StatusOK)
	if doc.Version != JobCheckpointVersion {
		t.Fatalf("checkpoint version = %d, want %d", doc.Version, JobCheckpointVersion)
	}
	if len(doc.Runs) != len(batch.Runs) {
		t.Fatalf("checkpoint carries %d runs, want %d", len(doc.Runs), len(batch.Runs))
	}
	if len(doc.Snapshots) == 0 {
		t.Fatal("checkpoint has no mid-flight snapshots; the pause landed after completion")
	}
	paused := waitJobAny(t, hsA.URL, info.ID)
	if paused.State != JobCheckpointed {
		t.Fatalf("source job state = %s, want %s", paused.State, JobCheckpointed)
	}
	if paused.Checkpointed != len(doc.Snapshots) {
		t.Fatalf("job reports %d checkpointed runs, document has %d", paused.Checkpointed, len(doc.Snapshots))
	}

	restored := decodeResp[JobInfo](t, postJSON(t, hsB.URL+"/v1/jobs/restore", doc), http.StatusAccepted)
	final := waitJobAny(t, hsB.URL, restored.ID)
	if final.State != JobDone {
		t.Fatalf("restored job state = %s (error %q), want done", final.State, final.Error)
	}
	if len(final.Results) != len(batch.Runs) {
		t.Fatalf("restored job has %d results, want %d", len(final.Results), len(batch.Runs))
	}

	straightInfo := decodeResp[JobInfo](t, postJSON(t, hsC.URL+"/v1/jobs", batch), http.StatusAccepted)
	straight := waitJobAny(t, hsC.URL, straightInfo.ID)
	if straight.State != JobDone {
		t.Fatalf("straight job state = %s, want done", straight.State)
	}

	if got, want := canonResults(t, final.Results), canonResults(t, straight.Results); got != want {
		t.Errorf("restored outcomes differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestRestoreRejectsCorruptDocuments exercises every fail-closed edge
// of the restore path over HTTP: each tampered document must 400, the
// error counter must move, and the untampered document must still
// restore afterwards.
func TestRestoreRejectsCorruptDocuments(t *testing.T) {
	_, hsA := newTestServer(t, Config{Workers: 2, CacheSize: -1})
	_, hsB := newTestServer(t, Config{Workers: 2, CacheSize: -1})

	batch := BatchRequest{Name: "ckpt-corrupt"}
	batch.Runs = append(batch.Runs, longRequest("lpshe", 21), longRequest("cc", 22))
	info := decodeResp[JobInfo](t, postJSON(t, hsA.URL+"/v1/jobs", batch), http.StatusAccepted)
	time.Sleep(40 * time.Millisecond)
	doc := decodeResp[JobCheckpoint](t,
		postJSON(t, hsA.URL+"/v1/jobs/"+info.ID+"/checkpoint", nil), http.StatusOK)
	if len(doc.Snapshots) == 0 {
		t.Fatal("checkpoint has no snapshots; cannot exercise corruption paths")
	}
	var snapKey string
	for k := range doc.Snapshots {
		snapKey = k
		break
	}

	expectReject := func(name string, tampered JobCheckpoint) {
		t.Helper()
		resp := postJSON(t, hsB.URL+"/v1/jobs/restore", tampered)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: restore status = %d, want 400", name, resp.StatusCode)
		}
	}

	bad := cloneDoc(t, doc)
	bad.Version = 99
	expectReject("future version", bad)

	bad = cloneDoc(t, doc)
	env, err := base64.StdEncoding.DecodeString(bad.Snapshots[snapKey])
	if err != nil {
		t.Fatal(err)
	}
	env[len(env)/2] ^= 0x40 // flip one bit mid-body: checksum must catch it
	bad.Snapshots[snapKey] = base64.StdEncoding.EncodeToString(env)
	expectReject("flipped bit", bad)

	bad = cloneDoc(t, doc)
	bad.Snapshots[snapKey] = "!!! not base64 !!!"
	expectReject("invalid base64", bad)

	// A snapshot filed under a different run's index: the envelope's
	// scenario-key binding must refuse the swap.
	bad = cloneDoc(t, doc)
	other := "0"
	if snapKey == "0" {
		other = "1"
	}
	bad.Snapshots[other] = bad.Snapshots[snapKey]
	delete(bad.Snapshots, snapKey)
	expectReject("snapshot bound to wrong run", bad)

	bad = cloneDoc(t, doc)
	bad.Outcomes = append(bad.Outcomes, RunOutcome{Index: 99})
	expectReject("outcome index out of range", bad)

	bad = cloneDoc(t, doc)
	idx, err := strconv.Atoi(snapKey)
	if err != nil {
		t.Fatal(err)
	}
	bad.Outcomes = append(bad.Outcomes, RunOutcome{Index: idx})
	expectReject("run with both outcome and snapshot", bad)

	expectReject("empty document", JobCheckpoint{Version: JobCheckpointVersion})

	resp, err := http.Get(hsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeResp[MetricsSnapshot](t, resp, http.StatusOK)
	if m.Restores["error"] < 7 {
		t.Errorf("restore error counter = %d, want >= 7", m.Restores["error"])
	}

	// The untampered document still restores and completes.
	restored := decodeResp[JobInfo](t, postJSON(t, hsB.URL+"/v1/jobs/restore", doc), http.StatusAccepted)
	final := waitJobAny(t, hsB.URL, restored.ID)
	if final.State != JobDone {
		t.Fatalf("restore after rejects: state = %s (error %q), want done", final.State, final.Error)
	}
}

// TestShutdownCheckpointsToDisk pins the drain contract: a blown
// drain deadline with a checkpoint directory configured writes the
// stragglers to disk, and a fresh daemon recovering from that
// directory finishes them with the exact uninterrupted outcomes.
func TestShutdownCheckpointsToDisk(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 1, CacheSize: -1, CheckpointDir: dir})
	hs1 := httptest.NewServer(s1.Handler())
	batch := BatchRequest{Name: "ckpt-drain"}
	batch.Runs = append(batch.Runs, longRequest("lpshe", 31), longRequest("cc", 32), longRequest("dra", 33))
	info := decodeResp[JobInfo](t, postJSON(t, hs1.URL+"/v1/jobs", batch), http.StatusAccepted)
	time.Sleep(40 * time.Millisecond)
	hs1.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	err := s1.Shutdown(ctx)
	cancel()
	if err == nil {
		t.Fatal("shutdown drained 3×200ms of simulation in 80ms; expected a blown deadline")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("checkpoint dir holds %d documents after drain, want 1 (%v)", len(files), files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc JobCheckpoint
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("drain wrote an undecodable document: %v", err)
	}
	if doc.JobID != info.ID || len(doc.Runs) != 3 {
		t.Fatalf("drain document job=%s runs=%d, want job=%s runs=3", doc.JobID, len(doc.Runs), info.ID)
	}

	// Second daemon, same directory: recovery resumes the job.
	s2 := New(Config{Workers: 1, CacheSize: -1, CheckpointDir: dir})
	hs2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		hs2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})
	n, err := s2.RecoverCheckpoints()
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if n != 1 {
		t.Fatalf("recovered %d jobs, want 1", n)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "*.ckpt.json")); len(left) != 0 {
		t.Fatalf("consumed checkpoint files still on disk: %v", left)
	}

	jobs := decodeResp[[]JobInfo](t, mustGet(t, hs2.URL+"/v1/jobs"), http.StatusOK)
	if len(jobs) != 1 {
		t.Fatalf("recovered daemon lists %d jobs, want 1", len(jobs))
	}
	final := waitJobAny(t, hs2.URL, jobs[0].ID)
	if final.State != JobDone {
		t.Fatalf("recovered job state = %s (error %q), want done", final.State, final.Error)
	}

	_, hsRef := newTestServer(t, Config{Workers: 1, CacheSize: -1})
	refInfo := decodeResp[JobInfo](t, postJSON(t, hsRef.URL+"/v1/jobs", batch), http.StatusAccepted)
	ref := waitJobAny(t, hsRef.URL, refInfo.ID)
	if got, want := canonResults(t, final.Results), canonResults(t, ref.Results); got != want {
		t.Errorf("recovered outcomes differ from uninterrupted run:\n got %s\nwant %s", got, want)
	}
}

// TestAutoCheckpoint verifies the periodic snapshotter bounds crash
// loss: with an interval configured, a running job's document shows
// up on disk without any drain or API call.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, Config{
		Workers: 1, CacheSize: -1,
		CheckpointDir: dir, CheckpointInterval: 25 * time.Millisecond,
	})
	batch := BatchRequest{Name: "ckpt-auto"}
	batch.Runs = append(batch.Runs, longRequest("lpshe", 41), longRequest("cc", 42))
	info := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs", batch), http.StatusAccepted)

	deadline := time.Now().Add(10 * time.Second)
	var files []string
	for time.Now().Before(deadline) {
		files, _ = filepath.Glob(filepath.Join(dir, "*.ckpt.json"))
		if len(files) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(files) == 0 {
		t.Fatal("no auto-checkpoint document appeared while the job ran")
	}

	m := decodeResp[MetricsSnapshot](t, mustGet(t, hs.URL+"/metrics"), http.StatusOK)
	if m.Checkpoints < 1 {
		t.Errorf("checkpoint counter = %d, want >= 1", m.Checkpoints)
	}

	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitJobAny(t, hs.URL, info.ID)
	if final.State != JobCancelled {
		t.Fatalf("cancelled job state = %s, want cancelled", final.State)
	}
}

// TestCheckpointMetricsExposition scrapes /metrics.prom after
// checkpoint and restore traffic (both outcomes) and validates the
// exposition, pinning the new series into the format contract.
func TestCheckpointMetricsExposition(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	batch := BatchRequest{Name: "ckpt-metrics"}
	batch.Runs = append(batch.Runs, quickstartRequest("lpshe"), quickstartRequest("cc"))
	info := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs", batch), http.StatusAccepted)
	if done := waitJobAny(t, hs.URL, info.ID); done.State != JobDone {
		t.Fatalf("job state = %s, want done", done.State)
	}

	// Checkpointing a finished job yields a pure-outcome document;
	// restoring it exercises the ok path, a tampered copy the error
	// path.
	doc := decodeResp[JobCheckpoint](t,
		postJSON(t, hs.URL+"/v1/jobs/"+info.ID+"/checkpoint", nil), http.StatusOK)
	if len(doc.Outcomes) != 2 || len(doc.Snapshots) != 0 {
		t.Fatalf("finished-job checkpoint: outcomes=%d snapshots=%d, want 2/0",
			len(doc.Outcomes), len(doc.Snapshots))
	}
	restored := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs/restore", doc), http.StatusAccepted)
	if final := waitJobAny(t, hs.URL, restored.ID); final.State != JobDone {
		t.Fatalf("restored job state = %s, want done", final.State)
	}
	bad := cloneDoc(t, doc)
	bad.Version = 99
	resp := postJSON(t, hs.URL+"/v1/jobs/restore", bad)
	resp.Body.Close()

	m := decodeResp[MetricsSnapshot](t, mustGet(t, hs.URL+"/metrics"), http.StatusOK)
	if m.Checkpoints < 1 || m.Restores["ok"] < 1 || m.Restores["error"] < 1 {
		t.Fatalf("metrics: checkpoints=%d restores=%v, want all moved", m.Checkpoints, m.Restores)
	}

	prom, err := http.Get(hs.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	if err := obs.ValidateExposition(prom.Body); err != nil {
		t.Fatalf("exposition invalid after checkpoint traffic: %v", err)
	}
}
