package server

import (
	"io"
	"time"

	"dvsslack/internal/obs"
)

// latencyBuckets are the upper bounds (seconds) of the latency
// histograms, exponentially spaced from 100µs to ~100s.
var latencyBuckets = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100,
}

// metrics aggregates the daemon's operational counters on the shared
// obs.Registry: every figure is scrapeable as Prometheus text via
// /metrics.prom and also folded into the legacy /metrics JSON
// snapshot (whose shape predates the registry and is kept
// byte-compatible).
type metrics struct {
	reg   *obs.Registry
	start time.Time

	requests    *obs.CounterVec // endpoint label -> count
	errors      *obs.CounterVec // endpoint label -> non-2xx count
	httpLatency *obs.HistogramVec

	simsRun         *obs.Counter // fresh simulations executed
	simsFailed      *obs.Counter // simulations that returned an error
	simsAudited     *obs.Counter // fresh simulations run under the audit oracle
	auditViolations *obs.Counter // total violations those audits reported
	simSeconds      *obs.Counter // total simulated time of fresh runs
	busySeconds     *obs.Counter // total wall-clock spent simulating (sums across workers)

	queueDepth   *obs.Gauge // runnable work items waiting for a worker
	inFlight     *obs.Gauge // work items currently executing
	jobsCreated  *obs.Counter
	jobsFinished *obs.Counter

	policyLatency *obs.HistogramVec // fresh-run wall latency by policy

	scenariosRun *obs.Counter // scenario documents executed to a verdict

	checkpoints *obs.Counter    // job checkpoints taken (pause, drain, or auto)
	restores    *obs.CounterVec // job restores by outcome ("ok"/"error")

	shed          *obs.Counter    // sync requests refused by admission control
	panics        *obs.Counter    // handler panics converted to 500s
	reqTimeouts   *obs.Counter    // requests that hit their deadline
	sseDropped    *obs.Counter    // SSE consumers dropped for slow/failed writes
	sseLagged     *obs.Counter    // SSE events lost to full subscriber buffers
	chaosInjected *obs.CounterVec // injected fault counts by class (chaos mode)
}

// newMetrics builds the registry. The cache exposes its own lifetime
// counters, so its metrics are scrape-time reads rather than copies.
func newMetrics(workers int, cache *resultCache) *metrics {
	m := &metrics{reg: obs.NewRegistry(), start: time.Now()}
	r := m.reg
	r.GaugeFunc("dvsd_uptime_seconds", "seconds since the daemon started",
		func() float64 { return time.Since(m.start).Seconds() })
	r.GaugeFunc("dvsd_workers", "simulation worker-pool size",
		func() float64 { return float64(workers) })

	m.requests = r.CounterVec("dvsd_http_requests_total", "HTTP requests by endpoint", "endpoint")
	m.errors = r.CounterVec("dvsd_http_request_errors_total", "non-2xx HTTP responses by endpoint", "endpoint")
	m.httpLatency = r.HistogramVec("dvsd_http_request_seconds", "HTTP request wall time by endpoint",
		"endpoint", latencyBuckets)

	m.simsRun = r.Counter("dvsd_sims_total", "fresh (non-cached) simulations executed")
	m.simsFailed = r.Counter("dvsd_sim_failures_total", "simulations that returned an error")
	m.simsAudited = r.Counter("dvsd_sims_audited_total", "fresh simulations run under the audit oracle")
	m.auditViolations = r.Counter("dvsd_audit_violations_total", "invariant violations reported by audited runs")
	m.simSeconds = r.Counter("dvsd_sim_simulated_seconds_total", "simulated time covered by fresh runs")
	m.busySeconds = r.Counter("dvsd_sim_busy_seconds_total", "wall-clock spent simulating, summed across workers")

	m.queueDepth = r.Gauge("dvsd_queue_depth", "runnable work items waiting for a worker")
	m.inFlight = r.Gauge("dvsd_inflight_runs", "work items currently executing")
	m.jobsCreated = r.Counter("dvsd_jobs_created_total", "batch jobs accepted")
	m.jobsFinished = r.Counter("dvsd_jobs_finished_total", "batch jobs reaching a terminal state")

	m.policyLatency = r.HistogramVec("dvsd_policy_run_seconds", "fresh-run wall latency by policy",
		"policy", latencyBuckets)

	m.scenariosRun = r.Counter("dvsd_scenarios_total", "scenario documents executed to a verdict")

	m.checkpoints = r.Counter("dvsd_checkpoints_total", "job checkpoints taken (pause, drain, or auto)")
	m.restores = r.CounterVec("dvsd_restores_total", "job restores by outcome", "outcome")

	m.shed = r.Counter("dvsd_shed_total", "synchronous requests refused by admission control (429)")
	m.panics = r.Counter("dvsd_panics_total", "handler panics recovered into 500 responses")
	m.reqTimeouts = r.Counter("dvsd_request_timeouts_total", "requests that exhausted their deadline before completing")
	m.sseDropped = r.Counter("dvsd_sse_dropped_total", "SSE subscribers dropped for slow or failed writes")
	m.sseLagged = r.Counter("dvsd_sse_lagged_events_total", "SSE progress events lost to full subscriber buffers")
	m.chaosInjected = r.CounterVec("dvsd_chaos_injected_total", "faults injected by the chaos middleware", "fault")

	r.GaugeFunc("dvsd_cache_entries", "result-cache entries",
		func() float64 { return float64(cache.Len()) })
	r.CounterFunc("dvsd_cache_hits_total", "result-cache hits",
		func() float64 { h, _ := cache.Stats(); return float64(h) })
	r.CounterFunc("dvsd_cache_misses_total", "result-cache misses",
		func() float64 { _, mi := cache.Stats(); return float64(mi) })
	return m
}

func (m *metrics) request(endpoint string, ok bool) {
	m.requests.With(endpoint).Inc()
	if !ok {
		m.errors.With(endpoint).Inc()
	}
}

// httpDone records one instrumented request's wall time.
func (m *metrics) httpDone(endpoint string, d time.Duration) {
	m.httpLatency.With(endpoint).Observe(d.Seconds())
}

func (m *metrics) enqueue(delta int) { m.queueDepth.Add(float64(delta)) }

func (m *metrics) running(delta int) { m.inFlight.Add(float64(delta)) }

func (m *metrics) jobCreated() { m.jobsCreated.Inc() }

func (m *metrics) jobFinished() { m.jobsFinished.Inc() }

// auditDone records one audited simulation and its violation count.
func (m *metrics) auditDone(violations int) {
	m.simsAudited.Inc()
	m.auditViolations.Add(float64(violations))
}

// simDone records one fresh (non-cached) simulation.
func (m *metrics) simDone(policy string, simTime float64, wall time.Duration, err error) {
	m.simsRun.Inc()
	if err != nil {
		m.simsFailed.Inc()
		return
	}
	m.simSeconds.Add(simTime)
	m.busySeconds.Add(wall.Seconds())
	m.policyLatency.With(policy).Observe(wall.Seconds())
}

// writeProm renders the Prometheus text exposition (/metrics.prom).
func (m *metrics) writeProm(w io.Writer) error { return m.reg.WriteProm(w) }

// HistogramSnapshot is the wire form of one latency histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	MeanSec float64           `json:"mean_sec"`
	P50Sec  float64           `json:"p50_sec"`
	P99Sec  float64           `json:"p99_sec"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// MetricsSnapshot is the JSON document /metrics serves.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests map[string]uint64 `json:"requests"`
	Errors   map[string]uint64 `json:"errors,omitempty"`

	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	Workers    int `json:"workers"`

	SimsRun    uint64  `json:"sims_run"`
	SimsFailed uint64  `json:"sims_failed"`
	SimSeconds float64 `json:"sim_seconds"`
	// SimsAudited counts fresh runs executed under the audit oracle;
	// AuditViolations sums the invariant breaches they reported (any
	// non-zero value here means the engine, a policy, or the oracle
	// itself has a bug worth a reproducer).
	SimsAudited     uint64 `json:"sims_audited"`
	AuditViolations uint64 `json:"audit_violations"`
	// SimSpeedup is simulated seconds per wall-clock second of
	// simulation work (summed across workers): the throughput figure
	// of merit of the daemon. Zero until the first fresh run
	// completes (never a division by a zero denominator).
	SimSpeedup float64 `json:"sim_speedup"`

	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	// CacheHitRate is hits/(hits+misses), 0 when no lookups.
	CacheHitRate float64 `json:"cache_hit_rate"`

	JobsCreated  uint64 `json:"jobs_created"`
	JobsFinished uint64 `json:"jobs_finished"`

	// Checkpoint/restore counters (omitted while zero so the snapshot
	// shape is unchanged on daemons not using checkpoints).
	Checkpoints uint64            `json:"checkpoints,omitempty"`
	Restores    map[string]uint64 `json:"restores,omitempty"`

	// Resilience counters (omitted while zero so the pre-resilience
	// snapshot shape is preserved byte for byte on a quiet daemon).
	Shed            uint64 `json:"shed,omitempty"`
	Panics          uint64 `json:"panics,omitempty"`
	RequestTimeouts uint64 `json:"request_timeouts,omitempty"`
	SSEDropped      uint64 `json:"sse_dropped,omitempty"`
	SSELagged       uint64 `json:"sse_lagged,omitempty"`

	// PolicyLatency maps policy name to its fresh-run wall-clock
	// latency histogram.
	PolicyLatency map[string]HistogramSnapshot `json:"policy_latency,omitempty"`
}

// snapshot captures a consistent view of the counters.
func (m *metrics) snapshot(workers int, cache *resultCache) MetricsSnapshot {
	hits, misses := cache.Stats()
	s := MetricsSnapshot{
		UptimeSec:       time.Since(m.start).Seconds(),
		Requests:        map[string]uint64{},
		Errors:          map[string]uint64{},
		QueueDepth:      int(m.queueDepth.Value()),
		InFlight:        int(m.inFlight.Value()),
		Workers:         workers,
		SimsRun:         uint64(m.simsRun.Value()),
		SimsFailed:      uint64(m.simsFailed.Value()),
		SimSeconds:      m.simSeconds.Value(),
		SimsAudited:     uint64(m.simsAudited.Value()),
		AuditViolations: uint64(m.auditViolations.Value()),
		CacheEntries:    cache.Len(),
		CacheHits:       hits,
		CacheMisses:     misses,
		JobsCreated:     uint64(m.jobsCreated.Value()),
		JobsFinished:    uint64(m.jobsFinished.Value()),
		Shed:            uint64(m.shed.Value()),
		Panics:          uint64(m.panics.Value()),
		RequestTimeouts: uint64(m.reqTimeouts.Value()),
		SSEDropped:      uint64(m.sseDropped.Value()),
		SSELagged:       uint64(m.sseLagged.Value()),
	}
	m.requests.Each(func(label string, c *obs.Counter) {
		s.Requests[label] = uint64(c.Value())
	})
	m.errors.Each(func(label string, c *obs.Counter) {
		s.Errors[label] = uint64(c.Value())
	})
	s.Checkpoints = uint64(m.checkpoints.Value())
	m.restores.Each(func(label string, c *obs.Counter) {
		if s.Restores == nil {
			s.Restores = map[string]uint64{}
		}
		s.Restores[label] = uint64(c.Value())
	})
	// Derived ratios guard their denominators: a zero-traffic daemon
	// reports 0, not NaN (which would also fail JSON encoding).
	if busy := m.busySeconds.Value(); busy > 0 {
		s.SimSpeedup = s.SimSeconds / busy
	}
	if total := hits + misses; total > 0 {
		s.CacheHitRate = float64(hits) / float64(total)
	}
	m.policyLatency.Each(func(name string, h *obs.Histogram) {
		hs := h.Snapshot()
		if s.PolicyLatency == nil {
			s.PolicyLatency = map[string]HistogramSnapshot{}
		}
		s.PolicyLatency[name] = HistogramSnapshot{
			Count:   hs.Count,
			MeanSec: hs.Mean(),
			P50Sec:  hs.Quantile(0.50),
			P99Sec:  hs.Quantile(0.99),
		}
	})
	return s
}
