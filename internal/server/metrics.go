package server

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the latency
// histogram, exponentially spaced from 100µs to ~100s.
var latencyBuckets = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1, 3, 10, 30, 100,
}

// histogram is a fixed-bucket latency histogram. Not safe for
// concurrent use on its own; metrics serializes access.
type histogram struct {
	counts []uint64 // len(latencyBuckets)+1, last bucket = overflow
	sum    float64
	n      uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// quantile returns an upper-bound estimate of the q-quantile (the
// bucket boundary at or above it).
func (h *histogram) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(latencyBuckets) {
				return latencyBuckets[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// HistogramSnapshot is the wire form of one latency histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	MeanSec float64           `json:"mean_sec"`
	P50Sec  float64           `json:"p50_sec"`
	P99Sec  float64           `json:"p99_sec"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// metrics aggregates the daemon's operational counters.
type metrics struct {
	mu sync.Mutex

	start time.Time

	requests map[string]uint64 // endpoint label -> count
	errors   map[string]uint64 // endpoint label -> non-2xx count

	simsRun         uint64  // fresh simulations executed
	simsFailed      uint64  // simulations that returned an error
	simsAudited     uint64  // fresh simulations run under the audit oracle
	auditViolations uint64  // total violations those audits reported
	simSeconds      float64 // total simulated time of fresh runs
	busySeconds     float64 // total wall-clock spent simulating (sums across workers)

	queueDepth   int // runnable work items waiting for a worker
	inFlight     int // work items currently executing
	jobsCreated  uint64
	jobsFinished uint64

	perPolicy map[string]*histogram // fresh-run wall latency by policy
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		requests:  map[string]uint64{},
		errors:    map[string]uint64{},
		perPolicy: map[string]*histogram{},
	}
}

func (m *metrics) request(endpoint string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint]++
	if !ok {
		m.errors[endpoint]++
	}
}

func (m *metrics) enqueue(delta int) {
	m.mu.Lock()
	m.queueDepth += delta
	m.mu.Unlock()
}

func (m *metrics) running(delta int) {
	m.mu.Lock()
	m.inFlight += delta
	m.mu.Unlock()
}

func (m *metrics) jobCreated() {
	m.mu.Lock()
	m.jobsCreated++
	m.mu.Unlock()
}

func (m *metrics) jobFinished() {
	m.mu.Lock()
	m.jobsFinished++
	m.mu.Unlock()
}

// auditDone records one audited simulation and its violation count.
func (m *metrics) auditDone(violations int) {
	m.mu.Lock()
	m.simsAudited++
	m.auditViolations += uint64(violations)
	m.mu.Unlock()
}

// simDone records one fresh (non-cached) simulation.
func (m *metrics) simDone(policy string, simTime float64, wall time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.simsRun++
	if err != nil {
		m.simsFailed++
		return
	}
	m.simSeconds += simTime
	m.busySeconds += wall.Seconds()
	h := m.perPolicy[policy]
	if h == nil {
		h = newHistogram()
		m.perPolicy[policy] = h
	}
	h.observe(wall.Seconds())
}

// MetricsSnapshot is the JSON document /metrics serves.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptime_sec"`

	Requests map[string]uint64 `json:"requests"`
	Errors   map[string]uint64 `json:"errors,omitempty"`

	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	Workers    int `json:"workers"`

	SimsRun    uint64  `json:"sims_run"`
	SimsFailed uint64  `json:"sims_failed"`
	SimSeconds float64 `json:"sim_seconds"`
	// SimsAudited counts fresh runs executed under the audit oracle;
	// AuditViolations sums the invariant breaches they reported (any
	// non-zero value here means the engine, a policy, or the oracle
	// itself has a bug worth a reproducer).
	SimsAudited     uint64 `json:"sims_audited"`
	AuditViolations uint64 `json:"audit_violations"`
	// SimSpeedup is simulated seconds per wall-clock second of
	// simulation work (summed across workers): the throughput figure
	// of merit of the daemon.
	SimSpeedup float64 `json:"sim_speedup"`

	CacheEntries int    `json:"cache_entries"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	// CacheHitRate is hits/(hits+misses), 0 when no lookups.
	CacheHitRate float64 `json:"cache_hit_rate"`

	JobsCreated  uint64 `json:"jobs_created"`
	JobsFinished uint64 `json:"jobs_finished"`

	// PolicyLatency maps policy name to its fresh-run wall-clock
	// latency histogram.
	PolicyLatency map[string]HistogramSnapshot `json:"policy_latency,omitempty"`
}

// snapshot captures a consistent view of the counters.
func (m *metrics) snapshot(workers int, cache *resultCache) MetricsSnapshot {
	hits, misses := cache.Stats()
	entries := cache.Len()

	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		UptimeSec:       time.Since(m.start).Seconds(),
		Requests:        map[string]uint64{},
		Errors:          map[string]uint64{},
		QueueDepth:      m.queueDepth,
		InFlight:        m.inFlight,
		Workers:         workers,
		SimsRun:         m.simsRun,
		SimsFailed:      m.simsFailed,
		SimSeconds:      m.simSeconds,
		SimsAudited:     m.simsAudited,
		AuditViolations: m.auditViolations,
		CacheEntries:    entries,
		CacheHits:       hits,
		CacheMisses:     misses,
		JobsCreated:     m.jobsCreated,
		JobsFinished:    m.jobsFinished,
	}
	for k, v := range m.requests {
		s.Requests[k] = v
	}
	for k, v := range m.errors {
		s.Errors[k] = v
	}
	if m.busySeconds > 0 {
		s.SimSpeedup = m.simSeconds / m.busySeconds
	}
	if total := hits + misses; total > 0 {
		s.CacheHitRate = float64(hits) / float64(total)
	}
	if len(m.perPolicy) > 0 {
		s.PolicyLatency = map[string]HistogramSnapshot{}
		for name, h := range m.perPolicy {
			hs := HistogramSnapshot{
				Count:  h.n,
				P50Sec: h.quantile(0.50),
				P99Sec: h.quantile(0.99),
			}
			if h.n > 0 {
				hs.MeanSec = h.sum / float64(h.n)
			}
			s.PolicyLatency[name] = hs
		}
	}
	return s
}
