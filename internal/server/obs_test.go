package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dvsslack/internal/obs"
)

// TestMetricsSnapshotZeroTraffic pins the /metrics JSON document of a
// daemon that has served nothing: every counter is zero and every
// derived ratio guards its zero denominator (0, not NaN — NaN would
// also break JSON encoding).
func TestMetricsSnapshotZeroTraffic(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 3})

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, raw)
	}
	if m.UptimeSec <= 0 {
		t.Errorf("uptime_sec = %v, want > 0", m.UptimeSec)
	}
	if m.Workers != 3 {
		t.Errorf("workers = %d, want 3", m.Workers)
	}
	if len(m.Requests) != 0 || len(m.Errors) != 0 {
		t.Errorf("zero-traffic requests/errors non-empty: %v / %v", m.Requests, m.Errors)
	}
	for name, v := range map[string]float64{
		"queue_depth":      float64(m.QueueDepth),
		"in_flight":        float64(m.InFlight),
		"sims_run":         float64(m.SimsRun),
		"sims_failed":      float64(m.SimsFailed),
		"sim_seconds":      m.SimSeconds,
		"sims_audited":     float64(m.SimsAudited),
		"audit_violations": float64(m.AuditViolations),
		"sim_speedup":      m.SimSpeedup,
		"cache_entries":    float64(m.CacheEntries),
		"cache_hits":       float64(m.CacheHits),
		"cache_misses":     float64(m.CacheMisses),
		"cache_hit_rate":   m.CacheHitRate,
		"jobs_created":     float64(m.JobsCreated),
		"jobs_finished":    float64(m.JobsFinished),
	} {
		if v != 0 {
			t.Errorf("zero-traffic %s = %v, want 0", name, v)
		}
	}
	if m.PolicyLatency != nil {
		t.Errorf("zero-traffic policy_latency = %v, want absent", m.PolicyLatency)
	}
	// The legacy JSON keys are a wire contract (client.Metrics and
	// dashboards decode them); pin their presence byte-wise.
	for _, key := range []string{
		`"uptime_sec"`, `"requests"`, `"queue_depth"`, `"in_flight"`, `"workers"`,
		`"sims_run"`, `"sims_failed"`, `"sim_seconds"`, `"sims_audited"`,
		`"audit_violations"`, `"sim_speedup"`, `"cache_entries"`, `"cache_hits"`,
		`"cache_misses"`, `"cache_hit_rate"`, `"jobs_created"`, `"jobs_finished"`,
	} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Errorf("snapshot JSON missing key %s:\n%s", key, raw)
		}
	}
	if bytes.Contains(raw, []byte(`"errors"`)) || bytes.Contains(raw, []byte(`"policy_latency"`)) {
		t.Errorf("zero-traffic snapshot should omit empty errors/policy_latency:\n%s", raw)
	}
}

// TestMetricsPromExposition drives real traffic and checks the
// Prometheus endpoint covers every metric group of the acceptance
// criteria with a valid exposition.
func TestMetricsPromExposition(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	// One fresh simulation, one cache hit, one audited run, one error.
	decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", quickstartRequest("lpshe")), http.StatusOK)
	decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", quickstartRequest("lpshe")), http.StatusOK)
	audited := quickstartRequest("cc")
	audited.Audit = true
	decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", audited), http.StatusOK)
	bad := quickstartRequest("no-such-policy")
	resp := postJSON(t, hs.URL+"/v1/simulate", bad)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("bogus policy accepted")
	}
	batch := BatchRequest{Runs: []SimRequest{quickstartRequest("static")}}
	info := decodeResp[JobInfo](t, postJSON(t, hs.URL+"/v1/jobs", batch), http.StatusAccepted)
	if info.ID == "" {
		t.Fatal("no job id")
	}
	// Wait the job out so the scrape below sees deterministic counts.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ji := decodeResp[JobInfo](t, mustGet(t, hs.URL+"/v1/jobs/"+info.ID), http.StatusOK)
		if ji.State == JobDone {
			break
		}
		if ji.State == JobFailed || ji.State == JobCancelled {
			t.Fatalf("batch job ended in state %s", ji.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch job stuck in state %s", ji.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(hs.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("/metrics.prom invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`dvsd_http_requests_total{endpoint="simulate"} 4`,
		`dvsd_http_request_errors_total{endpoint="simulate"} 1`,
		`dvsd_http_request_seconds_bucket{endpoint="simulate",le="+Inf"} 4`,
		"dvsd_sims_total 3",
		"dvsd_sims_audited_total 1",
		"dvsd_cache_hits_total 1",
		"dvsd_jobs_created_total 1",
		"dvsd_jobs_finished_total 1",
		`dvsd_policy_run_seconds_count{policy="lpSHE"} 1`,
		`dvsd_policy_run_seconds_count{policy="staticEDF"} 1`,
		`dvsd_policy_run_seconds_count{policy="ccEDF"} 1`,
		"dvsd_uptime_seconds ",
		"dvsd_workers 2",
		"dvsd_queue_depth ",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics.prom missing %q", want)
		}
	}
}

// TestRequestIDAccessLog checks instrumented endpoints hand out
// per-request IDs and log them through the configured logger.
func TestRequestIDAccessLog(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &logBuf}, nil))
	_, hs := newTestServer(t, Config{Workers: 1, Logger: logger})

	resp := postJSON(t, hs.URL+"/v1/simulate", quickstartRequest("cc"))
	id := resp.Header.Get("X-Request-ID")
	resp.Body.Close()
	if id == "" {
		t.Fatal("no X-Request-ID header")
	}
	resp2 := postJSON(t, hs.URL+"/v1/simulate", quickstartRequest("cc"))
	id2 := resp2.Header.Get("X-Request-ID")
	resp2.Body.Close()
	if id2 == id {
		t.Errorf("request IDs repeat: %s", id)
	}
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "id="+id) || !strings.Contains(logged, "endpoint=simulate") {
		t.Errorf("access log missing request id %s:\n%s", id, logged)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestPprofGated checks /debug/pprof/ is present only behind
// Config.EnablePprof.
func TestPprofGated(t *testing.T) {
	_, off := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: status %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof enabled: status %d, body %.80s", resp.StatusCode, body)
	}
}

// TestMetricsConcurrentScrapeAndWrite is the satellite concurrency
// check: parallel simulate traffic (registry writers) races parallel
// /metrics and /metrics.prom scrapers; run under -race by the tier-1
// gate, and every scrape must stay well-formed.
func TestMetricsConcurrentScrapeAndWrite(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			policies := []string{"cc", "static", "lpshe", "dra"}
			for i := 0; i < 10; i++ {
				req := quickstartRequest(policies[(i+w)%len(policies)])
				req.Workload.Seed = uint64(w*100 + i + 11) // defeat the cache: fresh sims keep writers hot
				resp := postJSON(t, hs.URL+"/v1/simulate", req)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(hs.URL + "/metrics.prom")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
					t.Errorf("concurrent scrape invalid: %v", err)
					return
				}
				resp, err = http.Get(hs.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				var m MetricsSnapshot
				if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
					t.Errorf("concurrent /metrics decode: %v", err)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
}
