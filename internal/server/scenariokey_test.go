package server

import (
	"encoding/json"
	"testing"
)

// goldenFixture is a wire-form simulate request frozen byte-for-byte;
// goldenKey is its scenario hash as of the key's introduction.
//
// This pin is the cluster's routing/caching contract: dvsfleet
// consistent-hashes ScenarioKey to pick a worker and the worker's
// result cache indexes by the same value, so an accidental change to
// the canonical form (field added to the canonical struct, JSON tag
// renamed, alias table reshuffled) would silently re-shard every
// fleet and invalidate every cache across a rolling upgrade. If this
// test fails, you have changed the key's semantics: bump deliberately
// and note the cache/ring invalidation in the commit, then refresh
// the constant.
const (
	goldenFixture = `{
  "task_set": {
    "name": "golden",
    "tasks": [
      {"name": "t1", "wcet": 1, "period": 8},
      {"name": "t2", "wcet": 2, "period": 10},
      {"name": "t3", "wcet": 3, "period": 14}
    ]
  },
  "policy": "lpshe",
  "workload": {"kind": "uniform", "lo": 0.5, "hi": 1, "seed": 42}
}`
	goldenKey = "f334725ee52115c90a329e24215870e2a026c0dfd419241c86b4ff9d35026701"
)

func decodeFixture(t *testing.T, data string) SimRequest {
	t.Helper()
	var req SimRequest
	if err := json.Unmarshal([]byte(data), &req); err != nil {
		t.Fatal(err)
	}
	return req
}

// TestScenarioKeyGolden pins the canonical hash of a frozen request.
func TestScenarioKeyGolden(t *testing.T) {
	req := decodeFixture(t, goldenFixture)
	got, err := ScenarioKey(&req)
	if err != nil {
		t.Fatal(err)
	}
	if got != goldenKey {
		t.Fatalf("ScenarioKey(golden fixture) = %s, want %s\n"+
			"The canonical scenario form changed: this re-shards fleet routing and "+
			"invalidates result caches. If intentional, update goldenKey.", got, goldenKey)
	}
}

// TestScenarioKeyCacheKeyAgree pins the shared-key property: the
// result cache and the fleet router can never disagree about request
// identity because CacheKey IS ScenarioKey.
func TestScenarioKeyCacheKeyAgree(t *testing.T) {
	req := decodeFixture(t, goldenFixture)
	ck, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	sk, err := ScenarioKey(&req)
	if err != nil {
		t.Fatal(err)
	}
	if ck != sk {
		t.Fatalf("CacheKey %s != ScenarioKey %s", ck, sk)
	}
}

// TestScenarioKeyAliasCollapse pins alias canonicalization: every
// accepted spelling of one policy hashes to one key (one worker, one
// cache entry), and a genuinely different policy to a different key.
func TestScenarioKeyAliasCollapse(t *testing.T) {
	keyFor := func(policy string) string {
		req := decodeFixture(t, goldenFixture)
		req.Policy = policy
		k, err := ScenarioKey(&req)
		if err != nil {
			t.Fatalf("ScenarioKey(policy=%q): %v", policy, err)
		}
		return k
	}
	for _, alias := range []string{"greedy", "lpshe-greedy", "LPSHE-GREEDY", " greedy "} {
		if a, b := keyFor(alias), keyFor("lpshe-greedy"); a != b {
			t.Fatalf("alias %q hashes to %s, canonical spelling to %s", alias, a, b)
		}
	}
	if keyFor("lpshe") == keyFor("lpshe-greedy") {
		t.Fatal("distinct policies collide on one scenario key")
	}
	if keyFor("edf") != keyFor("nondvs") {
		t.Fatal("edf alias does not collapse onto nondvs")
	}
}

// TestScenarioKeySensitivity ensures the key moves with every field
// that changes simulation semantics.
func TestScenarioKeySensitivity(t *testing.T) {
	base := decodeFixture(t, goldenFixture)
	baseKey, err := ScenarioKey(&base)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*SimRequest){
		"workload seed":  func(r *SimRequest) { r.Workload.Seed = 43 },
		"workload kind":  func(r *SimRequest) { r.Workload.Kind = "bimodal" },
		"horizon":        func(r *SimRequest) { r.Horizon = 1000 },
		"strict":         func(r *SimRequest) { r.Strict = true },
		"audit":          func(r *SimRequest) { r.Audit = true },
		"processor smin": func(r *SimRequest) { r.Processor.SMin = 0.25 },
		"task wcet":      func(r *SimRequest) { r.TaskSet.Tasks[0].WCET = 1.5 },
	}
	for name, mutate := range mutations {
		req := decodeFixture(t, goldenFixture)
		mutate(&req)
		k, err := ScenarioKey(&req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == baseKey {
			t.Fatalf("mutating %s did not change the scenario key", name)
		}
	}
}
