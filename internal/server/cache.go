package server

import (
	"container/list"
	"sync"
)

// resultCache is a thread-safe LRU cache of simulation results keyed
// by the canonical request hash (SimRequest.CacheKey). Identical
// sweeps re-run against the daemon — the common shape of experiment
// iteration — hit memory instead of re-simulating.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key string
	res SimResult
}

// newResultCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, if present, and promotes it
// to most-recently-used.
func (c *resultCache) Get(key string) (SimResult, bool) {
	return c.get(key, true)
}

// Recheck is Get without counting a miss: the worker's second lookup
// after the pre-queue Get already recorded one — a hit here (an
// identical request finished while this one was queued) still counts.
func (c *resultCache) Recheck(key string) (SimResult, bool) {
	return c.get(key, false)
}

func (c *resultCache) get(key string, countMiss bool) (SimResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).res, true
	}
	if countMiss {
		c.misses++
	}
	return SimResult{}, false
}

// Put stores a result, evicting the least-recently-used entry when
// over capacity.
func (c *resultCache) Put(key string, res SimResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns lifetime hit/miss counters.
func (c *resultCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
