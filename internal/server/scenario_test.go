package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"dvsslack/internal/resilience"
	"dvsslack/internal/scenario"
)

const scenarioYAML = `version: 1
name: server-smoke
policies: [lpshe, nondvs]
tasks:
  - name: A
    wcet: 1
    period: 5
  - name: B
    wcet: 2
    period: 10
workload:
  kind: uniform
  lo: 0.3
  hi: 0.9
  seed: 17
assertions:
  - kind: no_deadline_misses
  - kind: audit_clean
  - kind: energy_ratio_max
    policy: lpshe
    reference: nondvs
    max: 0.99
`

func postScenario(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/scenario", "application/yaml", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/scenario: %v", err)
	}
	return resp
}

// localVerdict executes the document in-process; its bytes are the
// reference every transport must reproduce exactly.
func localVerdict(t *testing.T, doc []byte) []byte {
	t.Helper()
	d, errs := scenario.Parse("test", doc)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	v, err := scenario.Execute(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	return v.JSON()
}

// TestScenarioEndpoint pins the byte-identity contract: the endpoint
// answers with exactly the bytes a local execution produces, for both
// YAML and JSON document forms.
func TestScenarioEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	want := localVerdict(t, []byte(scenarioYAML))

	resp := postScenario(t, hs.URL, []byte(scenarioYAML))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("verdict bytes differ from local execution:\n%s\n---\n%s", got, want)
	}

	// The same document as canonical JSON must produce the same
	// verdict bytes.
	d, _ := scenario.Parse("test", []byte(scenarioYAML))
	resp2 := postScenario(t, hs.URL, scenario.DocJSON(d))
	defer resp2.Body.Close()
	got2, _ := io.ReadAll(resp2.Body)
	if !bytes.Equal(got2, want) {
		t.Fatalf("JSON-form verdict differs:\n%s\n---\n%s", got2, want)
	}
}

// TestScenarioValidationErrors pins the all-errors contract on the
// wire: a 400 lists every validation problem, not just the first.
func TestScenarioValidationErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	bad := `version: 9
name: has spaces
policies: [no-such-policy]
tasks:
  - name: A
    wcet: 0
    period: 5
assertions:
  - kind: bogus
`
	resp := postScenario(t, hs.URL, []byte(bad))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if len(eb.Errors) < 5 {
		t.Fatalf("Errors lists %d problems, want all (>= 5): %v", len(eb.Errors), eb.Errors)
	}
	for _, want := range []string{"version must be 1", "spaces", "no-such-policy", "WCET", "unknown assertion kind"} {
		if !strings.Contains(strings.Join(eb.Errors, "\n"), want) {
			t.Errorf("missing %q in %v", want, eb.Errors)
		}
	}
}

// TestScenarioFailingAssertionsStill200 pins that assertion failures
// are verdict content, not transport errors.
func TestScenarioFailingAssertionsStill200(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	failing := strings.Replace(scenarioYAML, "max: 0.99", "max: 0.0001", 1)
	resp := postScenario(t, hs.URL, []byte(failing))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var v scenario.Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Ok {
		t.Fatal("impossible energy bound reported ok")
	}
}

// TestScenarioThroughChaos drives the scenario endpoint through a
// chaos-injecting dvsd with the self-healing client: retries must
// recover the exact local verdict bytes despite injected faults.
func TestScenarioThroughChaos(t *testing.T) {
	cfg := resilience.DefaultChaos(7)
	cfg.DelayP = 0 // keep the test fast; errors/drops are the point
	cfg.ErrorP, cfg.DropP, cfg.TruncateP = 0.25, 0.15, 0.1
	_, hs := newTestServer(t, Config{Workers: 2, Chaos: &cfg})
	want := localVerdict(t, []byte(scenarioYAML))

	// A plain POST may legitimately fail under chaos; the retrying
	// path is exercised via raw re-POSTs here (the client package
	// has its own live test against a clean server).
	var got []byte
	for attempt := 0; attempt < 20; attempt++ {
		resp, err := http.Post(hs.URL+"/v1/scenario", "application/yaml", strings.NewReader(scenarioYAML))
		if err != nil {
			continue // injected drop
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue // injected error or truncation
		}
		got = body
		break
	}
	if got == nil {
		t.Fatal("no successful attempt in 20 tries (chaos probabilities too high?)")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("verdict through chaos differs:\n%s\n---\n%s", got, want)
	}
}

// TestScenarioMetric pins the dvsd_scenarios_total counter.
func TestScenarioMetric(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	resp := postScenario(t, hs.URL, []byte(scenarioYAML))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	mresp, err := http.Get(hs.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	prom, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(prom), "dvsd_scenarios_total 1") {
		t.Fatalf("dvsd_scenarios_total not incremented:\n%s", grepLine(string(prom), "scenarios"))
	}
}

func grepLine(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
