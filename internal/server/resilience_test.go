package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"dvsslack/internal/resilience"
)

// readBody drains and closes a response body.
func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(b)
}

// TestOverloadShedsWith429 is the overload acceptance check: with the
// admission budget exhausted, fresh synchronous simulations are shed
// immediately with 429 + Retry-After (no goroutine pile-up behind the
// queue), cached results keep flowing, and the shed shows up in both
// metric surfaces.
func TestOverloadShedsWith429(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, AdmitLimit: 2})

	// Warm the cache so the cached-bypass path can be asserted below.
	warm := quickstartRequest("static")
	decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", warm), http.StatusOK)

	// Exhaust the admission budget directly (deterministic, no timing
	// games with slow simulations).
	for i := 0; i < 2; i++ {
		if err := s.admit.TryAcquire(); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	defer func() {
		s.admit.Release()
		s.admit.Release()
	}()

	// A fresh simulation must be shed immediately.
	fresh := quickstartRequest("cc")
	fresh.Workload.Seed = 99
	start := time.Now()
	resp := postJSON(t, hs.URL+"/v1/simulate", fresh)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded status = %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed 429 is missing the Retry-After header")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("shed took %v, want an immediate rejection", d)
	}

	// The memoized request still gets served while shedding.
	res := decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", warm), http.StatusOK)
	if !res.Cached {
		t.Fatal("cached result not served during overload")
	}

	// Both metric surfaces record the shed; the panic counter is
	// exported even at zero so dashboards never miss the series.
	if snap := s.met.snapshot(s.workers, s.cache); snap.Shed != 1 {
		t.Fatalf("snapshot shed = %d, want 1", snap.Shed)
	}
	resp, err := http.Get(hs.URL + "/metrics.prom")
	if err != nil {
		t.Fatalf("GET /metrics.prom: %v", err)
	}
	prom := readBody(t, resp)
	for _, want := range []string{"dvsd_shed_total 1", "dvsd_panics_total 0"} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics.prom missing %q", want)
		}
	}

	// Releasing capacity re-admits fresh work.
	s.admit.Release()
	decodeResp[SimResult](t, postJSON(t, hs.URL+"/v1/simulate", fresh), http.StatusOK)
	if err := s.admit.TryAcquire(); err != nil { // restore for the deferred releases
		t.Fatalf("re-acquire: %v", err)
	}
}

// TestRequestDeadline covers per-request deadline enforcement: an
// impossible client deadline turns into a retryable 503, a malformed
// one into a 400, and the timeout counter records the expiry.
func TestRequestDeadline(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1})

	post := func(deadline string, seed uint64) *http.Response {
		sr := quickstartRequest("static")
		sr.Workload.Seed = seed // distinct seeds dodge the result cache
		b, err := json.Marshal(sr)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/simulate", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("new request: %v", err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Request-Deadline", deadline)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		return resp
	}

	resp := post("1ns", 1)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline status = %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline 503 is missing the Retry-After header")
	}
	if n := s.met.snapshot(s.workers, s.cache).RequestTimeouts; n != 1 {
		t.Fatalf("request_timeouts = %d, want 1", n)
	}

	resp = post("not-a-duration", 2)
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid deadline status = %d, want 400", resp.StatusCode)
	}

	// A generous deadline changes nothing.
	resp = post("30s", 3)
	readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generous deadline status = %d, want 200", resp.StatusCode)
	}
}

// TestReadyz checks the readiness states: ready, saturated (admission
// near capacity), and draining.
func TestReadyz(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1, AdmitLimit: 2})

	get := func() (*http.Response, string) {
		resp, err := http.Get(hs.URL + "/readyz")
		if err != nil {
			t.Fatalf("GET /readyz: %v", err)
		}
		return resp, readBody(t, resp)
	}

	if resp, body := get(); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("idle readyz = %d %q, want 200 ready", resp.StatusCode, body)
	}

	for i := 0; i < 2; i++ {
		if err := s.admit.TryAcquire(); err != nil {
			t.Fatalf("acquire: %v", err)
		}
	}
	resp, body := get()
	s.admit.Release()
	s.admit.Release()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "saturated") {
		t.Fatalf("saturated readyz = %d %q, want 503 saturated", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated readyz is missing the Retry-After header")
	}

	s.draining.Store(true)
	defer s.draining.Store(false)
	if resp, body := get(); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz = %d %q, want 503 draining", resp.StatusCode, body)
	}
}

// TestChaosServerDeterministic runs the same request sequence against
// two servers configured with the same chaos seed and demands the
// identical injected-fault sequence; a third server with a different
// seed must diverge. Probes stay exempt.
func TestChaosServerDeterministic(t *testing.T) {
	faultTrace := func(seed uint64) []resilience.Fault {
		var mu sync.Mutex
		var tr []resilience.Fault
		cfg := resilience.DefaultChaos(seed)
		cfg.MaxDelay = time.Millisecond
		cfg.OnInject = func(f resilience.Fault) {
			mu.Lock()
			tr = append(tr, f)
			mu.Unlock()
		}
		_, hs := newTestServer(t, Config{Workers: 1, Chaos: &cfg})
		for i := 0; i < 40; i++ {
			resp, err := http.Get(hs.URL + "/v1/policies")
			if err != nil {
				continue // injected drop: connection died, that's the point
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		// Exempt endpoint: never faulted, regardless of seed.
		for i := 0; i < 5; i++ {
			resp, err := http.Get(hs.URL + "/healthz")
			if err != nil {
				t.Fatalf("healthz under chaos: %v", err)
			}
			readBody(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("healthz under chaos = %d, want 200", resp.StatusCode)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		return append([]resilience.Fault(nil), tr...)
	}

	a, b, c := faultTrace(42), faultTrace(42), faultTrace(1042)
	if len(a) == 0 {
		t.Fatal("seed 42 injected no faults over 40 requests")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, fault %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault sequence")
	}
}

// --- SSE slow-consumer handling ---

// fakeSink is a test sseSink: it records writes and can be armed to
// fail after a given number of sends, emulating a consumer whose
// write deadline expires.
type fakeSink struct {
	mu        sync.Mutex
	writes    []string
	deadlines int
	failAfter int // fail writes once this many succeeded; <0 never
}

func (f *fakeSink) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAfter >= 0 && len(f.writes) >= f.failAfter {
		return 0, os.ErrDeadlineExceeded
	}
	f.writes = append(f.writes, string(p))
	return len(p), nil
}

func (f *fakeSink) SetWriteDeadline(time.Time) error {
	f.mu.Lock()
	f.deadlines++
	f.mu.Unlock()
	return nil
}

func (f *fakeSink) Flush() error { return nil }

func (f *fakeSink) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.writes)
}

func newStreamJob(lost *int) *job {
	j := &job{
		id:       "jtest",
		state:    JobRunning,
		runs:     make([]SimRequest, 3),
		subs:     map[chan JobEvent]struct{}{},
		finished: make(chan struct{}),
	}
	if lost != nil {
		j.onLost = func() { *lost++ }
	}
	return j
}

// TestStreamJobDeliversTerminalEvent: a healthy consumer gets the
// snapshot, the progress events, and the terminal "end" even when the
// job finishes while events are still buffered.
func TestStreamJobDeliversTerminalEvent(t *testing.T) {
	j := newStreamJob(nil)
	ch, snapshot, unsub := j.subscribe()
	defer unsub()

	j.mu.Lock()
	j.publish(JobEvent{Type: "progress", State: JobRunning, Total: 3, Done: 1})
	j.mu.Unlock()
	j.finish(JobDone)

	sink := &fakeSink{failAfter: -1}
	if err := streamJob(context.Background(), sink, j, snapshot, ch, time.Second); err != nil {
		t.Fatalf("streamJob: %v", err)
	}
	if sink.count() != 3 { // snapshot + progress + end
		t.Fatalf("writes = %d (%q), want 3", sink.count(), sink.writes)
	}
	last := sink.writes[len(sink.writes)-1]
	if !strings.Contains(last, `"type":"end"`) || !strings.Contains(last, JobDone) {
		t.Fatalf("terminal event = %q, want an end/done event", last)
	}
	if sink.deadlines != 3 {
		t.Fatalf("deadline arms = %d, want one per write", sink.deadlines)
	}
}

// TestStreamJobDropsSlowConsumer: when a write fails (deadline
// expired, dead connection), streamJob returns the error promptly
// instead of parking forever, and the broadcaster never notices.
func TestStreamJobDropsSlowConsumer(t *testing.T) {
	j := newStreamJob(nil)
	ch, snapshot, unsub := j.subscribe()
	defer unsub()

	j.mu.Lock()
	j.publish(JobEvent{Type: "progress", State: JobRunning, Total: 3, Done: 1})
	j.mu.Unlock()

	sink := &fakeSink{failAfter: 1} // snapshot succeeds, next write dies
	done := make(chan error, 1)
	go func() { done <- streamJob(context.Background(), sink, j, snapshot, ch, 10*time.Millisecond) }()
	select {
	case err := <-done:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("streamJob error = %v, want deadline-exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("streamJob did not drop the dead consumer")
	}

	// The broadcaster side stays non-blocking regardless: publishing
	// far more events than the subscriber buffer holds returns
	// immediately, counting the overflow.
	lost := 0
	j2 := newStreamJob(&lost)
	_, _, unsub2 := j2.subscribe()
	defer unsub2()
	j2.mu.Lock()
	start := time.Now()
	for i := 0; i < 200; i++ {
		j2.publish(JobEvent{Type: "progress", State: JobRunning, Done: i})
	}
	j2.mu.Unlock()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("publishing with a stuck subscriber took %v", d)
	}
	if lost != 200-64 { // buffer holds 64, the rest are dropped and counted
		t.Fatalf("lost events = %d, want %d", lost, 200-64)
	}
}

// TestShutdownUnderLoad drains a daemon that has an in-flight
// synchronous request and an active batch job while chaos injects
// delays, and demands a clean drain: the sync caller gets its result,
// the job completes, and nothing is cancelled.
func TestShutdownUnderLoad(t *testing.T) {
	cfg := resilience.ChaosConfig{Seed: 7, DelayP: 0.5, MaxDelay: 5 * time.Millisecond}
	s := New(Config{Workers: 2, Chaos: &cfg})
	hs := newHTTPServer(t, s)

	var batch BatchRequest
	for i := 0; i < 8; i++ {
		r := quickstartRequest("dra")
		r.Workload.Seed = uint64(100 + i)
		batch.Runs = append(batch.Runs, r)
	}
	info := decodeResp[JobInfo](t, postJSON(t, hs+"/v1/jobs", batch), http.StatusAccepted)

	syncDone := make(chan int, 1)
	go func() {
		r := quickstartRequest("la")
		r.Workload.Seed = 4242
		b, _ := json.Marshal(r)
		resp, err := http.Post(hs+"/v1/simulate", "application/json", bytes.NewReader(b))
		if err != nil {
			syncDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		syncDone <- resp.StatusCode
	}()

	// Wait until the sync request is admitted (or already finished)
	// before starting the drain, so it is genuinely in flight; the
	// extra pause lets it get from admission into the pool queue,
	// which is where the drain protocol picks it up.
	for deadline := time.Now().Add(10 * time.Second); s.admit.InUse() == 0 && len(syncDone) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("sync request never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown under load: %v", err)
	}

	if code := <-syncDone; code != http.StatusOK {
		t.Fatalf("in-flight sync request finished with %d, want 200", code)
	}
	j, ok := s.jobs.Get(info.ID)
	if !ok {
		t.Fatal("job vanished during drain")
	}
	if got := j.info(false); got.State != JobDone || got.Done != 8 {
		t.Fatalf("after drain: state=%s done=%d, want done/8", got.State, got.Done)
	}
}

// TestShutdownHardCancelsStragglers exercises the other half of the
// drain contract: when the drain deadline expires with a job still
// running, Shutdown returns the deadline error and the straggler is
// cancelled rather than leaked.
func TestShutdownHardCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1})
	hs := newHTTPServer(t, s)

	// A job whose runs are numerous enough to outlive an immediate
	// drain deadline on one worker.
	var batch BatchRequest
	for i := 0; i < 64; i++ {
		r := quickstartRequest("lpshe")
		r.Workload.Seed = uint64(500 + i)
		batch.Runs = append(batch.Runs, r)
	}
	info := decodeResp[JobInfo](t, postJSON(t, hs+"/v1/jobs", batch), http.StatusAccepted)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-expired drain context: straight to hard cancel
	if err := s.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown error = %v, want context.Canceled", err)
	}

	j, ok := s.jobs.Get(info.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	select {
	case <-j.finished:
	case <-time.After(10 * time.Second):
		t.Fatal("straggler job was not cancelled by the hard-cancel path")
	}
	if got := j.info(false); got.State == JobRunning || got.State == JobQueued {
		t.Fatalf("straggler state = %s, want a terminal state", got.State)
	}
}

// newHTTPServer wires a Server into an httptest listener without the
// automatic drained shutdown of newTestServer (these tests drive
// Shutdown themselves).
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}
