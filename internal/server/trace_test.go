package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"dvsslack/internal/obs"
)

// postSimulateHeaders posts a simulate request with extra headers and
// returns the response.
func postSimulateHeaders(t *testing.T, url string, req SimRequest, hdr map[string]string) *http.Response {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/simulate", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestRequestIDAdoption pins the fleet-correlation contract: a valid
// inbound X-Request-ID (a coordinator hop) is adopted and echoed, an
// invalid one is replaced with a freshly minted valid ID.
func TestRequestIDAdoption(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})

	resp := postSimulateHeaders(t, hs.URL, quickstartRequest("lpshe"),
		map[string]string{"X-Request-ID": "hop-42.test"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "hop-42.test" {
		t.Errorf("valid inbound request ID not adopted: got %q, want hop-42.test", got)
	}

	resp = postSimulateHeaders(t, hs.URL, quickstartRequest("lpshe"),
		map[string]string{"X-Request-ID": "bad id with spaces"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == "bad id with spaces" || !obs.ValidRequestID(got) {
		t.Errorf("invalid inbound ID handled badly: response carries %q", got)
	}
}

// TestSimulateTracingInert is the observability ground rule: turning
// tracing and the flight recorder on or off must not change a single
// byte of simulation output. Scenario verdicts are canonical bytes, so
// they make the comparison exact.
func TestSimulateTracingInert(t *testing.T) {
	want := localVerdict(t, []byte(scenarioYAML))

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Workers: 2, FlightRecorder: -1}},
		{"flight", Config{Workers: 2}},
		{"traced", Config{Workers: 2, Tracer: obs.NewTracer("dvsd", 256)}},
	} {
		_, hs := newTestServer(t, tc.cfg)
		resp := postScenario(t, hs.URL, []byte(scenarioYAML))
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: verdict bytes differ from local execution", tc.name)
		}
	}
}

// TestDebugEndpointsDisabled checks the debug surfaces 404 when their
// feature is off, rather than serving empty documents that look like
// healthy-but-idle instrumentation.
func TestDebugEndpointsDisabled(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, FlightRecorder: -1})
	for _, path := range []string{"/debug/trace", "/debug/flightrecorder", "/debug/flightrecorder.trace"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with feature disabled = %d, want 404", path, resp.StatusCode)
		}
	}

	_, hs2 := newTestServer(t, Config{Workers: 1, Tracer: obs.NewTracer("dvsd", 16)})
	for _, path := range []string{"/debug/trace", "/debug/flightrecorder", "/debug/flightrecorder.trace"} {
		resp, err := http.Get(hs2.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with features enabled = %d, want 200", path, resp.StatusCode)
		}
	}
}

// traceDump fetches and decodes GET /debug/trace.
func traceDump(t *testing.T, url string) obs.TraceDump {
	t.Helper()
	resp, err := http.Get(url + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d obs.TraceDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("decode trace dump: %v", err)
	}
	return d
}

// TestServerTraceTree drives one traced simulate request and checks
// the daemon's span ring holds the full tree under the inbound trace:
// handler span continuing the client's context, the admission span,
// the pool's sim.run span, and at least one engine phase span — every
// parent resolvable within the dump.
func TestServerTraceTree(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, Tracer: obs.NewTracer("dvsd", 256)})

	inbound := obs.SpanContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	reqID := "trace-tree-req"
	resp := postSimulateHeaders(t, hs.URL, quickstartRequest("lpshe"), map[string]string{
		"X-Request-ID":        reqID,
		obs.TraceparentHeader: inbound.Traceparent(),
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d", resp.StatusCode)
	}

	d := traceDump(t, hs.URL)
	byName := map[string]obs.SpanRecord{}
	byID := map[string]obs.SpanRecord{}
	var enginePhases []string
	for _, s := range d.Spans {
		if s.TraceID != inbound.TraceID.String() {
			t.Errorf("span %s on trace %s, want %s (one request, one trace)", s.Name, s.TraceID, inbound.TraceID)
		}
		byID[s.SpanID] = s
		if strings.HasPrefix(s.Name, "engine.") {
			enginePhases = append(enginePhases, s.Name)
			continue
		}
		byName[s.Name] = s
	}

	handler, ok := byName["dvsd.simulate"]
	if !ok {
		t.Fatalf("no dvsd.simulate span in dump (%d spans)", len(d.Spans))
	}
	if handler.ParentID != inbound.SpanID.String() {
		t.Errorf("handler span parent = %s, want the inbound span %s", handler.ParentID, inbound.SpanID)
	}
	if handler.Attrs["request_id"] != reqID {
		t.Errorf("handler span request_id = %q, want %q", handler.Attrs["request_id"], reqID)
	}
	if handler.Attrs["status"] != "200" {
		t.Errorf("handler span status = %q, want 200", handler.Attrs["status"])
	}

	admit, ok := byName["dvsd.admit"]
	if !ok {
		t.Fatal("no dvsd.admit span in dump")
	}
	if admit.ParentID != handler.SpanID {
		t.Errorf("admit span parent = %s, want the handler span %s", admit.ParentID, handler.SpanID)
	}

	run, ok := byName["sim.run"]
	if !ok {
		t.Fatal("no sim.run span in dump")
	}
	if run.ParentID != handler.SpanID {
		t.Errorf("sim.run parent = %s, want the handler span %s", run.ParentID, handler.SpanID)
	}
	if run.Attrs["policy"] != "lpSHE" {
		t.Errorf("sim.run policy attr = %q", run.Attrs["policy"])
	}

	if len(enginePhases) == 0 {
		t.Fatal("no engine phase spans in dump")
	}
	for _, s := range d.Spans {
		if !strings.HasPrefix(s.Name, "engine.") {
			continue
		}
		if s.ParentID != run.SpanID {
			t.Errorf("%s parent = %s, want the sim.run span %s", s.Name, s.ParentID, run.SpanID)
		}
	}

	// Every parent that isn't the synthetic inbound root must resolve
	// to another span in the dump — no orphans in the tree.
	for _, s := range d.Spans {
		if s.ParentID == "" || s.ParentID == inbound.SpanID.String() {
			continue
		}
		if _, ok := byID[s.ParentID]; !ok {
			t.Errorf("span %s has unresolvable parent %s", s.Name, s.ParentID)
		}
	}
}

// TestFlightRecorderConcurrentAccess hammers the flight recorder from
// three sides at once — simulations writing decisions, snapshot reads,
// and Chrome-trace exports — so `go test -race` proves the ring's
// locking. Distinct seeds defeat the result cache, keeping every
// request a fresh run that dispatches through the recorder.
func TestFlightRecorderConcurrentAccess(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4, FlightRecorder: 64})

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				req := quickstartRequest("lpshe")
				req.Workload.Seed = uint64(1 + w*100 + i)
				resp := postJSON(t, hs.URL+"/v1/simulate", req)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d: simulate status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for _, path := range []string{"/debug/flightrecorder", "/debug/flightrecorder.trace"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get(hs.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s status %d", path, resp.StatusCode)
					return
				}
				if !json.Valid(body) {
					t.Errorf("GET %s returned invalid JSON under concurrency", path)
					return
				}
			}
		}(path)
	}
	wg.Wait()

	resp, err := http.Get(hs.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Total   uint64            `json:"total"`
		Paths   map[string]uint64 `json:"paths"`
		Records []json.RawMessage `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Total == 0 || len(snap.Records) == 0 {
		t.Fatalf("flight recorder empty after %d simulations: %+v", 15, snap)
	}
	var sum uint64
	for _, n := range snap.Paths {
		sum += n
	}
	if sum != snap.Total {
		t.Errorf("path counts sum %d != total %d", sum, snap.Total)
	}
}
