package server

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"dvsslack/internal/audit"
	"dvsslack/internal/obs"
	"dvsslack/internal/sim"
)

// ErrDraining is returned for work submitted after shutdown began.
var ErrDraining = errors.New("server: draining, not accepting new work")

// work is one queued simulation.
type work struct {
	req *SimRequest
	key string // cache key; "" disables caching for this run
	// sc is the submitting request's span context; the executing
	// worker parents its sim.run span under it (zero = no trace).
	sc obs.SpanContext
	// done receives exactly one outcome. Buffered so a worker never
	// blocks on a caller that gave up.
	done chan outcome
}

type outcome struct {
	res SimResult
	err error
}

// pool executes simulations on a fixed set of worker goroutines fed
// by a bounded queue. Each run constructs its own policy, processor,
// and workload values from the wire request (SimRequest.Config), so
// workers share no mutable simulation state — the pool is race-clean
// by construction rather than by locking.
type pool struct {
	queue  chan *work
	cache  *resultCache
	met    *metrics
	tracer *obs.Tracer
	flight *obs.FlightRecorder

	mu        sync.Mutex
	closed    bool
	producers sync.WaitGroup // callers inside a queue send
	workers   int
	depth     int // queue capacity
	workerWG  sync.WaitGroup
	closeOnce sync.Once
}

// newPool starts workers goroutines over a queue of queueDepth slots.
func newPool(workers, queueDepth int, cache *resultCache, met *metrics, tracer *obs.Tracer, flight *obs.FlightRecorder) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < workers {
		queueDepth = workers * 64
	}
	p := &pool{
		queue:   make(chan *work, queueDepth),
		cache:   cache,
		met:     met,
		tracer:  tracer,
		flight:  flight,
		workers: workers,
		depth:   queueDepth,
	}
	p.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.workerWG.Done()
	for w := range p.queue {
		p.met.enqueue(-1)
		p.met.running(1)
		w.done <- p.execute(w)
		p.met.running(-1)
	}
}

// execute runs one work item, consulting the cache on both sides of
// the simulation (a second identical request may have been queued
// before the first finished).
func (p *pool) execute(w *work) outcome {
	if w.key != "" {
		if res, ok := p.cache.Recheck(w.key); ok {
			res.Cached = true
			res.WallNanos = 0
			return outcome{res: res}
		}
	}
	cfg, err := w.req.Config()
	if err != nil {
		return outcome{err: err}
	}
	var aud *audit.Auditor
	if w.req.Audit {
		aud = audit.New(audit.Options{TaskSet: cfg.TaskSet, Processor: cfg.Processor})
		cfg.Observer = aud
	}
	// Decision flight recorder: chained after the auditor when both
	// are on. Observers are passive (they only read engine state the
	// callbacks already expose), so attaching one cannot change the
	// simulation's bytes — pinned by TestSimulateTracingInert.
	var fo *obs.FlightObserver
	if p.flight != nil {
		fo = p.flight.Observer(cfg.Policy)
		cfg.Observer = obs.Multi(cfg.Observer, fo)
	}
	start := time.Now()
	simRes, err := sim.Run(cfg)
	wall := time.Since(start)
	p.met.simDone(cfg.Policy.Name(), simRes.Time, wall, err)
	p.emitSpans(w, cfg.Policy.Name(), fo, start, wall)
	if err != nil {
		return outcome{err: err}
	}
	res := ResultFromSim(simRes)
	res.WallNanos = wall.Nanoseconds()
	if aud != nil {
		rep := aud.Finish(simRes)
		res.Audited = true
		res.Violations = rep.Violations
		res.AuditTruncated = rep.Truncated
		p.met.auditDone(len(rep.Violations))
	}
	if w.key != "" {
		p.cache.Put(w.key, res)
	}
	return outcome{res: res}
}

// emitSpans records the run and engine-phase spans under the
// submitting request's span (no-op without a tracer or a traced
// request). Phase spans carry the per-path decision counts the flight
// observer accumulated, so the trace tree shows how much of the run
// the staircase / certificate fast paths absorbed.
func (p *pool) emitSpans(w *work, policy string, fo *obs.FlightObserver, start time.Time, wall time.Duration) {
	if p.tracer == nil || !w.sc.Valid() {
		return
	}
	attrs := map[string]string{"policy": policy}
	if fo != nil {
		attrs["decisions"] = strconv.FormatUint(fo.Dispatches, 10)
	}
	runSC := p.tracer.Emit(w.sc, "sim.run", start, wall, attrs)
	if fo == nil {
		return
	}
	for path := sim.PathUnknown; path <= sim.PathAdaptiveCap; path++ {
		if n := fo.PathCount(path); n > 0 {
			p.tracer.Emit(runSC, "engine."+path.String(), start, wall,
				map[string]string{"decisions": strconv.FormatUint(n, 10)})
		}
	}
}

// Depth returns the queue capacity (sizes the admission budget).
func (p *pool) Depth() int { return p.depth }

// Lookup serves req from the result cache without touching the
// queue. Admission control consults it first so an overloaded daemon
// keeps answering cached requests while shedding fresh simulations.
func (p *pool) Lookup(req *SimRequest) (SimResult, bool) {
	key, err := req.CacheKey()
	if err != nil || key == "" {
		return SimResult{}, false
	}
	res, ok := p.cache.Get(key)
	if !ok {
		return SimResult{}, false
	}
	res.Cached = true
	res.WallNanos = 0
	return res, true
}

// Do runs one request through the pool and waits for its outcome.
// The fast path serves cache hits without touching the queue. ctx
// cancellation abandons the wait (an already-queued run still
// executes and populates the cache).
func (p *pool) Do(ctx context.Context, req *SimRequest) (SimResult, error) {
	key, err := req.CacheKey()
	if err != nil {
		key = "" // uncacheable, still runnable
	}
	if key != "" {
		if res, ok := p.cache.Get(key); ok {
			res.Cached = true
			res.WallNanos = 0
			return res, nil
		}
	}
	w := &work{req: req, key: key, done: make(chan outcome, 1)}
	if sc, ok := obs.SpanContextFromContext(ctx); ok {
		w.sc = sc
	}

	// Register as a producer before sending: Drain closes the queue
	// only after every registered producer has finished its send, so
	// a blocked send can never race the close.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return SimResult{}, ErrDraining
	}
	p.producers.Add(1)
	p.mu.Unlock()

	enqueued := false
	select {
	case p.queue <- w:
		p.met.enqueue(1)
		enqueued = true
	case <-ctx.Done():
	}
	p.producers.Done()
	if !enqueued {
		return SimResult{}, ctx.Err()
	}

	select {
	case out := <-w.done:
		return out.res, out.err
	case <-ctx.Done():
		return SimResult{}, ctx.Err()
	}
}

// Drain stops accepting work and waits for queued and in-flight runs
// to finish, up to ctx's deadline. Safe to call more than once.
func (p *pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.closeOnce.Do(func() {
			// Workers keep consuming, so pending producer sends
			// complete and the wait terminates.
			p.producers.Wait()
			close(p.queue)
		})
		p.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
