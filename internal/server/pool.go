package server

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dvsslack/internal/audit"
	"dvsslack/internal/obs"
	"dvsslack/internal/sim"
	"dvsslack/internal/snapshot"
)

// ErrDraining is returned for work submitted after shutdown began.
var ErrDraining = errors.New("server: draining, not accepting new work")

// errRunSettled answers a live-capture request that arrived after the
// run finished (its outcome, not a snapshot, is the record then).
var errRunSettled = errors.New("server: run already settled")

// captureResult is one answered snapshot request: the framed envelope
// or the reason there is none.
type captureResult struct {
	data []byte
	err  error
}

// runControl is the handle the job layer holds on one in-flight run.
// The executing worker polls it at every step boundary — the only
// points where the engine state is snapshottable — so a pause or a
// live capture lands within one scheduling event of the request, with
// the hot path paying two atomic loads per step.
type runControl struct {
	pause atomic.Bool  // checkpoint-and-stop at the next boundary
	want  atomic.Int32 // pending live-capture requests

	mu      sync.Mutex
	settled bool
	final   captureResult // answer for captures after settling
	waiters []chan captureResult
}

// Pause asks the worker to snapshot and stop at its next boundary.
func (c *runControl) Pause() { c.pause.Store(true) }

// Capture asks for a snapshot without stopping the run. The returned
// channel receives exactly one result; a run that settles (finishes
// or pauses) before the next boundary answers with its final state —
// errRunSettled for a completed run, the pause envelope for a paused
// one.
func (c *runControl) Capture() <-chan captureResult {
	ch := make(chan captureResult, 1)
	c.mu.Lock()
	if c.settled {
		final := c.final
		c.mu.Unlock()
		ch <- final
		return ch
	}
	c.want.Add(1)
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	return ch
}

// answer delivers one live capture to every pending waiter (worker
// side). want and waiters move together under mu, so the worker's
// lock-free want check can overshoot by at most one harmless capture.
func (c *runControl) answer(data []byte, err error) {
	c.mu.Lock()
	ws := c.waiters
	c.waiters = nil
	c.want.Add(-int32(len(ws)))
	c.mu.Unlock()
	for _, ch := range ws {
		ch <- captureResult{data: data, err: err}
	}
}

// settle records the run's final capture answer (worker side) and
// releases anyone still waiting.
func (c *runControl) settle(data []byte, err error) {
	c.mu.Lock()
	if c.settled {
		c.mu.Unlock()
		return
	}
	c.settled = true
	c.final = captureResult{data: data, err: err}
	ws := c.waiters
	c.waiters = nil
	c.mu.Unlock()
	for _, ch := range ws {
		ch <- c.final
	}
}

// work is one queued simulation.
type work struct {
	req *SimRequest
	key string // cache + scenario key; "" disables caching for this run
	// snapshot, when non-nil, resumes the run from a checkpoint
	// envelope instead of starting fresh.
	snapshot []byte
	// ctl, when non-nil, lets the job layer pause or live-capture the
	// run at step boundaries.
	ctl *runControl
	// sc is the submitting request's span context; the executing
	// worker parents its sim.run span under it (zero = no trace).
	sc obs.SpanContext
	// done receives exactly one outcome. Buffered so a worker never
	// blocks on a caller that gave up.
	done chan outcome
}

type outcome struct {
	res SimResult
	// ckpt is the pause envelope when the run was checkpointed instead
	// of finished (res is then meaningless).
	ckpt []byte
	err  error
}

// settle forwards a terminal answer to the run's control (if any), so
// capture waiters never hang on a run that exits without stepping.
func (w *work) settle(data []byte, err error) {
	if w.ctl != nil {
		w.ctl.settle(data, err)
	}
}

// pool executes simulations on a fixed set of worker goroutines fed
// by a bounded queue. Each run constructs its own policy, processor,
// and workload values from the wire request (SimRequest.Config), so
// workers share no mutable simulation state — the pool is race-clean
// by construction rather than by locking.
type pool struct {
	queue  chan *work
	cache  *resultCache
	met    *metrics
	tracer *obs.Tracer
	flight *obs.FlightRecorder

	mu        sync.Mutex
	closed    bool
	producers sync.WaitGroup // callers inside a queue send
	workers   int
	depth     int // queue capacity
	workerWG  sync.WaitGroup
	closeOnce sync.Once
}

// newPool starts workers goroutines over a queue of queueDepth slots.
func newPool(workers, queueDepth int, cache *resultCache, met *metrics, tracer *obs.Tracer, flight *obs.FlightRecorder) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < workers {
		queueDepth = workers * 64
	}
	p := &pool{
		queue:   make(chan *work, queueDepth),
		cache:   cache,
		met:     met,
		tracer:  tracer,
		flight:  flight,
		workers: workers,
		depth:   queueDepth,
	}
	p.workerWG.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.workerWG.Done()
	for w := range p.queue {
		p.met.enqueue(-1)
		p.met.running(1)
		w.done <- p.execute(w)
		p.met.running(-1)
	}
}

// execute runs one work item, consulting the cache on both sides of
// the simulation (a second identical request may have been queued
// before the first finished). Runs resuming from a snapshot skip the
// cache recheck — resume semantics, not memoization, are what the
// caller asked for. The engine is driven stepwise so a runControl can
// pause or live-capture the run at any step boundary.
func (p *pool) execute(w *work) outcome {
	if w.key != "" && w.snapshot == nil {
		if res, ok := p.cache.Recheck(w.key); ok {
			res.Cached = true
			res.WallNanos = 0
			w.settle(nil, errRunSettled)
			return outcome{res: res}
		}
	}
	cfg, err := w.req.Config()
	if err != nil {
		w.settle(nil, err)
		return outcome{err: err}
	}
	var aud *audit.Auditor
	if w.req.Audit {
		aud = audit.New(audit.Options{TaskSet: cfg.TaskSet, Processor: cfg.Processor})
		cfg.Observer = aud
	}
	// Decision flight recorder: chained after the auditor when both
	// are on. Observers are passive (they only read engine state the
	// callbacks already expose), so attaching one cannot change the
	// simulation's bytes — pinned by TestSimulateTracingInert.
	var fo *obs.FlightObserver
	if p.flight != nil {
		fo = p.flight.Observer(cfg.Policy)
		cfg.Observer = obs.Multi(cfg.Observer, fo)
	}
	start := time.Now()
	var e *sim.Engine
	if w.snapshot != nil {
		e, err = snapshot.Restore(w.snapshot, w.key, cfg, aud)
	} else {
		e, err = sim.NewEngine(cfg)
	}
	if err != nil {
		w.settle(nil, err)
		return outcome{err: err}
	}
	for e.Step() {
		if w.ctl == nil {
			continue
		}
		if w.ctl.pause.Load() {
			data, cerr := snapshot.Capture(w.key, e, aud)
			w.ctl.settle(data, cerr)
			if cerr != nil {
				return outcome{err: cerr}
			}
			return outcome{ckpt: data}
		}
		if w.ctl.want.Load() > 0 {
			data, cerr := snapshot.Capture(w.key, e, aud)
			w.ctl.answer(data, cerr)
		}
	}
	simRes, err := e.Finish()
	wall := time.Since(start)
	w.settle(nil, errRunSettled)
	p.met.simDone(cfg.Policy.Name(), simRes.Time, wall, err)
	p.emitSpans(w, cfg.Policy.Name(), fo, start, wall)
	if err != nil {
		return outcome{err: err}
	}
	res := ResultFromSim(simRes)
	res.WallNanos = wall.Nanoseconds()
	if aud != nil {
		rep := aud.Finish(simRes)
		res.Audited = true
		res.Violations = rep.Violations
		res.AuditTruncated = rep.Truncated
		p.met.auditDone(len(rep.Violations))
	}
	if w.key != "" {
		p.cache.Put(w.key, res)
	}
	return outcome{res: res}
}

// emitSpans records the run and engine-phase spans under the
// submitting request's span (no-op without a tracer or a traced
// request). Phase spans carry the per-path decision counts the flight
// observer accumulated, so the trace tree shows how much of the run
// the staircase / certificate fast paths absorbed.
func (p *pool) emitSpans(w *work, policy string, fo *obs.FlightObserver, start time.Time, wall time.Duration) {
	if p.tracer == nil || !w.sc.Valid() {
		return
	}
	attrs := map[string]string{"policy": policy}
	if fo != nil {
		attrs["decisions"] = strconv.FormatUint(fo.Dispatches, 10)
	}
	runSC := p.tracer.Emit(w.sc, "sim.run", start, wall, attrs)
	if fo == nil {
		return
	}
	for path := sim.PathUnknown; path <= sim.PathAdaptiveCap; path++ {
		if n := fo.PathCount(path); n > 0 {
			p.tracer.Emit(runSC, "engine."+path.String(), start, wall,
				map[string]string{"decisions": strconv.FormatUint(n, 10)})
		}
	}
}

// Depth returns the queue capacity (sizes the admission budget).
func (p *pool) Depth() int { return p.depth }

// Lookup serves req from the result cache without touching the
// queue. Admission control consults it first so an overloaded daemon
// keeps answering cached requests while shedding fresh simulations.
func (p *pool) Lookup(req *SimRequest) (SimResult, bool) {
	key, err := req.CacheKey()
	if err != nil || key == "" {
		return SimResult{}, false
	}
	res, ok := p.cache.Get(key)
	if !ok {
		return SimResult{}, false
	}
	res.Cached = true
	res.WallNanos = 0
	return res, true
}

// Do runs one request through the pool and waits for its outcome.
// The fast path serves cache hits without touching the queue. ctx
// cancellation abandons the wait (an already-queued run still
// executes and populates the cache).
func (p *pool) Do(ctx context.Context, req *SimRequest) (SimResult, error) {
	res, _, err := p.DoRun(ctx, req, nil, nil)
	return res, err
}

// DoRun is Do with checkpoint plumbing: snap, when non-nil, resumes
// the run from a snapshot envelope (skipping the cache fast path —
// the caller wants the remainder of that run, not a memoized result),
// and ctl, when non-nil, lets the caller pause or live-capture the
// run. A paused run returns a nil error and a non-nil envelope.
func (p *pool) DoRun(ctx context.Context, req *SimRequest, snap []byte, ctl *runControl) (SimResult, []byte, error) {
	key, err := req.CacheKey()
	if err != nil {
		key = "" // uncacheable, still runnable
	}
	if key != "" && snap == nil {
		if res, ok := p.cache.Get(key); ok {
			res.Cached = true
			res.WallNanos = 0
			if ctl != nil {
				ctl.settle(nil, errRunSettled)
			}
			return res, nil, nil
		}
	}
	w := &work{req: req, key: key, snapshot: snap, ctl: ctl, done: make(chan outcome, 1)}
	if sc, ok := obs.SpanContextFromContext(ctx); ok {
		w.sc = sc
	}

	// Register as a producer before sending: Drain closes the queue
	// only after every registered producer has finished its send, so
	// a blocked send can never race the close.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return SimResult{}, nil, ErrDraining
	}
	p.producers.Add(1)
	p.mu.Unlock()

	enqueued := false
	select {
	case p.queue <- w:
		p.met.enqueue(1)
		enqueued = true
	case <-ctx.Done():
	}
	p.producers.Done()
	if !enqueued {
		return SimResult{}, nil, ctx.Err()
	}

	select {
	case out := <-w.done:
		return out.res, out.ckpt, out.err
	case <-ctx.Done():
		return SimResult{}, nil, ctx.Err()
	}
}

// Drain stops accepting work and waits for queued and in-flight runs
// to finish, up to ctx's deadline. Safe to call more than once.
func (p *pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.closeOnce.Do(func() {
			// Workers keep consuming, so pending producer sends
			// complete and the wait terminates.
			p.producers.Wait()
			close(p.queue)
		})
		p.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
