package audit

import (
	"fmt"
	"sort"

	"dvsslack/internal/snapbuf"
)

// Checkpoint/restore for the auditor. The auditor shadows the whole
// run from the event stream, so a restored simulation can only keep
// its audit verdict if the auditor's shadow state travels with the
// engine snapshot. Everything mutable is serialized — the timeline
// cursor, per-job shadow records, energy and counter accumulators,
// and any violations already recorded. Options are configuration and
// are rebuilt by the caller (audit.New with the same task set and
// processor).

// SnapshotState appends the auditor's complete run state to enc. The
// active-job map is serialized in (task, index) order so identical
// auditor states produce identical bytes.
func (a *Auditor) SnapshotState(enc *snapbuf.Encoder) {
	enc.Float64(a.t)
	enc.Bool(a.started)

	keys := make([]jobKey, 0, len(a.active))
	for k := range a.active {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].task != keys[j].task {
			return keys[i].task < keys[j].task
		}
		return keys[i].index < keys[j].index
	})
	enc.Int(len(keys))
	for _, k := range keys {
		ja := a.active[k]
		enc.Int(ja.key.task)
		enc.Int(ja.key.index)
		enc.Float64(ja.release)
		enc.Float64(ja.deadline)
		enc.Float64(ja.wcet)
		enc.Float64(ja.cycles)
	}

	// The running pointer is (in practice) nil or one of the active
	// records; serialize its key and full fields so restore can prefer
	// the map instance but still reconstruct a detached shadow record.
	enc.Bool(a.running != nil)
	if a.running != nil {
		enc.Int(a.running.key.task)
		enc.Int(a.running.key.index)
		enc.Float64(a.running.release)
		enc.Float64(a.running.deadline)
		enc.Float64(a.running.wcet)
		enc.Float64(a.running.cycles)
	}
	enc.Float64(a.speed)
	enc.Float64(a.curSpeed)
	enc.Bool(a.speedSeen)

	enc.Float64(a.busyE)
	enc.Float64(a.idleE)
	enc.Float64(a.switchE)
	enc.Float64(a.work)
	enc.Int(a.releases)
	enc.Int(a.completes)
	enc.Int(a.dispatches)
	enc.Int(a.switches)
	enc.Int(a.misses)
	enc.Int(a.sleeps)

	enc.Int(len(a.violations))
	for _, v := range a.violations {
		enc.String(v.Invariant)
		enc.Float64(v.Time)
		enc.String(v.Job)
		enc.String(v.Detail)
	}
	enc.Bool(a.truncated)
}

// RestoreState reads back what SnapshotState wrote into a freshly
// constructed auditor (same Options). It fails closed on malformed
// input without leaving partial state behind: nothing is committed
// until the full payload has decoded and validated.
func (a *Auditor) RestoreState(dec *snapbuf.Decoder) error {
	t := dec.Float64()
	started := dec.Bool()

	na := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if na < 0 || na > dec.Remaining()/48 {
		return fmt.Errorf("audit: implausible active-job count %d", na)
	}
	active := make(map[jobKey]*jobAudit, na)
	ntasks := a.opts.TaskSet.N()
	for i := 0; i < na; i++ {
		ja := &jobAudit{}
		ja.key.task = dec.Int()
		ja.key.index = dec.Int()
		ja.release = dec.Float64()
		ja.deadline = dec.Float64()
		ja.wcet = dec.Float64()
		ja.cycles = dec.Float64()
		if dec.Err() != nil {
			return dec.Err()
		}
		if ja.key.task < 0 || ja.key.task >= ntasks || ja.key.index < 0 {
			return fmt.Errorf("audit: shadow job %d has key T%d#%d out of range",
				i, ja.key.task+1, ja.key.index)
		}
		if _, dup := active[ja.key]; dup {
			return fmt.Errorf("audit: duplicate shadow job %s", ja.key.id())
		}
		active[ja.key] = ja
	}

	var running *jobAudit
	if dec.Bool() {
		r := &jobAudit{}
		r.key.task = dec.Int()
		r.key.index = dec.Int()
		r.release = dec.Float64()
		r.deadline = dec.Float64()
		r.wcet = dec.Float64()
		r.cycles = dec.Float64()
		if ja := active[r.key]; ja != nil {
			running = ja // preserve pointer identity with the map record
		} else {
			running = r
		}
	}
	speed := dec.Float64()
	curSpeed := dec.Float64()
	speedSeen := dec.Bool()

	busyE := dec.Float64()
	idleE := dec.Float64()
	switchE := dec.Float64()
	work := dec.Float64()
	releases := dec.Int()
	completes := dec.Int()
	dispatches := dec.Int()
	switches := dec.Int()
	misses := dec.Int()
	sleeps := dec.Int()

	nv := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if nv < 0 || nv > a.opts.MaxViolations {
		return fmt.Errorf("audit: violation count %d exceeds cap %d", nv, a.opts.MaxViolations)
	}
	violations := make([]Violation, nv)
	for i := range violations {
		violations[i].Invariant = dec.String()
		violations[i].Time = dec.Float64()
		violations[i].Job = dec.String()
		violations[i].Detail = dec.String()
	}
	truncated := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}

	a.t = t
	a.started = started
	a.active = active
	a.running = running
	a.speed = speed
	a.curSpeed = curSpeed
	a.speedSeen = speedSeen
	a.busyE = busyE
	a.idleE = idleE
	a.switchE = switchE
	a.work = work
	a.releases = releases
	a.completes = completes
	a.dispatches = dispatches
	a.switches = switches
	a.misses = misses
	a.sleeps = sleeps
	if nv == 0 {
		a.violations = nil
	} else {
		a.violations = violations
	}
	a.truncated = truncated
	return nil
}
