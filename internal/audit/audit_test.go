package audit

import (
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// TestCleanRunsAcrossPolicies audits every registered policy on a
// feasible task set with a dynamic workload; a correct engine and a
// correct policy must produce a violation-free report.
func TestCleanRunsAcrossPolicies(t *testing.T) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(5, 0.7, 11))
	if err != nil {
		t.Fatal(err)
	}
	procs := map[string]*cpu.Processor{
		"continuous": cpu.Continuous(0.1),
		"uniform6":   cpu.UniformLevels(6),
		"xscale":     cpu.XScale(),
	}
	for _, name := range policies.Names() {
		for pname, proc := range procs {
			pol, err := policies.New(name)
			if err != nil {
				t.Fatal(err)
			}
			aud := New(Options{TaskSet: ts, Processor: proc})
			res, err := sim.Run(sim.Config{
				TaskSet:   ts,
				Processor: proc,
				Policy:    pol,
				Workload:  workload.Uniform{Lo: 0.2, Hi: 1, Seed: 3},
				Observer:  aud,
			})
			if err != nil {
				t.Fatalf("%s/%s: run: %v", name, pname, err)
			}
			rep := aud.Finish(res)
			if !rep.OK() {
				t.Errorf("%s/%s: %d violations, first: %v",
					name, pname, len(rep.Violations), rep.Violations[0])
			}
			if rep.JobsReleased == 0 || rep.JobsReleased != res.JobsReleased {
				t.Errorf("%s/%s: audited %d releases, result has %d",
					name, pname, rep.JobsReleased, res.JobsReleased)
			}
		}
	}
}

// TestCleanRunWithSleepAndStalls covers the energy recomputation's
// harder branches: transition stalls, switch energy, leakage, and the
// sleep-versus-idle decision. Only the lpSHE family is stall-safe, so
// the run uses lpshe+guard.
func TestCleanRunWithSleepAndStalls(t *testing.T) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(4, 0.5, 23))
	if err != nil {
		t.Fatal(err)
	}
	proc := cpu.Continuous(0.1)
	proc.SwitchTime = 0.1
	proc.SwitchEnergyCoeff = 0.1
	proc.LeakagePower = 0.05
	proc.SleepEnabled = true
	proc.SleepPower = 0.005
	proc.WakeEnergy = 0.3
	pol, err := policies.New("lpshe+guard")
	if err != nil {
		t.Fatal(err)
	}
	aud := New(Options{TaskSet: ts, Processor: proc})
	res, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: proc,
		Policy:    pol,
		Workload:  workload.Uniform{Lo: 0.3, Hi: 0.9, Seed: 5},
		Observer:  aud,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := aud.Finish(res)
	if !rep.OK() {
		t.Fatalf("%d violations, first: %v", len(rep.Violations), rep.Violations[0])
	}
	if res.Sleeps == 0 {
		t.Error("scenario produced no sleeps; the sleep-energy branch went unexercised")
	}
	if res.SpeedSwitches == 0 {
		t.Error("scenario produced no switches; the stall branch went unexercised")
	}
}

// TestCleanRunWithJitter audits lpSHE under release jitter, covering
// the release-window check's jittered branch.
func TestCleanRunWithJitter(t *testing.T) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(4, 0.6, 31))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts.Tasks {
		ts.Tasks[i].Jitter = 0.1 * ts.Tasks[i].Period
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	pol, err := policies.New("lpshe")
	if err != nil {
		t.Fatal(err)
	}
	proc := cpu.Continuous(0.1)
	aud := New(Options{TaskSet: ts, Processor: proc})
	res, err := sim.Run(sim.Config{
		TaskSet:    ts,
		Processor:  proc,
		Policy:     pol,
		Workload:   workload.Uniform{Lo: 0.4, Hi: 1, Seed: 9},
		Observer:   aud,
		JitterSeed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep := aud.Finish(res); !rep.OK() {
		t.Fatalf("%d violations, first: %v", len(rep.Violations), rep.Violations[0])
	}
}

// TestDeadlineMissDetected checks the auditor flags real misses: an
// infeasible workload under nondvs run non-strictly must yield
// deadline-miss violations that agree with the engine's own count.
func TestDeadlineMissDetected(t *testing.T) {
	ts := &rtm.TaskSet{Tasks: []rtm.Task{
		{Name: "T1", WCET: 6, Period: 10},
		{Name: "T2", WCET: 6, Period: 10},
	}}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	pol, err := policies.New("nondvs")
	if err != nil {
		t.Fatal(err)
	}
	proc := cpu.Continuous(0.1)
	aud := New(Options{TaskSet: ts, Processor: proc})
	res, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: proc,
		Policy:    pol,
		Observer:  aud,
		Horizon:   20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses == 0 {
		t.Fatal("expected the overloaded set to miss deadlines")
	}
	rep := aud.Finish(res)
	if rep.OK() {
		t.Fatal("auditor reported OK on a run with deadline misses")
	}
	missViolations := 0
	for _, v := range rep.Violations {
		switch v.Invariant {
		case "deadline-miss":
			missViolations++
		case "miss-flag", "result-mismatch", "energy":
			t.Errorf("spurious %s violation on an honest missing run: %v", v.Invariant, v)
		}
	}
	if missViolations != res.DeadlineMisses {
		t.Errorf("auditor found %d deadline-miss violations, engine counted %d",
			missViolations, res.DeadlineMisses)
	}
}

// TestViolationCap checks MaxViolations truncates rather than grows
// without bound.
func TestViolationCap(t *testing.T) {
	ts := &rtm.TaskSet{Tasks: []rtm.Task{{Name: "T1", WCET: 1, Period: 10}}}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	a := New(Options{TaskSet: ts, Processor: cpu.Continuous(0.1), MaxViolations: 3})
	for i := 0; i < 10; i++ {
		a.violate("test", float64(i), "", "violation %d", i)
	}
	if len(a.violations) != 3 {
		t.Fatalf("got %d violations, want cap of 3", len(a.violations))
	}
	if !a.truncated {
		t.Fatal("truncated flag not set after exceeding the cap")
	}
}

// TestSelfTest runs the mutation self-test: every seeded bug class
// must be caught by at least one expected invariant.
func TestSelfTest(t *testing.T) {
	results, err := SelfTest()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Mutations()) {
		t.Fatalf("got %d results for %d mutations", len(results), len(Mutations()))
	}
	for _, r := range results {
		if !r.Caught {
			t.Errorf("mutation %s escaped: expected one of %v, audit reported %v",
				r.Mutation, r.Expected, r.Got)
		}
	}
}
