// Package audit is the independent online schedule auditor: an
// implementation of sim.Observer that re-derives the simulator's
// correctness invariants from the event stream alone and checks the
// engine's aggregate Result against a from-scratch recomputation.
//
// The simulator already counts deadline misses and integrates energy
// itself — but a claim like "0 misses in 63 599 jobs" is only as
// strong as the code making it. The auditor is a second, structurally
// independent derivation of the same facts: it never reads engine
// internals, only the Observer callbacks every run emits, plus the
// static task set and processor model. A bug in the engine's
// dispatching, accounting, or integration therefore shows up as a
// disagreement between the two derivations (see the mutation
// self-test in selftest.go, which proves each seeded bug class is
// caught).
//
// Invariants checked, by name (the Violation.Invariant field):
//
//	event-order          timestamps regress, or an idle interval ends
//	                     before it starts
//	timeline-gap         wall-clock time elapsed that no dispatch,
//	                     idle interval, or transition stall accounts
//	                     for
//	duplicate-release    a (task, job-index) pair released twice
//	release-window       a release outside [k·T, k·T + Jitter]
//	deadline-derivation  the job's absolute deadline differs from
//	                     release + relative deadline of its task
//	wcet-mismatch        the job's WCET differs from its task's
//	edf-order            a job was dispatched while a released,
//	                     incomplete job with a strictly earlier
//	                     deadline was waiting (EDF violation)
//	speed-range          a dispatch speed outside [Clamp(0), 1]
//	speed-level          a dispatch speed that is not one of a
//	                     discrete processor's levels
//	switch-continuity    a switch event's "from" speed differs from
//	                     the speed the processor was last set to
//	switch-missing       a dispatch at a speed the processor was
//	                     never switched to
//	idle-while-ready     the processor idled while released,
//	                     incomplete jobs existed
//	cycle-account        a job's dispatched speed × time does not sum
//	                     to its executed cycles, or a job completed
//	                     with executed work different from its actual
//	                     execution time, or beyond its WCET
//	deadline-miss        a job completed after its absolute deadline
//	miss-flag            the engine's missed flag disagrees with the
//	                     auditor's own deadline comparison
//	unfinished-job       a released job never completed
//	result-mismatch      a Result counter (jobs, misses, switches,
//	                     sleeps) disagrees with the audited count
//	energy               a Result energy term (busy, idle, switch,
//	                     total) or WorkDone disagrees with the
//	                     auditor's recomputed integral
//
// Usage:
//
//	aud := audit.New(audit.Options{TaskSet: ts, Processor: proc})
//	cfg.Observer = aud
//	res, err := sim.Run(cfg)
//	report := aud.Finish(res)   // after a run that returned err == nil
//	if !report.OK() { ... }
//
// An Auditor audits exactly one run and is not safe for concurrent
// use (the engine invokes observers synchronously, so no locking is
// needed within a run).
package audit

import (
	"fmt"
	"math"
	"sort"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

// Violation is one detected invariant breach.
type Violation struct {
	// Invariant names the broken invariant (see the package
	// documentation for the full list).
	Invariant string `json:"invariant"`
	// Time is the simulation time at which the breach was detected.
	Time float64 `json:"time"`
	// Job identifies the job involved ("T3#17"), when applicable.
	Job string `json:"job,omitempty"`
	// Detail is a human-readable description with the numbers.
	Detail string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Job != "" {
		return fmt.Sprintf("[%s] t=%g %s: %s", v.Invariant, v.Time, v.Job, v.Detail)
	}
	return fmt.Sprintf("[%s] t=%g: %s", v.Invariant, v.Time, v.Detail)
}

// Report is the outcome of auditing one run.
type Report struct {
	// Policy is the audited policy's name (copied from the Result
	// passed to Finish).
	Policy string `json:"policy,omitempty"`
	// JobsReleased, JobsCompleted, Dispatches, and Switches count the
	// events the auditor observed.
	JobsReleased  int `json:"jobs_released"`
	JobsCompleted int `json:"jobs_completed"`
	Dispatches    int `json:"dispatches"`
	Switches      int `json:"switches"`
	// Violations lists every detected breach, in detection order,
	// capped at Options.MaxViolations.
	Violations []Violation `json:"violations,omitempty"`
	// Truncated reports that the violation cap was hit; the run has
	// at least one more violation than listed.
	Truncated bool `json:"truncated,omitempty"`
}

// OK reports whether the audit found nothing wrong.
func (r *Report) OK() bool { return len(r.Violations) == 0 && !r.Truncated }

// Options configures an Auditor.
type Options struct {
	// TaskSet is the static task set of the audited run (required).
	TaskSet *rtm.TaskSet
	// Processor is the processor model of the audited run (required);
	// the auditor uses it to validate speeds and recompute energy.
	Processor *cpu.Processor
	// EDF enables the EDF dispatch-order check. Disable for runs
	// using sim.Config.FixedPriorities. NewEDF/New set it.
	EDF bool
	// MaxViolations caps the report length; <= 0 selects 64.
	MaxViolations int
}

// jobKey identifies a job across callbacks.
type jobKey struct{ task, index int }

func (k jobKey) id() string { return fmt.Sprintf("T%d#%d", k.task+1, k.index) }

// jobAudit is the auditor's shadow state for one released job.
type jobAudit struct {
	key      jobKey
	release  float64
	deadline float64
	wcet     float64
	cycles   float64 // accrued dispatched work: Σ speed × dt
}

// Auditor implements sim.Observer over one run. Construct with New.
type Auditor struct {
	opts Options

	t       float64 // timeline cursor: end of the last accounted interval
	started bool

	active  map[jobKey]*jobAudit
	running *jobAudit
	speed   float64 // speed of the running dispatch

	curSpeed  float64 // processor speed per the switch event stream
	speedSeen bool

	busyE, idleE, switchE float64
	work                  float64
	releases, completes   int
	dispatches, switches  int
	misses, sleeps        int

	violations []Violation
	truncated  bool
}

// New returns an auditor for one EDF run. It panics if TaskSet or
// Processor is nil, mirroring the engine's own config requirements.
func New(opts Options) *Auditor {
	if opts.TaskSet == nil || opts.Processor == nil {
		panic("audit: Options.TaskSet and Options.Processor are required")
	}
	if opts.MaxViolations <= 0 {
		opts.MaxViolations = 64
	}
	opts.EDF = true
	return &Auditor{opts: opts, active: make(map[jobKey]*jobAudit)}
}

// NewFixedPriority returns an auditor with the EDF dispatch-order
// check disabled, for runs using sim.Config.FixedPriorities. All
// other invariants still apply.
func NewFixedPriority(opts Options) *Auditor {
	a := New(opts)
	a.opts.EDF = false
	return a
}

// violate records a violation, respecting the cap.
func (a *Auditor) violate(invariant string, t float64, job string, format string, args ...any) {
	if len(a.violations) >= a.opts.MaxViolations {
		a.truncated = true
		return
	}
	a.violations = append(a.violations, Violation{
		Invariant: invariant,
		Time:      t,
		Job:       job,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// accrueTo advances the timeline cursor to t, attributing the elapsed
// interval to the running dispatch (work and busy energy) or flagging
// it as unaccounted time.
func (a *Auditor) accrueTo(t float64) {
	if !a.started {
		a.started = true
		a.t = t
		if t < -sim.Eps {
			a.violate("event-order", t, "", "first event at negative time %g", t)
		}
		return
	}
	if t < a.t-sim.Eps {
		a.violate("event-order", t, "", "time regressed from %g to %g", a.t, t)
		return
	}
	dt := t - a.t
	if dt <= 0 {
		return
	}
	if a.running != nil {
		a.running.cycles += dt * a.speed
		a.busyE += a.opts.Processor.BusyPower(a.speed) * dt
		a.work += dt * a.speed
	} else if dt > sim.Eps {
		a.violate("timeline-gap", t, "",
			"%g time units elapsed with no dispatch, idle interval, or stall", dt)
	}
	a.t = t
}

// ObserveRelease implements sim.Observer.
func (a *Auditor) ObserveRelease(t float64, j *sim.JobState) {
	a.accrueTo(t)
	a.releases++
	key := jobKey{j.TaskIndex, j.Index}
	if j.TaskIndex < 0 || j.TaskIndex >= a.opts.TaskSet.N() {
		a.violate("release-window", t, key.id(), "task index %d out of range", j.TaskIndex)
		return
	}
	if _, dup := a.active[key]; dup {
		a.violate("duplicate-release", t, key.id(), "job released twice")
		return
	}
	task := a.opts.TaskSet.Tasks[j.TaskIndex]
	nominal := float64(j.Index) * task.Period
	const tol = 1e-9
	if j.Release < nominal-tol || j.Release > nominal+task.Jitter+tol {
		a.violate("release-window", t, key.id(),
			"release %g outside [%g, %g]", j.Release, nominal, nominal+task.Jitter)
	}
	if t < j.Release-sim.Eps {
		a.violate("release-window", t, key.id(),
			"release observed at %g before its release time %g", t, j.Release)
	}
	if d := j.Release + task.RelDeadline(); math.Abs(j.AbsDeadline-d) > tol {
		a.violate("deadline-derivation", t, key.id(),
			"absolute deadline %g, expected release %g + D %g = %g",
			j.AbsDeadline, j.Release, task.RelDeadline(), d)
	}
	if math.Abs(j.WCET-task.WCET) > tol {
		a.violate("wcet-mismatch", t, key.id(), "job WCET %g, task WCET %g", j.WCET, task.WCET)
	}
	a.active[key] = &jobAudit{key: key, release: j.Release, deadline: j.AbsDeadline, wcet: j.WCET}
}

// earliestDeadline returns the active job with the earliest
// (deadline, release, task) key — the job EDF must dispatch.
// Deterministic regardless of map iteration order.
func (a *Auditor) earliestDeadline() *jobAudit {
	var best *jobAudit
	for _, ja := range a.active {
		if best == nil {
			best = ja
			continue
		}
		switch {
		case ja.deadline != best.deadline:
			if ja.deadline < best.deadline {
				best = ja
			}
		case ja.release != best.release:
			if ja.release < best.release {
				best = ja
			}
		case ja.key.task < best.key.task:
			best = ja
		}
	}
	return best
}

// ObserveDispatch implements sim.Observer.
func (a *Auditor) ObserveDispatch(t float64, j *sim.JobState, speed float64) {
	a.accrueTo(t)
	a.dispatches++
	key := jobKey{j.TaskIndex, j.Index}
	ja := a.active[key]
	if ja == nil {
		a.violate("edf-order", t, key.id(), "dispatched a job that was never released (or already completed)")
		// Shadow it anyway so accounting can continue.
		ja = &jobAudit{key: key, release: j.Release, deadline: j.AbsDeadline, wcet: j.WCET}
		a.active[key] = ja
	}
	if a.opts.EDF {
		if ed := a.earliestDeadline(); ed != nil && ed.deadline < j.AbsDeadline-sim.Eps {
			a.violate("edf-order", t, key.id(),
				"dispatched with deadline %g while %s (deadline %g) was ready",
				j.AbsDeadline, ed.key.id(), ed.deadline)
		}
	}
	proc := a.opts.Processor
	const tol = 1e-9
	if speed < proc.Clamp(0)-tol || speed > 1+tol {
		a.violate("speed-range", t, key.id(),
			"speed %g outside usable range [%g, 1]", speed, proc.Clamp(0))
	} else if levels := proc.Levels(); len(levels) > 0 {
		onLevel := false
		for _, l := range levels {
			if math.Abs(speed-l) <= tol {
				onLevel = true
				break
			}
		}
		if !onLevel {
			a.violate("speed-level", t, key.id(),
				"speed %g is not one of the processor's %d discrete levels", speed, len(levels))
		}
	}
	// The dispatch speed must be the speed the processor was last
	// switched to (the engine suppresses switch events only for
	// nearly-equal speeds, so a small tolerance suffices).
	if !a.speedSeen {
		a.speedSeen = true
		a.curSpeed = speed
	} else if math.Abs(speed-a.curSpeed) > 1e-6 {
		a.violate("switch-missing", t, key.id(),
			"dispatched at speed %g but the processor was last set to %g", speed, a.curSpeed)
		a.curSpeed = speed // resynchronize so one bug reports once
	}
	a.running = ja
	a.speed = speed
}

// ObserveComplete implements sim.Observer.
func (a *Auditor) ObserveComplete(t float64, j *sim.JobState, missed bool) {
	a.accrueTo(t)
	a.completes++
	key := jobKey{j.TaskIndex, j.Index}
	ja := a.active[key]
	if ja == nil {
		a.violate("cycle-account", t, key.id(), "completion of a job that was never released")
	} else {
		if !closeEnough(ja.cycles, j.Executed) {
			a.violate("cycle-account", t, key.id(),
				"dispatched speed × time sums to %g cycles, job reports %g executed",
				ja.cycles, j.Executed)
		}
		if !closeEnough(j.Executed, j.AET) {
			a.violate("cycle-account", t, key.id(),
				"completed with %g executed, actual execution time is %g", j.Executed, j.AET)
		}
		if j.AET > j.WCET+1e-9 {
			a.violate("cycle-account", t, key.id(), "AET %g exceeds WCET %g", j.AET, j.WCET)
		}
		delete(a.active, key)
		if a.running == ja {
			a.running = nil
		}
	}
	lateBy := t - j.AbsDeadline
	actualMiss := lateBy > sim.Eps
	if actualMiss {
		a.misses++
		a.violate("deadline-miss", t, key.id(),
			"finished %g time units after its deadline %g", lateBy, j.AbsDeadline)
	}
	if actualMiss != missed {
		a.violate("miss-flag", t, key.id(),
			"engine reported missed=%v, auditor derives missed=%v (finish %g, deadline %g)",
			missed, actualMiss, t, j.AbsDeadline)
	}
}

// ObserveIdle implements sim.Observer.
func (a *Auditor) ObserveIdle(t0, t1 float64) {
	a.accrueTo(t0)
	if t1 < t0-sim.Eps {
		a.violate("event-order", t0, "", "idle interval ends at %g before it starts", t1)
		return
	}
	if a.running != nil {
		a.violate("idle-while-ready", t0, a.running.key.id(),
			"processor idled while a dispatched job was incomplete")
		a.running = nil
	} else if n := len(a.active); n > 0 {
		ed := a.earliestDeadline()
		a.violate("idle-while-ready", t0, ed.key.id(),
			"processor idled [%g, %g] with %d released incomplete job(s)", t0, t1, n)
	}
	dt := t1 - t0
	proc := a.opts.Processor
	if proc.CanSleep() && dt >= proc.BreakEvenIdle() {
		a.idleE += proc.WakeEnergy + proc.SleepPower*dt
		a.sleeps++
	} else {
		a.idleE += proc.AwakeIdlePower() * dt
	}
	if t1 > a.t {
		a.t = t1
	}
}

// ObserveSwitch implements sim.Observer.
func (a *Auditor) ObserveSwitch(t, from, to float64) {
	a.accrueTo(t)
	a.switches++
	if a.speedSeen && math.Abs(from-a.curSpeed) > 1e-6 {
		a.violate("switch-continuity", t, "",
			"switch reports previous speed %g, auditor tracked %g", from, a.curSpeed)
	}
	a.curSpeed = to
	a.speedSeen = true
	proc := a.opts.Processor
	a.switchE += proc.SwitchEnergy(from, to)
	if st := proc.SwitchTime; st > 0 {
		// The engine charges the stall at the higher of the two
		// operating points and advances time without performing work.
		a.switchE += math.Max(proc.BusyPower(from), proc.BusyPower(to)) * st
		a.t = t + st
	}
}

// Finish closes the audit after a run and cross-checks the engine's
// Result against the auditor's own derivation. Call it once, with the
// Result of a run that returned a nil error (a strict-deadline abort
// leaves the event stream truncated mid-run, which Finish would
// misread as unfinished jobs).
func (a *Auditor) Finish(res sim.Result) *Report {
	if n := len(a.active); n > 0 {
		keys := make([]jobKey, 0, n)
		for k := range a.active {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].task != keys[j].task {
				return keys[i].task < keys[j].task
			}
			return keys[i].index < keys[j].index
		})
		for _, k := range keys {
			a.violate("unfinished-job", a.t, k.id(), "released but never completed")
		}
	}
	count := func(name string, got, want int) {
		if got != want {
			a.violate("result-mismatch", a.t, "",
				"%s: result reports %d, auditor derived %d", name, want, got)
		}
	}
	count("jobs_released", a.releases, res.JobsReleased)
	count("jobs_completed", a.completes, res.JobsCompleted)
	count("deadline_misses", a.misses, res.DeadlineMisses)
	count("speed_switches", a.switches, res.SpeedSwitches)
	count("sleeps", a.sleeps, res.Sleeps)
	energy := func(name string, got, want float64) {
		if !closeEnough(got, want) {
			a.violate("energy", a.t, "",
				"%s: result reports %g, auditor recomputed %g (Δ %.3g)",
				name, want, got, want-got)
		}
	}
	energy("busy_energy", a.busyE, res.BusyEnergy)
	energy("idle_energy", a.idleE, res.IdleEnergy)
	energy("switch_energy", a.switchE, res.SwitchEnergy)
	energy("energy", a.busyE+a.idleE+a.switchE, res.Energy)
	energy("work_done", a.work, res.WorkDone)
	return &Report{
		Policy:        res.Policy,
		JobsReleased:  a.releases,
		JobsCompleted: a.completes,
		Dispatches:    a.dispatches,
		Switches:      a.switches,
		Violations:    a.violations,
		Truncated:     a.truncated,
	}
}

// closeEnough compares two recomputed quantities. The auditor's
// arithmetic repeats the engine's interval-by-interval, but interval
// lengths are reconstructed from absolute times ((t0+dt)−t0 differs
// from dt by an ulp), so drift up to ~1e-11 relative accumulates over
// long runs; the tolerance leaves three orders of magnitude of slack
// below anything a real accounting bug would produce.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6+1e-8*math.Max(math.Abs(a), math.Abs(b))
}
