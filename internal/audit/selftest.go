// Mutation self-test: the auditor is itself tested by seeding
// deliberate bugs into the event stream and proving each one is
// caught. Each Mutation wraps the auditor in an observer that
// corrupts events the way a real engine bug would — skipping a
// preemption, dropping a speed switch, masking a deadline miss — and
// the self-test passes only if the audit report contains at least one
// of the invariants that bug class must trip. A clean (unmutated) run
// of the same scenario must in turn produce an empty report, pinning
// the auditor against false positives at the same time.

package audit

import (
	"fmt"
	"sort"

	"dvsslack/internal/cpu"
	"dvsslack/internal/policies"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// Mutation is one deliberately seeded bug class.
type Mutation struct {
	// Name identifies the mutation ("skip-preemption").
	Name string
	// Description says what engine bug the mutation simulates.
	Description string
	// Expect lists invariants of which at least one must appear in
	// the audit report for the mutation to count as caught.
	Expect []string
	// wrap corrupts the event stream on its way to the inner
	// observer. It must never mutate engine-owned *sim.JobState
	// values — corrupted jobs are passed as copies.
	wrap func(inner sim.Observer) sim.Observer
	// needsDiscrete selects the discrete-level scenario instead of
	// the continuous one.
	needsDiscrete bool
}

// SelfTestResult reports one mutation's outcome.
type SelfTestResult struct {
	Mutation    string   `json:"mutation"`
	Description string   `json:"description"`
	Expected    []string `json:"expected"`
	// Got lists the distinct invariants the audit actually reported,
	// sorted.
	Got    []string `json:"got"`
	Caught bool     `json:"caught"`
}

// mutant is a sim.Observer that forwards events to inner, letting a
// mutation override individual callbacks.
type mutant struct {
	inner    sim.Observer
	release  func(m *mutant, t float64, j *sim.JobState)
	dispatch func(m *mutant, t float64, j *sim.JobState, speed float64)
	complete func(m *mutant, t float64, j *sim.JobState, missed bool)
	idle     func(m *mutant, t0, t1 float64)
	sw       func(m *mutant, t, from, to float64)

	// active shadows released-but-incomplete jobs (by value, so
	// mutations can hand out corrupted copies safely) for mutations
	// that need scheduling state, e.g. skip-preemption.
	active map[jobKey]sim.JobState
	fired  bool // one-shot flag for single-event mutations
}

func (m *mutant) ObserveRelease(t float64, j *sim.JobState) {
	m.active[jobKey{j.TaskIndex, j.Index}] = *j
	if m.release != nil {
		m.release(m, t, j)
		return
	}
	m.inner.ObserveRelease(t, j)
}

func (m *mutant) ObserveDispatch(t float64, j *sim.JobState, speed float64) {
	if m.dispatch != nil {
		m.dispatch(m, t, j, speed)
		return
	}
	m.inner.ObserveDispatch(t, j, speed)
}

func (m *mutant) ObserveComplete(t float64, j *sim.JobState, missed bool) {
	delete(m.active, jobKey{j.TaskIndex, j.Index})
	if m.complete != nil {
		m.complete(m, t, j, missed)
		return
	}
	m.inner.ObserveComplete(t, j, missed)
}

func (m *mutant) ObserveIdle(t0, t1 float64) {
	if m.idle != nil {
		m.idle(m, t0, t1)
		return
	}
	m.inner.ObserveIdle(t0, t1)
}

func (m *mutant) ObserveSwitch(t, from, to float64) {
	if m.sw != nil {
		m.sw(m, t, from, to)
		return
	}
	m.inner.ObserveSwitch(t, from, to)
}

// latestDeadline returns a copy of the active job with the latest
// deadline — the worst possible job for EDF to run. Deterministic
// tie-break by task index.
func (m *mutant) latestDeadline() (sim.JobState, bool) {
	var best sim.JobState
	found := false
	for _, js := range m.active {
		if !found || js.AbsDeadline > best.AbsDeadline ||
			(js.AbsDeadline == best.AbsDeadline && js.TaskIndex > best.TaskIndex) {
			best, found = js, true
		}
	}
	return best, found
}

// Mutations returns the seeded bug classes the self-test exercises.
func Mutations() []Mutation {
	return []Mutation{
		{
			Name:        "skip-preemption",
			Description: "dispatches the latest-deadline ready job instead of the earliest, as if a preemption were skipped",
			Expect:      []string{"edf-order"},
			wrap: func(inner sim.Observer) sim.Observer {
				return &mutant{inner: inner, active: map[jobKey]sim.JobState{},
					dispatch: func(m *mutant, t float64, j *sim.JobState, speed float64) {
						if worst, ok := m.latestDeadline(); ok && worst.AbsDeadline > j.AbsDeadline+sim.Eps {
							inner.ObserveDispatch(t, &worst, speed)
							return
						}
						inner.ObserveDispatch(t, j, speed)
					}}
			},
		},
		{
			Name:        "drop-switch",
			Description: "suppresses every speed-switch event, as if transitions were unaccounted",
			Expect:      []string{"switch-missing", "result-mismatch", "energy"},
			wrap: func(inner sim.Observer) sim.Observer {
				return &mutant{inner: inner, active: map[jobKey]sim.JobState{},
					sw: func(m *mutant, t, from, to float64) {}}
			},
		},
		{
			Name:        "mask-miss",
			Description: "reports one job finishing past its deadline with the missed flag cleared, as if a miss were hidden",
			Expect:      []string{"deadline-miss", "miss-flag"},
			wrap: func(inner sim.Observer) sim.Observer {
				return &mutant{inner: inner, active: map[jobKey]sim.JobState{},
					complete: func(m *mutant, t float64, j *sim.JobState, missed bool) {
						if !m.fired {
							m.fired = true
							late := *j
							inner.ObserveComplete(late.AbsDeadline+1, &late, false)
							return
						}
						inner.ObserveComplete(t, j, missed)
					}}
			},
		},
		{
			Name:        "overspeed",
			Description: "reports dispatches at speed 1.5, beyond the processor's physical maximum",
			Expect:      []string{"speed-range"},
			wrap: func(inner sim.Observer) sim.Observer {
				return &mutant{inner: inner, active: map[jobKey]sim.JobState{},
					dispatch: func(m *mutant, t float64, j *sim.JobState, speed float64) {
						inner.ObserveDispatch(t, j, 1.5)
					}}
			},
		},
		{
			Name:          "illegal-level",
			Description:   "perturbs dispatch speeds off the processor's discrete level grid",
			Expect:        []string{"speed-level"},
			needsDiscrete: true,
			wrap: func(inner sim.Observer) sim.Observer {
				return &mutant{inner: inner, active: map[jobKey]sim.JobState{},
					dispatch: func(m *mutant, t float64, j *sim.JobState, speed float64) {
						s := speed + 0.01
						if s > 1 {
							s = speed - 0.01
						}
						inner.ObserveDispatch(t, j, s)
					}}
			},
		},
		{
			Name:        "drop-idle",
			Description: "suppresses every idle-interval event, leaving wall-clock time unaccounted",
			Expect:      []string{"timeline-gap", "energy"},
			wrap: func(inner sim.Observer) sim.Observer {
				return &mutant{inner: inner, active: map[jobKey]sim.JobState{},
					idle: func(m *mutant, t0, t1 float64) {}}
			},
		},
		{
			Name:        "steal-cycles",
			Description: "reports completions with half the executed cycles, as if work vanished",
			Expect:      []string{"cycle-account"},
			wrap: func(inner sim.Observer) sim.Observer {
				return &mutant{inner: inner, active: map[jobKey]sim.JobState{},
					complete: func(m *mutant, t float64, j *sim.JobState, missed bool) {
						short := *j
						short.Executed *= 0.5
						inner.ObserveComplete(t, &short, missed)
					}}
			},
		},
	}
}

// selfTestConfig builds the fixed scenario the self-test runs: a
// moderate-utilization generated task set under lpSHE with a uniform
// dynamic workload, on a continuous or 4-level discrete processor.
// Switch energy is enabled so dropped switch events cost energy.
func selfTestConfig(discrete bool, obs sim.Observer) (sim.Config, error) {
	ts, err := rtm.Generate(rtm.DefaultGenConfig(6, 0.75, 42))
	if err != nil {
		return sim.Config{}, err
	}
	var proc *cpu.Processor
	if discrete {
		proc = cpu.UniformLevels(4)
	} else {
		proc = cpu.Continuous(0.1)
	}
	proc.SwitchEnergyCoeff = 0.1
	pol, err := policies.New("lpshe")
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		TaskSet:   ts,
		Processor: proc,
		Policy:    pol,
		Workload:  workload.Uniform{Lo: 0.3, Hi: 1, Seed: 7},
		Observer:  obs,
	}, nil
}

// runScenario executes the self-test scenario with the given observer
// wrapper (nil for a clean run) and returns the audit report.
func runScenario(discrete bool, wrap func(sim.Observer) sim.Observer) (*Report, error) {
	cfg, err := selfTestConfig(discrete, nil)
	if err != nil {
		return nil, err
	}
	aud := New(Options{TaskSet: cfg.TaskSet, Processor: cfg.Processor})
	var obs sim.Observer = aud
	if wrap != nil {
		obs = wrap(aud)
	}
	cfg.Observer = obs
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("audit: self-test run: %w", err)
	}
	return aud.Finish(res), nil
}

// SelfTest proves the oracle can fail: it runs every mutation and
// reports whether each seeded bug class was caught. It returns an
// error if the harness itself breaks or if the clean control run is
// not violation-free (a false positive would make every catch
// meaningless).
func SelfTest() ([]SelfTestResult, error) {
	for _, discrete := range []bool{false, true} {
		rep, err := runScenario(discrete, nil)
		if err != nil {
			return nil, err
		}
		if !rep.OK() {
			return nil, fmt.Errorf("audit: clean control run (discrete=%v) reported %d violations: %v",
				discrete, len(rep.Violations), rep.Violations[0])
		}
	}
	var out []SelfTestResult
	for _, mut := range Mutations() {
		rep, err := runScenario(mut.needsDiscrete, mut.wrap)
		if err != nil {
			return nil, fmt.Errorf("audit: mutation %s: %w", mut.Name, err)
		}
		seen := map[string]bool{}
		for _, v := range rep.Violations {
			seen[v.Invariant] = true
		}
		got := make([]string, 0, len(seen))
		for inv := range seen {
			got = append(got, inv)
		}
		sort.Strings(got)
		caught := false
		for _, want := range mut.Expect {
			if seen[want] {
				caught = true
				break
			}
		}
		out = append(out, SelfTestResult{
			Mutation:    mut.Name,
			Description: mut.Description,
			Expected:    mut.Expect,
			Got:         got,
			Caught:      caught,
		})
	}
	return out, nil
}
