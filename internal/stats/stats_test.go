package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Error("CI95 should be positive for n > 1")
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Error("empty sample should be all zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Error("single-observation sample wrong")
	}
}

// Property: Welford mean matches the naive mean.
func TestSampleMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Sample
		s.AddAll(clean)
		want := Mean(clean)
		scale := math.Max(1, math.Abs(want))
		return math.Abs(s.Mean()-want) < 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("quantile of empty should be 0")
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total != 7 {
		t.Errorf("total = %d", h.Total)
	}
	// Bin 0: 0, 1.9, and clamped -3.
	if h.Counts[0] != 3 {
		t.Errorf("bin 0 = %d, want 3", h.Counts[0])
	}
	// Bin 4: 9.9 and clamped 42.
	if h.Counts[4] != 2 {
		t.Errorf("bin 4 = %d, want 2", h.Counts[4])
	}
	lo, hi := h.Bin(1)
	if lo != 2 || hi != 4 {
		t.Errorf("bin 1 = [%v, %v), want [2, 4)", lo, hi)
	}
}

func TestNewHistogramDefaultBins(t *testing.T) {
	h := NewHistogram(0, 1, 0)
	if len(h.Counts) != 10 {
		t.Errorf("default bins = %d, want 10", len(h.Counts))
	}
}
