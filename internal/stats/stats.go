// Package stats provides the small statistical toolkit the
// experiment harness needs: streaming moments, confidence intervals,
// and fixed-bin histograms. Everything is plain float64 arithmetic;
// no external dependencies.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations with Welford's online algorithm,
// so mean and variance stay numerically stable for long runs.
type Sample struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the sample.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll folds a slice of observations.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (zero for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (zero for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (zero for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// CI95 returns the half-width of the normal-approximation 95%
// confidence interval of the mean.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String implements fmt.Stringer.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g sd=%.3g [%.4g,%.4g]",
		s.n, s.mean, s.CI95(), s.StdDev(), s.min, s.max)
}

// Mean returns the arithmetic mean of xs (zero for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation on the sorted copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	v := append([]float64(nil), xs...)
	sort.Float64s(v)
	if q <= 0 {
		return v[0]
	}
	if q >= 1 {
		return v[len(v)-1]
	}
	pos := q * float64(len(v)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(v) {
		return v[len(v)-1]
	}
	return v[lo]*(1-frac) + v[lo+1]*frac
}

// Histogram counts observations into nbins equal bins over [lo, hi);
// out-of-range values clamp to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 10
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.Total++
}

// Bin returns the [lo, hi) range of bin i.
func (h *Histogram) Bin(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}
