package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// LogConfig is the shared logging configuration of the dvsslack
// binaries: every command registers the same -log-level / -log-format
// flags and builds its logger through New, so log output is uniform
// across the daemon and the CLIs.
type LogConfig struct {
	// Level is the minimum severity: debug, info, warn, or error.
	Level string
	// Format selects the slog handler: text or json.
	Format string
}

// RegisterFlags installs the shared -log-level and -log-format flags
// on fs (flag.CommandLine in the binaries).
func (c *LogConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&c.Format, "log-format", "text", "log format: text, json")
}

// New builds the configured *slog.Logger writing to w.
func (c LogConfig) New(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(c.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", c.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(c.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", c.Format)
	}
}

// discardHandler drops every record (slog.DiscardHandler needs go
// 1.24; this module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Discard returns a logger that drops everything; the default for
// components whose caller configured no logger.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// reqPrefix distinguishes request IDs across process restarts so two
// daemon incarnations never hand out the same ID.
var reqPrefix = func() string {
	var b [3]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req"
	}
	return hex.EncodeToString(b[:])
}()

var reqCounter atomic.Uint64

// NewRequestID returns a process-unique request identifier of the
// form <prefix>-<seq>, cheap enough for every HTTP request.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqCounter.Add(1))
}
