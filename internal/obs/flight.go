package obs

import (
	"sync"

	"dvsslack/internal/sim"
)

// Decision flight recorder: a bounded ring of per-decision provenance
// records. Every engine dispatch appends one record — which job, at
// what time, at what speed, and (for policies implementing
// sim.DecisionExplainer) which analysis path produced the number:
// staircase hit, certificate early stop, full scan, or adaptive cap.
// The ring answers "why did the system pick this speed?" on a live
// daemon (GET /debug/flightrecorder) and exports into the Chrome
// trace as flow events so Perfetto shows decisions aligned with
// spans.
//
// The recorder is strictly inert: it only reads engine state already
// handed to observers, a nil *FlightRecorder is a no-op at every call
// site, and the write path is allocation-free in steady state (the
// ring is pre-sized at construction; pinned by
// TestFlightRecorderSteadyStateAllocs).

// DecisionRecord is one recorded dispatch decision.
type DecisionRecord struct {
	// Seq is the global sequence number (monotone across runs).
	Seq uint64 `json:"seq"`
	// T is the simulation time of the decision.
	T float64 `json:"t"`
	// Task and Job identify the dispatched job (task index, job
	// index within the task).
	Task int `json:"task"`
	Job  int `json:"job"`
	// Speed is the clamped speed the engine dispatched at.
	Speed float64 `json:"speed"`
	// Path is the decision path (sim.DecisionPath); rendered as its
	// snake-case name in JSON snapshots.
	Path sim.DecisionPath `json:"-"`
	// ScanLen is the number of deadlines the analysis scanned for
	// this decision (0 when skipped).
	ScanLen int `json:"scan_len"`
	// Credits is the policy's cumulative harvested slack credit at
	// decision time.
	Credits float64 `json:"credits"`
}

// decisionWire is DecisionRecord with Path rendered as a string; the
// snapshot path converts (allocation there is fine — it is the read
// side).
type decisionWire struct {
	DecisionRecord
	Path string `json:"path"`
}

// nPaths sizes the per-path counter arrays (PathUnknown..PathAdaptiveCap).
const nPaths = int(sim.PathAdaptiveCap) + 1

// FlightRecorder is the shared ring. Safe for concurrent use: many
// simulation runs may record into one recorder while HTTP handlers
// snapshot it. A nil recorder is a valid no-op everywhere.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []DecisionRecord
	cap   int
	total uint64
	paths [nPaths]uint64
}

// NewFlightRecorder builds a recorder holding the most recent
// capacity decisions (≤0 → 4096).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	return &FlightRecorder{buf: make([]DecisionRecord, 0, capacity), cap: capacity}
}

// record appends one decision (allocation-free once the ring is
// full-grown: slots are reused in place).
func (f *FlightRecorder) record(rec DecisionRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	rec.Seq = f.total
	if len(f.buf) < f.cap {
		f.buf = append(f.buf, rec)
	} else {
		f.buf[f.total%uint64(f.cap)] = rec
	}
	f.total++
	f.paths[int(rec.Path)%nPaths]++
	f.mu.Unlock()
}

// FlightSnapshot is the JSON document served by GET
// /debug/flightrecorder.
type FlightSnapshot struct {
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total"`
	// Dropped = Total − len(Records): decisions the ring evicted.
	Dropped uint64 `json:"dropped"`
	// Paths counts decisions per path name over the recorder's whole
	// lifetime (not just the retained window).
	Paths   map[string]uint64 `json:"paths"`
	Records []decisionWire    `json:"records"`
}

// Snapshot copies the ring in sequence order, oldest first.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	s := FlightSnapshot{Paths: map[string]uint64{}, Records: []decisionWire{}}
	if f == nil {
		return s
	}
	f.mu.Lock()
	recs := make([]DecisionRecord, len(f.buf))
	copy(recs, f.buf)
	s.Capacity = f.cap
	s.Total = f.total
	paths := f.paths
	f.mu.Unlock()

	s.Dropped = s.Total - uint64(len(recs))
	for p, n := range paths {
		if n > 0 {
			s.Paths[sim.DecisionPath(p).String()] = n
		}
	}
	// The ring wraps at total%cap; rotate back to sequence order.
	if len(recs) == f.cap && s.Total > uint64(f.cap) {
		cut := int(s.Total % uint64(f.cap))
		recs = append(recs[cut:], recs[:cut]...)
	}
	s.Records = make([]decisionWire, len(recs))
	for i, r := range recs {
		s.Records[i] = decisionWire{DecisionRecord: r, Path: r.Path.String()}
	}
	return s
}

// Records returns the retained decisions in sequence order (the
// Chrome-trace export input).
func (f *FlightRecorder) Records() []DecisionRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	recs := make([]DecisionRecord, len(f.buf))
	copy(recs, f.buf)
	total := f.total
	f.mu.Unlock()
	if len(recs) == f.cap && total > uint64(f.cap) {
		cut := int(total % uint64(f.cap))
		recs = append(recs[cut:], recs[:cut]...)
	}
	return recs
}

// FlightObserver adapts one simulation run onto a FlightRecorder: a
// sim.Observer that records every dispatch, binding the run's policy
// once so the per-dispatch path is a field read, not a type assert.
// It additionally keeps per-run path counts (the engine phase spans
// and dvsscen --explain read them). Not safe for concurrent runs —
// one per sim.Run, like every observer.
type FlightObserver struct {
	rec *FlightRecorder
	exp sim.DecisionExplainer

	// PathCounts counts this run's decisions per path.
	PathCounts [nPaths]uint64
	// Dispatches counts this run's dispatch decisions.
	Dispatches uint64
	// Credits is the policy's cumulative harvested credit at the last
	// dispatch.
	Credits float64
}

// Observer builds a per-run FlightObserver feeding f. The policy may
// be nil or not implement sim.DecisionExplainer — decisions are then
// recorded with PathUnknown. Returns a typed nil-free observer even
// when f is nil so per-run counters still work (the ring writes
// no-op).
func (f *FlightRecorder) Observer(p sim.Policy) *FlightObserver {
	o := &FlightObserver{rec: f}
	if exp, ok := p.(sim.DecisionExplainer); ok {
		o.exp = exp
	}
	return o
}

// NewFlightObserver builds a standalone per-run observer with no
// backing ring — counters only (dvsscen --explain local runs).
func NewFlightObserver(p sim.Policy) *FlightObserver {
	return (*FlightRecorder)(nil).Observer(p)
}

// ObserveDispatch implements sim.Observer.
func (o *FlightObserver) ObserveDispatch(t float64, j *sim.JobState, speed float64) {
	var info sim.DecisionInfo
	if o.exp != nil {
		info = o.exp.LastDecision()
	}
	o.Dispatches++
	o.PathCounts[int(info.Path)%nPaths]++
	o.Credits = info.Credits
	o.rec.record(DecisionRecord{
		T:       t,
		Task:    j.TaskIndex,
		Job:     j.Index,
		Speed:   speed,
		Path:    info.Path,
		ScanLen: info.ScanLen,
		Credits: info.Credits,
	})
}

// ObserveRelease implements sim.Observer.
func (o *FlightObserver) ObserveRelease(t float64, j *sim.JobState) {}

// ObserveComplete implements sim.Observer.
func (o *FlightObserver) ObserveComplete(t float64, j *sim.JobState, missed bool) {}

// ObserveIdle implements sim.Observer.
func (o *FlightObserver) ObserveIdle(t0, t1 float64) {}

// ObserveSwitch implements sim.Observer.
func (o *FlightObserver) ObserveSwitch(t, from, to float64) {}

// PathCount returns this run's count for one path.
func (o *FlightObserver) PathCount(p sim.DecisionPath) uint64 {
	return o.PathCounts[int(p)%nPaths]
}

// Explains reports whether the bound policy exposes decision
// provenance (implements sim.DecisionExplainer).
func (o *FlightObserver) Explains() bool { return o.exp != nil }
