package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func buildTestRegistry() (*Registry, *Counter, *CounterVec, *Gauge, *HistogramVec) {
	r := NewRegistry()
	c := r.Counter("test_sims_total", "simulations run")
	cv := r.CounterVec("test_requests_total", "requests by endpoint", "endpoint")
	g := r.Gauge("test_queue_depth", "queued work items")
	hv := r.HistogramVec("test_latency_seconds", "latency by policy", "policy",
		[]float64{0.001, 0.01, 0.1, 1})
	r.GaugeFunc("test_uptime_seconds", "seconds since start", func() float64 { return 12.5 })
	return r, c, cv, g, hv
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	return b.String()
}

func TestExpositionWellFormed(t *testing.T) {
	r, c, cv, g, hv := buildTestRegistry()
	c.Add(3)
	cv.With("simulate").Inc()
	cv.With("jobs.create").Add(2)
	g.Set(-4) // gauges may be negative
	hv.With("lpshe").Observe(0.004)
	hv.With("lpshe").Observe(0.04)
	hv.With("lpshe").Observe(50) // overflow bucket
	hv.With("nonDVS").Observe(0.0005)

	out := render(t, r)
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}

	for _, want := range []string{
		"# HELP test_sims_total simulations run\n# TYPE test_sims_total counter\ntest_sims_total 3\n",
		`test_requests_total{endpoint="jobs.create"} 2`,
		`test_requests_total{endpoint="simulate"} 1`,
		"test_queue_depth -4\n",
		`test_latency_seconds_bucket{policy="lpshe",le="0.001"} 0`,
		`test_latency_seconds_bucket{policy="lpshe",le="+Inf"} 3`,
		`test_latency_seconds_count{policy="lpshe"} 3`,
		`test_latency_seconds_bucket{policy="nonDVS",le="0.001"} 1`,
		"test_uptime_seconds 12.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionHistogramInvariants pins the satellite checklist:
// cumulative bucket counts are monotonically non-decreasing and the
// +Inf bucket equals _count for every labelled series.
func TestExpositionHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("inv_seconds", "h", "policy", []float64{1, 2, 4, 8})
	for i := 0; i < 100; i++ {
		hv.With("a").Observe(float64(i % 11))
		hv.With("b").Observe(float64(i) / 10)
	}
	out := render(t, r)
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("invariants violated: %v\n%s", err, out)
	}
	// The validator itself must catch a non-cumulative document.
	bad := strings.Join([]string{
		"# HELP x_seconds h",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="1"} 5`,
		`x_seconds_bucket{le="2"} 3`, // decreasing: malformed
		`x_seconds_bucket{le="+Inf"} 5`,
		"x_seconds_sum 9",
		"x_seconds_count 5",
	}, "\n")
	if err := ValidateExposition(strings.NewReader(bad)); err == nil {
		t.Error("validator accepted non-cumulative buckets")
	}
	bad2 := strings.ReplaceAll(bad, `{le="2"} 3`, `{le="2"} 5`)
	bad2 = strings.ReplaceAll(bad2, "x_seconds_count 5", "x_seconds_count 7")
	if err := ValidateExposition(strings.NewReader(bad2)); err == nil {
		t.Error("validator accepted +Inf bucket != _count")
	}
}

func TestExpositionStableOrdering(t *testing.T) {
	r, c, cv, _, hv := buildTestRegistry()
	c.Inc()
	cv.With("b").Inc()
	cv.With("a").Inc()
	hv.With("z").Observe(1)
	hv.With("a").Observe(1)

	first := render(t, r)
	for i := 0; i < 5; i++ {
		if got := render(t, r); got != first {
			t.Fatalf("scrape %d differs with no writes in between:\n%s\nvs\n%s", i, got, first)
		}
	}
	if strings.Index(first, `endpoint="a"`) > strings.Index(first, `endpoint="b"`) {
		t.Error("vec children not sorted by label value")
	}
}

func TestValidatorRejectsMalformedLines(t *testing.T) {
	cases := map[string]string{
		"bare comment":      "# hello",
		"sample before any": "orphan_total 1",
		"bad value":         "# HELP a_total h\n# TYPE a_total counter\na_total one",
		"bad name":          "# HELP 9bad h\n# TYPE 9bad counter\n9bad 1",
		"unterminated":      "# HELP a_total h\n# TYPE a_total counter\na_total{x=\"1 2",
		"type mismatch":     "# HELP a_total h\n# TYPE a_total counter\nb_total 1",
	}
	for name, doc := range cases {
		if err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validator accepted %q", name, doc)
		}
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := s.Quantile(0.99); !math.IsInf(got, 1) {
		t.Errorf("p99 = %v, want +Inf (overflow bucket)", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if want := (0.5 + 1 + 1.5 + 3 + 100) / 5; s.Mean() != want {
		t.Errorf("mean = %v, want %v", s.Mean(), want)
	}
}

// TestRegistryConcurrency hammers the registry from parallel writers
// and scrapers; run under -race (the whole suite is), this is the
// registry half of the satellite concurrency check.
func TestRegistryConcurrency(t *testing.T) {
	r, c, cv, g, hv := buildTestRegistry()
	stop := make(chan struct{})
	var writers, scrapers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			labels := []string{"a", "b", "c", "d"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				cv.With(labels[i%len(labels)]).Add(2)
				g.Add(1)
				g.Add(-1)
				hv.With(labels[(i+w)%len(labels)]).Observe(float64(i%100) / 50)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				out := render(t, r)
				if err := ValidateExposition(strings.NewReader(out)); err != nil {
					t.Errorf("concurrent scrape invalid: %v", err)
					return
				}
			}
		}()
	}
	// Scrapers run to completion against live writers, then the
	// writers stop.
	scrapers.Wait()
	close(stop)
	writers.Wait()
}
