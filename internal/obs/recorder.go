package obs

import (
	"fmt"
	"io"
	"strings"

	"dvsslack/internal/sim"
)

// Default bucket bounds of the Recorder histograms. Speeds and slack
// fractions live in (0, 1], so 20 linear buckets resolve one DVS
// level step; idle intervals span task periods across many orders of
// magnitude, so they get a decade-spaced exponential ladder.
var (
	DefaultSpeedBuckets = LinearBuckets(0.05, 0.05, 20)
	DefaultSlackBuckets = LinearBuckets(0.05, 0.05, 20)
	DefaultIdleBuckets  = ExponentialBuckets(1e-3, 10, 8)
)

// Recorder is a sim.Observer that accumulates the scheduling
// distributions the SimDVS-style evaluation argues from: the speed
// level chosen at every dispatch, the slack each completion reclaims
// (the unused fraction of the job's WCET budget — the quantity the
// lpSHE analysis redistributes), idle-interval durations, and
// preemption / context-switch / speed-switch counts.
//
// Every histogram is pre-sized at construction and every callback is
// allocation-free, so attaching a Recorder does not perturb the
// engine's allocation-free decision path (pinned by
// TestRecorderSteadyStateAllocs). A Recorder observes one run at a
// time; aggregate across runs by reusing it, or keep one per policy
// for per-policy statistics (cmd/dvssim -stats).
type Recorder struct {
	// Speeds is the distribution of speeds chosen at dispatch points.
	Speeds *Histogram
	// Slack is the distribution of (WCET-Executed)/WCET over
	// completions: the execution-time slack each job handed back.
	Slack *Histogram
	// Idle is the distribution of idle-interval durations.
	Idle *Histogram

	// Event counts over everything observed so far.
	Releases        uint64
	Dispatches      uint64
	Completions     uint64
	Misses          uint64
	Preemptions     uint64
	ContextSwitches uint64
	SpeedSwitches   uint64
	IdleTime        float64

	last *sim.JobState // most recently dispatched, still incomplete
}

// NewRecorder returns a Recorder over the default bucket bounds.
func NewRecorder() *Recorder {
	return &Recorder{
		Speeds: newHistogram(DefaultSpeedBuckets),
		Slack:  newHistogram(DefaultSlackBuckets),
		Idle:   newHistogram(DefaultIdleBuckets),
	}
}

// Reset clears the counters and the dispatch context but keeps the
// histograms' accumulated samples; use a fresh Recorder for fully
// independent statistics.
func (r *Recorder) Reset() {
	r.Releases, r.Dispatches, r.Completions, r.Misses = 0, 0, 0, 0
	r.Preemptions, r.ContextSwitches, r.SpeedSwitches = 0, 0, 0
	r.IdleTime = 0
	r.last = nil
}

// ObserveRelease implements sim.Observer.
func (r *Recorder) ObserveRelease(t float64, j *sim.JobState) { r.Releases++ }

// ObserveDispatch implements sim.Observer.
func (r *Recorder) ObserveDispatch(t float64, j *sim.JobState, speed float64) {
	r.Dispatches++
	r.Speeds.Observe(speed)
	if r.last != j {
		if r.last != nil {
			r.ContextSwitches++
			if !r.last.Done && r.last.Started {
				r.Preemptions++
			}
		}
		r.last = j
	}
}

// ObserveComplete implements sim.Observer.
func (r *Recorder) ObserveComplete(t float64, j *sim.JobState, missed bool) {
	r.Completions++
	if missed {
		r.Misses++
	}
	if j.WCET > 0 {
		frac := (j.WCET - j.Executed) / j.WCET
		if frac < 0 {
			frac = 0
		}
		r.Slack.Observe(frac)
	}
	if r.last == j {
		r.last = nil
	}
}

// ObserveIdle implements sim.Observer.
func (r *Recorder) ObserveIdle(t0, t1 float64) {
	r.Idle.Observe(t1 - t0)
	r.IdleTime += t1 - t0
}

// ObserveSwitch implements sim.Observer.
func (r *Recorder) ObserveSwitch(t, from, to float64) { r.SpeedSwitches++ }

// WriteText renders the recorder's statistics as an indented text
// block (the cmd/dvssim -stats output).
func (r *Recorder) WriteText(w io.Writer) {
	fmt.Fprintf(w, "  events: %d releases, %d dispatches, %d completions (%d missed)\n",
		r.Releases, r.Dispatches, r.Completions, r.Misses)
	fmt.Fprintf(w, "  switches: %d context, %d preemptions, %d speed changes; idle %.4f\n",
		r.ContextSwitches, r.Preemptions, r.SpeedSwitches, r.IdleTime)
	writeHistText(w, "speed chosen per dispatch", r.Speeds.Snapshot())
	writeHistText(w, "slack reclaimed per completion (fraction of WCET)", r.Slack.Snapshot())
	writeHistText(w, "idle interval duration", r.Idle.Snapshot())
}

// writeHistText prints the non-empty buckets of one histogram with
// proportional bars.
func writeHistText(w io.Writer, title string, s HistSnapshot) {
	fmt.Fprintf(w, "  %s: n=%d mean=%.4f\n", title, s.Count, s.Mean())
	if s.Count == 0 {
		return
	}
	var max uint64
	for _, c := range s.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmtFloat(s.Bounds[i])
		}
		bar := strings.Repeat("#", int(1+c*31/max))
		fmt.Fprintf(w, "    le %-8s %8d %s\n", le, c, bar)
	}
}

// multi fans observer events out to several observers.
type multi []sim.Observer

func (m multi) ObserveRelease(t float64, j *sim.JobState) {
	for _, o := range m {
		o.ObserveRelease(t, j)
	}
}

func (m multi) ObserveDispatch(t float64, j *sim.JobState, speed float64) {
	for _, o := range m {
		o.ObserveDispatch(t, j, speed)
	}
}

func (m multi) ObserveComplete(t float64, j *sim.JobState, missed bool) {
	for _, o := range m {
		o.ObserveComplete(t, j, missed)
	}
}

func (m multi) ObserveIdle(t0, t1 float64) {
	for _, o := range m {
		o.ObserveIdle(t0, t1)
	}
}

func (m multi) ObserveSwitch(t, from, to float64) {
	for _, o := range m {
		o.ObserveSwitch(t, from, to)
	}
}

// Multi combines observers into one, dropping nils: nil for none,
// the observer itself for one, a fan-out for more.
func Multi(obs ...sim.Observer) sim.Observer {
	var out multi
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
