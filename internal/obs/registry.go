// Package obs is the observability layer shared by every dvsslack
// binary: a stdlib-only metrics registry (counters, gauges,
// fixed-bucket histograms with atomic hot paths) that renders the
// Prometheus text exposition format, a shared log/slog configuration
// with per-request IDs, and an allocation-free sim.Observer that
// records per-run scheduling distributions (see Recorder).
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// PromContentType is the Content-Type of the Prometheus text
// exposition format served by Registry.Handler.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one registered metric name: its metadata plus either a
// single unlabelled child (key "") or one child per label value.
type family struct {
	name, help string
	typ        metricType
	label      string         // label name; "" for unlabelled families
	bounds     []float64      // histogram bucket bounds
	fn         func() float64 // value source for *Func families

	mu       sync.RWMutex
	children map[string]any // label value -> *Counter | *Gauge | *Histogram
}

// child returns the metric for one label value, creating it on first
// use with mk.
func (f *family) child(label string, mk func() any) any {
	f.mu.RLock()
	c, ok := f.children[label]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[label]; ok {
		return c
	}
	c = mk()
	f.children[label] = c
	return c
}

// sortedChildren returns (label, metric) pairs in label order, for
// deterministic rendering and snapshots.
func (f *family) sortedChildren() ([]string, []any) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	labels := make([]string, 0, len(f.children))
	for l := range f.children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	vals := make([]any, len(labels))
	for i, l := range labels {
		vals[i] = f.children[l]
	}
	return labels, vals
}

// Registry holds a set of named metrics and renders them in the
// Prometheus text exposition format. Registration methods panic on
// duplicate or invalid names (programming errors); the read and write
// paths of the registered metrics are safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) register(name, help string, typ metricType, label string, bounds []float64, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !validName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, typ: typ, label: label,
		bounds: bounds, fn: fn, children: map[string]any{}}
	r.fams[name] = f
	return f
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, "", nil, nil)
	return f.child("", func() any { return &Counter{} }).(*Counter)
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, "", nil, nil)
	return f.child("", func() any { return &Gauge{} }).(*Gauge)
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time (for totals owned by another component).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, typeCounter, "", nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, typeGauge, "", nil, fn)
}

// Histogram registers and returns an unlabelled histogram over the
// given bucket upper bounds (strictly increasing, finite).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(name, help, typeHistogram, "", bounds, nil)
	return f.child("", func() any { return newHistogram(bounds) }).(*Histogram)
}

// CounterVec is a family of counters partitioned by one label.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, label, nil, nil)}
}

// With returns the counter for one label value, creating it on first
// use.
func (v *CounterVec) With(label string) *Counter {
	return v.f.child(label, func() any { return &Counter{} }).(*Counter)
}

// Each calls fn for every child in label order.
func (v *CounterVec) Each(fn func(label string, c *Counter)) {
	labels, vals := v.f.sortedChildren()
	for i, l := range labels {
		fn(l, vals[i].(*Counter))
	}
}

// HistogramVec is a family of histograms partitioned by one label,
// all sharing the same bucket bounds.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	// Validate the bounds once, eagerly, so a bad registration fails
	// at startup rather than at the first labelled observation.
	newHistogram(bounds)
	return &HistogramVec{f: r.register(name, help, typeHistogram, label, bounds, nil)}
}

// With returns the histogram for one label value, creating it on
// first use.
func (v *HistogramVec) With(label string) *Histogram {
	return v.f.child(label, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// Each calls fn for every child in label order.
func (v *HistogramVec) Each(fn func(label string, h *Histogram)) {
	labels, vals := v.f.sortedChildren()
	for i, l := range labels {
		fn(l, vals[i].(*Histogram))
	}
}

// --- rendering ---

// WriteProm renders every registered metric in the Prometheus text
// exposition format. Families are emitted in name order and children
// in label order, so consecutive scrapes with no writes in between
// are byte-identical.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.fams[n]
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.fn != nil {
			fmt.Fprintf(&b, "%s %s\n", f.name, fmtFloat(f.fn()))
			continue
		}
		labels, children := f.sortedChildren()
		for i, lv := range labels {
			switch m := children[i].(type) {
			case *Counter:
				writeSample(&b, f.name, f.label, lv, m.Value())
			case *Gauge:
				writeSample(&b, f.name, f.label, lv, m.Value())
			case *Histogram:
				writeHistogram(&b, f.name, f.label, lv, m.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the exposition (the
// /metrics.prom endpoint body).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		r.WriteProm(w)
	})
}

func writeSample(b *strings.Builder, name, label, lv string, v float64) {
	b.WriteString(name)
	writeLabels(b, label, lv, "")
	b.WriteByte(' ')
	b.WriteString(fmtFloat(v))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name, label, lv string, s HistSnapshot) {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmtFloat(s.Bounds[i])
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, label, lv, le)
		fmt.Fprintf(b, " %d\n", cum)
	}
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, label, lv, "")
	fmt.Fprintf(b, " %s\n", fmtFloat(s.Sum))
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, label, lv, "")
	fmt.Fprintf(b, " %d\n", cum)
}

// writeLabels emits the {label="value",le="..."} block, omitting
// empty parts.
func writeLabels(b *strings.Builder, label, lv, le string) {
	if label == "" && le == "" {
		return
	}
	b.WriteByte('{')
	if label != "" {
		b.WriteString(label)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(lv))
		b.WriteByte('"')
		if le != "" {
			b.WriteByte(',')
		}
	}
	if le != "" {
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
