package obs

import (
	"strings"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

func recorderRunConfig(t *testing.T) sim.Config {
	t.Helper()
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 1))
	return sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    &dvs.CCEDF{},
		Workload:  workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1},
	}
}

func TestRecorderMatchesResultCounters(t *testing.T) {
	cfg := recorderRunConfig(t)
	rec := NewRecorder()
	cfg.Observer = rec
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Releases != uint64(res.JobsReleased) {
		t.Errorf("releases: recorder %d, result %d", rec.Releases, res.JobsReleased)
	}
	if rec.Completions != uint64(res.JobsCompleted) {
		t.Errorf("completions: recorder %d, result %d", rec.Completions, res.JobsCompleted)
	}
	if rec.Misses != uint64(res.DeadlineMisses) {
		t.Errorf("misses: recorder %d, result %d", rec.Misses, res.DeadlineMisses)
	}
	if rec.Preemptions != uint64(res.Preemptions) {
		t.Errorf("preemptions: recorder %d, result %d", rec.Preemptions, res.Preemptions)
	}
	if rec.SpeedSwitches != uint64(res.SpeedSwitches) {
		t.Errorf("speed switches: recorder %d, result %d", rec.SpeedSwitches, res.SpeedSwitches)
	}
	if got, want := rec.IdleTime, res.IdleTime; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("idle time: recorder %v, result %v", got, want)
	}
	if rec.Speeds.Snapshot().Count != uint64(res.Decisions) {
		t.Errorf("speed samples: %d, want one per decision (%d)",
			rec.Speeds.Snapshot().Count, res.Decisions)
	}
	if rec.Slack.Snapshot().Count != uint64(res.JobsCompleted) {
		t.Errorf("slack samples: %d, want one per completion (%d)",
			rec.Slack.Snapshot().Count, res.JobsCompleted)
	}
	// The workload draws AET ~ U[0.5,1]·WCET, so reclaimed slack
	// fractions must land in [0, 0.5] — nothing in the upper buckets.
	slack := rec.Slack.Snapshot()
	for i, c := range slack.Counts {
		if i < len(slack.Bounds) && slack.Bounds[i] > 0.55 && c > 0 {
			t.Errorf("slack fraction bucket le=%v has %d samples; workload caps slack at 0.5",
				slack.Bounds[i], c)
		}
	}

	var b strings.Builder
	rec.WriteText(&b)
	for _, want := range []string{"speed chosen per dispatch", "slack reclaimed", "idle interval"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("WriteText missing %q:\n%s", want, b.String())
		}
	}
}

// TestRecorderSteadyStateAllocs extends the engine's AllocsPerRun
// guard to the instrumentation observer: a run with a Recorder
// attached must stay within the same budget as a bare run — one
// allocation per released job plus a constant setup term — proving
// the observer callbacks are allocation-free.
func TestRecorderSteadyStateAllocs(t *testing.T) {
	cfg := recorderRunConfig(t)
	rec := NewRecorder()
	cfg.Observer = rec
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions < 50 || res.JobsReleased < 50 {
		t.Fatalf("trivial run: %d decisions, %d jobs", res.Decisions, res.JobsReleased)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := sim.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// The same budget shape as sim's TestEngineDecisionSteadyStateAllocs:
	// the Recorder adds zero per-event allocations, so observing must
	// not widen it.
	budget := float64(res.JobsReleased) + 24
	if allocs > budget {
		t.Errorf("observed run allocates %v (budget %v for %d jobs, %d decisions): the observer is allocating",
			allocs, budget, res.JobsReleased, res.Decisions)
	}
}

func TestMulti(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils should be nil")
	}
	a, b := NewRecorder(), NewRecorder()
	if Multi(a, nil) != sim.Observer(a) {
		t.Error("Multi of one observer should return it unchanged")
	}
	cfg := recorderRunConfig(t)
	cfg.Observer = Multi(a, b)
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if a.Releases == 0 || a.Releases != b.Releases || a.Dispatches != b.Dispatches {
		t.Errorf("fan-out mismatch: a{rel %d dis %d} b{rel %d dis %d}",
			a.Releases, a.Dispatches, b.Releases, b.Dispatches)
	}
}
