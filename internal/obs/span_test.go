package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	h := sc.Traceparent()
	if len(h) != 55 || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("traceparent %q has the wrong shape", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own rendering", h)
	}
	if got != sc {
		t.Fatalf("round trip = %+v, want %+v", got, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}.Traceparent()
	bad := map[string]string{
		"empty":         "",
		"truncated":     valid[:54],
		"wrong dashes":  strings.Replace(valid, "-", "_", 1),
		"version ff":    "ff" + valid[2:],
		"zero trace id": "00-" + strings.Repeat("0", 32) + valid[35:],
		"zero span id":  valid[:36] + strings.Repeat("0", 16) + valid[52:],
		"non-hex trace": "00-" + strings.Repeat("zz", 16) + valid[35:],
		"trailing junk": valid + "x",
	}
	for name, in := range bad {
		if _, ok := ParseTraceparent(in); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, in)
		}
	}
	// Future versions may append dash-separated fields; a receiver
	// stays lenient about those.
	if _, ok := ParseTraceparent(valid + "-vendorstuff"); !ok {
		t.Error("dash-extended traceparent rejected; receivers must tolerate future fields")
	}
}

func TestTracerRingAndDump(t *testing.T) {
	tr := NewTracer("test", 2)
	root := tr.StartSpan(SpanContext{}, "root")
	child := tr.StartSpan(root.Context(), "child")
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child did not join the parent's trace")
	}
	root.SetAttr("k", "v")
	root.End()
	root.End() // double End is a no-op
	child.End()
	tr.StartSpan(root.Context(), "evictor").End()

	d := tr.Dump()
	if d.Service != "test" || d.Capacity != 2 {
		t.Fatalf("dump header = %+v", d)
	}
	if d.Total != 3 || d.Dropped != 1 || len(d.Spans) != 2 {
		t.Fatalf("ring accounting: total=%d dropped=%d kept=%d, want 3/1/2", d.Total, d.Dropped, len(d.Spans))
	}
	for _, s := range d.Spans {
		if s.TraceID != root.Context().TraceID.String() {
			t.Errorf("span %s has trace %s, want %s", s.Name, s.TraceID, root.Context().TraceID)
		}
	}
}

func TestTracerEmitParenting(t *testing.T) {
	tr := NewTracer("test", 8)
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	child := tr.Emit(parent, "phase", time.Now(), time.Millisecond, map[string]string{"n": "3"})
	if child.TraceID != parent.TraceID {
		t.Fatal("Emit did not join the parent trace")
	}
	d := tr.Dump()
	if len(d.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(d.Spans))
	}
	s := d.Spans[0]
	if s.ParentID != parent.SpanID.String() || s.Name != "phase" || s.Attrs["n"] != "3" {
		t.Fatalf("emitted span = %+v", s)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	span := tr.StartSpan(SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}, "x")
	if span != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	span.SetAttr("k", "v") // must not panic
	span.End()
	if sc := span.Context(); sc.Valid() {
		t.Fatal("nil span has a valid context")
	}
	if sc := tr.Emit(SpanContext{}, "y", time.Now(), 0, nil); sc.Valid() {
		t.Fatal("nil tracer Emit returned a valid context")
	}
	if d := tr.Dump(); d.Spans == nil || len(d.Spans) != 0 {
		t.Fatalf("nil tracer dump = %+v, want empty non-nil spans", d)
	}
}

func TestSpanContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if _, ok := SpanContextFromContext(ctx); ok {
		t.Fatal("empty context reported a span context")
	}
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	ctx = ContextWithSpanContext(ctx, sc)
	if got, ok := SpanContextFromContext(ctx); !ok || got != sc {
		t.Fatalf("span context round trip = %+v, %v", got, ok)
	}
	ctx = ContextWithRequestID(ctx, "req-1")
	if id, ok := RequestIDFromContext(ctx); !ok || id != "req-1" {
		t.Fatalf("request id round trip = %q, %v", id, ok)
	}
}

func TestValidRequestID(t *testing.T) {
	good := []string{"a", "abc-123", "x.y:z_w", strings.Repeat("a", 128), NewRequestID()}
	for _, id := range good {
		if !ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = false, want true", id)
		}
	}
	bad := []string{"", "has space", "tab\there", "new\nline", strings.Repeat("a", 129), "é", `quo"te`}
	for _, id := range bad {
		if ValidRequestID(id) {
			t.Errorf("ValidRequestID(%q) = true, want false", id)
		}
	}
}
