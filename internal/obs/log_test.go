package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestLogConfigLevelsAndFormats(t *testing.T) {
	var b strings.Builder
	log, err := LogConfig{Level: "warn", Format: "text"}.New(&b)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown", "k", "v")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("warn-level logger filtered wrong: %q", out)
	}

	b.Reset()
	log, err = LogConfig{Level: "debug", Format: "json"}.New(&b)
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("payload", "answer", 42)
	var rec map[string]any
	if err := json.Unmarshal([]byte(b.String()), &rec); err != nil {
		t.Fatalf("json handler emitted non-JSON %q: %v", b.String(), err)
	}
	if rec["msg"] != "payload" || rec["answer"] != float64(42) {
		t.Errorf("unexpected record: %v", rec)
	}

	if _, err := (LogConfig{Level: "loud"}).New(&b); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := (LogConfig{Format: "xml"}).New(&b); err == nil {
		t.Error("bad format accepted")
	}
}

func TestDiscardDropsEverything(t *testing.T) {
	// Must not panic and must report disabled at every level.
	log := Discard()
	log.Error("nobody hears this")
	if log.Enabled(nil, 0) { //nolint:staticcheck // nil ctx fine for handler probe
		t.Error("discard logger claims to be enabled")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %s", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("unexpected id shape %q", id)
		}
	}
}
