package obs

import (
	"testing"

	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

// stubExplainer is a minimal policy implementing sim.DecisionExplainer
// with a scripted path sequence.
type stubExplainer struct {
	sim.NopHooks
	seq []sim.DecisionInfo
	i   int
}

func (s *stubExplainer) Name() string                        { return "stub" }
func (s *stubExplainer) Reset(sim.System)                    {}
func (s *stubExplainer) SelectSpeed(j *sim.JobState) float64 { return 1 }
func (s *stubExplainer) LastDecision() (info sim.DecisionInfo) {
	info = s.seq[s.i%len(s.seq)]
	s.i++
	return info
}

func dispatch(o *FlightObserver, t float64) {
	o.ObserveDispatch(t, &sim.JobState{Job: rtm.Job{TaskIndex: 0, Index: 0}}, 0.5)
}

func TestFlightRecorderRingRotation(t *testing.T) {
	fr := NewFlightRecorder(4)
	exp := &stubExplainer{seq: []sim.DecisionInfo{
		{Path: sim.PathStaircase},
		{Path: sim.PathCertificate, ScanLen: 3},
		{Path: sim.PathFullScan, ScanLen: 9, Credits: 1.5},
	}}
	o := fr.Observer(exp)
	for i := 0; i < 10; i++ {
		dispatch(o, float64(i))
	}

	s := fr.Snapshot()
	if s.Capacity != 4 || s.Total != 10 || s.Dropped != 6 {
		t.Fatalf("snapshot accounting = cap %d total %d dropped %d, want 4/10/6", s.Capacity, s.Total, s.Dropped)
	}
	if len(s.Records) != 4 {
		t.Fatalf("retained %d records, want 4", len(s.Records))
	}
	for i, r := range s.Records {
		if want := uint64(6 + i); r.Seq != want {
			t.Errorf("record %d seq = %d, want %d (ring not rotated to sequence order)", i, r.Seq, want)
		}
	}
	var pathTotal uint64
	for _, n := range s.Paths {
		pathTotal += n
	}
	if pathTotal != 10 {
		t.Errorf("lifetime path counts sum to %d, want 10 (%v)", pathTotal, s.Paths)
	}
	if s.Paths[sim.PathStaircase.String()] != 4 {
		t.Errorf("staircase count = %d, want 4", s.Paths[sim.PathStaircase.String()])
	}

	recs := fr.Records()
	if len(recs) != 4 || recs[0].Seq != 6 || recs[3].Seq != 9 {
		t.Fatalf("Records() = seqs %d..%d (%d), want 6..9", recs[0].Seq, recs[len(recs)-1].Seq, len(recs))
	}
}

func TestFlightObserverCounters(t *testing.T) {
	exp := &stubExplainer{seq: []sim.DecisionInfo{
		{Path: sim.PathStaircase},
		{Path: sim.PathAdaptiveCap, ScanLen: 2, Credits: 0.25},
	}}
	o := NewFlightObserver(exp) // no backing ring
	if !o.Explains() {
		t.Fatal("Explains() = false for a DecisionExplainer policy")
	}
	for i := 0; i < 6; i++ {
		dispatch(o, float64(i))
	}
	if o.Dispatches != 6 {
		t.Fatalf("dispatches = %d, want 6", o.Dispatches)
	}
	if o.PathCount(sim.PathStaircase) != 3 || o.PathCount(sim.PathAdaptiveCap) != 3 {
		t.Fatalf("path counts = staircase %d adaptive %d, want 3/3",
			o.PathCount(sim.PathStaircase), o.PathCount(sim.PathAdaptiveCap))
	}
	if o.Credits != 0.25 {
		t.Fatalf("credits = %v, want 0.25 (last reported)", o.Credits)
	}

	// A policy without provenance records PathUnknown.
	plain := NewFlightObserver(nil)
	if plain.Explains() {
		t.Fatal("Explains() = true for a nil policy")
	}
	dispatch(plain, 0)
	if plain.PathCount(sim.PathUnknown) != 1 {
		t.Fatal("nil-policy dispatch not counted as unknown")
	}
}

func TestNilFlightRecorderIsInert(t *testing.T) {
	var fr *FlightRecorder
	fr.record(DecisionRecord{}) // must not panic
	o := fr.Observer(nil)
	dispatch(o, 1) // ring write is a no-op, counters still work
	if o.Dispatches != 1 {
		t.Fatal("nil-ring observer lost its counter")
	}
	if s := fr.Snapshot(); s.Total != 0 || len(s.Records) != 0 || s.Records == nil {
		t.Fatalf("nil recorder snapshot = %+v", s)
	}
	if recs := fr.Records(); recs != nil {
		t.Fatalf("nil recorder Records() = %v, want nil", recs)
	}
}

// TestFlightRecorderSteadyStateAllocs pins the zero-allocation
// contract of the write path: once the ring is full-grown, recording a
// decision allocates nothing (records are overwritten in place), so an
// always-on flight recorder cannot add GC pressure to the engine's
// dispatch path.
func TestFlightRecorderSteadyStateAllocs(t *testing.T) {
	fr := NewFlightRecorder(8)
	exp := &stubExplainer{seq: []sim.DecisionInfo{{Path: sim.PathStaircase}}}
	o := fr.Observer(exp)
	j := &sim.JobState{Job: rtm.Job{TaskIndex: 1, Index: 2}}
	for i := 0; i < 16; i++ { // grow past capacity
		o.ObserveDispatch(float64(i), j, 1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		o.ObserveDispatch(42, j, 1)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveDispatch allocates %.1f objects/op, want 0", allocs)
	}
}
