package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ValidateExposition checks a Prometheus text exposition document of
// the dialect this package renders: every family has a # HELP line
// immediately followed by # TYPE, samples belong to the most recently
// declared family (histogram samples via the _bucket/_sum/_count
// suffixes), sample lines parse, histogram bucket counts are
// cumulative (monotonically non-decreasing in le order), and each
// histogram's +Inf bucket equals its _count. It returns the first
// problem found, with its line number.
//
// The verify.sh smoke pass and the /metrics.prom tests both lean on
// this, so a rendering regression fails loudly in three places.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)

	type histState struct {
		lastLe  float64
		lastCum float64
		sawInf  bool
		infVal  float64
		count   float64
		sawCnt  bool
	}
	var (
		line    int
		curFam  string
		curTyp  string
		helpFor string                    // family that has a HELP but no TYPE yet
		hists   = map[string]*histState{} // family+labels (minus le)
		order   []string
		seen    = map[string]bool{}
	)
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", line, text)
			}
			name := fields[2]
			if !validName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", line, name)
			}
			switch fields[1] {
			case "HELP":
				if seen[name] {
					return fmt.Errorf("line %d: family %s declared twice", line, name)
				}
				seen[name] = true
				order = append(order, name)
				helpFor = name
			case "TYPE":
				if len(fields) < 4 {
					return fmt.Errorf("line %d: TYPE without a type: %q", line, text)
				}
				if name != helpFor {
					return fmt.Errorf("line %d: TYPE %s not preceded by its HELP", line, name)
				}
				typ := fields[3]
				if typ != "counter" && typ != "gauge" && typ != "histogram" {
					return fmt.Errorf("line %d: unknown type %q", line, typ)
				}
				curFam, curTyp, helpFor = name, typ, ""
			}
			continue
		}

		name, labels, le, value, err := parseSample(text)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		if curFam == "" {
			return fmt.Errorf("line %d: sample %s before any TYPE declaration", line, name)
		}
		switch curTyp {
		case "counter", "gauge":
			if name != curFam {
				return fmt.Errorf("line %d: sample %s under family %s", line, name, curFam)
			}
			if curTyp == "counter" && value < 0 {
				return fmt.Errorf("line %d: negative counter %s = %v", line, name, value)
			}
		case "histogram":
			key := curFam + "{" + labels + "}"
			h := hists[key]
			if h == nil {
				h = &histState{lastLe: math.Inf(-1)}
				hists[key] = h
			}
			switch name {
			case curFam + "_bucket":
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", line)
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q: %v", line, le, err)
					}
				}
				if bound <= h.lastLe {
					return fmt.Errorf("line %d: le %q out of order", line, le)
				}
				if value < h.lastCum {
					return fmt.Errorf("line %d: bucket count %v below previous %v (not cumulative)",
						line, value, h.lastCum)
				}
				h.lastLe, h.lastCum = bound, value
				if le == "+Inf" {
					h.sawInf, h.infVal = true, value
				}
			case curFam + "_sum":
				// any float is legal
			case curFam + "_count":
				h.sawCnt, h.count = true, value
			default:
				return fmt.Errorf("line %d: sample %s under histogram %s", line, name, curFam)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		if !h.sawInf {
			return fmt.Errorf("histogram series %s has no +Inf bucket", key)
		}
		if !h.sawCnt {
			return fmt.Errorf("histogram series %s has no _count", key)
		}
		if h.infVal != h.count {
			return fmt.Errorf("histogram series %s: +Inf bucket %v != _count %v", key, h.infVal, h.count)
		}
	}
	if !sort.StringsAreSorted(order) {
		return fmt.Errorf("families not in sorted order: %v", order)
	}
	return nil
}

// parseSample splits `name{label="v",le="x"} value` into parts.
// labels is the raw label block minus any le pair (the histogram
// series key); le is the le label value if present.
func parseSample(s string) (name, labels, le string, value float64, err error) {
	rest := s
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", "", 0, fmt.Errorf("unterminated label block in %q", s)
		}
		var keep []string
		block := rest[i+1 : j]
		rest = rest[j+1:]
		for _, pair := range splitLabelPairs(block) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", "", "", 0, fmt.Errorf("malformed label pair %q in %q", pair, s)
			}
			if !validName(k) {
				return "", "", "", 0, fmt.Errorf("invalid label name %q in %q", k, s)
			}
			if k == "le" {
				le = v[1 : len(v)-1]
			} else {
				keep = append(keep, pair)
			}
		}
		labels = strings.Join(keep, ",")
	} else if i := strings.IndexByte(rest, ' '); i >= 0 {
		name, rest = rest[:i], rest[i:]
	}
	if !validName(name) {
		return "", "", "", 0, fmt.Errorf("invalid metric name in %q", s)
	}
	rest = strings.TrimSpace(rest)
	value, err = strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", "", "", 0, fmt.Errorf("bad sample value %q in %q", rest, s)
	}
	return name, labels, le, value, nil
}

// splitLabelPairs splits a label block on commas outside quotes.
func splitLabelPairs(block string) []string {
	if block == "" {
		return nil
	}
	var (
		out     []string
		start   int
		inQuote bool
	)
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, block[start:i])
				start = i + 1
			}
		}
	}
	return append(out, block[start:])
}
