package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Exposition federation: the dvsfleet coordinator scrapes every
// worker's /metrics.prom, tags each worker's samples with a
// worker="<addr>" label, folds in its own registry, and serves one
// merged document. The merge preserves this package's exposition
// invariants — every family has HELP immediately followed by TYPE,
// families appear in sorted name order, per-series sample order (and
// therefore cumulative histogram bucket order) is preserved — so the
// output passes ValidateExposition exactly like a single registry's.

// ExpositionSource is one document to merge. With Label non-empty,
// every sample line gets `<labelName>="<Label>"` injected as its
// first label; with Label empty the samples pass through untouched
// (the coordinator's own registry).
type ExpositionSource struct {
	Label string
	Text  string
}

// expFamily accumulates one metric family across sources.
type expFamily struct {
	help    string // full "# HELP ..." line
	typ     string // full "# TYPE ..." line
	typName string // counter | gauge | histogram
	samples []string
}

// MergeExpositions merges Prometheus text documents into w, injecting
// labelName (e.g. "worker") with each source's Label value. Sources
// are processed in the given order; callers sort them (coordinator
// first, workers by address) for deterministic output. A family
// declared by several sources keeps the first HELP/TYPE seen; a TYPE
// conflict is an error.
func MergeExpositions(w io.Writer, labelName string, sources []ExpositionSource) error {
	if !validName(labelName) {
		return fmt.Errorf("obs: invalid federation label name %q", labelName)
	}
	fams := map[string]*expFamily{}
	var order []string

	for _, src := range sources {
		var cur *expFamily
		sc := bufio.NewScanner(strings.NewReader(src.Text))
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				fields := strings.SplitN(line, " ", 4)
				if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
					return fmt.Errorf("obs: malformed comment %q", line)
				}
				name := fields[2]
				switch fields[1] {
				case "HELP":
					f := fams[name]
					if f == nil {
						f = &expFamily{help: line}
						fams[name] = f
						order = append(order, name)
					}
					cur = f
				case "TYPE":
					if len(fields) < 4 {
						return fmt.Errorf("obs: TYPE without a type: %q", line)
					}
					f := fams[name]
					if f == nil || f != cur {
						return fmt.Errorf("obs: TYPE %s not preceded by its HELP", name)
					}
					if f.typ == "" {
						f.typ, f.typName = line, fields[3]
					} else if f.typName != fields[3] {
						return fmt.Errorf("obs: family %s declared %s by one source, %s by another",
							name, f.typName, fields[3])
					}
					cur = f
				}
				continue
			}
			if cur == nil {
				return fmt.Errorf("obs: sample before any family declaration: %q", line)
			}
			out, err := injectLabel(line, labelName, src.Label)
			if err != nil {
				return err
			}
			cur.samples = append(cur.samples, out)
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}

	sort.Strings(order)
	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := fams[name]
		if f.typ == "" {
			return fmt.Errorf("obs: family %s has HELP but no TYPE", name)
		}
		fmt.Fprintln(bw, f.help)
		fmt.Fprintln(bw, f.typ)
		for _, s := range f.samples {
			fmt.Fprintln(bw, s)
		}
	}
	return bw.Flush()
}

// injectLabel rewrites one sample line, inserting label=value as the
// first pair of the label block (creating the block when absent).
// With value empty the line passes through unchanged.
func injectLabel(line, label, value string) (string, error) {
	if value == "" {
		return line, nil
	}
	pair := label + `="` + escapeLabelValue(value) + `"`
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", fmt.Errorf("obs: unterminated label block in %q", line)
		}
		if j == i+1 { // empty block
			return line[:i+1] + pair + line[j:], nil
		}
		return line[:i+1] + pair + "," + line[i+1:], nil
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", fmt.Errorf("obs: malformed sample %q", line)
	}
	return line[:i] + "{" + pair + "}" + line[i:], nil
}

// escapeLabelValue applies the Prometheus text-format label escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}
