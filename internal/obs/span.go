package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed tracing, stdlib-only. A trace is a tree of spans that
// may cross processes: the client originates a trace, the fleet
// coordinator continues it around routing, dvsd continues it through
// admission → handler → simulation, and the engine contributes phase
// spans. Propagation uses the W3C trace-context header shape
// ("traceparent: 00-<32 hex trace id>-<16 hex span id>-01"), so the
// tree reassembles from the span dumps of all three processes by
// trace ID alone.
//
// Tracing is deliberately inert with respect to the simulation: span
// recording happens strictly outside sim.Run, IDs come from
// crypto/rand (never from the simulation's seeded streams), and a nil
// *Tracer is a safe no-op everywhere — handlers always extract and
// propagate the header whether or not spans are being recorded, so
// enabling a buffer cannot change any request's observable bytes.

// TraceID is the 16-byte trace identifier (32 hex digits on the
// wire).
type TraceID [16]byte

// SpanID is the 8-byte span identifier (16 hex digits on the wire).
type SpanID [8]byte

// String returns the lower-hex wire form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the lower-hex wire form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is all zeros (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is all zeros (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// SpanContext identifies one span within one trace — the part of a
// span that crosses process boundaries.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero.
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the W3C trace-context header value
// (version 00, flags 01 = sampled).
func (sc SpanContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, sc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sc.SpanID[:])
	b = append(b, "-01"...)
	return string(b)
}

// TraceparentHeader is the propagation header name.
const TraceparentHeader = "Traceparent"

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version except the reserved "ff", requires non-zero IDs, and
// ignores the flag octets beyond checking their shape — exactly the
// leniency the spec asks of a receiver.
func ParseTraceparent(s string) (SpanContext, bool) {
	// 00-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx-xxxxxxxxxxxxxxxx-00
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	if len(s) > 55 && s[55] != '-' {
		return SpanContext{}, false // version 00 has exactly 4 fields
	}
	if s[0:2] == "ff" {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.DecodeString(s[53:55]); err != nil {
		return SpanContext{}, false
	}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// idState seeds span/trace ID generation once from crypto/rand and
// then advances a SplitMix64 counter — unique without syscalls or
// locks on the per-span path.
var idState = func() *atomic.Uint64 {
	var b [8]byte
	var v atomic.Uint64
	if _, err := rand.Read(b[:]); err == nil {
		v.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		v.Store(uint64(time.Now().UnixNano()))
	}
	return &v
}()

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// NewTraceID returns a fresh non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	binary.BigEndian.PutUint64(t[0:8], nextID())
	binary.BigEndian.PutUint64(t[8:16], nextID())
	return t
}

// NewSpanID returns a fresh non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	binary.BigEndian.PutUint64(s[:], nextID())
	return s
}

type spanCtxKey struct{}
type requestIDKey struct{}

// ContextWithSpanContext returns ctx carrying sc for downstream
// handlers and outbound clients.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFromContext returns the span context carried by ctx, if
// any.
func SpanContextFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// ContextWithRequestID returns ctx carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID carried by ctx, if any.
func RequestIDFromContext(ctx context.Context) (string, bool) {
	id, ok := ctx.Value(requestIDKey{}).(string)
	return id, ok && id != ""
}

// ValidRequestID reports whether an inbound X-Request-ID is safe to
// adopt: 1–128 bytes of [A-Za-z0-9._:-]. Anything else (empty,
// oversized, spaces, control bytes — log-injection shapes) is
// rejected and a fresh ID minted instead.
func ValidRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == ':' || c == '-':
		default:
			return false
		}
	}
	return true
}

// SpanRecord is one finished span as stored and dumped. Start is
// wall-clock (for cross-process alignment); Duration is measured on
// the monotonic clock.
type SpanRecord struct {
	TraceID     string            `json:"trace_id"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	Name        string            `json:"name"`
	Service     string            `json:"service"`
	StartUnixNs int64             `json:"start_unix_ns"`
	DurationNs  int64             `json:"duration_ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// Tracer records finished spans into a bounded ring buffer. All
// methods are safe on a nil receiver (strict no-op) and for
// concurrent use. The ring keeps the most recent spans; total/dropped
// counters make truncation visible in dumps.
type Tracer struct {
	service string
	cap     int

	mu    sync.Mutex
	buf   []SpanRecord
	total uint64
}

// NewTracer builds a Tracer for one service ("client", "dvsfleet",
// "dvsd") holding up to capacity finished spans (≤0 → 2048).
func NewTracer(service string, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 2048
	}
	return &Tracer{service: service, cap: capacity, buf: make([]SpanRecord, 0, capacity)}
}

// Service returns the service name, "" on a nil tracer.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Capacity returns the ring size, 0 on a nil tracer.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.cap
}

// Span is one in-flight operation. A nil *Span (from a nil Tracer) is
// a safe no-op.
type Span struct {
	tracer *Tracer
	sc     SpanContext
	parent SpanID
	name   string
	start  time.Time
	attrs  map[string]string
	done   atomic.Bool
}

// StartSpan opens a span. With a valid parent the span joins the
// parent's trace; otherwise it roots a fresh trace. Returns nil on a
// nil tracer — Span methods tolerate that.
func (t *Tracer) StartSpan(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	sc := SpanContext{SpanID: NewSpanID()}
	var parentID SpanID
	if parent.Valid() {
		sc.TraceID = parent.TraceID
		parentID = parent.SpanID
	} else {
		sc.TraceID = NewTraceID()
	}
	return &Span{tracer: t, sc: sc, parent: parentID, name: name, start: time.Now()}
}

// Context returns the span's SpanContext (zero value on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// End finishes the span and commits it to the tracer's ring. Safe to
// call at most once; extra calls are ignored.
func (s *Span) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	rec := SpanRecord{
		TraceID:     s.sc.TraceID.String(),
		SpanID:      s.sc.SpanID.String(),
		Name:        s.name,
		Service:     s.tracer.service,
		StartUnixNs: s.start.UnixNano(),
		DurationNs:  time.Since(s.start).Nanoseconds(),
		Attrs:       s.attrs,
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	s.tracer.commit(rec)
}

// Emit records an already-measured span — the after-the-fact shape
// used for engine phases, where the timing exists before the span
// does. No-op on a nil tracer. Returns the context the emitted span
// would hand to children.
func (t *Tracer) Emit(parent SpanContext, name string, start time.Time, d time.Duration, attrs map[string]string) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	sc := SpanContext{SpanID: NewSpanID()}
	rec := SpanRecord{
		Name:        name,
		Service:     t.service,
		StartUnixNs: start.UnixNano(),
		DurationNs:  d.Nanoseconds(),
		Attrs:       attrs,
	}
	if parent.Valid() {
		sc.TraceID = parent.TraceID
		rec.ParentID = parent.SpanID.String()
	} else {
		sc.TraceID = NewTraceID()
	}
	rec.TraceID = sc.TraceID.String()
	rec.SpanID = sc.SpanID.String()
	t.commit(rec)
	return sc
}

func (t *Tracer) commit(rec SpanRecord) {
	t.mu.Lock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, rec)
	} else {
		t.buf[t.total%uint64(t.cap)] = rec
	}
	t.total++
	t.mu.Unlock()
}

// TraceDump is the JSON document served by GET /debug/trace.
type TraceDump struct {
	Service string `json:"service"`
	// Capacity is the ring size; Total counts spans ever committed;
	// Dropped = Total − len(Spans) is how many the ring evicted.
	Capacity int          `json:"capacity"`
	Total    uint64       `json:"total"`
	Dropped  uint64       `json:"dropped"`
	Spans    []SpanRecord `json:"spans"`
}

// Dump snapshots the ring, oldest span first (stable order: start
// time, then span ID). Safe on nil (empty dump).
func (t *Tracer) Dump() TraceDump {
	if t == nil {
		return TraceDump{Spans: []SpanRecord{}}
	}
	t.mu.Lock()
	spans := make([]SpanRecord, len(t.buf))
	copy(spans, t.buf)
	total := t.total
	t.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartUnixNs != spans[j].StartUnixNs {
			return spans[i].StartUnixNs < spans[j].StartUnixNs
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	return TraceDump{
		Service:  t.service,
		Capacity: t.cap,
		Total:    total,
		Dropped:  total - uint64(len(spans)),
		Spans:    spans,
	}
}

// WriteJSON writes the dump as indented JSON.
func (t *Tracer) WriteJSON(enc *json.Encoder) error {
	return enc.Encode(t.Dump())
}
