package obs

import (
	"strings"
	"testing"
)

const coordExpo = `# HELP fleet_requests_total Requests routed.
# TYPE fleet_requests_total counter
fleet_requests_total{endpoint="simulate"} 4
`

const worker1Expo = `# HELP dvsd_http_seconds Request latency.
# TYPE dvsd_http_seconds histogram
dvsd_http_seconds_bucket{le="0.1"} 2
dvsd_http_seconds_bucket{le="+Inf"} 3
dvsd_http_seconds_sum 0.25
dvsd_http_seconds_count 3
# HELP dvsd_sims_total Simulations run.
# TYPE dvsd_sims_total counter
dvsd_sims_total 3
`

const worker2Expo = `# HELP dvsd_sims_total Simulations run.
# TYPE dvsd_sims_total counter
dvsd_sims_total 1
`

func TestMergeExpositions(t *testing.T) {
	var out strings.Builder
	err := MergeExpositions(&out, "worker", []ExpositionSource{
		{Label: "", Text: coordExpo},
		{Label: "127.0.0.1:1", Text: worker1Expo},
		{Label: "127.0.0.1:2", Text: worker2Expo},
	})
	if err != nil {
		t.Fatal(err)
	}
	merged := out.String()

	if err := ValidateExposition(strings.NewReader(merged)); err != nil {
		t.Fatalf("merged exposition invalid: %v\n%s", err, merged)
	}
	for _, want := range []string{
		// coordinator samples pass through unlabeled
		`fleet_requests_total{endpoint="simulate"} 4`,
		// worker label injected as the first pair, block created when absent
		`dvsd_sims_total{worker="127.0.0.1:1"} 3`,
		`dvsd_sims_total{worker="127.0.0.1:2"} 1`,
		`dvsd_http_seconds_bucket{worker="127.0.0.1:1",le="0.1"} 2`,
		`dvsd_http_seconds_sum{worker="127.0.0.1:1"} 0.25`,
	} {
		if !strings.Contains(merged, want+"\n") {
			t.Errorf("merged exposition missing %q:\n%s", want, merged)
		}
	}
	// One family declared by two sources keeps a single HELP/TYPE and
	// both samples; families come out name-sorted.
	if n := strings.Count(merged, "# TYPE dvsd_sims_total"); n != 1 {
		t.Errorf("dvsd_sims_total declared %d times, want 1", n)
	}
	if strings.Index(merged, "# HELP dvsd_http_seconds") > strings.Index(merged, "# HELP fleet_requests_total") {
		t.Error("families not in sorted order")
	}
}

func TestMergeExpositionsTypeConflict(t *testing.T) {
	var out strings.Builder
	err := MergeExpositions(&out, "worker", []ExpositionSource{
		{Label: "a", Text: "# HELP m x\n# TYPE m counter\nm 1\n"},
		{Label: "b", Text: "# HELP m x\n# TYPE m gauge\nm 2\n"},
	})
	if err == nil || !strings.Contains(err.Error(), "declared") {
		t.Fatalf("TYPE conflict not reported, err = %v", err)
	}
}

func TestMergeExpositionsLabelEscaping(t *testing.T) {
	var out strings.Builder
	err := MergeExpositions(&out, "worker", []ExpositionSource{
		{Label: `ho"st\1`, Text: "# HELP m x\n# TYPE m counter\nm 1\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := `m{worker="ho\"st\\1"} 1`; !strings.Contains(out.String(), want) {
		t.Fatalf("escaped label missing; got:\n%s", out.String())
	}
	if err := ValidateExposition(strings.NewReader(out.String())); err != nil {
		t.Fatalf("escaped exposition invalid: %v", err)
	}
}

func TestMergeExpositionsBadLabelName(t *testing.T) {
	if err := MergeExpositions(&strings.Builder{}, "bad name", nil); err == nil {
		t.Fatal("invalid label name accepted")
	}
}
