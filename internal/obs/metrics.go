package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern: lock-free, allocation-free, and safe for concurrent use.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically non-decreasing metric. All methods are
// safe for concurrent use and never allocate.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by v. Negative deltas are a programming
// error (counters only go up) and panic.
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("obs: counter add of negative value %v", v))
	}
	c.v.Add(v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and never allocate.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add moves the gauge by v (negative deltas decrease it).
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric: bucket i counts
// observations v with bounds[i-1] < v <= bounds[i], plus one overflow
// bucket for v above the last bound (the Prometheus +Inf bucket).
// Observe is lock-free and allocation-free — safe on simulation and
// request hot paths.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last entry is the overflow
	sum    atomicFloat
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram bound %v is not finite", b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %v", b))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds.
	Bounds []float64
	// Counts are the per-bucket (non-cumulative) sample counts;
	// len(Bounds)+1, the last entry being the overflow bucket.
	Counts []uint64
	// Count is the total number of samples (the sum of Counts).
	Count uint64
	// Sum is the sum of all observed values.
	Sum float64
}

// Snapshot captures the histogram's current state. The counts are
// read bucket-by-bucket, so a snapshot taken concurrently with
// observations is internally consistent as a set of buckets (Count is
// derived from the same reads) even if it does not correspond to one
// global instant.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Mean returns the sample mean, or 0 with no samples.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile: the
// bucket boundary at or above it, +Inf when the quantile falls in the
// overflow bucket, and 0 with no samples.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// LinearBuckets returns n bucket bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		// Round away accumulated binary error so bounds like 0.15
		// print as "0.15" in le labels, not "0.15000000000000002".
		out[i] = math.Round((start+float64(i)*width)*1e9) / 1e9
	}
	return out
}

// ExponentialBuckets returns n bucket bounds start, start·factor, ….
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
