package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// decodedTrace mirrors the exported JSON for shape checks; events
// decode into generic maps so missing keys are detectable.
type decodedTrace struct {
	TraceEvents     []map[string]any  `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

func exportChrome(t *testing.T, rec *Recorder, names []string) decodedTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.ChromeTrace(&buf, names); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return tr
}

// TestChromeTraceShape runs a DVS schedule (so the trace contains
// dispatches at varying speeds, idle intervals, and speed switches)
// and checks every exported event is well-formed Trace Event Format.
func TestChromeTraceShape(t *testing.T) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(3, 0.6, 11))
	rec := NewRecorder()
	_, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    core.NewLpSHE(),
		Workload:  workload.Uniform{Lo: 0.4, Hi: 1, Seed: 5},
		Observer:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := exportChrome(t, rec, []string{"A", "B", "C"})
	if tr.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tr.DisplayTimeUnit)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	counts := map[string]int{}
	for i, e := range tr.TraceEvents {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		if ph == "" || name == "" {
			t.Fatalf("event %d missing ph/name: %v", i, e)
		}
		counts[ph]++
		ts, ok := e["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d (%s) bad ts %v", i, name, e["ts"])
		}
		switch ph {
		case "X":
			dur, ok := e["dur"].(float64)
			if !ok || dur < 0 {
				t.Errorf("X event %q has bad dur %v", name, e["dur"])
			}
		case "C":
			args, ok := e["args"].(map[string]any)
			if !ok {
				t.Errorf("counter event missing args: %v", e)
				continue
			}
			if s, ok := args["speed"].(float64); !ok || s <= 0 || s > 1 {
				t.Errorf("counter speed %v out of (0,1]", args["speed"])
			}
		case "i":
			if s, _ := e["s"].(string); s != "t" {
				t.Errorf("instant event %q scope %q, want t", name, s)
			}
		case "M":
			args, ok := e["args"].(map[string]any)
			if !ok || args["name"] == "" {
				t.Errorf("metadata event missing args.name: %v", e)
			}
		default:
			t.Errorf("unexpected phase %q in event %v", ph, e)
		}
	}
	for _, ph := range []string{"M", "X", "i", "C"} {
		if counts[ph] == 0 {
			t.Errorf("no %q events in export (got %v)", ph, counts)
		}
	}
}

// TestChromeTraceTimesScaled checks the microsecond scaling: a
// segment of d time units must export as a dur of d*1000 µs on the
// right thread.
func TestChromeTraceTimesScaled(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{Name: "a", WCET: 2, Period: 8})
	rec := record(t, ts, 1) // uniform workload, speed 1
	tr := exportChrome(t, rec, []string{"a"})

	var want []Segment
	for _, s := range rec.Segments {
		if s.Task == 0 && !isNaN(s.T1) {
			want = append(want, s)
		}
	}
	if len(want) == 0 {
		t.Fatal("no closed task segments recorded")
	}
	var got int
	for _, e := range tr.TraceEvents {
		if e["ph"] != "X" || e["cat"] != "job" {
			continue
		}
		if e["tid"].(float64) != 1 {
			t.Errorf("task-0 segment on tid %v, want 1", e["tid"])
		}
		ts0 := e["ts"].(float64)
		dur := e["dur"].(float64)
		s := want[got]
		if diff := ts0 - s.T0*1000; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("segment %d ts = %v, want %v", got, ts0, s.T0*1000)
		}
		if diff := dur - (s.T1-s.T0)*1000; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("segment %d dur = %v, want %v", got, dur, (s.T1-s.T0)*1000)
		}
		got++
	}
	if got != len(want) {
		t.Errorf("exported %d job segments, recorder has %d", got, len(want))
	}
}

// TestChromeTraceMissMarker checks a deadline miss surfaces as a MISS
// instant event.
func TestChromeTraceMissMarker(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 4, Period: 4})
	rec := NewRecorder()
	_, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    constSpeed{s: 0.5},
		Observer:  rec,
		Horizon:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := exportChrome(t, rec, nil)
	found := false
	for _, e := range tr.TraceEvents {
		if name, _ := e["name"].(string); len(name) >= 4 && name[:4] == "MISS" {
			found = true
			args := e["args"].(map[string]any)
			if missed, _ := args["missed"].(bool); !missed {
				t.Errorf("MISS event args.missed = %v, want true", args["missed"])
			}
		}
	}
	if !found {
		t.Error("no MISS instant event for a missed deadline")
	}
}

// TestChromeTraceDeterministic: same recorder, two exports,
// byte-identical output.
func TestChromeTraceDeterministic(t *testing.T) {
	rec := record(t, rtm.Quickstart(), 0.5)
	var a, b bytes.Buffer
	if err := rec.ChromeTrace(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.ChromeTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same recorder differ")
	}
}

// TestChromeTraceRun covers the convenience wrapper, including its
// refusal to clobber an existing observer.
func TestChromeTraceRun(t *testing.T) {
	cfg := sim.Config{
		TaskSet:   rtm.Quickstart(),
		Processor: cpu.Continuous(0.1),
		Policy:    constSpeed{s: 1},
	}
	var buf bytes.Buffer
	res, err := ChromeTraceRun(cfg, &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted == 0 {
		t.Error("wrapper lost the simulation result")
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("wrapper output not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("wrapper exported no events")
	}

	cfg.Observer = NewRecorder()
	if _, err := ChromeTraceRun(cfg, &buf, nil); err == nil {
		t.Error("wrapper accepted a config with an observer attached")
	}
}
