package trace

// Decision-flow export: folds the flight recorder's per-decision
// provenance into the Chrome trace so Perfetto shows *why* each speed
// was chosen aligned with the schedule it produced. Each decision is
// an instant event on the dispatched task's thread carrying the path
// / scan length / credits, and consecutive decisions are chained with
// flow events ("s" → "f"), rendering the decision sequence as arrows
// across the Gantt chart.

import (
	"io"

	"dvsslack/internal/obs"
)

// decisionArg is the hover payload of one decision instant.
type decisionArg struct {
	Path    string  `json:"path"`
	Speed   float64 `json:"speed"`
	ScanLen int     `json:"scan_len"`
	Credits float64 `json:"credits"`
}

// ChromeTraceFlight writes the recorded schedule as Trace Event
// Format JSON with the given flight-recorder decisions overlaid as
// instant + flow events. recs must come from the same run(s) the
// Recorder observed for the timestamps to align; an empty recs slice
// degrades to the plain ChromeTrace document.
func (r *Recorder) ChromeTraceFlight(w io.Writer, taskNames []string, recs []obs.DecisionRecord) error {
	tr := r.buildChrome(taskNames)
	for i := range recs {
		rec := &recs[i]
		ts := rec.T * usPerTime
		tid := rec.Task + 1
		name := "decision " + rec.Path.String()
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: name, Cat: "decision", Ph: "i", Ts: ts, Tid: tid, S: "t",
			Args: decisionArg{
				Path:    rec.Path.String(),
				Speed:   rec.Speed,
				ScanLen: rec.ScanLen,
				Credits: rec.Credits,
			},
		})
		// Flow chain: an "s" at this decision binds to the "f" at the
		// next one (bp "e" attaches to the enclosing slice), drawing
		// the decision sequence as arrows. The chain segment is keyed
		// by the earlier decision's sequence number.
		if i+1 < len(recs) {
			next := &recs[i+1]
			id := rec.Seq
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "decisions", Cat: "decision", Ph: "s",
				Ts: ts, Tid: tid, ID: &id,
				Args: decisionArg{Path: rec.Path.String(), Speed: rec.Speed,
					ScanLen: rec.ScanLen, Credits: rec.Credits},
			})
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "decisions", Cat: "decision", Ph: "f",
				Ts: next.T * usPerTime, Tid: next.Task + 1, ID: &id, BP: "e",
			})
		}
	}
	return encodeChrome(w, tr)
}
