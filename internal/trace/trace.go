// Package trace records fine-grained simulation events for
// validation, debugging, and the Gantt-style text rendering used by
// the example programs. A Recorder plugs into sim.Config.Observer.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"dvsslack/internal/sim"
)

// EventKind labels a recorded event.
type EventKind int

// Event kinds.
const (
	Release EventKind = iota
	Dispatch
	Complete
	Idle
	Switch
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case Release:
		return "release"
	case Dispatch:
		return "dispatch"
	case Complete:
		return "complete"
	case Idle:
		return "idle"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded simulation event.
type Event struct {
	Kind EventKind
	// T is the event time (start time for Idle).
	T float64
	// T2 is the end time for Idle events.
	T2 float64
	// Job identifies the job for job events (task, index).
	Task, Index int
	// Speed is the dispatch speed, or the new speed for Switch.
	Speed float64
	// From is the previous speed for Switch events.
	From float64
	// Missed marks Complete events past the deadline.
	Missed bool
}

// JobRecord summarizes one completed job.
type JobRecord struct {
	Task, Index       int
	Release, Deadline float64
	Finish            float64
	Executed          float64
	WCET              float64
	Missed            bool
}

// Segment is a maximal interval during which one job ran at one
// speed (or the processor idled, Task == -1).
type Segment struct {
	T0, T1      float64
	Task, Index int
	Speed       float64
}

// Recorder implements sim.Observer, accumulating events, per-job
// records, and execution segments.
type Recorder struct {
	Events   []Event
	Jobs     []JobRecord
	Segments []Segment

	// MaxEvents bounds memory for long runs; zero means unlimited.
	// Once exceeded, events stop accumulating but Jobs/Segments
	// tracking continues.
	MaxEvents int

	cur       int // index into Segments of the open segment, -1 if none
	lastSpeed float64
}

// NewRecorder returns an empty recorder with a 1M event cap.
func NewRecorder() *Recorder { return &Recorder{MaxEvents: 1 << 20, cur: -1} }

func (r *Recorder) addEvent(e Event) {
	if r.MaxEvents > 0 && len(r.Events) >= r.MaxEvents {
		return
	}
	r.Events = append(r.Events, e)
}

// ObserveRelease implements sim.Observer.
func (r *Recorder) ObserveRelease(t float64, j *sim.JobState) {
	r.addEvent(Event{Kind: Release, T: t, Task: j.TaskIndex, Index: j.Index})
}

// ObserveDispatch implements sim.Observer.
func (r *Recorder) ObserveDispatch(t float64, j *sim.JobState, speed float64) {
	r.addEvent(Event{Kind: Dispatch, T: t, Task: j.TaskIndex, Index: j.Index, Speed: speed})
	r.extendSegment(t, j.TaskIndex, j.Index, speed)
}

// ObserveComplete implements sim.Observer.
func (r *Recorder) ObserveComplete(t float64, j *sim.JobState, missed bool) {
	r.addEvent(Event{Kind: Complete, T: t, Task: j.TaskIndex, Index: j.Index, Missed: missed})
	r.closeSegment(t)
	r.Jobs = append(r.Jobs, JobRecord{
		Task: j.TaskIndex, Index: j.Index,
		Release: j.Release, Deadline: j.AbsDeadline,
		Finish: t, Executed: j.Executed, WCET: j.WCET,
		Missed: missed,
	})
}

// ObserveIdle implements sim.Observer.
func (r *Recorder) ObserveIdle(t0, t1 float64) {
	r.addEvent(Event{Kind: Idle, T: t0, T2: t1})
	r.closeSegment(t0)
	r.Segments = append(r.Segments, Segment{T0: t0, T1: t1, Task: -1})
}

// ObserveSwitch implements sim.Observer.
func (r *Recorder) ObserveSwitch(t, from, to float64) {
	r.addEvent(Event{Kind: Switch, T: t, From: from, Speed: to})
	r.lastSpeed = to
}

func (r *Recorder) extendSegment(t float64, task, index int, speed float64) {
	if r.cur >= 0 {
		c := &r.Segments[r.cur]
		if c.Task == task && c.Index == index && c.Speed == speed {
			return // same job, same speed: segment continues
		}
	}
	r.closeSegment(t)
	r.Segments = append(r.Segments, Segment{T0: t, T1: math.NaN(), Task: task, Index: index, Speed: speed})
	r.cur = len(r.Segments) - 1
}

func (r *Recorder) closeSegment(t float64) {
	if r.cur >= 0 {
		r.Segments[r.cur].T1 = t
		r.cur = -1
	}
}

// Misses returns the records of jobs that missed their deadline.
func (r *Recorder) Misses() []JobRecord {
	var out []JobRecord
	for _, j := range r.Jobs {
		if j.Missed {
			out = append(out, j)
		}
	}
	return out
}

// Validate cross-checks the recorded trace for internal consistency
// and returns the violations found (empty means clean):
//
//   - no job starts before its release or is recorded twice,
//   - execution never exceeds the WCET (beyond tolerance),
//   - segments are disjoint and time-ordered,
//   - speeds lie in (0, 1].
func (r *Recorder) Validate() []string {
	var errs []string
	seen := make(map[[2]int]bool)
	for _, j := range r.Jobs {
		key := [2]int{j.Task, j.Index}
		if seen[key] {
			errs = append(errs, fmt.Sprintf("job T%d#%d completed twice", j.Task+1, j.Index))
		}
		seen[key] = true
		if j.Finish < j.Release-sim.Eps {
			errs = append(errs, fmt.Sprintf("job T%d#%d finished before release", j.Task+1, j.Index))
		}
		if j.Executed > j.WCET+sim.Eps {
			errs = append(errs, fmt.Sprintf("job T%d#%d executed %v > WCET %v", j.Task+1, j.Index, j.Executed, j.WCET))
		}
	}
	segs := append([]Segment(nil), r.Segments...)
	sort.Slice(segs, func(a, b int) bool { return segs[a].T0 < segs[b].T0 })
	prevEnd := math.Inf(-1)
	for _, s := range segs {
		if !math.IsNaN(s.T1) && s.T1 < s.T0-sim.Eps {
			errs = append(errs, fmt.Sprintf("segment at %v ends before it starts", s.T0))
		}
		if s.T0 < prevEnd-sim.Eps {
			errs = append(errs, fmt.Sprintf("segment at %v overlaps previous", s.T0))
		}
		if !math.IsNaN(s.T1) {
			prevEnd = s.T1
		}
		if s.Task >= 0 && (s.Speed <= 0 || s.Speed > 1+sim.Eps) {
			errs = append(errs, fmt.Sprintf("segment at %v has speed %v out of (0,1]", s.T0, s.Speed))
		}
	}
	return errs
}

// Gantt renders the segment list as a text chart: one row per task
// plus an idle row, cols time quantized to width columns over
// [0, horizon]. Digits 1-9 encode the execution speed in tenths
// (rounded up); '.' is idle.
func (r *Recorder) Gantt(w io.Writer, taskNames []string, horizon float64, width int) {
	if width <= 0 {
		width = 80
	}
	if horizon <= 0 {
		for _, s := range r.Segments {
			if !math.IsNaN(s.T1) && s.T1 > horizon {
				horizon = s.T1
			}
		}
	}
	if horizon <= 0 {
		return
	}
	rows := make([][]byte, len(taskNames))
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range r.Segments {
		if s.Task < 0 || s.Task >= len(rows) || math.IsNaN(s.T1) {
			continue
		}
		c0 := int(s.T0 / horizon * float64(width))
		c1 := int(math.Ceil(s.T1 / horizon * float64(width)))
		if c1 > width {
			c1 = width
		}
		digit := byte('0' + int(math.Min(9, math.Ceil(s.Speed*10-1e-9))))
		for c := c0; c < c1; c++ {
			rows[s.Task][c] = digit
		}
	}
	nameW := 0
	for _, n := range taskNames {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	fmt.Fprintf(w, "%*s  0%s%g\n", nameW, "", strings.Repeat("-", width-len(fmt.Sprint(horizon))-1), horizon)
	for i, n := range taskNames {
		fmt.Fprintf(w, "%*s |%s|\n", nameW, n, rows[i])
	}
	fmt.Fprintf(w, "%*s  (digits: speed in tenths, rounded up; blank: not running)\n", nameW, "")
}
