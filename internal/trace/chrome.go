package trace

// Chrome-trace export: renders a recorded schedule in the Trace Event
// Format consumed by chrome://tracing and Perfetto (ui.perfetto.dev),
// so a simulated schedule can be inspected visually with the same
// tooling used for real systems — zoom into a preemption, hover a
// job for its deadline, follow the speed counter track across a DVS
// ramp.
//
// Mapping: each task is a thread (tid = task index + 1) carrying one
// complete ("X") event per execution segment; idle intervals are "X"
// events on tid 0; releases and completions are thread-scoped instant
// ("i") events; the processor speed is a counter ("C") track sampled
// at every dispatch and switch. One simulated time unit is rendered
// as one millisecond (the format counts in microseconds), which keeps
// typical hyperperiods in a comfortable zoom range.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dvsslack/internal/sim"
)

// usPerTime scales simulation time units to trace microseconds: one
// time unit renders as one millisecond.
const usPerTime = 1000.0

// chromeEvent is one entry of the traceEvents array. Field order is
// fixed by the struct, so exports are byte-deterministic. ID and BP
// serve the flow events ("s"/"f") of the decision export and stay
// omitted everywhere else, keeping plain exports byte-identical.
type chromeEvent struct {
	Name string   `json:"name"`
	Cat  string   `json:"cat,omitempty"`
	Ph   string   `json:"ph"`
	Ts   float64  `json:"ts"`
	Dur  *float64 `json:"dur,omitempty"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	S    string   `json:"s,omitempty"`
	ID   *uint64  `json:"id,omitempty"`
	BP   string   `json:"bp,omitempty"`
	Args any      `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the Trace Event Format.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

type nameArg struct {
	Name string `json:"name"`
}

type speedArg struct {
	Speed float64 `json:"speed"`
}

type jobArg struct {
	Job      string  `json:"job"`
	Release  float64 `json:"release"`
	Deadline float64 `json:"deadline"`
	Speed    float64 `json:"speed,omitempty"`
	Missed   bool    `json:"missed,omitempty"`
}

// ChromeTrace writes the recorded schedule as Trace Event Format
// JSON. taskNames labels the per-task threads; tasks beyond its
// length get "T<i>" names. Load the output in chrome://tracing or
// ui.perfetto.dev.
func (r *Recorder) ChromeTrace(w io.Writer, taskNames []string) error {
	tr := r.buildChrome(taskNames)
	return encodeChrome(w, tr)
}

// buildChrome assembles the Trace Event document (shared by
// ChromeTrace and the decision-flow export in flight.go).
func (r *Recorder) buildChrome(taskNames []string) chromeTrace {
	taskName := func(i int) string {
		if i >= 0 && i < len(taskNames) {
			return taskNames[i]
		}
		return fmt.Sprintf("T%d", i+1)
	}
	jobID := func(task, index int) string {
		return fmt.Sprintf("%s#%d", taskName(task), index)
	}

	// Deadlines and releases come from the completion records, keyed
	// for the segment hover text.
	deadlines := map[[2]int]JobRecord{}
	for _, j := range r.Jobs {
		deadlines[[2]int{j.Task, j.Index}] = j
	}

	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"source": "dvsslack trace.Recorder"},
	}
	add := func(e chromeEvent) { tr.TraceEvents = append(tr.TraceEvents, e) }

	// Thread metadata: tid 0 is the processor (idle track), tids 1..n
	// the tasks, in task order.
	add(chromeEvent{Name: "process_name", Ph: "M", Args: nameArg{"dvsslack simulation"}})
	add(chromeEvent{Name: "thread_name", Ph: "M", Tid: 0, Args: nameArg{"processor (idle)"}})
	maxTask := -1
	for _, s := range r.Segments {
		if s.Task > maxTask {
			maxTask = s.Task
		}
	}
	for i := 0; i <= maxTask; i++ {
		add(chromeEvent{Name: "thread_name", Ph: "M", Tid: i + 1, Args: nameArg{taskName(i)}})
	}

	// Execution and idle segments as complete events.
	for _, s := range r.Segments {
		t1 := s.T1
		if math.IsNaN(t1) {
			continue // segment left open at the end of the run
		}
		dur := (t1 - s.T0) * usPerTime
		if s.Task < 0 {
			add(chromeEvent{Name: "idle", Cat: "idle", Ph: "X",
				Ts: s.T0 * usPerTime, Dur: &dur, Tid: 0})
			continue
		}
		args := jobArg{Job: jobID(s.Task, s.Index), Speed: s.Speed}
		if j, ok := deadlines[[2]int{s.Task, s.Index}]; ok {
			args.Release, args.Deadline, args.Missed = j.Release, j.Deadline, j.Missed
		}
		add(chromeEvent{Name: jobID(s.Task, s.Index), Cat: "job", Ph: "X",
			Ts: s.T0 * usPerTime, Dur: &dur, Tid: s.Task + 1, Args: args})
	}

	// Instant markers and the speed counter track, in event order.
	for _, e := range r.Events {
		switch e.Kind {
		case Release:
			add(chromeEvent{Name: "release " + jobID(e.Task, e.Index), Cat: "release",
				Ph: "i", Ts: e.T * usPerTime, Tid: e.Task + 1, S: "t"})
		case Complete:
			name := "complete " + jobID(e.Task, e.Index)
			if e.Missed {
				name = "MISS " + jobID(e.Task, e.Index)
			}
			add(chromeEvent{Name: name, Cat: "complete", Ph: "i",
				Ts: e.T * usPerTime, Tid: e.Task + 1, S: "t",
				Args: jobArg{Job: jobID(e.Task, e.Index), Missed: e.Missed}})
		case Dispatch:
			add(chromeEvent{Name: "speed", Ph: "C", Ts: e.T * usPerTime,
				Args: speedArg{e.Speed}})
		case Switch:
			add(chromeEvent{Name: "speed", Ph: "C", Ts: e.T * usPerTime,
				Args: speedArg{e.Speed}})
		}
	}
	return tr
}

// encodeChrome writes the document with the export's canonical
// indentation.
func encodeChrome(w io.Writer, tr chromeTrace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// ChromeTraceRun is a convenience: it simulates cfg with a fresh
// Recorder attached (chained after any existing observer is not
// supported — cfg.Observer must be nil) and writes the Chrome trace
// of the run.
func ChromeTraceRun(cfg sim.Config, w io.Writer, taskNames []string) (sim.Result, error) {
	if cfg.Observer != nil {
		return sim.Result{}, fmt.Errorf("trace: ChromeTraceRun needs cfg.Observer to be nil")
	}
	rec := NewRecorder()
	cfg.Observer = rec
	res, err := sim.Run(cfg)
	if err != nil {
		return res, err
	}
	return res, rec.ChromeTrace(w, taskNames)
}
