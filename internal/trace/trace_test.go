package trace

import (
	"bytes"
	"strings"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// constSpeed is a minimal policy for driving the recorder.
type constSpeed struct {
	sim.NopHooks
	s float64
}

func (p constSpeed) Name() string                      { return "const" }
func (p constSpeed) Reset(sim.System)                  {}
func (p constSpeed) SelectSpeed(*sim.JobState) float64 { return p.s }

func record(t *testing.T, ts *rtm.TaskSet, speed float64) *Recorder {
	t.Helper()
	rec := NewRecorder()
	_, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    constSpeed{s: speed},
		Workload:  workload.Uniform{Lo: 0.5, Hi: 1, Seed: 4},
		Observer:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderCollectsEvents(t *testing.T) {
	rec := record(t, rtm.Quickstart(), 1)
	var releases, dispatches, completes int
	for _, e := range rec.Events {
		switch e.Kind {
		case Release:
			releases++
		case Dispatch:
			dispatches++
		case Complete:
			completes++
		}
	}
	if releases == 0 || dispatches == 0 || completes == 0 {
		t.Fatalf("missing events: r=%d d=%d c=%d", releases, dispatches, completes)
	}
	if releases != completes {
		t.Errorf("releases %d != completes %d", releases, completes)
	}
	if len(rec.Jobs) != completes {
		t.Errorf("job records %d != completes %d", len(rec.Jobs), completes)
	}
}

func TestRecorderValidateCleanTrace(t *testing.T) {
	rec := record(t, rtm.Quickstart(), 1)
	if errs := rec.Validate(); len(errs) != 0 {
		t.Errorf("clean trace reported violations: %v", errs)
	}
	if len(rec.Misses()) != 0 {
		t.Errorf("unexpected misses: %v", rec.Misses())
	}
}

func TestRecorderDetectsMisses(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 4, Period: 4})
	rec := NewRecorder()
	_, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    constSpeed{s: 0.5},
		Observer:  rec,
		Horizon:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Misses()) == 0 {
		t.Error("recorder should capture deadline misses")
	}
}

func TestRecorderSegmentsCoverWork(t *testing.T) {
	rec := record(t, rtm.Quickstart(), 1)
	var busy float64
	for _, s := range rec.Segments {
		if s.Task >= 0 && !isNaN(s.T1) {
			busy += s.T1 - s.T0
		}
	}
	var work float64
	for _, j := range rec.Jobs {
		work += j.Executed
	}
	// At speed 1 busy time equals executed work.
	if diff := busy - work; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("segment busy time %v != work %v", busy, work)
	}
}

func isNaN(f float64) bool { return f != f }

func TestEventKindString(t *testing.T) {
	kinds := map[EventKind]string{
		Release: "release", Dispatch: "dispatch", Complete: "complete",
		Idle: "idle", Switch: "switch", EventKind(42): "kind(42)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("String() = %q, want %q", k.String(), want)
		}
	}
}

func TestGanttRendering(t *testing.T) {
	ts := rtm.NewTaskSet("x",
		rtm.Task{Name: "a", WCET: 1, Period: 4},
		rtm.Task{Name: "b", WCET: 1, Period: 8},
	)
	rec := record(t, ts, 0.5)
	var buf bytes.Buffer
	names := []string{"a", "b"}
	rec.Gantt(&buf, names, 8, 40)
	out := buf.String()
	if !strings.Contains(out, "a |") || !strings.Contains(out, "b |") {
		t.Errorf("gantt missing rows:\n%s", out)
	}
	// Speed 0.5 renders as digit 5.
	if !strings.Contains(out, "5") {
		t.Errorf("gantt missing speed digits:\n%s", out)
	}
}

func TestGanttEmptyRecorder(t *testing.T) {
	var buf bytes.Buffer
	NewRecorder().Gantt(&buf, []string{"a"}, 0, 10)
	// No horizon inferable: no output, no panic.
	if buf.Len() != 0 {
		t.Errorf("expected empty output, got %q", buf.String())
	}
}

func TestMaxEventsCap(t *testing.T) {
	rec := NewRecorder()
	rec.MaxEvents = 5
	for i := 0; i < 10; i++ {
		rec.ObserveRelease(float64(i), &sim.JobState{})
	}
	if len(rec.Events) != 5 {
		t.Errorf("events = %d, want capped 5", len(rec.Events))
	}
}
