package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/obs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// recordFlight runs one lpSHE schedule observed by both a trace
// Recorder and a flight recorder, so the export has real decisions to
// overlay.
func recordFlight(t *testing.T) (*Recorder, *obs.FlightRecorder) {
	t.Helper()
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(3, 0.6, 11))
	rec := NewRecorder()
	p := core.NewLpSHE()
	fr := obs.NewFlightRecorder(1 << 12)
	_, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    p,
		Workload:  workload.Uniform{Lo: 0.4, Hi: 1, Seed: 5},
		Observer:  obs.Multi(rec, fr.Observer(p)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec, fr
}

func exportFlight(t *testing.T, rec *Recorder, recs []obs.DecisionRecord) decodedTrace {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.ChromeTraceFlight(&buf, nil, recs); err != nil {
		t.Fatal(err)
	}
	var tr decodedTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("flight export is not valid JSON: %v", err)
	}
	return tr
}

// TestChromeTraceFlightShape checks the decision overlay: every
// decision becomes a scoped instant event carrying its provenance, and
// consecutive decisions are chained by matching s/f flow pairs with
// binding-point "e" on the finish side.
func TestChromeTraceFlightShape(t *testing.T) {
	rec, fr := recordFlight(t)
	recs := fr.Records()
	if len(recs) < 2 {
		t.Fatalf("run produced %d decisions, need at least 2 for a flow chain", len(recs))
	}
	tr := exportFlight(t, rec, recs)

	var instants int
	starts := map[float64]bool{}
	finishes := map[float64]bool{}
	for i, e := range tr.TraceEvents {
		if e["cat"] != "decision" {
			continue
		}
		ph, _ := e["ph"].(string)
		switch ph {
		case "i":
			instants++
			if s, _ := e["s"].(string); s != "t" {
				t.Errorf("decision instant %d scope %q, want t", i, s)
			}
			args, ok := e["args"].(map[string]any)
			if !ok {
				t.Fatalf("decision instant %d has no args: %v", i, e)
			}
			path, _ := args["path"].(string)
			if path == "" || path == "unknown" {
				t.Errorf("decision instant %d path = %q, want a concrete analysis path", i, path)
			}
			if sp, ok := args["speed"].(float64); !ok || sp <= 0 || sp > 1 {
				t.Errorf("decision instant %d speed %v out of (0,1]", i, args["speed"])
			}
		case "s":
			id, ok := e["id"].(float64)
			if !ok {
				t.Fatalf("flow start %d has no id: %v", i, e)
			}
			starts[id] = true
			if _, present := e["bp"]; present {
				t.Errorf("flow start %d carries bp, only the finish side should", i)
			}
		case "f":
			id, ok := e["id"].(float64)
			if !ok {
				t.Fatalf("flow finish %d has no id: %v", i, e)
			}
			finishes[id] = true
			if bp, _ := e["bp"].(string); bp != "e" {
				t.Errorf("flow finish %d bp = %q, want e (bind to enclosing slice)", i, bp)
			}
		default:
			t.Errorf("unexpected decision-event phase %q: %v", ph, e)
		}
	}
	if instants != len(recs) {
		t.Errorf("%d decision instants for %d decisions", instants, len(recs))
	}
	if len(starts) != len(recs)-1 {
		t.Errorf("%d flow chain segments for %d decisions, want %d", len(starts), len(recs), len(recs)-1)
	}
	for id := range starts {
		if !finishes[id] {
			t.Errorf("flow start id %v has no matching finish", id)
		}
	}
	for id := range finishes {
		if !starts[id] {
			t.Errorf("flow finish id %v has no matching start", id)
		}
	}
}

// TestChromeTraceFlightEmptyDegrades pins that an empty decision list
// yields the plain ChromeTrace document byte for byte — so the flow
// fields (id, bp) never leak into exports that don't use them.
func TestChromeTraceFlightEmptyDegrades(t *testing.T) {
	rec, _ := recordFlight(t)
	var plain, flight bytes.Buffer
	if err := rec.ChromeTrace(&plain, nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.ChromeTraceFlight(&flight, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Bytes(), flight.Bytes()) {
		t.Error("ChromeTraceFlight with no decisions differs from ChromeTrace")
	}
	if bytes.Contains(plain.Bytes(), []byte(`"id"`)) || bytes.Contains(plain.Bytes(), []byte(`"bp"`)) {
		t.Error("plain export leaks flow-event keys (id/bp should be omitempty)")
	}
}
