package core

import (
	"math"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

// The tests in this file pin the steady-state allocation behaviour of
// the per-decision hot path: after warm-up, one slack analysis and
// one full lpSHE speed decision must allocate nothing. They are the
// regression guards behind the BenchmarkAnalyzerSlack allocs/op
// figure recorded in BENCH_*.json (see docs/performance.md).

// allocSystem is a minimal sim.System for driving the decision path
// without an engine. All answers are fixed so repeated calls take the
// identical code path.
type allocSystem struct {
	ts   *rtm.TaskSet
	proc *cpu.Processor
	now  float64
	jobs []*sim.JobState
}

func (s *allocSystem) TaskSet() *rtm.TaskSet       { return s.ts }
func (s *allocSystem) Processor() *cpu.Processor   { return s.proc }
func (s *allocSystem) Now() float64                { return s.now }
func (s *allocSystem) ActiveJobs() []*sim.JobState { return s.jobs }
func (s *allocSystem) NextReleaseOf(i int) float64 { return s.ts.Tasks[i].Period }
func (s *allocSystem) NextDecisionBound() float64  { return s.NextRelease() }
func (s *allocSystem) NextRelease() float64 {
	nr := math.Inf(1)
	for _, t := range s.ts.Tasks {
		if t.Period < nr {
			nr = t.Period
		}
	}
	return nr
}

func newAllocSystem(t *testing.T, n int) *allocSystem {
	t.Helper()
	ts, err := rtm.Generate(rtm.DefaultGenConfig(n, 0.8, 2))
	if err != nil {
		t.Fatal(err)
	}
	sys := &allocSystem{ts: ts, proc: cpu.Continuous(0.1), now: 1.0}
	for i := 0; i < n/2; i++ {
		j := ts.JobOf(i, 0)
		sys.jobs = append(sys.jobs, &sim.JobState{Job: j})
	}
	return sys
}

// TestAnalyzeZeroSteadyStateAllocs: after the scratch buffers have
// seen one call, Analyze allocates nothing per invocation.
func TestAnalyzeZeroSteadyStateAllocs(t *testing.T) {
	sys := newAllocSystem(t, 16)
	an := NewAnalyzer(sys.ts)
	nextRel := sys.NextReleaseOf
	an.Analyze(sys.now, sys.jobs, nextRel) // warm scratch
	allocs := testing.AllocsPerRun(100, func() {
		an.Analyze(sys.now, sys.jobs, nextRel)
	})
	if allocs != 0 {
		t.Errorf("Analyze allocates %v per call in steady state, want 0", allocs)
	}
}

// TestAnalyzeZeroAllocsWithPhantoms: the no-reclaim ablation's
// phantom demand path is steady-state allocation-free too once the
// phantom buffer reached its per-task capacity.
func TestAnalyzeZeroAllocsWithPhantoms(t *testing.T) {
	sys := newAllocSystem(t, 8)
	an := NewAnalyzer(sys.ts)
	nextRel := sys.NextReleaseOf
	for i, task := range sys.ts.Tasks {
		an.AddPhantom(sys.now+task.Period*float64(i+1), 0.1)
	}
	an.Analyze(sys.now, sys.jobs, nextRel)
	allocs := testing.AllocsPerRun(100, func() {
		an.Analyze(sys.now, sys.jobs, nextRel)
	})
	if allocs != 0 {
		t.Errorf("Analyze with phantoms allocates %v per call, want 0", allocs)
	}
}

// TestSelectSpeedZeroSteadyStateAllocs: a full lpSHE scheduling
// decision — slack analysis plus the pacing pass — allocates nothing
// per call after Reset. Rescan (the crosscheck oracle) must hold the
// property too: differential runs lean on it heavily.
func TestSelectSpeedZeroSteadyStateAllocs(t *testing.T) {
	for _, v := range []Variant{Full, Greedy, Rescan} {
		sys := newAllocSystem(t, 12)
		p := NewLpSHEVariant(v)
		p.Reset(sys)
		j := sys.jobs[0]
		p.SelectSpeed(j) // warm analyzer scratch
		allocs := testing.AllocsPerRun(100, func() {
			p.SelectSpeed(j)
		})
		if allocs != 0 {
			t.Errorf("variant %v: SelectSpeed allocates %v per call in steady state, want 0", v, allocs)
		}
	}
}

// TestStaircaseZeroSteadyStateAllocs: the incremental fast path —
// analysis with stair capture on, then credits and bound queries
// between analyses — allocates nothing once the capture buffers and
// the sparse table have grown to the scan depth.
func TestStaircaseZeroSteadyStateAllocs(t *testing.T) {
	sys := newAllocSystem(t, 12)
	an := NewAnalyzer(sys.ts)
	an.SetStairCapture(true)
	nextRel := sys.NextReleaseOf
	an.Analyze(sys.now, sys.jobs, nextRel) // warm scratch + staircase
	dl := sys.jobs[0].AbsDeadline
	allocs := testing.AllocsPerRun(100, func() {
		an.Analyze(sys.now, sys.jobs, nextRel)
		an.StairCredit(sys.now, dl, 0.01)
		an.StairBound(sys.now)
	})
	if allocs != 0 {
		t.Errorf("staircase cycle allocates %v per round, want 0", allocs)
	}
}
