// Package core implements the paper's primary contribution: online
// slack-time analysis for EDF-scheduled periodic hard real-time task
// sets, and the DVS policy (lpSHE) that converts the analyzed slack
// into the execution speed of the current job.
//
// # Slack-time analysis
//
// At time t, let h(t, d) be the worst-case work that must finish by
// deadline d:
//
//	h(t, d) = Σ RemainingWCET(J)   over released, incomplete jobs J
//	                               with AbsDeadline(J) ≤ d
//	        + Σ WCET(F)            over future jobs F released at or
//	                               after t with AbsDeadline(F) ≤ d.
//
// The system slack is
//
//	L(t) = min over deadlines d in (t, t+H]  of  ( d − t − h(t, d) ),
//
// the largest amount of extra wall-clock time the processor can give
// to the earliest-deadline job (or spend idling) without any current
// or future deadline becoming infeasible at full speed. The three
// classical slack sources are special cases: static slack (U < 1),
// reclaimed slack (early-completed jobs simply vanish from h), and
// idle-interval look-ahead slack (gaps before future releases).
//
// # Soundness
//
// Invariant I(t): h(t, d) ≤ d − t for every deadline d. I(0) holds
// iff the task set is EDF-feasible at full speed. If the current job
// with remaining worst-case work w runs at s = w/(w+L(t)), then for
// any elapsed x ≤ w/s the work done is x·s, so
// h(t+x, d) ≤ h(t, d) − x·s ≤ (d − t) − L − x·s ≤ d − (t+x),
// using x(1−s) ≤ (w/s)(1−s) = L. Hence I is preserved at every
// instant, through preemptions and recomputations, and EDF at the
// selected speeds never misses a deadline. The property-based tests
// in this module fuzz exactly this claim.
//
// # Termination of the scan
//
// Deadlines are scanned in increasing order. Two sound cutoffs bound
// the scan:
//
//  1. Hyperperiod periodicity: let d* = max_i(first future deadline
//     of task i) + H, with H the hyperperiod. Every deadline beyond
//     d* lies exactly H after another deadline of the same task, and
//     past d* − H all release streams are in steady state, so
//     h(t, d) = h(t, d−H) + U·H and the slack at d exceeds the slack
//     at d−H by (1−U)·H ≥ 0. The minimum over all deadlines is
//     therefore attained in (t, d*], a window of at most three
//     hyperperiods.
//  2. Utilization lower bound: h(t, d) ≤ R + U·(d−t) + C_Σ where R is
//     the total remaining work of active jobs and C_Σ = ΣCᵢ, so once
//     (d−t)(1−U) − R − C_Σ exceeds the minimum found so far no later
//     deadline can lower it.
//
// If a configured scan budget is exhausted before either cutoff
// applies, the analyzer returns a conservative (smaller) slack value
// that remains sound: min(found, max(0, bound-at-cutoff)).
//
// # Incremental analysis
//
// The two cutoffs above terminate the scan but do so late: the
// utilization envelope R + U·(d−t) + C_Σ is loose by up to C_Σ, so
// after the slack minimum has been found (almost always within the
// first few deadlines — the "front" of active jobs and first
// releases) the scan keeps walking deadlines only to prove that
// nothing later can be worse. The incremental mode replaces that tail
// walk with a precomputed landscape: a demandGrid holding every
// deadline residue of one hyperperiod with prefix demand sums, suffix
// slack minima, and burst-deviation envelopes (see grid.go). At each
// scanned deadline the analyzer asks the grid, in O(log m), whether
// any unscanned deadline could lower the slack minimum or raise the
// intensity maximum past the utilization clamp; the first time the
// answer is no — with a float-noise margin — the scan stops with
// exactly the readings the full scan would have produced. The grid is
// conservative by construction (it assumes every release stream is as
// early as its residue class allows, so delayed streams and
// activity-window skips only make the real demand smaller), which
// keeps the certificate sound and the returned values byte-identical
// to the retained full-rescan path; the differential fuzz tests pin
// that equivalence across the reproducer corpus, the scenario corpus,
// and randomized task sets. SetFullRescan(true) disables the
// certificate and restores the verbatim pre-grid behavior as the
// crosscheck oracle.
package core

import (
	"math"
	"math/bits"

	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

// Analyzer performs slack-time analysis for one task set. It is
// stateless with respect to the simulation (all dynamic state arrives
// through the Slack arguments) and reusable across runs; the counters
// and the reused scratch buffers are the only mutable fields.
//
// Concurrency contract: an Analyzer is NOT safe for concurrent use.
// Analyze reuses per-instance scratch buffers so that steady-state
// calls allocate nothing, which means two goroutines calling into the
// same Analyzer race on them. Give every goroutine (every concurrent
// simulation) its own Analyzer — they are cheap to construct — as the
// parallel experiment harness does by building one policy instance
// per run.
type Analyzer struct {
	ts       *rtm.TaskSet
	key      []gridKey // content key for ReuseFor (and the grid cache)
	util     float64   // worst-case utilization
	totalC   float64   // ΣCi
	hyper    float64   // hyperperiod, 0 when unknown
	maxScan  int       // hard cap on scanned deadlines per call
	phantoms []phantom

	// grid is the precomputed hyperperiod demand landscape driving
	// the incremental certificate; nil when the hyperperiod is
	// unknown or too large (the analyzer then always full-scans).
	grid *demandGrid
	// fullRescan disables the certificate, restoring the verbatim
	// pre-grid scan as the differential-testing oracle.
	fullRescan bool
	// certSlop is the float-noise margin the certificate must clear
	// before stopping a scan early (scale-aware, set once).
	certSlop float64
	// slackOnly marks the current call as needing only the slack
	// reading (set by Slack, cleared on return): the certificate may
	// then skip its intensity clauses, which are the late stoppers —
	// the deviation envelope cannot rule out a far intensity peak
	// until the scan nears it, while the slack minimum is usually
	// pinned within the first few deadlines. The slack value is
	// byte-identical either way; only the (discarded) intensity
	// reading would be under-scanned.
	slackOnly bool

	// adaptive horizon (off by default, see SetAdaptiveHorizon):
	// caps each scan at a multiple of the deepest scan index that
	// ever improved a reading, degrading conservatively like the
	// budget cap when exceeded.
	adaptive    bool
	adaptCap    int
	deepestImpr int

	// The slack staircase (see SetStairCapture): every scanned
	// candidate deadline with its constant c_d = d − h(t0, d), plus a
	// sentinel bounding the unscanned tail, so StairBound can report
	// a sound lower bound on the current slack at any later query
	// time in amortized O(1) — with expired candidates leaving the
	// minimum (how slack recovers as each tight deadline passes) and
	// executed or reclaimed demand lifting it (StairCredit).
	stairOn     bool
	stairD      []float64 // staircase deadlines, increasing
	stairC      []float64 // c_d = d − h(t0, d) per candidate
	stairCur    int       // expiry cursor for StairBound queries
	stairCredit float64   // demand gone from h since t0, uniform lift
	stairLast   float64   // last scanned deadline: the tail's near edge
	// stairRMQ is a sparse table over stairC (level k at offset k·n,
	// entry j = min of stairC[j .. j+2^k)), rebuilt per analysis so
	// StairBound answers any range minimum in O(1). tailCol is the
	// scalar tail bound sitting past the last candidate (+Inf when the
	// grid tail serves instead). liftLo/liftW are the suffix credits:
	// liftW[i] lifts every candidate at index ≥ liftLo[i] (sorted,
	// merged by boundary; see StairCredit).
	stairRMQ  []float64
	tailCol   float64
	liftLo    []int
	liftW     []float64
	stairAdvT float64 // last stairAdvance timestamp (idempotence guard)
	// stairFront caches stairFrontDeadline() and stairB caches the
	// time-independent part of StairBound (min over candidates, tail
	// and sentinel, before the −t1 + stairCredit terms). Both change
	// only when a cursor actually moves or a non-uniform credit lands
	// (never on plain time passage or uniform credits), so the hot
	// decision path reads two floats instead of recomputing.
	stairFront float64
	stairB     float64
	stairBOK   bool
	// Grid-backed tail (see StairBound): the unscanned remainder of
	// the deadline axis served from the hyperperiod grid by a cursor
	// over its canonical slots, so expired tail deadlines leave the
	// minimum exactly like captured entries do. tailC0 folds the
	// call-time constants (q0·H − h − runf + cumBefore); tailBase is
	// the absolute start of the cursor's current window, tailAcc the
	// accumulated (1−U)·H shift of later windows.
	tailValid  bool
	tailC0     float64
	tailBase   float64
	tailAcc    float64
	tailJ      int
	tailCredit float64 // credit taken by the tail alone (see StairCredit)
	// Unfolded-entry sentinel: a static c-bound covering active jobs
	// whose deadlines lay beyond the scan stop (+Inf when none), with
	// the earliest such deadline gating credits against it.
	entSent  float64
	entFront float64

	// Scratch buffers reused across Analyze calls (see the
	// concurrency contract above). entries grows to the high-water
	// active+phantom count; streams is fixed at the task count.
	// entCum/entSuf hold the per-call entry prefix sums and suffix
	// slack bounds the certificate uses to cover entries the scan
	// has not folded yet.
	entries []phantom
	streams []stream
	entCum  []float64
	entSuf  []float64

	// instrumentation
	calls    float64
	scanned  float64
	capped   float64
	incHits  float64 // scans stopped early by the grid certificate
	rebuilds float64 // scans that ran to a full (uncertified) stop
	adCapped float64 // scans truncated by the adaptive horizon
	counters map[string]float64

	// Per-call provenance for the flight recorder: how the most
	// recent Analyze terminated. Valid until the next Analyze call.
	lastScan  int
	lastCert  bool
	lastTrunc bool
}

// phantom is synthetic demand used by the no-reclaim ablation: the
// unused worst-case allowance of an early-completed job, kept until
// its deadline passes.
type phantom struct {
	deadline float64
	rem      float64
}

// DefaultMaxScan bounds the number of deadlines examined per
// analysis; it is far above what the cutoffs need for any workload in
// the evaluation and exists only as a safety valve (exceeding it
// degrades slack to a conservative value, never soundness).
const DefaultMaxScan = 1 << 20

// NewAnalyzer builds an Analyzer for ts.
func NewAnalyzer(ts *rtm.TaskSet) *Analyzer {
	n := len(ts.Tasks)
	a := &Analyzer{
		ts:      ts,
		maxScan: DefaultMaxScan,
		entries: make([]phantom, 0, n),
		streams: make([]stream, n),
	}
	a.key = gridKeyOf(ts)
	a.util = ts.Utilization()
	a.totalC = ts.TotalWCET()
	if h, ok := ts.Hyperperiod(); ok {
		a.hyper = h
	}
	a.grid = buildDemandGrid(a)
	a.certSlop = 1e-9 * (1 + a.hyper + a.totalC)
	a.adaptCap = DefaultMaxScan
	a.stairAdvT = math.Inf(-1)
	a.stairFront = math.Inf(-1)
	return a
}

// Reset clears all run state — counters, phantom demand, staircase
// and tail cursors — returning the Analyzer to its just-constructed
// condition so a policy can reuse it (and every scratch buffer it has
// grown) across simulation runs of the same task set instead of
// rebuilding it each Reset.
func (a *Analyzer) Reset() {
	a.ResetCounters()
	a.stairD = a.stairD[:0]
	a.stairC = a.stairC[:0]
	a.liftLo, a.liftW = a.liftLo[:0], a.liftW[:0]
	a.stairCur, a.stairCredit, a.stairLast = 0, 0, 0
	a.stairAdvT = math.Inf(-1)
	a.stairFront = math.Inf(-1)
	a.stairBOK = false
	a.tailCol = 0
	a.tailValid, a.tailCredit = false, 0
	a.entSent, a.entFront = 0, 0
	if a.adaptive {
		a.adaptCap, a.deepestImpr = adaptiveMinCap, 0
	}
}

// ReuseFor reports whether this analyzer can serve ts — same task
// content, compared field by field exactly like the grid cache key
// (never by pointer: a recycled TaskSet allocation must not alias
// stale derived state) — and, when it can, resets the run state and
// rebinds to ts. Policies call this from their own Reset so repeated
// runs of one task set (replications, benchmark loops, serving paths)
// keep the analyzer and every scratch buffer it has grown, instead of
// re-deriving grid, envelopes, and buffers each time.
func (a *Analyzer) ReuseFor(ts *rtm.TaskSet) bool {
	if len(ts.Tasks) != len(a.key) {
		return false
	}
	for i, t := range ts.Tasks {
		k := gridKey{period: t.Period, wcet: t.WCET, dl: t.RelDeadline()}
		if k != a.key[i] {
			return false
		}
	}
	a.ts = ts
	a.Reset()
	return true
}

// SetFullRescan toggles the full-rescan oracle mode: when on, the
// grid certificate is ignored and every call walks the deadline axis
// to the classic cutoffs, byte-for-byte the pre-incremental behavior.
// The differential tests run the analyzer in both modes and require
// identical outputs.
func (a *Analyzer) SetFullRescan(on bool) { a.fullRescan = on }

// SetAdaptiveHorizon toggles the adaptive scan horizon (off by
// default). When enabled, the analyzer tracks the deepest scan index
// that ever improved a reading and caps subsequent scans at
// adaptiveHeadroom times that depth (floored at adaptiveMinCap). A
// capped scan degrades exactly like an exhausted scan budget — the
// slack falls to the sound utilization lower bound at the cap point
// and the intensity to 1 — so deadline safety is preserved verbatim;
// only energy can suffer, and docs/performance.md derives the bound
// on how much. The certificate stays active, so the cap only fires on
// scans the certificate could not stop early.
func (a *Analyzer) SetAdaptiveHorizon(on bool) {
	a.adaptive = on
	if on {
		a.adaptCap = adaptiveMinCap
		a.deepestImpr = 0
	} else {
		a.adaptCap = DefaultMaxScan
	}
}

const (
	// adaptiveHeadroom multiplies the deepest observed improvement
	// index into the scan cap, absorbing workload drift.
	adaptiveHeadroom = 4
	// adaptiveMinCap floors the adaptive cap so cold starts are not
	// truncated into uselessness.
	adaptiveMinCap = 16
)

// SetStairCapture enables the slack staircase (sticky; off by
// default, no effect on the slack or intensity readings). With
// capture on, every Analyze call at time t0 records each scanned
// candidate deadline d together with its constant c_d = d − h(t0, d),
// plus a sentinel covering the unscanned tail, so StairBound can
// answer "how low can the system slack be right now?" at any later
// query time in amortized O(1) without re-analyzing. This is what
// lets the policy fast path skip whole analyses, not just truncate
// them: between scheduling points the demand landscape only loses
// mass, so the captured staircase stays a sound lower bound until
// the next rebuild.
func (a *Analyzer) SetStairCapture(on bool) {
	a.stairOn = on
	if !on || cap(a.stairD) > 0 {
		return
	}
	// Pre-size the capture buffers to the typical certified scan depth
	// (a few deadlines per task before the certificate stops the walk).
	// The caps are hints, not limits: a deeper scan regrows each slice
	// independently via append, and the sparse table is sized exactly
	// at build time.
	est := 3*len(a.ts.Tasks) + 8
	buf := make([]float64, 0, 2*est)
	a.stairD = buf[:0:est]
	a.stairC = buf[est : est : 2*est]
}

// StairBound returns a sound lower bound at time t1 on the current
// system slack L(t1), from the staircase captured by the most recent
// Analyze at t0 ≤ t1. Query times must be non-decreasing between
// analyses; the cursors advance monotonically.
//
// Soundness: for a fixed deadline d, h(t, d) never grows after the
// analysis — every future release, earliest jitter arrival, and
// phantom was pre-counted, while execution, reclaimed completions,
// and expired phantoms only remove demand — so a captured
// candidate's slack at t1 is at least c_d − t1 (plus any credit,
// see StairCredit). Candidates beyond the scan stop come from three
// covers, each the minimum-taking analogue of the scan it replaces:
//
//   - the grid tail: every canonical slot of the hyperperiod grid
//     past the scan stop, bounded exactly as in certify
//     (slack(e) ≥ pos[j] − cum[j] + w·(1−U)·H + tailC0 − t0) and
//     walked by a cursor so that expired slots leave the minimum —
//     this is what lets the bound RECOVER between analyses instead
//     of decaying at rate 1 until forced to rebuild;
//   - the unfolded-entry sentinel for active jobs with deadlines
//     beyond the scan stop (rare; static and conservative);
//   - with no usable grid (unknown/oversized hyperperiod, off-grid
//     jitter at t0, full-rescan or truncated-horizon modes), a
//     scalar sentinel minL(t0) + t0 — sound for every terminating
//     cutoff, poisoned to −Inf when the scan ended on an extreme
//     reading that proved nothing about the tail.
func (a *Analyzer) StairBound(t1 float64) float64 {
	// Inlinable fast path: before the earliest covered deadline no
	// cursor can move (stairAdvance would be a no-op, so it is safely
	// skipped), and a valid cached column minimum answers the query
	// with two adds.
	if t1 < a.stairFront && a.stairBOK {
		return a.stairB - t1 + a.stairCredit
	}
	return a.stairBoundSlow(t1)
}

func (a *Analyzer) stairBoundSlow(t1 float64) float64 {
	a.stairAdvance(t1)
	if a.stairBOK {
		return a.stairB - t1 + a.stairCredit
	}
	// Minimum over the live candidates, segment by segment between the
	// suffix-lift boundaries: within a segment every candidate carries
	// the same applied lift, so one range-minimum plus the lift bounds
	// it, and the per-segment minimum of those bounds is exact.
	n := len(a.stairC)
	b := math.Inf(1)
	applied := 0.0
	li := 0
	for li < len(a.liftLo) && a.liftLo[li] <= a.stairCur {
		applied += a.liftW[li]
		li++
	}
	start := a.stairCur
	for ; li < len(a.liftLo); li++ {
		if end := a.liftLo[li]; end > start {
			if v := a.stairRangeMin(start, end) + applied; v < b {
				b = v
			}
			start = end
		}
		applied += a.liftW[li]
	}
	if start < n {
		if v := a.stairRangeMin(start, n) + applied; v < b {
			b = v
		}
	}
	// The scalar tail column lies past every candidate, so every kept
	// lift applies to it (+Inf when the grid tail serves instead).
	if tv := a.tailCol + applied; tv < b {
		b = tv
	}
	if a.entSent < b {
		b = a.entSent
	}
	if a.tailValid {
		g := a.grid
		tb := g.sufMin[a.tailJ] + a.tailAcc
		if lw := g.allMin + a.tailAcc + (g.hyper - g.total); lw < tb {
			tb = lw // every later window, minimized at the next one
		}
		if tb += a.tailC0 + a.tailCredit; tb < b {
			b = tb
		}
	}
	a.stairB, a.stairBOK = b, true
	return b - t1 + a.stairCredit
}

// stairRangeMin returns min stairC[lo..hi) from the sparse table;
// requires hi > lo.
func (a *Analyzer) stairRangeMin(lo, hi int) float64 {
	k := bits.Len(uint(hi-lo)) - 1
	n := len(a.stairC)
	v1 := a.stairRMQ[k*n+lo]
	if v2 := a.stairRMQ[k*n+hi-1<<k]; v2 < v1 {
		return v2
	}
	return v1
}

// StairCredit lifts the staircase by w: demand that left h since the
// analysis — the observed executed work of a dispatched job, or the
// unused allowance of a completed one, either way with absolute
// deadline dl. A cover may take the lift only if every candidate it
// still holds pre-counted that demand, i.e. lies at or beyond dl
// (h(t, d) includes jobs with deadline exactly d, so the test is
// inclusive). When dl is at or before the overall front the credit is
// uniform; otherwise it is applied per cover: the captured entries
// from the first index with stairD ≥ dl take it in place (with the
// suffix minima rebuilt over the live range), and the tail and entry
// sentinels take it exactly when their own fronts lie at or past dl.
// The next analysis clears every credit: it sees the removed demand
// directly.
func (a *Analyzer) StairCredit(t1, dl, w float64) {
	// Inlinable fast path: with t1 before the earliest covered
	// deadline the cursors cannot move (stairAdvance would be a
	// no-op), and a credit at or before that front is uniform — one
	// add.
	if t1 < a.stairFront && dl <= a.stairFront {
		a.stairCredit += w
		return
	}
	a.stairCreditSlow(t1, dl, w)
}

func (a *Analyzer) stairCreditSlow(t1, dl, w float64) {
	a.stairAdvance(t1)
	if dl <= a.stairFront {
		a.stairCredit += w
		return
	}
	a.stairBOK = false
	if a.tailValid && dl <= a.tailBase+a.grid.pos[a.tailJ] {
		a.tailCredit += w
	}
	if dl <= a.entFront {
		a.entSent += w
	}
	n := len(a.stairD)
	lo, hi := a.stairCur, n
	for lo < hi {
		mid := (lo + hi) / 2
		if a.stairD[mid] < dl {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= n {
		// dl lies beyond every captured candidate: the scalar tail
		// cannot order its deadlines against dl, so the stair part of
		// the credit is dropped (conservative; the grid tail and entry
		// sentinel took their shares above).
		return
	}
	for i := range a.liftLo {
		if a.liftLo[i] == lo {
			a.liftW[i] += w
			return
		}
	}
	if len(a.liftLo) == maxStairLifts {
		a.compactLifts()
	}
	if len(a.liftLo) < maxStairLifts {
		i := len(a.liftLo)
		a.liftLo = append(a.liftLo, lo)
		a.liftW = append(a.liftW, w)
		for i > 0 && a.liftLo[i-1] > lo {
			a.liftLo[i-1], a.liftLo[i] = a.liftLo[i], a.liftLo[i-1]
			a.liftW[i-1], a.liftW[i] = a.liftW[i], a.liftW[i-1]
			i--
		}
		return
	}
	// Boundary list still full: fold the credit into the nearest LATER
	// boundary — under-crediting the candidates in between, the
	// conservative direction — or drop it when none lies later. (The
	// scalar tail column still receives it either way iff a boundary
	// takes it, which matches its gate dl ≤ stairLast exactly.)
	for i := range a.liftLo {
		if a.liftLo[i] > lo {
			a.liftW[i] += w
			return
		}
	}
}

// compactLifts merges every lift whose boundary the expiry cursor has
// already passed into a single base entry at index 0. Those boundaries
// can never cut a query segment again (queries start at the cursor,
// which only advances), so widening them to "all candidates" changes
// no future answer while freeing list slots for new boundaries.
func (a *Analyzer) compactLifts() {
	base := 0.0
	kept := 0
	for i := range a.liftLo {
		if a.liftLo[i] <= a.stairCur {
			base += a.liftW[i]
		} else {
			a.liftLo[kept], a.liftW[kept] = a.liftLo[i], a.liftW[i]
			kept++
		}
	}
	if base == 0 {
		return
	}
	a.liftLo, a.liftW = a.liftLo[:kept+1], a.liftW[:kept+1]
	copy(a.liftLo[1:], a.liftLo[:kept])
	copy(a.liftW[1:], a.liftW[:kept])
	a.liftLo[0], a.liftW[0] = 0, base
}

// maxStairLifts bounds the suffix-lift boundary list; between two
// analyses only a handful of distinct deadlines are ever credited (the
// running job's, plus completion reclaims), so the cap is generous.
const maxStairLifts = 8

// stairAdvance moves the expiry cursors (captured entries and grid
// tail) up to t1. Idempotent per timestamp: a decision point queries
// the staircase several times (harvest credits, then the bound) at one
// t1, so repeat calls return immediately.
func (a *Analyzer) stairAdvance(t1 float64) {
	if t1 == a.stairAdvT {
		return
	}
	a.stairAdvT = t1
	if t1 < a.stairFront {
		return // no cursor can move before the earliest covered deadline
	}
	moved := false
	for a.stairCur < len(a.stairD) && a.stairD[a.stairCur] <= t1 {
		a.stairCur++
		moved = true
	}
	if a.tailValid {
		g := a.grid
		if t1 >= a.tailBase+g.hyper {
			// Whole windows expired (a long idle gap): jump instead
			// of stepping slot by slot.
			skip := math.Floor((t1 - a.tailBase) / g.hyper)
			a.tailBase += skip * g.hyper
			a.tailAcc += skip * (g.hyper - g.total)
			a.tailJ = g.pastIndex(t1-a.tailBase, 0)
			moved = true
		}
		for a.tailJ < len(g.pos) && a.tailBase+g.pos[a.tailJ] <= t1 {
			a.tailJ++
			moved = true
		}
		if a.tailJ == len(g.pos) {
			a.tailJ = 0
			a.tailBase += g.hyper
			a.tailAcc += g.hyper - g.total
		}
	}
	if moved {
		a.stairBOK = false
		a.stairFront = a.stairFrontDeadline()
	}
}

// stairFrontDeadline returns the earliest deadline the staircase
// still covers — the gate a credit's deadline must not exceed.
func (a *Analyzer) stairFrontDeadline() float64 {
	front := a.entFront
	if a.stairCur < len(a.stairD) {
		if d := a.stairD[a.stairCur]; d < front {
			front = d
		}
	}
	if a.tailValid {
		if f := a.tailBase + a.grid.pos[a.tailJ]; f < front {
			front = f
		}
	} else if a.stairLast < front {
		// Scalar-sentinel fallback: the tail starts just past the
		// last scanned deadline.
		front = a.stairLast
	}
	return front
}

// SetMaxScan overrides the per-call deadline scan budget (used by the
// truncated-horizon ablation). Values < 1 restore the default.
func (a *Analyzer) SetMaxScan(n int) {
	if n < 1 {
		n = DefaultMaxScan
	}
	a.maxScan = n
}

// AddPhantom registers phantom demand (no-reclaim ablation).
func (a *Analyzer) AddPhantom(deadline, rem float64) {
	if rem <= 0 {
		return
	}
	if a.phantoms == nil {
		// Pre-size to the task count: with implicit deadlines at most
		// one phantom per task is live at a time, so the buffer
		// reaches steady state after the first hyperperiod.
		a.phantoms = make([]phantom, 0, len(a.ts.Tasks))
	}
	a.phantoms = append(a.phantoms, phantom{deadline: deadline, rem: rem})
}

// Counters exposes instrumentation for the overhead experiments. The
// returned map is owned by the Analyzer and refreshed in place on
// every call — the metrics loop scrapes it repeatedly, and handing
// out a fresh map per scrape was measurable allocation churn. Callers
// must not retain it across Reset or mutate it concurrently with the
// analyzer (the usual single-goroutine contract).
func (a *Analyzer) Counters() map[string]float64 {
	if a.counters == nil {
		a.counters = make(map[string]float64, 10)
	}
	c := a.counters
	c["slack_calls"] = a.calls
	c["slack_scanned"] = a.scanned
	c["slack_budget_capped"] = a.capped
	c["slack_avg_scan_len"] = safeDiv(a.scanned, a.calls)
	c["slack_phantom_buffer"] = float64(len(a.phantoms))
	c["slack_incremental_hits"] = a.incHits
	c["slack_rebuilds"] = a.rebuilds
	c["slack_adaptive_capped"] = a.adCapped
	return c
}

// ResetCounters zeroes instrumentation and drops phantom demand.
func (a *Analyzer) ResetCounters() {
	a.calls, a.scanned, a.capped = 0, 0, 0
	a.incHits, a.rebuilds, a.adCapped = 0, 0, 0
	a.lastScan, a.lastCert, a.lastTrunc = 0, false, false
	a.phantoms = a.phantoms[:0]
}

// LastScan reports how the most recent Analyze call terminated: the
// number of deadlines scanned, whether the demand-grid certificate
// stopped the scan early, and whether the scan was truncated by the
// adaptive horizon or the scan budget (conservative degradation).
// Valid until the next Analyze call; used for per-decision
// provenance.
func (a *Analyzer) LastScan() (scanned int, certified, truncated bool) {
	return a.lastScan, a.lastCert, a.lastTrunc
}

// Slack returns L(t) ≥ 0 given the currently active jobs and the next
// release time of each task (periodic continuation). The result is
// the exact minimum when the scan completes via a cutoff, or a sound
// underestimate if the scan budget is exhausted.
func (a *Analyzer) Slack(t float64, active []*sim.JobState, nextReleaseOf func(int) float64) float64 {
	a.slackOnly = true
	l, _ := a.Analyze(t, active, nextReleaseOf)
	a.slackOnly = false
	return l
}

// Intensity returns the critical-interval intensity
//
//	s*(t) = max over deadlines d of  h(t, d) / (d − t),
//
// the minimal constant speed that keeps every current and future
// deadline feasible from time t onward. It is the dual reading of the
// same slack-time analysis: where Slack reports the largest stretch
// the *current job* may absorb, Intensity reports the uniform speed
// that spreads all analyzed slack evenly over the outstanding work —
// the distribution a convex power curve prefers. The result is exact
// under the scan cutoffs and degrades to 1 (full speed) if the scan
// budget is exhausted.
func (a *Analyzer) Intensity(t float64, active []*sim.JobState, nextReleaseOf func(int) float64) float64 {
	_, s := a.Analyze(t, active, nextReleaseOf)
	return s
}

// Analyze performs one scan of the slack-time analysis and returns
// both readings: the minimum slack L(t) and the critical intensity
// s*(t). See the package comment for definitions, soundness, and the
// termination argument.
func (a *Analyzer) Analyze(t float64, active []*sim.JobState, nextReleaseOf func(int) float64) (slack, intensity float64) {
	a.calls++
	a.lastTrunc = false
	a.dropExpiredPhantoms(t)

	// Active (and phantom) demand entries sorted by deadline. The
	// slice is per-Analyzer scratch: steady-state calls allocate
	// nothing (see the Analyzer concurrency contract).
	entries := a.entries[:0]
	var activeRem float64
	for _, j := range active {
		r := j.RemainingWCET()
		activeRem += r
		entries = append(entries, phantom{deadline: j.AbsDeadline, rem: r})
	}
	for _, p := range a.phantoms {
		activeRem += p.rem
		entries = append(entries, p)
	}
	sortPhantoms(entries)
	a.entries = entries

	// Per-task future release streams: deadline of the next
	// not-yet-released job of each task. Also per-Analyzer scratch,
	// fixed at the task count. The certificate additionally needs
	// every stream to sit on its nominal k·Period release grid — the
	// grid's residue classes assume it; a jitter-pending release
	// (NextReleaseOf = "right now") is off-grid and disables the
	// certificate for this call only.
	streams := a.streams
	maxFirstDeadline := t
	useCert := a.grid != nil && !a.fullRescan && a.maxScan == DefaultMaxScan
	for i, task := range a.ts.Tasks {
		r := nextReleaseOf(i)
		nd := r + task.RelDeadline()
		streams[i] = stream{
			nextDeadline: nd,
			period:       task.Period,
			wcet:         task.WCET,
		}
		if nd > maxFirstDeadline {
			maxFirstDeadline = nd
		}
		if useCert {
			k := math.Round(r / task.Period)
			if math.Abs(r-k*task.Period) > 1e-9*(1+r) {
				useCert = false
			}
		}
	}

	// Periodicity cutoff d* (see package comment): beyond
	// maxFirstDeadline + H the slack function only repeats shifted
	// upward by (1-U)·H per hyperperiod.
	horizon := math.Inf(1)
	if a.hyper > 0 {
		horizon = maxFirstDeadline + a.hyper
	}

	// Entry suffix bounds for the certificate: entCum[l] is the
	// demand of entries[0..l]; entSuf[l] is the suffix minimum of
	// φ_l = (1−U)·e_l − entCum[l], which turns "slack at any
	// unfolded entry deadline" into one precomputed lookup (see
	// certify). O(#entries) once per call, so the certificate can
	// stop the scan long before a far-deadline active job is folded.
	var totalRem float64
	if useCert && len(entries) > 0 {
		gu := a.grid.util
		cum := a.entCum[:0]
		for _, e := range entries {
			totalRem += e.rem
			cum = append(cum, totalRem)
		}
		k := len(entries)
		suf := a.entSuf
		if cap(suf) < k+1 {
			suf = make([]float64, k+1)
		} else {
			suf = suf[:k+1]
		}
		suf[k] = math.Inf(1)
		for l := k - 1; l >= 0; l-- {
			phi := (1-gu)*entries[l].deadline - cum[l]
			suf[l] = math.Min(phi, suf[l+1])
		}
		a.entCum, a.entSuf = cum, suf
	}

	var (
		h         float64 // accumulated demand at the scan point
		minL      = math.Inf(1)
		maxS      float64 // running max of h/(d-t)
		ai        int     // next active entry
		scanCnt   int
		lastImpr  int // deepest scan index that improved a reading
		certified bool
		dLast     float64 // last scanned candidate deadline
		extreme   bool    // scan ended on an extreme reading
	)
	if a.stairOn {
		a.stairD = a.stairD[:0]
		a.stairC = a.stairC[:0]
	}
	for {
		// Next candidate deadline across active entries and streams.
		d := math.Inf(1)
		if ai < len(entries) {
			d = entries[ai].deadline
		}
		for _, s := range streams {
			if s.nextDeadline < d {
				d = s.nextDeadline
			}
		}
		if math.IsInf(d, 1) || d > horizon+sim.Eps {
			break
		}
		// Fold in every demand due exactly at d.
		for ai < len(entries) && entries[ai].deadline <= d {
			h += entries[ai].rem
			ai++
		}
		for i := range streams {
			for streams[i].nextDeadline <= d {
				h += streams[i].wcet
				streams[i].nextDeadline += streams[i].period
			}
		}
		scanCnt++
		dLast = d
		if d > t { // deadlines at or before t contribute demand only
			l := d - t - h
			if l < minL {
				minL = l
				lastImpr = scanCnt
			}
			if a.stairOn {
				// Staircase capture (see StairBound): c_d = d − h,
				// a constant this candidate's slack can only exceed
				// at later query times.
				a.stairD = append(a.stairD, d)
				a.stairC = append(a.stairC, l+t)
			}
			if s := h / (d - t); s > maxS {
				maxS = s
				if s > a.util {
					lastImpr = scanCnt
				}
			}
		}
		if minL <= 0 || maxS >= 1 {
			// Slack exhausted / full speed required: neither reading
			// can get more extreme for a feasible system.
			extreme = true
			break
		}
		// Utilization cutoffs: stop once no later deadline can lower
		// the slack minimum or raise the intensity maximum. Beyond
		// the scan point, h(t,d) ≤ activeRem + C_Σ + U·(d−t).
		if a.util < 1 {
			envelope := activeRem + a.totalC
			slackDone := (d-t)*(1-a.util)-envelope > minL
			intensityDone := maxS > a.util && envelope/(d-t) < maxS-a.util
			if slackDone && intensityDone {
				break
			}
		}
		// Incremental certificate: ask the precomputed hyperperiod
		// landscape (plus the per-call entry suffix bounds) whether
		// any deadline beyond d — grid slot or unfolded entry — could
		// still lower the slack minimum or push the intensity maximum
		// past its utilization clamp. Both structures over-count the
		// unscanned demand (delayed streams count at their earliest
		// residue, unfolded entries in full), so a positive answer is
		// sound — and carries a float-noise margin, keeping the early
		// stop byte-identical to the full rescan.
		if useCert && d > t && !math.IsInf(minL, 1) {
			var sPre float64
			runf, entMin := 0.0, math.Inf(1)
			if len(entries) > 0 {
				if ai > 0 {
					sPre = a.entCum[ai-1]
				}
				runf = totalRem - sPre
				entMin = a.entSuf[ai]
			}
			if a.certify(t, d, h, sPre, runf, entMin, minL, maxS) {
				certified = true
				break
			}
		}
		if a.adaptive && scanCnt >= a.adaptCap {
			// Adaptive horizon: degrade conservatively, exactly like
			// an exhausted scan budget (sound, never optimistic).
			a.adCapped++
			a.lastTrunc = true
			lb := (d-t)*(1-a.util) - activeRem - a.totalC
			if lb < minL {
				minL = lb
			}
			maxS = 1
			break
		}
		if scanCnt >= a.maxScan {
			// Budget exhausted: degrade both readings to their sound
			// conservative values for everything beyond d.
			a.capped++
			a.lastTrunc = true
			lb := (d-t)*(1-a.util) - activeRem - a.totalC
			if lb < minL {
				minL = lb
			}
			maxS = 1
			break
		}
	}
	a.scanned += float64(scanCnt)
	a.lastScan, a.lastCert = scanCnt, certified
	if certified {
		a.incHits++
	} else {
		a.rebuilds++
	}
	if a.adaptive {
		if lastImpr > a.deepestImpr {
			a.deepestImpr = lastImpr
		}
		if c := adaptiveHeadroom * a.deepestImpr; c > adaptiveMinCap {
			a.adaptCap = c
		} else {
			a.adaptCap = adaptiveMinCap
		}
	}

	// Far-deadline limit: as d → ∞ the intensity approaches U from
	// below along the periodic envelope, and past the periodicity
	// cutoff every ratio is bounded by max(maxS, U) (mediant
	// inequality on (h+U·H)/(Δ+H)).
	if a.util > maxS {
		maxS = a.util
	}
	if maxS > 1 {
		maxS = 1
	}
	// Finalize the staircase (see StairBound): suffix minima over the
	// captured constants, the unscanned-tail cover, and the
	// cursor/credit reset. With a usable grid the tail is served live
	// from the hyperperiod landscape — anchored at the scan stop with
	// exactly certify's inequality, so it stays valid under every
	// termination mode, extreme stops included. Otherwise a scalar
	// sentinel minL + t stands in; minL here is pre-clamp, so it is a
	// true lower bound even when the raw minimum went negative, and an
	// extreme-reading stop — which proved nothing about the tail —
	// poisons it instead.
	if a.stairOn {
		tail := math.Inf(1)
		a.tailValid, a.tailCredit = false, 0
		a.entSent, a.entFront = math.Inf(1), math.Inf(1)
		if useCert && dLast > 0 && a.grid.hyper > a.grid.total {
			g := a.grid
			slop := a.certSlop + 1e-12*math.Abs(t)
			q0 := math.Floor(dLast / g.hyper)
			rho0 := dLast - q0*g.hyper
			idx0 := g.pastIndex(rho0, slop)
			var cumBefore float64
			if idx0 > 0 {
				cumBefore = g.cum[idx0-1]
			}
			var sPre, runf float64
			if len(entries) > 0 {
				if ai > 0 {
					sPre = a.entCum[ai-1]
				}
				runf = totalRem - sPre
			}
			a.tailC0 = q0*g.hyper - h - runf + cumBefore
			a.tailBase = q0 * g.hyper
			a.tailAcc = 0
			a.tailJ = idx0
			if a.tailJ == len(g.pos) {
				a.tailJ = 0
				a.tailBase += g.hyper
				a.tailAcc += g.hyper - g.total
			}
			a.tailValid = true
			if runf > 0 {
				// Active jobs not folded by the scan: cover them with
				// certify's deviation-envelope bound, gated for
				// credits by the earliest such deadline.
				a.entSent = a.entSuf[ai] + sPre - h + g.util*dLast - g.dev
				a.entFront = entries[ai].deadline
			}
		} else {
			tail = minL + t
			if extreme {
				tail = math.Inf(-1)
			}
		}
		// Sparse range-minimum table over the captured constants:
		// level k entry j holds min stairC[j .. j+2^k). Built once per
		// analysis (the rare event), it lets every StairBound query
		// between analyses answer segment minima in O(1) no matter how
		// the lift boundaries cut the staircase.
		k := len(a.stairC)
		levels := bits.Len(uint(k))
		rmq := a.stairRMQ
		if need := levels * k; cap(rmq) < need {
			rmq = make([]float64, need)
		} else {
			rmq = rmq[:need]
		}
		copy(rmq, a.stairC)
		for lev := 1; lev < levels; lev++ {
			half := 1 << (lev - 1)
			prev, row := (lev-1)*k, lev*k
			for j := 0; j+2*half <= k; j++ {
				v := rmq[prev+j]
				if v2 := rmq[prev+j+half]; v2 < v {
					v = v2
				}
				rmq[row+j] = v
			}
		}
		a.stairRMQ = rmq
		a.tailCol = tail
		a.liftLo, a.liftW = a.liftLo[:0], a.liftW[:0]
		a.stairCur = 0
		a.stairCredit = 0
		a.stairLast = dLast
		a.stairAdvT = math.Inf(-1)
		a.stairBOK = false
		a.stairFront = a.stairFrontDeadline()
	}

	if math.IsInf(minL, 1) {
		// No deadline scanned at all: an empty task set (no streams,
		// no active jobs). Nothing constrains the slack; report zero
		// conservatively.
		return 0, maxS
	}
	if minL < 0 {
		minL = 0
	}
	return minL, maxS
}

// certify reports whether the demand grid (plus the per-call entry
// suffix bounds) proves that no deadline beyond the scan point dP can
// lower the slack minimum below minL or raise the intensity maximum
// past its utilization clamp, so the scan may stop with exactly the
// readings the full walk would produce.
//
// Arguments beyond the readings: h is the demand folded so far, sPre
// the folded entry demand, runf the unfolded entry demand, entMin the
// precomputed suffix minimum of φ_l = (1−U)·e_l − entCum[l] over the
// unfolded entries. Preconditions (enforced at the call site): every
// release stream sits on its nominal k·Period grid, dP > t, minL is
// finite, and all unfolded entry deadlines exceed dP (the fold loop
// guarantees it).
//
// Derivation (see docs/performance.md for the long form). Write
// dP = q·H + ρ and let idx be the first grid slot past ρ (boundary
// slots stay "future" — the conservative side). Any unscanned grid
// deadline is a canonical slot e = q·H + w·H + pos[j] with w ≥ 0 and
// (w, j) ≥ (0, idx), and the future demand due in (dP, e] is at most
// w·total + cum[j] − cumBefore (streams can only be delayed relative
// to their residue class, never early) plus runf (every unfolded
// entry, counted in full). Hence
//
//	slack(e) ≥ (pos[j] − cum[j]) + w·(H − total) + off,
//	off = q·H − t − h − runf + cumBefore,
//
// whose minimum over the current window is sufMin[idx] + off and over
// every later window (monotone in w for U ≤ 1) is allMin + (H−total)
// + off. An unfolded entry deadline e_l is itself a candidate; with
// the deviation envelope demand(dP, e] ≤ util·(e−dP) + dev for the
// stream part and the entry prefix sums for the entry part,
//
//	slack(e_l) ≥ φ_l + (sPre − t − h + util·dP − dev),
//
// minimized by the precomputed entMin. For intensity either every
// unscanned ratio stays strictly below the utilization clamp, or the
// unified envelope h(e) ≤ h + runf + util·(e−dP) + dev caps every
// future ratio by util + A/(e−t), decreasing in e, below the maximum
// already found. Every comparison carries a slop margin scaled to the
// magnitudes involved, so float rounding can only keep the scan going
// — never stop it unsoundly — and the early stop is byte-identical.
func (a *Analyzer) certify(t, dP, h, sPre, runf, entMin, minL, maxS float64) bool {
	g := a.grid
	shift := g.hyper - g.total // (1−U)·H
	if shift < 0 {
		// Utilization at or above 1 within float noise: later windows
		// only get worse and no finite certificate exists.
		return false
	}
	// Scale-aware margin: certSlop covers the grid magnitudes, the
	// t-term covers per-window drift accumulated over long horizons.
	slop := a.certSlop + 1e-12*math.Abs(t)
	q := math.Floor(dP / g.hyper)
	rho := dP - q*g.hyper
	idx := g.pastIndex(rho, slop)
	var cumBefore float64
	if idx > 0 {
		cumBefore = g.cum[idx-1]
	}
	off := q*g.hyper - t - h - runf + cumBefore
	bound := g.sufMin[idx] + off // rest of the current window
	if b := g.allMin + shift + off; b < bound {
		bound = b // every later window, minimized at w = 1
	}
	if !(bound >= minL+slop) {
		return false
	}
	if runf > 0 {
		// Unfolded entry deadlines as slack candidates.
		if !(entMin+(sPre-t-h+g.util*dP-g.dev) >= minL+slop) {
			return false
		}
	}
	if a.slackOnly {
		return true // caller discards intensity; slack is certified
	}
	// Intensity, unified envelope: ratio(e) ≤ util + A/(e−t) for every
	// future candidate (grid slot or entry), with e−t > dP−t, so the
	// supremum sits at the scan point.
	A := h + runf + g.dev - g.util*(dP-t)
	if A <= -slop {
		return true // everything stays below the utilization clamp
	}
	if g.util+A/(dP-t) <= maxS-slop {
		return true // everything stays at or below the found maximum
	}
	// Sharper below-clamp clause, valid once all entries are folded:
	// anchored at the grid slots instead of the worst-case envelope.
	return runf == 0 && g.maxFU+h-cumBefore+g.util*(t-q*g.hyper) <= -slop
}

func (a *Analyzer) dropExpiredPhantoms(t float64) {
	// Fast path: most calls expire nothing; skip the compaction pass
	// (and its element moves) entirely then.
	expired := false
	for _, p := range a.phantoms {
		if p.deadline <= t {
			expired = true
			break
		}
	}
	if !expired {
		return
	}
	// In-place compaction into the same backing array — pre-sized by
	// AddPhantom, never reallocated here.
	keep := a.phantoms[:0]
	for _, p := range a.phantoms {
		if p.deadline > t {
			keep = append(keep, p)
		}
	}
	a.phantoms = keep
}

type stream struct {
	nextDeadline float64
	period       float64
	wcet         float64
}

func sortPhantoms(v []phantom) {
	// Insertion sort: entry counts are the number of active jobs
	// (≤ number of tasks) and stay tiny.
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for ; j >= 0 && v[j].deadline > x.deadline; j-- {
			v[j+1] = v[j]
		}
		v[j+1] = x
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
