// Package core implements the paper's primary contribution: online
// slack-time analysis for EDF-scheduled periodic hard real-time task
// sets, and the DVS policy (lpSHE) that converts the analyzed slack
// into the execution speed of the current job.
//
// # Slack-time analysis
//
// At time t, let h(t, d) be the worst-case work that must finish by
// deadline d:
//
//	h(t, d) = Σ RemainingWCET(J)   over released, incomplete jobs J
//	                               with AbsDeadline(J) ≤ d
//	        + Σ WCET(F)            over future jobs F released at or
//	                               after t with AbsDeadline(F) ≤ d.
//
// The system slack is
//
//	L(t) = min over deadlines d in (t, t+H]  of  ( d − t − h(t, d) ),
//
// the largest amount of extra wall-clock time the processor can give
// to the earliest-deadline job (or spend idling) without any current
// or future deadline becoming infeasible at full speed. The three
// classical slack sources are special cases: static slack (U < 1),
// reclaimed slack (early-completed jobs simply vanish from h), and
// idle-interval look-ahead slack (gaps before future releases).
//
// # Soundness
//
// Invariant I(t): h(t, d) ≤ d − t for every deadline d. I(0) holds
// iff the task set is EDF-feasible at full speed. If the current job
// with remaining worst-case work w runs at s = w/(w+L(t)), then for
// any elapsed x ≤ w/s the work done is x·s, so
// h(t+x, d) ≤ h(t, d) − x·s ≤ (d − t) − L − x·s ≤ d − (t+x),
// using x(1−s) ≤ (w/s)(1−s) = L. Hence I is preserved at every
// instant, through preemptions and recomputations, and EDF at the
// selected speeds never misses a deadline. The property-based tests
// in this module fuzz exactly this claim.
//
// # Termination of the scan
//
// Deadlines are scanned in increasing order. Two sound cutoffs bound
// the scan:
//
//  1. Hyperperiod periodicity: let d* = max_i(first future deadline
//     of task i) + H, with H the hyperperiod. Every deadline beyond
//     d* lies exactly H after another deadline of the same task, and
//     past d* − H all release streams are in steady state, so
//     h(t, d) = h(t, d−H) + U·H and the slack at d exceeds the slack
//     at d−H by (1−U)·H ≥ 0. The minimum over all deadlines is
//     therefore attained in (t, d*], a window of at most three
//     hyperperiods.
//  2. Utilization lower bound: h(t, d) ≤ R + U·(d−t) + C_Σ where R is
//     the total remaining work of active jobs and C_Σ = ΣCᵢ, so once
//     (d−t)(1−U) − R − C_Σ exceeds the minimum found so far no later
//     deadline can lower it.
//
// If a configured scan budget is exhausted before either cutoff
// applies, the analyzer returns a conservative (smaller) slack value
// that remains sound: min(found, max(0, bound-at-cutoff)).
package core

import (
	"math"

	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

// Analyzer performs slack-time analysis for one task set. It is
// stateless with respect to the simulation (all dynamic state arrives
// through the Slack arguments) and reusable across runs; the counters
// and the reused scratch buffers are the only mutable fields.
//
// Concurrency contract: an Analyzer is NOT safe for concurrent use.
// Analyze reuses per-instance scratch buffers so that steady-state
// calls allocate nothing, which means two goroutines calling into the
// same Analyzer race on them. Give every goroutine (every concurrent
// simulation) its own Analyzer — they are cheap to construct — as the
// parallel experiment harness does by building one policy instance
// per run.
type Analyzer struct {
	ts       *rtm.TaskSet
	util     float64 // worst-case utilization
	totalC   float64 // ΣCi
	hyper    float64 // hyperperiod, 0 when unknown
	maxScan  int     // hard cap on scanned deadlines per call
	phantoms []phantom

	// Scratch buffers reused across Analyze calls (see the
	// concurrency contract above). entries grows to the high-water
	// active+phantom count; streams is fixed at the task count.
	entries []phantom
	streams []stream

	// instrumentation
	calls   float64
	scanned float64
	capped  float64
}

// phantom is synthetic demand used by the no-reclaim ablation: the
// unused worst-case allowance of an early-completed job, kept until
// its deadline passes.
type phantom struct {
	deadline float64
	rem      float64
}

// DefaultMaxScan bounds the number of deadlines examined per
// analysis; it is far above what the cutoffs need for any workload in
// the evaluation and exists only as a safety valve (exceeding it
// degrades slack to a conservative value, never soundness).
const DefaultMaxScan = 1 << 20

// NewAnalyzer builds an Analyzer for ts.
func NewAnalyzer(ts *rtm.TaskSet) *Analyzer {
	n := len(ts.Tasks)
	a := &Analyzer{
		ts:      ts,
		maxScan: DefaultMaxScan,
		entries: make([]phantom, 0, n),
		streams: make([]stream, n),
	}
	a.util = ts.Utilization()
	a.totalC = ts.TotalWCET()
	if h, ok := ts.Hyperperiod(); ok {
		a.hyper = h
	}
	return a
}

// SetMaxScan overrides the per-call deadline scan budget (used by the
// truncated-horizon ablation). Values < 1 restore the default.
func (a *Analyzer) SetMaxScan(n int) {
	if n < 1 {
		n = DefaultMaxScan
	}
	a.maxScan = n
}

// AddPhantom registers phantom demand (no-reclaim ablation).
func (a *Analyzer) AddPhantom(deadline, rem float64) {
	if rem <= 0 {
		return
	}
	if a.phantoms == nil {
		// Pre-size to the task count: with implicit deadlines at most
		// one phantom per task is live at a time, so the buffer
		// reaches steady state after the first hyperperiod.
		a.phantoms = make([]phantom, 0, len(a.ts.Tasks))
	}
	a.phantoms = append(a.phantoms, phantom{deadline: deadline, rem: rem})
}

// Counters exposes instrumentation for the overhead experiments.
func (a *Analyzer) Counters() map[string]float64 {
	return map[string]float64{
		"slack_calls":          a.calls,
		"slack_scanned":        a.scanned,
		"slack_budget_capped":  a.capped,
		"slack_avg_scan_len":   safeDiv(a.scanned, a.calls),
		"slack_phantom_buffer": float64(len(a.phantoms)),
	}
}

// ResetCounters zeroes instrumentation and drops phantom demand.
func (a *Analyzer) ResetCounters() {
	a.calls, a.scanned, a.capped = 0, 0, 0
	a.phantoms = a.phantoms[:0]
}

// Slack returns L(t) ≥ 0 given the currently active jobs and the next
// release time of each task (periodic continuation). The result is
// the exact minimum when the scan completes via a cutoff, or a sound
// underestimate if the scan budget is exhausted.
func (a *Analyzer) Slack(t float64, active []*sim.JobState, nextReleaseOf func(int) float64) float64 {
	l, _ := a.Analyze(t, active, nextReleaseOf)
	return l
}

// Intensity returns the critical-interval intensity
//
//	s*(t) = max over deadlines d of  h(t, d) / (d − t),
//
// the minimal constant speed that keeps every current and future
// deadline feasible from time t onward. It is the dual reading of the
// same slack-time analysis: where Slack reports the largest stretch
// the *current job* may absorb, Intensity reports the uniform speed
// that spreads all analyzed slack evenly over the outstanding work —
// the distribution a convex power curve prefers. The result is exact
// under the scan cutoffs and degrades to 1 (full speed) if the scan
// budget is exhausted.
func (a *Analyzer) Intensity(t float64, active []*sim.JobState, nextReleaseOf func(int) float64) float64 {
	_, s := a.Analyze(t, active, nextReleaseOf)
	return s
}

// Analyze performs one scan of the slack-time analysis and returns
// both readings: the minimum slack L(t) and the critical intensity
// s*(t). See the package comment for definitions, soundness, and the
// termination argument.
func (a *Analyzer) Analyze(t float64, active []*sim.JobState, nextReleaseOf func(int) float64) (slack, intensity float64) {
	a.calls++
	a.dropExpiredPhantoms(t)

	// Active (and phantom) demand entries sorted by deadline. The
	// slice is per-Analyzer scratch: steady-state calls allocate
	// nothing (see the Analyzer concurrency contract).
	entries := a.entries[:0]
	var activeRem float64
	for _, j := range active {
		r := j.RemainingWCET()
		activeRem += r
		entries = append(entries, phantom{deadline: j.AbsDeadline, rem: r})
	}
	for _, p := range a.phantoms {
		activeRem += p.rem
		entries = append(entries, p)
	}
	sortPhantoms(entries)
	a.entries = entries

	// Per-task future release streams: deadline of the next
	// not-yet-released job of each task. Also per-Analyzer scratch,
	// fixed at the task count.
	streams := a.streams
	maxFirstDeadline := t
	for i, task := range a.ts.Tasks {
		nd := nextReleaseOf(i) + task.RelDeadline()
		streams[i] = stream{
			nextDeadline: nd,
			period:       task.Period,
			wcet:         task.WCET,
		}
		if nd > maxFirstDeadline {
			maxFirstDeadline = nd
		}
	}

	// Periodicity cutoff d* (see package comment): beyond
	// maxFirstDeadline + H the slack function only repeats shifted
	// upward by (1-U)·H per hyperperiod.
	horizon := math.Inf(1)
	if a.hyper > 0 {
		horizon = maxFirstDeadline + a.hyper
	}

	var (
		h       float64 // accumulated demand at the scan point
		minL    = math.Inf(1)
		maxS    float64 // running max of h/(d-t)
		ai      int     // next active entry
		scanCnt int
	)
	for {
		// Next candidate deadline across active entries and streams.
		d := math.Inf(1)
		if ai < len(entries) {
			d = entries[ai].deadline
		}
		for _, s := range streams {
			if s.nextDeadline < d {
				d = s.nextDeadline
			}
		}
		if math.IsInf(d, 1) || d > horizon+sim.Eps {
			break
		}
		// Fold in every demand due exactly at d.
		for ai < len(entries) && entries[ai].deadline <= d {
			h += entries[ai].rem
			ai++
		}
		for i := range streams {
			for streams[i].nextDeadline <= d {
				h += streams[i].wcet
				streams[i].nextDeadline += streams[i].period
			}
		}
		scanCnt++
		if d > t { // deadlines at or before t contribute demand only
			if l := d - t - h; l < minL {
				minL = l
			}
			if s := h / (d - t); s > maxS {
				maxS = s
			}
		}
		if minL <= 0 || maxS >= 1 {
			// Slack exhausted / full speed required: neither reading
			// can get more extreme for a feasible system.
			break
		}
		// Utilization cutoffs: stop once no later deadline can lower
		// the slack minimum or raise the intensity maximum. Beyond
		// the scan point, h(t,d) ≤ activeRem + C_Σ + U·(d−t).
		if a.util < 1 {
			envelope := activeRem + a.totalC
			slackDone := (d-t)*(1-a.util)-envelope > minL
			intensityDone := maxS > a.util && envelope/(d-t) < maxS-a.util
			if slackDone && intensityDone {
				break
			}
		}
		if scanCnt >= a.maxScan {
			// Budget exhausted: degrade both readings to their sound
			// conservative values for everything beyond d.
			a.capped++
			lb := (d-t)*(1-a.util) - activeRem - a.totalC
			if lb < minL {
				minL = lb
			}
			maxS = 1
			break
		}
	}
	a.scanned += float64(scanCnt)

	// Far-deadline limit: as d → ∞ the intensity approaches U from
	// below along the periodic envelope, and past the periodicity
	// cutoff every ratio is bounded by max(maxS, U) (mediant
	// inequality on (h+U·H)/(Δ+H)).
	if a.util > maxS {
		maxS = a.util
	}
	if maxS > 1 {
		maxS = 1
	}
	if math.IsInf(minL, 1) {
		// No deadline scanned at all: an empty task set (no streams,
		// no active jobs). Nothing constrains the slack; report zero
		// conservatively.
		return 0, maxS
	}
	if minL < 0 {
		minL = 0
	}
	return minL, maxS
}

func (a *Analyzer) dropExpiredPhantoms(t float64) {
	// Fast path: most calls expire nothing; skip the compaction pass
	// (and its element moves) entirely then.
	expired := false
	for _, p := range a.phantoms {
		if p.deadline <= t {
			expired = true
			break
		}
	}
	if !expired {
		return
	}
	// In-place compaction into the same backing array — pre-sized by
	// AddPhantom, never reallocated here.
	keep := a.phantoms[:0]
	for _, p := range a.phantoms {
		if p.deadline > t {
			keep = append(keep, p)
		}
	}
	a.phantoms = keep
}

type stream struct {
	nextDeadline float64
	period       float64
	wcet         float64
}

func sortPhantoms(v []phantom) {
	// Insertion sort: entry counts are the number of active jobs
	// (≤ number of tasks) and stay tiny.
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for ; j >= 0 && v[j].deadline > x.deadline; j-- {
			v[j+1] = v[j]
		}
		v[j+1] = x
	}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
