package core

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

func runLpSHE(t *testing.T, ts *rtm.TaskSet, gen workload.Generator, variant Variant) sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		TaskSet:         ts,
		Processor:       cpu.Continuous(0.1),
		Policy:          NewLpSHEVariant(variant),
		Workload:        gen,
		StrictDeadlines: true,
	})
	if err != nil {
		t.Fatalf("variant %v: %v", variant, err)
	}
	return res
}

func TestLpSHEMeetsDeadlinesQuickstart(t *testing.T) {
	ts := rtm.Quickstart()
	for _, v := range []Variant{Full, Greedy, NoReclaim, Horizon8, Horizon32} {
		res := runLpSHE(t, ts, workload.Uniform{Lo: 0.2, Hi: 1, Seed: 5}, v)
		if res.DeadlineMisses != 0 {
			t.Errorf("variant %v: %d misses", v, res.DeadlineMisses)
		}
	}
}

func TestLpSHESavesEnergyVsWorstCaseSpeed(t *testing.T) {
	ts := rtm.Quickstart()
	res := runLpSHE(t, ts, workload.Uniform{Lo: 0.2, Hi: 1, Seed: 5}, Full)
	// Full speed for the same workload would use WorkDone * 1 busy
	// energy; lpSHE at cubic power must do strictly better.
	if res.BusyEnergy >= res.WorkDone {
		t.Errorf("busy energy %v not below full-speed cost %v", res.BusyEnergy, res.WorkDone)
	}
}

func TestLpSHEWorstCaseWorkloadMatchesStatic(t *testing.T) {
	// With every job consuming its WCET and U = 1, there is no
	// slack: lpSHE must run at full speed throughout.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 2, Period: 4},
	)
	res := runLpSHE(t, ts, workload.WorstCase{}, Full)
	if math.Abs(res.AvgSpeed()-1) > 1e-9 {
		t.Errorf("avg speed = %v, want 1 at U=1 worst case", res.AvgSpeed())
	}
}

func TestLpSHEStretchesSingleJob(t *testing.T) {
	// One task C=2, T=10, worst-case jobs: each job should run at
	// ~C/T = 0.2 (clamped by smin 0.1): the static slack is fully
	// converted.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 2, Period: 10})
	res := runLpSHE(t, ts, workload.WorstCase{}, Full)
	if res.DeadlineMisses != 0 {
		t.Fatal("missed deadline")
	}
	if math.Abs(res.AvgSpeed()-0.2) > 1e-6 {
		t.Errorf("avg speed = %v, want 0.2", res.AvgSpeed())
	}
	// Jobs complete exactly at their deadlines; no idle time.
	if res.IdleTime > sim.Eps {
		t.Errorf("idle time = %v, want 0", res.IdleTime)
	}
}

func TestLpSHEVariantOrdering(t *testing.T) {
	// The full analysis must not lose to its own ablations, and
	// every variant must beat the non-DVS reference.
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(8, 0.7, 21))
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 21}
	energies := map[Variant]float64{}
	for _, v := range []Variant{Full, Greedy, NoReclaim, Horizon8, Horizon32} {
		energies[v] = runLpSHE(t, ts, gen, v).Energy
	}
	nonDVS, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    nonDVSPolicy{},
		Workload:  gen,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v, e := range energies {
		if e > nonDVS.Energy*1.0001 {
			t.Errorf("variant %v energy %v exceeds non-DVS %v", v, e, nonDVS.Energy)
		}
	}
	slop := 1.02 // ablations may win tiny amounts on individual traces
	if energies[Full] > energies[NoReclaim]*slop {
		t.Errorf("full %v should not lose to no-reclaim %v", energies[Full], energies[NoReclaim])
	}
	if energies[Full] > energies[Horizon8]*slop {
		t.Errorf("full %v should not lose to horizon8 %v", energies[Full], energies[Horizon8])
	}
}

// nonDVSPolicy avoids importing internal/dvs (cycle-free test aid).
type nonDVSPolicy struct{ sim.NopHooks }

func (nonDVSPolicy) Name() string                      { return "nonDVS" }
func (nonDVSPolicy) Reset(sim.System)                  {}
func (nonDVSPolicy) SelectSpeed(*sim.JobState) float64 { return 1 }

// TestLpSHENeverMissesFuzz is the central property of the paper: for
// any EDF-feasible task set, any workload, any processor (continuous
// or discrete), the slack-analysis policy never misses a deadline.
func TestLpSHENeverMissesFuzz(t *testing.T) {
	procs := []*cpu.Processor{
		cpu.Continuous(0.1),
		cpu.Continuous(0.3),
		cpu.UniformLevels(4),
		cpu.XScale(),
	}
	variants := []Variant{Full, Greedy, NoReclaim, Horizon8}
	f := func(seed uint64, nRaw, uRaw, wRaw, pRaw uint8) bool {
		n := 1 + int(nRaw)%10
		u := 0.15 + 0.85*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		var gen workload.Generator
		switch wRaw % 4 {
		case 0:
			gen = workload.Uniform{Lo: 0.05, Hi: 1, Seed: seed}
		case 1:
			gen = workload.Bimodal{LightFrac: 0.1, HeavyFrac: 1, PHeavy: 0.3, Seed: seed}
		case 2:
			gen = workload.Sinusoidal{Mean: 0.5, Amp: 0.45, Jitter: 0.1, Seed: seed}
		default:
			gen = workload.WorstCase{}
		}
		proc := procs[int(pRaw)%len(procs)]
		v := variants[int(pRaw/4)%len(variants)]
		res, err := sim.Run(sim.Config{
			TaskSet:         ts,
			Processor:       proc,
			Policy:          NewLpSHEVariant(v),
			Workload:        gen,
			StrictDeadlines: true,
		})
		if err != nil {
			t.Logf("seed=%d n=%d u=%v gen=%s proc=%s variant=%v: %v",
				seed, n, u, gen.Name(), proc.Name(), v, err)
			return false
		}
		return res.DeadlineMisses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLpSHEName(t *testing.T) {
	if NewLpSHE().Name() != "lpSHE" {
		t.Errorf("Name = %q", NewLpSHE().Name())
	}
	if NewLpSHEVariant(Greedy).Name() != "lpSHE-greedy" {
		t.Errorf("Name = %q", NewLpSHEVariant(Greedy).Name())
	}
}

func TestLpSHECountersExposed(t *testing.T) {
	ts := rtm.Quickstart()
	p := NewLpSHE()
	res, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    p,
		Workload:  workload.Uniform{Lo: 0.5, Hi: 1, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyCounters == nil {
		t.Fatal("expected instrumented counters")
	}
	if res.PolicyCounters["decisions"] == 0 {
		t.Error("decision counter not populated")
	}
	if res.PolicyCounters["slack_calls"] == 0 {
		t.Error("slack call counter not populated")
	}
}

func TestLpSHESafetyMargin(t *testing.T) {
	ts := rtm.Quickstart()
	gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: 2}
	plain := runLpSHE(t, ts, gen, Full)
	p := NewLpSHE()
	p.SafetyMargin = 0.1
	res, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: cpu.Continuous(0.1),
		Policy:    p,
		Workload:  gen,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlineMisses != 0 {
		t.Error("margin must not cause misses")
	}
	if res.Energy < plain.Energy {
		t.Error("a safety margin cannot reduce energy")
	}
}
