package core

import (
	"fmt"
	"math"

	"dvsslack/internal/sim"
)

// Variant selects which parts of the slack analysis an LpSHE policy
// instance uses; the non-default values exist for the F8 ablation
// experiment and are all deadline-safe (they only ever select speeds
// at least as high as analysis requires).
type Variant int

const (
	// Full is the paper's algorithm as shipped: exact slack-time
	// analysis carrying the guarantee, with the pace/fill shaping
	// described on LpSHE choosing where in the sound region the
	// speed lands.
	Full Variant = iota
	// Greedy gives the entire analyzed slack to the current job:
	// s = w/(w + L(t)). Deadline-safe but convexity-blind; kept as
	// the ablation showing why the balanced reading matters.
	Greedy
	// NoReclaim disables reclamation: the unused worst-case
	// allowance of an early-completed job is kept as phantom demand
	// until the job's deadline passes, so only static and
	// idle-interval slack remain.
	NoReclaim
	// Horizon8 truncates the analysis scan to 8 deadlines,
	// degrading to the sound conservative readings beyond them.
	Horizon8
	// Horizon32 truncates the analysis scan to 32 deadlines.
	Horizon32
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Full:
		return "full"
	case Greedy:
		return "greedy"
	case NoReclaim:
		return "no-reclaim"
	case Horizon8:
		return "horizon8"
	case Horizon32:
		return "horizon32"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// LpSHE is the paper's DVS policy. At every scheduling point it runs
// the slack-time analysis over the released jobs and the future
// (earliest-possible) periodic releases, obtaining the system slack
// L(t), and selects the speed of the earliest-deadline job as
//
//	s = max( ownDeadlineFloor, soundFloor, min(pace, fill) )
//
// where:
//
//   - soundFloor = min( w/(w+L), 1 − L/(b−t) ) is the minimal speed
//     that provably preserves full-speed EDF feasibility until the
//     next scheduling point (b = guaranteed next-decision bound) —
//     this floor alone carries the entire hard real-time guarantee;
//   - pace is the utilization-shaped smoothing target, predicting
//     each task's usage share from its most recent actual execution
//     time (an active job contributes max(prediction, executed)),
//     the distribution a convex power curve prefers during busy
//     intervals;
//   - fill = backlog/(nextRelease − t) harvests idle-interval slack
//     during drain phases;
//   - ownDeadlineFloor = w/(d − t) always completes the dispatched
//     job by its own deadline.
//
// Because the analysis is recomputed at each release and completion,
// early-finishing jobs (dynamic slack), unused utilization (static
// slack), and gaps before future releases (idle-interval slack) all
// flow into the speed automatically; the pacing heuristics influence
// only where in the sound region the speed lands, never safety.
//
// The processor clamp (round-up on discrete level sets, floor at
// SMin) only ever raises the speed, so the hard real-time guarantee
// of the analysis is preserved verbatim. Release jitter is covered:
// the analysis assumes earliest-possible arrivals and the event
// floor uses the guaranteed decision bound (nominal plus jitter).
type LpSHE struct {
	sim.NopHooks

	// Variant selects the ablation mode (default Full).
	Variant Variant
	// SafetyMargin, when positive, is added multiplicatively to
	// every selected speed (s ← s·(1+SafetyMargin)); zero by
	// default — the analysis is exact and the engine's Eps absorbs
	// float drift.
	SafetyMargin float64

	sys      sim.System
	analyzer *Analyzer
	decided  float64
	// lastUsage[i] is the actual work the most recent completed job
	// of task i performed (initialized to the WCET). It feeds only
	// the pacing heuristic, never the guarantee.
	lastUsage []float64
	// nextReleaseOf caches the bound sys.NextReleaseOf method value
	// so SelectSpeed does not materialize a closure per decision.
	nextReleaseOf func(int) float64
	// expected/hasActive are per-decision scratch for the pacing
	// pass, reused so the steady-state decision path allocates
	// nothing. Like the Analyzer's scratch, they make an LpSHE
	// instance single-goroutine (one policy instance per concurrent
	// run — what the engine and harness already guarantee).
	expected  []float64
	hasActive []bool
}

// NewLpSHE returns the paper's algorithm in its standard (Full)
// configuration.
func NewLpSHE() *LpSHE { return &LpSHE{} }

// NewLpSHEVariant returns the algorithm with an ablation variant.
func NewLpSHEVariant(v Variant) *LpSHE { return &LpSHE{Variant: v} }

// Name implements sim.Policy.
func (p *LpSHE) Name() string {
	if p.Variant == Full {
		return "lpSHE"
	}
	return "lpSHE-" + p.Variant.String()
}

// Reset implements sim.Policy.
func (p *LpSHE) Reset(sys sim.System) {
	p.sys = sys
	p.analyzer = NewAnalyzer(sys.TaskSet())
	p.nextReleaseOf = sys.NextReleaseOf
	p.decided = 0
	n := sys.TaskSet().N()
	p.lastUsage = make([]float64, n)
	p.expected = make([]float64, n)
	p.hasActive = make([]bool, n)
	for i, t := range sys.TaskSet().Tasks {
		p.lastUsage[i] = t.WCET
	}
	switch p.Variant {
	case Horizon8:
		p.analyzer.SetMaxScan(8)
	case Horizon32:
		p.analyzer.SetMaxScan(32)
	}
}

// OnComplete implements sim.Policy: record the actual usage for the
// pacing heuristic; the no-reclaim ablation additionally pins the
// unused allowance of early finishers as phantom demand.
func (p *LpSHE) OnComplete(j *sim.JobState) {
	p.lastUsage[j.TaskIndex] = j.Executed
	if p.Variant != NoReclaim {
		return
	}
	if rem := j.WCET - j.Executed; rem > 0 {
		p.analyzer.AddPhantom(j.AbsDeadline, rem)
	}
}

// SelectSpeed implements sim.Policy.
func (p *LpSHE) SelectSpeed(j *sim.JobState) float64 {
	p.decided++
	w := j.RemainingWCET()
	if w <= 0 {
		// The job exhausted its worst-case budget (it is about to
		// complete); any positive speed is deadline-safe, so finish
		// it at the floor.
		return p.sys.Processor().SMin
	}
	now := p.sys.Now()
	active := p.sys.ActiveJobs()
	slack, _ := p.analyzer.Analyze(now, active, p.nextReleaseOf)

	// Speed-transition overhead: every change of the operating point
	// stalls the processor for SwitchTime. Reserve two stalls out of
	// the analyzed slack — one for the switch this decision may
	// trigger and one to fund the recovery switch back to full speed
	// once the slack is spent. A stall consumes wall-clock time at
	// zero progress, i.e. exactly one unit of every deadline's slack
	// per unit of stall, so subtracting 2σ keeps the feasibility
	// invariant argument intact verbatim.
	var reserve float64
	if st := p.sys.Processor().SwitchTime; st > 0 {
		reserve = 2 * st
	}
	slack -= reserve
	if slack < 0 {
		slack = 0
	}

	// Sound floor. Two independently sufficient conditions keep the
	// full-speed feasibility invariant (h(t,d) ≤ d−t for all d)
	// alive until the next scheduling point, where the analysis
	// reruns; the smaller of the two is therefore a sound floor:
	//
	//   greedy: s ≥ w/(w+L) — the job completes within w/s wall
	//   time and (w/s)(1−s) ≤ L, so no deadline's slack is
	//   overdrawn before the completion rescheduling point;
	//
	//   event: s ≥ 1 − L/(b−t) — a release is guaranteed by the
	//   decision bound b (nominal next release plus jitter), the
	//   engine recomputes the speed there, and (b−t)(1−s) ≤ L.
	//
	// The own-deadline floor w/(d−t) is enforced on top because
	// under the event branch the job's deadline may precede its
	// stretched completion.
	greedy := 1.0
	if slack > 0 {
		greedy = w / (w + slack)
	}
	soundMin := greedy
	bound := p.sys.NextDecisionBound()
	if gapB := bound - now; !math.IsInf(bound, 1) && gapB > 0 && slack > 0 {
		event := 1 - slack/gapB
		if event < 0 {
			event = 0
		}
		if event < soundMin {
			soundMin = event
		}
	}

	var s float64
	if p.Variant == Greedy {
		// Ablation: the whole analyzed slack goes to the current
		// job. Sound, but convexity-blind: later jobs find the
		// slack gone and run fast, so the speed trace oscillates.
		s = greedy
	} else {
		// Pacing target above the sound floor, by regime:
		//
		//   pace — utilization-shaped smoothing: each task counts
		//   its *predicted* usage share, estimated from the most
		//   recent actual execution time (an active job contributes
		//   at least what it has already executed; a worse-than-
		//   predicted job simply pushes the floors up later). This
		//   is the speed a steadily busy system should hold; convex
		//   power strongly prefers it over stretch-then-sprint.
		//
		//   fill — W/(nr−t): the speed that just finishes the known
		//   backlog W by the next arrival. In drain and idle phases
		//   (shallow queue, far next release) this is far below pace
		//   and harvests the idle-interval slack.
		//
		// min(pace, fill) picks the regime; the sound and
		// own-deadline floors below guarantee hard deadlines
		// regardless of how wrong the pacing history turns out.
		ts := p.sys.TaskSet()
		var backlog float64
		expected, hasActive := p.expected, p.hasActive
		for i := range expected {
			expected[i] = 0
			hasActive[i] = false
		}
		for _, a := range active {
			hasActive[a.TaskIndex] = true
			backlog += a.RemainingWCET()
			// Expected total usage of the active job: at least what it
			// has already executed, predicted by the last observation.
			if e := math.Max(p.lastUsage[a.TaskIndex], a.Executed); e > expected[a.TaskIndex] {
				expected[a.TaskIndex] = e
			}
		}
		var pace float64
		for i, task := range ts.Tasks {
			if hasActive[i] {
				pace += expected[i] / task.Period
			} else {
				pace += p.lastUsage[i] / task.Period
			}
		}
		fill := 1.0
		nr := p.sys.NextRelease() // earliest possible arrival
		if gap := nr - now; math.IsInf(nr, 1) {
			fill = 0 // no more arrivals: pure drain
		} else if gap > 0 {
			fill = backlog / gap
		}
		s = math.Min(pace, fill)
		if s < soundMin {
			s = soundMin
		}
	}
	// Never finish after the job's own deadline (the transition
	// reserve shrinks the usable window under non-zero SwitchTime).
	if win := j.AbsDeadline - now - reserve; win > 0 {
		if floor := w / win; floor > s {
			s = floor
		}
	} else {
		s = 1
	}
	if p.SafetyMargin > 0 {
		s *= 1 + p.SafetyMargin
	}
	return s
}

// Counters implements sim.Instrumented.
func (p *LpSHE) Counters() map[string]float64 {
	c := p.analyzer.Counters()
	c["decisions"] = p.decided
	return c
}
