package core

import (
	"fmt"
	"math"

	"dvsslack/internal/sim"
)

// Variant selects which parts of the slack analysis an LpSHE policy
// instance uses; the non-default values exist for the F8 ablation
// experiment and are all deadline-safe (they only ever select speeds
// at least as high as analysis requires).
type Variant int

const (
	// Full is the paper's algorithm as shipped: exact slack-time
	// analysis carrying the guarantee, with the pace/fill shaping
	// described on LpSHE choosing where in the sound region the
	// speed lands.
	Full Variant = iota
	// Greedy gives the entire analyzed slack to the current job:
	// s = w/(w + L(t)). Deadline-safe but convexity-blind; kept as
	// the ablation showing why the balanced reading matters.
	Greedy
	// NoReclaim disables reclamation: the unused worst-case
	// allowance of an early-completed job is kept as phantom demand
	// until the job's deadline passes, so only static and
	// idle-interval slack remain.
	NoReclaim
	// Horizon8 truncates the analysis scan to 8 deadlines,
	// degrading to the sound conservative readings beyond them.
	Horizon8
	// Horizon32 truncates the analysis scan to 32 deadlines.
	Horizon32
	// Rescan disables the incremental certificate and walks the full
	// deadline axis to the classic cutoffs at every decision — the
	// pre-incremental behavior, kept as the crosscheck oracle for
	// differential testing (results must be byte-identical to Full).
	Rescan
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Full:
		return "full"
	case Greedy:
		return "greedy"
	case NoReclaim:
		return "no-reclaim"
	case Horizon8:
		return "horizon8"
	case Horizon32:
		return "horizon32"
	case Rescan:
		return "rescan"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// LpSHE is the paper's DVS policy. At every scheduling point it runs
// the slack-time analysis over the released jobs and the future
// (earliest-possible) periodic releases, obtaining the system slack
// L(t), and selects the speed of the earliest-deadline job as
//
//	s = max( ownDeadlineFloor, soundFloor, min(pace, fill) )
//
// where:
//
//   - soundFloor = min( w/(w+L), 1 − L/(b−t) ) is the minimal speed
//     that provably preserves full-speed EDF feasibility until the
//     next scheduling point (b = guaranteed next-decision bound) —
//     this floor alone carries the entire hard real-time guarantee;
//   - pace is the utilization-shaped smoothing target, predicting
//     each task's usage share from its most recent actual execution
//     time (an active job contributes max(prediction, executed)),
//     the distribution a convex power curve prefers during busy
//     intervals;
//   - fill = backlog/(nextRelease − t) harvests idle-interval slack
//     during drain phases;
//   - ownDeadlineFloor = w/(d − t) always completes the dispatched
//     job by its own deadline.
//
// Because the analysis is recomputed at each release and completion,
// early-finishing jobs (dynamic slack), unused utilization (static
// slack), and gaps before future releases (idle-interval slack) all
// flow into the speed automatically; the pacing heuristics influence
// only where in the sound region the speed lands, never safety.
//
// The processor clamp (round-up on discrete level sets, floor at
// SMin) only ever raises the speed, so the hard real-time guarantee
// of the analysis is preserved verbatim. Release jitter is covered:
// the analysis assumes earliest-possible arrivals and the event
// floor uses the guaranteed decision bound (nominal plus jitter).
type LpSHE struct {
	sim.NopHooks

	// Variant selects the ablation mode (default Full).
	Variant Variant
	// SafetyMargin, when positive, is added multiplicatively to
	// every selected speed (s ← s·(1+SafetyMargin)); zero by
	// default — the analysis is exact and the engine's Eps absorbs
	// float drift.
	SafetyMargin float64

	sys      sim.System
	analyzer *Analyzer
	decided  float64
	// Fast-path state (Full variant only): the analyzer's slack
	// staircase (SetStairCapture) holds a sound lower bound on the
	// current slack between analyses; this policy only has to feed
	// it credits. runJob/runExec identify the running job and its
	// executed work at the last harvest, so the credit is ground
	// truth — correct even when a wrapper or a discrete level set
	// runs the job at a different speed than this policy returned.
	// haveL records that a first analysis populated the staircase;
	// fastHits counts decisions served from the bound without
	// re-analyzing.
	runJob   *sim.JobState
	runExec  float64
	haveL    bool
	fastHits float64
	// lastUsage[i] is the actual work the most recent completed job
	// of task i performed (initialized to the WCET). It feeds only
	// the pacing heuristic, never the guarantee.
	lastUsage []float64
	// nextReleaseOf caches the bound sys.NextReleaseOf method value
	// so SelectSpeed does not materialize a closure per decision.
	nextReleaseOf func(int) float64
	// expected/hasActive are per-decision scratch for the pacing
	// pass, reused so the steady-state decision path allocates
	// nothing. Like the Analyzer's scratch, they make an LpSHE
	// instance single-goroutine (one policy instance per concurrent
	// run — what the engine and harness already guarantee).
	// invPeriod caches 1/Period so the per-decision pacing loop
	// multiplies instead of dividing.
	expected  []float64
	hasActive []bool
	invPeriod []float64
	touched   []int
	// basePace is Σ lastUsage[i]/Period[i], maintained incrementally
	// as completions update lastUsage so paceFill only has to adjust
	// for the currently active tasks instead of walking every task.
	basePace float64
	// sMin and reserve cache the processor constants (floor speed and
	// the two-stall transition reserve) — fixed for a run, read every
	// decision.
	sMin    float64
	reserve float64
	// Per-decision provenance (sim.DecisionExplainer): which path the
	// most recent SelectSpeed took, how many deadlines it scanned, and
	// the cumulative staircase credits harvested since Reset.
	lastPath    sim.DecisionPath
	lastScanLen int
	credited    float64
}

// NewLpSHE returns the paper's algorithm in its standard (Full)
// configuration.
func NewLpSHE() *LpSHE { return &LpSHE{} }

// NewLpSHEVariant returns the algorithm with an ablation variant.
func NewLpSHEVariant(v Variant) *LpSHE { return &LpSHE{Variant: v} }

// Name implements sim.Policy.
func (p *LpSHE) Name() string {
	if p.Variant == Full {
		return "lpSHE"
	}
	return "lpSHE-" + p.Variant.String()
}

// Reset implements sim.Policy.
func (p *LpSHE) Reset(sys sim.System) {
	p.sys = sys
	ts := sys.TaskSet()
	if p.analyzer == nil || !p.analyzer.ReuseFor(ts) {
		p.analyzer = NewAnalyzer(ts)
	}
	p.nextReleaseOf = sys.NextReleaseOf
	p.decided = 0
	p.runJob, p.runExec, p.haveL, p.fastHits = nil, 0, false, 0
	p.lastPath, p.lastScanLen, p.credited = sim.PathUnknown, 0, 0
	n := ts.N()
	if len(p.lastUsage) != n {
		// One backing array for the per-task float scratch: three
		// fewer allocations per construction, and the hot pacing loop
		// touches one cache neighborhood instead of three.
		buf := make([]float64, 3*n)
		p.lastUsage = buf[:n:n]
		p.expected = buf[n : 2*n : 2*n]
		p.invPeriod = buf[2*n:]
		p.hasActive = make([]bool, n)
		p.touched = make([]int, 0, n)
	}
	proc := sys.Processor()
	p.sMin = proc.SMin
	p.reserve = 0
	if proc.SwitchTime > 0 {
		p.reserve = 2 * proc.SwitchTime
	}
	p.basePace = 0
	for i, t := range ts.Tasks {
		p.lastUsage[i] = t.WCET
		p.invPeriod[i] = 1 / t.Period
		p.basePace += t.WCET * p.invPeriod[i]
	}
	switch p.Variant {
	case Full:
		p.analyzer.SetStairCapture(true)
	case Horizon8:
		p.analyzer.SetMaxScan(8)
	case Horizon32:
		p.analyzer.SetMaxScan(32)
	case Rescan:
		p.analyzer.SetFullRescan(true)
	}
}

// OnComplete implements sim.Policy: record the actual usage for the
// pacing heuristic; the no-reclaim ablation additionally pins the
// unused allowance of early finishers as phantom demand.
func (p *LpSHE) OnComplete(j *sim.JobState) {
	i := j.TaskIndex
	p.basePace += (j.Executed - p.lastUsage[i]) * p.invPeriod[i]
	p.lastUsage[i] = j.Executed
	if p.Variant == Full && p.haveL {
		// Harvest the completed job's final executed work into the
		// staircase, then stop crediting: the queue may drain after
		// this completion and the processor idle until the next
		// release. If another job is dispatched instead, SelectSpeed
		// runs at this same instant and re-establishes the credit.
		now := p.sys.Now()
		p.harvest(now)
		p.runJob = nil
		if rem := j.RemainingWCET(); rem > 0 {
			// The job is gone from h entirely: its unused allowance
			// lifts the staircase too (StairCredit verifies the
			// lift applies to every surviving candidate).
			p.analyzer.StairCredit(now, j.AbsDeadline, rem)
			p.credited += rem
		}
	}
	if p.Variant != NoReclaim {
		return
	}
	if rem := j.WCET - j.Executed; rem > 0 {
		p.analyzer.AddPhantom(j.AbsDeadline, rem)
	}
}

// harvest credits the staircase with the running job's executed work
// observed since the last harvest — ground truth from the engine,
// immune to stalls, discrete-level clamps, and wrappers that run the
// job at a speed other than the one this policy returned. With
// runJob nil (idle, or a completed job already harvested by
// OnComplete) there is nothing to credit; the staircase still decays
// at rate 1 through StairBound's −t1 term.
func (p *LpSHE) harvest(now float64) {
	if p.runJob != nil {
		if x := p.runJob.Executed - p.runExec; x > 0 {
			p.analyzer.StairCredit(now, p.runJob.AbsDeadline, x)
			p.runExec = p.runJob.Executed
			p.credited += x
		}
	}
}

// SelectSpeed implements sim.Policy.
func (p *LpSHE) SelectSpeed(j *sim.JobState) float64 {
	p.decided++
	w := j.RemainingWCET()
	if w <= 0 {
		// The job exhausted its worst-case budget (it is about to
		// complete); any positive speed is deadline-safe, so finish
		// it at the floor. The fast-path bound stops crediting for
		// this sliver of execution (plain rate-1 decay, conservative).
		if p.Variant == Full && p.haveL {
			p.harvest(p.sys.Now())
			p.runJob = nil
		}
		p.lastPath, p.lastScanLen = sim.PathUnknown, 0
		return p.sMin
	}
	now := p.sys.Now()
	active := p.sys.ActiveJobs()

	// Speed-transition overhead: every change of the operating point
	// stalls the processor for SwitchTime. Reserve two stalls out of
	// the analyzed slack — one for the switch this decision may
	// trigger and one to fund the recovery switch back to full speed
	// once the slack is spent. A stall consumes wall-clock time at
	// zero progress, i.e. exactly one unit of every deadline's slack
	// per unit of stall, so subtracting 2σ keeps the feasibility
	// invariant argument intact verbatim.
	reserve := p.reserve

	var s float64
	if p.Variant != Greedy {
		s = p.paceFill(now, active)
		// Fast path (Full variant): the sound floor below is at most
		// min(w/(w+L), 1 − L/(b−t)). The staircase gives a sound
		// lower bound lb ≤ L(now), and both floor branches are
		// non-increasing in the slack argument under IEEE
		// arithmetic, so substituting lb can only raise them — when
		// the pacing candidate already clears the smaller of the
		// raised branches, the true sound floor provably cannot
		// bind, and the margin keeps float drift in the
		// fresh-analysis value from ever flipping the comparison the
		// wrong way. The selected speed is bit-identical to what a
		// fresh analysis would produce, so skip the analysis.
		if p.Variant == Full && p.haveL {
			p.harvest(now)
			lb := p.analyzer.StairBound(now)
			lb -= reserve + 1e-9*(1+math.Abs(lb))
			floor := math.Inf(1)
			if lb > 0 {
				floor = w / (w + lb)
				bound := p.sys.NextDecisionBound()
				if gapB := bound - now; !math.IsInf(bound, 1) && gapB > 0 {
					if ev := 1 - lb/gapB; ev < floor {
						floor = ev
					}
				}
			}
			if s >= floor {
				p.fastHits++
				p.runJob, p.runExec = j, j.Executed
				p.lastPath, p.lastScanLen = sim.PathStaircase, 0
				return p.finish(s, w, j, now, reserve)
			}
		}
	}

	slack := p.analyzer.Slack(now, active, p.nextReleaseOf)
	scanned, certified, truncated := p.analyzer.LastScan()
	p.lastScanLen = scanned
	switch {
	case truncated:
		p.lastPath = sim.PathAdaptiveCap
	case certified:
		p.lastPath = sim.PathCertificate
	default:
		p.lastPath = sim.PathFullScan
	}
	if p.Variant == Full {
		p.runJob, p.runExec = j, j.Executed
		p.haveL = true
	}
	slack -= reserve
	if slack < 0 {
		slack = 0
	}

	// Sound floor. Two independently sufficient conditions keep the
	// full-speed feasibility invariant (h(t,d) ≤ d−t for all d)
	// alive until the next scheduling point, where the analysis
	// reruns; the smaller of the two is therefore a sound floor:
	//
	//   greedy: s ≥ w/(w+L) — the job completes within w/s wall
	//   time and (w/s)(1−s) ≤ L, so no deadline's slack is
	//   overdrawn before the completion rescheduling point;
	//
	//   event: s ≥ 1 − L/(b−t) — a release is guaranteed by the
	//   decision bound b (nominal next release plus jitter), the
	//   engine recomputes the speed there, and (b−t)(1−s) ≤ L.
	//
	// The own-deadline floor w/(d−t) is enforced on top because
	// under the event branch the job's deadline may precede its
	// stretched completion.
	greedy := 1.0
	if slack > 0 {
		greedy = w / (w + slack)
	}
	soundMin := greedy
	bound := p.sys.NextDecisionBound()
	if gapB := bound - now; !math.IsInf(bound, 1) && gapB > 0 && slack > 0 {
		event := 1 - slack/gapB
		if event < 0 {
			event = 0
		}
		if event < soundMin {
			soundMin = event
		}
	}

	if p.Variant == Greedy {
		// Ablation: the whole analyzed slack goes to the current
		// job. Sound, but convexity-blind: later jobs find the
		// slack gone and run fast, so the speed trace oscillates.
		s = greedy
	} else if s < soundMin {
		s = soundMin
	}
	return p.finish(s, w, j, now, reserve)
}

// paceFill computes the pacing target above the sound floor, by
// regime:
//
//   - pace — utilization-shaped smoothing: each task counts its
//     *predicted* usage share, estimated from the most recent actual
//     execution time (an active job contributes at least what it has
//     already executed; a worse-than-predicted job simply pushes the
//     floors up later). This is the speed a steadily busy system
//     should hold; convex power strongly prefers it over
//     stretch-then-sprint.
//
//   - fill — W/(nr−t): the speed that just finishes the known
//     backlog W by the next arrival. In drain and idle phases
//     (shallow queue, far next release) this is far below pace and
//     harvests the idle-interval slack.
//
// min(pace, fill) picks the regime; the sound and own-deadline
// floors guarantee hard deadlines regardless of how wrong the pacing
// history turns out.
func (p *LpSHE) paceFill(now float64, active []*sim.JobState) float64 {
	var backlog float64
	pace := p.basePace
	expected, hasActive := p.expected, p.hasActive
	touched := p.touched
	for _, a := range active {
		ti := a.TaskIndex
		backlog += a.RemainingWCET()
		// Expected total usage of the active job: at least what it
		// has already executed, predicted by the last observation.
		e := a.Executed
		if lu := p.lastUsage[ti]; lu > e {
			e = lu
		}
		if !hasActive[ti] {
			hasActive[ti] = true
			expected[ti] = e
			touched = append(touched, ti)
		} else if e > expected[ti] {
			expected[ti] = e
		}
	}
	// Swap each touched task's resting contribution (already inside
	// basePace) for its active one, and reset the scratch marks so the
	// next decision starts clean without an O(n) clear.
	for _, ti := range touched {
		pace += (expected[ti] - p.lastUsage[ti]) * p.invPeriod[ti]
		hasActive[ti] = false
	}
	p.touched = touched[:0]
	fill := 1.0
	nr := p.sys.NextRelease() // earliest possible arrival
	if gap := nr - now; math.IsInf(nr, 1) {
		fill = 0 // no more arrivals: pure drain
	} else if gap > 0 {
		fill = backlog / gap
	}
	if fill < pace {
		return fill
	}
	return pace
}

// finish applies the slack-independent tail of every decision: the
// own-deadline floor and the optional safety margin.
func (p *LpSHE) finish(s, w float64, j *sim.JobState, now, reserve float64) float64 {
	// Never finish after the job's own deadline (the transition
	// reserve shrinks the usable window under non-zero SwitchTime).
	if win := j.AbsDeadline - now - reserve; win > 0 {
		if floor := w / win; floor > s {
			s = floor
		}
	} else {
		s = 1
	}
	if p.SafetyMargin > 0 {
		s *= 1 + p.SafetyMargin
	}
	return s
}

// LastDecision implements sim.DecisionExplainer: the provenance of
// the most recent SelectSpeed call, for the decision flight recorder.
func (p *LpSHE) LastDecision() sim.DecisionInfo {
	return sim.DecisionInfo{Path: p.lastPath, ScanLen: p.lastScanLen, Credits: p.credited}
}

// Counters implements sim.Instrumented.
func (p *LpSHE) Counters() map[string]float64 {
	c := p.analyzer.Counters()
	c["decisions"] = p.decided
	c["decision_fast_path"] = p.fastHits
	return c
}
