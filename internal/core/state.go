package core

import (
	"fmt"
	"math/bits"

	"dvsslack/internal/sim"
	"dvsslack/internal/snapbuf"
)

// This file implements checkpoint/restore for the analyzer and the
// lpSHE policy (sim.StateSnapshotter). Only mutable run state is
// serialized; everything derivable from the task set — the demand
// grid, utilization, hyperperiod, certificate slop, scratch buffers —
// is rebuilt by construction/Reset on the restore path. The one
// derived structure that depends on run state, the staircase sparse
// table (stairRMQ), is rebuilt from the restored stairC with the
// exact doubling loop Analyze uses, so its minima are bit-identical.

// SnapshotState serializes the analyzer's run state: phantom demand,
// the slack staircase with its cursors, credits and tail covers, the
// adaptive-horizon memory, and the instrumentation counters.
func (a *Analyzer) SnapshotState(enc *snapbuf.Encoder, _ sim.SnapshotContext) {
	enc.Int(len(a.phantoms))
	for _, p := range a.phantoms {
		enc.Float64(p.deadline)
		enc.Float64(p.rem)
	}
	enc.Int(a.adaptCap)
	enc.Int(a.deepestImpr)

	enc.Float64s(a.stairD)
	enc.Float64s(a.stairC)
	enc.Int(a.stairCur)
	enc.Float64(a.stairCredit)
	enc.Float64(a.stairLast)
	enc.Float64(a.tailCol)
	enc.Ints(a.liftLo)
	enc.Float64s(a.liftW)
	enc.Float64(a.stairAdvT)
	enc.Float64(a.stairFront)
	enc.Float64(a.stairB)
	enc.Bool(a.stairBOK)

	enc.Bool(a.tailValid)
	enc.Float64(a.tailC0)
	enc.Float64(a.tailBase)
	enc.Float64(a.tailAcc)
	enc.Int(a.tailJ)
	enc.Float64(a.tailCredit)
	enc.Float64(a.entSent)
	enc.Float64(a.entFront)

	enc.Float64(a.calls)
	enc.Float64(a.scanned)
	enc.Float64(a.capped)
	enc.Float64(a.incHits)
	enc.Float64(a.rebuilds)
	enc.Float64(a.adCapped)
	enc.Int(a.lastScan)
	enc.Bool(a.lastCert)
	enc.Bool(a.lastTrunc)
}

// RestoreState reads back what SnapshotState wrote, after Reset. It
// validates every structural invariant before use and rebuilds the
// staircase range-minimum table from the restored constants.
func (a *Analyzer) RestoreState(dec *snapbuf.Decoder, _ sim.SnapshotContext) error {
	np := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if np < 0 || np > dec.Remaining()/16 {
		return fmt.Errorf("core: implausible phantom count %d", np)
	}
	a.phantoms = a.phantoms[:0]
	for i := 0; i < np; i++ {
		a.AddPhantom(dec.Float64(), dec.Float64())
	}
	a.adaptCap = dec.Int()
	a.deepestImpr = dec.Int()

	a.stairD = append(a.stairD[:0], dec.Float64s()...)
	a.stairC = append(a.stairC[:0], dec.Float64s()...)
	a.stairCur = dec.Int()
	a.stairCredit = dec.Float64()
	a.stairLast = dec.Float64()
	a.tailCol = dec.Float64()
	a.liftLo = append(a.liftLo[:0], dec.Ints()...)
	a.liftW = append(a.liftW[:0], dec.Float64s()...)
	a.stairAdvT = dec.Float64()
	a.stairFront = dec.Float64()
	a.stairB = dec.Float64()
	a.stairBOK = dec.Bool()

	a.tailValid = dec.Bool()
	a.tailC0 = dec.Float64()
	a.tailBase = dec.Float64()
	a.tailAcc = dec.Float64()
	a.tailJ = dec.Int()
	a.tailCredit = dec.Float64()
	a.entSent = dec.Float64()
	a.entFront = dec.Float64()

	a.calls = dec.Float64()
	a.scanned = dec.Float64()
	a.capped = dec.Float64()
	a.incHits = dec.Float64()
	a.rebuilds = dec.Float64()
	a.adCapped = dec.Float64()
	a.lastScan = dec.Int()
	a.lastCert = dec.Bool()
	a.lastTrunc = dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}

	if len(a.stairD) != len(a.stairC) {
		return fmt.Errorf("core: staircase length mismatch: %d deadlines, %d constants",
			len(a.stairD), len(a.stairC))
	}
	if a.stairCur < 0 || a.stairCur > len(a.stairD) {
		return fmt.Errorf("core: staircase cursor %d out of range [0,%d]", a.stairCur, len(a.stairD))
	}
	if len(a.liftLo) != len(a.liftW) || len(a.liftLo) > maxStairLifts {
		return fmt.Errorf("core: lift list malformed: %d boundaries, %d weights",
			len(a.liftLo), len(a.liftW))
	}
	if a.adaptCap < 0 || a.deepestImpr < 0 {
		return fmt.Errorf("core: negative adaptive-horizon state")
	}
	if a.tailValid {
		if a.grid == nil {
			return fmt.Errorf("core: snapshot has a grid tail but the analyzer has no grid")
		}
		if a.tailJ < 0 || a.tailJ >= len(a.grid.pos) {
			return fmt.Errorf("core: tail cursor %d out of range [0,%d)", a.tailJ, len(a.grid.pos))
		}
	}

	// Rebuild the sparse range-minimum table exactly as Analyze does,
	// so StairBound's segment minima are bit-identical post-restore.
	k := len(a.stairC)
	levels := bits.Len(uint(k))
	rmq := a.stairRMQ
	if need := levels * k; cap(rmq) < need {
		rmq = make([]float64, need)
	} else {
		rmq = rmq[:need]
	}
	copy(rmq, a.stairC)
	for lev := 1; lev < levels; lev++ {
		half := 1 << (lev - 1)
		prev, row := (lev-1)*k, lev*k
		for j := 0; j+2*half <= k; j++ {
			v := rmq[prev+j]
			if v2 := rmq[prev+j+half]; v2 < v {
				v = v2
			}
			rmq[row+j] = v
		}
	}
	a.stairRMQ = rmq
	return nil
}

// SnapshotState implements sim.StateSnapshotter for lpSHE: the
// fast-path bookkeeping, pacing history, decision provenance, and the
// analyzer's run state. The running-job pointer travels as a ready
// queue reference.
func (p *LpSHE) SnapshotState(enc *snapbuf.Encoder, sc sim.SnapshotContext) {
	enc.Float64(p.decided)
	enc.Int(sc.JobRef(p.runJob))
	enc.Float64(p.runExec)
	enc.Bool(p.haveL)
	enc.Float64(p.fastHits)
	enc.Float64s(p.lastUsage)
	enc.Float64(p.basePace)
	enc.Float64(p.credited)
	enc.Uint8(uint8(p.lastPath))
	enc.Int(p.lastScanLen)
	p.analyzer.SnapshotState(enc, sc)
}

// RestoreState implements sim.StateSnapshotter; Reset has already
// rebuilt the analyzer, scratch, and derived constants for the
// restored engine.
func (p *LpSHE) RestoreState(dec *snapbuf.Decoder, sc sim.SnapshotContext) error {
	p.decided = dec.Float64()
	runRef := dec.Int()
	p.runExec = dec.Float64()
	p.haveL = dec.Bool()
	p.fastHits = dec.Float64()
	usage := dec.Float64s()
	p.basePace = dec.Float64()
	p.credited = dec.Float64()
	path := dec.Uint8()
	p.lastScanLen = dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(usage) != len(p.lastUsage) {
		return fmt.Errorf("core: lpSHE usage history has %d entries for %d tasks",
			len(usage), len(p.lastUsage))
	}
	copy(p.lastUsage, usage)
	p.runJob = sc.JobAt(runRef)
	if runRef >= 0 && p.runJob == nil {
		return fmt.Errorf("core: lpSHE running-job reference %d resolves to no ready job", runRef)
	}
	p.lastPath = sim.DecisionPath(path)
	return p.analyzer.RestoreState(dec, sc)
}
