package core

import (
	"testing"
	"testing/quick"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// withJitter copies a task set, giving every task release jitter of
// frac times its period.
func withJitter(ts *rtm.TaskSet, frac float64) *rtm.TaskSet {
	out := rtm.NewTaskSet(ts.Name, ts.Tasks...)
	for i := range out.Tasks {
		out.Tasks[i].Jitter = frac * out.Tasks[i].Period
	}
	return out
}

// TestLpSHEJitterFuzz: the slack analysis assumes only
// earliest-possible future releases and the event floor uses the
// guaranteed decision bound, so the hard guarantee must survive
// arbitrary release jitter — the "dynamic workload" arrival noise.
func TestLpSHEJitterFuzz(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw, jRaw uint8) bool {
		n := 1 + int(nRaw)%8
		u := 0.15 + 0.8*float64(uRaw)/255
		base, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		ts := withJitter(base, float64(jRaw%10)/10)
		for _, v := range []Variant{Full, Greedy} {
			res, err := sim.Run(sim.Config{
				TaskSet:         ts,
				Processor:       cpu.Continuous(0.1),
				Policy:          NewLpSHEVariant(v),
				Workload:        workload.Uniform{Lo: 0.2, Hi: 1, Seed: seed},
				JitterSeed:      seed ^ 0xabc,
				StrictDeadlines: true,
			})
			if err != nil || res.DeadlineMisses != 0 {
				t.Logf("variant %v seed=%d n=%d u=%v jitter=%d0%%: err=%v misses=%d",
					v, seed, n, u, jRaw%10, err, res.DeadlineMisses)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestJitterBreaksUtilizationPacing documents why the event floor
// must use the decision bound: a policy that slows to the worst-case
// utilization (staticEDF-style pacing, which is optimal for strictly
// periodic releases) CAN miss deadlines once releases bunch up under
// jitter, while lpSHE on the identical trace does not.
func TestJitterBreaksUtilizationPacing(t *testing.T) {
	ts := rtm.NewTaskSet("bunch",
		rtm.Task{Name: "a", WCET: 1, Period: 4, Jitter: 3.5},
		rtm.Task{Name: "b", WCET: 2.6, Period: 4},
	)
	var staticMissed bool
	for seed := uint64(0); seed < 40 && !staticMissed; seed++ {
		res, err := sim.Run(sim.Config{
			TaskSet:    ts,
			Processor:  cpu.Continuous(0.05),
			Policy:     &fixedSpeedPolicy{s: ts.Utilization()},
			Workload:   workload.WorstCase{},
			Horizon:    200,
			JitterSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.DeadlineMisses > 0 {
			staticMissed = true
			// The same trace under lpSHE must stay clean.
			lp, err := sim.Run(sim.Config{
				TaskSet:         ts,
				Processor:       cpu.Continuous(0.05),
				Policy:          NewLpSHE(),
				Workload:        workload.WorstCase{},
				Horizon:         200,
				JitterSeed:      seed,
				StrictDeadlines: true,
			})
			if err != nil {
				t.Fatalf("lpSHE on the same jittered trace: %v", err)
			}
			if lp.DeadlineMisses != 0 {
				t.Fatalf("lpSHE missed %d deadlines", lp.DeadlineMisses)
			}
		}
	}
	if !staticMissed {
		t.Skip("no jitter seed produced a utilization-pacing miss on this set (expected occasionally)")
	}
}

// fixedSpeedPolicy runs at one constant speed (test aid).
type fixedSpeedPolicy struct {
	sim.NopHooks
	s float64
}

func (p *fixedSpeedPolicy) Name() string                      { return "fixed" }
func (p *fixedSpeedPolicy) Reset(sim.System)                  {}
func (p *fixedSpeedPolicy) SelectSpeed(*sim.JobState) float64 { return p.s }
