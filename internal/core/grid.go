package core

import (
	"math"
	"sync"

	"dvsslack/internal/rtm"
)

// demandGrid is the precomputed steady-state demand landscape of a
// periodic task set over one hyperperiod: every deadline residue the
// future-release streams can ever produce, with the worst-case work
// due at it, in sorted order, plus the prefix/suffix aggregates that
// let a scan bound the entire un-scanned remainder of the deadline
// axis in O(log m).
//
// The grid is the "event structure" of the incremental analyzer: it
// is built once per task set (the streams' deadline residues never
// change — release skips and jitter only delay individual streams,
// which the certificate treats conservatively), and every Analyze
// call reuses it to certify that the deadlines it did not visit
// cannot change either analysis reading. See Analyzer.certify for
// the exact inequalities and docs/performance.md for the derivation.
//
// Positions are offsets in (0, H]: the canonical deadline set is
// {w·H + pos[j] : w ≥ 0, j < m}. With the integer period pools used
// throughout the evaluation every position is exactly representable,
// so the canonical set and the scan's accumulated stream deadlines
// agree bit-for-bit; non-integer task sets are covered by the
// boundary epsilon in the certificate.
type demandGrid struct {
	hyper float64
	pos   []float64 // sorted deadline offsets in (0, H]
	cum   []float64 // cum[j] = Σ weight of pos[0..j]
	// sufMin[j] = min over k ≥ j of (pos[k] − cum[k]); sufMin[m] = +Inf.
	// This is the steady-state slack landscape: the slack at the
	// canonical deadline w·H + pos[k] differs from (pos[k] − cum[k])
	// only by call-time constants, so a suffix minimum bounds every
	// unscanned deadline of the current hyperperiod window at once.
	sufMin []float64
	allMin float64 // min over all j of (pos[j] − cum[j])
	total  float64 // cum[m−1] = U·H (worst-case work per hyperperiod)
	// maxFU = max over j of (cum[j] − util·pos[j]): the largest
	// excursion of cumulative demand above the utilization line,
	// anchored at the deadline positions. Drives the below-
	// utilization intensity certificate.
	maxFU float64
	// dev bounds the demand of ANY interval (a, b] of the periodic
	// deadline set by util·(b−a) + dev (max burst above average over
	// one period). Drives the above-utilization intensity
	// certificate.
	dev float64
	// util is the grid's own utilization total/hyper. It may differ
	// from rtm.TaskSet.Utilization by float rounding; the certificate
	// uses this value so the per-hyperperiod drift term r·(total −
	// util·hyper) cancels to an ulp, which the slop margin absorbs.
	util float64
}

// maxGridPoints caps the grid size. Beyond it the build cost would
// rival the scans it saves, so the analyzer falls back to the plain
// full-rescan path (sound, just slower — exactly the pre-grid
// behavior). The evaluation's period pools produce a few hundred to
// a few thousand points.
const maxGridPoints = 1 << 15

// gridCacheSize bounds the process-wide grid cache. Policies rebuild
// their Analyzer on every Reset, and the serving paths (dvsd result
// cache misses, experiment replications, benchmark loops) re-run the
// same handful of task sets over and over — without the cache every
// one of those runs would pay the grid build again, which at a few
// thousand points costs as much as several certified Analyze calls.
const gridCacheSize = 8

// gridKey is one task's contribution to the cache key. Grids are
// matched by task-set *content*, never by pointer, so a recycled
// TaskSet allocation can never alias a stale grid, and equal task
// sets built independently (experiment replications) share one build.
type gridKey struct{ period, wcet, dl float64 }

var gridCache struct {
	sync.Mutex
	entries [gridCacheSize]struct {
		key []gridKey
		g   *demandGrid
		ok  bool
	}
	next int
}

func gridKeyOf(ts *rtm.TaskSet) []gridKey {
	key := make([]gridKey, len(ts.Tasks))
	for i, t := range ts.Tasks {
		key[i] = gridKey{period: t.Period, wcet: t.WCET, dl: t.RelDeadline()}
	}
	return key
}

func gridKeyEqual(a, b []gridKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildDemandGrid returns the grid for a's task set — from the
// process-wide cache when an identical task set was built before —
// or nil when the hyperperiod is unknown or the grid would exceed
// maxGridPoints (nil is cached too: deciding it costs a pass over
// the tasks). The grid is immutable after construction, so sharing
// one instance across analyzers and goroutines is safe.
func buildDemandGrid(a *Analyzer) *demandGrid {
	key := a.key
	gridCache.Lock()
	for i := range gridCache.entries {
		e := &gridCache.entries[i]
		if e.ok && gridKeyEqual(e.key, key) {
			g := e.g
			gridCache.Unlock()
			return g
		}
	}
	gridCache.Unlock()
	g := buildDemandGridUncached(a)
	gridCache.Lock()
	e := &gridCache.entries[gridCache.next]
	e.key, e.g, e.ok = key, g, true
	gridCache.next = (gridCache.next + 1) % gridCacheSize
	gridCache.Unlock()
	return g
}

// buildDemandGridUncached materializes the grid by merging the
// per-task deadline-residue sequences (each already sorted — an
// arithmetic progression), avoiding a general sort of the combined
// point set.
func buildDemandGridUncached(a *Analyzer) *demandGrid {
	h := a.hyper
	if h <= 0 {
		return nil
	}
	// Count points first: one per stream deadline residue per task.
	m := 0
	for _, t := range a.ts.Tasks {
		k := h / t.Period
		// Guard non-divisors (Hyperperiod guarantees divisibility up
		// to float rounding) and oversized grids.
		kn := math.Round(k)
		if math.Abs(k-kn) > 1e-9*(1+kn) || kn < 1 {
			return nil
		}
		m += int(kn)
		if m > maxGridPoints {
			return nil
		}
	}
	if m == 0 {
		return nil
	}
	g := &demandGrid{hyper: h}
	// Merge the per-task residue sequences. Each task's deadlines are
	// the arithmetic progression d0, d0+T, d0+2T, … — already sorted —
	// so an n-way "pick the minimum head" merge produces the combined
	// axis in O(m·n) float compares with no general sort. Equal
	// positions coalesce as they are consumed.
	nt := len(a.ts.Tasks)
	heads := make([]float64, nt)
	for i, t := range a.ts.Tasks {
		// First deadline residue in (0, period]: the stream deadlines
		// are r + D + k·T with r ≡ 0 (mod T), so residues mod T equal
		// D mod T (mapped to T when the remainder is zero).
		d0 := math.Mod(t.RelDeadline(), t.Period)
		if d0 <= 0 {
			d0 += t.Period
		}
		heads[i] = d0
	}
	g.pos = make([]float64, 0, m)
	g.cum = make([]float64, 0, m)
	var c float64
	end := h + 1e-9*(1+h)
	for {
		d := math.Inf(1)
		for _, p := range heads {
			if p < d {
				d = p
			}
		}
		if d > end {
			break
		}
		for i := range heads {
			if heads[i] == d {
				c += a.ts.Tasks[i].WCET
				heads[i] += a.ts.Tasks[i].Period
			}
		}
		g.pos = append(g.pos, d)
		g.cum = append(g.cum, c)
	}
	g.total = c
	g.util = c / h

	n := len(g.pos)
	g.sufMin = make([]float64, n+1)
	g.sufMin[n] = math.Inf(1)
	for j := n - 1; j >= 0; j-- {
		v := g.pos[j] - g.cum[j]
		g.sufMin[j] = math.Min(v, g.sufMin[j+1])
	}
	g.allMin = g.sufMin[0]

	// Deviation envelope: f(x) = demand(0, x] − util·x over one
	// period. f starts at 0, jumps by the point weight at each
	// position, and drains at slope util in between; its extrema are
	// attained just after (max) and just before (min) positions.
	maxF, minF := 0.0, 0.0
	g.maxFU = math.Inf(-1)
	prevCum := 0.0
	for j := 0; j < n; j++ {
		after := g.cum[j] - g.util*g.pos[j]
		before := prevCum - g.util*g.pos[j]
		if after > maxF {
			maxF = after
		}
		if before < minF {
			minF = before
		}
		if after > g.maxFU {
			g.maxFU = after
		}
		prevCum = g.cum[j]
	}
	g.dev = maxF - minF
	return g
}

// pastIndex returns the number of grid positions ≤ rho−eps: positions
// within eps of the query point stay "future", so demand near the
// boundary is counted twice (once in the folded prefix, once in the
// certificate) rather than dropped — the conservative direction.
func (g *demandGrid) pastIndex(rho, eps float64) int {
	lo, hi := 0, len(g.pos)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.pos[mid] <= rho-eps {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
