package core

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/prng"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

// bruteSlack recomputes L(t) and the intensity by direct enumeration:
// every deadline in the periodicity window is visited and h(t,d) is
// summed from scratch — an independent O(n·D) oracle for the
// incremental sweep in Analyzer.Analyze.
func bruteSlack(ts *rtm.TaskSet, t float64, active []*sim.JobState, nextRel func(int) float64) (float64, float64) {
	h, okH := ts.Hyperperiod()
	if !okH {
		panic("bruteSlack needs a hyperperiod")
	}
	maxFirst := t
	for i, task := range ts.Tasks {
		if nd := nextRel(i) + task.RelDeadline(); nd > maxFirst {
			maxFirst = nd
		}
	}
	horizon := maxFirst + h

	// Collect every candidate deadline.
	var deadlines []float64
	for _, j := range active {
		deadlines = append(deadlines, j.AbsDeadline)
	}
	for i, task := range ts.Tasks {
		for d := nextRel(i) + task.RelDeadline(); d <= horizon+1e-9; d += task.Period {
			deadlines = append(deadlines, d)
		}
	}

	demand := func(d float64) float64 {
		var sum float64
		for _, j := range active {
			if j.AbsDeadline <= d {
				sum += j.RemainingWCET()
			}
		}
		for i, task := range ts.Tasks {
			for dd := nextRel(i) + task.RelDeadline(); dd <= d+1e-12; dd += task.Period {
				sum += task.WCET
			}
		}
		return sum
	}

	minL := math.Inf(1)
	var maxS float64
	for _, d := range deadlines {
		if d <= t || d > horizon+1e-9 {
			continue
		}
		hd := demand(d)
		if l := d - t - hd; l < minL {
			minL = l
		}
		if s := hd / (d - t); s > maxS {
			maxS = s
		}
	}
	if u := ts.Utilization(); u > maxS {
		maxS = u
	}
	if maxS > 1 {
		maxS = 1
	}
	if minL < 0 {
		minL = 0
	}
	if math.IsInf(minL, 1) {
		minL = 0
	}
	return minL, maxS
}

// TestAnalyzeMatchesBruteForce cross-checks the production analyzer
// (incremental sweep, early cutoffs) against the naive oracle on
// random mid-simulation states.
func TestAnalyzeMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw, stateRaw uint8) bool {
		n := 1 + int(nRaw)%6
		u := 0.2 + 0.8*float64(uRaw)/255
		cfg := rtm.DefaultGenConfig(n, u, seed)
		// Small hyperperiods keep the oracle cheap.
		cfg.Periods = []float64{10, 20, 25, 50, 100}
		ts, err := rtm.Generate(cfg)
		if err != nil {
			return false
		}
		// Fabricate a plausible mid-simulation state: a random time,
		// a random subset of tasks with an active (partially
		// executed) current job, the rest completed.
		src := prng.New(seed ^ uint64(stateRaw))
		now := src.Range(0, 200)
		var active []*sim.JobState
		nextRel := make([]float64, n)
		for i, task := range ts.Tasks {
			k := math.Floor(now / task.Period)
			rel := k * task.Period
			nextRel[i] = rel + task.Period
			if src.Float64() < 0.6 {
				j := ts.JobOf(i, int(k))
				js := &sim.JobState{Job: j}
				// Partially executed, but never past the deadline
				// feasibility (executed <= elapsed since release).
				maxExec := math.Min(task.WCET, now-rel)
				if maxExec > 0 {
					js.Executed = src.Float64() * maxExec
				}
				active = append(active, js)
			}
		}
		nr := func(i int) float64 { return nextRel[i] }

		a := NewAnalyzer(ts)
		gotL, gotS := a.Analyze(now, active, nr)
		wantL, wantS := bruteSlack(ts, now, active, nr)

		// The analyzer may return the clamped-at-zero value or stop
		// scanning early once the minimum cannot improve; both must
		// agree with the oracle to float tolerance. Intensity may
		// legitimately exceed the oracle's when the scan stopped at
		// minL <= 0 (it reports 1, and the oracle's max is also >= 1
		// in that case after clamping).
		if math.Abs(gotL-wantL) > 1e-6 {
			t.Logf("seed=%d n=%d u=%.3f now=%.3f: slack %v != oracle %v",
				seed, n, u, now, gotL, wantL)
			return false
		}
		if math.Abs(gotS-wantS) > 1e-6 {
			t.Logf("seed=%d n=%d u=%.3f now=%.3f: intensity %v != oracle %v",
				seed, n, u, now, gotS, wantS)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
