package core

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/cpu"
	"dvsslack/internal/prng"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// fabricateState builds a plausible mid-simulation state for a task
// set: a random time, a random subset of tasks with an active
// (partially executed) current job, and the periodic next-release
// map. Shared by the differential tests below.
func fabricateState(ts *rtm.TaskSet, seed uint64) (now float64, active []*sim.JobState, nextRel func(int) float64) {
	src := prng.New(seed)
	now = src.Range(0, 300)
	rel := make([]float64, len(ts.Tasks))
	for i, task := range ts.Tasks {
		k := math.Floor(now / task.Period)
		rel[i] = (k + 1) * task.Period
		if src.Float64() < 0.6 {
			js := &sim.JobState{Job: ts.JobOf(i, int(k))}
			if maxExec := math.Min(task.WCET, now-k*task.Period); maxExec > 0 {
				js.Executed = src.Float64() * maxExec
			}
			active = append(active, js)
		}
	}
	return now, active, func(i int) float64 { return rel[i] }
}

// TestIncrementalMatchesRescanExactly pins the central contract of
// the incremental analyzer: in default (exact) mode, the grid
// certificate must stop scans WITHOUT changing either reading by even
// an ulp relative to the full-rescan oracle. Equality here is ==, not
// a tolerance.
func TestIncrementalMatchesRescanExactly(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw, stateRaw uint8) bool {
		n := 1 + int(nRaw)%7
		u := 0.2 + 0.75*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		now, active, nextRel := fabricateState(ts, seed^uint64(stateRaw)<<8)

		inc := NewAnalyzer(ts)
		ora := NewAnalyzer(ts)
		ora.SetFullRescan(true)

		gotL, gotS := inc.Analyze(now, active, nextRel)
		wantL, wantS := ora.Analyze(now, active, nextRel)
		if gotL != wantL || gotS != wantS {
			t.Logf("seed=%d n=%d u=%.3f now=%.3f: incremental (%v, %v) != rescan (%v, %v)",
				seed, n, u, now, gotL, gotS, wantL, wantS)
			return false
		}
		// The slack-only entry point skips the intensity certification
		// clauses; the slack reading must still be bit-identical.
		if sl := inc.Slack(now, active, nextRel); sl != ora.Slack(now, active, nextRel) {
			t.Logf("seed=%d now=%.3f: Slack() diverges from rescan", seed, now)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalMatchesRescanWithPhantoms repeats the exactness
// check with phantom demand registered (the no-reclaim ablation
// path), which exercises the phantom clauses of the certificate.
func TestIncrementalMatchesRescanWithPhantoms(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw)%5
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, 0.6, seed))
		if err != nil {
			return false
		}
		now, active, nextRel := fabricateState(ts, seed*31+7)
		src := prng.New(seed ^ 0x9e3779b9)

		inc := NewAnalyzer(ts)
		ora := NewAnalyzer(ts)
		ora.SetFullRescan(true)
		for k := 0; k < 3; k++ {
			d := now + src.Range(1, 100)
			w := src.Range(0.1, 2)
			inc.AddPhantom(d, w)
			ora.AddPhantom(d, w)
		}
		gotL, gotS := inc.Analyze(now, active, nextRel)
		wantL, wantS := ora.Analyze(now, active, nextRel)
		if gotL != wantL || gotS != wantS {
			t.Logf("seed=%d: with phantoms (%v, %v) != rescan (%v, %v)", seed, gotL, gotS, wantL, wantS)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// stairCheckPolicy wraps the production lpSHE policy and, at every
// decision the fast path serves, crosschecks the staircase bound
// against a fresh full-rescan analysis of the same instant: the bound
// must never exceed the true system slack (soundness), since the fast
// path substitutes it into the floor computation.
type stairCheckPolicy struct {
	*LpSHE
	t      *testing.T
	oracle *Analyzer
	checks int
}

func (p *stairCheckPolicy) Reset(sys sim.System) {
	p.LpSHE.Reset(sys)
	p.oracle = NewAnalyzer(sys.TaskSet())
	p.oracle.SetFullRescan(true)
}

func (p *stairCheckPolicy) SelectSpeed(j *sim.JobState) float64 {
	s := p.LpSHE.SelectSpeed(j)
	if p.haveL {
		now := p.sys.Now()
		lb := p.analyzer.StairBound(now)
		truth := p.oracle.Slack(now, p.sys.ActiveJobs(), p.sys.NextReleaseOf)
		if lb > truth+1e-6 {
			p.t.Errorf("t=%v: stair bound %v exceeds true slack %v", now, lb, truth)
		}
		p.checks++
	}
	return s
}

// TestStairBoundSoundInSimulation drives full simulations and
// verifies at every scheduling point that the staircase lower bound
// (credits, expiry cursors, grid tail and all) never exceeds the
// slack a from-scratch analysis reports.
func TestStairBoundSoundInSimulation(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		ts := rtm.MustGenerate(rtm.DefaultGenConfig(2+int(seed%6), 0.5+0.05*float64(seed%5), seed))
		p := &stairCheckPolicy{LpSHE: NewLpSHE(), t: t}
		res, err := sim.Run(sim.Config{
			TaskSet:   ts,
			Processor: cpu.Continuous(0.1),
			Policy:    p,
			Workload:  workload.Uniform{Lo: 0.3, Hi: 1, Seed: seed},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.DeadlineMisses != 0 {
			t.Errorf("seed %d: %d misses", seed, res.DeadlineMisses)
		}
		if p.checks == 0 {
			t.Errorf("seed %d: staircase never checked", seed)
		}
	}
}

// TestStairCreditOverflowStaysSound floods the staircase with credits
// at many distinct deadlines — far past maxStairLifts — so the
// boundary list must compact and fold. Every fold direction is
// required to be conservative, which the in-simulation soundness
// check above already enforces; here we pin the unit-level property
// directly on a fabricated state.
func TestStairCreditOverflowStaysSound(t *testing.T) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(6, 0.6, 3))
	now, active, nextRel := fabricateState(ts, 99)

	a := NewAnalyzer(ts)
	a.SetStairCapture(true)
	base, _ := a.Analyze(now, active, nextRel)

	// Reference analyzer sees the same state; the staircase only ever
	// receives zero-work credits here, so its bound must stay at or
	// below the unchanged true slack no matter how the lift list
	// saturates, compacts, or folds.
	src := prng.New(4242)
	t1 := now
	for k := 0; k < 200; k++ {
		t1 += src.Range(0, 0.5)
		a.StairCredit(t1, now+src.Range(0.1, 400), 0)
		if lb := a.StairBound(t1); lb > base-(t1-now)+1e-9 {
			// Demand only decays at rate 1 with zero credits, so the
			// bound may never exceed the t0 slack minus elapsed time...
			// except when cursor expiry legitimately RAISES it past the
			// decayed t0 floor (the recovery property). Crosscheck
			// against a fresh analysis instead of failing outright.
			truth := NewAnalyzer(ts).Slack(t1, nil, nextRelAfter(ts, t1))
			if lb > truth+1e-6 {
				t.Fatalf("step %d t=%v: bound %v exceeds decay floor and true slack %v", k, t1, lb, truth)
			}
		}
	}

	// Nonzero credits at the front deadline must accumulate uniformly.
	a2 := NewAnalyzer(ts)
	a2.SetStairCapture(true)
	l0, _ := a2.Analyze(now, active, nextRel)
	lb0 := a2.StairBound(now)
	if lb0 > l0+1e-9 {
		t.Fatalf("immediate bound %v exceeds analyzed slack %v", lb0, l0)
	}
	a2.StairCredit(now, now+0.01, 0.25) // at/before every covered deadline
	if got := a2.StairBound(now); math.Abs(got-(lb0+0.25)) > 1e-9 {
		t.Fatalf("uniform credit: bound %v, want %v", got, lb0+0.25)
	}
}

// nextRelAfter returns the periodic next-release map for an idle
// system at time t (every task's current job window has passed).
func nextRelAfter(ts *rtm.TaskSet, t float64) func(int) float64 {
	return func(i int) float64 {
		p := ts.Tasks[i].Period
		return (math.Floor(t/p) + 1) * p
	}
}

// TestAdaptiveHorizonSoundAndCounted verifies the adaptive horizon
// (off by default) degrades conservatively: the reading with the cap
// enabled never exceeds the exact slack, intensity never drops below
// the exact one, and the truncation counter moves on at least one of
// the probed states.
func TestAdaptiveHorizonSoundAndCounted(t *testing.T) {
	// Non-harmonic periods defeat the grid certificate cheaply, so
	// scans run deep enough for the adaptive cap to fire.
	cfg := rtm.DefaultGenConfig(6, 0.85, 11)
	cfg.Periods = []float64{70, 105, 110, 154, 165, 231}
	ts := rtm.MustGenerate(cfg)

	ad := NewAnalyzer(ts)
	ad.SetAdaptiveHorizon(true)
	var truncations float64
	for seed := uint64(1); seed <= 40; seed++ {
		now, active, nextRel := fabricateState(ts, seed*977)
		exactL, exactS := NewAnalyzer(ts).Analyze(now, active, nextRel)
		gotL, gotS := ad.Analyze(now, active, nextRel)
		if gotL > exactL+1e-9 {
			t.Fatalf("seed %d: adaptive slack %v above exact %v", seed, gotL, exactL)
		}
		if gotS < exactS-1e-9 {
			t.Fatalf("seed %d: adaptive intensity %v below exact %v", seed, gotS, exactS)
		}
		truncations = ad.Counters()["slack_adaptive_capped"]
	}
	if truncations == 0 {
		t.Error("adaptive cap never fired across 40 probes; test lost its bite")
	}
	if off := NewAnalyzer(ts); off.adaptive {
		t.Error("adaptive horizon must be off by default")
	}
}

// TestLpSHEFullMatchesRescanEndToEnd runs whole simulations under the
// default incremental+staircase policy and the full-rescan oracle
// variant: every engine-level observable must be bit-identical, which
// is the end-to-end form of the fast path's "byte-identical skip"
// claim.
func TestLpSHEFullMatchesRescanEndToEnd(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		ts := rtm.MustGenerate(rtm.DefaultGenConfig(2+int(seed)%7, 0.45+0.05*float64(seed%8), seed))
		run := func(v Variant) sim.Result {
			res, err := sim.Run(sim.Config{
				TaskSet:   ts,
				Processor: cpu.Continuous(0.1),
				Policy:    NewLpSHEVariant(v),
				Workload:  workload.Uniform{Lo: 0.2, Hi: 1, Seed: seed * 3},
			})
			if err != nil {
				t.Fatalf("seed %d variant %v: %v", seed, v, err)
			}
			return res
		}
		full, rescan := run(Full), run(Rescan)
		if full.Energy != rescan.Energy ||
			full.SpeedTimeIntegral != rescan.SpeedTimeIntegral ||
			full.SpeedSwitches != rescan.SpeedSwitches ||
			full.DeadlineMisses != rescan.DeadlineMisses ||
			full.Decisions != rescan.Decisions {
			t.Errorf("seed %d: full vs rescan diverge: energy %v/%v integral %v/%v switches %d/%d misses %d/%d decisions %d/%d",
				seed, full.Energy, rescan.Energy,
				full.SpeedTimeIntegral, rescan.SpeedTimeIntegral,
				full.SpeedSwitches, rescan.SpeedSwitches,
				full.DeadlineMisses, rescan.DeadlineMisses,
				full.Decisions, rescan.Decisions)
		}
	}
}

// TestAnalyzerReuseFor pins the cross-run reuse contract: reusing for
// an equal task set keeps results identical to a fresh build, and a
// different task set refuses the reuse.
func TestAnalyzerReuseFor(t *testing.T) {
	ts1 := rtm.MustGenerate(rtm.DefaultGenConfig(5, 0.6, 2))
	ts1b := rtm.MustGenerate(rtm.DefaultGenConfig(5, 0.6, 2)) // equal content, distinct allocation
	ts2 := rtm.MustGenerate(rtm.DefaultGenConfig(5, 0.6, 9))

	a := NewAnalyzer(ts1)
	now, active, nextRel := fabricateState(ts1, 7)
	a.SetStairCapture(true)
	a.Analyze(now, active, nextRel)
	a.StairCredit(now, now+1, 0.5)

	if !a.ReuseFor(ts1b) {
		t.Fatal("ReuseFor rejected an identical task set")
	}
	gotL, gotS := a.Analyze(now, active, nextRel)
	wantL, wantS := NewAnalyzer(ts1b).Analyze(now, active, nextRel)
	if gotL != wantL || gotS != wantS {
		t.Errorf("reused analyzer (%v, %v) != fresh (%v, %v)", gotL, gotS, wantL, wantS)
	}
	if c := a.Counters()["slack_calls"]; c != 1 {
		t.Errorf("reuse kept stale counters: slack_calls = %v", c)
	}
	if a.ReuseFor(ts2) {
		t.Error("ReuseFor accepted a different task set")
	}
}

// TestCountersMapReused pins the satellite fix: Counters() refreshes
// one analyzer-owned map in place instead of allocating per scrape.
func TestCountersMapReused(t *testing.T) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(4, 0.5, 1))
	a := NewAnalyzer(ts)
	now, active, nextRel := fabricateState(ts, 5)
	a.Analyze(now, active, nextRel)

	c1 := a.Counters()
	c2 := a.Counters()
	if &c1 == &c2 {
		// Map headers are handles; compare identity by mutation.
		t.Skip("unreachable")
	}
	c1["__probe"] = 42
	if c2["__probe"] != 42 {
		t.Fatal("Counters() returned distinct maps")
	}
	delete(c1, "__probe")
	if got := testing.AllocsPerRun(50, func() { a.Counters() }); got > 0 {
		t.Errorf("Counters() allocates %v per scrape, want 0", got)
	}
	for _, key := range []string{"slack_calls", "slack_incremental_hits", "slack_rebuilds", "slack_adaptive_capped"} {
		if _, ok := c1[key]; !ok {
			t.Errorf("counter %q missing", key)
		}
	}
}
