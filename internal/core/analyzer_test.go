package core

import (
	"math"
	"testing"

	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
)

// mkActive builds an active-job list from (deadline, remaining WCET)
// pairs.
func mkActive(pairs ...[2]float64) []*sim.JobState {
	var out []*sim.JobState
	for _, p := range pairs {
		out = append(out, &sim.JobState{Job: rtm.Job{AbsDeadline: p[0], WCET: p[1], AET: p[1]}})
	}
	return out
}

// nextRel builds a NextReleaseOf function from a slice indexed by
// task.
func nextRel(times ...float64) func(int) float64 {
	return func(i int) float64 { return times[i] }
}

func TestSlackSingleTaskFresh(t *testing.T) {
	// One task C=2, T=4; at t=0 its first job is active with full
	// remaining work. Deadlines: 4 (h=2), 8 (h=4), 12 (h=6)...
	// slack = 2 everywhere; min = 2.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 2, Period: 4})
	a := NewAnalyzer(ts)
	slack, intensity := a.Analyze(0, mkActive([2]float64{4, 2}), nextRel(4))
	if math.Abs(slack-2) > 1e-9 {
		t.Errorf("slack = %v, want 2", slack)
	}
	if math.Abs(intensity-0.5) > 1e-9 {
		t.Errorf("intensity = %v, want 0.5", intensity)
	}
}

func TestSlackReclaimsEarlyCompletion(t *testing.T) {
	// Two tasks C=2, T=4 each (U=1). At t=0.5 task 0's job has
	// completed (not in the active list); task 1's job is fresh.
	// Deadlines: 4 (h=2, slack 1.5), 8 (h=2+4=6, slack 1.5), ...
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 2, Period: 4},
	)
	a := NewAnalyzer(ts)
	slack, intensity := a.Analyze(0.5, mkActive([2]float64{4, 2}), nextRel(4, 4))
	if math.Abs(slack-1.5) > 1e-9 {
		t.Errorf("slack = %v, want 1.5 (reclaimed)", slack)
	}
	// intensity at d=4: 2/3.5; at d=8: 6/7.5 = 0.8 (max); at d=12:
	// 10/11.5 < 0.87...; d=12: 10/11.5=0.8696! larger. Periodic:
	// approaches 1 from below; max over scan should approach U=1.
	if intensity < 0.8 || intensity > 1 {
		t.Errorf("intensity = %v, want in [0.8, 1]", intensity)
	}
}

func TestSlackStaticUtilization(t *testing.T) {
	// Single task C=1, T=10 (U=0.1), fresh at t=0: deadline 10 has
	// h=1 → slack 9; later deadlines have even more. Min = 9.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 10})
	a := NewAnalyzer(ts)
	slack, _ := a.Analyze(0, mkActive([2]float64{10, 1}), nextRel(10))
	if math.Abs(slack-9) > 1e-9 {
		t.Errorf("slack = %v, want 9", slack)
	}
}

func TestSlackLookaheadSeesFutureTightness(t *testing.T) {
	// Current job: deadline 100, rem 1. A heavy task releases at 10
	// with deadline 20 and WCET 9.5: the window (t,20] has
	// slack 20 - 0 - (9.5 + 1 if current counted at d=100? no:
	// current's deadline 100 > 20, so h(20) = 9.5) = 10.5. But
	// d=100: h = 1 + 9.5*(how many jobs due by 100)...
	// Use a clean construction: T2 = (9.5, 10) from release 10:
	// deadlines 20, 30, ..., each adds 9.5 → slack at 30:
	// 30 - 19 = 11 → at 100: 100 - (1 + 9*9.5) = 13.5.
	// The binding constraint is d=20: slack 10.5.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 100},
		rtm.Task{WCET: 9.5, Period: 10},
	)
	a := NewAnalyzer(ts)
	slack, _ := a.Analyze(0, mkActive([2]float64{100, 1}), nextRel(100, 10))
	if math.Abs(slack-10.5) > 1e-9 {
		t.Errorf("slack = %v, want 10.5", slack)
	}
}

func TestSlackZeroAtFullDemand(t *testing.T) {
	// U = 1, everything fresh at t=0: no slack at all.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 2, Period: 4},
	)
	a := NewAnalyzer(ts)
	slack, intensity := a.Analyze(0,
		mkActive([2]float64{4, 2}, [2]float64{4, 2}), nextRel(4, 4))
	if slack != 0 {
		t.Errorf("slack = %v, want 0", slack)
	}
	if intensity != 1 {
		t.Errorf("intensity = %v, want 1", intensity)
	}
}

func TestSlackNeverNegative(t *testing.T) {
	// Pathological over-committed state (would be a policy bug):
	// the analyzer must still return 0, not negative.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 2, Period: 4})
	a := NewAnalyzer(ts)
	slack, intensity := a.Analyze(3, mkActive([2]float64{4, 2}), nextRel(4))
	if slack != 0 {
		t.Errorf("slack = %v, want clamped 0", slack)
	}
	if intensity != 1 {
		t.Errorf("intensity = %v, want clamped 1", intensity)
	}
}

func TestSlackEmptySystem(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 10})
	a := NewAnalyzer(ts)
	// No active jobs; next release at 8, deadline 18: slack
	// min(18 - 2 - 1, ...) = 15 at the first future deadline.
	slack, _ := a.Analyze(2, nil, nextRel(8))
	if math.Abs(slack-15) > 1e-9 {
		t.Errorf("slack = %v, want 15", slack)
	}
}

func TestSlackPhantomDemand(t *testing.T) {
	// With a phantom (no-reclaim ablation) the early-completed
	// job's unused allowance still counts as demand.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 2, Period: 4},
	)
	a := NewAnalyzer(ts)
	a.AddPhantom(4, 1.5) // completed early, 1.5 unused
	slack, _ := a.Analyze(0.5, mkActive([2]float64{4, 2}), nextRel(4, 4))
	// h(4) = 2 + 1.5 = 3.5 → slack 0.
	if slack != 0 {
		t.Errorf("slack with phantom = %v, want 0", slack)
	}
	// Phantoms expire at their deadline.
	a.dropExpiredPhantoms(5)
	if len(a.phantoms) != 0 {
		t.Error("expired phantom not dropped")
	}
}

func TestSlackScanBudgetDegradesConservatively(t *testing.T) {
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4},
		rtm.Task{WCET: 1, Period: 5},
	)
	full := NewAnalyzer(ts)
	capped := NewAnalyzer(ts)
	capped.SetMaxScan(1)
	active := mkActive([2]float64{4, 1}, [2]float64{5, 1})
	fSlack, fInt := full.Analyze(0, active, nextRel(4, 5))
	cSlack, cInt := capped.Analyze(0, active, nextRel(4, 5))
	if cSlack > fSlack+1e-12 {
		t.Errorf("capped slack %v exceeds full %v", cSlack, fSlack)
	}
	if cInt < fInt-1e-12 {
		t.Errorf("capped intensity %v below full %v", cInt, fInt)
	}
	if capped.Counters()["slack_budget_capped"] == 0 {
		t.Error("cap counter not incremented")
	}
}

func TestSlackUtilizationCutoffMatchesFullScan(t *testing.T) {
	// The early-termination cutoff must not change results: compare
	// against an analyzer forced to scan the whole periodicity
	// window by disabling the cutoff via util == 1? Instead compare
	// two task sets where the cutoff triggers at different points:
	// re-run the same state twice and check determinism plus a
	// hand-computed value.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 8},
		rtm.Task{WCET: 2, Period: 12},
	)
	a := NewAnalyzer(ts)
	active := mkActive([2]float64{8, 1}, [2]float64{12, 2})
	s1, i1 := a.Analyze(0, active, nextRel(8, 12))
	s2, i2 := a.Analyze(0, active, nextRel(8, 12))
	if s1 != s2 || i1 != i2 {
		t.Error("analysis not deterministic")
	}
	// Deadlines: 8 (h=1, slack 7), 12 (h=3, slack 9), 16 (h=4,
	// slack 12), 20 (h=5, slack 15), 24 (h=7, slack 17), ...
	// min = 7 at d=8; max ratio = 3/12? 1/8=0.125, 3/12=0.25,
	// 4/16=0.25, 7/24≈0.292, 8/32=0.25, 10/36=0.278, ...
	// U = 1/8 + 2/12 = 0.2917; ratios approach U. Largest is ~0.2917.
	if math.Abs(s1-7) > 1e-9 {
		t.Errorf("slack = %v, want 7", s1)
	}
	if i1 < 0.29 || i1 > 0.2918 {
		t.Errorf("intensity = %v, want ≈ 0.2917", i1)
	}
}

func TestAnalyzerCounters(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 4})
	a := NewAnalyzer(ts)
	a.Analyze(0, mkActive([2]float64{4, 1}), nextRel(4))
	c := a.Counters()
	if c["slack_calls"] != 1 {
		t.Errorf("calls = %v, want 1", c["slack_calls"])
	}
	if c["slack_scanned"] < 1 {
		t.Errorf("scanned = %v, want >= 1", c["slack_scanned"])
	}
	a.ResetCounters()
	if a.Counters()["slack_calls"] != 0 {
		t.Error("ResetCounters did not zero calls")
	}
}

func TestSlackConstrainedDeadlines(t *testing.T) {
	// Constrained deadline D < T: the stream deadlines are
	// release + D.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 10, Deadline: 2})
	a := NewAnalyzer(ts)
	// Active job deadline 2, rem 1 at t=0: slack at 2 is 1; future
	// deadlines 12 (h=2, slack 10)... min = 1.
	slack, _ := a.Analyze(0, mkActive([2]float64{2, 1}), nextRel(10))
	if math.Abs(slack-1) > 1e-9 {
		t.Errorf("slack = %v, want 1", slack)
	}
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		Full: "full", Greedy: "greedy", NoReclaim: "no-reclaim",
		Horizon8: "horizon8", Horizon32: "horizon32", Variant(99): "variant(99)",
	} {
		if got := v.String(); got != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}
