// Package wire holds the serializable building-block specs shared by
// every layer that describes simulations as data: the dvsd daemon's
// request schema (internal/server), the fuzz harness's reproducer
// corpus (internal/fuzz), and the declarative scenario documents
// (internal/scenario).
//
// The specs live below internal/server so that packages the server
// itself builds on (notably internal/scenario, which the daemon
// executes behind /v1/scenario) can speak the same wire vocabulary
// without an import cycle. internal/server re-exports the types under
// their historical names (server.ProcessorSpec, server.WorkloadSpec)
// as aliases, so existing callers and the canonical ScenarioKey hash
// are unchanged.
package wire

import (
	"fmt"

	"dvsslack/internal/cpu"
	"dvsslack/internal/workload"
)

// ProcessorSpec is the wire form of a cpu.Processor.
//
// Either Preset names one of the cpu.Presets models ("continuous",
// "xscale", "crusoe", "sa1100", "uniform4", "uniform8"), or the spec
// is assembled from Levels/SMin and Model. Overhead and power knobs
// apply on top of either base.
type ProcessorSpec struct {
	Preset string    `json:"preset,omitempty"`
	SMin   float64   `json:"smin,omitempty"`
	Levels []float64 `json:"levels,omitempty"`

	// Model selects the power model: "" or "cubic", "alpha"
	// (AlphaVt/AlphaIdx, defaulting to the standard 0.3/1.5), or
	// "table" (Table required).
	Model    string      `json:"model,omitempty"`
	AlphaVt  float64     `json:"alpha_vt,omitempty"`
	AlphaIdx float64     `json:"alpha_idx,omitempty"`
	Table    []cpu.Level `json:"table,omitempty"`
	// TableName labels a table model in reports ("table" if empty).
	TableName string `json:"table_name,omitempty"`

	// IdlePower overrides the default awake-idle power when non-nil.
	IdlePower         *float64 `json:"idle_power,omitempty"`
	SwitchTime        float64  `json:"switch_time,omitempty"`
	SwitchEnergyCoeff float64  `json:"switch_energy_coeff,omitempty"`
	LeakagePower      float64  `json:"leakage_power,omitempty"`
	SleepEnabled      bool     `json:"sleep_enabled,omitempty"`
	SleepPower        float64  `json:"sleep_power,omitempty"`
	WakeEnergy        float64  `json:"wake_energy,omitempty"`
}

// Build constructs and validates the processor the spec describes.
func (s *ProcessorSpec) Build() (*cpu.Processor, error) {
	var p *cpu.Processor
	switch {
	case s.Preset != "":
		if len(s.Levels) > 0 || s.Model != "" {
			return nil, fmt.Errorf("wire: processor preset %q cannot be combined with levels/model", s.Preset)
		}
		p = cpu.Presets()[s.Preset]
		if p == nil {
			return nil, fmt.Errorf("wire: unknown processor preset %q", s.Preset)
		}
		if s.SMin != 0 {
			p.SMin = s.SMin
		}
	case len(s.Levels) > 0:
		var err error
		p, err = cpu.WithLevels(s.Levels...)
		if err != nil {
			return nil, err
		}
	default:
		smin := s.SMin
		if smin == 0 {
			smin = 0.1
		}
		p = cpu.Continuous(smin)
	}
	switch s.Model {
	case "", "cubic":
		// keep the base model
	case "alpha":
		m := cpu.DefaultAlphaModel()
		if s.AlphaVt != 0 {
			m.Vt = s.AlphaVt
		}
		if s.AlphaIdx != 0 {
			m.Alpha = s.AlphaIdx
		}
		p.Model = m
	case "table":
		name := s.TableName
		if name == "" {
			name = "table"
		}
		m, err := cpu.NewTableModel(name, s.Table)
		if err != nil {
			return nil, err
		}
		p.Model = m
	default:
		return nil, fmt.Errorf("wire: unknown power model %q", s.Model)
	}
	if s.IdlePower != nil {
		p.IdlePower = *s.IdlePower
	}
	p.SwitchTime = s.SwitchTime
	p.SwitchEnergyCoeff = s.SwitchEnergyCoeff
	p.LeakagePower = s.LeakagePower
	p.SleepEnabled = s.SleepEnabled
	p.SleepPower = s.SleepPower
	p.WakeEnergy = s.WakeEnergy
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SpecFromProcessor inverts Build for the processor values the
// library constructs (cubic, alpha, and table power models). It is
// what lets the experiment harness ship its in-memory processor
// configurations to a remote daemon.
func SpecFromProcessor(p *cpu.Processor) (ProcessorSpec, error) {
	s := ProcessorSpec{
		SMin:              p.SMin,
		Levels:            p.Levels(),
		SwitchTime:        p.SwitchTime,
		SwitchEnergyCoeff: p.SwitchEnergyCoeff,
		LeakagePower:      p.LeakagePower,
		SleepEnabled:      p.SleepEnabled,
		SleepPower:        p.SleepPower,
		WakeEnergy:        p.WakeEnergy,
	}
	idle := p.IdlePower
	s.IdlePower = &idle
	switch m := p.Model.(type) {
	case nil, cpu.CubicModel:
		s.Model = "cubic"
	case cpu.AlphaModel:
		s.Model, s.AlphaVt, s.AlphaIdx = "alpha", m.Vt, m.Alpha
	case *cpu.TableModel:
		s.Model, s.Table, s.TableName = "table", m.Levels(), m.Name()
	default:
		return ProcessorSpec{}, fmt.Errorf("wire: power model %s has no wire form", p.Model.Name())
	}
	return s, nil
}

// WorkloadSpec is the wire form of a workload.Generator. Kind selects
// the generator; only the fields that generator uses are read.
type WorkloadSpec struct {
	// Kind: "" or "worst-case", "uniform", "constant", "normal",
	// "bimodal", "sinusoidal".
	Kind       string  `json:"kind,omitempty"`
	Lo         float64 `json:"lo,omitempty"`
	Hi         float64 `json:"hi,omitempty"`
	Frac       float64 `json:"frac,omitempty"`
	Mean       float64 `json:"mean,omitempty"`
	StdDev     float64 `json:"std_dev,omitempty"`
	LightFrac  float64 `json:"light_frac,omitempty"`
	HeavyFrac  float64 `json:"heavy_frac,omitempty"`
	PHeavy     float64 `json:"p_heavy,omitempty"`
	Amp        float64 `json:"amp,omitempty"`
	PeriodJobs float64 `json:"period_jobs,omitempty"`
	Jitter     float64 `json:"jitter,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
}

// Build constructs the generator the spec describes.
func (s *WorkloadSpec) Build() (workload.Generator, error) {
	switch s.Kind {
	case "", "worst-case":
		return workload.WorstCase{}, nil
	case "uniform":
		if s.Lo < 0 || s.Hi > 1 || s.Lo > s.Hi {
			return nil, fmt.Errorf("wire: uniform workload bounds [%v,%v] out of order or outside [0,1]", s.Lo, s.Hi)
		}
		return workload.Uniform{Lo: s.Lo, Hi: s.Hi, Seed: s.Seed}, nil
	case "constant":
		return workload.Constant{Frac: s.Frac}, nil
	case "normal":
		return workload.Normal{Mean: s.Mean, StdDev: s.StdDev, Seed: s.Seed}, nil
	case "bimodal":
		return workload.Bimodal{LightFrac: s.LightFrac, HeavyFrac: s.HeavyFrac, PHeavy: s.PHeavy, Seed: s.Seed}, nil
	case "sinusoidal":
		return workload.Sinusoidal{Mean: s.Mean, Amp: s.Amp, PeriodJobs: s.PeriodJobs, Jitter: s.Jitter, Seed: s.Seed}, nil
	default:
		return nil, fmt.Errorf("wire: unknown workload kind %q", s.Kind)
	}
}

// SpecFromGenerator inverts Build for the shipped generator types.
func SpecFromGenerator(g workload.Generator) (WorkloadSpec, error) {
	switch g := g.(type) {
	case nil, workload.WorstCase:
		return WorkloadSpec{Kind: "worst-case"}, nil
	case workload.Uniform:
		return WorkloadSpec{Kind: "uniform", Lo: g.Lo, Hi: g.Hi, Seed: g.Seed}, nil
	case workload.Constant:
		return WorkloadSpec{Kind: "constant", Frac: g.Frac}, nil
	case workload.Normal:
		return WorkloadSpec{Kind: "normal", Mean: g.Mean, StdDev: g.StdDev, Seed: g.Seed}, nil
	case workload.Bimodal:
		return WorkloadSpec{Kind: "bimodal", LightFrac: g.LightFrac, HeavyFrac: g.HeavyFrac, PHeavy: g.PHeavy, Seed: g.Seed}, nil
	case workload.Sinusoidal:
		return WorkloadSpec{Kind: "sinusoidal", Mean: g.Mean, Amp: g.Amp, PeriodJobs: g.PeriodJobs, Jitter: g.Jitter, Seed: g.Seed}, nil
	default:
		return WorkloadSpec{}, fmt.Errorf("wire: workload %s has no wire form", g.Name())
	}
}
