package wire

import (
	"reflect"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/workload"
)

// TestProcessorSpecRoundTrip pins Build ∘ SpecFromProcessor = id for
// the constructions the library ships.
func TestProcessorSpecRoundTrip(t *testing.T) {
	procs := map[string]*cpu.Processor{
		"continuous": cpu.Continuous(0.2),
		"xscale":     cpu.XScale(),
		"uniform4":   cpu.UniformLevels(4),
	}
	withExtras := cpu.Continuous(0.1)
	withExtras.SwitchTime = 0.01
	withExtras.LeakagePower = 0.2
	withExtras.SleepEnabled = true
	withExtras.SleepPower = 0.01
	withExtras.WakeEnergy = 0.05
	procs["extras"] = withExtras

	for name, p := range procs {
		spec, err := SpecFromProcessor(p)
		if err != nil {
			t.Fatalf("%s: SpecFromProcessor: %v", name, err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		if !reflect.DeepEqual(p.Levels(), back.Levels()) {
			t.Errorf("%s: levels %v != %v", name, back.Levels(), p.Levels())
		}
		if back.SMin != p.SMin || back.SleepEnabled != p.SleepEnabled ||
			back.LeakagePower != p.LeakagePower || back.SwitchTime != p.SwitchTime {
			t.Errorf("%s: round-trip changed processor fields", name)
		}
		// The power models must agree numerically.
		for _, s := range []float64{0.25, 0.5, 1} {
			if got, want := back.Power(s), p.Power(s); got != want {
				t.Errorf("%s: Power(%v) = %v, want %v", name, s, got, want)
			}
		}
	}
}

// TestWorkloadSpecRoundTrip pins Build ∘ SpecFromGenerator = id for
// every shipped generator kind.
func TestWorkloadSpecRoundTrip(t *testing.T) {
	gens := []workload.Generator{
		workload.WorstCase{},
		workload.Uniform{Lo: 0.3, Hi: 0.9, Seed: 7},
		workload.Constant{Frac: 0.5},
		workload.Normal{Mean: 0.6, StdDev: 0.1, Seed: 3},
		workload.Bimodal{LightFrac: 0.2, HeavyFrac: 0.9, PHeavy: 0.25, Seed: 9},
		workload.Sinusoidal{Mean: 0.5, Amp: 0.3, PeriodJobs: 16, Seed: 5},
	}
	for _, g := range gens {
		spec, err := SpecFromGenerator(g)
		if err != nil {
			t.Fatalf("%s: SpecFromGenerator: %v", g.Name(), err)
		}
		back, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", g.Name(), err)
		}
		for task := 0; task < 3; task++ {
			for job := 0; job < 8; job++ {
				if got, want := back.AET(task, job, 2.5), g.AET(task, job, 2.5); got != want {
					t.Fatalf("%s: AET(%d, %d) = %v, want %v", g.Name(), task, job, got, want)
				}
			}
		}
	}
}

// TestSpecErrors pins the validation errors of the wire layer.
func TestSpecErrors(t *testing.T) {
	cases := []ProcessorSpec{
		{Preset: "no-such-preset"},
		{Preset: "xscale", Model: "cubic"},
		{Model: "no-such-model"},
	}
	for i, s := range cases {
		if _, err := s.Build(); err == nil {
			t.Errorf("case %d: invalid spec built", i)
		}
	}
	bad := WorkloadSpec{Kind: "no-such-kind"}
	if _, err := bad.Build(); err == nil {
		t.Error("unknown workload kind built")
	}
}
