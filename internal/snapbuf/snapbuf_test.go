package snapbuf

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint64(0)
	e.Uint64(math.MaxUint64)
	e.Int(-42)
	e.Int(1 << 40)
	e.Bool(true)
	e.Bool(false)
	e.Uint8(0xAB)
	e.Float64(3.141592653589793)
	e.Float64(math.Inf(-1))
	e.Float64(math.Copysign(0, -1))
	e.String("")
	e.String("hello, 世界")
	e.Float64s(nil)
	e.Float64s([]float64{1, math.Inf(1), -0.5})
	e.Ints([]int{-1, 0, 7})

	d := NewDecoder(e.Bytes())
	if got := d.Uint64(); got != 0 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := d.Int(); got != -42 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Int(); got != 1<<40 {
		t.Errorf("Int = %d", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := d.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x", got)
	}
	if got := d.Float64(); got != 3.141592653589793 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 = %v, want -Inf", got)
	}
	if got := d.Float64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("Float64 lost the -0 sign bit: %v", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "hello, 世界" {
		t.Errorf("String = %q", got)
	}
	if got := d.Float64s(); got != nil {
		t.Errorf("Float64s = %v, want nil", got)
	}
	got := d.Float64s()
	if len(got) != 3 || got[0] != 1 || !math.IsInf(got[1], 1) || got[2] != -0.5 {
		t.Errorf("Float64s = %v", got)
	}
	ints := d.Ints()
	if len(ints) != 3 || ints[0] != -1 || ints[1] != 0 || ints[2] != 7 {
		t.Errorf("Ints = %v", ints)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestNaNBitPatternPreserved(t *testing.T) {
	// A quiet NaN with a payload must survive the round trip exactly.
	bits := uint64(0x7ff800000000beef)
	e := NewEncoder()
	e.Float64(math.Float64frombits(bits))
	d := NewDecoder(e.Bytes())
	if got := math.Float64bits(d.Float64()); got != bits {
		t.Errorf("NaN bits = %#x, want %#x", got, bits)
	}
}

func TestTruncation(t *testing.T) {
	e := NewEncoder()
	e.Uint64(7)
	e.Float64s([]float64{1, 2, 3})
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Uint64()
		d.Float64s()
		if err := d.Finish(); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: Finish = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder(nil)
	_ = d.Uint64() // fails: truncated
	if d.Err() == nil {
		t.Fatal("expected sticky error")
	}
	// Every later read must be a harmless zero value.
	if v := d.Float64(); v != 0 {
		t.Errorf("post-error Float64 = %v", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("post-error String = %q", v)
	}
	if v := d.Ints(); v != nil {
		t.Errorf("post-error Ints = %v", v)
	}
	if !errors.Is(d.Finish(), ErrTruncated) {
		t.Errorf("Finish = %v, want ErrTruncated", d.Finish())
	}
}

func TestOversizedLengthPrefixFailsFast(t *testing.T) {
	// A corrupt length prefix claiming ~2^61 elements must fail
	// before any allocation, not OOM.
	e := NewEncoder()
	e.Uint64(math.MaxUint64 / 4)
	d := NewDecoder(e.Bytes())
	if v := d.Float64s(); v != nil {
		t.Errorf("Float64s on corrupt prefix = %v", v)
	}
	if !errors.Is(d.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", d.Err())
	}
}

func TestInvalidBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("Bool(2) must fail")
	}
}

func TestTrailingBytes(t *testing.T) {
	e := NewEncoder()
	e.Uint64(1)
	e.Uint8(9)
	d := NewDecoder(e.Bytes())
	d.Uint64()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish with trailing bytes must fail")
	}
}
