// Package snapbuf is the low-level binary codec underneath the
// checkpoint/restore subsystem (internal/snapshot). It is a leaf
// package — sim, core, dvs, and audit all encode their run state
// through it, and the snapshot package frames the result — so it must
// not import anything from this module.
//
// The format is deliberately primitive: fixed-width little-endian
// scalars with length-prefixed strings and slices, no field names, no
// self-description. Self-description lives one layer up (the snapshot
// envelope carries magic, version, and checksum); at this layer the
// writer and reader are the same release of the same binary walking
// the same struct fields in the same order, which is exactly the
// determinism contract the round-trip tests pin. Floats travel as
// their IEEE-754 bit patterns, so a restored value is the identical
// float64 — including NaN payloads and signed infinities used as
// sentinels — not a nearest-parse approximation.
//
// Decoding is sticky-error: the first failure (truncation, an
// oversized length prefix) poisons the Decoder, every later read
// returns zero values, and Err/Finish report the first cause. Callers
// therefore decode a whole section and check once at the end.
package snapbuf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports that the payload ended before the value being
// decoded was complete.
var ErrTruncated = errors.New("snapbuf: truncated payload")

// Encoder appends values to a growing byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded payload. The slice aliases the encoder's
// buffer; callers must not append to the encoder afterwards.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint64 appends v as 8 little-endian bytes.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Uint8 appends a single byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Int appends v as a two's-complement 64-bit value.
func (e *Encoder) Int(v int) { e.Uint64(uint64(int64(v))) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends the IEEE-754 bit pattern of v, preserving it
// exactly (NaN payloads and infinity sentinels included).
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uint64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Float64s appends a length-prefixed []float64.
func (e *Encoder) Float64s(v []float64) {
	e.Uint64(uint64(len(v)))
	for _, x := range v {
		e.Float64(x)
	}
}

// Ints appends a length-prefixed []int.
func (e *Encoder) Ints(v []int) {
	e.Uint64(uint64(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// Decoder reads values back in encoding order, with a sticky error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b. The decoder does not copy b;
// the caller must not mutate it while decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish returns the sticky error if any, and otherwise an error when
// undecoded bytes remain — trailing garbage means writer and reader
// disagree about the field walk, which must fail closed.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snapbuf: %d trailing bytes after decode", len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uint64 reads 8 little-endian bytes.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Uint8 reads a single byte.
func (d *Decoder) Uint8() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Int reads a two's-complement 64-bit value.
func (d *Decoder) Int() int { return int(int64(d.Uint64())) }

// Bool reads a 0/1 byte; any other value is a decode failure.
func (d *Decoder) Bool() bool {
	v := d.Uint8()
	if d.err != nil {
		return false
	}
	if v > 1 {
		d.fail(fmt.Errorf("snapbuf: invalid bool byte %#x", v))
		return false
	}
	return v == 1
}

// Float64 reads an IEEE-754 bit pattern.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// sliceLen validates a decoded length prefix against the remaining
// payload (elemSize bytes per element), so corrupt or adversarial
// input cannot force a huge allocation before truncation is noticed.
func (d *Decoder) sliceLen(elemSize int) int {
	n := d.Uint64()
	if d.err != nil {
		return 0
	}
	if max := uint64(d.Remaining()); elemSize > 0 && n > max/uint64(elemSize) {
		d.fail(fmt.Errorf("snapbuf: length prefix %d exceeds remaining payload (%d bytes): %w",
			n, d.Remaining(), ErrTruncated))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.sliceLen(1)
	if d.err != nil || n == 0 {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Float64s reads a length-prefixed []float64 (nil when empty).
func (d *Decoder) Float64s() []float64 {
	n := d.sliceLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.Float64()
	}
	return v
}

// Bytes reads exactly n raw bytes (no length prefix; the caller
// carries the length out of band). The returned slice is a copy.
func (d *Decoder) Bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.fail(ErrTruncated)
		return nil
	}
	v := make([]byte, n)
	copy(v, d.buf[d.off:])
	d.off += n
	return v
}

// Ints reads a length-prefixed []int (nil when empty).
func (d *Decoder) Ints() []int {
	n := d.sliceLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	return v
}
