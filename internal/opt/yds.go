// Package opt implements the clairvoyant offline-optimal speed
// schedule of Yao, Demers and Shenker (FOCS 1995), known as YDS: for
// a finite set of jobs with release times, deadlines, and (actual)
// work, the minimum-energy preemptive speed schedule under any convex
// power function runs each "critical interval" — the interval
// maximizing intensity
//
//	g(I) = (work of jobs fully contained in I) / |I|
//
// at constant speed g(I), removes those jobs, compresses the
// timeline, and recurses.
//
// The evaluation uses YDS on the *actual* execution times of a trace
// as the true per-workload lower bound: no online policy (which
// learns each AET only at job completion and provisions WCETs
// elsewhere) can beat it, and the gap to YDS is the headroom metric
// of EXPERIMENTS.md. The simpler constant-speed clairvoyant bound
// (internal/dvs.Bound) ignores deadlines entirely and is therefore
// looser than YDS whenever the workload is bursty.
package opt

import (
	"fmt"
	"math"
	"sort"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/workload"
)

// Job is one piece of work for the offline schedule.
type Job struct {
	Release  float64
	Deadline float64
	Work     float64 // execution requirement at full speed
}

// Segment is one constant-speed piece of the optimal schedule.
type Segment struct {
	Start, End float64
	Speed      float64
}

// Schedule is the YDS result: the critical-interval speed assignment,
// ordered by start time, covering every instant where work runs
// (gaps between segments are idle).
type Schedule struct {
	Segments []Segment
}

// Compute runs the YDS algorithm on jobs. Jobs with non-positive
// work are ignored; a job with Deadline <= Release is rejected.
func Compute(jobs []Job) (*Schedule, error) {
	var live []Job
	for _, j := range jobs {
		if j.Work <= 0 {
			continue
		}
		if j.Deadline <= j.Release {
			return nil, fmt.Errorf("opt: job has deadline %v <= release %v", j.Deadline, j.Release)
		}
		live = append(live, j)
	}
	sched := &Schedule{}
	// Iteratively peel critical intervals. Each round removes every
	// job contained in the critical interval (at least one), so the
	// loop runs at most len(live) times; each round costs
	// O(n^2 log n) via the per-start deadline sweep below. Segment
	// coordinates of later rounds live in the compressed timeline;
	// compression is a piecewise translation, so every segment's
	// *width* (and hence the energy accounting) is exact, while
	// Start/End are not real-time placements across rounds.
	for len(live) > 0 {
		i0, i1, speed := criticalInterval(live)
		sched.Segments = append(sched.Segments, Segment{Start: i0, End: i1, Speed: speed})
		live = compress(live, i0, i1)
	}
	sort.Slice(sched.Segments, func(a, b int) bool {
		return sched.Segments[a].Speed > sched.Segments[b].Speed
	})
	return sched, nil
}

// criticalInterval finds the interval [i0, i1] maximizing the
// intensity of fully-contained jobs. The optimum starts at some
// job's release and ends at some job's deadline, so for each
// candidate start the jobs releasing at or after it are swept in
// deadline order with a running work prefix.
func criticalInterval(jobs []Job) (i0, i1, speed float64) {
	byDeadline := append([]Job(nil), jobs...)
	sort.Slice(byDeadline, func(a, b int) bool {
		return byDeadline[a].Deadline < byDeadline[b].Deadline
	})
	starts := make([]float64, 0, len(jobs))
	for _, j := range jobs {
		starts = append(starts, j.Release)
	}
	sort.Float64s(starts)
	starts = dedup(starts)

	best := -1.0
	for _, lo := range starts {
		var work float64
		for _, j := range byDeadline {
			if j.Release < lo {
				continue
			}
			work += j.Work
			hi := j.Deadline
			if hi <= lo || work <= 0 {
				continue
			}
			// Within a deadline tie group intermediate evaluations
			// see partial work — harmless: the last member sees the
			// full sum, and partial sums never overstate intensity.
			if g := work / (hi - lo); g > best {
				best, i0, i1 = g, lo, hi
			}
		}
	}
	return i0, i1, best
}

func dedup(v []float64) []float64 {
	if len(v) == 0 {
		return v
	}
	out := v[:1]
	for _, x := range v[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// compress removes jobs inside [i0, i1] and shrinks the timeline so
// the interval has zero width: remaining jobs' times are mapped
//
//	t -> t                 for t <= i0
//	t -> i0                for i0 < t < i1
//	t -> t - (i1-i0)       for t >= i1
//
// which is the standard YDS reduction (remaining jobs may not run
// inside the critical interval anyway: it is saturated).
func compress(jobs []Job, i0, i1 float64) []Job {
	width := i1 - i0
	shift := func(t float64) float64 {
		switch {
		case t <= i0:
			return t
		case t >= i1:
			return t - width
		default:
			return i0
		}
	}
	var out []Job
	for _, j := range jobs {
		if j.Release >= i0 && j.Deadline <= i1 {
			continue // scheduled in this round
		}
		out = append(out, Job{
			Release:  shift(j.Release),
			Deadline: shift(j.Deadline),
			Work:     j.Work,
		})
	}
	return out
}

// note: after compression, segment coordinates of later rounds live
// in the compressed timeline. For energy computation only durations
// and speeds matter, so Energy works directly on the segment list;
// callers needing real-time placement should use Execute instead.

// TotalWork returns the work covered by the schedule.
func (s *Schedule) TotalWork() float64 {
	var w float64
	for _, seg := range s.Segments {
		w += (seg.End - seg.Start) * seg.Speed
	}
	return w
}

// BusyTime returns the total non-idle duration of the schedule.
func (s *Schedule) BusyTime() float64 {
	var t float64
	for _, seg := range s.Segments {
		t += seg.End - seg.Start
	}
	return t
}

// MaxSpeed returns the highest speed the schedule uses. A value
// above 1 means the job set is infeasible on the unit-speed
// processor.
func (s *Schedule) MaxSpeed() float64 {
	var m float64
	for _, seg := range s.Segments {
		m = math.Max(m, seg.Speed)
	}
	return m
}

// Energy evaluates the schedule on a processor model over a horizon:
// busy energy from each segment (speeds floored at the processor's
// minimum usable speed, which shortens the busy time accordingly)
// plus idle power for the remainder. The result is the offline
// minimum for continuous speeds; on discrete processors it is still
// a valid lower bound (level quantization can only cost more).
func (s *Schedule) Energy(proc *cpu.Processor, horizon float64) float64 {
	var busyEnergy, busyTime float64
	for _, seg := range s.Segments {
		dur := seg.End - seg.Start
		speed := seg.Speed
		if speed <= 0 {
			continue
		}
		if min := proc.SMin; speed < min && min > 0 {
			// The processor cannot run this slowly: do the same work
			// at SMin in less time and idle the difference (charged
			// below as idle power).
			dur = dur * speed / min
			speed = min
		}
		if speed > 1 {
			speed = 1 // infeasible segment: cap (callers check MaxSpeed)
		}
		busyEnergy += proc.Power(speed) * dur
		busyTime += dur
	}
	idle := horizon - busyTime
	if idle < 0 {
		idle = 0
	}
	return busyEnergy + proc.IdlePower*idle
}

// ForTrace builds the YDS job set for a task set's jobs released in
// [0, release) with the actual execution times drawn from gen, and
// returns the optimal clairvoyant energy on proc over the window
// [0, span) (span ≥ release; idle power is charged for unused time).
// This is the "oracle" series of the evaluation.
func ForTrace(ts *rtm.TaskSet, proc *cpu.Processor, gen workload.Generator, release, span float64) (float64, error) {
	if gen == nil {
		gen = workload.WorstCase{}
	}
	if span < release {
		span = release
	}
	var jobs []Job
	for i, task := range ts.Tasks {
		for k := 0; float64(k)*task.Period < release; k++ {
			j := ts.JobOf(i, k)
			jobs = append(jobs, Job{
				Release:  j.Release,
				Deadline: j.AbsDeadline,
				Work:     gen.AET(i, k, task.WCET),
			})
		}
	}
	sched, err := Compute(jobs)
	if err != nil {
		return 0, err
	}
	return sched.Energy(proc, span), nil
}
