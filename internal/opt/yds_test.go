package opt

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

func TestComputeSingleJob(t *testing.T) {
	s, err := Compute([]Job{{Release: 0, Deadline: 10, Work: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(s.Segments))
	}
	seg := s.Segments[0]
	if seg.Start != 0 || seg.End != 10 || math.Abs(seg.Speed-0.4) > 1e-12 {
		t.Errorf("segment = %+v, want [0,10]@0.4", seg)
	}
}

func TestComputeTwoDisjointJobs(t *testing.T) {
	// Two jobs with disjoint windows and different intensities form
	// two critical intervals.
	s, err := Compute([]Job{
		{Release: 0, Deadline: 4, Work: 3},   // intensity 0.75
		{Release: 10, Deadline: 20, Work: 2}, // intensity 0.2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(s.Segments))
	}
	if math.Abs(s.Segments[0].Speed-0.75) > 1e-12 {
		t.Errorf("first (fastest) segment speed = %v, want 0.75", s.Segments[0].Speed)
	}
	if math.Abs(s.Segments[1].Speed-0.2) > 1e-12 {
		t.Errorf("second segment speed = %v, want 0.2", s.Segments[1].Speed)
	}
}

func TestComputeNestedJobs(t *testing.T) {
	// The classic YDS example: a tight job nested inside a loose
	// one. Critical interval is the tight window; the loose job's
	// remaining window shrinks by compression.
	//
	// Loose: [0, 10], work 2. Tight: [4, 6], work 2 (intensity 1).
	s, err := Compute([]Job{
		{Release: 0, Deadline: 10, Work: 2},
		{Release: 4, Deadline: 6, Work: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Segments) != 2 {
		t.Fatalf("segments = %d, want 2", len(s.Segments))
	}
	if math.Abs(s.Segments[0].Speed-1.0) > 1e-12 {
		t.Errorf("critical speed = %v, want 1.0", s.Segments[0].Speed)
	}
	// Loose job then has 8 time units (10 - 2) for 2 work: 0.25.
	if math.Abs(s.Segments[1].Speed-0.25) > 1e-12 {
		t.Errorf("residual speed = %v, want 0.25", s.Segments[1].Speed)
	}
}

func TestComputeWorkConserved(t *testing.T) {
	f := func(seed uint64) bool {
		ts := rtm.MustGenerate(rtm.DefaultGenConfig(4, 0.6, seed))
		gen := workload.Uniform{Lo: 0.3, Hi: 1, Seed: seed}
		var jobs []Job
		var want float64
		for i, task := range ts.Tasks {
			for k := 0; k < 5; k++ {
				j := ts.JobOf(i, k)
				w := gen.AET(i, k, task.WCET)
				jobs = append(jobs, Job{Release: j.Release, Deadline: j.AbsDeadline, Work: w})
				want += w
			}
		}
		s, err := Compute(jobs)
		if err != nil {
			return false
		}
		return math.Abs(s.TotalWork()-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestComputeSpeedsNonIncreasingRounds(t *testing.T) {
	// YDS peels intervals in order of decreasing intensity.
	jobs := []Job{
		{Release: 0, Deadline: 2, Work: 1.8},
		{Release: 0, Deadline: 8, Work: 1},
		{Release: 3, Deadline: 12, Work: 2},
		{Release: 5, Deadline: 30, Work: 1},
	}
	s, err := Compute(jobs)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, seg := range s.Segments {
		if seg.Speed > prev+1e-12 {
			t.Fatalf("segment speeds not non-increasing: %v", s.Segments)
		}
		prev = seg.Speed
	}
}

func TestComputeRejectsBadJob(t *testing.T) {
	if _, err := Compute([]Job{{Release: 5, Deadline: 5, Work: 1}}); err == nil {
		t.Error("zero-width window should be rejected")
	}
	// Zero-work jobs are ignored, not errors.
	s, err := Compute([]Job{{Release: 0, Deadline: 1, Work: 0}})
	if err != nil || len(s.Segments) != 0 {
		t.Errorf("zero-work job should yield empty schedule, got %v, %v", s.Segments, err)
	}
}

func TestFeasibleSetsNeedAtMostUnitSpeed(t *testing.T) {
	// For EDF-feasible worst-case traces, YDS never exceeds speed 1.
	f := func(seed uint64, uRaw uint8) bool {
		u := 0.2 + 0.8*float64(uRaw)/255
		ts := rtm.MustGenerate(rtm.DefaultGenConfig(5, u, seed))
		horizon := math.Min(sim.DefaultHorizon(ts), 500)
		var jobs []Job
		for i, task := range ts.Tasks {
			for k := 0; float64(k)*task.Period < horizon; k++ {
				j := ts.JobOf(i, k)
				jobs = append(jobs, Job{Release: j.Release, Deadline: j.AbsDeadline, Work: task.WCET})
			}
		}
		s, err := Compute(jobs)
		if err != nil {
			return false
		}
		return s.MaxSpeed() <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestYDSLowerBoundsOnlinePolicies is the defining property: the
// clairvoyant optimum never exceeds the energy of any online policy
// on the identical trace.
func TestYDSLowerBoundsOnlinePolicies(t *testing.T) {
	policies := func() []sim.Policy {
		return []sim.Policy{&dvs.NonDVS{}, &dvs.StaticEDF{}, &dvs.CCEDF{}, &dvs.DRA{}}
	}
	f := func(seed uint64, uRaw uint8) bool {
		u := 0.25 + 0.7*float64(uRaw)/255
		ts := rtm.MustGenerate(rtm.DefaultGenConfig(4, u, seed))
		horizon := math.Min(sim.DefaultHorizon(ts), 400)
		gen := workload.Uniform{Lo: 0.4, Hi: 1, Seed: seed}
		proc := cpu.Continuous(0.1)
		bound, err := ForTrace(ts, proc, gen, horizon, horizon)
		if err != nil {
			return false
		}
		for _, p := range policies() {
			res, err := sim.Run(sim.Config{
				TaskSet: ts, Processor: proc, Policy: p,
				Workload: gen, Horizon: horizon,
			})
			if err != nil {
				return false
			}
			if bound > res.Energy*1.001 {
				t.Logf("YDS bound %v above %s energy %v (seed %d u %v)",
					bound, p.Name(), res.Energy, seed, u)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestYDSTightensConstantBound: on bursty traces YDS must be at
// least as high as... rather, the constant-speed bound ignores
// deadlines and is <= YDS when feasibility binds, but may exceed it
// never; both are lower bounds and YDS is the tighter (larger) one
// whenever deadlines force speed variation.
func TestYDSTightensConstantBound(t *testing.T) {
	ts := rtm.NewTaskSet("bursty",
		rtm.Task{WCET: 4, Period: 10, Deadline: 5},
		rtm.Task{WCET: 1, Period: 100},
	)
	proc := cpu.Continuous(0.05)
	horizon := 100.0
	ydsE, err := ForTrace(ts, proc, workload.WorstCase{}, horizon, horizon)
	if err != nil {
		t.Fatal(err)
	}
	flat := dvs.Bound(ts, proc, workload.WorstCase{}, horizon)
	if ydsE < flat-1e-9 {
		t.Errorf("YDS %v below constant bound %v: YDS must dominate it", ydsE, flat)
	}
	if ydsE <= flat+1e-9 {
		t.Errorf("tight deadlines should force YDS (%v) strictly above the flat bound (%v)", ydsE, flat)
	}
}

func TestEnergyRespectsSMin(t *testing.T) {
	s := &Schedule{Segments: []Segment{{Start: 0, End: 10, Speed: 0.01}}}
	proc := cpu.Continuous(0.1)
	// Work 0.1 executed at SMin 0.1 takes 1 unit; 9 units idle.
	want := proc.Power(0.1)*1 + proc.IdlePower*9
	if got := s.Energy(proc, 10); math.Abs(got-want) > 1e-12 {
		t.Errorf("energy = %v, want %v", got, want)
	}
}
