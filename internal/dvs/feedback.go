package dvs

import (
	"math"

	"dvsslack/internal/core"
	"dvsslack/internal/sim"
)

// FeedbackEDF reconstructs the feedback DVS-EDF scheme of Zhu and
// Mueller (RTAS 2003) on this module's substrate: each task keeps an
// exponentially-weighted prediction ĉ of its next actual execution
// time, and every job is split into two virtual subtasks —
//
//   - TA: the predicted portion ĉ, run at the low speed
//     sA = ĉ/(ĉ+L) where L is the analyzed system slack, and
//   - TB: the rest of the worst case, run at full speed.
//
// If the prediction holds (the common case), the job finishes inside
// TA at the low speed; if not, the intra-job power-management point
// (sim.Repacer) switches to full speed so the worst case still fits.
// Total occupancy is at most ĉ/sA + (w−ĉ) = w + L, the same budget
// the greedy slack floor proves safe, so the hard guarantee is
// independent of prediction quality.
//
// Compared to lpSHE this "bet low, sprint on miss" shape wins when
// predictions are accurate and loses (convexity) when the workload
// is erratic — exactly the trade-off the feedback-DVS literature
// reports.
type FeedbackEDF struct {
	// Alpha is the EWMA weight of the newest observation (default
	// 0.5 via NewFeedbackEDF).
	Alpha float64

	sys      sim.System
	analyzer *core.Analyzer
	pred     []float64 // ĉ per task

	// split plan for the running job
	job      *sim.JobState
	sprintAt float64
}

// NewFeedbackEDF returns the policy with α = 0.5.
func NewFeedbackEDF() *FeedbackEDF { return &FeedbackEDF{Alpha: 0.5} }

// Name implements sim.Policy.
func (p *FeedbackEDF) Name() string { return "fbEDF" }

// Reset implements sim.Policy.
func (p *FeedbackEDF) Reset(sys sim.System) {
	p.sys = sys
	if p.analyzer == nil || !p.analyzer.ReuseFor(sys.TaskSet()) {
		p.analyzer = core.NewAnalyzer(sys.TaskSet())
	}
	if len(p.pred) != sys.TaskSet().N() {
		p.pred = make([]float64, sys.TaskSet().N())
	}
	for i, t := range sys.TaskSet().Tasks {
		p.pred[i] = t.WCET // no history yet: predict the worst case
	}
	p.job = nil
}

// OnRelease implements sim.Policy.
func (p *FeedbackEDF) OnRelease(*sim.JobState) {}

// OnComplete implements sim.Policy: feed the observed execution time
// back into the predictor.
func (p *FeedbackEDF) OnComplete(j *sim.JobState) {
	a := p.Alpha
	if a <= 0 || a > 1 {
		a = 0.5
	}
	i := j.TaskIndex
	p.pred[i] = a*j.Executed + (1-a)*p.pred[i]
	if p.job == j {
		p.job = nil
	}
}

// OnAdvance implements sim.Policy.
func (p *FeedbackEDF) OnAdvance(float64) {}

// SelectSpeed implements sim.Policy.
func (p *FeedbackEDF) SelectSpeed(j *sim.JobState) float64 {
	p.job = nil
	w := j.RemainingWCET()
	if w <= 0 {
		return p.sys.Processor().SMin
	}
	now := p.sys.Now()
	// Predicted work still outstanding for this job.
	predRem := p.pred[j.TaskIndex] - j.Executed
	if predRem <= 1e-9 {
		// Past the prediction: sprint so the worst case fits.
		return 1
	}
	if predRem > w {
		predRem = w
	}
	slack := p.analyzer.Slack(now, p.sys.ActiveJobs(), p.sys.NextReleaseOf)
	if slack <= 0 {
		return 1
	}
	sA := predRem / (predRem + slack)
	// Own-deadline floor: TA at sA plus TB at full speed must fit
	// into the job's own window.
	if win := j.AbsDeadline - now; win > 0 {
		// occupancy = predRem/sA + (w − predRem) ≤ win
		if budget := win - (w - predRem); budget > 0 {
			if floor := predRem / budget; floor > sA {
				sA = floor
			}
		} else {
			return 1
		}
	}
	if sA >= 1 {
		return 1
	}
	p.job = j
	p.sprintAt = now + predRem/sA
	return sA
}

// NextCheck implements sim.Repacer: the TA→TB boundary.
func (p *FeedbackEDF) NextCheck(j *sim.JobState) float64 {
	if p.job != j {
		return math.Inf(1)
	}
	return p.sprintAt
}

// Counters implements sim.Instrumented.
func (p *FeedbackEDF) Counters() map[string]float64 {
	if p.analyzer == nil {
		return nil
	}
	return p.analyzer.Counters()
}
