package dvs

import (
	"fmt"

	"dvsslack/internal/sim"
	"dvsslack/internal/snapbuf"
)

// This file implements sim.StateSnapshotter for every shipped
// baseline policy and wrapper, so any registered policy spec can be
// checkpointed and restored mid-run. Stateless policies serialize
// nothing; wrappers recurse into their inner policy; job pointers
// travel as ready queue references through the SnapshotContext.

// SnapshotState implements sim.StateSnapshotter (stateless).
func (*NonDVS) SnapshotState(*snapbuf.Encoder, sim.SnapshotContext) {}

// RestoreState implements sim.StateSnapshotter (stateless).
func (*NonDVS) RestoreState(*snapbuf.Decoder, sim.SnapshotContext) error { return nil }

// SnapshotState implements sim.StateSnapshotter (speed derived at Reset).
func (*StaticEDF) SnapshotState(*snapbuf.Encoder, sim.SnapshotContext) {}

// RestoreState implements sim.StateSnapshotter.
func (*StaticEDF) RestoreState(*snapbuf.Decoder, sim.SnapshotContext) error { return nil }

// SnapshotState implements sim.StateSnapshotter (stateless).
func (*LppsEDF) SnapshotState(*snapbuf.Encoder, sim.SnapshotContext) {}

// RestoreState implements sim.StateSnapshotter.
func (*LppsEDF) RestoreState(*snapbuf.Decoder, sim.SnapshotContext) error { return nil }

// SnapshotState implements sim.StateSnapshotter: the per-task dynamic
// utilization shares and their incrementally maintained sum.
func (p *CCEDF) SnapshotState(enc *snapbuf.Encoder, _ sim.SnapshotContext) {
	enc.Float64s(p.util)
	enc.Float64(p.total)
}

// RestoreState implements sim.StateSnapshotter.
func (p *CCEDF) RestoreState(dec *snapbuf.Decoder, _ sim.SnapshotContext) error {
	util := dec.Float64s()
	total := dec.Float64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(util) != len(p.util) {
		return fmt.Errorf("dvs: ccEDF utilization vector has %d entries for %d tasks",
			len(util), len(p.util))
	}
	copy(p.util, util)
	p.total = total
	return nil
}

// SnapshotState implements sim.StateSnapshotter: per-task remaining
// WCET and current deadlines.
func (p *LAEDF) SnapshotState(enc *snapbuf.Encoder, _ sim.SnapshotContext) {
	enc.Float64s(p.cLeft)
	enc.Float64s(p.deadline)
}

// RestoreState implements sim.StateSnapshotter.
func (p *LAEDF) RestoreState(dec *snapbuf.Decoder, _ sim.SnapshotContext) error {
	cLeft := dec.Float64s()
	deadline := dec.Float64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(cLeft) != len(p.cLeft) || len(deadline) != len(p.deadline) {
		return fmt.Errorf("dvs: laEDF state has %d/%d entries for %d tasks",
			len(cLeft), len(deadline), len(p.cLeft))
	}
	copy(p.cLeft, cLeft)
	copy(p.deadline, deadline)
	return nil
}

// SnapshotState implements sim.StateSnapshotter: the alpha queue in
// canonical (deadline) order. Entries whose actual job completed
// carry a -1 job reference and restore with a nil job pointer, which
// is safe — only live-entry pointers are ever compared against
// dispatched jobs.
func (p *DRA) SnapshotState(enc *snapbuf.Encoder, sc sim.SnapshotContext) {
	enc.Int(p.queue.Len())
	for el := p.queue.Front(); el != nil; el = el.Next() {
		e := el.Value.(*alphaEntry)
		enc.Float64(e.deadline)
		enc.Float64(e.rem)
		enc.Bool(e.done)
		enc.Int(sc.JobRef(e.job))
	}
}

// RestoreState implements sim.StateSnapshotter: rebuilds the queue in
// stored order and the job→entry index from its live entries.
func (p *DRA) RestoreState(dec *snapbuf.Decoder, sc sim.SnapshotContext) error {
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if n < 0 || n > dec.Remaining()/25 {
		return fmt.Errorf("dvs: implausible alpha-queue length %d", n)
	}
	p.queue.Init()
	for k := range p.byJob {
		delete(p.byJob, k)
	}
	for i := 0; i < n; i++ {
		e := &alphaEntry{
			deadline: dec.Float64(),
			rem:      dec.Float64(),
			done:     dec.Bool(),
		}
		ref := dec.Int()
		if dec.Err() != nil {
			return dec.Err()
		}
		e.job = sc.JobAt(ref)
		if !e.done {
			if e.job == nil {
				return fmt.Errorf("dvs: live alpha entry %d resolves to no ready job", i)
			}
			p.byJob[e.job] = e
		}
		p.queue.PushBack(e)
	}
	return nil
}

// SnapshotState implements sim.StateSnapshotter: the per-task usage
// predictions, the current TA/TB split plan, and the analyzer state.
func (p *FeedbackEDF) SnapshotState(enc *snapbuf.Encoder, sc sim.SnapshotContext) {
	enc.Float64s(p.pred)
	enc.Int(sc.JobRef(p.job))
	enc.Float64(p.sprintAt)
	p.analyzer.SnapshotState(enc, sc)
}

// RestoreState implements sim.StateSnapshotter.
func (p *FeedbackEDF) RestoreState(dec *snapbuf.Decoder, sc sim.SnapshotContext) error {
	pred := dec.Float64s()
	ref := dec.Int()
	sprintAt := dec.Float64()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(pred) != len(p.pred) {
		return fmt.Errorf("dvs: fbEDF prediction vector has %d entries for %d tasks",
			len(pred), len(p.pred))
	}
	copy(p.pred, pred)
	p.job = sc.JobAt(ref)
	if ref >= 0 && p.job == nil {
		return fmt.Errorf("dvs: fbEDF split-plan job reference %d resolves to no ready job", ref)
	}
	p.sprintAt = sprintAt
	return p.analyzer.RestoreState(dec, sc)
}

// SnapshotState implements sim.StateSnapshotter: the committed
// two-level plan and release sequence, plus the inner policy's state.
func (p *DualLevel) SnapshotState(enc *snapbuf.Encoder, sc sim.SnapshotContext) {
	enc.Int(sc.JobRef(p.job))
	enc.Float64(p.switchAt)
	enc.Float64(p.low)
	enc.Uint64(p.planSeq)
	enc.Uint64(p.releaseSeq)
	p.Inner.(sim.StateSnapshotter).SnapshotState(enc, sc)
}

// RestoreState implements sim.StateSnapshotter.
func (p *DualLevel) RestoreState(dec *snapbuf.Decoder, sc sim.SnapshotContext) error {
	ref := dec.Int()
	p.switchAt = dec.Float64()
	p.low = dec.Float64()
	p.planSeq = dec.Uint64()
	p.releaseSeq = dec.Uint64()
	if err := dec.Err(); err != nil {
		return err
	}
	p.job = sc.JobAt(ref)
	if ref >= 0 && p.job == nil {
		return fmt.Errorf("dvs: dual-level plan job reference %d resolves to no ready job", ref)
	}
	return p.Inner.(sim.StateSnapshotter).RestoreState(dec, sc)
}

// SnapshotState implements sim.StateSnapshotter (floor derived at
// Reset; only the inner policy carries run state).
func (p *EfficientFloor) SnapshotState(enc *snapbuf.Encoder, sc sim.SnapshotContext) {
	p.Inner.(sim.StateSnapshotter).SnapshotState(enc, sc)
}

// RestoreState implements sim.StateSnapshotter.
func (p *EfficientFloor) RestoreState(dec *snapbuf.Decoder, sc sim.SnapshotContext) error {
	return p.Inner.(sim.StateSnapshotter).RestoreState(dec, sc)
}

// SnapshotState implements sim.StateSnapshotter: the hysteresis
// anchor plus the inner policy's state.
func (p *OverheadGuard) SnapshotState(enc *snapbuf.Encoder, sc sim.SnapshotContext) {
	enc.Float64(p.last)
	enc.Bool(p.have)
	p.Inner.(sim.StateSnapshotter).SnapshotState(enc, sc)
}

// RestoreState implements sim.StateSnapshotter.
func (p *OverheadGuard) RestoreState(dec *snapbuf.Decoder, sc sim.SnapshotContext) error {
	p.last = dec.Float64()
	p.have = dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	return p.Inner.(sim.StateSnapshotter).RestoreState(dec, sc)
}
