package dvs

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

func TestFeedbackEDFPredictableWorkloadRunsSlow(t *testing.T) {
	// Constant AET at 40% of WCET: after warm-up the predictor is
	// exact and jobs complete entirely inside the low-speed portion.
	// The horizon spans many periods so the warm-up job (which must
	// assume the worst case) is amortized away.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 2, Period: 10})
	gen := workload.Constant{Frac: 0.4}
	runLong := func(p sim.Policy) sim.Result {
		res, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: cpu.Continuous(0.1), Policy: p,
			Workload: gen, Horizon: 200, StrictDeadlines: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := runLong(NewFeedbackEDF())
	if res.DeadlineMisses != 0 {
		t.Fatal("missed deadlines")
	}
	// With ĉ = 0.8 and L = 8 the jobs run at the floor speed, far
	// below the static speed (0.2); require a clear improvement.
	static := runLong(&StaticEDF{})
	if res.Energy >= 0.8*static.Energy {
		t.Errorf("fbEDF %v should clearly beat staticEDF %v on a predictable workload",
			res.Energy, static.Energy)
	}
}

func TestFeedbackEDFSprintsOnMissedPrediction(t *testing.T) {
	// Alternating light/heavy jobs mislead the EWMA, forcing TB
	// sprints — the guarantee must hold regardless.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 3, Period: 8},
		rtm.Task{WCET: 3, Period: 8},
	)
	gen := workload.Bimodal{LightFrac: 0.2, HeavyFrac: 1.0, PHeavy: 0.5, Seed: 3}
	res := run(t, ts, NewFeedbackEDF(), gen)
	if res.DeadlineMisses != 0 {
		t.Fatal("missed deadlines under misprediction")
	}
	if res.SpeedSwitches == 0 {
		t.Error("expected TA/TB speed switches")
	}
}

func TestFeedbackEDFPredictorConverges(t *testing.T) {
	p := NewFeedbackEDF()
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 4, Period: 10})
	_, err := sim.Run(sim.Config{
		TaskSet: ts, Processor: cpu.Continuous(0.1), Policy: p,
		Workload: workload.Constant{Frac: 0.5}, Horizon: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// EWMA with α=0.5 over 20 jobs: prediction within a hair of 2.
	if math.Abs(p.pred[0]-2) > 0.01 {
		t.Errorf("prediction = %v, want ≈ 2", p.pred[0])
	}
}

func TestFeedbackEDFNeverMissesFuzz(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw, wRaw uint8) bool {
		n := 1 + int(nRaw)%8
		u := 0.15 + 0.85*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		var gen workload.Generator
		switch wRaw % 3 {
		case 0:
			gen = workload.Uniform{Lo: 0.05, Hi: 1, Seed: seed}
		case 1:
			gen = workload.Bimodal{LightFrac: 0.1, HeavyFrac: 1, PHeavy: 0.4, Seed: seed}
		default:
			gen = workload.WorstCase{}
		}
		res, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: cpu.Continuous(0.1),
			Policy: NewFeedbackEDF(), Workload: gen, StrictDeadlines: true,
		})
		if err != nil || res.DeadlineMisses != 0 {
			t.Logf("seed=%d n=%d u=%v gen=%s: err=%v misses=%d",
				seed, n, u, gen.Name(), err, res.DeadlineMisses)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
