package dvs

import (
	"math"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/workload"
)

// Bound computes the clairvoyant static lower bound on energy used by
// the paper family as the "theoretical" reference curve: an oracle
// that knows every actual execution time in advance runs the whole
// workload at the constant actual-utilization speed
//
//	s* = clamp( Σᵢ mean(AETᵢ)/Tᵢ ),
//
// which is energy-optimal for a convex power curve when deadline
// constraints are ignored (Jensen's inequality: any speed schedule
// performing the same work over the same span at varying speed costs
// at least the constant-speed schedule). Real policies cannot reach
// it because the workload is revealed online and deadlines constrain
// the smoothing window; the gap to this bound is the headroom metric
// reported in EXPERIMENTS.md.
//
// The returned value is total energy over [0, horizon): busy energy
// at s* for work/s* time plus idle energy for the remainder.
func Bound(ts *rtm.TaskSet, proc *cpu.Processor, gen workload.Generator, horizon float64) float64 {
	return BoundWindow(ts, proc, gen, horizon, horizon)
}

// BoundWindow is Bound with separate release cutoff and energy
// window: jobs released in [0, release) are counted, and their work
// is smoothed over [0, span). A simulation whose horizon cuts a
// hyperperiod lets late releases complete *after* the horizon, so a
// fair bound must smooth over the same extended span (span =
// Result.Time of the compared run).
func BoundWindow(ts *rtm.TaskSet, proc *cpu.Processor, gen workload.Generator, release, span float64) float64 {
	if gen == nil {
		gen = workload.WorstCase{}
	}
	if span < release {
		span = release
	}
	// Exact actual work over the release window.
	var work float64
	for i, t := range ts.Tasks {
		for k := 0; float64(k)*t.Period < release; k++ {
			work += gen.AET(i, k, t.WCET)
		}
	}
	if work <= 0 || span <= 0 {
		return proc.IdlePower * math.Max(span, 0)
	}
	s := proc.Clamp(work / span)
	busyTime := work / s
	if busyTime > span {
		busyTime = span
	}
	return proc.Power(s)*busyTime + proc.IdlePower*(span-busyTime)
}
