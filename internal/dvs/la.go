package dvs

import (
	"math"
	"sort"

	"dvsslack/internal/sim"
)

// LAEDF is look-ahead EDF (Pillai & Shin, SOSP 2001). Instead of
// provisioning the worst case immediately, it plans to defer as much
// work as possible to *after* the earliest deadline dₙ — each task's
// outstanding work is pushed as close to its own deadline as the
// spare capacity (1 − U) of the interval allows — and then runs at
// the minimum speed that completes the non-deferrable remainder by
// dₙ:
//
//	U ← ΣCᵢ/Tᵢ;  x_total ← 0
//	for each task i in order of latest deadline first:
//	    U ← U − Cᵢ/Tᵢ
//	    x ← max(0, cᵢ − (1 − U)·(dᵢ − dₙ))        // non-deferrable work
//	    U ← U + (cᵢ − x)/(dᵢ − dₙ)               // deferred share
//	    x_total ← x_total + x
//	s = x_total / (dₙ − now)
//
// where cᵢ is the remaining worst-case work of task i's current job
// (zero once it completed) and dᵢ its current deadline (the next
// job's deadline after completion). Tasks whose deadline equals dₙ
// contribute their entire remaining work. Speeds above 1 are clamped
// by the engine; Pillai & Shin show the fallback to full speed keeps
// every deadline.
//
// LAEDF is the most aggressive of the prior heuristics: it often
// runs slower than ccEDF early in a busy interval at the cost of
// higher speeds later ("pay later"), which the cubic power curve can
// penalize — exactly the effect the paper's exact slack analysis
// removes.
type LAEDF struct {
	sim.NopHooks
	sys sim.System

	// per-task dynamic state
	cLeft    []float64 // remaining WCET of the current job (0 after completion)
	deadline []float64 // absolute deadline of the current job
}

// Name implements sim.Policy.
func (*LAEDF) Name() string { return "laEDF" }

// Reset implements sim.Policy.
func (p *LAEDF) Reset(sys sim.System) {
	p.sys = sys
	n := sys.TaskSet().N()
	p.cLeft = make([]float64, n)
	p.deadline = make([]float64, n)
	for i, t := range sys.TaskSet().Tasks {
		// Before the first release the "current job" is the one
		// about to arrive at its first release.
		p.cLeft[i] = 0
		p.deadline[i] = sys.NextReleaseOf(i) + t.RelDeadline()
	}
}

// OnRelease implements sim.Policy.
func (p *LAEDF) OnRelease(j *sim.JobState) {
	p.cLeft[j.TaskIndex] = j.WCET
	p.deadline[j.TaskIndex] = j.AbsDeadline
}

// OnComplete implements sim.Policy. The completed job's deadline is
// retained (with c_left = 0) until the task's next release, exactly
// as in Pillai & Shin's formulation: advancing it early would move
// the task's U subtraction forward in the defer loop and let the
// other tasks over-defer.
func (p *LAEDF) OnComplete(j *sim.JobState) {
	p.cLeft[j.TaskIndex] = 0
}

// OnAdvance implements sim.Policy: execution progress is pulled from
// the active jobs at selection time instead, so nothing to do here.

// SelectSpeed implements sim.Policy.
func (p *LAEDF) SelectSpeed(*sim.JobState) float64 {
	ts := p.sys.TaskSet()
	now := p.sys.Now()

	// Refresh remaining work from the live job states: preemptions
	// mean a job may have partially executed since its release hook.
	for _, job := range p.sys.ActiveJobs() {
		p.cLeft[job.TaskIndex] = job.RemainingWCET()
		p.deadline[job.TaskIndex] = job.AbsDeadline
	}

	type entry struct {
		c, d, u float64
	}
	entries := make([]entry, 0, ts.N())
	dn := math.Inf(1)
	for i, t := range ts.Tasks {
		e := entry{c: p.cLeft[i], d: p.deadline[i], u: t.Utilization()}
		if e.d <= now+sim.Eps {
			// A completed job's stale deadline: its work is done and
			// its window has passed; it contributes nothing and must
			// not shrink dn to the past. Skipping its U subtraction
			// keeps the deferral conservative.
			continue
		}
		entries = append(entries, e)
		if e.d < dn {
			dn = e.d
		}
	}
	if math.IsInf(dn, 1) || !(dn > now) {
		return 1 // nothing to plan around: stay conservative
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].d > entries[b].d })

	u := ts.Utilization()
	var xTotal float64
	for _, e := range entries {
		u -= e.u
		if e.d <= dn+sim.Eps {
			// Work due at the earliest deadline cannot be deferred.
			xTotal += e.c
			continue
		}
		spare := (1 - u) * (e.d - dn)
		x := e.c - spare
		if x < 0 {
			x = 0
		}
		u += (e.c - x) / (e.d - dn)
		xTotal += x
	}
	if xTotal <= 0 {
		return 0 // engine clamps to the processor floor
	}
	return xTotal / (dn - now)
}
