package dvs

import (
	"math"

	"dvsslack/internal/sim"
)

// LppsEDF is the low-power priority scheduling heuristic of Shin,
// Choi and Sakurai adapted to EDF (the "lppsEDF" baseline of the
// SimDVS comparisons). Speed selection:
//
//   - If the dispatched job is the only active job, stretch it to
//     finish at min(its deadline, the next task arrival):
//     s = w / (min(d, nextArrival) − t). Nothing else is delayed, so
//     the stretch is trivially deadline-safe.
//   - Otherwise run at the static worst-case speed (never below the
//     utilization speed, which keeps the backlog schedulable).
//
// This is the weakest reclaiming baseline: it exploits only the
// idle-interval slack visible when the ready queue has drained.
type LppsEDF struct {
	sim.NopHooks
	sys sim.System
}

// Name implements sim.Policy.
func (*LppsEDF) Name() string { return "lppsEDF" }

// Reset implements sim.Policy.
func (p *LppsEDF) Reset(sys sim.System) { p.sys = sys }

// SelectSpeed implements sim.Policy.
func (p *LppsEDF) SelectSpeed(j *sim.JobState) float64 {
	if len(p.sys.ActiveJobs()) != 1 {
		return 1 // multiple ready jobs: full speed
	}
	t := p.sys.Now()
	w := j.RemainingWCET()
	limit := math.Min(j.AbsDeadline, p.sys.NextRelease())
	window := limit - t
	if window <= 0 || w <= 0 {
		return 1
	}
	return w / window
}
