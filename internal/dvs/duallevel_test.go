package dvs

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// fixedRequest always asks for one continuous speed.
type fixedRequest struct {
	sim.NopHooks
	s float64
}

func (p fixedRequest) Name() string                      { return "fixed" }
func (p fixedRequest) Reset(sim.System)                  {}
func (p fixedRequest) SelectSpeed(*sim.JobState) float64 { return p.s }

func TestDualLevelSplitsBetweenAdjacentLevels(t *testing.T) {
	// One job: C=3, T=10, worst case. Inner requests 0.375 on a
	// {0.25, 0.5, 0.75, 1} processor.
	//
	// Plan: T = 3/0.375 = 8; x = 3*(0.375-0.25)/(0.375*0.25) = 4.
	// High phase: 4 time units at 0.5 (2 work), low phase: 4 at
	// 0.25 (1 work). Busy energy = 4*0.125 + 4*0.015625 = 0.5625.
	// Quantize-up instead: 3/0.5 = 6 units at 0.125 = 0.75.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 3, Period: 10})
	proc, err := cpu.WithLevels(0.25, 0.5, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		TaskSet:         ts,
		Processor:       proc,
		Policy:          NewDualLevel(fixedRequest{s: 0.375}),
		Horizon:         10,
		StrictDeadlines: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BusyEnergy-0.5625) > 1e-9 {
		t.Errorf("dual-level busy energy = %v, want 0.5625", res.BusyEnergy)
	}
	// Exactly one extra switch (0.5 -> 0.25) beyond the initial
	// setting per job.
	if res.SpeedSwitches != 1 {
		t.Errorf("switches = %d, want 1", res.SpeedSwitches)
	}

	up, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: proc,
		Policy:    fixedRequest{s: 0.375}, // clamp rounds up to 0.5
		Horizon:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up.BusyEnergy-0.75) > 1e-9 {
		t.Errorf("quantize-up busy energy = %v, want 0.75", up.BusyEnergy)
	}
	if res.BusyEnergy >= up.BusyEnergy {
		t.Error("dual-level emulation should beat quantize-up")
	}
}

func TestDualLevelPassThroughContinuous(t *testing.T) {
	ts := rtm.Quickstart()
	gen := workload.Uniform{Lo: 0.4, Hi: 1, Seed: 9}
	proc := cpu.Continuous(0.1)
	plain, err := sim.Run(sim.Config{TaskSet: ts, Processor: proc, Policy: &CCEDF{}, Workload: gen})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := sim.Run(sim.Config{TaskSet: ts, Processor: proc, Policy: NewDualLevel(&CCEDF{}), Workload: gen})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Energy-dual.Energy) > 1e-9 {
		t.Errorf("continuous pass-through changed energy: %v vs %v", plain.Energy, dual.Energy)
	}
}

func TestDualLevelExactLevelNoSplit(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 2, Period: 8})
	proc, err := cpu.WithLevels(0.25, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		TaskSet:   ts,
		Processor: proc,
		Policy:    NewDualLevel(fixedRequest{s: 0.25}),
		Horizon:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpeedSwitches != 0 {
		t.Errorf("exact level request caused %d switches, want 0", res.SpeedSwitches)
	}
}

// TestDualLevelDeadlineSafeFuzz: wrapping the slack-analysis policy
// with dual-level emulation preserves the hard guarantee and never
// costs more energy than quantize-up, across random discrete
// configurations.
func TestDualLevelDeadlineSafeFuzz(t *testing.T) {
	procs := []func() *cpu.Processor{
		func() *cpu.Processor { return cpu.UniformLevels(4) },
		func() *cpu.Processor { return cpu.UniformLevels(8) },
		func() *cpu.Processor { return cpu.XScale() },
	}
	f := func(seed uint64, nRaw, uRaw, pRaw uint8) bool {
		n := 1 + int(nRaw)%8
		u := 0.2 + 0.8*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		gen := workload.Uniform{Lo: 0.3, Hi: 1, Seed: seed}
		proc := procs[int(pRaw)%len(procs)]()
		dual, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: proc,
			Policy:   NewDualLevel(&CCEDF{}),
			Workload: gen, StrictDeadlines: true,
		})
		if err != nil || dual.DeadlineMisses != 0 {
			t.Logf("dual: seed=%d err=%v misses=%d", seed, err, dual.DeadlineMisses)
			return false
		}
		up, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: proc,
			Policy:   &CCEDF{},
			Workload: gen,
		})
		if err != nil {
			return false
		}
		if dual.Energy > up.Energy*1.0001 {
			t.Logf("dual %v > quantize-up %v (seed %d)", dual.Energy, up.Energy, seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
