package dvs

import (
	"container/list"
	"math"

	"dvsslack/internal/sim"
)

// DRA is the dynamic reclaiming algorithm of Aydin, Melhem, Mossé and
// Mejía-Alvarez (RTSS 2001). It tracks the *canonical schedule* — the
// static-optimal EDF schedule in which every job runs its full WCET
// at the constant speed S = max(U, s_min) — with an "alpha queue" of
// per-job remaining canonical execution times ordered by deadline:
//
//   - at a job's release, its canonical allowance Cᵢ/S is enqueued;
//
//   - as wall-clock time passes, the allowance of the
//     earliest-deadline queue entry is consumed (that is the job the
//     canonical processor would be running), idling when the queue
//     is empty;
//
//   - when a job J with deadline d is dispatched, every queue entry
//     with deadline strictly earlier than d whose actual job already
//     completed represents *earliness*: time the canonical schedule
//     reserved ahead of J that the actual schedule no longer needs.
//     J may run slowly enough to fill its own remaining canonical
//     allowance plus that earliness:
//
//     s = w / (ownAllowance + earliness),  w = remaining WCET of J.
//
// Consuming earliness only uses processor time the (feasible)
// canonical schedule had already budgeted before d, so no deadline is
// missed (Aydin et al., Theorem 2).
type DRA struct {
	sys    sim.System
	static float64
	queue  *list.List // of *alphaEntry, ascending by deadline
	byJob  map[*sim.JobState]*alphaEntry
}

type alphaEntry struct {
	deadline float64
	rem      float64 // remaining canonical execution time
	job      *sim.JobState
	done     bool // the actual job completed
}

// Name implements sim.Policy.
func (*DRA) Name() string { return "DRA" }

// Reset implements sim.Policy.
func (p *DRA) Reset(sys sim.System) {
	p.sys = sys
	p.static = math.Max(sys.TaskSet().Utilization(), sys.Processor().SMin)
	p.queue = list.New()
	p.byJob = make(map[*sim.JobState]*alphaEntry)
}

// OnRelease implements sim.Policy.
func (p *DRA) OnRelease(j *sim.JobState) {
	e := &alphaEntry{deadline: j.AbsDeadline, rem: j.WCET / p.static, job: j}
	p.byJob[j] = e
	// Insert ordered by deadline (ties keep FIFO order, matching the
	// engine's deterministic EDF tie-break closely enough for the
	// canonical accounting).
	for el := p.queue.Back(); el != nil; el = el.Prev() {
		if el.Value.(*alphaEntry).deadline <= e.deadline {
			p.queue.InsertAfter(e, el)
			return
		}
	}
	p.queue.PushFront(e)
}

// OnComplete implements sim.Policy.
func (p *DRA) OnComplete(j *sim.JobState) {
	if e, ok := p.byJob[j]; ok {
		e.done = true
		delete(p.byJob, j)
	}
}

// OnAdvance implements sim.Policy: consume canonical execution time
// from the head of the alpha queue (earliest deadline first), exactly
// as the canonical processor would spend it.
func (p *DRA) OnAdvance(dt float64) {
	for dt > 0 && p.queue.Len() > 0 {
		el := p.queue.Front()
		e := el.Value.(*alphaEntry)
		if e.rem > dt {
			e.rem -= dt
			return
		}
		dt -= e.rem
		e.rem = 0
		p.queue.Remove(el)
		if !e.done {
			delete(p.byJob, e.job)
		}
	}
}

// SelectSpeed implements sim.Policy.
func (p *DRA) SelectSpeed(j *sim.JobState) float64 {
	w := j.RemainingWCET()
	if w <= 0 {
		return p.static
	}
	// Own remaining canonical allowance. Once it is exhausted (the
	// job ran longer than its canonical share) the job must proceed
	// using only earliness.
	var own float64
	ownEntry, haveOwn := p.byJob[j]
	if haveOwn {
		own = ownEntry.rem
	}
	// Earliness: canonical time still queued ahead of j's own entry
	// (in canonical EDF order, deadline ties included) whose actual
	// jobs have completed. The queue is maintained in canonical
	// order, so "ahead" is simply queue position.
	var earliness float64
	for el := p.queue.Front(); el != nil; el = el.Next() {
		e := el.Value.(*alphaEntry)
		if e.job == j {
			break
		}
		if !haveOwn && e.deadline >= j.AbsDeadline {
			// Own entry already consumed: without it as a position
			// marker, count only strictly earlier deadlines (ties
			// are ambiguous — stay conservative).
			break
		}
		if !e.done {
			// An incomplete job canonically ahead of j would be
			// running instead of j under EDF; under the engine's
			// dispatch rules this cannot happen for strictly earlier
			// deadlines, but a deadline tie broken differently could
			// surface here — stop conservatively.
			earliness = 0
			break
		}
		earliness += e.rem
	}
	avail := own + earliness
	if avail <= 0 {
		return 1
	}
	return w / avail
}
