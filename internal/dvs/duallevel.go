package dvs

import (
	"math"
	"sort"

	"dvsslack/internal/sim"
)

// DualLevel emulates a continuous-speed policy on a discrete-level
// processor with the two-voltage technique of Ishihara and Yasuura
// (ISLPED 1998): a requested speed s strictly between two adjacent
// levels l < s < h is realized by running *h first* for exactly the
// time x with
//
//	x·h + (T−x)·l = w,  T = w/s,  x = w·(s−l) / (s·(h−l)),
//
// then dropping to l, so the job occupies the identical wall-clock
// window the inner policy planned while doing the same work — at
// lower energy than rounding the whole job up to h whenever the power
// curve is convex.
//
// Running the higher level first keeps the job *ahead* of the inner
// policy's plan at every instant, so every deadline argument of the
// inner policy carries over verbatim. (The lower-level-first order of
// the original paper is energy-equivalent under this model but falls
// transiently behind the plan, which would not compose safely with
// preemptions.)
//
// The mid-job switch is injected through the sim.Repacer hook. The
// wrapper assumes negligible transition overhead (the extra switch
// per job is not budgeted against the slack analysis); use it with
// SwitchTime == 0 processors, or accept that the inner policy's
// native overhead reserve covers only its own transitions.
type DualLevel struct {
	// Inner supplies the continuous speed request (required).
	Inner sim.Policy

	sys    sim.System
	levels []float64

	// Current plan: drop to `low` at switchAt while job runs.
	// planSeq pins the plan to the release count at plan time: any
	// later release invalidates the commitment and the inner policy
	// is consulted afresh (between external events nothing the
	// inner policy could react to changes, so committing is sound;
	// re-consulting it at the planned switch would re-split
	// high-first forever for pace-shaped inner policies).
	job      *sim.JobState
	switchAt float64
	low      float64
	planSeq  uint64

	releaseSeq uint64
}

// NewDualLevel wraps inner. The wrapped policy only differs from
// inner on processors with discrete levels.
func NewDualLevel(inner sim.Policy) *DualLevel { return &DualLevel{Inner: inner} }

// Name implements sim.Policy.
func (p *DualLevel) Name() string { return p.Inner.Name() + "+dual" }

// Reset implements sim.Policy.
func (p *DualLevel) Reset(sys sim.System) {
	p.sys = sys
	p.levels = sys.Processor().Levels()
	sort.Float64s(p.levels)
	p.job = nil
	p.Inner.Reset(sys)
}

// OnRelease implements sim.Policy.
func (p *DualLevel) OnRelease(j *sim.JobState) {
	p.releaseSeq++
	p.Inner.OnRelease(j)
}

// OnComplete implements sim.Policy.
func (p *DualLevel) OnComplete(j *sim.JobState) {
	if p.job == j {
		p.job = nil
	}
	p.Inner.OnComplete(j)
}

// OnAdvance implements sim.Policy.
func (p *DualLevel) OnAdvance(dt float64) { p.Inner.OnAdvance(dt) }

// SelectSpeed implements sim.Policy.
func (p *DualLevel) SelectSpeed(j *sim.JobState) float64 {
	if p.job == j && p.planSeq == p.releaseSeq && p.sys.Now() >= p.switchAt-sim.Eps {
		// Our own planned switch point, with no external event since
		// the plan was made: enter the committed low phase.
		return p.low
	}
	s := p.Inner.SelectSpeed(j)
	if s > 1 {
		s = 1
	}
	p.job = nil // invalidate any previous plan
	if len(p.levels) == 0 {
		return s // continuous processor: pass through
	}
	// Locate adjacent levels around the request.
	i := sort.SearchFloat64s(p.levels, s)
	if i == 0 || i >= len(p.levels) {
		// At or below the lowest level, or above the top: a single
		// level (the processor clamp) is already exact or forced.
		return s
	}
	h := p.levels[i]
	l := p.levels[i-1]
	if s == h {
		return s // exact level
	}
	w := j.RemainingWCET()
	if w <= 0 || s <= 0 {
		return s
	}
	// Split the plan window T = w/s: high phase of length x, then
	// low. The engine will call back via NextCheck at the boundary.
	x := w * (s - l) / (s * (h - l))
	if x <= sim.Eps {
		return l // the request is essentially the lower level
	}
	now := p.sys.Now()
	p.job = j
	p.switchAt = now + x
	p.low = l
	p.planSeq = p.releaseSeq
	return h
}

// NextCheck implements sim.Repacer.
func (p *DualLevel) NextCheck(j *sim.JobState) float64 {
	if p.job != j || p.planSeq != p.releaseSeq || p.sys.Now() >= p.switchAt-sim.Eps {
		return math.Inf(1)
	}
	return p.switchAt
}

// Counters implements sim.Instrumented when the inner policy does.
func (p *DualLevel) Counters() map[string]float64 {
	if inst, ok := p.Inner.(sim.Instrumented); ok {
		return inst.Counters()
	}
	return nil
}
