// Package dvs implements the inter-task DVS-EDF baseline algorithms
// the paper evaluates against, plus the non-DVS reference and the
// clairvoyant static lower bound:
//
//   - NonDVS: always full speed (the normalization reference).
//   - StaticEDF: the optimal constant speed assuming worst-case
//     workloads, s = U (Pillai & Shin's "static EDF").
//   - LppsEDF: low-power priority scheduling (Shin, Choi, Sakurai):
//     stretch a job only when it is alone in the ready queue, up to
//     min(its deadline, the next arrival).
//   - CCEDF: cycle-conserving EDF (Pillai & Shin): track per-task
//     utilization with actual usage until the next release.
//   - LAEDF: look-ahead EDF (Pillai & Shin): defer work maximally
//     toward each task's deadline and run at the speed the earliest
//     deadline then requires.
//   - DRA: dynamic reclaiming (Aydin, Melhem, Mossé, Mejía-Alvarez):
//     pass the earliness of completed jobs to equal-or-later-deadline
//     ready jobs via an alpha-queue of the canonical static schedule.
//
// All policies are deadline-safe for EDF-feasible task sets (U ≤ 1);
// the property-based test suite fuzzes this for each of them.
package dvs

import (
	"dvsslack/internal/analysis"
	"dvsslack/internal/sim"
)

// NonDVS runs everything at full speed. Its energy is the
// normalization reference of every experiment.
type NonDVS struct{ sim.NopHooks }

// Name implements sim.Policy.
func (NonDVS) Name() string { return "nonDVS" }

// Reset implements sim.Policy.
func (*NonDVS) Reset(sim.System) {}

// SelectSpeed implements sim.Policy.
func (*NonDVS) SelectSpeed(*sim.JobState) float64 { return 1 }

// StaticEDF runs at the constant worst-case utilization speed: the
// slowest constant speed that keeps an implicit-deadline task set
// EDF-schedulable when every job consumes its WCET.
type StaticEDF struct {
	sim.NopHooks
	speed float64
}

// Name implements sim.Policy.
func (*StaticEDF) Name() string { return "staticEDF" }

// Reset implements sim.Policy.
func (p *StaticEDF) Reset(sys sim.System) {
	// For implicit deadlines this is the utilization; for
	// constrained deadlines the demand-based minimum constant speed.
	p.speed = analysis.MinConstantSpeed(sys.TaskSet())
}

// SelectSpeed implements sim.Policy.
func (p *StaticEDF) SelectSpeed(*sim.JobState) float64 { return p.speed }
