package dvs

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// allPolicies returns a fresh instance of every baseline.
func allPolicies() []sim.Policy {
	return []sim.Policy{
		&NonDVS{}, &StaticEDF{}, &LppsEDF{}, &CCEDF{}, &LAEDF{}, &DRA{},
	}
}

func run(t *testing.T, ts *rtm.TaskSet, p sim.Policy, gen workload.Generator) sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		TaskSet:         ts,
		Processor:       cpu.Continuous(0.1),
		Policy:          p,
		Workload:        gen,
		StrictDeadlines: true,
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return res
}

func TestPolicyNames(t *testing.T) {
	want := []string{"nonDVS", "staticEDF", "lppsEDF", "ccEDF", "laEDF", "DRA"}
	for i, p := range allPolicies() {
		if p.Name() != want[i] {
			t.Errorf("policy %d name = %q, want %q", i, p.Name(), want[i])
		}
	}
}

func TestNonDVSAlwaysFullSpeed(t *testing.T) {
	ts := rtm.Quickstart()
	res := run(t, ts, &NonDVS{}, workload.Uniform{Lo: 0.3, Hi: 1, Seed: 1})
	if math.Abs(res.AvgSpeed()-1) > 1e-9 {
		t.Errorf("avg speed = %v, want 1", res.AvgSpeed())
	}
	if res.SpeedSwitches != 0 {
		t.Errorf("switches = %d, want 0", res.SpeedSwitches)
	}
}

func TestStaticEDFRunsAtUtilization(t *testing.T) {
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4},  // U=0.25
		rtm.Task{WCET: 3, Period: 12}, // U=0.25
	)
	res := run(t, ts, &StaticEDF{}, workload.WorstCase{})
	if math.Abs(res.AvgSpeed()-0.5) > 1e-9 {
		t.Errorf("avg speed = %v, want U = 0.5", res.AvgSpeed())
	}
	if res.IdleTime > sim.Eps {
		t.Errorf("idle = %v; static speed U with worst case should leave none", res.IdleTime)
	}
}

func TestLppsEDFStretchesLoneJob(t *testing.T) {
	// Single task C=2, T=8: every job is alone; lppsEDF stretches
	// to min(deadline, next release) = 8 → speed 0.25.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 2, Period: 8})
	res := run(t, ts, &LppsEDF{}, workload.WorstCase{})
	if math.Abs(res.AvgSpeed()-0.25) > 1e-6 {
		t.Errorf("avg speed = %v, want 0.25", res.AvgSpeed())
	}
}

func TestLppsEDFFullSpeedWhenQueued(t *testing.T) {
	// Two tasks always released together with U = 1: the queue
	// never has exactly one job when dispatching the first, so the
	// first job of each pair runs at 1; the second is alone and may
	// stretch to the boundary.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 2, Period: 4},
	)
	res := run(t, ts, &LppsEDF{}, workload.WorstCase{})
	if res.DeadlineMisses != 0 {
		t.Fatal("missed deadlines")
	}
	// First job full speed (2 time units), second stretched across
	// the remaining 2 units at speed 1 (no slack at U=1): avg 1.
	if math.Abs(res.AvgSpeed()-1) > 1e-6 {
		t.Errorf("avg speed = %v, want 1 at U=1", res.AvgSpeed())
	}
}

func TestCCEDFReducesAfterEarlyCompletion(t *testing.T) {
	// One task C=4, T=8 with AET=0.25*WCET: at release U_1 = 0.5,
	// after completion U_1 = 0.125 — but with a single task the
	// next dispatch is the next release, which restores 0.5. So use
	// two tasks to observe the cross-task effect.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 4, Period: 8},
		rtm.Task{WCET: 4, Period: 8},
	)
	res := run(t, ts, &CCEDF{}, workload.Constant{Frac: 0.25})
	if res.DeadlineMisses != 0 {
		t.Fatal("missed deadlines")
	}
	// First job runs at U=1; once it completes (having used 1 of
	// its 4), utilization drops to 0.125+0.5; the second job runs
	// slower. Average speed must be well below 1.
	if res.AvgSpeed() > 0.9 {
		t.Errorf("avg speed = %v, want < 0.9 after reclamation", res.AvgSpeed())
	}
}

func TestLAEDFDefersWork(t *testing.T) {
	// laEDF on a lightly loaded set should run below the static
	// speed early (deferring), never missing deadlines.
	ts := rtm.Quickstart() // U = 0.75
	res := run(t, ts, &LAEDF{}, workload.Uniform{Lo: 0.3, Hi: 1, Seed: 3})
	if res.DeadlineMisses != 0 {
		t.Fatal("missed deadlines")
	}
	if res.AvgSpeed() >= 1 {
		t.Errorf("avg speed = %v, want < 1", res.AvgSpeed())
	}
}

func TestDRAReclaimsEarliness(t *testing.T) {
	// Two tasks, U = 1, first job finishes at 25% of its WCET: DRA
	// must pass the earliness to the second job, dropping average
	// speed below 1.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 2, Period: 4},
	)
	res := run(t, ts, &DRA{}, workload.Constant{Frac: 0.25})
	if res.DeadlineMisses != 0 {
		t.Fatal("missed deadlines")
	}
	if res.AvgSpeed() > 0.95 {
		t.Errorf("avg speed = %v, want below 1 via reclaiming", res.AvgSpeed())
	}
}

func TestDRAWorstCaseEqualsStatic(t *testing.T) {
	// With worst-case workloads there is no earliness: DRA degrades
	// exactly to the canonical static speed.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4},
		rtm.Task{WCET: 1, Period: 8},
	)
	resDRA := run(t, ts, &DRA{}, workload.WorstCase{})
	resStatic := run(t, ts, &StaticEDF{}, workload.WorstCase{})
	if math.Abs(resDRA.Energy-resStatic.Energy) > 1e-6 {
		t.Errorf("DRA %v != static %v under worst case", resDRA.Energy, resStatic.Energy)
	}
}

// TestBaselinesNeverMissFuzz fuzzes every baseline policy across
// random feasible task sets, workloads, and processors.
func TestBaselinesNeverMissFuzz(t *testing.T) {
	procs := []*cpu.Processor{
		cpu.Continuous(0.1),
		cpu.UniformLevels(4),
		cpu.Crusoe(),
	}
	f := func(seed uint64, nRaw, uRaw, wRaw, pRaw uint8) bool {
		n := 1 + int(nRaw)%8
		u := 0.15 + 0.85*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		var gen workload.Generator
		switch wRaw % 3 {
		case 0:
			gen = workload.Uniform{Lo: 0.05, Hi: 1, Seed: seed}
		case 1:
			gen = workload.Bimodal{LightFrac: 0.15, HeavyFrac: 1, PHeavy: 0.25, Seed: seed}
		default:
			gen = workload.WorstCase{}
		}
		proc := procs[int(pRaw)%len(procs)]
		for _, p := range allPolicies() {
			res, err := sim.Run(sim.Config{
				TaskSet:         ts,
				Processor:       proc,
				Policy:          p,
				Workload:        gen,
				StrictDeadlines: true,
			})
			if err != nil || res.DeadlineMisses != 0 {
				t.Logf("policy=%s seed=%d n=%d u=%v gen=%s proc=%s err=%v misses=%d",
					p.Name(), seed, n, u, gen.Name(), proc.Name(), err, res.DeadlineMisses)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDVSNeverWorseThanNonDVS: every DVS policy must consume at most
// the non-DVS energy on the identical workload (zero switch overhead).
func TestDVSNeverWorseThanNonDVS(t *testing.T) {
	f := func(seed uint64, uRaw uint8) bool {
		u := 0.2 + 0.8*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(6, u, seed))
		if err != nil {
			return false
		}
		gen := workload.Uniform{Lo: 0.3, Hi: 1, Seed: seed}
		ref, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: cpu.Continuous(0.1), Policy: &NonDVS{}, Workload: gen,
		})
		if err != nil {
			return false
		}
		for _, p := range allPolicies()[1:] {
			res, err := sim.Run(sim.Config{
				TaskSet: ts, Processor: cpu.Continuous(0.1), Policy: p, Workload: gen,
			})
			if err != nil || res.Energy > ref.Energy*1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBoundIsLowerBound(t *testing.T) {
	// The clairvoyant static bound must not exceed any real
	// policy's energy on the same workload.
	f := func(seed uint64, uRaw uint8) bool {
		u := 0.2 + 0.8*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(5, u, seed))
		if err != nil {
			return false
		}
		gen := workload.Uniform{Lo: 0.4, Hi: 1, Seed: seed}
		horizon := sim.DefaultHorizon(ts)
		bound := Bound(ts, cpu.Continuous(0.1), gen, horizon)
		for _, p := range allPolicies() {
			res, err := sim.Run(sim.Config{
				TaskSet: ts, Processor: cpu.Continuous(0.1), Policy: p,
				Workload: gen, Horizon: horizon,
			})
			if err != nil {
				return false
			}
			if bound > res.Energy*1.0001 {
				t.Logf("bound %v above %s energy %v (seed %d)", bound, p.Name(), res.Energy, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBoundDegenerate(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 10})
	proc := cpu.Continuous(0.1)
	if b := Bound(ts, proc, nil, 0); b != 0 {
		t.Errorf("zero horizon bound = %v, want 0", b)
	}
	// Nil generator means worst case.
	b := Bound(ts, proc, nil, 10)
	// One job of work 1 over 10 time units: s = max(0.1, 0.1) = 0.1,
	// busy 10, energy = 0.001*10 = 0.01.
	if math.Abs(b-0.01) > 1e-9 {
		t.Errorf("bound = %v, want 0.01", b)
	}
}
