package dvs

import (
	"dvsslack/internal/sim"
)

// EfficientFloor wraps a policy with the *critical speed* floor of
// leakage-aware DVS (Jejurikar, Pereira, Gupta, DAC 2004): when the
// processor draws static leakage power while busy, energy per unit
// of work, (P(s)+P_leak)/s, is minimized at a speed s_crit strictly
// above the slowest usable speed — stretching work below s_crit
// integrates leakage over a longer runtime faster than the dynamic
// term shrinks. The wrapper floors the inner policy's selection at
// s_crit, converting over-stretching into idle time that a
// sleep-capable processor can power down through.
//
// Raising a speed is always deadline-safe, so the inner policy's
// guarantee is untouched. On a leakage-free processor s_crit equals
// the minimum usable speed and the wrapper is an identity.
type EfficientFloor struct {
	// Inner is the wrapped policy (required).
	Inner sim.Policy

	floor float64
}

// NewEfficientFloor wraps inner with the processor's critical speed
// (computed at Reset).
func NewEfficientFloor(inner sim.Policy) *EfficientFloor {
	return &EfficientFloor{Inner: inner}
}

// Name implements sim.Policy.
func (p *EfficientFloor) Name() string { return p.Inner.Name() + "+crit" }

// Reset implements sim.Policy.
func (p *EfficientFloor) Reset(sys sim.System) {
	p.floor = sys.Processor().CriticalSpeed()
	p.Inner.Reset(sys)
}

// OnRelease implements sim.Policy.
func (p *EfficientFloor) OnRelease(j *sim.JobState) { p.Inner.OnRelease(j) }

// OnComplete implements sim.Policy.
func (p *EfficientFloor) OnComplete(j *sim.JobState) { p.Inner.OnComplete(j) }

// OnAdvance implements sim.Policy.
func (p *EfficientFloor) OnAdvance(dt float64) { p.Inner.OnAdvance(dt) }

// SelectSpeed implements sim.Policy.
func (p *EfficientFloor) SelectSpeed(j *sim.JobState) float64 {
	s := p.Inner.SelectSpeed(j)
	if s < p.floor {
		return p.floor
	}
	return s
}

// Counters implements sim.Instrumented when the inner policy does.
func (p *EfficientFloor) Counters() map[string]float64 {
	if inst, ok := p.Inner.(sim.Instrumented); ok {
		return inst.Counters()
	}
	return nil
}
