package dvs

import (
	"math"
	"testing"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

func leakyProc(leak float64) *cpu.Processor {
	p := cpu.Continuous(0.05)
	p.LeakagePower = leak
	p.SleepEnabled = true
	p.SleepPower = 0.005
	p.WakeEnergy = 0.2
	return p
}

func TestEfficientFloorIdentityWithoutLeakage(t *testing.T) {
	ts := rtm.Quickstart()
	gen := workload.Uniform{Lo: 0.4, Hi: 1, Seed: 6}
	proc := cpu.Continuous(0.1)
	plain, err := sim.Run(sim.Config{TaskSet: ts, Processor: proc, Policy: core.NewLpSHE(), Workload: gen})
	if err != nil {
		t.Fatal(err)
	}
	floored, err := sim.Run(sim.Config{TaskSet: ts, Processor: proc, Policy: NewEfficientFloor(core.NewLpSHE()), Workload: gen})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Energy-floored.Energy) > 1e-9 {
		t.Errorf("floor changed a leakage-free run: %v vs %v", plain.Energy, floored.Energy)
	}
}

func TestEfficientFloorWinsUnderHeavyLeakage(t *testing.T) {
	ts := rtm.Quickstart()
	gen := workload.Uniform{Lo: 0.4, Hi: 1, Seed: 6}
	proc := leakyProc(0.4)
	run := func(p sim.Policy) sim.Result {
		res, err := sim.Run(sim.Config{
			TaskSet: ts, Processor: proc, Policy: p,
			Workload: gen, Horizon: 600, StrictDeadlines: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(core.NewLpSHE())
	floored := run(NewEfficientFloor(core.NewLpSHE()))
	if floored.Energy >= plain.Energy {
		t.Errorf("critical-speed floor should save energy under heavy leakage: %v vs %v",
			floored.Energy, plain.Energy)
	}
	if floored.DeadlineMisses != 0 {
		t.Error("floor must not cause misses")
	}
	// The floor creates sleepable idle time.
	if floored.Sleeps == 0 {
		t.Error("expected deep-sleep intervals with the floor")
	}
}

func TestSleepAccounting(t *testing.T) {
	// One job then a long idle gap: the processor should sleep
	// through it. C=1, T=100, full speed: busy [0,1], idle 99.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 100})
	proc := leakyProc(0.1)
	res, err := sim.Run(sim.Config{
		TaskSet: ts, Processor: proc, Policy: &NonDVS{}, Horizon: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sleeps != 1 {
		t.Fatalf("sleeps = %d, want 1", res.Sleeps)
	}
	if math.Abs(res.SleepTime-99) > 1e-9 {
		t.Errorf("sleep time = %v, want 99", res.SleepTime)
	}
	// Busy: (1 + 0.1) * 1; idle: wake 0.2 + 99 * 0.005.
	wantIdle := 0.2 + 99*0.005
	if math.Abs(res.IdleEnergy-wantIdle) > 1e-9 {
		t.Errorf("idle energy = %v, want %v", res.IdleEnergy, wantIdle)
	}
	if math.Abs(res.BusyEnergy-1.1) > 1e-9 {
		t.Errorf("busy energy = %v, want 1.1", res.BusyEnergy)
	}
}

func TestShortGapStaysAwake(t *testing.T) {
	// Break-even for leakage 0.1: saving = 0.05+0.1-0.005 = 0.145;
	// 0.2/0.145 ≈ 1.38. A 1-unit gap must stay awake.
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 3, Period: 4})
	proc := leakyProc(0.1)
	res, err := sim.Run(sim.Config{
		TaskSet: ts, Processor: proc, Policy: &NonDVS{}, Horizon: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sleeps != 0 {
		t.Errorf("sleeps = %d, want 0 for sub-break-even gaps", res.Sleeps)
	}
}
