package dvs

import (
	"dvsslack/internal/sim"
)

// OverheadGuard wraps a policy with switch hysteresis for processors
// with expensive speed transitions: a requested slow-down that is
// within Hysteresis of the current speed is suppressed and the
// previous (faster) speed kept, cutting transitions whose stall and
// transition energy would outweigh the small slow-down they buy.
//
// Only downward changes are suppressed — keeping a *faster* speed is
// always deadline-safe, so the guard never weakens the wrapped
// policy's guarantee. Speed-ups always pass through unchanged.
//
// Note that the shipped lpSHE policy is natively overhead-aware (it
// reserves 2·SwitchTime of slack per decision); the guard composes
// with it to additionally reduce the switch count.
type OverheadGuard struct {
	// Inner is the wrapped policy (required).
	Inner sim.Policy
	// Hysteresis is the largest slow-down to suppress (default 0.05
	// via NewOverheadGuard; zero disables suppression).
	Hysteresis float64

	last float64
	have bool
}

// NewOverheadGuard wraps inner with the default 5% hysteresis.
func NewOverheadGuard(inner sim.Policy) *OverheadGuard {
	return &OverheadGuard{Inner: inner, Hysteresis: 0.05}
}

// Name implements sim.Policy.
func (p *OverheadGuard) Name() string { return p.Inner.Name() + "+guard" }

// Reset implements sim.Policy.
func (p *OverheadGuard) Reset(sys sim.System) {
	p.last = 0
	p.have = false
	p.Inner.Reset(sys)
}

// OnRelease implements sim.Policy.
func (p *OverheadGuard) OnRelease(j *sim.JobState) { p.Inner.OnRelease(j) }

// OnComplete implements sim.Policy.
func (p *OverheadGuard) OnComplete(j *sim.JobState) { p.Inner.OnComplete(j) }

// OnAdvance implements sim.Policy.
func (p *OverheadGuard) OnAdvance(dt float64) { p.Inner.OnAdvance(dt) }

// SelectSpeed implements sim.Policy.
func (p *OverheadGuard) SelectSpeed(j *sim.JobState) float64 {
	s := p.Inner.SelectSpeed(j)
	if s > 1 {
		s = 1
	}
	if p.have && p.Hysteresis > 0 && p.last >= s && p.last-s <= p.Hysteresis {
		return p.last // keep the (faster) current speed: no transition
	}
	p.last = s
	p.have = true
	return s
}

// Counters implements sim.Instrumented when the inner policy does.
func (p *OverheadGuard) Counters() map[string]float64 {
	if inst, ok := p.Inner.(sim.Instrumented); ok {
		return inst.Counters()
	}
	return nil
}
