package dvs

import (
	"dvsslack/internal/sim"
)

// CCEDF is cycle-conserving EDF (Pillai & Shin, SOSP 2001). Each
// task contributes a dynamic utilization share:
//
//   - at release of a job of task i, Uᵢ = Cᵢ/Tᵢ (the worst case must
//     be provisioned until the job reveals its actual demand);
//   - at completion, Uᵢ = ccᵢ/Tᵢ where ccᵢ is the actual work the job
//     used, releasing the unused share until the task's next release.
//
// The processor runs at s = ΣUᵢ at every scheduling point. Pillai &
// Shin prove the resulting schedule misses no deadline when the
// worst-case utilization is at most one.
type CCEDF struct {
	sim.NopHooks
	sys   sim.System
	util  []float64
	total float64
}

// Name implements sim.Policy.
func (*CCEDF) Name() string { return "ccEDF" }

// Reset implements sim.Policy.
func (p *CCEDF) Reset(sys sim.System) {
	p.sys = sys
	ts := sys.TaskSet()
	p.util = make([]float64, ts.N())
	p.total = 0
	for i, t := range ts.Tasks {
		p.util[i] = t.Utilization()
		p.total += p.util[i]
	}
}

// OnRelease implements sim.Policy.
func (p *CCEDF) OnRelease(j *sim.JobState) {
	p.set(j.TaskIndex, p.sys.TaskSet().Tasks[j.TaskIndex].Utilization())
}

// OnComplete implements sim.Policy.
func (p *CCEDF) OnComplete(j *sim.JobState) {
	p.set(j.TaskIndex, j.Executed/p.sys.TaskSet().Tasks[j.TaskIndex].Period)
}

func (p *CCEDF) set(task int, u float64) {
	p.total += u - p.util[task]
	p.util[task] = u
}

// SelectSpeed implements sim.Policy.
func (p *CCEDF) SelectSpeed(*sim.JobState) float64 {
	// Rebuild the sum occasionally? Not needed: the incremental
	// updates are exact to float rounding and the clamp absorbs it.
	return p.total
}
