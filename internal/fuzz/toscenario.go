package fuzz

import (
	"dvsslack/internal/scenario"
)

// ToScenario lifts a corpus entry into a declarative scenario
// document: the identical task set, processor, workload, and policy
// list, with the entry's expected fingerprint as the document's
// single assertion. Executing the document replays the entry
// simulation-for-simulation (same engine configuration, same jitter
// stream), so the scenario verdict's fingerprint equals the fuzz
// replay's — `dvsscen convert` relies on this to turn reproducers
// into corpus scenarios without changing what they pin.
func ToScenario(e CorpusEntry) *scenario.Document {
	doc := &scenario.Document{
		Version:     scenario.Version,
		Name:        e.Scenario.Name,
		Description: e.Comment,
		JitterSeed:  e.Scenario.JitterSeed,
		Policies:    append([]string(nil), e.Scenario.Policies...),
		Processor:   e.Scenario.Processor,
		Workload:    e.Scenario.Workload,
		Assertions: []scenario.Assertion{{
			Kind:   "fingerprint",
			Expect: append([]string{}, e.Expect...),
		}},
	}
	if e.Scenario.TaskSet != nil {
		for _, t := range e.Scenario.TaskSet.Tasks {
			doc.Tasks = append(doc.Tasks, scenario.TaskSpec{
				Name: t.Name, WCET: t.WCET, Period: t.Period,
				Deadline: t.Deadline, Jitter: t.Jitter,
			})
		}
	}
	return doc
}
