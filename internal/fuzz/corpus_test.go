package fuzz

import (
	"bytes"
	"testing"
)

// TestShippedCorpus replays every entry in testdata/corpus: each must
// reproduce exactly its recorded fingerprint, and the rendered report
// must be byte-identical across two replays.
func TestShippedCorpus(t *testing.T) {
	entries, paths, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("shipped corpus is empty")
	}
	sawFailureRepro := false
	for i, e := range entries {
		res1, fp, err := Replay(e)
		if err != nil {
			t.Errorf("%s: %v", paths[i], err)
			continue
		}
		if len(fp) > 0 {
			sawFailureRepro = true
		}
		res2, _, err := Replay(e)
		if err != nil {
			t.Errorf("%s: second replay: %v", paths[i], err)
			continue
		}
		b1, err := ReportJSON(res1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := ReportJSON(res2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: replay reports differ byte-for-byte", paths[i])
		}
	}
	if !sawFailureRepro {
		t.Error("corpus has no failing reproducer; the violation path is untested")
	}
}
