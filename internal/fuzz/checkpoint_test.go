package fuzz

import (
	"reflect"
	"testing"

	"dvsslack/internal/audit"
	"dvsslack/internal/policies"
	"dvsslack/internal/prng"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/snapshot"
)

// windowedTaskSet derives a task set with randomized arrival/departure
// windows (the same shape the differential pass uses).
func windowedTaskSet(seed uint64) (*rtm.TaskSet, [][]sim.Window, float64) {
	src := prng.New(seed * 0xa5a5)
	n := 2 + int(seed)%5
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(n, 0.4+0.05*float64(seed%6), seed))
	horizon := sim.DefaultHorizon(ts)
	windows := make([][]sim.Window, n)
	for i := range windows {
		if src.Float64() < 0.3 {
			continue // always active
		}
		start := src.Range(0, horizon/2)
		end := start + src.Range(horizon/8, horizon/2)
		windows[i] = []sim.Window{{Start: start, End: end}}
		if src.Float64() < 0.5 {
			s2 := end + src.Range(0, horizon/4)
			windows[i] = append(windows[i], sim.Window{Start: s2, End: s2 + src.Range(horizon/8, horizon/3)})
		}
	}
	return ts, windows, horizon
}

// The checkpoint pass pins the snapshot/restore determinism contract
// across the same scenario sources as the differential pass: a run
// checkpointed mid-flight and restored into fresh engine, policy, and
// auditor instances must finish with bit-identical results and audit
// reports — including scenarios where violations or deadline misses
// are the expected outcome (the reproducer corpus).

// checkpointCompare runs mk's config straight through under spec, then
// re-runs it with a capture/restore at the midpoint, and requires the
// two runs to be indistinguishable.
func checkpointCompare(t *testing.T, label, spec string, mk func() sim.Config) {
	t.Helper()
	mkRun := func() (sim.Config, *audit.Auditor) {
		cfg := mk()
		pol, err := policies.New(spec)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, spec, err)
		}
		cfg.Policy = pol
		aud := audit.New(audit.Options{TaskSet: cfg.TaskSet, Processor: cfg.Processor})
		cfg.Observer = aud
		return cfg, aud
	}
	finish := func(e *sim.Engine, aud *audit.Auditor) (sim.Result, string, *audit.Report) {
		for e.Step() {
		}
		res, err := e.Finish()
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		return res, errStr, aud.Finish(res)
	}

	cfg0, aud0 := mkRun()
	e0, err := sim.NewEngine(cfg0)
	if err != nil {
		t.Fatalf("%s/%s: %v", label, spec, err)
	}
	total := 0
	for e0.Step() {
		total++
	}
	res0, err0 := e0.Finish()
	errStr0 := ""
	if err0 != nil {
		errStr0 = err0.Error()
	}
	rep0 := aud0.Finish(res0)

	cfg1, aud1 := mkRun()
	e1, err := sim.NewEngine(cfg1)
	if err != nil {
		t.Fatalf("%s/%s: %v", label, spec, err)
	}
	for i := 0; i < total/2 && e1.Step(); i++ {
	}
	data, err := snapshot.Capture(label, e1, aud1)
	if err != nil {
		t.Fatalf("%s/%s: capture: %v", label, spec, err)
	}

	cfg2, aud2 := mkRun()
	e2, err := snapshot.Restore(data, label, cfg2, aud2)
	if err != nil {
		t.Fatalf("%s/%s: restore: %v", label, spec, err)
	}
	res2, errStr2, rep2 := finish(e2, aud2)

	if errStr2 != errStr0 {
		t.Errorf("%s/%s: restored run error %q, straight-through %q", label, spec, errStr2, errStr0)
	}
	if !reflect.DeepEqual(res2, res0) {
		t.Errorf("%s/%s: restored result differs:\n got  %+v\n want %+v", label, spec, res2, res0)
	}
	if !reflect.DeepEqual(rep2, rep0) {
		t.Errorf("%s/%s: restored audit report differs:\n got  %+v\n want %+v", label, spec, rep2, rep0)
	}
}

// samplePolicies bounds the per-scenario cost: first, middle, and
// last of the applicable list cover the distinct state shapes.
func samplePolicies(specs []string) []string {
	switch len(specs) {
	case 0:
		return nil
	case 1, 2, 3:
		return specs
	}
	return []string{specs[0], specs[len(specs)/2], specs[len(specs)-1]}
}

// TestCheckpointGenerated round-trips generator-derived scenarios,
// covering jitter, stalls, discrete levels, leakage, and sleep.
func TestCheckpointGenerated(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		sc := Generate(seed)
		for _, spec := range samplePolicies(sc.Policies) {
			checkpointCompare(t, sc.Name, spec, scenarioConfig(t, sc))
		}
	}
}

// TestCheckpointCorpus round-trips every shipped reproducer,
// including entries whose expected outcome is a failure — the restored
// run must reproduce the exact same violations.
func TestCheckpointCorpus(t *testing.T) {
	entries, _, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	for _, e := range entries {
		sc := e.Scenario
		for _, spec := range samplePolicies(sc.Policies) {
			checkpointCompare(t, sc.Name, spec, scenarioConfig(t, sc))
		}
	}
}

// TestCheckpointActiveWindows round-trips mode-change configurations:
// the restored engine's release cursors must resume exactly past the
// windows the original run had already skipped.
func TestCheckpointActiveWindows(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		sc := Generate(seed)
		ts, windows, horizon := windowedTaskSet(seed)
		checkpointCompare(t, sc.Name+"+windows", "lpshe", func() sim.Config {
			cfg := scenarioConfig(t, sc)()
			cfg.TaskSet = ts
			cfg.ActiveWindows = windows
			cfg.Horizon = horizon
			return cfg
		})
	}
}
