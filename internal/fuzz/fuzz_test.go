package fuzz

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
)

// TestGenerateDeterministic pins the core fuzzing contract: the same
// seed always yields the same scenario, structurally identical down
// to every field.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("Generate(%#x) is not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Error("distinct seeds produced identical scenarios")
	}
}

// TestCampaignClean runs a short campaign: every generated scenario
// must pass the audit for every applicable policy.
func TestCampaignClean(t *testing.T) {
	sum, err := Fuzz(Options{N: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scenarios != 20 || sum.Runs == 0 {
		t.Fatalf("campaign ran %d scenarios / %d runs", sum.Scenarios, sum.Runs)
	}
	for _, f := range sum.Failures {
		t.Errorf("scenario %s failed: %v", f.Scenario, f.Fingerprint)
	}
}

// failingScenario is an EDF-infeasible set (U = 1.2) that must
// produce deadline-miss violations under any policy.
func failingScenario() Scenario {
	return Scenario{
		Name: "infeasible",
		TaskSet: &rtm.TaskSet{Tasks: []rtm.Task{
			{Name: "T1", WCET: 6, Period: 10},
			{Name: "T2", WCET: 6, Period: 10},
			{Name: "T3", WCET: 1, Period: 100},
		}},
		Processor: server.ProcessorSpec{SMin: 0.1},
		Workload:  server.WorkloadSpec{Kind: "worst-case"},
		Policies:  []string{"nondvs", "lpshe"},
	}
}

// TestRunDetectsFailure checks Run surfaces audit violations and a
// stable fingerprint for a genuinely broken scenario.
func TestRunDetectsFailure(t *testing.T) {
	res := Run(failingScenario())
	if res.OK() {
		t.Fatal("infeasible scenario reported OK")
	}
	fp := res.Fingerprint()
	if len(fp) == 0 {
		t.Fatal("failing result has empty fingerprint")
	}
	found := false
	for _, f := range fp {
		if f == "nondvs/deadline-miss" {
			found = true
		}
	}
	if !found {
		t.Errorf("fingerprint %v lacks nondvs/deadline-miss", fp)
	}
}

// TestShrink checks the shrinker reduces a failing scenario while
// preserving fingerprint overlap, and leaves clean scenarios alone.
func TestShrink(t *testing.T) {
	sc := failingScenario()
	origFP := Run(sc).Fingerprint()
	min, minRes := Shrink(sc, 0)
	if minRes.OK() {
		t.Fatal("shrunk scenario no longer fails")
	}
	overlap := false
	set := map[string]bool{}
	for _, f := range origFP {
		set[f] = true
	}
	for _, f := range minRes.Fingerprint() {
		if set[f] {
			overlap = true
		}
	}
	if !overlap {
		t.Errorf("shrunk fingerprint %v shares nothing with original %v",
			minRes.Fingerprint(), origFP)
	}
	if len(min.Policies) != 1 {
		t.Errorf("shrinker kept %d policies, want 1", len(min.Policies))
	}
	// T3 is irrelevant to the overload; the shrinker must drop it.
	if got := len(min.TaskSet.Tasks); got != 2 {
		t.Errorf("shrinker kept %d tasks, want 2", got)
	}

	clean := Generate(3)
	same, res := Shrink(clean, 0)
	if !res.OK() {
		t.Fatalf("clean scenario shrank to a failure: %v", res.Fingerprint())
	}
	if !reflect.DeepEqual(same.TaskSet, clean.TaskSet) {
		t.Error("shrinking a clean scenario modified its task set")
	}
}

// TestCorpusRoundTrip checks entries survive write → load and that
// replaying one is byte-identical across runs.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	min, minRes := Shrink(failingScenario(), 0)
	entry := CorpusEntry{
		Comment:  "round-trip test entry",
		Scenario: min,
		Expect:   minRes.Fingerprint(),
	}
	path := filepath.Join(dir, "repro-infeasible.json")
	if err := WriteEntry(path, entry); err != nil {
		t.Fatal(err)
	}
	entries, paths, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || len(paths) != 1 {
		t.Fatalf("loaded %d entries / %d paths, want 1/1", len(entries), len(paths))
	}
	if !reflect.DeepEqual(entries[0].Scenario, entry.Scenario) {
		t.Error("scenario changed across write/load")
	}

	res1, _, err := Replay(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := Replay(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	b1, err := ReportJSON(res1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ReportJSON(res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("replay reports differ byte-for-byte across two runs")
	}
}

// TestReplayMismatch checks Replay errors when the observed
// fingerprint diverges from the corpus expectation.
func TestReplayMismatch(t *testing.T) {
	entry := CorpusEntry{Scenario: failingScenario(), Expect: nil}
	if _, _, err := Replay(entry); err == nil {
		t.Fatal("Replay accepted a failing scenario whose corpus entry expects a clean run")
	}
	clean := Generate(5)
	if _, _, err := Replay(CorpusEntry{Scenario: clean, Expect: []string{"lpshe/energy"}}); err == nil {
		t.Fatal("Replay accepted a clean scenario whose corpus entry expects a failure")
	}
}

// TestFuzzWritesReproducer checks a failing campaign writes a shrunk
// reproducer that replays with the recorded fingerprint.
func TestFuzzWritesReproducer(t *testing.T) {
	// No generated scenario fails (the engine is correct), so drive
	// the reproducer path directly through Shrink + WriteEntry the
	// way Fuzz does, then verify the file replays.
	dir := t.TempDir()
	min, minRes := Shrink(failingScenario(), 0)
	path := filepath.Join(dir, "repro-"+min.Name+".json")
	err := WriteEntry(path, CorpusEntry{Scenario: min, Expect: minRes.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	e, err := LoadEntry(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(e); err != nil {
		t.Fatalf("written reproducer does not replay: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
