package fuzz

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"dvsslack/internal/policies"
	"dvsslack/internal/prng"
	"dvsslack/internal/rtm"
	"dvsslack/internal/scenario"
	"dvsslack/internal/sim"
)

// The differential pass pins the incremental slack analyzer against
// the retained full-rescan oracle (lpshe vs lpshe-rescan) across
// every scenario source the repo has: the shipped fuzz reproducer
// corpus, every scenarios/ document, generator-derived scenarios, and
// randomized task sets with arrival/departure windows. In default
// (exact) mode the two must agree on every engine observable
// bit-for-bit — ==, not a tolerance — because the certificate and the
// fast-path skip are both proven to preserve the readings exactly.

// diffCompare runs one simulation config under the default lpSHE and
// the full-rescan oracle variant and requires identical results.
func diffCompare(t *testing.T, label string, mkCfg func() sim.Config) {
	t.Helper()
	run := func(spec string) sim.Result {
		pol, err := policies.New(spec)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cfg := mkCfg()
		cfg.Policy = pol
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, spec, err)
		}
		return res
	}
	full, rescan := run("lpshe"), run("lpshe-rescan")
	if full.Energy != rescan.Energy ||
		full.BusyEnergy != rescan.BusyEnergy ||
		full.IdleEnergy != rescan.IdleEnergy ||
		full.SwitchEnergy != rescan.SwitchEnergy ||
		full.SpeedTimeIntegral != rescan.SpeedTimeIntegral ||
		full.SpeedSwitches != rescan.SpeedSwitches ||
		full.DeadlineMisses != rescan.DeadlineMisses ||
		full.JobsReleased != rescan.JobsReleased ||
		full.JobsCompleted != rescan.JobsCompleted ||
		full.Decisions != rescan.Decisions {
		t.Errorf("%s: incremental vs rescan diverge:\n  energy %v vs %v\n  integral %v vs %v\n  switches %d vs %d\n  misses %d vs %d\n  decisions %d vs %d",
			label, full.Energy, rescan.Energy,
			full.SpeedTimeIntegral, rescan.SpeedTimeIntegral,
			full.SpeedSwitches, rescan.SpeedSwitches,
			full.DeadlineMisses, rescan.DeadlineMisses,
			full.Decisions, rescan.Decisions)
	}
}

// scenarioConfig lifts a fuzz Scenario into a runnable sim.Config
// factory (fresh processor/workload per run, mirroring runPolicy).
func scenarioConfig(t *testing.T, sc Scenario) func() sim.Config {
	t.Helper()
	return func() sim.Config {
		proc, err := sc.Processor.Build()
		if err != nil {
			t.Fatalf("%s: processor: %v", sc.Name, err)
		}
		gen, err := sc.Workload.Build()
		if err != nil {
			t.Fatalf("%s: workload: %v", sc.Name, err)
		}
		return sim.Config{
			TaskSet:    sc.TaskSet,
			Processor:  proc,
			Workload:   gen,
			JitterSeed: sc.JitterSeed,
		}
	}
}

// TestDifferentialCorpus replays every shipped reproducer under both
// analyzer modes.
func TestDifferentialCorpus(t *testing.T) {
	entries, _, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty corpus")
	}
	for _, e := range entries {
		diffCompare(t, "corpus/"+e.Scenario.Name, scenarioConfig(t, e.Scenario))
	}
}

// TestDifferentialGenerated sweeps generator-derived scenarios —
// discrete levels, leakage, sleep, jitter, stalls, every workload
// kind — under both analyzer modes.
func TestDifferentialGenerated(t *testing.T) {
	for seed := uint64(0); seed < 24; seed++ {
		sc := Generate(seed)
		diffCompare(t, sc.Name, scenarioConfig(t, sc))
	}
}

// TestDifferentialScenarios executes every scenarios/ document twice
// with the policy list pinned to one analyzer mode each and compares
// the per-policy outcomes. Documents bring activity windows, workload
// shaping, overrides, chaos retries, and horizons into the pass.
func TestDifferentialScenarios(t *testing.T) {
	docs, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil || len(docs) == 0 {
		t.Fatalf("no scenario documents found: %v", err)
	}
	for _, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		runAs := func(spec string) scenario.PolicyRun {
			doc, errs := scenario.Parse(filepath.Base(path), data)
			if len(errs) > 0 {
				t.Fatalf("%s: %v", path, errs[0])
			}
			doc.Policies = []string{spec}
			// The verdict's assertions are about the original policy
			// list; this pass only compares raw outcomes.
			doc.Assertions = nil
			v, err := scenario.Execute(context.Background(), doc)
			if err != nil {
				t.Fatalf("%s/%s: %v", path, spec, err)
			}
			if len(v.Policies) != 1 {
				t.Fatalf("%s/%s: %d policy runs", path, spec, len(v.Policies))
			}
			return v.Policies[0]
		}
		full, rescan := runAs("lpshe"), runAs("lpshe-rescan")
		if full.Err != rescan.Err ||
			full.Energy != rescan.Energy ||
			full.DeadlineMisses != rescan.DeadlineMisses ||
			full.JobsReleased != rescan.JobsReleased ||
			full.JobsCompleted != rescan.JobsCompleted ||
			len(full.Violations) != len(rescan.Violations) {
			t.Errorf("%s: incremental vs rescan diverge: energy %v vs %v, misses %d vs %d, err %q vs %q",
				path, full.Energy, rescan.Energy,
				full.DeadlineMisses, rescan.DeadlineMisses, full.Err, rescan.Err)
		}
	}
}

// TestDifferentialActiveWindows randomizes task arrival/departure
// windows (sim.ActiveWindows) so tasks join and leave mid-run —
// the one dynamic the periodic grid cannot pre-plan, covered by the
// analyzer through the active-job set and next-release map alone.
func TestDifferentialActiveWindows(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		src := prng.New(seed * 0xa5a5)
		n := 2 + int(seed)%5
		ts := rtm.MustGenerate(rtm.DefaultGenConfig(n, 0.4+0.05*float64(seed%6), seed))
		horizon := sim.DefaultHorizon(ts)
		windows := make([][]sim.Window, n)
		for i := range windows {
			if src.Float64() < 0.3 {
				continue // always active
			}
			start := src.Range(0, horizon/2)
			end := start + src.Range(horizon/8, horizon/2)
			windows[i] = []sim.Window{{Start: start, End: end}}
			if src.Float64() < 0.5 {
				s2 := end + src.Range(0, horizon/4)
				windows[i] = append(windows[i], sim.Window{Start: s2, End: s2 + src.Range(horizon/8, horizon/3)})
			}
		}
		sc := Generate(seed) // borrow a generated processor/workload pair
		diffCompare(t, sc.Name+"+windows", func() sim.Config {
			cfg := scenarioConfig(t, sc)()
			cfg.TaskSet = ts
			cfg.ActiveWindows = windows
			cfg.Horizon = horizon
			return cfg
		})
	}
}
