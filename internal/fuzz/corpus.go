package fuzz

// Corpus entries are shrunk reproducers (and hand-written regression
// scenarios) serialized as JSON. An entry records the scenario plus
// the failure fingerprint it must reproduce — an empty fingerprint
// means the scenario must replay clean. Replaying is byte-stable: the
// same entry always renders the same report, so corpus files double
// as golden tests for the auditor.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusEntry is one serialized scenario with its expected outcome.
type CorpusEntry struct {
	// Comment says where the entry came from and what it pins.
	Comment string `json:"comment,omitempty"`
	// Scenario is the configuration to replay.
	Scenario Scenario `json:"scenario"`
	// Expect is the required failure fingerprint (sorted
	// "policy/invariant" pairs). Empty means the replay must be
	// violation-free.
	Expect []string `json:"expect"`
}

// Marshal renders the entry as stable, human-diffable JSON.
func (e *CorpusEntry) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteEntry serializes an entry to path.
func WriteEntry(path string, e CorpusEntry) error {
	b, err := e.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadEntry reads one corpus file.
func LoadEntry(path string) (CorpusEntry, error) {
	var e CorpusEntry
	b, err := os.ReadFile(path)
	if err != nil {
		return e, err
	}
	if err := json.Unmarshal(b, &e); err != nil {
		return e, fmt.Errorf("fuzz: %s: %w", path, err)
	}
	if e.Scenario.Name == "" {
		e.Scenario.Name = strings.TrimSuffix(filepath.Base(path), ".json")
	}
	return e, nil
}

// LoadCorpus reads every *.json entry in dir, sorted by file name so
// corpus order is stable across platforms.
func LoadCorpus(dir string) ([]CorpusEntry, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	var entries []CorpusEntry
	for _, p := range paths {
		e, err := LoadEntry(p)
		if err != nil {
			return nil, nil, err
		}
		entries = append(entries, e)
	}
	return entries, paths, nil
}

// Replay runs an entry's scenario and checks its fingerprint against
// Expect. It returns the Result, the observed fingerprint, and an
// error when they disagree.
func Replay(e CorpusEntry) (*Result, []string, error) {
	res := Run(e.Scenario)
	got := res.Fingerprint()
	want := append([]string(nil), e.Expect...)
	sort.Strings(want)
	if !equalStrings(got, want) {
		return res, got, fmt.Errorf("fuzz: %s: fingerprint %v, corpus expects %v",
			e.Scenario.Name, got, want)
	}
	return res, got, nil
}

// ReportJSON renders a Result as stable indented JSON (the byte-level
// replay artifact dvscheck prints and the tests compare).
func ReportJSON(r *Result) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
