package fuzz

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"dvsslack/internal/prng"
)

// Options configures a fuzzing campaign.
type Options struct {
	// N is the number of scenarios to generate and run.
	N int
	// Seed selects the campaign's scenario stream; scenario i is
	// derived from Hash3(Seed, i, 0), so a campaign is reproducible
	// from (Seed, N) alone.
	Seed uint64
	// OutDir, when non-empty, receives a shrunk JSON reproducer per
	// failing scenario (created if missing).
	OutDir string
	// ShrinkBudget bounds the shrinker's candidate runs per failure;
	// <= 0 selects DefaultShrinkBudget.
	ShrinkBudget int
	// Log, when non-nil, receives one progress line per failure.
	Log io.Writer
}

// Failure records one failing scenario of a campaign.
type Failure struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	// Fingerprint is the original failure's "policy/invariant" set.
	Fingerprint []string `json:"fingerprint"`
	// ReproPath is the shrunk reproducer written to OutDir, if any.
	ReproPath string `json:"repro,omitempty"`
}

// Summary is a campaign's outcome.
type Summary struct {
	Scenarios int       `json:"scenarios"`
	Runs      int       `json:"runs"`
	Failures  []Failure `json:"failures,omitempty"`
}

// OK reports whether the campaign found nothing.
func (s *Summary) OK() bool { return len(s.Failures) == 0 }

// Fuzz runs a campaign: N generated scenarios, every applicable
// policy audited, failures shrunk and serialized as reproducers. The
// returned error covers harness problems (unwritable OutDir), not
// audit findings — check Summary.OK for those.
func Fuzz(opts Options) (*Summary, error) {
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return nil, err
		}
	}
	sum := &Summary{}
	for i := 0; i < opts.N; i++ {
		sc := Generate(prng.Hash3(opts.Seed, i, 0))
		res := Run(sc)
		sum.Scenarios++
		sum.Runs += len(sc.Policies)
		if res.OK() {
			continue
		}
		fail := Failure{Scenario: sc.Name, Seed: sc.Seed, Fingerprint: res.Fingerprint()}
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "FAIL %s: %v\n", sc.Name, fail.Fingerprint)
		}
		if opts.OutDir != "" {
			min, minRes := Shrink(sc, opts.ShrinkBudget)
			entry := CorpusEntry{
				Comment: fmt.Sprintf(
					"shrunk reproducer from fuzz seed %#x; original fingerprint %v",
					sc.Seed, fail.Fingerprint),
				Scenario: min,
				Expect:   minRes.Fingerprint(),
			}
			path := filepath.Join(opts.OutDir, "repro-"+min.Name+".json")
			if err := WriteEntry(path, entry); err != nil {
				return nil, err
			}
			fail.ReproPath = path
			if opts.Log != nil {
				fmt.Fprintf(opts.Log, "  reproducer: %s (%d tasks, %d policies)\n",
					path, len(min.TaskSet.Tasks), len(min.Policies))
			}
		}
		sum.Failures = append(sum.Failures, fail)
	}
	return sum, nil
}
