package fuzz

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"dvsslack/internal/scenario"
)

// TestToScenarioRoundTrip pins the corpus-to-scenario contract over
// every committed corpus entry: the converted document validates, its
// YAML form reparses to the same canonical key, and executing it
// reproduces the entry's fingerprint exactly.
func TestToScenarioRoundTrip(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no corpus entries found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			entry, err := LoadEntry(path)
			if err != nil {
				t.Fatal(err)
			}
			fuzzFP := Run(entry.Scenario).Fingerprint()

			doc := ToScenario(entry)
			// The converted document must survive a YAML round trip
			// (this is what `dvsscen convert` writes to disk).
			reparsed, errs := scenario.Parse(path, scenario.MarshalYAML(doc))
			if len(errs) > 0 {
				t.Fatalf("converted document does not validate: %v", errs)
			}
			if scenario.DocKey(doc) != scenario.DocKey(reparsed) {
				t.Fatal("YAML round trip changed the document")
			}

			v, err := scenario.Execute(context.Background(), reparsed)
			if err != nil {
				t.Fatal(err)
			}
			if got := v.Fingerprint(); !reflect.DeepEqual(got, fuzzFP) {
				t.Fatalf("scenario fingerprint %v, fuzz fingerprint %v", got, fuzzFP)
			}
			if !v.Ok {
				t.Fatalf("converted scenario verdict not ok: %s", v.JSON())
			}
		})
	}
}

// TestToScenarioGenerated covers generator-produced scenarios (which
// exercise jitter, stalls, discrete levels, and extended policy
// lists) beyond the committed corpus.
func TestToScenarioGenerated(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		sc := Generate(seed)
		entry := CorpusEntry{Scenario: sc, Expect: Run(sc).Fingerprint()}
		doc := ToScenario(entry)
		reparsed, errs := scenario.Parse(sc.Name, scenario.MarshalYAML(doc))
		if len(errs) > 0 {
			t.Fatalf("seed %d: %v", seed, errs)
		}
		v, err := scenario.Execute(context.Background(), reparsed)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.Fingerprint(); !reflect.DeepEqual(got, entry.Expect) {
			t.Fatalf("seed %d: fingerprint %v, want %v", seed, got, entry.Expect)
		}
	}
}
