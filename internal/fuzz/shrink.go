package fuzz

import (
	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
)

// The shrinker reduces a failing scenario to a minimal reproducer.
// Minimality here is greedy, not global: each pass removes one source
// of complexity — extra policies, extra tasks, jitter, stalls, the
// workload distribution, the processor model — and keeps the
// reduction only if the re-run still reproduces part of the original
// failure fingerprint. Passes repeat to a fixpoint under a run
// budget, so shrinking is deterministic and bounded even when the
// failure is flickery across reductions.

// DefaultShrinkBudget bounds the number of candidate runs one Shrink
// call may spend.
const DefaultShrinkBudget = 80

// clone deep-copies a scenario so reductions never alias the
// original's task or policy slices.
func clone(sc Scenario) Scenario {
	out := sc
	if sc.TaskSet != nil {
		ts := *sc.TaskSet
		ts.Tasks = append([]rtm.Task(nil), sc.TaskSet.Tasks...)
		out.TaskSet = &ts
	}
	out.Policies = append([]string(nil), sc.Policies...)
	return out
}

// Shrink reduces sc to a smaller scenario whose failure overlaps the
// original's fingerprint. It returns the reduced scenario and its
// Result. If sc does not fail at all, it is returned unchanged with
// its (clean) Result. budget <= 0 selects DefaultShrinkBudget.
func Shrink(sc Scenario, budget int) (Scenario, *Result) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	best := clone(sc)
	bestRes := Run(best)
	orig := map[string]bool{}
	for _, f := range bestRes.Fingerprint() {
		orig[f] = true
	}
	if len(orig) == 0 {
		return best, bestRes
	}
	// try re-runs a candidate and adopts it when its failure still
	// overlaps the original fingerprint.
	try := func(cand Scenario) bool {
		if budget <= 0 {
			return false
		}
		budget--
		r := Run(cand)
		for _, f := range r.Fingerprint() {
			if orig[f] {
				best, bestRes = cand, r
				return true
			}
		}
		return false
	}

	for pass := 0; pass < 4; pass++ {
		changed := false

		// Single policy: find one policy that fails alone.
		if len(best.Policies) > 1 {
			for _, p := range bestRes.Policies {
				if p.Err == "" && len(p.Violations) == 0 && !p.Truncated {
					continue
				}
				cand := clone(best)
				cand.Policies = []string{p.Policy}
				if try(cand) {
					changed = true
					break
				}
			}
		}

		// Drop tasks one at a time (never below one task).
		for i := 0; best.TaskSet != nil && len(best.TaskSet.Tasks) > 1 && i < len(best.TaskSet.Tasks); {
			cand := clone(best)
			cand.TaskSet.Tasks = append(cand.TaskSet.Tasks[:i], cand.TaskSet.Tasks[i+1:]...)
			if try(cand) {
				changed = true
				// best shrank; retry the same index.
			} else {
				i++
			}
		}

		// Remove hazards and model complexity, one knob at a time.
		if best.TaskSet != nil {
			jittered := false
			for _, t := range best.TaskSet.Tasks {
				jittered = jittered || t.Jitter > 0
			}
			if jittered {
				cand := clone(best)
				for i := range cand.TaskSet.Tasks {
					cand.TaskSet.Tasks[i].Jitter = 0
				}
				cand.JitterSeed = 0
				changed = try(cand) || changed
			}
		}
		if best.Processor.SwitchTime != 0 || best.Processor.SwitchEnergyCoeff != 0 {
			cand := clone(best)
			cand.Processor.SwitchTime = 0
			cand.Processor.SwitchEnergyCoeff = 0
			changed = try(cand) || changed
		}
		if best.Workload.Kind != "worst-case" {
			cand := clone(best)
			cand.Workload = server.WorkloadSpec{Kind: "worst-case"}
			changed = try(cand) || changed
		}
		if !plainProcessor(best.Processor) {
			cand := clone(best)
			cand.Processor = server.ProcessorSpec{SMin: 0.1}
			changed = try(cand) || changed
		}

		if !changed || budget <= 0 {
			break
		}
	}
	best.Name = sc.Name + "-min"
	bestRes.Scenario = best.Name
	return best, bestRes
}

// plainProcessor reports whether the spec already is the simplest
// model the shrinker targets: a bare continuous CPU with default
// power and no overheads.
func plainProcessor(s server.ProcessorSpec) bool {
	return s.Preset == "" && len(s.Levels) == 0 && s.Model == "" &&
		s.IdlePower == nil && s.SwitchTime == 0 && s.SwitchEnergyCoeff == 0 &&
		s.LeakagePower == 0 && !s.SleepEnabled && s.SMin == 0.1
}
