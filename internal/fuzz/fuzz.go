// Package fuzz is the deterministic property-fuzz harness behind
// cmd/dvscheck: it generates randomized but fully reproducible
// simulation scenarios — task sets, AET distributions, release
// jitter, discrete-level processor models, job overruns up to WCET,
// and speed-transition stalls — runs every applicable registered
// policy under the internal/audit oracle, and shrinks any failure to
// a minimal reproducer that serializes as JSON into a corpus and
// replays byte-identically.
//
// Everything is a pure function of the seed: Generate(seed) always
// yields the same Scenario, a Scenario always produces the same runs
// (the engine, workload generators, and jitter streams are themselves
// deterministic), and reports are rendered with sorted keys and no
// map iteration, so a reproducer found on one machine fails the same
// way on another.
//
// Policy applicability follows the hazard classes established by the
// experiment suite (see EXPERIMENTS.md figures F7 and F9): on a
// hazard-free EDF-feasible scenario every registered policy must be
// miss-free, but under release jitter or transition stalls only the
// lpSHE family carries that guarantee — ccEDF and the other
// comparison baselines legitimately miss there, which would drown
// real engine bugs in expected failures. Each generated scenario
// therefore lists exactly the policies that must survive it.
package fuzz

import (
	"fmt"
	"sort"

	"dvsslack/internal/audit"
	"dvsslack/internal/policies"
	"dvsslack/internal/prng"
	"dvsslack/internal/rtm"
	"dvsslack/internal/server"
	"dvsslack/internal/sim"
)

// Scenario is one self-contained fuzz configuration. It reuses the
// dvsd wire specs for the processor and workload, so a scenario can
// be pasted into a /v1/simulate request body almost verbatim.
type Scenario struct {
	// Name labels the scenario in reports and file names.
	Name string `json:"name"`
	// Seed is the generator seed the scenario was derived from
	// (zero for hand-written corpus entries).
	Seed uint64 `json:"seed,omitempty"`
	// TaskSet is the periodic task set, including any release
	// jitter on its tasks.
	TaskSet *rtm.TaskSet `json:"task_set"`
	// Processor and Workload describe the CPU model and AET
	// distribution in dvsd wire form.
	Processor server.ProcessorSpec `json:"processor"`
	Workload  server.WorkloadSpec  `json:"workload"`
	// JitterSeed selects the release-jitter stream (meaningful only
	// when tasks carry jitter).
	JitterSeed uint64 `json:"jitter_seed,omitempty"`
	// Policies lists the policy specs that must survive this
	// scenario without a single audit violation.
	Policies []string `json:"policies"`
}

// lpSHEFamily is the set of policies that keep the paper's hard
// real-time guarantee under release jitter and transition stalls
// (lpSHE reserves 2·SwitchTime of slack per decision; see
// internal/dvs). Comparison baselines are excluded from hazard
// scenarios because their misses there are expected behavior, not
// bugs.
var lpSHEFamily = []string{"lpshe", "lpshe-greedy", "lpshe-no-reclaim", "lpshe-horizon8", "lpshe-horizon32"}

// Generate derives a scenario deterministically from seed.
func Generate(seed uint64) Scenario {
	src := prng.New(prng.Mix64(seed ^ 0xd1f5c4ec5eed))
	sc := Scenario{Name: fmt.Sprintf("fuzz-%016x", seed), Seed: seed}

	n := 2 + src.Intn(7)
	u := src.Range(0.25, 0.9)
	ts, err := rtm.Generate(rtm.GenConfig{N: n, Utilization: u, Seed: src.Uint64()})
	if err != nil {
		// Unreachable for the parameter ranges above; fail loudly
		// rather than fuzz a half-built scenario.
		panic(fmt.Sprintf("fuzz: Generate(%d): %v", seed, err))
	}
	sc.TaskSet = ts

	// Hazard roll: release jitter, transition stalls, or neither.
	// Both shrink the applicable policy list to the lpSHE family.
	hazard := src.Float64()
	jitter := hazard < 0.25
	stall := hazard >= 0.25 && hazard < 0.5

	// Processor model.
	switch src.Intn(4) {
	case 0:
		sc.Processor = server.ProcessorSpec{SMin: src.Range(0.05, 0.3)}
	case 1:
		k := 2 + src.Intn(7)
		levels := make([]float64, k)
		for i := range levels {
			levels[i] = float64(i+1) / float64(k)
		}
		sc.Processor = server.ProcessorSpec{Levels: levels}
	case 2:
		sc.Processor = server.ProcessorSpec{Preset: "xscale"}
	default:
		sc.Processor = server.ProcessorSpec{SMin: 0.1, LeakagePower: src.Range(0.01, 0.1)}
		if src.Float64() < 0.5 {
			sc.Processor.SleepEnabled = true
			sc.Processor.SleepPower = 0.005
			sc.Processor.WakeEnergy = src.Range(0.1, 0.5)
		}
	}
	if stall {
		sc.Processor.SwitchTime = src.Range(0.02, 0.3)
		sc.Processor.SwitchEnergyCoeff = 0.1
	}
	if jitter {
		for i := range ts.Tasks {
			ts.Tasks[i].Jitter = src.Range(0.02, 0.15) * ts.Tasks[i].Period
		}
		sc.JitterSeed = src.Uint64()
	}

	// Workload: the bimodal case models rare job overruns to the
	// full WCET on top of a light common path.
	switch src.Intn(5) {
	case 0:
		lo := src.Range(0.1, 0.5)
		sc.Workload = server.WorkloadSpec{Kind: "uniform", Lo: lo, Hi: src.Range(lo, 1), Seed: src.Uint64()}
	case 1:
		sc.Workload = server.WorkloadSpec{Kind: "constant", Frac: src.Range(0.2, 1)}
	case 2:
		sc.Workload = server.WorkloadSpec{Kind: "normal", Mean: src.Range(0.3, 0.7), StdDev: 0.2, Seed: src.Uint64()}
	case 3:
		sc.Workload = server.WorkloadSpec{
			Kind: "bimodal", LightFrac: src.Range(0.1, 0.4), HeavyFrac: 1,
			PHeavy: src.Range(0.05, 0.3), Seed: src.Uint64(),
		}
	default:
		sc.Workload = server.WorkloadSpec{Kind: "worst-case"}
	}

	switch {
	case jitter || stall:
		sc.Policies = append([]string(nil), lpSHEFamily...)
		if stall {
			sc.Policies = append(sc.Policies, "lpshe+guard")
		}
	default:
		sc.Policies = append([]string(nil), policies.Names()...)
		if sc.Processor.LeakagePower > 0 {
			sc.Policies = append(sc.Policies, "lpshe+crit")
		}
		if len(sc.Processor.Levels) > 0 {
			sc.Policies = append(sc.Policies, "lpshe+dual")
		}
	}
	return sc
}

// PolicyOutcome is one policy's audited run within a scenario.
type PolicyOutcome struct {
	Policy string `json:"policy"`
	// Err is set when the run itself failed (bad spec, engine
	// error); such an outcome counts as a failure.
	Err            string  `json:"err,omitempty"`
	DeadlineMisses int     `json:"deadline_misses"`
	Energy         float64 `json:"energy"`
	// Violations is the audit report for the run, in detection
	// order.
	Violations []audit.Violation `json:"violations,omitempty"`
	Truncated  bool              `json:"truncated,omitempty"`
}

// Result is the outcome of running one scenario across its policies.
type Result struct {
	Scenario string          `json:"scenario"`
	Policies []PolicyOutcome `json:"policies"`
}

// OK reports whether every policy survived the audit.
func (r *Result) OK() bool {
	for _, p := range r.Policies {
		if p.Err != "" || len(p.Violations) > 0 || p.Truncated {
			return false
		}
	}
	return true
}

// Fingerprint summarizes a failure as sorted, de-duplicated
// "policy/invariant" pairs (a run error contributes "policy/error").
// The shrinker uses fingerprint overlap to decide whether a reduced
// scenario still reproduces the original failure.
func (r *Result) Fingerprint() []string {
	seen := map[string]bool{}
	for _, p := range r.Policies {
		if p.Err != "" {
			seen[p.Policy+"/error"] = true
		}
		for _, v := range p.Violations {
			seen[p.Policy+"/"+v.Invariant] = true
		}
	}
	fp := make([]string, 0, len(seen))
	for k := range seen {
		fp = append(fp, k)
	}
	sort.Strings(fp)
	return fp
}

// Run executes the scenario: every listed policy simulates the same
// configuration under a fresh auditor. Scenario problems (an
// unbuildable spec) surface as per-policy Err entries rather than
// aborting, so corpus replays always produce a comparable Result.
func Run(sc Scenario) *Result {
	res := &Result{Scenario: sc.Name}
	for _, spec := range sc.Policies {
		res.Policies = append(res.Policies, runPolicy(sc, spec))
	}
	return res
}

func runPolicy(sc Scenario, spec string) PolicyOutcome {
	out := PolicyOutcome{Policy: spec}
	if sc.TaskSet == nil {
		out.Err = "scenario has no task set"
		return out
	}
	if err := sc.TaskSet.Validate(); err != nil {
		out.Err = err.Error()
		return out
	}
	// Build a fresh processor per run: the spec is the shared
	// immutable form, the built value is private to this run.
	proc, err := sc.Processor.Build()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	gen, err := sc.Workload.Build()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	pol, err := policies.New(spec)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	aud := audit.New(audit.Options{TaskSet: sc.TaskSet, Processor: proc})
	res, err := sim.Run(sim.Config{
		TaskSet:    sc.TaskSet,
		Processor:  proc,
		Policy:     pol,
		Workload:   gen,
		Observer:   aud,
		JitterSeed: sc.JitterSeed,
	})
	if err != nil {
		out.Err = err.Error()
		return out
	}
	rep := aud.Finish(res)
	out.DeadlineMisses = res.DeadlineMisses
	out.Energy = res.Energy
	out.Violations = rep.Violations
	out.Truncated = rep.Truncated
	return out
}
