package policies

import (
	"strings"
	"testing"
)

func TestEveryBaseNameConstructs(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%s: empty display name", name)
		}
	}
}

func TestAliasesResolveToSamePolicy(t *testing.T) {
	cases := [][2]string{
		{"edf", "nondvs"},
		{"staticEDF", "static"},
		{"ccEDF", "cc"},
		{"laedf", "la"},
		{"fb", "feedback"},
		{"greedy", "lpshe-greedy"},
		{"LPSHE", "lpshe"},
		{" lpshe ", "lpshe"},
	}
	for _, c := range cases {
		a, errA := New(c[0])
		b, errB := New(c[1])
		if errA != nil || errB != nil {
			t.Errorf("%q/%q: %v %v", c[0], c[1], errA, errB)
			continue
		}
		if a.Name() != b.Name() {
			t.Errorf("alias %q resolves to %q, want %q (via %q)", c[0], a.Name(), b.Name(), c[1])
		}
	}
}

func TestWrappersCompose(t *testing.T) {
	p, err := New("lpshe+dual+guard")
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"lpSHE", "dual", "guard"} {
		if !strings.Contains(p.Name(), part) {
			t.Errorf("wrapped name %q missing %q", p.Name(), part)
		}
	}
}

func TestLookupErrors(t *testing.T) {
	for _, spec := range []string{"", "nope", "lpshe+bogus", "+dual"} {
		if _, err := Lookup(spec); err == nil {
			t.Errorf("Lookup(%q) should fail", spec)
		}
	}
}

func TestFactoriesReturnFreshInstances(t *testing.T) {
	mk, err := Lookup("lpshe")
	if err != nil {
		t.Fatal(err)
	}
	if mk() == mk() {
		t.Error("factory returned the same instance twice")
	}
}

func TestSpecOfInvertsDisplayNames(t *testing.T) {
	specs := append(Names(), "lpshe+dual", "lpshe+guard+crit", "cc+dual")
	for _, spec := range specs {
		p, err := New(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		back := SpecOf(p.Name())
		if back == "" {
			t.Errorf("SpecOf(%q) = \"\", want a spec", p.Name())
			continue
		}
		q, err := New(back)
		if err != nil {
			t.Errorf("SpecOf(%q) = %q which does not construct: %v", p.Name(), back, err)
			continue
		}
		if q.Name() != p.Name() {
			t.Errorf("round trip %s -> %s -> %s changed the policy", spec, p.Name(), q.Name())
		}
	}
	if SpecOf("no-such-policy") != "" {
		t.Error("SpecOf of an unknown name should be empty")
	}
}
