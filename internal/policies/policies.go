// Package policies is the canonical name → policy factory registry.
//
// Every DVS policy shipped by this module is constructible from a
// short string identifier, which is what lets the simulation daemon
// (internal/server) accept policies over the wire, cmd/dvssim select
// them from a flag, and the experiment harness farm replications out
// to remote workers by name alone.
//
// Base policy names:
//
//	nondvs, static, lpps, cc, la, dra, feedback, lpshe,
//	lpshe-greedy, lpshe-no-reclaim, lpshe-horizon8, lpshe-horizon32,
//	lpshe-rescan
//
// The canonical display names returned by sim.Policy.Name (nonDVS,
// staticEDF, lppsEDF, ccEDF, laEDF, DRA, fbEDF, lpSHE, lpSHE-greedy,
// ...) are accepted as aliases, case-insensitively.
//
// Wrapper suffixes may be appended (repeatedly) with '+':
//
//	+dual   dvs.DualLevel   two-level discrete-speed emulation
//	+guard  dvs.OverheadGuard  switch-overhead guard
//	+crit   dvs.EfficientFloor critical-speed floor (leakage)
//
// e.g. "lpshe+dual" or "lpSHE+guard". Factories return a fresh policy
// instance on every call; instances are single-run values and must
// not be shared between concurrent simulations.
package policies

import (
	"fmt"
	"sort"
	"strings"

	"dvsslack/internal/core"
	"dvsslack/internal/dvs"
	"dvsslack/internal/sim"
)

// Factory creates a fresh policy instance for one run.
type Factory func() sim.Policy

// base maps canonical identifiers to base-policy factories.
var base = map[string]Factory{
	"nondvs":           func() sim.Policy { return &dvs.NonDVS{} },
	"static":           func() sim.Policy { return &dvs.StaticEDF{} },
	"lpps":             func() sim.Policy { return &dvs.LppsEDF{} },
	"cc":               func() sim.Policy { return &dvs.CCEDF{} },
	"la":               func() sim.Policy { return &dvs.LAEDF{} },
	"dra":              func() sim.Policy { return &dvs.DRA{} },
	"feedback":         func() sim.Policy { return dvs.NewFeedbackEDF() },
	"lpshe":            func() sim.Policy { return core.NewLpSHE() },
	"lpshe-greedy":     func() sim.Policy { return core.NewLpSHEVariant(core.Greedy) },
	"lpshe-no-reclaim": func() sim.Policy { return core.NewLpSHEVariant(core.NoReclaim) },
	"lpshe-horizon8":   func() sim.Policy { return core.NewLpSHEVariant(core.Horizon8) },
	"lpshe-horizon32":  func() sim.Policy { return core.NewLpSHEVariant(core.Horizon32) },
	"lpshe-rescan":     func() sim.Policy { return core.NewLpSHEVariant(core.Rescan) },
}

// aliases maps the display names (sim.Policy.Name, lowercased) and
// historical CLI spellings onto canonical identifiers.
var aliases = map[string]string{
	"edf":       "nondvs",
	"staticedf": "static",
	"lppsedf":   "lpps",
	"ccedf":     "cc",
	"laedf":     "la",
	"fbedf":     "feedback",
	"fb":        "feedback",
	"greedy":    "lpshe-greedy",
}

// wrappers maps '+suffix' spellings to policy-wrapping constructors.
var wrappers = map[string]func(sim.Policy) sim.Policy{
	"dual":  func(p sim.Policy) sim.Policy { return dvs.NewDualLevel(p) },
	"guard": func(p sim.Policy) sim.Policy { return dvs.NewOverheadGuard(p) },
	"crit":  func(p sim.Policy) sim.Policy { return dvs.NewEfficientFloor(p) },
}

// Names returns the canonical base identifiers, sorted.
func Names() []string {
	names := make([]string, 0, len(base))
	for k := range base {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Canonical resolves any accepted spelling of a base policy to its
// canonical identifier ("" if unknown).
func canonical(name string) string {
	k := strings.ToLower(strings.TrimSpace(name))
	if a, ok := aliases[k]; ok {
		k = a
	}
	if _, ok := base[k]; ok {
		return k
	}
	return ""
}

// Lookup resolves a policy spec — a base name optionally followed by
// '+wrapper' suffixes — to a factory. The factory is safe to call
// from multiple goroutines; each call returns an independent policy.
func Lookup(spec string) (Factory, error) {
	parts := strings.Split(spec, "+")
	k := canonical(parts[0])
	if k == "" {
		return nil, fmt.Errorf("policies: unknown policy %q (known: %s)",
			parts[0], strings.Join(Names(), ", "))
	}
	mk := base[k]
	for _, w := range parts[1:] {
		wrap, ok := wrappers[strings.ToLower(strings.TrimSpace(w))]
		if !ok {
			return nil, fmt.Errorf("policies: unknown wrapper %q in %q (known: crit, dual, guard)", w, spec)
		}
		inner := mk
		mk = func() sim.Policy { return wrap(inner()) }
	}
	return mk, nil
}

// New resolves spec and constructs one policy instance.
func New(spec string) (sim.Policy, error) {
	mk, err := Lookup(spec)
	if err != nil {
		return nil, err
	}
	return mk(), nil
}

// SpecOf maps a policy display name (as reported by sim.Policy.Name,
// e.g. "lpSHE+dual") back to a spec accepted by Lookup, or "" when
// the name does not correspond to a registered policy. It is the
// inverse the experiment harness uses to ship its factory suites to a
// remote daemon by name.
func SpecOf(displayName string) string {
	parts := strings.Split(displayName, "+")
	k := canonical(parts[0])
	if k == "" {
		return ""
	}
	spec := k
	for _, w := range parts[1:] {
		if _, ok := wrappers[strings.ToLower(w)]; !ok {
			return ""
		}
		spec += "+" + strings.ToLower(w)
	}
	return spec
}
