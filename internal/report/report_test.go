package report

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	tbl := NewTable("demo", "name", "value", "count")
	tbl.AddRow("alpha", 0.12345, 3)
	tbl.AddRow("beta", 2.0, 10)
	return tbl
}

func TestTableText(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "0.1235") {
		t.Errorf("missing cells:\n%s", out)
	}
	// Integral floats print without decimals.
	if !strings.Contains(out, " 2 ") && !strings.Contains(out, " 2\n") && !strings.Contains(out, "2  ") {
		t.Errorf("integral float not compact:\n%s", out)
	}
	// Header separator present.
	if !strings.Contains(out, "----") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().WriteMarkdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "| name | value | count |") {
		t.Errorf("bad header:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Errorf("bad separator:\n%s", out)
	}
	if !strings.Contains(out, "| alpha | 0.1235 | 3 |") {
		t.Errorf("bad row:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().WriteCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if lines[0] != "name,value,count" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "alpha,0.1235,3" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "test chart",
		XLabel: "x",
		YLabel: "y",
		X:      []float64{1, 2, 3, 4},
		Series: []Series{
			{Name: "up", Y: []float64{0, 1, 2, 3}},
			{Name: "down", Y: []float64{3, 2, 1, 0}},
		},
		Height: 8,
		Width:  40,
	}
	var buf bytes.Buffer
	c.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing data markers")
	}
	if !strings.Contains(out, "(x)") {
		t.Error("missing x label")
	}
}

func TestChartEmptySeries(t *testing.T) {
	var buf bytes.Buffer
	(&Chart{X: []float64{1}, Series: []Series{{Name: "e"}}}).Write(&buf)
	if buf.Len() != 0 {
		t.Errorf("empty chart should render nothing, got %q", buf.String())
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := &Chart{
		X:      []float64{1, 2},
		Series: []Series{{Name: "flat", Y: []float64{5, 5}}},
	}
	var buf bytes.Buffer
	c.Write(&buf) // must not divide by zero
	if buf.Len() == 0 {
		t.Error("constant series should still render")
	}
}
