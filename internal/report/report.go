// Package report renders experiment output: aligned text tables,
// CSV, markdown, and ASCII line charts for the figure
// reproductions. Output is deterministic so EXPERIMENTS.md can embed
// it verbatim.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns an empty table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row, formatting each cell with %v (floats with
// four significant digits).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// WriteMarkdown renders the table as GitHub-flavored markdown.
func (t *Table) WriteMarkdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
}

// WriteCSV renders the table as CSV (cells are simple numerics and
// identifiers, so no quoting is required).
func (t *Table) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of a Chart.
type Series struct {
	Name string
	Y    []float64
}

// Chart is an ASCII line chart over a shared X axis, used to render
// the figure reproductions in terminal output.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	Height int // rows of the plot area (default 16)
	Width  int // columns of the plot area (default 72)
}

// markers assigns one rune per series, in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~', '&', '$'}

// Write renders the chart.
func (c *Chart) Write(w io.Writer) {
	height, width := c.Height, c.Width
	if height <= 0 {
		height = 16
	}
	if width <= 0 {
		width = 72
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(ymin, 1) {
		return
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little headroom keeps extreme points off the border.
	span := ymax - ymin
	ymin -= 0.02 * span
	ymax += 0.02 * span

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	n := len(c.X)
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i, y := range s.Y {
			if i >= n || math.IsNaN(y) {
				continue
			}
			col := 0
			if n > 1 {
				col = i * (width - 1) / (n - 1)
			}
			row := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	for r := 0; r < height; r++ {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		label := ""
		if r == 0 || r == height-1 || r == height/2 {
			label = fmt.Sprintf("%.3f", yv)
		}
		fmt.Fprintf(w, "%8s |%s|\n", label, grid[r])
	}
	fmt.Fprintf(w, "%8s +%s+\n", "", strings.Repeat("-", width))
	if len(c.X) > 0 {
		lo := fmt.Sprintf("%g", c.X[0])
		hi := fmt.Sprintf("%g", c.X[len(c.X)-1])
		gap := width - len(lo) - len(hi)
		if gap < 1 {
			gap = 1
		}
		fmt.Fprintf(w, "%8s  %s%s%s  (%s)\n", "", lo, strings.Repeat(" ", gap), hi, c.XLabel)
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "%8s  legend: %s\n", "", strings.Join(legend, "   "))
	if c.YLabel != "" {
		fmt.Fprintf(w, "%8s  y: %s\n", "", c.YLabel)
	}
}
