package analysis

import (
	"math"
	"sort"

	"dvsslack/internal/rtm"
)

// Fixed-priority (rate-monotonic) analysis. The paper targets
// dynamic priorities (EDF), but its simulator substrate — like
// SimDVS — also schedules fixed priorities; this file provides the
// classical companion analysis: rate/deadline-monotonic priority
// assignment, exact response-time analysis (Joseph & Pandya; Audsley
// et al.), and the Liu & Layland utilization bound.

// RateMonotonicPriorities assigns priorities by increasing period
// (shorter period = more urgent = smaller value). Ties break by task
// index. The result plugs into sim.Config.FixedPriorities.
func RateMonotonicPriorities(ts *rtm.TaskSet) []int {
	return priorityOrder(ts, func(t rtm.Task) float64 { return t.Period })
}

// DeadlineMonotonicPriorities assigns priorities by increasing
// relative deadline — optimal for constrained-deadline fixed-priority
// scheduling (Leung & Whitehead).
func DeadlineMonotonicPriorities(ts *rtm.TaskSet) []int {
	return priorityOrder(ts, func(t rtm.Task) float64 { return t.RelDeadline() })
}

func priorityOrder(ts *rtm.TaskSet, key func(rtm.Task) float64) []int {
	idx := make([]int, ts.N())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return key(ts.Tasks[idx[a]]) < key(ts.Tasks[idx[b]])
	})
	prio := make([]int, ts.N())
	for rank, task := range idx {
		prio[task] = rank
	}
	return prio
}

// ResponseTimes computes the worst-case response time of every task
// under preemptive fixed-priority scheduling with the given priority
// assignment (lower value = higher priority), by the standard
// fixed-point iteration
//
//	R = C_i + Σ_{j ∈ hp(i)} ceil(R/T_j)·C_j.
//
// The iteration for a task is abandoned (response time +Inf) when R
// exceeds the task's period — the analysis covers the common
// D ≤ T case, where a response beyond the period means the task is
// unschedulable anyway. ok reports whether every task converged with
// R_i ≤ D_i.
//
// Release jitter J_j of interfering tasks is accounted with the
// standard ceil((R+J_j)/T_j) inflation, and a task's own jitter adds
// to its response time relative to the nominal release.
func ResponseTimes(ts *rtm.TaskSet, priorities []int) (r []float64, ok bool) {
	n := ts.N()
	r = make([]float64, n)
	ok = true
	for i := 0; i < n; i++ {
		ri := respTime(ts, priorities, i)
		r[i] = ri
		if ri > ts.Tasks[i].RelDeadline()+1e-9 {
			ok = false
		}
	}
	return r, ok
}

func respTime(ts *rtm.TaskSet, priorities []int, i int) float64 {
	ti := ts.Tasks[i]
	r := ti.WCET
	for iter := 0; iter < 10000; iter++ {
		w := ti.WCET
		for j, tj := range ts.Tasks {
			if j == i || priorities[j] >= priorities[i] {
				continue
			}
			w += math.Ceil((r+tj.Jitter)/tj.Period) * tj.WCET
		}
		if math.Abs(w-r) < 1e-9 {
			return w + ti.Jitter
		}
		r = w
		if r > ti.Period {
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// RMSchedulable reports whether the task set is schedulable under
// rate-monotonic priorities on a unit-speed processor, by exact
// response-time analysis.
func RMSchedulable(ts *rtm.TaskSet) bool {
	_, ok := ResponseTimes(ts, RateMonotonicPriorities(ts))
	return ok
}

// RMUtilizationBound returns the Liu & Layland sufficient bound
// n·(2^{1/n} − 1) for n tasks.
func RMUtilizationBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}
