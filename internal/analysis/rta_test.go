package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/rtm"
)

func TestRateMonotonicPriorities(t *testing.T) {
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 30},
		rtm.Task{WCET: 1, Period: 10},
		rtm.Task{WCET: 1, Period: 20},
	)
	got := RateMonotonicPriorities(ts)
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priorities = %v, want %v", got, want)
		}
	}
}

func TestDeadlineMonotonicPriorities(t *testing.T) {
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 10, Deadline: 9},
		rtm.Task{WCET: 1, Period: 20, Deadline: 4},
	)
	got := DeadlineMonotonicPriorities(ts)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("priorities = %v, want [1 0]", got)
	}
}

func TestResponseTimesClassicExample(t *testing.T) {
	// The textbook Liu & Layland / RTA example:
	// T1 = (1, 4), T2 = (2, 6), T3 = (3, 13) under RM.
	// R1 = 1; R2 = 1 + 2 = 3; R3: 3+... iterate:
	// R3 = 3 + ceil(R/4)*1 + ceil(R/6)*2; R=3 -> 3+1+2=6 ->
	// 3+2+2=7 -> 3+2+4=9 -> 3+3+4=10 -> 3+3+4=10. R3 = 10 <= 13.
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4},
		rtm.Task{WCET: 2, Period: 6},
		rtm.Task{WCET: 3, Period: 13},
	)
	r, ok := ResponseTimes(ts, RateMonotonicPriorities(ts))
	if !ok {
		t.Fatal("set should be RM-schedulable")
	}
	want := []float64{1, 3, 10}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-9 {
			t.Errorf("R%d = %v, want %v", i+1, r[i], want[i])
		}
	}
}

func TestRMSchedulabilityBoundary(t *testing.T) {
	// U = 1 with non-harmonic periods is not RM-schedulable ...
	bad := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 3, Period: 6},
	)
	if RMSchedulable(bad) {
		t.Error("U=1 non-harmonic should fail RM")
	}
	// ... but harmonic periods schedule up to U = 1.
	harmonic := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 4, Period: 8},
	)
	if !RMSchedulable(harmonic) {
		t.Error("harmonic U=1 should pass RM")
	}
}

func TestRMUtilizationBound(t *testing.T) {
	if b := RMUtilizationBound(1); math.Abs(b-1) > 1e-12 {
		t.Errorf("bound(1) = %v, want 1", b)
	}
	if b := RMUtilizationBound(2); math.Abs(b-0.828427) > 1e-5 {
		t.Errorf("bound(2) = %v, want ~0.8284", b)
	}
	if b := RMUtilizationBound(100); b < 0.693 || b > 0.70 {
		t.Errorf("bound(100) = %v, want ~ln 2", b)
	}
	if RMUtilizationBound(0) != 0 {
		t.Error("bound(0) should be 0")
	}
}

// Property: any set below the Liu & Layland bound passes exact RTA.
func TestBoundImpliesRTA(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%6
		u := RMUtilizationBound(n) * 0.95
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		return RMSchedulable(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestResponseTimesWithJitter(t *testing.T) {
	// Interfering jitter inflates lower-priority response times.
	base := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4},
		rtm.Task{WCET: 1, Period: 10},
	)
	jittered := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4, Jitter: 3},
		rtm.Task{WCET: 1, Period: 10},
	)
	rBase, _ := ResponseTimes(base, RateMonotonicPriorities(base))
	rJit, _ := ResponseTimes(jittered, RateMonotonicPriorities(jittered))
	if rJit[1] <= rBase[1] {
		t.Errorf("jitter should inflate R2: %v vs %v", rJit[1], rBase[1])
	}
}
