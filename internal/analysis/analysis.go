// Package analysis implements classical schedulability analysis for
// the periodic task model: the EDF utilization bound, the processor
// demand criterion for constrained deadlines, synchronous busy-period
// computation, and the demand bound function itself, which is also the
// mathematical foundation of the slack-time analysis in
// internal/core.
package analysis

import (
	"math"
	"sort"

	"dvsslack/internal/rtm"
)

// DemandBound returns the synchronous demand bound function
// dbf(t) = sum_i max(0, floor((t - Di)/Ti) + 1) * Ci: the cumulative
// worst-case work of all jobs that are both released and due within
// [0, t] when every task releases its first job at time zero.
func DemandBound(ts *rtm.TaskSet, t float64) float64 {
	var d float64
	for _, task := range ts.Tasks {
		di := task.RelDeadline()
		if t < di {
			continue
		}
		n := math.Floor((t-di)/task.Period) + 1
		d += n * task.WCET
	}
	return d
}

// EDFSchedulable reports whether the task set is schedulable by
// preemptive EDF on a unit-speed processor.
//
// For implicit deadlines this is the exact utilization test U <= 1
// (Liu & Layland). For constrained deadlines it applies the processor
// demand criterion (Baruah, Rosier, Howell): dbf(t) <= t for every
// absolute deadline t up to the analysis bound
// min(hyperperiod, max(Dmax, La)) where La is the standard
// busy-period-style bound sum((Ti - Di) Ui) / (1 - U).
func EDFSchedulable(ts *rtm.TaskSet) bool {
	u := ts.Utilization()
	if u > 1+1e-12 {
		return false
	}
	implicit := true
	for _, t := range ts.Tasks {
		if t.RelDeadline() < t.Period {
			implicit = false
			break
		}
	}
	if implicit {
		return true
	}
	bound := demandCheckBound(ts, u)
	for _, t := range CheckPoints(ts, bound) {
		if DemandBound(ts, t) > t+1e-9 {
			return false
		}
	}
	return true
}

// demandCheckBound returns the time bound up to which dbf(t) <= t must
// be verified for constrained-deadline EDF schedulability.
func demandCheckBound(ts *rtm.TaskSet, u float64) float64 {
	var dmax, la float64
	for _, t := range ts.Tasks {
		dmax = math.Max(dmax, t.RelDeadline())
		la += (t.Period - t.RelDeadline()) * t.Utilization()
	}
	bound := dmax
	if u < 1 {
		bound = math.Max(dmax, la/(1-u))
	}
	if h, ok := ts.Hyperperiod(); ok && h < bound {
		bound = h
	}
	// With U == 1 and no usable La bound, fall back to one
	// hyperperiod (exact for synchronous sets) or a generous
	// multiple of the largest period.
	if u >= 1 {
		if h, ok := ts.Hyperperiod(); ok {
			bound = h
		} else {
			bound = 1000 * ts.MaxPeriod()
		}
	}
	return bound
}

// CheckPoints returns the sorted list of absolute deadlines in (0,
// bound] of the synchronous arrival pattern: the only points where
// dbf can step, hence the only points that need checking.
func CheckPoints(ts *rtm.TaskSet, bound float64) []float64 {
	var pts []float64
	for _, task := range ts.Tasks {
		d := task.RelDeadline()
		for ; d <= bound; d += task.Period {
			pts = append(pts, d)
		}
	}
	sortFloats(pts)
	return dedupFloats(pts)
}

// BusyPeriod returns the length of the synchronous processor busy
// period: the smallest t > 0 with W(t) = t where
// W(t) = sum(ceil(t/Ti) Ci), computed by fixed-point iteration. The
// second result is false when U >= 1 (the busy period may be
// unbounded); in that case the hyperperiod is returned if known.
func BusyPeriod(ts *rtm.TaskSet) (float64, bool) {
	u := ts.Utilization()
	if u >= 1 {
		if h, ok := ts.Hyperperiod(); ok {
			return h, false
		}
		return math.Inf(1), false
	}
	t := ts.TotalWCET()
	for i := 0; i < 10000; i++ {
		var w float64
		for _, task := range ts.Tasks {
			w += math.Ceil(t/task.Period) * task.WCET
		}
		if math.Abs(w-t) < 1e-9 {
			return t, true
		}
		t = w
	}
	return t, true
}

// MinConstantSpeed returns the slowest constant processor speed at
// which the task set remains EDF-schedulable, assuming every job runs
// to its WCET: for implicit deadlines this is exactly the worst-case
// utilization; for constrained deadlines it is the maximum over check
// points of dbf(t)/t.
func MinConstantSpeed(ts *rtm.TaskSet) float64 {
	u := ts.Utilization()
	implicit := true
	for _, t := range ts.Tasks {
		if t.RelDeadline() < t.Period {
			implicit = false
			break
		}
	}
	if implicit {
		return u
	}
	s := u
	bound := demandCheckBound(ts, u)
	for _, t := range CheckPoints(ts, bound) {
		if t > 0 {
			s = math.Max(s, DemandBound(ts, t)/t)
		}
	}
	return s
}

func sortFloats(v []float64) { sort.Float64s(v) }

func dedupFloats(v []float64) []float64 {
	if len(v) == 0 {
		return v
	}
	out := v[:1]
	for _, x := range v[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
