package analysis

import (
	"testing"
	"testing/quick"

	"dvsslack/internal/prng"
	"dvsslack/internal/rtm"
)

func TestQPAKnownCases(t *testing.T) {
	cases := []struct {
		name string
		ts   *rtm.TaskSet
		want bool
	}{
		{"implicit feasible", rtm.NewTaskSet("x",
			rtm.Task{WCET: 1, Period: 4},
			rtm.Task{WCET: 2, Period: 6}), true},
		{"overloaded", rtm.NewTaskSet("x",
			rtm.Task{WCET: 3, Period: 4},
			rtm.Task{WCET: 2, Period: 6}), false},
		{"constrained infeasible", rtm.NewTaskSet("x",
			rtm.Task{WCET: 2, Period: 10, Deadline: 3},
			rtm.Task{WCET: 2, Period: 10, Deadline: 3}), false},
		{"constrained feasible", rtm.NewTaskSet("x",
			rtm.Task{WCET: 1, Period: 10, Deadline: 3},
			rtm.Task{WCET: 2, Period: 10, Deadline: 3}), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := QPA(c.ts); got != c.want {
				t.Errorf("QPA = %v, want %v", got, c.want)
			}
		})
	}
}

// TestQPAMatchesCheckpointScan is the defining property: QPA and the
// exhaustive processor-demand scan agree on every random
// constrained-deadline task set.
func TestQPAMatchesCheckpointScan(t *testing.T) {
	f := func(seed uint64, nRaw, uRaw uint8) bool {
		n := 1 + int(nRaw)%8
		u := 0.3 + 0.7*float64(uRaw)/255
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
		if err != nil {
			return false
		}
		// Tighten deadlines randomly into [WCET, T].
		src := prng.New(seed ^ 0x51)
		for i := range ts.Tasks {
			task := &ts.Tasks[i]
			task.Deadline = task.WCET + src.Float64()*(task.Period-task.WCET)
		}
		return QPA(ts) == EDFSchedulable(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargestDeadlineBelow(t *testing.T) {
	ts := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4},               // deadlines 4, 8, 12...
		rtm.Task{WCET: 1, Period: 10, Deadline: 7}, // deadlines 7, 17, 27...
	)
	cases := []struct{ limit, want float64 }{
		{20, 17},
		{17, 16},
		{8, 7},
		{7, 4},
		{4, 0},
		{3, 0},
	}
	for _, c := range cases {
		if got := largestDeadlineBelow(ts, c.limit); got != c.want {
			t.Errorf("largestDeadlineBelow(%v) = %v, want %v", c.limit, got, c.want)
		}
	}
}
