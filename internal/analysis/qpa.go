package analysis

import (
	"math"

	"dvsslack/internal/rtm"
)

// QPA implements Quick Processor-demand Analysis (Zhang & Burns,
// "Schedulability analysis for real-time systems with EDF
// scheduling", 2009): an exact EDF schedulability test for
// constrained-deadline task sets that walks *backward* from the
// analysis bound, visiting only a handful of points instead of every
// absolute deadline:
//
//	t ← max deadline below the bound
//	while dbf(t) ≤ t and dbf(t) > C_min:
//	    if dbf(t) < t:  t ← dbf(t)
//	    else:           t ← largest deadline < t
//	schedulable iff dbf(t) ≤ t at loop exit
//
// It returns the same verdict as the checkpoint scan in
// EDFSchedulable (cross-checked by property test) while typically
// examining orders of magnitude fewer points — this is the test a
// production admission controller would run.
func QPA(ts *rtm.TaskSet) bool {
	u := ts.Utilization()
	if u > 1+1e-12 {
		return false
	}
	implicit := true
	var cmin float64 = math.Inf(1)
	for _, t := range ts.Tasks {
		if t.RelDeadline() < t.Period {
			implicit = false
		}
		if t.WCET < cmin {
			cmin = t.WCET
		}
	}
	if implicit {
		return true // utilization test is exact
	}
	bound := demandCheckBound(ts, u)
	t := largestDeadlineBelow(ts, bound+1e-9)
	if t <= 0 {
		return true
	}
	for {
		h := DemandBound(ts, t)
		if h > t+1e-9 {
			return false
		}
		if h <= cmin+1e-12 {
			return true
		}
		if h < t-1e-12 {
			t = h
		} else {
			t = largestDeadlineBelow(ts, t)
			if t <= 0 {
				return true
			}
		}
	}
}

// largestDeadlineBelow returns the largest absolute deadline of the
// synchronous pattern strictly below limit, or 0 if none.
func largestDeadlineBelow(ts *rtm.TaskSet, limit float64) float64 {
	var best float64
	for _, task := range ts.Tasks {
		d := task.RelDeadline()
		if d >= limit {
			continue
		}
		// Last release whose deadline stays below limit.
		k := math.Floor((limit - d - 1e-12) / task.Period)
		if k < 0 {
			k = 0
		}
		if cand := d + k*task.Period; cand < limit && cand > best {
			best = cand
		}
	}
	return best
}
