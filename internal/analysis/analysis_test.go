package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"dvsslack/internal/rtm"
)

func twoTask() *rtm.TaskSet {
	return rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 4},
		rtm.Task{WCET: 2, Period: 6},
	)
}

func TestDemandBound(t *testing.T) {
	ts := twoTask()
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 0},
		{3.9, 0},
		{4, 1},   // first deadline of T1
		{6, 3},   // plus first deadline of T2
		{8, 4},   // second T1 deadline
		{12, 7},  // T1 x3 + T2 x2
		{24, 14}, // one hyperperiod: T1 x6 + T2 x4
	}
	for _, c := range cases {
		if got := DemandBound(ts, c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("dbf(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestDemandBoundConstrainedDeadline(t *testing.T) {
	ts := rtm.NewTaskSet("x", rtm.Task{WCET: 1, Period: 10, Deadline: 3})
	if got := DemandBound(ts, 2.9); got != 0 {
		t.Errorf("dbf(2.9) = %v, want 0", got)
	}
	if got := DemandBound(ts, 3); got != 1 {
		t.Errorf("dbf(3) = %v, want 1", got)
	}
	if got := DemandBound(ts, 13); got != 2 {
		t.Errorf("dbf(13) = %v, want 2", got)
	}
}

func TestEDFSchedulableImplicit(t *testing.T) {
	if !EDFSchedulable(twoTask()) {
		t.Error("U = 7/12 should be schedulable")
	}
	over := rtm.NewTaskSet("x",
		rtm.Task{WCET: 3, Period: 4},
		rtm.Task{WCET: 2, Period: 6},
	)
	if EDFSchedulable(over) {
		t.Error("U > 1 should not be schedulable")
	}
	full := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 4},
		rtm.Task{WCET: 3, Period: 6},
	)
	if !EDFSchedulable(full) {
		t.Error("U = 1 implicit deadlines should be schedulable")
	}
}

func TestEDFSchedulableConstrained(t *testing.T) {
	// Classic infeasible constrained case despite U < 1:
	// two tasks both needing completion within tight deadlines.
	bad := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 10, Deadline: 3},
		rtm.Task{WCET: 2, Period: 10, Deadline: 3},
	)
	if EDFSchedulable(bad) {
		t.Error("dbf(3) = 4 > 3 should be unschedulable")
	}
	good := rtm.NewTaskSet("x",
		rtm.Task{WCET: 1, Period: 10, Deadline: 3},
		rtm.Task{WCET: 2, Period: 10, Deadline: 3},
	)
	if !EDFSchedulable(good) {
		t.Error("dbf(3) = 3 <= 3 should be schedulable")
	}
}

func TestBusyPeriod(t *testing.T) {
	ts := twoTask() // W(t): t=3 -> 1+2=3 fixed point
	bp, ok := BusyPeriod(ts)
	if !ok {
		t.Fatal("busy period should converge for U < 1")
	}
	if math.Abs(bp-3) > 1e-9 {
		t.Errorf("busy period = %v, want 3", bp)
	}
	full := rtm.NewTaskSet("x", rtm.Task{WCET: 4, Period: 4})
	if _, ok := BusyPeriod(full); ok {
		t.Error("busy period at U = 1 should report not-ok")
	}
}

func TestMinConstantSpeed(t *testing.T) {
	ts := twoTask()
	if s := MinConstantSpeed(ts); math.Abs(s-ts.Utilization()) > 1e-12 {
		t.Errorf("implicit-deadline min speed = %v, want U = %v", s, ts.Utilization())
	}
	constrained := rtm.NewTaskSet("x",
		rtm.Task{WCET: 2, Period: 10, Deadline: 4},
	)
	// dbf(4)/4 = 0.5 > U = 0.2.
	if s := MinConstantSpeed(constrained); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("constrained min speed = %v, want 0.5", s)
	}
}

func TestCheckPoints(t *testing.T) {
	ts := twoTask()
	pts := CheckPoints(ts, 12)
	want := []float64{4, 6, 8, 12}
	if len(pts) != len(want) {
		t.Fatalf("checkpoints = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("checkpoints = %v, want %v", pts, want)
		}
	}
}

// Property: the demand bound never exceeds utilization*t + sum(C),
// and EDF schedulability at U <= 1 holds for implicit deadlines.
func TestDemandBoundEnvelope(t *testing.T) {
	f := func(seed uint64, x uint16) bool {
		ts := rtm.MustGenerate(rtm.DefaultGenConfig(4, 0.8, seed))
		tt := float64(x) / 16
		dbf := DemandBound(ts, tt)
		env := ts.Utilization()*tt + ts.TotalWCET()
		return dbf <= env+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: dbf is monotone non-decreasing in t.
func TestDemandBoundMonotone(t *testing.T) {
	ts := rtm.MustGenerate(rtm.DefaultGenConfig(6, 0.9, 5))
	prev := 0.0
	for x := 0.0; x < 500; x += 0.5 {
		d := DemandBound(ts, x)
		if d < prev-1e-12 {
			t.Fatalf("dbf decreased at %v: %v < %v", x, d, prev)
		}
		prev = d
	}
}
