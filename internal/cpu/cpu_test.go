package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCubicModel(t *testing.T) {
	m := CubicModel{}
	if m.Power(1) != 1 {
		t.Error("P(1) must be 1")
	}
	if got := m.Power(0.5); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("P(0.5) = %v, want 0.125", got)
	}
	if m.Voltage(0.3) != 0.3 {
		t.Error("cubic voltage should equal speed")
	}
}

func TestAlphaModel(t *testing.T) {
	m := DefaultAlphaModel()
	if got := m.Power(1); math.Abs(got-1) > 1e-9 {
		t.Errorf("P(1) = %v, want 1", got)
	}
	if v := m.Voltage(1); math.Abs(v-1) > 1e-9 {
		t.Errorf("V(1) = %v, want 1", v)
	}
	// Voltage inversion: speedAt(Voltage(s)) == s.
	for _, s := range []float64{0.05, 0.2, 0.5, 0.8, 0.99} {
		v := m.Voltage(s)
		if v <= m.Vt || v > 1 {
			t.Errorf("V(%v) = %v out of (Vt, 1]", s, v)
		}
		back := m.speedAt(v)
		if math.Abs(back-s) > 1e-9 {
			t.Errorf("speedAt(V(%v)) = %v", s, back)
		}
	}
	// Alpha-power penalizes low speeds less than linear voltage
	// scaling: at a given speed, voltage is higher than under the
	// cubic model, so power is too.
	if m.Power(0.3) <= (CubicModel{}).Power(0.3) {
		t.Error("alpha-power model should draw more power than cubic at low speed")
	}
}

func TestPowerModelsMonotone(t *testing.T) {
	models := []PowerModel{CubicModel{}, DefaultAlphaModel(), XScale().Model, Crusoe().Model}
	for _, m := range models {
		prev := -1.0
		for s := 0.05; s <= 1.0001; s += 0.01 {
			p := m.Power(s)
			if p < prev-1e-12 {
				t.Errorf("%s: power not monotone at s=%v", m.Name(), s)
				break
			}
			prev = p
		}
	}
}

func TestTableModelValidation(t *testing.T) {
	if _, err := NewTableModel("x", nil); err == nil {
		t.Error("empty table should fail")
	}
	if _, err := NewTableModel("x", []Level{{Speed: 0.5, Voltage: 1}}); err == nil {
		t.Error("top speed != 1 should fail")
	}
	if _, err := NewTableModel("x", []Level{{Speed: 0.5, Voltage: 2}, {Speed: 0.4, Voltage: 3}, {Speed: 1, Voltage: 5}}); err == nil {
		t.Error("non-increasing speeds should fail")
	}
	if _, err := NewTableModel("x", []Level{{Speed: 1, Voltage: 0}}); err == nil {
		t.Error("zero voltage should fail")
	}
}

func TestTableModelInterpolation(t *testing.T) {
	m, err := NewTableModel("x", []Level{
		{Speed: 0.5, Voltage: 2},
		{Speed: 1.0, Voltage: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Normalized: V(0.5)=0.5, V(1)=1, V(0.75)=0.75 by interpolation.
	if v := m.Voltage(0.75); math.Abs(v-0.75) > 1e-12 {
		t.Errorf("V(0.75) = %v, want 0.75", v)
	}
	if v := m.Voltage(0.1); v != 0.5 {
		t.Errorf("V below lowest level = %v, want clamped 0.5", v)
	}
	if p := m.Power(1); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(1) = %v, want 1", p)
	}
}

func TestWithLevels(t *testing.T) {
	p, err := WithLevels(0.75, 0.25, 0.5, 1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	levels := p.Levels()
	want := []float64{0.25, 0.5, 0.75, 1.0}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	if !p.Discrete() {
		t.Error("Discrete() should be true")
	}
	if _, err := WithLevels(0.5); err == nil {
		t.Error("missing top level 1 should fail")
	}
	if _, err := WithLevels(0, 1); err == nil {
		t.Error("zero level should fail")
	}
	if _, err := WithLevels(); err == nil {
		t.Error("no levels should fail")
	}
}

func TestClampContinuous(t *testing.T) {
	p := Continuous(0.2)
	cases := [][2]float64{{0, 0.2}, {0.1, 0.2}, {0.5, 0.5}, {1, 1}, {2, 1}}
	for _, c := range cases {
		if got := p.Clamp(c[0]); got != c[1] {
			t.Errorf("Clamp(%v) = %v, want %v", c[0], got, c[1])
		}
	}
}

func TestClampDiscreteRoundsUp(t *testing.T) {
	p, _ := WithLevels(0.25, 0.5, 0.75, 1)
	cases := [][2]float64{
		{0.1, 0.25}, {0.25, 0.25}, {0.26, 0.5}, {0.5, 0.5},
		{0.51, 0.75}, {0.99, 1}, {1, 1}, {1.5, 1},
	}
	for _, c := range cases {
		if got := p.Clamp(c[0]); got != c[1] {
			t.Errorf("Clamp(%v) = %v, want %v", c[0], got, c[1])
		}
	}
}

// Property: Clamp never returns a slower speed than requested (within
// the usable range), which is what preserves deadline guarantees.
func TestClampNeverSlower(t *testing.T) {
	procs := []*Processor{Continuous(0.1), UniformLevels(4), XScale(), Crusoe()}
	f := func(raw uint16) bool {
		s := float64(raw) / 65535
		for _, p := range procs {
			c := p.Clamp(s)
			if c < math.Min(s, 1)-1e-12 || c <= 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwitchEnergy(t *testing.T) {
	p := Continuous(0.1)
	p.SwitchEnergyCoeff = 2
	if e := p.SwitchEnergy(0.5, 0.5); e != 0 {
		t.Errorf("no-op switch energy = %v", e)
	}
	// Cubic: V = s, |0.25 - 1| * 2 = 1.5.
	if e := p.SwitchEnergy(0.5, 1); math.Abs(e-1.5) > 1e-12 {
		t.Errorf("switch energy = %v, want 1.5", e)
	}
	// Symmetric.
	if p.SwitchEnergy(0.5, 1) != p.SwitchEnergy(1, 0.5) {
		t.Error("switch energy should be symmetric")
	}
}

func TestProcessorValidate(t *testing.T) {
	good := Continuous(0.1)
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := Continuous(-0.1)
	if err := bad.Validate(); err == nil {
		t.Error("negative SMin should fail")
	}
	bad2 := Continuous(0.1)
	bad2.SwitchTime = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative switch time should fail")
	}
}

func TestPresets(t *testing.T) {
	for name, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if got := p.Power(1); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: P(1) = %v, want 1", name, got)
		}
	}
	if n := len(XScale().Levels()); n != 5 {
		t.Errorf("xscale should have 5 levels, has %d", n)
	}
	if n := len(UniformLevels(8).Levels()); n != 8 {
		t.Errorf("uniform8 should have 8 levels, has %d", n)
	}
	if !SA1100().Discrete() == false && SA1100().Discrete() {
		t.Error("sa1100 should be continuous")
	}
}

func TestProcessorName(t *testing.T) {
	if XScale().Name() == "" || Continuous(0.1).Name() == "" {
		t.Error("Name() should be non-empty")
	}
}
