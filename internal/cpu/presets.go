package cpu

// Named processor presets modeled after the variable-voltage parts
// the early-2000s DVS literature evaluated on. Frequencies and
// voltages are normalized to the top operating point; the absolute
// values in the comments are the published nominal figures the ratios
// were taken from.

// XScale returns a processor with the five operating points of the
// Intel XScale 80200 family (150/400/600/800/1000 MHz at
// 0.75/1.0/1.3/1.6/1.8 V), as used by many DVS evaluations.
func XScale() *Processor {
	model, err := NewTableModel("xscale", []Level{
		{Speed: 0.15, Voltage: 0.75 / 1.8},
		{Speed: 0.40, Voltage: 1.0 / 1.8},
		{Speed: 0.60, Voltage: 1.3 / 1.8},
		{Speed: 0.80, Voltage: 1.6 / 1.8},
		{Speed: 1.00, Voltage: 1.0},
	})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	p, err := WithLevels(0.15, 0.40, 0.60, 0.80, 1.00)
	if err != nil {
		panic(err)
	}
	p.Model = model
	return p
}

// Crusoe returns a processor with the Transmeta Crusoe TM5400-like
// level set (300-667 MHz at 1.2-1.6 V, five points).
func Crusoe() *Processor {
	model, err := NewTableModel("crusoe", []Level{
		{Speed: 300.0 / 667, Voltage: 1.2 / 1.6},
		{Speed: 400.0 / 667, Voltage: 1.225 / 1.6},
		{Speed: 500.0 / 667, Voltage: 1.35 / 1.6},
		{Speed: 600.0 / 667, Voltage: 1.5 / 1.6},
		{Speed: 1.0, Voltage: 1.0},
	})
	if err != nil {
		panic(err)
	}
	p, err := WithLevels(300.0/667, 400.0/667, 500.0/667, 600.0/667, 1.0)
	if err != nil {
		panic(err)
	}
	p.Model = model
	return p
}

// SA1100 returns a StrongARM SA-1100-like processor: continuously
// variable clock between 59 and 206 MHz (normalized 0.287..1) with a
// near-linear voltage range, modeled with the alpha-power law.
func SA1100() *Processor {
	p := Continuous(59.0 / 206)
	p.Model = DefaultAlphaModel()
	return p
}

// UniformLevels returns a discrete processor with n equally spaced
// levels 1/n, 2/n, ..., 1 and the cubic power model, the synthetic
// level set used by the discrete-speed sensitivity experiment.
func UniformLevels(n int) *Processor {
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = float64(i+1) / float64(n)
	}
	p, err := WithLevels(speeds...)
	if err != nil {
		panic(err) // construction is valid for any n >= 1
	}
	return p
}

// Presets returns the named processor models used by the experiments.
func Presets() map[string]*Processor {
	return map[string]*Processor{
		"continuous": Continuous(0.1),
		"xscale":     XScale(),
		"crusoe":     Crusoe(),
		"sa1100":     SA1100(),
		"uniform4":   UniformLevels(4),
		"uniform8":   UniformLevels(8),
	}
}
