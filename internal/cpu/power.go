// Package cpu models the variable-voltage processor: normalized
// speed/voltage pairs, continuous and discrete frequency sets modeled
// after the processors the DVS literature of the paper's era
// evaluated on (Intel XScale-, Transmeta Crusoe-, StrongARM
// SA-1100-like level tables), CMOS dynamic power, idle power, and
// speed-transition overhead.
//
// Speeds are normalized to the maximum frequency, s = f/f_max in
// (0, 1]. Power is normalized so that P(1) = 1 for every model, which
// makes the "normalized energy" metric of the evaluation directly
// comparable across models: the energy of running at full speed for
// one time unit is one energy unit.
package cpu

import (
	"fmt"
	"math"
)

// PowerModel maps a normalized speed to normalized dynamic power
// consumption. Implementations must be monotonically increasing and
// normalized so Power(1) == 1.
type PowerModel interface {
	// Power returns the dynamic power drawn while executing at
	// speed s in (0, 1].
	Power(s float64) float64
	// Voltage returns the supply voltage (normalized to V(1) == 1)
	// required to sustain speed s; used by the transition-energy
	// overhead model.
	Voltage(s float64) float64
	// Name identifies the model in reports.
	Name() string
}

// CubicModel is the canonical first-order CMOS model: with supply
// voltage proportional to frequency (V ∝ f), dynamic power
// P = C·V²·f collapses to P(s) = s³. This is the model most
// inter-task DVS papers (including the paper family reproduced here)
// use for normalized-energy results.
type CubicModel struct{}

// Power implements PowerModel.
func (CubicModel) Power(s float64) float64 { return s * s * s }

// Voltage implements PowerModel.
func (CubicModel) Voltage(s float64) float64 { return s }

// Name implements PowerModel.
func (CubicModel) Name() string { return "cubic" }

// AlphaModel refines the voltage/frequency relation with the
// alpha-power MOSFET law f ∝ (V - Vt)^α / V: at low voltages the
// frequency falls off faster than linearly, so low speeds are less
// rewarding than the cubic model predicts. Vt is the threshold
// voltage as a fraction of the nominal supply (typical 0.2-0.4) and
// Alpha the velocity-saturation exponent (typical 1.2-2.0).
type AlphaModel struct {
	Vt    float64 // threshold voltage / nominal supply voltage
	Alpha float64 // velocity saturation index
}

// DefaultAlphaModel returns an AlphaModel with Vt = 0.3, α = 1.5,
// representative of the 180 nm-era parts in the paper's evaluations.
func DefaultAlphaModel() AlphaModel { return AlphaModel{Vt: 0.3, Alpha: 1.5} }

// speedAt returns the normalized speed sustained at normalized
// voltage v, i.e. f(v)/f(1).
func (m AlphaModel) speedAt(v float64) float64 {
	if v <= m.Vt {
		return 0
	}
	num := math.Pow(v-m.Vt, m.Alpha) / v
	den := math.Pow(1-m.Vt, m.Alpha) // / 1
	return num / den
}

// Voltage implements PowerModel by inverting the alpha-power law with
// bisection (the law is monotone in v on (Vt, 1]).
func (m AlphaModel) Voltage(s float64) float64 {
	if s >= 1 {
		return 1
	}
	if s <= 0 {
		return m.Vt
	}
	lo, hi := m.Vt, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.speedAt(mid) < s {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Power implements PowerModel: P = s·V(s)², normalized to P(1) = 1.
func (m AlphaModel) Power(s float64) float64 {
	v := m.Voltage(s)
	return s * v * v
}

// Name implements PowerModel.
func (m AlphaModel) Name() string { return fmt.Sprintf("alpha(Vt=%g,a=%g)", m.Vt, m.Alpha) }

// Level is one operating point of a discrete-voltage processor.
type Level struct {
	Speed   float64 // f/f_max in (0, 1]
	Voltage float64 // V/V_max in (0, 1]
}

// TableModel derives power from an explicit table of operating
// points, interpolating voltage linearly between levels for
// continuous-speed use. P(s) = s·V(s)²/(1·V(1)²).
type TableModel struct {
	levels []Level // ascending by speed; last entry must be {1, 1}-normalized
	name   string
}

// NewTableModel builds a TableModel from levels, which must be sorted
// by increasing speed, end at full speed, and have positive voltages.
// Voltages are renormalized so the top level has voltage 1.
func NewTableModel(name string, levels []Level) (*TableModel, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cpu: table model %q needs at least one level", name)
	}
	norm := make([]Level, len(levels))
	copy(norm, levels)
	top := norm[len(norm)-1]
	if top.Speed != 1 {
		return nil, fmt.Errorf("cpu: table model %q: top level speed must be 1, got %v", name, top.Speed)
	}
	if top.Voltage <= 0 {
		return nil, fmt.Errorf("cpu: table model %q: top level voltage must be positive", name)
	}
	for i := range norm {
		if norm[i].Speed <= 0 || norm[i].Speed > 1 {
			return nil, fmt.Errorf("cpu: table model %q: level %d speed %v out of (0,1]", name, i, norm[i].Speed)
		}
		if i > 0 && norm[i].Speed <= norm[i-1].Speed {
			return nil, fmt.Errorf("cpu: table model %q: levels must be strictly increasing in speed", name)
		}
		norm[i].Voltage /= top.Voltage
		if norm[i].Voltage <= 0 {
			return nil, fmt.Errorf("cpu: table model %q: level %d voltage must be positive", name, i)
		}
	}
	return &TableModel{levels: norm, name: name}, nil
}

// Levels returns the (normalized) operating points.
func (m *TableModel) Levels() []Level { return append([]Level(nil), m.levels...) }

// Voltage implements PowerModel with linear interpolation between
// table entries; below the lowest level the lowest voltage is used.
func (m *TableModel) Voltage(s float64) float64 {
	if s <= m.levels[0].Speed {
		return m.levels[0].Voltage
	}
	for i := 1; i < len(m.levels); i++ {
		if s <= m.levels[i].Speed {
			lo, hi := m.levels[i-1], m.levels[i]
			frac := (s - lo.Speed) / (hi.Speed - lo.Speed)
			return lo.Voltage + frac*(hi.Voltage-lo.Voltage)
		}
	}
	return m.levels[len(m.levels)-1].Voltage
}

// Power implements PowerModel.
func (m *TableModel) Power(s float64) float64 {
	v := m.Voltage(s)
	return s * v * v
}

// Name implements PowerModel.
func (m *TableModel) Name() string { return m.name }
