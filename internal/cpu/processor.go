package cpu

import (
	"fmt"
	"math"
	"sort"
)

// Processor describes the variable-voltage CPU a simulation runs on.
//
// The zero value is not useful; construct with Continuous,
// WithLevels, or one of the named presets, then adjust the public
// fields. All methods are safe for concurrent read-only use.
type Processor struct {
	// Model supplies the power/voltage curves. Defaults to
	// CubicModel via the constructors.
	Model PowerModel

	// SMin is the lowest usable speed. Policies never request less;
	// discrete processors additionally round requests up to a level.
	SMin float64

	// IdlePower is the normalized power drawn while the processor
	// has no work (clock-gated but not off). The paper family
	// typically uses a small constant, here defaulting to 0.05.
	IdlePower float64

	// SwitchTime is the wall-clock duration of one speed/voltage
	// transition, during which no work is performed. Zero models
	// the overhead-free case of the main experiments.
	SwitchTime float64

	// SwitchEnergyCoeff scales the transition energy
	// E = coeff * |V1² - V2²| (the capacitive model of Burd's
	// thesis). Zero disables transition energy.
	SwitchEnergyCoeff float64

	// LeakagePower is static power drawn whenever the processor is
	// powered (busy at any speed, or idle but awake), on top of the
	// dynamic model. Non-zero leakage creates a *critical speed*
	// below which slowing down wastes energy; see CriticalSpeed.
	LeakagePower float64

	// SleepEnabled turns on the deep-sleep state: during an idle
	// interval long enough to amortize WakeEnergy (see
	// BreakEvenIdle) the simulator powers down to SleepPower instead
	// of idling awake. Off by default, preserving the paper's
	// always-powered model.
	SleepEnabled bool

	// SleepPower is the power drawn in the deep-sleep state (no
	// leakage, clocks off).
	SleepPower float64

	// WakeEnergy is the energy cost of one sleep/wake cycle.
	WakeEnergy float64

	// levels, when non-empty, lists the discrete operating speeds in
	// increasing order; empty means continuously variable speed.
	levels []float64
}

// Continuous returns a continuously variable processor with the given
// minimum speed and the cubic power model.
func Continuous(smin float64) *Processor {
	return &Processor{Model: CubicModel{}, SMin: smin, IdlePower: DefaultIdlePower}
}

// DefaultIdlePower is the normalized idle power used by the
// evaluation defaults.
const DefaultIdlePower = 0.05

// WithLevels returns a discrete processor restricted to the given
// speeds (ascending or not; they are sorted and deduplicated). The
// largest level must be 1. The cubic power model is used unless the
// caller replaces Model.
func WithLevels(speeds ...float64) (*Processor, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("cpu: WithLevels needs at least one speed")
	}
	s := append([]float64(nil), speeds...)
	sort.Float64s(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	for _, v := range out {
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("cpu: level %v out of (0,1]", v)
		}
	}
	if out[len(out)-1] != 1 {
		return nil, fmt.Errorf("cpu: highest level must be 1, got %v", out[len(out)-1])
	}
	return &Processor{
		Model:     CubicModel{},
		SMin:      out[0],
		IdlePower: DefaultIdlePower,
		levels:    out,
	}, nil
}

// Discrete reports whether the processor is restricted to a level set.
func (p *Processor) Discrete() bool { return len(p.levels) > 0 }

// Levels returns a copy of the discrete speed levels (nil for a
// continuous processor).
func (p *Processor) Levels() []float64 {
	if len(p.levels) == 0 {
		return nil
	}
	return append([]float64(nil), p.levels...)
}

// Clamp maps a requested speed to the nearest usable speed that is
// *no slower* than requested: continuous processors clamp into
// [SMin, 1]; discrete processors round up to the next level.
// Rounding up (never down) is what preserves the hard deadline
// guarantee of every policy in this library.
func (p *Processor) Clamp(s float64) float64 {
	if s < p.SMin {
		s = p.SMin
	}
	if s > 1 {
		s = 1
	}
	if len(p.levels) == 0 {
		return s
	}
	i := sort.SearchFloat64s(p.levels, s)
	if i == len(p.levels) {
		return 1
	}
	return p.levels[i]
}

// Power returns the busy power at speed s using the configured model
// (CubicModel when Model is nil).
func (p *Processor) Power(s float64) float64 {
	if p.Model == nil {
		return CubicModel{}.Power(s)
	}
	return p.Model.Power(s)
}

// Voltage returns the supply voltage for speed s.
func (p *Processor) Voltage(s float64) float64 {
	if p.Model == nil {
		return CubicModel{}.Voltage(s)
	}
	return p.Model.Voltage(s)
}

// BusyPower returns the total power while executing at speed s:
// dynamic model power plus leakage.
func (p *Processor) BusyPower(s float64) float64 { return p.Power(s) + p.LeakagePower }

// AwakeIdlePower returns the power drawn while idle but not asleep.
func (p *Processor) AwakeIdlePower() float64 { return p.IdlePower + p.LeakagePower }

// CanSleep reports whether the deep-sleep state is enabled and
// actually saves power over idling awake.
func (p *Processor) CanSleep() bool {
	return p.SleepEnabled && p.SleepPower < p.AwakeIdlePower()
}

// BreakEvenIdle returns the idle-interval length above which entering
// deep sleep (paying WakeEnergy) beats idling awake:
//
//	WakeEnergy + SleepPower·t < AwakeIdlePower·t.
//
// +Inf when sleep never pays off.
func (p *Processor) BreakEvenIdle() float64 {
	saving := p.AwakeIdlePower() - p.SleepPower
	if saving <= 0 {
		return math.Inf(1)
	}
	return p.WakeEnergy / saving
}

// CriticalSpeed returns the energy-efficient minimum speed: the speed
// minimizing energy per unit of work, (Power(s) + LeakagePower)/s,
// over the usable range. Below it, stretching work further *costs*
// energy (the leakage integrates over the longer runtime faster than
// the dynamic term shrinks). With zero leakage this is simply the
// lowest usable speed. The result is a usable speed (clamped, so a
// discrete processor returns one of its levels).
func (p *Processor) CriticalSpeed() float64 {
	lo := p.Clamp(0)
	if p.LeakagePower <= 0 {
		return lo
	}
	// The objective is unimodal for the shipped (convex, increasing)
	// models; sample densely and refine with the clamp.
	best, bestCost := lo, math.Inf(1)
	for s := lo; s <= 1.0001; s += 0.001 {
		sp := p.Clamp(s)
		if cost := p.BusyPower(sp) / sp; cost < bestCost-1e-15 {
			best, bestCost = sp, cost
		}
	}
	return best
}

// SwitchEnergy returns the energy cost of a transition between two
// speeds: SwitchEnergyCoeff * |V(from)² - V(to)²|.
func (p *Processor) SwitchEnergy(from, to float64) float64 {
	if p.SwitchEnergyCoeff == 0 || from == to {
		return 0
	}
	v1, v2 := p.Voltage(from), p.Voltage(to)
	return p.SwitchEnergyCoeff * math.Abs(v1*v1-v2*v2)
}

// Validate reports configuration errors.
func (p *Processor) Validate() error {
	switch {
	case p.SMin < 0 || p.SMin > 1:
		return fmt.Errorf("cpu: SMin %v out of [0,1]", p.SMin)
	case p.IdlePower < 0:
		return fmt.Errorf("cpu: negative idle power %v", p.IdlePower)
	case p.SwitchTime < 0:
		return fmt.Errorf("cpu: negative switch time %v", p.SwitchTime)
	case p.SwitchEnergyCoeff < 0:
		return fmt.Errorf("cpu: negative switch energy coefficient %v", p.SwitchEnergyCoeff)
	case p.LeakagePower < 0:
		return fmt.Errorf("cpu: negative leakage power %v", p.LeakagePower)
	case p.SleepPower < 0:
		return fmt.Errorf("cpu: negative sleep power %v", p.SleepPower)
	case p.WakeEnergy < 0:
		return fmt.Errorf("cpu: negative wake energy %v", p.WakeEnergy)
	}
	for _, l := range p.levels {
		if l < p.SMin-1e-12 {
			return fmt.Errorf("cpu: level %v below SMin %v", l, p.SMin)
		}
	}
	return nil
}

// Name returns a short description for reports.
func (p *Processor) Name() string {
	model := "cubic"
	if p.Model != nil {
		model = p.Model.Name()
	}
	if p.Discrete() {
		return fmt.Sprintf("discrete(%d levels, %s)", len(p.levels), model)
	}
	return fmt.Sprintf("continuous(smin=%g, %s)", p.SMin, model)
}
