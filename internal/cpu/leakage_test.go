package cpu

import (
	"math"
	"testing"
)

func TestBusyPowerIncludesLeakage(t *testing.T) {
	p := Continuous(0.1)
	p.LeakagePower = 0.07
	if got := p.BusyPower(1); math.Abs(got-1.07) > 1e-12 {
		t.Errorf("BusyPower(1) = %v, want 1.07", got)
	}
	if got := p.AwakeIdlePower(); math.Abs(got-(DefaultIdlePower+0.07)) > 1e-12 {
		t.Errorf("AwakeIdlePower = %v", got)
	}
}

func TestCriticalSpeedZeroLeakage(t *testing.T) {
	p := Continuous(0.1)
	if s := p.CriticalSpeed(); s != 0.1 {
		t.Errorf("critical speed without leakage = %v, want SMin", s)
	}
}

func TestCriticalSpeedCubicLeakage(t *testing.T) {
	// Minimize (s³ + k)/s = s² + k/s: derivative 2s − k/s² = 0 →
	// s_crit = (k/2)^(1/3). For k = 0.25: s_crit = 0.5.
	p := Continuous(0.05)
	p.LeakagePower = 0.25
	want := math.Cbrt(0.25 / 2)
	if s := p.CriticalSpeed(); math.Abs(s-want) > 0.002 {
		t.Errorf("critical speed = %v, want %v", s, want)
	}
}

func TestCriticalSpeedDiscreteReturnsLevel(t *testing.T) {
	p, err := WithLevels(0.25, 0.5, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.LeakagePower = 0.25 // continuous optimum 0.5: exactly a level
	if s := p.CriticalSpeed(); s != 0.5 {
		t.Errorf("critical speed = %v, want level 0.5", s)
	}
}

func TestBreakEvenIdle(t *testing.T) {
	p := Continuous(0.1)
	p.SleepEnabled = true
	p.SleepPower = 0.01
	p.WakeEnergy = 0.2
	// Saving rate 0.05 − 0.01 = 0.04 → break-even 5.
	if b := p.BreakEvenIdle(); math.Abs(b-5) > 1e-12 {
		t.Errorf("break-even = %v, want 5", b)
	}
	if !p.CanSleep() {
		t.Error("CanSleep should be true")
	}
	p.SleepPower = 1 // worse than idling
	if p.CanSleep() {
		t.Error("CanSleep should be false when sleep draws more")
	}
	if !math.IsInf(p.BreakEvenIdle(), 1) {
		t.Error("break-even should be +Inf when sleep never pays")
	}
}

func TestSleepDisabledByDefault(t *testing.T) {
	p := Continuous(0.1)
	if p.CanSleep() {
		t.Error("sleep must be off unless explicitly enabled")
	}
}

func TestValidateLeakageFields(t *testing.T) {
	for _, mut := range []func(*Processor){
		func(p *Processor) { p.LeakagePower = -1 },
		func(p *Processor) { p.SleepPower = -1 },
		func(p *Processor) { p.WakeEnergy = -1 },
	} {
		p := Continuous(0.1)
		mut(p)
		if err := p.Validate(); err == nil {
			t.Error("negative power field should fail validation")
		}
	}
}
