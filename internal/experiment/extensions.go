package experiment

import (
	"fmt"

	"dvsslack/internal/core"
	"dvsslack/internal/dvs"
	"dvsslack/internal/par"
	"dvsslack/internal/report"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// The experiments in this file extend the paper's evaluation (they
// have no counterpart figure in the original): F9 stresses the
// release-jitter robustness unique to the slack-analysis guarantee,
// and F10 sweeps the workload *shape* at a fixed mean to show that
// the savings depend on where the actual execution times fall, not
// just their average.

// Fig9JitterRobustness measures normalized energy of lpSHE and the
// non-DVS reference as release jitter grows from 0 to 90% of each
// period (U = 0.7, n = 8). The guarantee columns count deadline
// misses: lpSHE must stay at zero at every jitter level, while the
// worst-case-utilization pacer (staticEDF's speed, run open-loop) is
// included to show that utilization pacing alone loses the hard
// guarantee under arrival bunching.
func Fig9JitterRobustness(opts Options) (*Report, error) {
	r := newReport("f9", "F9: release-jitter robustness (extension)",
		"n=8 tasks, U=0.7, AET/WCET ~ U[0.5,1]; jitter as fraction of each period")
	fracs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9}
	if opts.Quick {
		fracs = []float64{0, 0.5, 0.9}
	}
	tbl := report.NewTable(r.Title,
		"jitter_frac", "lpSHE", "lpSHE_misses", "ccEDF", "ccEDF_misses", "upacer_misses")
	chart := &report.Chart{
		Title:  r.Title,
		XLabel: "jitter fraction of period",
		YLabel: "normalized energy (non-DVS = 1)",
		X:      fracs,
	}
	// One cell per (jitter fraction, seed): four simulations sharing a
	// task set. Cells fan out over the pool; the per-fraction means
	// accumulate afterwards in seed order, exactly as the serial loop
	// did, so the report bytes do not depend on Workers.
	type f9Cell struct {
		lp, cc        float64
		lpM, ccM, upM int
	}
	ns := opts.seeds()
	cells := make([]f9Cell, len(fracs)*ns)
	perr := par.ForEach(opts.workers(), len(cells), func(k int) error {
		frac := fracs[k/ns]
		seed := opts.Seed0 + uint64(k%ns)*131 + 5
		base, err := rtm.Generate(rtm.DefaultGenConfig(8, 0.7, seed))
		if err != nil {
			return err
		}
		ts := rtm.NewTaskSet(base.Name, base.Tasks...)
		for i := range ts.Tasks {
			ts.Tasks[i].Jitter = frac * ts.Tasks[i].Period
		}
		gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: seed}
		run := func(p sim.Policy) (sim.Result, error) {
			return sim.Run(sim.Config{
				TaskSet: ts, Processor: defaultProcessor(), Policy: p,
				Workload: gen, JitterSeed: seed ^ 0x77,
			})
		}
		ref, err := run(&dvs.NonDVS{})
		if err != nil {
			return err
		}
		lp, err := run(core.NewLpSHE())
		if err != nil {
			return err
		}
		ccRes, err := run(&dvs.CCEDF{})
		if err != nil {
			return err
		}
		up, err := run(&utilizationPacer{speed: ts.Utilization()})
		if err != nil {
			return err
		}
		cells[k] = f9Cell{
			lp: lp.NormalizedTo(ref), cc: ccRes.NormalizedTo(ref),
			lpM: lp.DeadlineMisses, ccM: ccRes.DeadlineMisses, upM: up.DeadlineMisses,
		}
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	lpsheY := make([]float64, 0, len(fracs))
	ccY := make([]float64, 0, len(fracs))
	for fi, frac := range fracs {
		var lpshe, cc sample
		var lpsheMiss, ccMiss, upMiss int
		for s := 0; s < ns; s++ {
			cell := cells[fi*ns+s]
			lpshe.add(cell.lp)
			cc.add(cell.cc)
			lpsheMiss += cell.lpM
			ccMiss += cell.ccM
			upMiss += cell.upM
		}
		tbl.AddRow(frac, lpshe.mean(), lpsheMiss, cc.mean(), ccMiss, upMiss)
		lpsheY = append(lpsheY, lpshe.mean())
		ccY = append(ccY, cc.mean())
		r.set(fmt.Sprintf("lpSHE/%g", frac), lpshe.mean())
		r.set(fmt.Sprintf("misses/%g", frac), float64(lpsheMiss))
		r.set(fmt.Sprintf("upacer_misses/%g", frac), float64(upMiss))
	}
	chart.Series = append(chart.Series,
		report.Series{Name: "lpSHE", Y: lpsheY},
		report.Series{Name: "ccEDF", Y: ccY},
	)
	r.Tables = append(r.Tables, tbl)
	r.Charts = append(r.Charts, chart)
	return r, nil
}

// utilizationPacer runs open-loop at the worst-case utilization: the
// optimal static policy for strictly periodic arrivals, used here to
// demonstrate its breakdown under jitter.
type utilizationPacer struct {
	sim.NopHooks
	speed float64
}

func (p *utilizationPacer) Name() string                      { return "u-pacer" }
func (p *utilizationPacer) Reset(sim.System)                  {}
func (p *utilizationPacer) SelectSpeed(*sim.JobState) float64 { return p.speed }

// Fig10WorkloadShapes sweeps the distribution shape of AET/WCET at a
// fixed mean of ~0.5: the reclaiming policies' savings depend on the
// shape (bimodal leaves the most harvestable slack; constant the
// least variance), while the guarantee is shape-independent.
func Fig10WorkloadShapes(opts Options) (*Report, error) {
	r := newReport("f10", "F10: workload-shape sensitivity (extension)",
		"n=8 tasks, U=0.7; four AET distributions with mean AET/WCET ≈ 0.5")
	shapes := []struct {
		name string
		mk   func(seed uint64) workload.Generator
	}{
		{"constant", func(seed uint64) workload.Generator { return workload.Constant{Frac: 0.5} }},
		{"uniform", func(seed uint64) workload.Generator { return workload.Uniform{Lo: 0, Hi: 1, Seed: seed} }},
		{"normal", func(seed uint64) workload.Generator {
			return workload.Normal{Mean: 0.5, StdDev: 0.15, Seed: seed}
		}},
		{"bimodal", func(seed uint64) workload.Generator {
			return workload.Bimodal{LightFrac: 0.25, HeavyFrac: 1.0, PHeavy: 1.0 / 3, Seed: seed}
		}},
		{"sinusoidal", func(seed uint64) workload.Generator {
			return workload.Sinusoidal{Mean: 0.5, Amp: 0.35, Jitter: 0.05, Seed: seed}
		}},
	}
	factories := Suite()
	names := factoryNames(factories)
	tbl := report.NewTable(r.Title, append([]string{"shape"}, names...)...)
	for _, shape := range shapes {
		sp, err := runSweepPoint(8, 0.7, shape.mk, defaultProcessor(), opts, factories)
		if err != nil {
			return nil, err
		}
		row := []any{shape.name}
		for _, n := range names {
			v := sp.norm[n].Mean()
			row = append(row, v)
			r.set(fmt.Sprintf("%s/%s", n, shape.name), v)
		}
		r.set(fmt.Sprintf("misses/%s", shape.name), float64(sp.misses))
		tbl.AddRow(row...)
	}
	r.Tables = append(r.Tables, tbl)
	return r, nil
}

// sample is a tiny mean accumulator (the stats package is overkill
// for the per-point aggregation here).
type sample struct {
	sum float64
	n   int
}

func (s *sample) add(v float64) { s.sum += v; s.n++ }

func (s *sample) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}
