package experiment

import (
	"bytes"
	"runtime"
	"testing"
)

// TestCrossWorkerDeterminism pins the harness's central contract:
// Options.Workers affects wall-clock scheduling only, never results.
// Every registered experiment must render byte-identical reports (text
// and CSV) and produce value-identical Values maps for serial,
// fixed-width, and GOMAXPROCS-wide pools. verify.sh runs this under
// -race, which additionally makes any cell-grid data race fatal.
func TestCrossWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment three times")
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			var want []byte
			var wantValues map[string]float64
			for _, w := range workerCounts {
				r, err := Run(id, Options{Quick: true, Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				var buf bytes.Buffer
				r.Print(&buf)
				r.PrintCSV(&buf)
				got := buf.Bytes()
				if w == workerCounts[0] {
					want, wantValues = got, r.Values
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("workers=%d: rendered report differs from workers=%d (%d vs %d bytes)",
						w, workerCounts[0], len(got), len(want))
				}
				if len(r.Values) != len(wantValues) {
					t.Errorf("workers=%d: %d values, want %d", w, len(r.Values), len(wantValues))
				}
				for key, v := range r.Values {
					if ref, ok := wantValues[key]; !ok || ref != v {
						t.Errorf("workers=%d: Values[%q] = %v, want %v", w, key, v, ref)
					}
				}
			}
		})
	}
}
