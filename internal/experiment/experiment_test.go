package experiment

import (
	"bytes"
	"strings"
	"testing"

	"dvsslack/internal/cpu"
	"dvsslack/internal/rtm"
	"dvsslack/internal/workload"
)

func TestSuiteNamesStable(t *testing.T) {
	want := []string{"nonDVS", "staticEDF", "lppsEDF", "ccEDF", "laEDF", "DRA", "fbEDF", "lpSHE"}
	got := SuiteNames()
	if len(got) != len(want) {
		t.Fatalf("suite = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suite = %v, want %v", got, want)
		}
	}
}

func TestRunPointNormalization(t *testing.T) {
	pr, err := RunPoint(Point{
		TaskSet:   rtm.Quickstart(),
		Processor: cpu.Continuous(0.1),
		Workload:  workload.Uniform{Lo: 0.5, Hi: 1, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Misses != 0 {
		t.Errorf("misses = %d", pr.Misses)
	}
	if n := pr.Normalized["nonDVS"]; n != 1 {
		t.Errorf("nonDVS normalized = %v, want 1", n)
	}
	for name, n := range pr.Normalized {
		if n <= 0 || n > 1.0001 {
			t.Errorf("%s normalized = %v out of (0, 1]", name, n)
		}
	}
	if pr.Bound <= 0 || pr.Bound > pr.Normalized["lpSHE"]+1e-9 {
		t.Errorf("bound %v should lower-bound lpSHE %v", pr.Bound, pr.Normalized["lpSHE"])
	}
}

func TestRegistryCoversAllIDs(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("IDs() lists %q but Registry lacks it", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Errorf("registry has %d entries, IDs lists %d", len(reg), len(IDs()))
	}
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("unknown id should error")
	}
}

// TestAllExperimentsQuick executes every experiment in quick mode and
// checks its report invariants; this is the integration test of the
// whole benchmark harness.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			r, err := Run(id, Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Tables) == 0 {
				t.Error("no tables produced")
			}
			var buf bytes.Buffer
			r.Print(&buf)
			if buf.Len() == 0 {
				t.Error("empty rendering")
			}
			var csv bytes.Buffer
			r.PrintCSV(&csv)
			if !strings.Contains(csv.String(), ",") {
				t.Error("CSV rendering empty")
			}
			for key, v := range r.Values {
				if strings.HasPrefix(key, "misses") && v != 0 {
					t.Errorf("%s: %v deadline misses", key, v)
				}
			}
		})
	}
}

// TestF3Shape asserts the headline result: at high utilization the
// paper's policy beats every baseline, and normalized energies are
// sane everywhere.
func TestF3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	r, err := Fig3EnergyVsUtilization(Options{Quick: true, Seeds: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"0.3", "0.6", "0.9"} {
		lpshe := r.Values["lpSHE/"+u]
		if lpshe <= 0 || lpshe >= 1 {
			t.Errorf("lpSHE at U=%s: %v out of (0,1)", u, lpshe)
		}
		bound := r.Values["bound/"+u]
		if bound > lpshe+1e-9 {
			t.Errorf("bound %v above lpSHE %v at U=%s", bound, lpshe, u)
		}
		for _, base := range []string{"staticEDF", "lppsEDF"} {
			if v := r.Values[base+"/"+u]; v < lpshe-1e-9 {
				t.Errorf("at U=%s %s (%v) beat lpSHE (%v)", u, base, v, lpshe)
			}
		}
	}
	// The headline: strictly best of the whole suite at U=0.9.
	lpshe := r.Values["lpSHE/0.9"]
	for _, base := range []string{"staticEDF", "lppsEDF", "ccEDF", "laEDF", "DRA"} {
		if v := r.Values[base+"/0.9"]; v < lpshe {
			t.Errorf("at U=0.9 %s (%v) beat lpSHE (%v)", base, v, lpshe)
		}
	}
}

// TestT5BoundOrdering asserts the bound hierarchy on every T5 row:
// flat constant-speed bound ≤ YDS optimum ≤ lpSHE (gap ≥ 1).
func TestT5BoundOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("runs YDS on several traces")
	}
	r, err := Table5OptimalityGap(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for key := range r.Values {
		if i := strings.IndexByte(key, '/'); i > 0 {
			names[key[:i]] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no T5 rows")
	}
	for name := range names {
		if name == "misses" {
			continue
		}
		flat, yds, lpshe := r.Values[name+"/flat"], r.Values[name+"/yds"], r.Values[name+"/lpshe"]
		if flat > yds+1e-9 {
			t.Errorf("%s: flat %v above YDS %v", name, flat, yds)
		}
		if yds > lpshe+1e-9 {
			t.Errorf("%s: YDS %v above lpSHE %v", name, yds, lpshe)
		}
		if gap := r.Values[name+"/gap"]; gap < 1-1e-9 {
			t.Errorf("%s: gap %v below 1", name, gap)
		}
	}
}

// TestF9GuaranteeUnderJitter asserts the extension's headline: lpSHE
// never misses at any jitter level while keeping its savings.
func TestF9GuaranteeUnderJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many jittered simulations")
	}
	r, err := Fig9JitterRobustness(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range r.Values {
		if strings.HasPrefix(key, "misses/") && v != 0 {
			t.Errorf("lpSHE missed %v deadlines at %s", v, key)
		}
		if strings.HasPrefix(key, "lpSHE/") && (v <= 0 || v >= 1) {
			t.Errorf("lpSHE normalized energy %v at %s out of (0,1)", v, key)
		}
	}
}

func TestOptionsSeeds(t *testing.T) {
	if (Options{}).seeds() != 20 {
		t.Error("default seeds should be 20")
	}
	if (Options{Quick: true}).seeds() != 4 {
		t.Error("quick seeds should be 4")
	}
	if (Options{Seeds: 7, Quick: true}).seeds() != 7 {
		t.Error("explicit seeds should win")
	}
}
