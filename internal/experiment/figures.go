package experiment

import (
	"fmt"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/report"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// defaultProcessor returns the continuous processor of the main
// experiments (s_min = 0.1, cubic power, idle power 0.05).
func defaultProcessor() *cpu.Processor { return cpu.Continuous(0.1) }

// uniformGen returns the standard workload: AET/WCET uniform in
// [ratio, 1].
func uniformGen(ratio float64) func(seed uint64) workload.Generator {
	return func(seed uint64) workload.Generator {
		return workload.Uniform{Lo: ratio, Hi: 1, Seed: seed}
	}
}

// utilizations returns the U sweep of figures F3/F6/F8.
func utilizations(quick bool) []float64 {
	if quick {
		return []float64{0.3, 0.6, 0.9}
	}
	return []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// sweepToReport renders a one-parameter sweep as chart + table.
func sweepToReport(r *Report, xs []float64, xLabel string, names []string,
	points []*sweepPoint) {

	tbl := report.NewTable(r.Title, append([]string{xLabel}, append(names, "bound")...)...)
	chart := &report.Chart{
		Title:  r.Title,
		XLabel: xLabel,
		YLabel: "normalized energy (non-DVS = 1)",
		X:      xs,
	}
	series := map[string]*report.Series{}
	for _, n := range names {
		chart.Series = append(chart.Series, report.Series{Name: n})
	}
	chart.Series = append(chart.Series, report.Series{Name: "bound"})
	for i := range chart.Series {
		series[chart.Series[i].Name] = &chart.Series[i]
	}
	for i, sp := range points {
		row := []any{xs[i]}
		for _, n := range names {
			v := sp.norm[n].Mean()
			row = append(row, v)
			series[n].Y = append(series[n].Y, v)
			r.set(fmt.Sprintf("%s/%g", n, xs[i]), v)
		}
		b := sp.bound.Mean()
		row = append(row, b)
		series["bound"].Y = append(series["bound"].Y, b)
		r.set(fmt.Sprintf("bound/%g", xs[i]), b)
		tbl.AddRow(row...)
		r.set(fmt.Sprintf("misses/%g", xs[i]), float64(sp.misses))
	}
	r.Tables = append(r.Tables, tbl)
	r.Charts = append(r.Charts, chart)
}

// Fig3EnergyVsUtilization reproduces figure F3: normalized energy of
// every policy as the worst-case utilization sweeps 0.2..1.0
// (8 tasks, AET/WCET ~ U[0.5, 1]).
func Fig3EnergyVsUtilization(opts Options) (*Report, error) {
	r := newReport("f3", "F3: normalized energy vs worst-case utilization",
		"n=8 tasks, AET/WCET ~ U[0.5,1], continuous speeds")
	factories := Suite()
	names := factoryNames(factories)
	xs := utilizations(opts.Quick)
	var points []*sweepPoint
	for _, u := range xs {
		sp, err := runSweepPoint(8, u, uniformGen(0.5), defaultProcessor(), opts, factories)
		if err != nil {
			return nil, err
		}
		points = append(points, sp)
	}
	sweepToReport(r, xs, "worst-case utilization", names, points)
	return r, nil
}

// Fig4EnergyVsBCETRatio reproduces figure F4: normalized energy as
// the BCET/WCET ratio sweeps 0.1..1.0 at fixed U = 0.7. As the ratio
// approaches 1 the dynamic slack vanishes and all reclaiming policies
// converge toward the static optimum.
func Fig4EnergyVsBCETRatio(opts Options) (*Report, error) {
	r := newReport("f4", "F4: normalized energy vs BCET/WCET ratio",
		"n=8 tasks, U=0.7, AET/WCET ~ U[ratio,1], continuous speeds")
	factories := Suite()
	names := factoryNames(factories)
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if opts.Quick {
		xs = []float64{0.1, 0.5, 0.9}
	}
	var points []*sweepPoint
	for _, ratio := range xs {
		sp, err := runSweepPoint(8, 0.7, uniformGen(ratio), defaultProcessor(), opts, factories)
		if err != nil {
			return nil, err
		}
		points = append(points, sp)
	}
	sweepToReport(r, xs, "BCET/WCET ratio", names, points)
	return r, nil
}

// Fig5EnergyVsTaskCount reproduces figure F5: normalized energy as
// the task-set size sweeps 2..32 at fixed U = 0.7.
func Fig5EnergyVsTaskCount(opts Options) (*Report, error) {
	r := newReport("f5", "F5: normalized energy vs number of tasks",
		"U=0.7, AET/WCET ~ U[0.5,1], continuous speeds")
	factories := Suite()
	names := factoryNames(factories)
	ns := []int{2, 4, 8, 16, 32}
	if opts.Quick {
		ns = []int{2, 8}
	}
	xs := make([]float64, len(ns))
	var points []*sweepPoint
	for i, n := range ns {
		xs[i] = float64(n)
		sp, err := runSweepPoint(n, 0.7, uniformGen(0.5), defaultProcessor(), opts, factories)
		if err != nil {
			return nil, err
		}
		points = append(points, sp)
	}
	sweepToReport(r, xs, "number of tasks", names, points)
	return r, nil
}

// Fig6DiscreteLevels reproduces figure F6: the cost of discrete
// speed levels. lpSHE runs on each processor preset across the U
// sweep; requested speeds quantize *up* to the next level, so
// deadlines hold but energy rises with coarser level sets. The
// "+dual" series emulate continuous speeds with the Ishihara-Yasuura
// two-level split (dvs.DualLevel), recovering most of the
// quantization loss.
func Fig6DiscreteLevels(opts Options) (*Report, error) {
	r := newReport("f6", "F6: effect of discrete speed levels on lpSHE",
		"n=8 tasks, AET/WCET ~ U[0.5,1]; normalized vs continuous non-DVS")
	procs := []struct {
		name string
		proc *cpu.Processor
		dual bool
	}{
		{"continuous", defaultProcessor(), false},
		{"uniform8", cpu.UniformLevels(8), false},
		{"uniform4", cpu.UniformLevels(4), false},
		{"uniform4+dual", cpu.UniformLevels(4), true},
		{"xscale", cpu.XScale(), false},
		{"xscale+dual", cpu.XScale(), true},
		{"crusoe", cpu.Crusoe(), false},
	}
	xs := utilizations(opts.Quick)
	chart := &report.Chart{
		Title:  r.Title,
		XLabel: "worst-case utilization",
		YLabel: "normalized energy (non-DVS = 1)",
		X:      xs,
	}
	tbl := report.NewTable(r.Title, append([]string{"U"}, procNames(procs)...)...)
	cells := make([][]float64, len(xs))
	for i := range cells {
		cells[i] = make([]float64, len(procs))
	}
	for pi, pc := range procs {
		polName := "lpSHE"
		mk := func() sim.Policy { return core.NewLpSHE() }
		if pc.dual {
			polName = "lpSHE+dual"
			mk = func() sim.Policy { return dvs.NewDualLevel(core.NewLpSHE()) }
		}
		factories := []PolicyFactory{
			func() sim.Policy { return &dvs.NonDVS{} },
			mk,
		}
		var ys []float64
		for xi, u := range xs {
			sp, err := runSweepPoint(8, u, uniformGen(0.5), pc.proc, opts, factories)
			if err != nil {
				return nil, err
			}
			v := sp.norm[polName].Mean()
			ys = append(ys, v)
			cells[xi][pi] = v
			r.set(fmt.Sprintf("%s/%g", pc.name, u), v)
			r.set(fmt.Sprintf("misses/%s/%g", pc.name, u), float64(sp.misses))
		}
		chart.Series = append(chart.Series, report.Series{Name: pc.name, Y: ys})
	}
	for xi, u := range xs {
		row := []any{u}
		for pi := range procs {
			row = append(row, cells[xi][pi])
		}
		tbl.AddRow(row...)
	}
	r.Tables = append(r.Tables, tbl)
	r.Charts = append(r.Charts, chart)
	return r, nil
}

func procNames(procs []struct {
	name string
	proc *cpu.Processor
	dual bool
}) []string {
	var names []string
	for _, p := range procs {
		names = append(names, p.name)
	}
	return names
}

// Fig7TransitionOverhead reproduces figure F7: sensitivity to
// speed-transition overhead. The processor stalls for SwitchTime on
// every speed change and pays transition energy. lpSHE is natively
// overhead-aware (it reserves two stalls out of the analyzed slack),
// so its deadlines hold at every overhead level; the hysteresis
// guard additionally suppresses marginal switches. staticEDF is the
// switch-free reference: it pays (almost) no overhead but cannot
// reclaim dynamic slack. Energy stays normalized to the overhead-free
// non-DVS run on the same workload so the overhead cost itself is
// visible.
func Fig7TransitionOverhead(opts Options) (*Report, error) {
	r := newReport("f7", "F7: normalized energy vs speed-transition overhead",
		"n=8 tasks, U=0.7, AET/WCET ~ U[0.5,1], switch energy coeff 0.1")
	switchTimes := []float64{0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0}
	if opts.Quick {
		switchTimes = []float64{0, 0.5, 2.0}
	}
	policies := []struct {
		name    string
		factory PolicyFactory
	}{
		{"lpSHE", func() sim.Policy { return core.NewLpSHE() }},
		{"lpSHE+guard", func() sim.Policy { return dvs.NewOverheadGuard(core.NewLpSHE()) }},
		{"staticEDF", func() sim.Policy { return &dvs.StaticEDF{} }},
	}
	chart := &report.Chart{
		Title:  r.Title,
		XLabel: "switch time (time units)",
		YLabel: "normalized energy (zero-overhead non-DVS = 1)",
		X:      switchTimes,
	}
	tbl := report.NewTable(r.Title, "switch_time", "lpSHE", "lpSHE+guard", "staticEDF", "switches/job(lpSHE)")
	cells := make(map[string][]float64)
	switchRates := make([]float64, len(switchTimes))
	for _, pc := range policies {
		for si, st := range switchTimes {
			proc := defaultProcessor()
			proc.SwitchTime = st
			proc.SwitchEnergyCoeff = 0.1
			factories := []PolicyFactory{
				func() sim.Policy { return &dvs.NonDVS{} },
				pc.factory,
			}
			sp, err := runSweepPointDetail(8, 0.7, uniformGen(0.5), proc, opts, factories,
				func(res map[string]sim.Result) {
					if pc.name != "lpSHE" {
						return
					}
					if lp, ok := res["lpSHE"]; ok && lp.JobsCompleted > 0 {
						switchRates[si] += float64(lp.SpeedSwitches) / float64(lp.JobsCompleted)
					}
				})
			if err != nil {
				return nil, err
			}
			name := factoryNames(factories)[1]
			v := sp.norm[name].Mean()
			cells[pc.name] = append(cells[pc.name], v)
			r.set(fmt.Sprintf("%s/%g", pc.name, st), v)
			r.set(fmt.Sprintf("misses/%s/%g", pc.name, st), float64(sp.misses))
		}
		chart.Series = append(chart.Series, report.Series{Name: pc.name, Y: cells[pc.name]})
	}
	for si, st := range switchTimes {
		tbl.AddRow(st, cells["lpSHE"][si], cells["lpSHE+guard"][si],
			cells["staticEDF"][si], switchRates[si]/float64(opts.seeds()))
	}
	r.Tables = append(r.Tables, tbl)
	r.Charts = append(r.Charts, chart)
	return r, nil
}

// Fig8Ablation reproduces figure F8: ablation of the slack analysis.
// The full algorithm is compared against the no-reclaim variant
// (early-completion slack withheld) and the truncated-scan variants
// across the utilization sweep.
func Fig8Ablation(opts Options) (*Report, error) {
	r := newReport("f8", "F8: slack-analysis ablation",
		"n=8 tasks, AET/WCET ~ U[0.5,1], continuous speeds")
	factories := []PolicyFactory{
		func() sim.Policy { return &dvs.NonDVS{} },
		func() sim.Policy { return core.NewLpSHE() },
		func() sim.Policy { return core.NewLpSHEVariant(core.Greedy) },
		func() sim.Policy { return core.NewLpSHEVariant(core.NoReclaim) },
		func() sim.Policy { return core.NewLpSHEVariant(core.Horizon8) },
		func() sim.Policy { return core.NewLpSHEVariant(core.Horizon32) },
	}
	names := factoryNames(factories)[1:] // skip the reference
	xs := utilizations(opts.Quick)
	var points []*sweepPoint
	for _, u := range xs {
		sp, err := runSweepPoint(8, u, uniformGen(0.5), defaultProcessor(), opts, factories)
		if err != nil {
			return nil, err
		}
		points = append(points, sp)
	}
	sweepToReport(r, xs, "worst-case utilization", names, points)
	return r, nil
}
