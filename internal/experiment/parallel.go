package experiment

import (
	"fmt"
	"sync/atomic"

	"dvsslack/internal/dvs"
	"dvsslack/internal/par"
	"dvsslack/internal/sim"
)

// This file is the parallel execution core of the harness. Every
// experiment funnels its independent simulation cells — one (point,
// policy) pair each, plus one clairvoyant-bound cell per point —
// through runSeededPoints, which fans them out over a bounded worker
// pool (internal/par) and then merges results strictly in point
// order. Because
//
//   - each cell constructs its own policy instance (policies and
//     their Analyzers are single-goroutine by contract),
//   - workload generators sample through the stateless prng
//     Hash3/Float64 path, so traces depend only on (seed, task, job),
//   - anything drawn from a sequential prng.Source (task-set
//     generation, fuzz configuration draws) happens either before the
//     fan-out or on a per-cell Source forked from the sequential
//     stream, and
//   - all floating-point aggregation happens in the ordered merge
//     phase, in exactly the order the serial loop used,
//
// the emitted Report is byte-identical for every Options.Workers
// value, including Workers: 1 (the serial loop itself). The
// cross-worker determinism test in parallel_test.go pins this.

// runSeededPoints executes n measurement points, each over the given
// policy factories, at (point × policy) cell granularity on the
// worker pool, and invokes merge once per point in point order after
// every cell has finished.
//
// mkPoint is called serially, in order, before the fan-out — it may
// therefore consume sequential pseudo-random streams. A zero
// Point.Horizon is resolved to sim.DefaultHorizon before the runs so
// all cells of a point (and its bound) share one window.
func runSeededPoints(n int, factories []PolicyFactory, opts Options,
	mkPoint func(rep int) (Point, error),
	merge func(rep int, pr PointResult)) error {

	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		p, err := mkPoint(i)
		if err != nil {
			return err
		}
		if p.Horizon == 0 {
			p.Horizon = sim.DefaultHorizon(p.TaskSet)
		}
		pts[i] = p
	}

	exec := opts.Exec
	if exec == nil {
		exec = sim.Run
	}
	npol := len(factories)
	// One column per policy plus one for the clairvoyant static
	// bound, so the bound integral parallelizes with the runs.
	cols := npol + 1
	results := make([]sim.Result, n*npol)
	bounds := make([]float64, n)
	var completed atomic.Int64
	cellDone := func() {
		if opts.Progress != nil {
			opts.Progress(int(completed.Add(1)), n*cols)
		}
	}
	err := par.ForEach(opts.workers(), n*cols, func(k int) error {
		rep, c := k/cols, k%cols
		p := pts[rep]
		if c == npol {
			bounds[rep] = dvs.Bound(p.TaskSet, p.Processor, p.Workload, p.Horizon)
			cellDone()
			return nil
		}
		pol := factories[c]()
		res, err := exec(sim.Config{
			TaskSet:   p.TaskSet,
			Processor: p.Processor,
			Policy:    pol,
			Workload:  p.Workload,
			Horizon:   p.Horizon,
		})
		if err != nil {
			return fmt.Errorf("experiment: point %s policy %s: %w", p.TaskSet.Name, pol.Name(), err)
		}
		results[rep*npol+c] = res
		cellDone()
		return nil
	})
	if err != nil {
		return err
	}

	for rep := 0; rep < n; rep++ {
		merge(rep, assemblePoint(results[rep*npol:(rep+1)*npol], bounds[rep]))
	}
	return nil
}

// assemblePoint folds one point's per-policy results into a
// PointResult with exactly the arithmetic (and order) of the serial
// loop: the first factory is the normalization reference.
func assemblePoint(results []sim.Result, rawBound float64) PointResult {
	pr := PointResult{
		Results:    make(map[string]sim.Result, len(results)),
		Normalized: make(map[string]float64, len(results)),
	}
	var ref sim.Result
	for i, res := range results {
		pr.Results[res.Policy] = res
		pr.Misses += res.DeadlineMisses
		if i == 0 {
			ref = res
		}
		pr.Normalized[res.Policy] = res.NormalizedTo(ref)
	}
	if ref.Energy > 0 {
		pr.Bound = rawBound / ref.Energy
	}
	return pr
}
