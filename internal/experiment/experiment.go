// Package experiment implements the evaluation harness: the policy
// suite under comparison, identical-workload measurement points,
// parameter sweeps, and the table/figure reproductions indexed in
// DESIGN.md §3. Each experiment returns a Report of deterministic
// tables and ASCII charts; cmd/dvsexp prints them and bench_test.go
// regenerates them under `go test -bench`.
package experiment

import (
	"sort"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/par"
	"dvsslack/internal/report"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/stats"
	"dvsslack/internal/workload"
)

// PolicyFactory creates a fresh policy instance for one run.
type PolicyFactory func() sim.Policy

// Exec executes one configured simulation and returns its result. A
// nil Exec means in-process sim.Run; cmd/dvsexp -addr substitutes an
// executor that farms the run out to a dvsd daemon (falling back to
// sim.Run for configurations with no wire representation).
type Exec func(sim.Config) (sim.Result, error)

// Suite returns the ordered comparison suite of the evaluation: the
// non-DVS reference, the prior inter-task DVS-EDF algorithms, and the
// paper's lpSHE.
func Suite() []PolicyFactory {
	return []PolicyFactory{
		func() sim.Policy { return &dvs.NonDVS{} },
		func() sim.Policy { return &dvs.StaticEDF{} },
		func() sim.Policy { return &dvs.LppsEDF{} },
		func() sim.Policy { return &dvs.CCEDF{} },
		func() sim.Policy { return &dvs.LAEDF{} },
		func() sim.Policy { return &dvs.DRA{} },
		func() sim.Policy { return dvs.NewFeedbackEDF() },
		func() sim.Policy { return core.NewLpSHE() },
	}
}

// SuiteNames returns the policy names of Suite, in order.
func SuiteNames() []string {
	suite := Suite()
	names := make([]string, 0, len(suite))
	for _, f := range suite {
		names = append(names, f().Name())
	}
	return names
}

// Options controls experiment scale.
type Options struct {
	// Seeds is the number of random task sets per measurement point
	// (default 20; Quick reduces to 4).
	Seeds int
	// Seed0 offsets the pseudo-random streams.
	Seed0 uint64
	// Quick selects a reduced configuration for tests and benches.
	Quick bool
	// Exec, when non-nil, replaces in-process sim.Run for every
	// measurement (e.g. remote execution against a dvsd daemon).
	Exec Exec
	// Workers bounds how many simulation cells run concurrently
	// (default GOMAXPROCS; 1 forces the serial path). Reports are
	// byte-identical for every value — parallelism only reorders
	// wall-clock execution, never aggregation.
	Workers int
	// Progress, when non-nil, is invoked after each simulation cell
	// of a fan-out completes, with the cells finished so far and the
	// fan-out's total (counts reset per cell grid, i.e. per sweep
	// point). It may be called concurrently from worker goroutines
	// and must not block for long; cmd/dvsexp -progress plugs the
	// shared obs logger in here. Progress observes execution order
	// only — reports stay byte-identical with or without it.
	Progress func(done, total int)
}

// workers returns the effective worker-pool width.
func (o Options) workers() int { return par.Workers(o.Workers) }

// seeds returns the effective replication count.
func (o Options) seeds() int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	if o.Quick {
		return 4
	}
	return 20
}

// Report is the output of one experiment: deterministic tables and
// charts plus a free-form summary map consumed by tests.
type Report struct {
	ID          string
	Title       string
	Description string
	Tables      []*report.Table
	Charts      []*report.Chart
	// Values holds machine-readable results keyed by
	// "series/xlabel" for assertions in tests and EXPERIMENTS.md
	// generation.
	Values map[string]float64
}

func newReport(id, title, description string) *Report {
	return &Report{ID: id, Title: title, Description: description, Values: map[string]float64{}}
}

func (r *Report) set(key string, v float64) { r.Values[key] = v }

// Point is one measurement configuration: every policy of the suite
// runs on the *identical* task set, workload trace, and processor.
type Point struct {
	TaskSet   *rtm.TaskSet
	Processor *cpu.Processor
	Workload  workload.Generator
	Horizon   float64 // zero = sim.DefaultHorizon
}

// PointResult carries the per-policy outcomes of one Point.
type PointResult struct {
	// Results maps policy name to its raw simulation result.
	Results map[string]sim.Result
	// Normalized maps policy name to energy normalized by the
	// non-DVS run on the identical workload.
	Normalized map[string]float64
	// Bound is the clairvoyant static lower bound, normalized.
	Bound float64
	// Misses is the total deadline misses across all policies.
	Misses int
}

// RunPoint executes the full suite (plus any extra factories) on one
// point.
func RunPoint(p Point, extra ...PolicyFactory) (PointResult, error) {
	factories := append(Suite(), extra...)
	return RunPointWith(p, factories)
}

// RunPointWith executes the given policy factories on one point. The
// first factory must produce the normalization reference; by
// convention it is NonDVS (callers composing custom suites must
// include it first for Normalized to be meaningful).
func RunPointWith(p Point, factories []PolicyFactory) (PointResult, error) {
	return RunPointExec(p, factories, nil)
}

// RunPointExec is RunPointWith with an explicit executor; a nil exec
// runs in-process. The point's policy runs execute serially — callers
// wanting parallelism go through an experiment (or runSeededPoints),
// which fans whole cell grids out instead of single points.
func RunPointExec(p Point, factories []PolicyFactory, exec Exec) (PointResult, error) {
	var out PointResult
	err := runSeededPoints(1, factories, Options{Exec: exec, Workers: 1},
		func(int) (Point, error) { return p, nil },
		func(_ int, pr PointResult) { out = pr })
	return out, err
}

// sweepPoint aggregates normalized energy across seeded replications
// of a synthetic configuration.
type sweepPoint struct {
	norm   map[string]*stats.Sample
	bound  *stats.Sample
	misses int
}

func newSweepPoint(names []string) *sweepPoint {
	sp := &sweepPoint{norm: map[string]*stats.Sample{}, bound: &stats.Sample{}}
	for _, n := range names {
		sp.norm[n] = &stats.Sample{}
	}
	return sp
}

// runSweepPoint measures one (n, u, gen, proc) configuration over
// opts.seeds() random task sets.
func runSweepPoint(n int, u float64, mkGen func(seed uint64) workload.Generator,
	proc *cpu.Processor, opts Options, factories []PolicyFactory) (*sweepPoint, error) {
	return runSweepPointDetail(n, u, mkGen, proc, opts, factories, nil)
}

// runSweepPointDetail is runSweepPoint with a per-replication hook
// that receives the raw per-policy results (for counter aggregation).
func runSweepPointDetail(n int, u float64, mkGen func(seed uint64) workload.Generator,
	proc *cpu.Processor, opts Options, factories []PolicyFactory,
	each func(map[string]sim.Result)) (*sweepPoint, error) {

	names := factoryNames(factories)
	sp := newSweepPoint(names)
	err := runSeededPoints(opts.seeds(), factories, opts,
		func(s int) (Point, error) {
			seed := opts.Seed0 + uint64(s)*0x9e37 + 17
			ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, seed))
			if err != nil {
				return Point{}, err
			}
			return Point{TaskSet: ts, Processor: proc, Workload: mkGen(seed)}, nil
		},
		func(_ int, pr PointResult) {
			for _, name := range names {
				sp.norm[name].Add(pr.Normalized[name])
			}
			sp.bound.Add(pr.Bound)
			sp.misses += pr.Misses
			if each != nil {
				each(pr.Results)
			}
		})
	if err != nil {
		return nil, err
	}
	return sp, nil
}

func factoryNames(factories []PolicyFactory) []string {
	names := make([]string, 0, len(factories))
	for _, f := range factories {
		names = append(names, f().Name())
	}
	return names
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
