package experiment

import (
	"fmt"

	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/dvs"
	"dvsslack/internal/report"
	"dvsslack/internal/sim"
)

// Fig11Leakage extends the evaluation with leakage-aware DVS: static
// (leakage) power is drawn whenever the processor is powered, a
// deep-sleep state (with wake-up cost) is available during idle, and
// the critical-speed floor (dvs.EfficientFloor) stops the policy from
// stretching below the energy-efficient speed. As leakage grows,
// plain lpSHE over-stretches (leakage integrates over the longer
// runtime) while the floored variant converts the excess stretch into
// sleepable idle time — the crossover the leakage-aware DVS
// literature predicts.
func Fig11Leakage(opts Options) (*Report, error) {
	r := newReport("f11", "F11: leakage power and the critical-speed floor (extension)",
		"n=8 tasks, U=0.5, AET/WCET ~ U[0.5,1]; sleep-capable processor (sleep power 0.005, wake energy 0.2)")
	leaks := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}
	if opts.Quick {
		leaks = []float64{0, 0.1, 0.4}
	}
	mkProc := func(leak float64) *cpu.Processor {
		p := defaultProcessor()
		p.LeakagePower = leak
		p.SleepEnabled = true
		p.SleepPower = 0.005
		p.WakeEnergy = 0.2
		return p
	}
	policies := []struct {
		name string
		mk   PolicyFactory
	}{
		{"lpSHE", func() sim.Policy { return core.NewLpSHE() }},
		{"lpSHE+crit", func() sim.Policy { return dvs.NewEfficientFloor(core.NewLpSHE()) }},
		{"staticEDF", func() sim.Policy { return &dvs.StaticEDF{} }},
	}
	tbl := report.NewTable(r.Title,
		"leakage", "s_crit", "lpSHE", "lpSHE+crit", "staticEDF")
	chart := &report.Chart{
		Title:  r.Title,
		XLabel: "leakage power (fraction of full-speed dynamic power)",
		YLabel: "normalized energy (non-DVS on same processor = 1)",
		X:      leaks,
	}
	cells := map[string][]float64{}
	for _, pc := range policies {
		for _, leak := range leaks {
			proc := mkProc(leak)
			factories := []PolicyFactory{
				func() sim.Policy { return &dvs.NonDVS{} },
				pc.mk,
			}
			sp, err := runSweepPoint(8, 0.5, uniformGen(0.5), proc, opts, factories)
			if err != nil {
				return nil, err
			}
			name := factoryNames(factories)[1]
			v := sp.norm[name].Mean()
			cells[pc.name] = append(cells[pc.name], v)
			r.set(fmt.Sprintf("%s/%g", pc.name, leak), v)
			r.set(fmt.Sprintf("misses/%s/%g", pc.name, leak), float64(sp.misses))
		}
		chart.Series = append(chart.Series, report.Series{Name: pc.name, Y: cells[pc.name]})
	}
	for i, leak := range leaks {
		tbl.AddRow(leak, mkProc(leak).CriticalSpeed(),
			cells["lpSHE"][i], cells["lpSHE+crit"][i], cells["staticEDF"][i])
	}
	r.Tables = append(r.Tables, tbl)
	r.Charts = append(r.Charts, chart)
	return r, nil
}
