package experiment

import (
	"fmt"

	"dvsslack/internal/analysis"
	"dvsslack/internal/core"
	"dvsslack/internal/cpu"
	"dvsslack/internal/par"
	"dvsslack/internal/prng"
	"dvsslack/internal/report"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// Table1ProcessorModels reproduces table T1: the operating points and
// normalized power of the processor presets.
func Table1ProcessorModels(opts Options) (*Report, error) {
	r := newReport("t1", "T1: processor models",
		"operating points of the discrete presets; power normalized to P(1)=1")
	for _, name := range []string{"xscale", "crusoe", "uniform4", "uniform8"} {
		proc := cpu.Presets()[name]
		tbl := report.NewTable(fmt.Sprintf("T1: %s", name), "speed", "voltage", "power")
		for _, s := range proc.Levels() {
			tbl.AddRow(s, proc.Voltage(s), proc.Power(s))
			r.set(fmt.Sprintf("%s/power/%.3f", name, s), proc.Power(s))
		}
		r.Tables = append(r.Tables, tbl)
	}
	// The continuous SA-1100-like model, tabulated at decile speeds.
	sa := cpu.SA1100()
	tbl := report.NewTable("T1: sa1100 (continuous, alpha-power law)", "speed", "voltage", "power")
	for s := 0.3; s <= 1.0001; s += 0.1 {
		tbl.AddRow(s, sa.Voltage(s), sa.Power(s))
	}
	r.Tables = append(r.Tables, tbl)
	return r, nil
}

// Table2Benchmarks reproduces table T2: normalized energy of every
// policy on the embedded benchmark task sets (CNC, avionics,
// videophone), with the standard AET/WCET ~ U[0.5, 1] workload.
func Table2Benchmarks(opts Options) (*Report, error) {
	r := newReport("t2", "T2: embedded benchmark task sets",
		"normalized energy per policy; AET/WCET ~ U[0.5,1], continuous speeds")
	names := SuiteNames()
	tbl := report.NewTable(r.Title,
		append([]string{"benchmark", "n", "U"}, append(names, "bound")...)...)
	benches := rtm.Benchmarks()
	err := runSeededPoints(len(benches), Suite(), opts,
		func(i int) (Point, error) {
			return Point{
				TaskSet:   benches[i],
				Processor: defaultProcessor(),
				Workload:  workload.Uniform{Lo: 0.5, Hi: 1, Seed: opts.Seed0 + 1},
			}, nil
		},
		func(i int, pr PointResult) {
			ts := benches[i]
			row := []any{ts.Name, ts.N(), ts.Utilization()}
			for _, n := range names {
				row = append(row, pr.Normalized[n])
				r.set(fmt.Sprintf("%s/%s", ts.Name, n), pr.Normalized[n])
			}
			row = append(row, pr.Bound)
			r.set(fmt.Sprintf("%s/bound", ts.Name), pr.Bound)
			r.set(fmt.Sprintf("%s/misses", ts.Name), float64(pr.Misses))
			tbl.AddRow(row...)
		})
	if err != nil {
		return nil, err
	}
	r.Tables = append(r.Tables, tbl)
	return r, nil
}

// Table3Overheads reproduces table T3: run-time cost of each policy —
// speed switches, preemptions, scheduling decisions (all per job) and
// the slack-analysis scan length where applicable.
func Table3Overheads(opts Options) (*Report, error) {
	r := newReport("t3", "T3: scheduling overhead per policy",
		"n=8 tasks, U=0.7, AET/WCET ~ U[0.5,1]; counts per completed job")
	factories := Suite()
	tbl := report.NewTable(r.Title,
		"policy", "switches/job", "preemptions/job", "decisions/job", "avg_scan_len")
	type agg struct{ sw, pre, dec, scan, jobs float64 }
	sums := map[string]*agg{}
	order := factoryNames(factories)
	for _, name := range order {
		sums[name] = &agg{}
	}
	err := runSeededPoints(opts.seeds(), factories, opts,
		func(s int) (Point, error) {
			seed := opts.Seed0 + uint64(s)*7919 + 3
			ts, err := rtm.Generate(rtm.DefaultGenConfig(8, 0.7, seed))
			if err != nil {
				return Point{}, err
			}
			return Point{
				TaskSet:   ts,
				Processor: defaultProcessor(),
				Workload:  workload.Uniform{Lo: 0.5, Hi: 1, Seed: seed},
			}, nil
		},
		func(_ int, pr PointResult) {
			for name, res := range pr.Results {
				a := sums[name]
				if a == nil {
					continue
				}
				a.sw += float64(res.SpeedSwitches)
				a.pre += float64(res.Preemptions)
				a.dec += float64(res.Decisions)
				a.jobs += float64(res.JobsCompleted)
				if v, ok := res.PolicyCounters["slack_avg_scan_len"]; ok {
					a.scan += v
				}
			}
		})
	if err != nil {
		return nil, err
	}
	for _, name := range order {
		a := sums[name]
		if a.jobs == 0 {
			continue
		}
		scan := a.scan / float64(opts.seeds())
		tbl.AddRow(name, a.sw/a.jobs, a.pre/a.jobs, a.dec/a.jobs, scan)
		r.set(fmt.Sprintf("%s/switches_per_job", name), a.sw/a.jobs)
		r.set(fmt.Sprintf("%s/decisions_per_job", name), a.dec/a.jobs)
		r.set(fmt.Sprintf("%s/avg_scan_len", name), scan)
	}
	r.Tables = append(r.Tables, tbl)
	return r, nil
}

// Table4DeadlineFuzz reproduces table T4: the hard real-time
// guarantee. Random feasible configurations spanning task count,
// utilization, workload shape, and processor model are simulated with
// every policy; the table must report zero deadline misses
// everywhere.
func Table4DeadlineFuzz(opts Options) (*Report, error) {
	r := newReport("t4", "T4: deadline-miss fuzz across the configuration space",
		"random (n, U, workload, processor) configurations; all policies; misses must be zero")
	runs := 200
	if opts.Quick {
		runs = 25
	}
	// Fork one independent substream per configuration from the master
	// source, serially, so the substream assignment is fixed no matter
	// how the runs are later scheduled; each parallel cell then draws
	// its configuration from its own Source only (a prng.Source is not
	// safe for concurrent use — see its contract).
	src := prng.New(opts.Seed0 + 0xfeed)
	srcs := make([]*prng.Source, runs)
	for i := range srcs {
		srcs[i] = src.Fork()
	}
	procs := []*cpu.Processor{
		defaultProcessor(),
		cpu.UniformLevels(4),
		cpu.XScale(),
	}
	factories := append(Suite(),
		func() sim.Policy { return core.NewLpSHEVariant(core.NoReclaim) },
		func() sim.Policy { return core.NewLpSHEVariant(core.Horizon8) },
	)
	names := factoryNames(factories)
	type fuzzRun struct {
		infeasible bool
		pr         PointResult
	}
	outs := make([]fuzzRun, runs)
	perr := par.ForEach(opts.workers(), runs, func(i int) error {
		// Clone leaves srcs[i] unconsumed, so a single configuration
		// can be replayed in isolation when debugging a miss.
		rs := srcs[i].Clone()
		n := 2 + rs.Intn(10)
		u := rs.Range(0.2, 1.0)
		ts, err := rtm.Generate(rtm.DefaultGenConfig(n, u, rs.Uint64()))
		if err != nil {
			return err
		}
		if !analysis.EDFSchedulable(ts) {
			outs[i].infeasible = true
			return nil
		}
		var gen workload.Generator
		switch rs.Intn(4) {
		case 0:
			lo := rs.Range(0.05, 0.9)
			gen = workload.Uniform{Lo: lo, Hi: 1, Seed: rs.Uint64()}
		case 1:
			gen = workload.Bimodal{LightFrac: 0.2, HeavyFrac: 1.0, PHeavy: rs.Range(0.05, 0.5), Seed: rs.Uint64()}
		case 2:
			gen = workload.Sinusoidal{Mean: 0.6, Amp: 0.35, Jitter: 0.05, Seed: rs.Uint64()}
		default:
			gen = workload.WorstCase{}
		}
		proc := procs[rs.Intn(len(procs))]
		pr, err := RunPointExec(Point{TaskSet: ts, Processor: proc, Workload: gen}, factories, opts.Exec)
		if err != nil {
			return err
		}
		outs[i].pr = pr
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	misses := map[string]int{}
	jobs := map[string]int{}
	infeasible := 0
	for i := range outs {
		if outs[i].infeasible {
			infeasible++
			continue
		}
		for _, name := range names {
			res := outs[i].pr.Results[name]
			misses[name] += res.DeadlineMisses
			jobs[name] += res.JobsCompleted
		}
	}
	tbl := report.NewTable(r.Title, "policy", "configs", "jobs", "deadline_misses")
	for _, name := range names {
		tbl.AddRow(name, runs-infeasible, jobs[name], misses[name])
		r.set(fmt.Sprintf("%s/misses", name), float64(misses[name]))
		r.set(fmt.Sprintf("%s/jobs", name), float64(jobs[name]))
	}
	r.Tables = append(r.Tables, tbl)
	return r, nil
}
