package experiment

import (
	"fmt"
	"math"

	"dvsslack/internal/core"
	"dvsslack/internal/dvs"
	"dvsslack/internal/opt"
	"dvsslack/internal/par"
	"dvsslack/internal/report"
	"dvsslack/internal/rtm"
	"dvsslack/internal/sim"
	"dvsslack/internal/workload"
)

// Table5OptimalityGap reproduces table T5: how close the online
// algorithm gets to clairvoyance. For each workload the table lists
// the normalized energy of lpSHE, the constant-speed clairvoyant
// bound (deadline-blind), and the YDS offline optimum (the true
// per-trace floor), plus lpSHE's multiplicative gap to YDS.
//
// Horizons are capped so the O(n²)-per-round YDS computation stays
// fast; all three columns use the identical capped horizon.
func Table5OptimalityGap(opts Options) (*Report, error) {
	r := newReport("t5", "T5: optimality gap to the clairvoyant offline schedule",
		"lpSHE vs constant-speed bound vs YDS optimum; AET/WCET ~ U[0.5,1]")
	tbl := report.NewTable(r.Title,
		"workload", "U", "lpSHE", "flat_bound", "yds_bound", "lpSHE/yds")

	type caseSpec struct {
		name string
		ts   *rtm.TaskSet
		seed uint64
	}
	cases := []caseSpec{
		{"cnc", rtm.CNC(), 1},
		{"videophone", rtm.Videophone(), 2},
		{"quickstart", rtm.Quickstart(), 3},
	}
	nSynthetic := 3
	if opts.Quick {
		nSynthetic = 1
	}
	for i := 0; i < nSynthetic; i++ {
		u := 0.5 + 0.2*float64(i)
		seed := opts.Seed0 + uint64(i)*31 + 7
		cfg := rtm.DefaultGenConfig(6, u, seed)
		// A period pool with hyperperiod 1000 keeps the YDS job set
		// small and lets the window close exactly (all deadlines
		// inside it), so the three columns share one time budget.
		cfg.Periods = []float64{50, 100, 125, 200, 250, 500, 1000}
		ts, err := rtm.Generate(cfg)
		if err != nil {
			return nil, err
		}
		cases = append(cases, caseSpec{fmt.Sprintf("synthetic(U=%.1f)", u), ts, seed})
	}

	proc := defaultProcessor()
	// Each case — two online runs, the flat bound, and the O(n²) YDS
	// optimum — is one independent cell; rows merge in case order.
	type t5Row struct {
		lpshe, flat, yds, gap float64
		misses                int
	}
	rows := make([]t5Row, len(cases))
	perr := par.ForEach(opts.workers(), len(cases), func(i int) error {
		c := cases[i]
		// One exact hyperperiod: synchronous release plus implicit
		// deadlines means every job released inside the window also
		// completes (and is due) inside it, making the online runs
		// and both bounds directly comparable.
		horizon := sim.DefaultHorizon(c.ts)
		gen := workload.Uniform{Lo: 0.5, Hi: 1, Seed: c.seed}

		ref, err := sim.Run(sim.Config{
			TaskSet: c.ts, Processor: proc, Policy: &dvs.NonDVS{},
			Workload: gen, Horizon: horizon,
		})
		if err != nil {
			return err
		}
		res, err := sim.Run(sim.Config{
			TaskSet: c.ts, Processor: proc, Policy: core.NewLpSHE(),
			Workload: gen, Horizon: horizon, StrictDeadlines: true,
		})
		if err != nil {
			return err
		}
		// Jobs released just before the capped horizon may complete
		// after it, so the online runs effectively span res.Time;
		// the bounds must be evaluated over the same (or a longer)
		// window to remain lower bounds. Release cutoffs stay at
		// `horizon` inside both bound computations.
		span := math.Max(ref.Time, res.Time)
		flat := dvs.BoundWindow(c.ts, proc, gen, horizon, span) / ref.Energy
		ydsE, err := opt.ForTrace(c.ts, proc, gen, horizon, span)
		if err != nil {
			return err
		}
		yds := ydsE / ref.Energy
		lpshe := res.NormalizedTo(ref)
		gap := 0.0
		if yds > 0 {
			gap = lpshe / yds
		}
		rows[i] = t5Row{lpshe: lpshe, flat: flat, yds: yds, gap: gap, misses: res.DeadlineMisses}
		return nil
	})
	if perr != nil {
		return nil, perr
	}
	for i, c := range cases {
		row := rows[i]
		tbl.AddRow(c.name, c.ts.Utilization(), row.lpshe, row.flat, row.yds, row.gap)
		r.set(c.name+"/lpshe", row.lpshe)
		r.set(c.name+"/flat", row.flat)
		r.set(c.name+"/yds", row.yds)
		r.set(c.name+"/gap", row.gap)
		r.set(c.name+"/misses", float64(row.misses))
	}
	r.Tables = append(r.Tables, tbl)
	return r, nil
}
