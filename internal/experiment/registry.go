package experiment

import (
	"fmt"
	"io"
	"sort"
)

// Func runs one experiment.
type Func func(Options) (*Report, error)

// Registry maps experiment IDs (DESIGN.md §3) to their
// implementations.
func Registry() map[string]Func {
	return map[string]Func{
		"t1":  Table1ProcessorModels,
		"f3":  Fig3EnergyVsUtilization,
		"f4":  Fig4EnergyVsBCETRatio,
		"f5":  Fig5EnergyVsTaskCount,
		"t2":  Table2Benchmarks,
		"f6":  Fig6DiscreteLevels,
		"f7":  Fig7TransitionOverhead,
		"t3":  Table3Overheads,
		"t4":  Table4DeadlineFuzz,
		"f8":  Fig8Ablation,
		"t5":  Table5OptimalityGap,
		"f9":  Fig9JitterRobustness,
		"f10": Fig10WorkloadShapes,
		"f11": Fig11Leakage,
	}
}

// IDs returns the experiment identifiers in presentation order: the
// paper reproductions first (t1..f8), then the bound-tightness table
// and the extension studies.
func IDs() []string {
	return []string{"t1", "f3", "f4", "f5", "t2", "f6", "f7", "t3", "t4", "f8", "t5", "f9", "f10", "f11"}
}

// Run executes the experiment with the given ID.
func Run(id string, opts Options) (*Report, error) {
	f, ok := Registry()[id]
	if !ok {
		var known []string
		for k := range Registry() {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("experiment: unknown id %q (known: %v)", id, known)
	}
	return f(opts)
}

// Print renders a report's tables and charts to w.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n%s\n\n", r.Title, r.Description)
	for _, t := range r.Tables {
		t.WriteText(w)
		fmt.Fprintln(w)
	}
	for _, c := range r.Charts {
		c.Write(w)
		fmt.Fprintln(w)
	}
}

// PrintCSV renders a report's tables as CSV to w.
func (r *Report) PrintCSV(w io.Writer) {
	for _, t := range r.Tables {
		fmt.Fprintf(w, "# %s\n", t.Title)
		t.WriteCSV(w)
		fmt.Fprintln(w)
	}
}
