package workload

import (
	"math"
	"testing"
	"testing/quick"
)

// allGenerators returns one configured instance of every generator.
func allGenerators() []Generator {
	return []Generator{
		Uniform{Lo: 0.3, Hi: 0.9, Seed: 1},
		Constant{Frac: 0.5},
		Normal{Mean: 0.6, StdDev: 0.15, Seed: 2},
		Bimodal{LightFrac: 0.2, HeavyFrac: 0.95, PHeavy: 0.1, Seed: 3},
		Sinusoidal{Mean: 0.5, Amp: 0.3, Jitter: 0.05, Seed: 4},
		WorstCase{},
	}
}

// Property: every generator returns AET in (0, wcet] and is
// deterministic in (task, index).
func TestGeneratorsBoundedAndDeterministic(t *testing.T) {
	gens := allGenerators()
	f := func(task uint8, index uint16, wcetRaw uint16) bool {
		wcet := 0.1 + float64(wcetRaw)/100
		for _, g := range gens {
			a := g.AET(int(task), int(index), wcet)
			b := g.AET(int(task), int(index), wcet)
			if a != b {
				return false
			}
			if a <= 0 || a > wcet+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorsHaveNames(t *testing.T) {
	for _, g := range allGenerators() {
		if g.Name() == "" {
			t.Errorf("%T has empty name", g)
		}
	}
}

func TestUniformRange(t *testing.T) {
	g := Uniform{Lo: 0.4, Hi: 0.6, Seed: 7}
	for i := 0; i < 2000; i++ {
		f := g.AET(3, i, 1)
		if f < 0.4-1e-12 || f > 0.6+1e-12 {
			t.Fatalf("job %d: fraction %v out of [0.4, 0.6]", i, f)
		}
	}
}

func TestUniformMean(t *testing.T) {
	g := Uniform{Lo: 0.2, Hi: 0.8, Seed: 11}
	m := MeanFraction(g, 10, 2000)
	if math.Abs(m-0.5) > 0.01 {
		t.Errorf("mean fraction %v, want ~0.5", m)
	}
}

func TestUniformOrderIndependence(t *testing.T) {
	// AETs must not depend on query order: simulate different
	// policies querying in different orders.
	g := Uniform{Lo: 0.1, Hi: 1, Seed: 5}
	forward := make([]float64, 100)
	for i := range forward {
		forward[i] = g.AET(2, i, 3)
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if g.AET(2, i, 3) != forward[i] {
			t.Fatalf("job %d AET changed with query order", i)
		}
	}
}

func TestConstant(t *testing.T) {
	g := Constant{Frac: 0.37}
	if got := g.AET(0, 0, 10); math.Abs(got-3.7) > 1e-12 {
		t.Errorf("AET = %v, want 3.7", got)
	}
	// Clamped to (0, 1].
	if got := (Constant{Frac: 2}).AET(0, 0, 10); got != 10 {
		t.Errorf("over-unity fraction should clamp to WCET, got %v", got)
	}
	if got := (Constant{Frac: -1}).AET(0, 0, 10); got <= 0 {
		t.Errorf("negative fraction should clamp positive, got %v", got)
	}
}

func TestNormalClusters(t *testing.T) {
	g := Normal{Mean: 0.5, StdDev: 0.1, Seed: 9}
	var within int
	const n = 5000
	for i := 0; i < n; i++ {
		f := g.AET(0, i, 1)
		if f > 0.3 && f < 0.7 {
			within++
		}
	}
	// ~95% should be within two standard deviations.
	if within < n*90/100 {
		t.Errorf("only %d/%d within 2 sd", within, n)
	}
}

func TestBimodalProportions(t *testing.T) {
	g := Bimodal{LightFrac: 0.2, HeavyFrac: 1.0, PHeavy: 0.25, Seed: 13}
	var heavy int
	const n = 10000
	for i := 0; i < n; i++ {
		if g.AET(0, i, 1) > 0.5 {
			heavy++
		}
	}
	p := float64(heavy) / n
	if math.Abs(p-0.25) > 0.02 {
		t.Errorf("heavy fraction %v, want ~0.25", p)
	}
}

func TestSinusoidalDrifts(t *testing.T) {
	g := Sinusoidal{Mean: 0.5, Amp: 0.4, PeriodJobs: 64, Seed: 17}
	// Successive jobs change slowly (no jitter configured beyond
	// default zero), unlike the uniform generator.
	var maxStep float64
	prev := g.AET(0, 0, 1)
	for i := 1; i < 128; i++ {
		cur := g.AET(0, i, 1)
		maxStep = math.Max(maxStep, math.Abs(cur-prev))
		prev = cur
	}
	if maxStep > 0.1 {
		t.Errorf("sinusoidal pattern jumps by %v between jobs", maxStep)
	}
	// Different tasks get different phases.
	if g.AET(0, 0, 1) == g.AET(1, 0, 1) {
		t.Error("per-task phases should differ")
	}
}

func TestWorstCase(t *testing.T) {
	if got := (WorstCase{}).AET(5, 9, 2.5); got != 2.5 {
		t.Errorf("AET = %v, want WCET", got)
	}
}

func TestMeanFractionDegenerate(t *testing.T) {
	if m := MeanFraction(WorstCase{}, 0, 10); m != 1 {
		t.Errorf("MeanFraction with no tasks = %v, want 1", m)
	}
	if m := MeanFraction(Constant{Frac: 0.4}, 3, 5); math.Abs(m-0.4) > 1e-12 {
		t.Errorf("MeanFraction of constant = %v, want 0.4", m)
	}
}
