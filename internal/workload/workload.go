// Package workload generates the actual execution times (AETs) of
// jobs. In the dynamic-workload setting of the paper, jobs usually
// finish well before their worst-case execution time; the
// distribution of AET/WCET — and how it varies over a task's
// successive jobs — is the knob the evaluation sweeps.
//
// Every generator is a pure function of (seed, task, job index), so a
// given configuration denotes one fixed workload trace: running two
// policies against the same generator measures them on identical
// inputs, which is what makes the normalized-energy comparisons of
// the benchmark harness meaningful.
//
// Concurrency: generators are immutable values — they hold only
// configuration fields and sample through the stateless prng.Hash3
// path, never a mutable prng.Source. A single generator value may
// therefore be shared by any number of concurrent simulations (the
// dvsd worker pool relies on this), and AET is reproducible
// regardless of call order or interleaving.
package workload

import (
	"fmt"
	"math"

	"dvsslack/internal/prng"
)

// Generator produces the actual execution time of job index of a
// task, as a value in (0, wcet]. Implementations must be
// deterministic in (task, index) for a fixed generator value.
type Generator interface {
	// AET returns the actual work of job 'index' of task 'task'
	// whose worst-case work is wcet. The result is clamped by the
	// caller contract to (0, wcet].
	AET(task, index int, wcet float64) float64
	// Name identifies the generator in reports.
	Name() string
}

// clampFrac bounds a sampled AET fraction into (0, 1], using a small
// positive floor so no job degenerates to zero work.
func clampFrac(f float64) float64 {
	const floor = 1e-3
	if f < floor {
		return floor
	}
	if f > 1 {
		return 1
	}
	return f
}

// Uniform draws AET/WCET uniformly from [Lo, Hi] independently per
// job. This is the standard workload of the paper family's
// experiments; the mean ratio (Lo+Hi)/2 is the "BCET/WCET" knob of
// figure F4 when Hi = 1.
type Uniform struct {
	Lo, Hi float64 // fraction bounds, 0 <= Lo <= Hi <= 1
	Seed   uint64
}

// AET implements Generator.
func (g Uniform) AET(task, index int, wcet float64) float64 {
	u := prng.Float64(prng.Hash3(g.Seed, task, index))
	return clampFrac(g.Lo+(g.Hi-g.Lo)*u) * wcet
}

// Name implements Generator.
func (g Uniform) Name() string { return fmt.Sprintf("uniform[%g,%g]", g.Lo, g.Hi) }

// Constant fixes AET/WCET to a constant fraction for every job: the
// fully predictable workload where slack comes only from utilization
// and early completion is deterministic.
type Constant struct {
	Frac float64
}

// AET implements Generator.
func (g Constant) AET(task, index int, wcet float64) float64 {
	return clampFrac(g.Frac) * wcet
}

// Name implements Generator.
func (g Constant) Name() string { return fmt.Sprintf("constant[%g]", g.Frac) }

// Normal draws AET/WCET from a normal distribution truncated to
// (0, 1], modeling workloads that cluster around a typical case.
type Normal struct {
	Mean, StdDev float64 // of the fraction
	Seed         uint64
}

// AET implements Generator.
func (g Normal) AET(task, index int, wcet float64) float64 {
	// Two independent hashes feed Box-Muller deterministically.
	u1 := prng.Float64(prng.Hash3(g.Seed, task, 2*index))
	u2 := prng.Float64(prng.Hash3(g.Seed, task, 2*index+1))
	for u1 == 0 {
		u1 = 0.5
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return clampFrac(g.Mean+g.StdDev*z) * wcet
}

// Name implements Generator.
func (g Normal) Name() string { return fmt.Sprintf("normal[m=%g,sd=%g]", g.Mean, g.StdDev) }

// Bimodal models tasks with a fast common path and a rare slow path:
// with probability PHeavy the job runs at HeavyFrac of WCET, otherwise
// at LightFrac.
type Bimodal struct {
	LightFrac, HeavyFrac float64
	PHeavy               float64
	Seed                 uint64
}

// AET implements Generator.
func (g Bimodal) AET(task, index int, wcet float64) float64 {
	u := prng.Float64(prng.Hash3(g.Seed, task, index))
	if u < g.PHeavy {
		return clampFrac(g.HeavyFrac) * wcet
	}
	return clampFrac(g.LightFrac) * wcet
}

// Name implements Generator.
func (g Bimodal) Name() string {
	return fmt.Sprintf("bimodal[%g/%g,p=%g]", g.LightFrac, g.HeavyFrac, g.PHeavy)
}

// Sinusoidal varies the AET fraction smoothly over a task's job
// sequence, AET/WCET = Mean + Amp·sin(2π·index/PeriodJobs + phase(task)),
// modeling slowly drifting workloads (e.g. scene complexity in video).
// Optional per-job uniform jitter of ±Jitter is superimposed.
type Sinusoidal struct {
	Mean, Amp  float64
	PeriodJobs float64 // jobs per full cycle; <= 0 means 32
	Jitter     float64
	Seed       uint64
}

// AET implements Generator.
func (g Sinusoidal) AET(task, index int, wcet float64) float64 {
	period := g.PeriodJobs
	if period <= 0 {
		period = 32
	}
	phase := 2 * math.Pi * prng.Float64(prng.Hash3(g.Seed, task, -1))
	f := g.Mean + g.Amp*math.Sin(2*math.Pi*float64(index)/period+phase)
	if g.Jitter > 0 {
		u := prng.Float64(prng.Hash3(g.Seed, task, index))
		f += g.Jitter * (2*u - 1)
	}
	return clampFrac(f) * wcet
}

// Name implements Generator.
func (g Sinusoidal) Name() string { return fmt.Sprintf("sin[m=%g,a=%g]", g.Mean, g.Amp) }

// WorstCase makes every job consume its full WCET: the degenerate
// workload with no dynamic slack at all.
type WorstCase struct{}

// AET implements Generator.
func (WorstCase) AET(task, index int, wcet float64) float64 { return wcet }

// Name implements Generator.
func (WorstCase) Name() string { return "worst-case" }

// MeanFraction estimates the expected AET/WCET of a generator by
// averaging over the first n jobs of k synthetic tasks; used by the
// clairvoyant bound and by reports.
func MeanFraction(g Generator, tasks, jobs int) float64 {
	if tasks <= 0 || jobs <= 0 {
		return 1
	}
	var sum float64
	for t := 0; t < tasks; t++ {
		for j := 0; j < jobs; j++ {
			sum += g.AET(t, j, 1)
		}
	}
	return sum / float64(tasks*jobs)
}
