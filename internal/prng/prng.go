// Package prng provides a small, fast, deterministic pseudo-random
// number generator (SplitMix64) plus stateless hash-based sampling.
//
// The evaluation harness needs two properties that math/rand does not
// give directly:
//
//  1. Stable streams: the actual execution time of job k of task i
//     must depend only on (seed, i, k), never on simulation order, so
//     that every policy is measured on the *identical* workload trace.
//  2. Cheap independent substreams keyed by integers.
//
// SplitMix64 (Steele, Lea, Flood; used as the seeder of
// xoshiro/xoroshiro) passes BigCrush for this use and is five lines of
// arithmetic, so the module stays stdlib-only.
package prng

import "math"

// Mix64 is the SplitMix64 finalizer: a bijective avalanche mix of x.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash3 mixes a seed and two integer coordinates into a single 64-bit
// hash, suitable for stateless per-(task, job) sampling.
func Hash3(seed uint64, a, b int) uint64 {
	h := Mix64(seed ^ 0x6a09e667f3bcc909)
	h = Mix64(h ^ uint64(int64(a))*0x9e3779b97f4a7c15)
	h = Mix64(h ^ uint64(int64(b))*0xc2b2ae3d27d4eb4f)
	return h
}

// Float64 maps a 64-bit hash to the half-open interval [0, 1).
func Float64(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Source is a deterministic sequential generator.
//
// The zero value is a valid generator seeded with zero; use New to
// seed explicitly.
//
// A Source is mutable and NOT safe for concurrent use: every Uint64
// advances its state. Code running simulations in parallel must give
// each run its own Source — via New with an independent seed, Fork,
// or Clone — and never share one across goroutines. (The workload
// generators avoid the problem entirely: they sample through the
// stateless Hash3/Float64 path and carry no Source.)
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns the next value uniformly distributed in [0, 1).
func (s *Source) Float64() float64 { return Float64(s.Uint64()) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (s *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a standard normal variate via the Box-Muller
// transform.
func (s *Source) Normal() float64 {
	// Guard against log(0).
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Fork returns an independent substream derived from this source's
// next output, useful for giving each replication its own seed. Fork
// advances the receiver.
func (s *Source) Fork() *Source { return New(s.Uint64()) }

// Clone returns a copy that continues the receiver's exact stream
// without advancing it: both sources produce identical subsequent
// outputs. Use Clone to replay a stream (e.g. re-running one
// replication in isolation); use Fork for independent substreams.
func (s *Source) Clone() *Source { return &Source{state: s.state} }

// State returns the source's current position as an opaque 64-bit
// value, for checkpointing. A new Source given this value via
// SetState (or New) emits exactly the stream the receiver would emit
// next — SplitMix64's whole state is the counter.
func (s *Source) State() uint64 { return s.state }

// SetState repositions the source to a state previously captured with
// State, restoring the exact substream position: subsequent outputs
// are identical to what the captured source would have produced.
func (s *Source) SetState(state uint64) { s.state = state }
